// Jacobi heat diffusion with fault-tolerant barrier synchronization.
//
// The canonical bulk-synchronous workload the paper's introduction
// motivates: a 1-D rod is split across workers; each iteration every
// worker updates its segment from the previous iteration's values and the
// barrier separates iterations. Workers checkpoint their segment before
// each phase; when a (simulated) detectable fault destroys a worker's
// in-progress segment, the worker reports ok=false, everyone gets a
// `repeated` ticket, and all workers roll back to the checkpoint and redo
// the iteration. The final temperature field is verified against a serial
// reference computation — bit-for-bit, despite the faults.
//
// Build & run:  ./examples/stencil_jacobi
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/ft_barrier.hpp"
#include "util/rng.hpp"

namespace {

constexpr int kCells = 256;
constexpr int kWorkers = 4;
constexpr int kIterations = 60;
constexpr double kLeftBoundary = 100.0;  // hot end
constexpr double kRightBoundary = 0.0;   // cold end

/// One Jacobi sweep of [begin, end) from `prev` into `next`.
void sweep(const std::vector<double>& prev, std::vector<double>& next, int begin,
           int end) {
  for (int i = begin; i < end; ++i) {
    const double left = i == 0 ? kLeftBoundary : prev[static_cast<std::size_t>(i - 1)];
    const double right =
        i == kCells - 1 ? kRightBoundary : prev[static_cast<std::size_t>(i + 1)];
    next[static_cast<std::size_t>(i)] = 0.5 * (left + right);
  }
}

std::vector<double> serial_reference() {
  std::vector<double> a(kCells, 0.0), b(kCells, 0.0);
  for (int it = 0; it < kIterations; ++it) {
    sweep(a, b, 0, kCells);
    a.swap(b);
  }
  return a;
}

}  // namespace

int main() {
  // Shared double buffer. Within an iteration each worker writes only its
  // own segment of `next`; the barrier orders the buffer swap.
  std::vector<double> field(kCells, 0.0);
  std::vector<double> scratch(kCells, 0.0);
  ftbar::core::FaultTolerantBarrier barrier(kWorkers);
  std::vector<int> faults_injected(kWorkers, 0);
  std::vector<int> redone(kWorkers, 0);

  std::vector<std::thread> workers;
  for (int tid = 0; tid < kWorkers; ++tid) {
    workers.emplace_back([&, tid] {
      const int chunk = kCells / kWorkers;
      const int begin = tid * chunk;
      const int end = tid == kWorkers - 1 ? kCells : begin + chunk;
      ftbar::util::Rng rng(0xfa17 + static_cast<std::uint64_t>(tid));

      auto ticket = ftbar::core::FaultTolerantBarrier::initial_ticket();
      int iteration = 0;
      while (iteration < kIterations) {
        // Phase work: sweep my segment from `field` into `scratch`.
        sweep(field, scratch, begin, end);

        // A detectable fault clobbers this worker's freshly computed
        // segment with probability 5% — e.g. the process was rebooted and
        // restarted from its checkpoint (= `field`, untouched this phase).
        bool ok = true;
        if (rng.bernoulli(0.05)) {
          for (int i = begin; i < end; ++i) {
            scratch[static_cast<std::size_t>(i)] = -1e9;  // garbage
          }
          ok = false;
          ++faults_injected[static_cast<std::size_t>(tid)];
        }

        ticket = barrier.arrive_and_wait(tid, ok);
        if (ticket.repeated) {
          // Someone's segment was lost: redo this iteration from `field`.
          ++redone[static_cast<std::size_t>(tid)];
          continue;
        }
        // Iteration committed: worker 0 publishes the swap; everyone
        // passes another barrier so no one sweeps mid-swap.
        if (tid == 0) field.swap(scratch);
        ticket = barrier.arrive_and_wait(tid, true);
        if (ticket.repeated) continue;  // swap phase itself re-ran; harmless
        ++iteration;
      }
      barrier.finalize(tid);
    });
  }
  for (auto& w : workers) w.join();

  const auto reference = serial_reference();
  double max_err = 0.0;
  for (int i = 0; i < kCells; ++i) {
    max_err = std::max(max_err, std::abs(field[static_cast<std::size_t>(i)] -
                                         reference[static_cast<std::size_t>(i)]));
  }
  int total_faults = 0, total_redone = 0;
  for (int t = 0; t < kWorkers; ++t) {
    total_faults += faults_injected[static_cast<std::size_t>(t)];
    total_redone = std::max(total_redone, redone[static_cast<std::size_t>(t)]);
  }
  std::printf("jacobi: %d iterations on %d cells across %d workers\n", kIterations,
              kCells, kWorkers);
  std::printf("faults injected: %d, iterations re-executed: %d\n", total_faults,
              total_redone);
  std::printf("max |parallel - serial| = %.3e  -> %s\n", max_err,
              max_err == 0.0 ? "EXACT MATCH" : "MISMATCH");
  return max_err == 0.0 ? 0 : 1;
}
