// Mini-MPI BSP application: the "third alternative" in action.
//
// Ranks run a bulk-synchronous computation (iterative global dot-product
// normalization) over the mini-MPI layer. The run demonstrates all three
// fault-handling alternatives of the paper's MPI discussion on the same
// lossy network:
//
//   1. kErrorCode — the classic intolerant barrier: with a silent rank the
//      collective times out and every caller gets an error code.
//   2. kAbort     — the same, but the failure throws (MPI_Abort style).
//   3. kTolerant  — program MB under the barrier: the superstep stream
//      continues, re-executing the superstep a rank lost.
//
// Build & run:  ./examples/mpi_style_bsp
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "mpi/collectives.hpp"
#include "mpi/ft_barrier_mpi.hpp"

namespace {

using namespace ftbar;

void demo_error_code() {
  std::printf("--- alternative 1: error code on fault -------------------\n");
  auto net = std::make_shared<runtime::Network>(3, /*seed=*/7);
  mpi::FtBarrierOptions opt;
  opt.intolerant_timeout = std::chrono::milliseconds(80);
  std::vector<std::thread> ranks;
  for (int r = 0; r < 2; ++r) {  // rank 2 has crashed and never calls
    ranks.emplace_back([&, r] {
      mpi::FtBarrier barrier(mpi::Communicator(net, r), mpi::FtMode::kErrorCode, opt);
      const auto result = barrier.wait();
      std::printf("rank %d: barrier -> %s\n", r,
                  result.err == mpi::Err::kTimeout ? "error code (peer lost)" : "ok");
    });
  }
  for (auto& t : ranks) t.join();
}

void demo_abort() {
  std::printf("--- alternative 2: abort on fault ------------------------\n");
  auto net = std::make_shared<runtime::Network>(2, /*seed=*/8);
  mpi::FtBarrierOptions opt;
  opt.intolerant_timeout = std::chrono::milliseconds(80);
  mpi::FtBarrier barrier(mpi::Communicator(net, 0), mpi::FtMode::kAbort, opt);
  try {
    (void)barrier.wait();  // rank 1 never arrives
    std::printf("rank 0: unexpectedly passed\n");
  } catch (const mpi::BarrierAborted& e) {
    std::printf("rank 0: %s\n", e.what());
  }
}

void demo_tolerant() {
  std::printf("--- alternative 3: tolerate the fault --------------------\n");
  constexpr int kRanks = 4;
  constexpr int kSupersteps = 6;
  auto net = std::make_shared<runtime::Network>(kRanks, /*seed=*/9);

  std::vector<double> final_value(kRanks, 0.0);
  std::vector<std::thread> ranks;
  for (int r = 0; r < kRanks; ++r) {
    ranks.emplace_back([&, r] {
      mpi::Communicator comm(net, r);
      mpi::FtBarrier barrier(comm, mpi::FtMode::kTolerant);

      // Setup superstep on the still-clean network: agree on the initial
      // value via an allreduce, then rank 0 turns the faults on.
      double x = static_cast<double>(r + 1);
      if (mpi::allreduce_sum(comm, x, /*epoch=*/1) != mpi::Err::kSuccess) return;
      (void)barrier.wait();
      if (r == 0) {
        net->set_default_faults(runtime::LinkFaults{
            .drop = 0.05, .duplicate = 0.05, .corrupt = 0.03, .reorder = 0.05});
      }

      // Supersteps on the now lossy/duplicating/reordering network:
      // x <- x/2 + 1 each step; every rank must stay in lockstep.
      double checkpoint = x;
      int completed = 0;
      bool faulted_once = false;
      while (completed < kSupersteps) {
        double next = 0.5 * x + 1.0;

        // Rank 2 loses its superstep-3 result once: detectable fault.
        bool ok = true;
        if (r == 2 && completed == 3 && !faulted_once) {
          faulted_once = true;
          next = -12345.0;  // garbage that must never be committed
          ok = false;
        }
        const auto res = barrier.wait(ok);
        if (res.ticket.repeated) {
          x = checkpoint;  // roll back and redo the superstep
          continue;
        }
        x = next;
        checkpoint = x;
        ++completed;
      }
      barrier.drain();
      final_value[static_cast<std::size_t>(r)] = x;
    });
  }
  for (auto& t : ranks) t.join();

  // Expected: allreduce gives 10 for every rank, then 6 steps of x/2 + 1.
  double expect = 10.0;
  for (int i = 0; i < kSupersteps; ++i) expect = 0.5 * expect + 1.0;
  std::printf("final values (expect %.4f): ", expect);
  for (double v : final_value) std::printf("%.4f ", v);
  const auto stats = net->stats();
  std::printf("\nnetwork: %llu sent, %llu dropped, %llu corrupted -- all masked\n",
              static_cast<unsigned long long>(stats.sent),
              static_cast<unsigned long long>(stats.dropped),
              static_cast<unsigned long long>(stats.corrupted));
}

}  // namespace

int main() {
  demo_error_code();
  demo_abort();
  demo_tolerant();
  return 0;
}
