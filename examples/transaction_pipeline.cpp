// Atomic commitment over the barrier (paper, Section 7): a bank-transfer
// pipeline where each "transaction" consists of one subtransaction per
// participant, and a transaction commits only if every subtransaction
// succeeds — otherwise the whole transaction is re-executed.
//
// Participant 1's subtransaction fails transiently on its first attempt at
// transaction 2 (a deadlock victim, say); the committer retries that
// transaction and the ledgers stay consistent — the re-execution semantics
// of the barrier ARE two-phase-commit-with-retry here.
//
// Build & run:  ./examples/transaction_pipeline
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "ext/atomic_commit.hpp"

namespace {
std::mutex g_print;
}

int main() {
  constexpr int kParticipants = 3;
  constexpr int kTransactions = 5;
  ftbar::ext::AtomicCommitter committer(kParticipants);

  // Each participant keeps a ledger balance; transaction t moves t+1 units
  // from participant 0 to the others (split evenly for the demo).
  std::vector<double> balance(kParticipants, 100.0);
  std::vector<std::thread> participants;
  for (int id = 0; id < kParticipants; ++id) {
    participants.emplace_back([&, id] {
      for (int txn = 0; txn < kTransactions; ++txn) {
        const double amount = txn + 1;
        const int attempts = committer.run_transaction(id, [&](int attempt) {
          // Tentatively apply my subtransaction to a scratch copy; commit
          // to the ledger only if the group decides to commit.
          const bool fails = id == 1 && txn == 2 && attempt == 1;
          if (fails) {
            std::lock_guard<std::mutex> lock(g_print);
            std::printf("participant %d: txn %d attempt %d ABORTED (deadlock)\n",
                        id, txn, attempt);
          }
          return !fails;
        });
        // Committed: apply the transfer for real.
        if (id == 0) {
          balance[0] -= amount;
        } else {
          balance[static_cast<std::size_t>(id)] +=
              amount / (kParticipants - 1);
        }
        std::lock_guard<std::mutex> lock(g_print);
        std::printf("participant %d: txn %d COMMITTED after %d attempt(s)\n", id,
                    txn, attempts);
      }
      committer.finalize(id);
    });
  }
  for (auto& p : participants) p.join();

  double total = 0.0;
  std::printf("\nledgers:");
  for (double b : balance) {
    std::printf(" %.2f", b);
    total += b;
  }
  std::printf("\ntotal conserved: %.2f (expect %.2f) -> %s\n", total,
              100.0 * kParticipants,
              total == 100.0 * kParticipants ? "CONSISTENT" : "BROKEN");
  return total == 100.0 * kParticipants ? 0 : 1;
}
