// Quickstart: the fault-tolerant barrier in five minutes.
//
// Four worker threads iterate over phases separated by a
// FaultTolerantBarrier. During phase 2, worker 1 "loses its state" (a
// detectable fault — think fail-stop + restart, or an exception that
// trashed its buffers) and reports ok=false. The barrier masks the fault:
// every worker re-executes phase 2, and the computation continues as if
// nothing happened.
//
// Build & run:  ./examples/quickstart
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "core/ft_barrier.hpp"

namespace {
std::mutex g_print_mutex;

void say(int tid, const char* what, int phase, bool repeated) {
  std::lock_guard<std::mutex> lock(g_print_mutex);
  std::printf("worker %d: %s phase %d%s\n", tid, what, phase,
              repeated ? "  (re-execution)" : "");
}
}  // namespace

int main() {
  constexpr int kWorkers = 4;
  constexpr int kPhases = 5;
  ftbar::core::FaultTolerantBarrier barrier(kWorkers);

  std::vector<std::thread> workers;
  for (int tid = 0; tid < kWorkers; ++tid) {
    workers.emplace_back([&, tid] {
      auto ticket = ftbar::core::FaultTolerantBarrier::initial_ticket();
      int completed = 0;
      bool injected = false;
      while (completed < kPhases) {
        say(tid, "executing", ticket.phase, ticket.repeated);

        // ... the phase's real work would happen here ...
        bool ok = true;
        if (tid == 1 && ticket.phase == 2 && !injected) {
          injected = true;
          ok = false;  // our state was lost mid-phase
          say(tid, "LOST ITS STATE in", ticket.phase, false);
        }

        ticket = barrier.arrive_and_wait(tid, ok);
        if (!ticket.repeated) ++completed;
      }
      barrier.finalize(tid);
    });
  }
  for (auto& w : workers) w.join();

  const auto stats = barrier.network_stats();
  std::printf("\ndone: %d phases completed by %d workers (%llu protocol messages)\n",
              kPhases, kWorkers, static_cast<unsigned long long>(stats.sent));
  return 0;
}
