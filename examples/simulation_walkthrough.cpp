// Simulation walkthrough: watching program RB run, fail, and heal.
//
// This example drives the guarded-command simulation engine (the repo's
// SIEFAST substitute) directly and prints the evolving control positions,
// phases, and sequence numbers of a 5-process ring:
//
//   act 1 — three fault-free phases (watch the execute/success/ready waves),
//   act 2 — a detectable fault at process 3 mid-phase: the repeat wave
//           reaches process 0, which re-executes the phase (masking),
//   act 3 — every process corrupted undetectably: the program converges
//           back to a legitimate state on its own (stabilization).
//
// Build & run:  ./examples/simulation_walkthrough
#include <cstdio>
#include <string>

#include "core/rb.hpp"
#include "core/spec.hpp"
#include "sim/step_engine.hpp"

namespace {

using namespace ftbar;

std::string render(const core::RbState& state) {
  std::string out;
  for (const auto& p : state) {
    const char* sn = nullptr;
    char buffer[8];
    if (p.sn == core::kSnBot) {
      sn = "_";
    } else if (p.sn == core::kSnTop) {
      sn = "^";
    } else {
      std::snprintf(buffer, sizeof buffer, "%d", p.sn);
      sn = buffer;
    }
    char cell[40];
    std::snprintf(cell, sizeof cell, "[%.4s ph%d sn%s] ",
                  std::string(core::to_string(p.cp)).c_str(), p.ph, sn);
    out += cell;
  }
  return out;
}

void show(const sim::StepEngine<core::RbProc>& eng, std::size_t step) {
  std::printf("step %3zu: %s\n", step, render(eng.state()).c_str());
}

}  // namespace

int main() {
  const auto opt = core::rb_ring_options(5, /*num_phases=*/4);
  core::SpecMonitor monitor(5, 4);
  sim::StepEngine<core::RbProc> eng(core::rb_start_state(opt),
                                    core::make_rb_actions(opt, &monitor),
                                    util::Rng(2024), sim::Semantics::kMaxParallel);

  std::printf("ACT 1 — fault-free execution (5-process ring, 4 phases)\n");
  std::printf("legend: [cp phase sn], _ = corrupted sn, ^ = TOP\n\n");
  std::size_t step = 0;
  show(eng, step);
  while (monitor.successful_phases() < 3) {
    eng.step();
    show(eng, ++step);
  }
  std::printf("-> %zu phases executed successfully, %zu instance(s) each\n\n",
              monitor.successful_phases(), monitor.total_instances() / 3);

  std::printf("ACT 2 — detectable fault at process 3\n\n");
  util::Rng fault_rng(7);
  const auto detectable = core::rb_detectable_fault(opt, &monitor);
  detectable(3, eng.mutable_state()[3], fault_rng);
  show(eng, step);
  const auto before = monitor.failed_instances();
  while (monitor.failed_instances() == before || monitor.successful_phases() < 4) {
    eng.step();
    show(eng, ++step);
    if (step > 200) break;
  }
  std::printf("-> instance re-executed: %zu failed instance(s), safety %s\n\n",
              monitor.failed_instances(), monitor.safety_ok() ? "intact" : "BROKEN");

  std::printf("ACT 3 — every process corrupted undetectably\n\n");
  monitor.on_undetectable_fault();
  const auto undetectable = core::rb_undetectable_fault(opt, &monitor);
  for (std::size_t j = 0; j < eng.mutable_state().size(); ++j) {
    undetectable(j, eng.mutable_state()[j], fault_rng);
  }
  show(eng, step);
  std::size_t recovery_steps = 0;
  while (!core::rb_is_start_state(eng.state()) && recovery_steps < 500) {
    eng.step();
    show(eng, ++step);
    ++recovery_steps;
  }
  std::printf("-> stabilized after %zu steps; resuming normal operation:\n",
              recovery_steps);
  monitor.resync(eng.state().front().ph);
  while (monitor.successful_phases() < 2) eng.step();
  std::printf("-> 2 more phases executed successfully, safety %s\n",
              monitor.safety_ok() ? "intact" : "BROKEN");
  return monitor.safety_ok() ? 0 : 1;
}
