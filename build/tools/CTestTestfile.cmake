# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_cb "/root/repo/build/tools/ftbar_sim" "cb" "--procs" "5" "--phases-goal" "6" "--seed" "3")
set_tests_properties(cli_cb PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rb_tree "/root/repo/build/tools/ftbar_sim" "rb" "--procs" "15" "--topology" "tree" "--semantics" "maxpar" "--phases-goal" "6")
set_tests_properties(cli_rb_tree PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rb_detectable "/root/repo/build/tools/ftbar_sim" "rb" "--procs" "6" "--detectable" "0.01" "--phases-goal" "8")
set_tests_properties(cli_rb_detectable PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_mb_recovers "/root/repo/build/tools/ftbar_sim" "mb" "--procs" "4" "--undetectable-start" "--phases-goal" "4")
set_tests_properties(cli_mb_recovers PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_timed "/root/repo/build/tools/ftbar_sim" "timed" "--phases-goal" "2000" "--c" "0.01" "--f" "0.02")
set_tests_properties(cli_timed PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_des "/root/repo/build/tools/ftbar_sim" "des" "--procs" "15" "--phases-goal" "50" "--f" "0.05")
set_tests_properties(cli_des PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_recovery "/root/repo/build/tools/ftbar_sim" "recovery" "--height" "4" "--c" "0.02" "--reps" "5")
set_tests_properties(cli_recovery PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
