# Empty compiler generated dependencies file for ftbar_sim.
# This may be replaced when dependencies are built.
