file(REMOVE_RECURSE
  "CMakeFiles/ftbar_sim.dir/ftbar_sim.cpp.o"
  "CMakeFiles/ftbar_sim.dir/ftbar_sim.cpp.o.d"
  "ftbar_sim"
  "ftbar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftbar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
