
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/model.cpp" "src/CMakeFiles/ftbar.dir/analysis/model.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/analysis/model.cpp.o.d"
  "/root/repo/src/baseline/central_barrier.cpp" "src/CMakeFiles/ftbar.dir/baseline/central_barrier.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/baseline/central_barrier.cpp.o.d"
  "/root/repo/src/baseline/dissemination_barrier.cpp" "src/CMakeFiles/ftbar.dir/baseline/dissemination_barrier.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/baseline/dissemination_barrier.cpp.o.d"
  "/root/repo/src/baseline/tree_barrier.cpp" "src/CMakeFiles/ftbar.dir/baseline/tree_barrier.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/baseline/tree_barrier.cpp.o.d"
  "/root/repo/src/core/cb.cpp" "src/CMakeFiles/ftbar.dir/core/cb.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/core/cb.cpp.o.d"
  "/root/repo/src/core/control.cpp" "src/CMakeFiles/ftbar.dir/core/control.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/core/control.cpp.o.d"
  "/root/repo/src/core/des_model.cpp" "src/CMakeFiles/ftbar.dir/core/des_model.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/core/des_model.cpp.o.d"
  "/root/repo/src/core/ft_barrier.cpp" "src/CMakeFiles/ftbar.dir/core/ft_barrier.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/core/ft_barrier.cpp.o.d"
  "/root/repo/src/core/hw_table.cpp" "src/CMakeFiles/ftbar.dir/core/hw_table.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/core/hw_table.cpp.o.d"
  "/root/repo/src/core/mb.cpp" "src/CMakeFiles/ftbar.dir/core/mb.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/core/mb.cpp.o.d"
  "/root/repo/src/core/rb.cpp" "src/CMakeFiles/ftbar.dir/core/rb.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/core/rb.cpp.o.d"
  "/root/repo/src/core/spec.cpp" "src/CMakeFiles/ftbar.dir/core/spec.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/core/spec.cpp.o.d"
  "/root/repo/src/core/timed_model.cpp" "src/CMakeFiles/ftbar.dir/core/timed_model.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/core/timed_model.cpp.o.d"
  "/root/repo/src/core/token_ring.cpp" "src/CMakeFiles/ftbar.dir/core/token_ring.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/core/token_ring.cpp.o.d"
  "/root/repo/src/ext/clock_unison.cpp" "src/CMakeFiles/ftbar.dir/ext/clock_unison.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/ext/clock_unison.cpp.o.d"
  "/root/repo/src/ext/fail_safe.cpp" "src/CMakeFiles/ftbar.dir/ext/fail_safe.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/ext/fail_safe.cpp.o.d"
  "/root/repo/src/ext/fault_matrix.cpp" "src/CMakeFiles/ftbar.dir/ext/fault_matrix.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/ext/fault_matrix.cpp.o.d"
  "/root/repo/src/ext/fuzzy_barrier.cpp" "src/CMakeFiles/ftbar.dir/ext/fuzzy_barrier.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/ext/fuzzy_barrier.cpp.o.d"
  "/root/repo/src/ext/phase_sync.cpp" "src/CMakeFiles/ftbar.dir/ext/phase_sync.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/ext/phase_sync.cpp.o.d"
  "/root/repo/src/mpi/collectives.cpp" "src/CMakeFiles/ftbar.dir/mpi/collectives.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/mpi/collectives.cpp.o.d"
  "/root/repo/src/mpi/comm.cpp" "src/CMakeFiles/ftbar.dir/mpi/comm.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/mpi/comm.cpp.o.d"
  "/root/repo/src/mpi/ft_barrier_mpi.cpp" "src/CMakeFiles/ftbar.dir/mpi/ft_barrier_mpi.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/mpi/ft_barrier_mpi.cpp.o.d"
  "/root/repo/src/runtime/failure_detector.cpp" "src/CMakeFiles/ftbar.dir/runtime/failure_detector.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/runtime/failure_detector.cpp.o.d"
  "/root/repo/src/runtime/network.cpp" "src/CMakeFiles/ftbar.dir/runtime/network.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/runtime/network.cpp.o.d"
  "/root/repo/src/runtime/process_host.cpp" "src/CMakeFiles/ftbar.dir/runtime/process_host.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/runtime/process_host.cpp.o.d"
  "/root/repo/src/topology/topology.cpp" "src/CMakeFiles/ftbar.dir/topology/topology.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/topology/topology.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/ftbar.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/ftbar.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/ftbar.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/ftbar.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/ftbar.dir/util/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
