# Empty compiler generated dependencies file for ftbar.
# This may be replaced when dependencies are built.
