file(REMOVE_RECURSE
  "libftbar.a"
)
