file(REMOVE_RECURSE
  "CMakeFiles/ext_instantiations_test.dir/ext_instantiations_test.cpp.o"
  "CMakeFiles/ext_instantiations_test.dir/ext_instantiations_test.cpp.o.d"
  "ext_instantiations_test"
  "ext_instantiations_test.pdb"
  "ext_instantiations_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_instantiations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
