# Empty compiler generated dependencies file for ext_instantiations_test.
# This may be replaced when dependencies are built.
