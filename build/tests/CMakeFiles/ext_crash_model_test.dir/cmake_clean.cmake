file(REMOVE_RECURSE
  "CMakeFiles/ext_crash_model_test.dir/ext_crash_model_test.cpp.o"
  "CMakeFiles/ext_crash_model_test.dir/ext_crash_model_test.cpp.o.d"
  "ext_crash_model_test"
  "ext_crash_model_test.pdb"
  "ext_crash_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_crash_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
