# Empty dependencies file for ext_crash_model_test.
# This may be replaced when dependencies are built.
