# Empty compiler generated dependencies file for core_phase_loop_test.
# This may be replaced when dependencies are built.
