file(REMOVE_RECURSE
  "CMakeFiles/core_phase_loop_test.dir/core_phase_loop_test.cpp.o"
  "CMakeFiles/core_phase_loop_test.dir/core_phase_loop_test.cpp.o.d"
  "core_phase_loop_test"
  "core_phase_loop_test.pdb"
  "core_phase_loop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_phase_loop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
