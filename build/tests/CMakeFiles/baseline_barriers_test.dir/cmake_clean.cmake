file(REMOVE_RECURSE
  "CMakeFiles/baseline_barriers_test.dir/baseline_barriers_test.cpp.o"
  "CMakeFiles/baseline_barriers_test.dir/baseline_barriers_test.cpp.o.d"
  "baseline_barriers_test"
  "baseline_barriers_test.pdb"
  "baseline_barriers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_barriers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
