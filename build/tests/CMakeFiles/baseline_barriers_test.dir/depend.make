# Empty dependencies file for baseline_barriers_test.
# This may be replaced when dependencies are built.
