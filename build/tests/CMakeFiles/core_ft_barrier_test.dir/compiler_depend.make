# Empty compiler generated dependencies file for core_ft_barrier_test.
# This may be replaced when dependencies are built.
