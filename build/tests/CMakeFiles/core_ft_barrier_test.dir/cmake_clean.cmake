file(REMOVE_RECURSE
  "CMakeFiles/core_ft_barrier_test.dir/core_ft_barrier_test.cpp.o"
  "CMakeFiles/core_ft_barrier_test.dir/core_ft_barrier_test.cpp.o.d"
  "core_ft_barrier_test"
  "core_ft_barrier_test.pdb"
  "core_ft_barrier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_ft_barrier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
