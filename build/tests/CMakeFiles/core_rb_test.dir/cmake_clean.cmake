file(REMOVE_RECURSE
  "CMakeFiles/core_rb_test.dir/core_rb_test.cpp.o"
  "CMakeFiles/core_rb_test.dir/core_rb_test.cpp.o.d"
  "core_rb_test"
  "core_rb_test.pdb"
  "core_rb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_rb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
