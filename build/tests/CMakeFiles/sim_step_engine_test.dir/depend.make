# Empty dependencies file for sim_step_engine_test.
# This may be replaced when dependencies are built.
