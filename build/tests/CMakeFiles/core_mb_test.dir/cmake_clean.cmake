file(REMOVE_RECURSE
  "CMakeFiles/core_mb_test.dir/core_mb_test.cpp.o"
  "CMakeFiles/core_mb_test.dir/core_mb_test.cpp.o.d"
  "core_mb_test"
  "core_mb_test.pdb"
  "core_mb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_mb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
