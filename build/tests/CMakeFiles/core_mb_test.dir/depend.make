# Empty dependencies file for core_mb_test.
# This may be replaced when dependencies are built.
