# Empty dependencies file for core_des_model_test.
# This may be replaced when dependencies are built.
