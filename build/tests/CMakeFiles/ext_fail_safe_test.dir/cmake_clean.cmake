file(REMOVE_RECURSE
  "CMakeFiles/ext_fail_safe_test.dir/ext_fail_safe_test.cpp.o"
  "CMakeFiles/ext_fail_safe_test.dir/ext_fail_safe_test.cpp.o.d"
  "ext_fail_safe_test"
  "ext_fail_safe_test.pdb"
  "ext_fail_safe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_fail_safe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
