# Empty compiler generated dependencies file for ext_fail_safe_test.
# This may be replaced when dependencies are built.
