# Empty compiler generated dependencies file for core_single_phase_test.
# This may be replaced when dependencies are built.
