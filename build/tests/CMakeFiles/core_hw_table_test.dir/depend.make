# Empty dependencies file for core_hw_table_test.
# This may be replaced when dependencies are built.
