file(REMOVE_RECURSE
  "CMakeFiles/core_token_ring_test.dir/core_token_ring_test.cpp.o"
  "CMakeFiles/core_token_ring_test.dir/core_token_ring_test.cpp.o.d"
  "core_token_ring_test"
  "core_token_ring_test.pdb"
  "core_token_ring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_token_ring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
