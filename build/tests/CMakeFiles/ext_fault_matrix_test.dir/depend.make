# Empty dependencies file for ext_fault_matrix_test.
# This may be replaced when dependencies are built.
