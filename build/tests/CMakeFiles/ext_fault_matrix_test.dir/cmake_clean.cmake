file(REMOVE_RECURSE
  "CMakeFiles/ext_fault_matrix_test.dir/ext_fault_matrix_test.cpp.o"
  "CMakeFiles/ext_fault_matrix_test.dir/ext_fault_matrix_test.cpp.o.d"
  "ext_fault_matrix_test"
  "ext_fault_matrix_test.pdb"
  "ext_fault_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_fault_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
