file(REMOVE_RECURSE
  "CMakeFiles/ext_fuzzy_barrier_test.dir/ext_fuzzy_barrier_test.cpp.o"
  "CMakeFiles/ext_fuzzy_barrier_test.dir/ext_fuzzy_barrier_test.cpp.o.d"
  "ext_fuzzy_barrier_test"
  "ext_fuzzy_barrier_test.pdb"
  "ext_fuzzy_barrier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_fuzzy_barrier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
