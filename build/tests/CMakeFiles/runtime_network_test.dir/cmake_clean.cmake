file(REMOVE_RECURSE
  "CMakeFiles/runtime_network_test.dir/runtime_network_test.cpp.o"
  "CMakeFiles/runtime_network_test.dir/runtime_network_test.cpp.o.d"
  "runtime_network_test"
  "runtime_network_test.pdb"
  "runtime_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
