# Empty dependencies file for runtime_network_test.
# This may be replaced when dependencies are built.
