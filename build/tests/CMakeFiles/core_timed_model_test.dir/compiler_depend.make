# Empty compiler generated dependencies file for core_timed_model_test.
# This may be replaced when dependencies are built.
