file(REMOVE_RECURSE
  "CMakeFiles/core_cb_test.dir/core_cb_test.cpp.o"
  "CMakeFiles/core_cb_test.dir/core_cb_test.cpp.o.d"
  "core_cb_test"
  "core_cb_test.pdb"
  "core_cb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_cb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
