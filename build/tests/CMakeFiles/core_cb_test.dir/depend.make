# Empty dependencies file for core_cb_test.
# This may be replaced when dependencies are built.
