file(REMOVE_RECURSE
  "CMakeFiles/property_rules_test.dir/property_rules_test.cpp.o"
  "CMakeFiles/property_rules_test.dir/property_rules_test.cpp.o.d"
  "property_rules_test"
  "property_rules_test.pdb"
  "property_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
