file(REMOVE_RECURSE
  "CMakeFiles/sim_model_check_test.dir/sim_model_check_test.cpp.o"
  "CMakeFiles/sim_model_check_test.dir/sim_model_check_test.cpp.o.d"
  "sim_model_check_test"
  "sim_model_check_test.pdb"
  "sim_model_check_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_model_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
