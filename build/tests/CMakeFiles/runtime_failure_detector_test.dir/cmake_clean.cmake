file(REMOVE_RECURSE
  "CMakeFiles/runtime_failure_detector_test.dir/runtime_failure_detector_test.cpp.o"
  "CMakeFiles/runtime_failure_detector_test.dir/runtime_failure_detector_test.cpp.o.d"
  "runtime_failure_detector_test"
  "runtime_failure_detector_test.pdb"
  "runtime_failure_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_failure_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
