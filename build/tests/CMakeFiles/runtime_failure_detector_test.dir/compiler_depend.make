# Empty compiler generated dependencies file for runtime_failure_detector_test.
# This may be replaced when dependencies are built.
