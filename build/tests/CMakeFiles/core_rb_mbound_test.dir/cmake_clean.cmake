file(REMOVE_RECURSE
  "CMakeFiles/core_rb_mbound_test.dir/core_rb_mbound_test.cpp.o"
  "CMakeFiles/core_rb_mbound_test.dir/core_rb_mbound_test.cpp.o.d"
  "core_rb_mbound_test"
  "core_rb_mbound_test.pdb"
  "core_rb_mbound_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_rb_mbound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
