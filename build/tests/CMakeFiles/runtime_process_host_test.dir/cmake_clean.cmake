file(REMOVE_RECURSE
  "CMakeFiles/runtime_process_host_test.dir/runtime_process_host_test.cpp.o"
  "CMakeFiles/runtime_process_host_test.dir/runtime_process_host_test.cpp.o.d"
  "runtime_process_host_test"
  "runtime_process_host_test.pdb"
  "runtime_process_host_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_process_host_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
