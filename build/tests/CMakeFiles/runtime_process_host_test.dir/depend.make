# Empty dependencies file for runtime_process_host_test.
# This may be replaced when dependencies are built.
