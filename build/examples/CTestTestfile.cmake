# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stencil_jacobi "/root/repo/build/examples/stencil_jacobi")
set_tests_properties(example_stencil_jacobi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mpi_style_bsp "/root/repo/build/examples/mpi_style_bsp")
set_tests_properties(example_mpi_style_bsp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_simulation_walkthrough "/root/repo/build/examples/simulation_walkthrough")
set_tests_properties(example_simulation_walkthrough PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_transaction_pipeline "/root/repo/build/examples/transaction_pipeline")
set_tests_properties(example_transaction_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
