# Empty dependencies file for mpi_style_bsp.
# This may be replaced when dependencies are built.
