file(REMOVE_RECURSE
  "CMakeFiles/mpi_style_bsp.dir/mpi_style_bsp.cpp.o"
  "CMakeFiles/mpi_style_bsp.dir/mpi_style_bsp.cpp.o.d"
  "mpi_style_bsp"
  "mpi_style_bsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_style_bsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
