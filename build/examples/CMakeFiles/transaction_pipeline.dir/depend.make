# Empty dependencies file for transaction_pipeline.
# This may be replaced when dependencies are built.
