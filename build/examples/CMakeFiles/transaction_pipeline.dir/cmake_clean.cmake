file(REMOVE_RECURSE
  "CMakeFiles/transaction_pipeline.dir/transaction_pipeline.cpp.o"
  "CMakeFiles/transaction_pipeline.dir/transaction_pipeline.cpp.o.d"
  "transaction_pipeline"
  "transaction_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transaction_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
