# Empty dependencies file for stencil_jacobi.
# This may be replaced when dependencies are built.
