# Empty compiler generated dependencies file for simulation_walkthrough.
# This may be replaced when dependencies are built.
