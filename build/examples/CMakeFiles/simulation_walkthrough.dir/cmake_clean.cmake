file(REMOVE_RECURSE
  "CMakeFiles/simulation_walkthrough.dir/simulation_walkthrough.cpp.o"
  "CMakeFiles/simulation_walkthrough.dir/simulation_walkthrough.cpp.o.d"
  "simulation_walkthrough"
  "simulation_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulation_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
