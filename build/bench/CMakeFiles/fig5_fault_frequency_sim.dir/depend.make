# Empty dependencies file for fig5_fault_frequency_sim.
# This may be replaced when dependencies are built.
