file(REMOVE_RECURSE
  "CMakeFiles/fig5_fault_frequency_sim.dir/fig5_fault_frequency_sim.cpp.o"
  "CMakeFiles/fig5_fault_frequency_sim.dir/fig5_fault_frequency_sim.cpp.o.d"
  "fig5_fault_frequency_sim"
  "fig5_fault_frequency_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_fault_frequency_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
