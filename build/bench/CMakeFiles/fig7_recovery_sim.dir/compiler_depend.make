# Empty compiler generated dependencies file for fig7_recovery_sim.
# This may be replaced when dependencies are built.
