# Empty dependencies file for fig6_overhead_sim.
# This may be replaced when dependencies are built.
