file(REMOVE_RECURSE
  "CMakeFiles/fig6_overhead_sim.dir/fig6_overhead_sim.cpp.o"
  "CMakeFiles/fig6_overhead_sim.dir/fig6_overhead_sim.cpp.o.d"
  "fig6_overhead_sim"
  "fig6_overhead_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_overhead_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
