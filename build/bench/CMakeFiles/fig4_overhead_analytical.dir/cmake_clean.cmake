file(REMOVE_RECURSE
  "CMakeFiles/fig4_overhead_analytical.dir/fig4_overhead_analytical.cpp.o"
  "CMakeFiles/fig4_overhead_analytical.dir/fig4_overhead_analytical.cpp.o.d"
  "fig4_overhead_analytical"
  "fig4_overhead_analytical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_overhead_analytical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
