# Empty dependencies file for fig4_overhead_analytical.
# This may be replaced when dependencies are built.
