# Empty compiler generated dependencies file for fig3_fault_frequency_analytical.
# This may be replaced when dependencies are built.
