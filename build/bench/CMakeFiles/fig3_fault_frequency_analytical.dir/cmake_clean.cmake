file(REMOVE_RECURSE
  "CMakeFiles/fig3_fault_frequency_analytical.dir/fig3_fault_frequency_analytical.cpp.o"
  "CMakeFiles/fig3_fault_frequency_analytical.dir/fig3_fault_frequency_analytical.cpp.o.d"
  "fig3_fault_frequency_analytical"
  "fig3_fault_frequency_analytical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_fault_frequency_analytical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
