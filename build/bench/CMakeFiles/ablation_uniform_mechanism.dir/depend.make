# Empty dependencies file for ablation_uniform_mechanism.
# This may be replaced when dependencies are built.
