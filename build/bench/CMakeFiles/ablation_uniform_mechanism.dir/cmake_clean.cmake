file(REMOVE_RECURSE
  "CMakeFiles/ablation_uniform_mechanism.dir/ablation_uniform_mechanism.cpp.o"
  "CMakeFiles/ablation_uniform_mechanism.dir/ablation_uniform_mechanism.cpp.o.d"
  "ablation_uniform_mechanism"
  "ablation_uniform_mechanism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_uniform_mechanism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
