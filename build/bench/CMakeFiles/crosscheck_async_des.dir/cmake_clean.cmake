file(REMOVE_RECURSE
  "CMakeFiles/crosscheck_async_des.dir/crosscheck_async_des.cpp.o"
  "CMakeFiles/crosscheck_async_des.dir/crosscheck_async_des.cpp.o.d"
  "crosscheck_async_des"
  "crosscheck_async_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crosscheck_async_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
