# Empty compiler generated dependencies file for crosscheck_async_des.
# This may be replaced when dependencies are built.
