#include "trace/export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "trace/event.hpp"

namespace ftbar::trace {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) out.push_back(line);
  return out;
}

std::size_t count_of(const std::string& text, const std::string& needle) {
  std::size_t n = 0;
  for (auto at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

std::vector<TraceEvent> sample_events() {
  std::vector<TraceEvent> events;
  auto add = [&](TraceEvent e) {
    e.seq = events.size();
    events.push_back(e);
  };
  add(make_event(Kind::kActionFired, 1.0, 0, 7, 0, 0, "follower@0"));
  add(make_event(Kind::kPhaseStart, 2.0, 1, 0, 1));
  add(make_event(Kind::kMsgSend, 3.0, 0, 1, 42, 5));
  add(make_event(Kind::kPhaseComplete, 4.0, 1, 0));
  add(make_event(Kind::kLog, 5.0, -1, 2, 0, 0, "hello \"world\"\n"));
  return events;
}

TEST(ExportJsonl, OneParsableObjectPerEventInOrder) {
  const auto events = sample_events();
  std::ostringstream os;
  write_jsonl(os, events);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), events.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(json_int_field(lines[i], "seq"), static_cast<long long>(i));
    EXPECT_EQ(json_string_field(lines[i], "kind"),
              std::string(kind_name(events[i].kind)));
    EXPECT_EQ(json_int_field(lines[i], "proc"),
              static_cast<long long>(events[i].proc));
    EXPECT_EQ(json_int_field(lines[i], "a"), events[i].a);
    EXPECT_EQ(json_int_field(lines[i], "b"), events[i].b);
    EXPECT_EQ(json_int_field(lines[i], "c"), events[i].c);
  }
}

TEST(ExportJsonl, LabelsAreEscaped) {
  const auto events = sample_events();
  std::ostringstream os;
  write_jsonl(os, events);
  const auto lines = lines_of(os.str());
  EXPECT_NE(lines.back().find("hello \\\"world\\\"\\n"), std::string::npos);
}

TEST(ExportChrome, PhaseSlicesBalance) {
  std::vector<TraceEvent> events;
  auto add = [&](TraceEvent e) {
    e.seq = events.size();
    events.push_back(e);
  };
  // Start/complete pair, a dangling start (auto-closed), and an abort that
  // closes an open slice.
  add(make_event(Kind::kPhaseStart, 1.0, 0, 0, 1));
  add(make_event(Kind::kPhaseComplete, 2.0, 0, 0));
  add(make_event(Kind::kPhaseStart, 3.0, 1, 1, 1));
  add(make_event(Kind::kPhaseAbort, 4.0, 1));
  add(make_event(Kind::kPhaseStart, 5.0, 2, 0, 1));  // never closed

  std::ostringstream os;
  write_chrome_trace(os, events, 1000.0);
  const std::string out = os.str();
  EXPECT_EQ(count_of(out, "\"ph\":\"B\""), count_of(out, "\"ph\":\"E\""))
      << "B/E slices must balance or the viewer rejects the stream:\n"
      << out;
  EXPECT_EQ(count_of(out, "\"ph\":\"B\""), 3u);
}

TEST(ExportChrome, WrapsEventsInATraceEventsObject) {
  const auto events = sample_events();
  std::ostringstream os;
  write_chrome_trace(os, events, 1000.0);
  const std::string out = os.str();
  EXPECT_EQ(out.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(out.find("]}"), std::string::npos);
  // Action firings are complete ("X") slices; instants carry s scope.
  EXPECT_GE(count_of(out, "\"ph\":\"X\""), 1u);
  EXPECT_GE(count_of(out, "\"ph\":\"i\""), 1u);
  // Balanced braces/brackets — a cheap structural validity check.
  EXPECT_EQ(count_of(out, "{"), count_of(out, "}"));
  EXPECT_EQ(count_of(out, "["), count_of(out, "]"));
}

TEST(ExportFile, WritesAndRejectsUnknownFormat) {
  const auto events = sample_events();
  const std::string path = "trace_export_test_tmp.jsonl";
  EXPECT_TRUE(write_trace_file(path, "jsonl", events));
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string first;
  std::getline(is, first);
  EXPECT_EQ(json_int_field(first, "seq"), 0);
  is.close();
  EXPECT_FALSE(write_trace_file(path, "protobuf", events));
  std::remove(path.c_str());
}

TEST(ExportJson, FieldExtractionHandlesMissingAndStringValues) {
  const std::string line = "{\"kind\":\"msg_send\",\"a\":-3,\"t\":1.5}";
  EXPECT_EQ(json_string_field(line, "kind"), std::string("msg_send"));
  EXPECT_EQ(json_int_field(line, "a"), -3);
  EXPECT_FALSE(json_int_field(line, "kind").has_value());
  EXPECT_FALSE(json_string_field(line, "missing").has_value());
  EXPECT_FALSE(json_int_field(line, "missing").has_value());
}

}  // namespace
}  // namespace ftbar::trace
