#include "core/spec.hpp"

#include <gtest/gtest.h>

#include "check/swarm.hpp"
#include "core/rb.hpp"

namespace ftbar::core {
namespace {

// Drives one full, correct instance of `ph` on `n` processes.
void run_phase(SpecMonitor& m, int n, int ph) {
  m.on_start(0, ph, /*new_instance=*/true);
  for (int p = 1; p < n; ++p) m.on_start(p, ph, false);
  for (int p = 0; p < n; ++p) m.on_complete(p, ph);
}

TEST(SpecMonitor, FaultFreeCycleIsSafe) {
  SpecMonitor m(3, 4);
  for (int round = 0; round < 3; ++round) {
    for (int ph = 0; ph < 4; ++ph) run_phase(m, 3, ph);
  }
  EXPECT_TRUE(m.safety_ok()) << m.violations().front();
  EXPECT_EQ(m.successful_phases(), 12u);
  EXPECT_EQ(m.total_instances(), 12u);
  EXPECT_EQ(m.failed_instances(), 0u);
}

TEST(SpecMonitor, PhaseWrapsModulo) {
  SpecMonitor m(2, 2);
  run_phase(m, 2, 0);
  run_phase(m, 2, 1);
  run_phase(m, 2, 0);  // wraps
  EXPECT_TRUE(m.safety_ok());
  EXPECT_EQ(m.successful_phases(), 3u);
}

TEST(SpecMonitor, SkippingAPhaseViolatesSafety) {
  SpecMonitor m(2, 4);
  run_phase(m, 2, 0);
  m.on_start(0, 2, true);  // phase 1 skipped
  EXPECT_FALSE(m.safety_ok());
}

TEST(SpecMonitor, NextPhaseBeforeSuccessViolatesSafety) {
  SpecMonitor m(2, 4);
  m.on_start(0, 0, true);
  m.on_start(1, 0, false);
  m.on_complete(0, 0);
  // Process 1 never completes; a fresh instance of phase 1 opens anyway.
  m.on_abort(1);
  m.on_start(0, 1, true);
  EXPECT_FALSE(m.safety_ok());
}

TEST(SpecMonitor, RetryOfFailedInstanceIsSafe) {
  SpecMonitor m(2, 4);
  m.on_start(0, 0, true);
  m.on_start(1, 0, false);
  m.on_complete(0, 0);
  m.on_abort(1);  // process 1 lost its state
  // New instance of the same phase once nobody is executing.
  run_phase(m, 2, 0);
  run_phase(m, 2, 1);
  EXPECT_TRUE(m.safety_ok()) << m.violations().front();
  EXPECT_EQ(m.failed_instances(), 1u);
  EXPECT_EQ(m.total_instances(), 3u);
  EXPECT_EQ(m.successful_phases(), 2u);
}

TEST(SpecMonitor, OverlappingInstancesViolateSafety) {
  SpecMonitor m(3, 4);
  m.on_start(0, 0, true);
  m.on_start(1, 0, false);
  m.on_complete(0, 0);
  m.on_abort(2);  // irrelevant: 2 never started
  // Process 1 is still executing; opening a new instance now overlaps.
  m.on_start(2, 0, true);
  EXPECT_FALSE(m.safety_ok());
}

TEST(SpecMonitor, ReExecutionAfterSuccessIsSafe) {
  // The program may conservatively re-execute an already-successful phase
  // (e.g. a process was reset after completing). The phase counts as
  // successful when the LAST instance succeeds.
  SpecMonitor m(2, 4);
  run_phase(m, 2, 0);
  run_phase(m, 2, 0);  // repeat of phase 0
  run_phase(m, 2, 1);
  EXPECT_TRUE(m.safety_ok()) << m.violations().front();
  EXPECT_EQ(m.successful_phases(), 2u);
  EXPECT_EQ(m.total_instances(), 3u);
}

TEST(SpecMonitor, DoubleExecutionInOneInstanceViolates) {
  SpecMonitor m(2, 4);
  m.on_start(0, 0, true);
  m.on_start(0, 0, false);  // same process starts again mid-instance
  EXPECT_FALSE(m.safety_ok());
}

TEST(SpecMonitor, CompletionWithoutStartViolates) {
  SpecMonitor m(2, 4);
  m.on_start(0, 0, true);
  m.on_complete(1, 0);
  EXPECT_FALSE(m.safety_ok());
}

TEST(SpecMonitor, CompletionAfterAbortViolates) {
  SpecMonitor m(2, 4);
  m.on_start(0, 0, true);
  m.on_start(1, 0, false);
  m.on_abort(1);
  m.on_complete(1, 0);  // 1's execution was discarded by the reset
  EXPECT_FALSE(m.safety_ok());
}

TEST(SpecMonitor, DoubleCompletionViolates) {
  SpecMonitor m(2, 4);
  m.on_start(0, 0, true);
  m.on_start(1, 0, false);
  m.on_complete(0, 0);
  m.on_complete(0, 0);
  EXPECT_FALSE(m.safety_ok());
}

TEST(SpecMonitor, WrongPhaseJoinViolates) {
  SpecMonitor m(2, 4);
  m.on_start(0, 0, true);
  m.on_start(1, 1, false);  // joins with the wrong phase
  EXPECT_FALSE(m.safety_ok());
}

TEST(SpecMonitor, SimultaneousOpeningsArePristineJoins) {
  // Under maximal parallelism several processes may take the instance-
  // opening transition in the same step; as long as the instance is
  // pristine this is a join, not an overlap.
  SpecMonitor m(3, 4);
  m.on_start(0, 0, true);
  m.on_start(1, 0, true);
  m.on_start(2, 0, true);
  for (int p = 0; p < 3; ++p) m.on_complete(p, 0);
  EXPECT_TRUE(m.safety_ok()) << m.violations().front();
  EXPECT_EQ(m.total_instances(), 1u);
}

TEST(SpecMonitor, DesyncSuspendsChecking) {
  SpecMonitor m(2, 4);
  run_phase(m, 2, 0);
  m.on_undetectable_fault();
  EXPECT_TRUE(m.desynced());
  // Wild events while desynced are not violations.
  m.on_start(0, 3, true);
  m.on_complete(1, 2);
  EXPECT_TRUE(m.safety_ok());
  m.resync(2);
  EXPECT_FALSE(m.desynced());
  EXPECT_EQ(m.expected_phase(), 2);
  run_phase(m, 2, 2);
  run_phase(m, 2, 3);
  EXPECT_TRUE(m.safety_ok()) << m.violations().front();
}

TEST(SpecMonitor, DesyncMidInstanceCountsItFailed) {
  SpecMonitor m(2, 4);
  m.on_start(0, 0, true);
  m.on_undetectable_fault();
  EXPECT_EQ(m.failed_instances(), 1u);
}

TEST(SpecMonitor, ResyncNormalizesPhase) {
  SpecMonitor m(2, 4);
  m.resync(-3);
  EXPECT_EQ(m.expected_phase(), 1);
  m.resync(6);
  EXPECT_EQ(m.expected_phase(), 2);
}

TEST(SpecMonitor, AnyoneExecutingTracksLifecycle) {
  SpecMonitor m(2, 4);
  EXPECT_FALSE(m.anyone_executing());
  m.on_start(0, 0, true);
  EXPECT_TRUE(m.anyone_executing());
  m.on_start(1, 0, false);
  m.on_complete(0, 0);
  EXPECT_TRUE(m.anyone_executing());
  m.on_complete(1, 0);
  EXPECT_FALSE(m.anyone_executing());
}

TEST(SpecMonitor, StaysSafeAlongSwarmWalksOfFaultFreeRb) {
  // The unit tests above feed the monitor hand-written event sequences;
  // this drives it from the check/ subsystem's swarm walker instead: a
  // fault-free random walk of RB (monitor superposed on the actions) must
  // never trip a safety rule and must complete phases. One sequential walk:
  // the monitor is shared mutable state, so no concurrent walks.
  const auto opt = rb_ring_options(4, 4);
  SpecMonitor monitor(4, 4);
  const auto actions = make_rb_actions(opt, &monitor);
  check::SwarmOptions sopt;
  sopt.walks = 1;
  sopt.depth = 400;
  sopt.threads = 1;
  const std::function<RbState(util::Rng&)> make_root =
      [&](util::Rng&) { return rb_start_state(opt); };
  const auto res = check::swarm_check<RbProc>(
      actions, make_root, [](const RbState&) { return true; }, sopt);
  EXPECT_TRUE(res.ok());
  EXPECT_GT(res.total_steps, 0u);
  EXPECT_TRUE(monitor.safety_ok()) << monitor.violations().front();
  EXPECT_GT(monitor.successful_phases(), 0u);
}

TEST(SpecMonitor, FailedInstanceBoundaryRequiresQuiescence) {
  SpecMonitor m(2, 4);
  m.on_start(0, 0, true);
  m.on_start(1, 0, false);
  m.on_abort(0);
  m.on_abort(1);
  // All participants aborted; a fresh instance may open.
  run_phase(m, 2, 0);
  EXPECT_TRUE(m.safety_ok()) << m.violations().front();
  EXPECT_EQ(m.failed_instances(), 1u);
}

}  // namespace
}  // namespace ftbar::core
