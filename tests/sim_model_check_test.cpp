#include "sim/model_check.hpp"

#include <gtest/gtest.h>

#include "check/checker.hpp"

namespace ftbar::sim {
namespace {

struct Bit {
  int v = 0;
  friend auto operator<=>(const Bit&, const Bit&) = default;
};
using State = std::vector<Bit>;

struct BitHash {
  std::size_t operator()(const State& s) const {
    std::size_t h = 1469598103934665603ULL;
    for (const auto& b : s) {
      h ^= static_cast<std::size_t>(b.v);
      h *= 1099511628211ULL;
    }
    return h;
  }
};

Action<Bit> set_bit(int j) {
  const auto uj = static_cast<std::size_t>(j);
  return make_action<Bit>(
      "set@" + std::to_string(j), j,
      [uj](const State& s) { return s[uj].v == 0; },
      [uj](State& s) { s[uj].v = 1; });
}

TEST(Explorer, CountsReachableStates) {
  Explorer<Bit, BitHash> ex({set_bit(0), set_bit(1)}, BitHash{});
  const auto result = ex.explore({State{Bit{0}, Bit{0}}},
                                 [](const State&) { return true; });
  // (0,0) -> (1,0),(0,1) -> (1,1): four states.
  EXPECT_EQ(result.states_visited, 4u);
  EXPECT_FALSE(result.violation.has_value());
  EXPECT_FALSE(result.truncated);
}

TEST(Explorer, FindsInvariantViolation) {
  Explorer<Bit, BitHash> ex({set_bit(0), set_bit(1)}, BitHash{});
  const auto result =
      ex.explore({State{Bit{0}, Bit{0}}},
                 [](const State& s) { return s[0].v + s[1].v < 2; });
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ((*result.violation)[0].v + (*result.violation)[1].v, 2);
  EXPECT_FALSE(result.violated_by.empty());
}

TEST(Explorer, ViolatingInitialStateReported) {
  Explorer<Bit, BitHash> ex({set_bit(0)}, BitHash{});
  const auto result =
      ex.explore({State{Bit{1}}}, [](const State& s) { return s[0].v == 0; });
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violated_by, "<initial>");
}

TEST(Explorer, MultipleRootsAreMerged) {
  Explorer<Bit, BitHash> ex({set_bit(0)}, BitHash{});
  const auto result = ex.explore({State{Bit{0}}, State{Bit{1}}},
                                 [](const State&) { return true; });
  EXPECT_EQ(result.states_visited, 2u);
}

TEST(Explorer, TruncatesAtMaxStates) {
  // Mod-counter with a huge range; cap exploration.
  auto inc = make_action<Bit>(
      "inc", 0, [](const State& s) { return s[0].v < 1'000'000; },
      [](State& s) { ++s[0].v; });
  Explorer<Bit, BitHash> ex({inc}, BitHash{}, /*max_states=*/50);
  const auto result = ex.explore({State{Bit{0}}}, [](const State&) { return true; });
  EXPECT_TRUE(result.truncated);
  EXPECT_LE(result.states_visited, 51u);
}

TEST(Explorer, LegitReachableFromAll) {
  // set_bit drives everything toward (1,1); let legit = all ones.
  Explorer<Bit, BitHash> ex({set_bit(0), set_bit(1)}, BitHash{});
  ex.explore({State{Bit{0}, Bit{0}}}, [](const State&) { return true; });
  EXPECT_TRUE(ex.legit_reachable_from_all(
      [](const State& s) { return s[0].v == 1 && s[1].v == 1; }));
  // An unreachable legit definition must fail.
  EXPECT_FALSE(ex.legit_reachable_from_all(
      [](const State& s) { return s[0].v == 7; }));
}

TEST(Explorer, ConvergesOutsideAcceptsAcyclicEscape) {
  // 0 -> 1 -> 2 (legit). Non-legit subgraph {0,1} is acyclic with no
  // deadlock, so convergence holds under any scheduling.
  auto inc = make_action<Bit>(
      "inc", 0, [](const State& s) { return s[0].v < 2; },
      [](State& s) { ++s[0].v; });
  Explorer<Bit, BitHash> ex({inc}, BitHash{});
  ex.explore({State{Bit{0}}}, [](const State&) { return true; });
  EXPECT_TRUE(ex.converges_outside([](const State& s) { return s[0].v == 2; }));
}

TEST(Explorer, ConvergesOutsideRejectsCycles) {
  // v flips between 0 and 1 forever; legit is unreachable v==2.
  auto flip = make_action<Bit>(
      "flip", 0, [](const State&) { return true; },
      [](State& s) { s[0].v = 1 - s[0].v; });
  Explorer<Bit, BitHash> ex({flip}, BitHash{});
  ex.explore({State{Bit{0}}}, [](const State&) { return true; });
  EXPECT_FALSE(ex.converges_outside([](const State& s) { return s[0].v == 2; }));
}

TEST(Explorer, ConvergesOutsideRejectsNonLegitDeadlock) {
  // A single state with no transitions that is not legit.
  auto never = make_action<Bit>(
      "never", 0, [](const State&) { return false; }, [](State&) {});
  Explorer<Bit, BitHash> ex({never}, BitHash{});
  ex.explore({State{Bit{0}}}, [](const State&) { return true; });
  EXPECT_FALSE(ex.converges_outside([](const State& s) { return s[0].v == 1; }));
  EXPECT_TRUE(ex.converges_outside([](const State& s) { return s[0].v == 0; }));
}

TEST(Explorer, ViolatingTransitionIsRecordedInTheGraph) {
  // Regression: the edge INTO a violating state used to be dropped by the
  // violation early-return, silently truncating the graph handed to the
  // convergence queries. With 0 -> 1 -> 2 and the invariant failing at 2,
  // state 1 reaches the violating state only through that final edge.
  auto inc = make_action<Bit>(
      "inc", 0, [](const State& s) { return s[0].v < 2; },
      [](State& s) { ++s[0].v; });
  Explorer<Bit, BitHash> ex({inc}, BitHash{});
  const auto result =
      ex.explore({State{Bit{0}}}, [](const State& s) { return s[0].v < 2; });
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_TRUE(ex.legit_reachable_from_all(
      [](const State& s) { return s[0].v == 2; }));
}

TEST(Explorer, AgreesWithTheCheckSubsystem) {
  // The seed Explorer stays on as the differential oracle for the check/
  // subsystem that supersedes it (tests/check_fuzz_test.cpp runs the full
  // 500-seed sweep; this pins the toy model both suites reason about).
  const std::vector<Action<Bit>> actions{set_bit(0), set_bit(1)};
  Explorer<Bit, BitHash> ex(actions, BitHash{});
  const auto seed =
      ex.explore({State{Bit{0}, Bit{0}}}, [](const State&) { return true; });
  check::Checker<Bit> ck(actions, 2);
  const auto res =
      ck.run({State{Bit{0}, Bit{0}}}, [](const State&) { return true; });
  EXPECT_EQ(res.states_visited, seed.states_visited);
  EXPECT_FALSE(res.violation.has_value());
}

TEST(Explorer, StatesAccessorExposesAllStates) {
  Explorer<Bit, BitHash> ex({set_bit(0), set_bit(1)}, BitHash{});
  ex.explore({State{Bit{0}, Bit{0}}}, [](const State&) { return true; });
  EXPECT_EQ(ex.states().size(), 4u);
}

}  // namespace
}  // namespace ftbar::sim
