// Kill/rejoin recovery: a thread is killed at every kill point of every
// barrier flavor; the survivors must detect the death, keep committing
// episodes without the victim, and a replacement thread must rejoin the
// slot and be required again within a bounded number of episodes. The
// traced scenario additionally replays the whole run through the offline
// spec checker (trace::check_trace), membership events included.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "hwbar/central.hpp"
#include "hwbar/tree.hpp"
#include "trace/monitor.hpp"
#include "trace/recorder.hpp"

namespace ftbar::hwbar {
namespace {

using std::chrono::steady_clock;

// Detection margin: must dominate worst-case scheduling noise on a loaded
// single-core CI box (thread spawn alone has been observed to take
// >250 ms under a parallel ctest, and >1 s under TSan), or the detector
// legitimately declares a live-but-unscheduled thread dead and the armed
// kill never fires.
#if defined(__SANITIZE_THREAD__)
#define FTBAR_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FTBAR_TEST_TSAN 1
#endif
#endif
#ifdef FTBAR_TEST_TSAN
constexpr std::chrono::milliseconds kDetect{4000};
#else
constexpr std::chrono::milliseconds kDetect{1000};
#endif
constexpr std::chrono::seconds kDeadline{60};
// Per-round simulated phase work: keeps the free-running episode count (and
// the traced event volume) small, and stays far under the detect timeout.
constexpr std::chrono::microseconds kWork{200};
constexpr std::uint64_t kKillEpisode = 2;

Options recovery_options(FaultInjector* injector,
                         trace::Sink* sink = nullptr) {
  Options opt;
  opt.suspect_after = kDetect;
  opt.num_phases = 16;
  opt.injector = injector;
  opt.sink = sink;
  return opt;
}

struct Outcome {
  std::atomic<bool> victim_died{false};
  std::atomic<bool> rejoin_ok{false};
  std::atomic<std::uint64_t> reentry_delta{0};
  std::atomic<int> troubles{0};  ///< unexpected ticket statuses anywhere
};

/// Runs n worker threads through the barrier until stop, kills the armed
/// victim, waits for the declaration, rejoins the slot with a replacement
/// thread, lets the recovered membership commit five more episodes
/// together, and shuts down through retire() so nobody wedges.
void run_kill_and_rejoin(HwBarrier& bar, int n, int victim, Outcome* out) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(n));
  for (int tid = 0; tid < n; ++tid) {
    workers.emplace_back([&, tid] {
      for (;;) {
        std::this_thread::sleep_for(kWork);
        const Ticket t = bar.arrive_and_wait(tid);
        if (t.status == ArriveStatus::kDied) {
          out->victim_died.store(true);
          return;
        }
        if (t.status != ArriveStatus::kReleased) {
          ++out->troubles;
          return;
        }
        if (stop.load()) {
          bar.retire(tid);
          return;
        }
      }
    });
  }

  const auto deadline = steady_clock::now() + kDeadline;
  auto give_up = [&](const char* what) {
    ADD_FAILURE() << what;
    stop.store(true);
    for (auto& w : workers) {
      if (w.joinable()) w.join();
    }
  };

  // Phase 1: the detector must declare the victim dead.
  while (bar.stats().deaths == 0) {
    if (steady_clock::now() > deadline) {
      give_up("victim was never declared dead");
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  workers[static_cast<std::size_t>(victim)].join();
  EXPECT_TRUE(out->victim_died.load());
  EXPECT_EQ(bar.slot_state(victim), SlotState::kDead);

  // Phase 2: a replacement thread takes over the dead slot.
  std::thread replacement([&] {
    const Ticket rt = bar.rejoin(victim);
    if (rt.status != ArriveStatus::kReleased || !rt.recovered) {
      ++out->troubles;
      return;
    }
    out->rejoin_ok.store(true);
    // Bounded re-entry: from the rejoin ticket on, the slot is required
    // again, so the survivors cannot run ahead — the first real arrival
    // lands at most two episodes after the rejoin ticket.
    Ticket t = bar.arrive_and_wait(victim);
    if (t.status != ArriveStatus::kReleased) {
      ++out->troubles;
      return;
    }
    out->reentry_delta.store(t.episode - rt.episode);
    for (;;) {
      if (stop.load()) {
        bar.retire(victim);
        return;
      }
      std::this_thread::sleep_for(kWork);
      t = bar.arrive_and_wait(victim);
      if (t.status != ArriveStatus::kReleased) {
        ++out->troubles;
        return;
      }
    }
  });

  // Phase 3: the recovered membership must keep committing episodes.
  const std::uint64_t resume_target = bar.episode() + 5;
  while (bar.episode() < resume_target) {
    if (steady_clock::now() > deadline) {
      give_up("recovered membership stopped committing episodes");
      replacement.join();
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  for (auto& w : workers) {
    if (w.joinable()) w.join();
  }
  replacement.join();
}

void expect_recovered(const HwBarrier& bar, const Outcome& out,
                      const char* what) {
  SCOPED_TRACE(what);
  EXPECT_TRUE(out.victim_died.load());
  EXPECT_TRUE(out.rejoin_ok.load());
  EXPECT_EQ(out.troubles.load(), 0);
  EXPECT_GE(out.reentry_delta.load(), 1U);
  EXPECT_LE(out.reentry_delta.load(), 2U);
  const Stats s = bar.stats();
  EXPECT_EQ(s.deaths, 1U);
  EXPECT_EQ(s.rejoins, 1U);
}

TEST(HwBarrierRecovery, CentralKillAtEveryKillPoint) {
  const auto points = CentralHwBarrier(1, Options{}).kill_points();
  for (const KillPoint point : points) {
    FaultInjector inj;
    CentralHwBarrier bar(4, recovery_options(&inj));
    const int victim = 2;
    inj.arm(victim, kKillEpisode, point);
    Outcome out;
    run_kill_and_rejoin(bar, 4, victim, &out);
    EXPECT_EQ(inj.kills(), 1U) << kill_point_name(point);
    expect_recovered(bar, out, kill_point_name(point));
  }
}

TEST(HwBarrierRecovery, TreeKillAtEveryKillPoint) {
  const auto points = TreeHwBarrier(1, Options{}).kill_points();
  for (const KillPoint point : points) {
    FaultInjector inj;
    TreeHwBarrier bar(4, recovery_options(&inj), 2);
    // kAfterCommit is only on the root's path; every other point is
    // reachable by any thread — use a leaf to exercise the longest
    // combine/cascade dependencies.
    const int victim = point == KillPoint::kAfterCommit ? 0 : 2;
    inj.arm(victim, kKillEpisode, point);
    Outcome out;
    run_kill_and_rejoin(bar, 4, victim, &out);
    EXPECT_EQ(inj.kills(), 1U) << kill_point_name(point);
    expect_recovered(bar, out, kill_point_name(point));
  }
}

TEST(HwBarrierRecovery, RootDeathDegradesAndRootRejoins) {
  // The root is the tree's committer: killing it mid-protocol forces the
  // survivors onto the scan path for detection AND commit, and the
  // rejoined root must eventually resume wave commits.
  FaultInjector inj;
  TreeHwBarrier bar(4, recovery_options(&inj), 2);
  inj.arm(0, kKillEpisode, KillPoint::kArriveEntry);
  Outcome out;
  run_kill_and_rejoin(bar, 4, 0, &out);
  expect_recovered(bar, out, "root kill");
  EXPECT_GE(bar.stats().scan_commits, 1U);
}

TEST(HwBarrierRecovery, TracedRunPassesSpecCheckWithMembershipEvents) {
  trace::TraceRecorder recorder(std::size_t{1} << 20);
  FaultInjector inj;
  TreeHwBarrier bar(4, recovery_options(&inj, &recorder), 2);
  inj.arm(2, kKillEpisode, KillPoint::kArriveEntry);
  Outcome out;
  run_kill_and_rejoin(bar, 4, 2, &out);
  expect_recovered(bar, out, "traced kill");
  ASSERT_EQ(recorder.dropped(), 0U);

  const auto events = recorder.snapshot();
  std::size_t kills = 0;
  std::size_t restarts = 0;
  std::size_t repairs = 0;
  for (const auto& e : events) {
    if (e.kind == trace::Kind::kRankKill) ++kills;
    if (e.kind == trace::Kind::kRankRestart) ++restarts;
    if (e.kind == trace::Kind::kBarrierRepair) ++repairs;
  }
  EXPECT_GE(kills, 4U);  // 1 declaration + 3 retires (b=1)
  EXPECT_EQ(restarts, 1U);
  EXPECT_GE(repairs, 1U);  // at least the unwedging commit was a repair

  const auto check = trace::check_trace(events, 4, bar.num_phases());
  EXPECT_TRUE(check.ok) << (check.violations.empty()
                                ? "no violations"
                                : check.violations.front());
  EXPECT_GT(check.successful_phases, kKillEpisode);
  EXPECT_EQ(check.failed_instances, 0U);
}

}  // namespace
}  // namespace ftbar::hwbar
