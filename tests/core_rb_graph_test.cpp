// Figure 2(d): RB on a spanning tree embedded in an ARBITRARY connected
// graph — the construction by which Section 4.2 extends the program to any
// topology while preserving its tolerances.
#include <gtest/gtest.h>

#include "core/rb.hpp"
#include "sim/step_engine.hpp"

namespace ftbar::core {
namespace {

/// Random connected graph: a random spanning path plus extra random edges.
std::vector<std::pair<int, int>> random_connected_graph(int n, int extra_edges,
                                                        util::Rng& rng) {
  std::vector<int> order;
  for (int v = 0; v < n; ++v) order.push_back(v);
  for (int i = n - 1; i > 0; --i) {
    std::swap(order[static_cast<std::size_t>(i)],
              order[static_cast<std::size_t>(
                  rng.uniform(static_cast<std::uint64_t>(i + 1)))]);
  }
  // Keep process 0 first so it remains the root after relabeling-free
  // embedding (the protocols pin the decision process to id 0).
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] == 0) {
      std::swap(order[0], order[i]);
      break;
    }
  }
  std::vector<std::pair<int, int>> edges;
  for (int i = 1; i < n; ++i) {
    edges.emplace_back(order[static_cast<std::size_t>(i - 1)],
                       order[static_cast<std::size_t>(i)]);
  }
  for (int e = 0; e < extra_edges; ++e) {
    const int a = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
    int b = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
    if (b == a) b = (b + 1) % n;
    edges.emplace_back(a, b);
  }
  return edges;
}

class RbOnRandomGraph : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RbOnRandomGraph, FaultFreeSpecHolds) {
  util::Rng rng(GetParam());
  const int n = 6 + static_cast<int>(rng.uniform(10));
  const auto edges = random_connected_graph(n, n / 2, rng);
  const auto topo = std::make_shared<const topology::Topology>(
      topology::Topology::spanning_tree(n, edges));
  const RbOptions opt{topo, 3, 0};

  SpecMonitor monitor(n, 3);
  sim::StepEngine<RbProc> eng(rb_start_state(opt), make_rb_actions(opt, &monitor),
                              rng.fork(1), sim::Semantics::kMaxParallel);
  const auto done = eng.run_until(
      [&](const RbState&) { return monitor.successful_phases() >= 6; }, 500'000);
  ASSERT_TRUE(done.has_value());
  EXPECT_TRUE(monitor.safety_ok()) << monitor.violations().front();
  EXPECT_EQ(monitor.total_instances(), monitor.successful_phases());
}

TEST_P(RbOnRandomGraph, StabilizesAfterGlobalCorruption) {
  util::Rng rng(GetParam() ^ 0x2dULL);
  const int n = 5 + static_cast<int>(rng.uniform(8));
  const auto edges = random_connected_graph(n, n, rng);
  const auto topo = std::make_shared<const topology::Topology>(
      topology::Topology::spanning_tree(n, edges));
  const RbOptions opt{topo, 2, 0};

  sim::StepEngine<RbProc> eng(rb_start_state(opt), make_rb_actions(opt),
                              rng.fork(2), sim::Semantics::kInterleaving);
  const auto perturb = rb_undetectable_fault(opt);
  util::Rng fault_rng = rng.fork(3);
  for (std::size_t j = 0; j < eng.mutable_state().size(); ++j) {
    perturb(j, eng.mutable_state()[j], fault_rng);
  }
  const auto recovered =
      eng.run_until([](const RbState& s) { return rb_is_start_state(s); },
                    2'000'000);
  EXPECT_TRUE(recovered.has_value()) << "graph embedding did not stabilize";
}

TEST_P(RbOnRandomGraph, MasksDetectableFaults) {
  util::Rng rng(GetParam() ^ 0xd7ULL);
  const int n = 5 + static_cast<int>(rng.uniform(6));
  const auto edges = random_connected_graph(n, 2, rng);
  const auto topo = std::make_shared<const topology::Topology>(
      topology::Topology::spanning_tree(n, edges));
  const RbOptions opt{topo, 2, 0};

  SpecMonitor monitor(n, 2);
  sim::StepEngine<RbProc> eng(rb_start_state(opt), make_rb_actions(opt, &monitor),
                              rng.fork(4), sim::Semantics::kInterleaving);
  util::Rng fault_rng = rng.fork(5);
  const auto perturb = rb_detectable_fault(opt, &monitor);
  std::size_t steps = 0;
  while (monitor.successful_phases() < 6 && steps < 2'000'000) {
    auto& state = eng.mutable_state();
    for (std::size_t j = 0; j < state.size(); ++j) {
      if (!fault_rng.bernoulli(0.005)) continue;
      int intact = 0;
      for (std::size_t q = 0; q < state.size(); ++q) {
        if (q != j && sn_valid(state[q].sn)) ++intact;
      }
      if (intact > 0) perturb(j, state[j], fault_rng);
    }
    eng.step();
    ++steps;
  }
  EXPECT_GE(monitor.successful_phases(), 6u);
  EXPECT_TRUE(monitor.safety_ok()) << monitor.violations().front();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RbOnRandomGraph,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace ftbar::core
