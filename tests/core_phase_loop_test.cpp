#include "core/phase_loop.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ftbar::core {
namespace {

TEST(PhaseLoop, FaultFreeRunsEveryPhaseOnce) {
  constexpr int kWorkers = 3;
  FaultTolerantBarrier bar(kWorkers);
  std::vector<PhaseLoopStats> stats(kWorkers);
  std::vector<int> final_value(kWorkers, 0);
  std::vector<std::thread> threads;
  for (int tid = 0; tid < kWorkers; ++tid) {
    threads.emplace_back([&, tid] {
      PhaseLoop<int> loop(bar, tid, 0);
      stats[static_cast<std::size_t>(tid)] = loop.run(6, [](int& v, int) {
        ++v;
        return PhaseStatus::kOk;
      });
      final_value[static_cast<std::size_t>(tid)] = loop.state();
    });
  }
  for (auto& t : threads) t.join();
  for (int tid = 0; tid < kWorkers; ++tid) {
    EXPECT_EQ(stats[static_cast<std::size_t>(tid)].phases_completed, 6u);
    EXPECT_EQ(stats[static_cast<std::size_t>(tid)].attempts, 6u);
    EXPECT_EQ(stats[static_cast<std::size_t>(tid)].rollbacks, 0u);
    EXPECT_EQ(final_value[static_cast<std::size_t>(tid)], 6);
  }
}

TEST(PhaseLoop, StateLossRollsEveryoneBack) {
  constexpr int kWorkers = 3;
  FaultTolerantBarrier bar(kWorkers);
  std::vector<PhaseLoopStats> stats(kWorkers);
  std::vector<int> final_value(kWorkers, 0);
  std::vector<std::thread> threads;
  for (int tid = 0; tid < kWorkers; ++tid) {
    threads.emplace_back([&, tid] {
      PhaseLoop<int> loop(bar, tid, 0);
      int my_attempts = 0;
      stats[static_cast<std::size_t>(tid)] = loop.run(5, [&](int& v, int) {
        ++my_attempts;
        ++v;
        // Worker 1's third attempt scribbles its state and reports the loss.
        if (tid == 1 && my_attempts == 3) {
          v = -999;
          return PhaseStatus::kStateLost;
        }
        return PhaseStatus::kOk;
      });
      final_value[static_cast<std::size_t>(tid)] = loop.state();
    });
  }
  for (auto& t : threads) t.join();
  for (int tid = 0; tid < kWorkers; ++tid) {
    EXPECT_EQ(stats[static_cast<std::size_t>(tid)].phases_completed, 5u);
    EXPECT_EQ(stats[static_cast<std::size_t>(tid)].attempts, 6u);
    EXPECT_EQ(stats[static_cast<std::size_t>(tid)].rollbacks, 1u);
    // The rollback restored the checkpoint, so the net effect is exactly
    // five increments — the garbage write never survives.
    EXPECT_EQ(final_value[static_cast<std::size_t>(tid)], 5);
  }
}

TEST(PhaseLoop, ChainedRunsContinueTheTicketStream) {
  constexpr int kWorkers = 2;
  FaultTolerantBarrier bar(kWorkers);
  std::vector<int> totals(kWorkers, 0);
  std::vector<std::thread> threads;
  for (int tid = 0; tid < kWorkers; ++tid) {
    threads.emplace_back([&, tid] {
      PhaseLoop<int> loop(bar, tid, 0);
      (void)loop.run(3, [](int& v, int) {
        ++v;
        return PhaseStatus::kOk;
      }, /*finalize=*/false);
      (void)loop.run(3, [](int& v, int) {
        ++v;
        return PhaseStatus::kOk;
      });
      totals[static_cast<std::size_t>(tid)] = loop.state();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(totals[0], 6);
  EXPECT_EQ(totals[1], 6);
}

TEST(PhaseLoop, WorkSeesConsistentPhaseNumbers) {
  constexpr int kWorkers = 2;
  FaultTolerantBarrier bar(kWorkers);
  std::vector<std::vector<int>> seen(kWorkers);
  std::vector<std::thread> threads;
  for (int tid = 0; tid < kWorkers; ++tid) {
    threads.emplace_back([&, tid] {
      PhaseLoop<int> loop(bar, tid, 0);
      (void)loop.run(4, [&](int&, int phase) {
        seen[static_cast<std::size_t>(tid)].push_back(phase);
        return PhaseStatus::kOk;
      });
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(seen[0], seen[1]);
  EXPECT_EQ(seen[0], (std::vector<int>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace ftbar::core
