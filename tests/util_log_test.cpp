#include "util/log.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ftbar::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, DefaultLevelIsOff) {
  // The library must stay quiet unless asked: simulations call log() in
  // hot paths and rely on the early-out.
  EXPECT_EQ(static_cast<int>(log_level()), static_cast<int>(LogLevel::kOff));
}

TEST(Log, SetAndGetRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(static_cast<int>(log_level()), static_cast<int>(LogLevel::kDebug));
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(static_cast<int>(log_level()), static_cast<int>(LogLevel::kOff));
}

TEST(Log, ConcatBuildsMessageFromParts) {
  EXPECT_EQ(detail::concat("a", 1, '-', 2.5), "a1-2.5");
  EXPECT_EQ(detail::concat(), "");
}

TEST(Log, DisabledLevelsDoNotEvaluateStreaming) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  // kTrace is disabled; the call must be a cheap no-op (and not crash).
  for (int i = 0; i < 1000; ++i) {
    log(LogLevel::kTrace, "suppressed ", i);
  }
  // Enabled level writes to stderr without crashing.
  log(LogLevel::kError, "one visible line from util_log_test (expected)");
}

TEST(Log, ThreadSafePerLine) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);  // keep the suite quiet; exercise the path
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 500; ++i) log(LogLevel::kInfo, "t", t, " i", i);
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace
}  // namespace ftbar::util
