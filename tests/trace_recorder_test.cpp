#include "trace/recorder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "trace/event.hpp"

namespace ftbar::trace {
namespace {

TraceEvent tagged(std::int64_t a) {
  return make_event(Kind::kActionFired, 0.0, 0, a);
}

TEST(TraceRecorder, RetainsEverythingBelowCapacity) {
  TraceRecorder rec(16);
  for (int i = 0; i < 10; ++i) rec.emit(tagged(i));
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 0u);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 10u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, static_cast<std::int64_t>(i));
  }
}

TEST(TraceRecorder, WraparoundKeepsNewestAndCountsDropsExactly) {
  constexpr std::size_t kCap = 8;
  constexpr int kEmitted = 27;
  TraceRecorder rec(kCap);
  for (int i = 0; i < kEmitted; ++i) rec.emit(tagged(i));
  EXPECT_EQ(rec.recorded(), static_cast<std::uint64_t>(kEmitted));
  EXPECT_EQ(rec.dropped(), static_cast<std::uint64_t>(kEmitted) - kCap);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), kCap);
  // The retained window is exactly the newest kCap events, in order.
  for (std::size_t i = 0; i < kCap; ++i) {
    EXPECT_EQ(events[i].a, static_cast<std::int64_t>(kEmitted - kCap + i));
  }
}

TEST(TraceRecorder, SnapshotIsSequenceSortedAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  TraceRecorder rec(kPerThread + 16);  // no ring may overflow
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        rec.emit(tagged(t * kPerThread + i));
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(rec.recorded(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.threads_seen(), static_cast<std::size_t>(kThreads));

  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const TraceEvent& x, const TraceEvent& y) {
                               return x.seq < y.seq;
                             }));
  // Sequence numbers are globally unique.
  std::set<std::uint64_t> seqs;
  for (const auto& e : events) seqs.insert(e.seq);
  EXPECT_EQ(seqs.size(), events.size());
  // Every payload arrived exactly once.
  std::set<std::int64_t> payloads;
  for (const auto& e : events) payloads.insert(e.a);
  EXPECT_EQ(payloads.size(), events.size());
}

TEST(TraceRecorder, DropCountSumsOverThreads) {
  constexpr std::size_t kCap = 32;
  constexpr int kThreads = 3;
  constexpr int kOver = 10;  // each thread overflows its ring by kOver
  TraceRecorder rec(kCap);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&rec] {
      for (std::size_t i = 0; i < kCap + kOver; ++i) rec.emit(tagged(0));
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(rec.dropped(), static_cast<std::uint64_t>(kThreads * kOver));
  EXPECT_EQ(rec.snapshot().size(), static_cast<std::size_t>(kThreads) * kCap);
}

TEST(TraceRecorder, ClearResetsCountersAndRetainedEvents) {
  TraceRecorder rec(4);
  for (int i = 0; i < 9; ++i) rec.emit(tagged(i));
  EXPECT_GT(rec.dropped(), 0u);
  rec.clear();
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_TRUE(rec.snapshot().empty());
  // The producer's cached ring stays usable after clear().
  rec.emit(tagged(42));
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].a, 42);
}

TEST(TraceRecorder, LabelIsCopiedAndTruncated) {
  TraceRecorder rec(4);
  const std::string longer(2 * TraceEvent::kLabelCapacity, 'x');
  rec.emit(make_event(Kind::kLog, 0.0, -1, 0, 0, 0, longer.c_str()));
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].label),
            std::string(TraceEvent::kLabelCapacity - 1, 'x'));
}

}  // namespace
}  // namespace ftbar::trace
