#include "runtime/process_host.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace ftbar::runtime {
namespace {

using namespace std::chrono_literals;

TEST(ProcessHost, RunsEveryRank) {
  std::atomic<int> started{0};
  ProcessHost host(4, [&](int, int, const std::atomic<bool>& alive) {
    ++started;
    while (alive.load()) std::this_thread::sleep_for(1ms);
  });
  host.start();
  while (started.load() < 4) std::this_thread::sleep_for(1ms);
  host.shutdown();
  EXPECT_EQ(started.load(), 4);
}

TEST(ProcessHost, KillStopsOnlyThatRank) {
  std::atomic<int> alive_count{0};
  ProcessHost host(3, [&](int, int, const std::atomic<bool>& alive) {
    ++alive_count;
    while (alive.load()) std::this_thread::sleep_for(1ms);
    --alive_count;
  });
  host.start();
  while (alive_count.load() < 3) std::this_thread::sleep_for(1ms);
  host.kill(1);
  EXPECT_FALSE(host.alive(1));
  EXPECT_TRUE(host.alive(0));
  EXPECT_TRUE(host.alive(2));
  EXPECT_EQ(alive_count.load(), 2);
  host.shutdown();
  EXPECT_EQ(alive_count.load(), 0);
}

TEST(ProcessHost, RestartBumpsGeneration) {
  std::atomic<int> last_generation{-1};
  ProcessHost host(2, [&](int rank, int generation, const std::atomic<bool>& alive) {
    if (rank == 0) last_generation.store(generation);
    while (alive.load()) std::this_thread::sleep_for(1ms);
  });
  host.start();
  while (last_generation.load() < 0) std::this_thread::sleep_for(1ms);
  EXPECT_EQ(host.generation(0), 0);
  host.kill(0);
  host.restart(0);
  while (last_generation.load() < 1) std::this_thread::sleep_for(1ms);
  EXPECT_EQ(host.generation(0), 1);
  host.shutdown();
}

TEST(ProcessHost, RestartWhileRunningThrows) {
  ProcessHost host(1, [](int, int, const std::atomic<bool>& alive) {
    while (alive.load()) std::this_thread::sleep_for(1ms);
  });
  host.start();
  EXPECT_THROW(host.restart(0), std::logic_error);
  host.shutdown();
}

TEST(ProcessHost, ShutdownIsIdempotent) {
  ProcessHost host(2, [](int, int, const std::atomic<bool>& alive) {
    while (alive.load()) std::this_thread::sleep_for(1ms);
  });
  host.start();
  host.shutdown();
  host.shutdown();  // no crash, no double join
}

TEST(ProcessHost, RankMainSeesOwnRank) {
  std::atomic<int> rank_sum{0};
  ProcessHost host(4, [&](int rank, int, const std::atomic<bool>&) {
    rank_sum += rank;  // runs once and exits
  });
  host.start();
  host.shutdown();
  EXPECT_EQ(rank_sum.load(), 0 + 1 + 2 + 3);
}

}  // namespace
}  // namespace ftbar::runtime
