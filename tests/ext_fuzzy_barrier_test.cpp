#include "ext/fuzzy_barrier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace ftbar::ext {
namespace {

TEST(FuzzyBarrier, PhasesAdvanceWithFuzzyWorkInBetween) {
  const int n = 3;
  FuzzyBarrier bar(n);
  std::vector<long long> fuzzy_work(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<int>> phases(static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  for (int tid = 0; tid < n; ++tid) {
    threads.emplace_back([&, tid] {
      for (int round = 0; round < 5; ++round) {
        bar.enter(tid);
        // Useful work outside any phase, overlapped with the barrier.
        while (!bar.poll(tid)) ++fuzzy_work[static_cast<std::size_t>(tid)];
        const auto t = bar.leave(tid);
        phases[static_cast<std::size_t>(tid)].push_back(t.phase);
      }
      bar.drain(tid);
    });
  }
  for (auto& t : threads) t.join();
  for (int tid = 0; tid < n; ++tid) {
    ASSERT_EQ(phases[static_cast<std::size_t>(tid)].size(), 5u);
    for (int round = 0; round < 5; ++round) {
      EXPECT_EQ(phases[static_cast<std::size_t>(tid)][static_cast<std::size_t>(round)],
                (round + 1) % 64);
    }
  }
}

TEST(FuzzyBarrier, LeaveWithoutPollingStillBlocksCorrectly) {
  const int n = 2;
  FuzzyBarrier bar(n);
  std::vector<int> got(static_cast<std::size_t>(n), -1);
  std::vector<std::thread> threads;
  for (int tid = 0; tid < n; ++tid) {
    threads.emplace_back([&, tid] {
      bar.enter(tid);
      got[static_cast<std::size_t>(tid)] = bar.leave(tid).phase;
      bar.drain(tid);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(got[0], 1);
  EXPECT_EQ(got[1], 1);
}

TEST(FuzzyBarrier, FaultReportedAtEnterRepeatsThePhase) {
  const int n = 2;
  FuzzyBarrier bar(n);
  std::vector<std::vector<core::PhaseTicket>> logs(static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  for (int tid = 0; tid < n; ++tid) {
    threads.emplace_back([&, tid] {
      int completed = 0;
      int round = 0;
      while (completed < 3) {
        const bool ok = !(tid == 1 && round == 1);
        bar.enter(tid, ok);
        const auto t = bar.leave(tid);
        logs[static_cast<std::size_t>(tid)].push_back(t);
        ++round;
        if (!t.repeated) ++completed;
      }
      bar.drain(tid);
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(logs[0].size(), logs[1].size());
  int repeats = 0;
  for (const auto& t : logs[0]) repeats += t.repeated;
  EXPECT_EQ(repeats, 1);
  for (std::size_t i = 0; i < logs[0].size(); ++i) {
    EXPECT_EQ(logs[0][i].phase, logs[1][i].phase);
    EXPECT_EQ(logs[0][i].repeated, logs[1][i].repeated);
  }
}

TEST(FuzzyBarrier, FuzzySectionsOverlapAcrossThreads) {
  // Thread 0 enters immediately; thread 1 enters late. Thread 0's fuzzy
  // section must actually run (poll returns false at least once) because
  // the barrier cannot complete before thread 1 enters.
  FuzzyBarrier bar(2);
  std::atomic<long long> polls_before_release{0};
  std::thread t0([&] {
    bar.enter(0);
    while (!bar.poll(0)) ++polls_before_release;
    bar.leave(0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread t1([&] {
    bar.enter(1);
    bar.leave(1);
  });
  t0.join();
  t1.join();
  EXPECT_GT(polls_before_release.load(), 0);
}

TEST(FuzzyBarrier, SurvivesLossyLinks) {
  core::BarrierOptions opt;
  opt.link_faults.drop = 0.1;
  FuzzyBarrier bar(3, opt);
  std::atomic<int> done{0};
  std::vector<std::thread> threads;
  for (int tid = 0; tid < 3; ++tid) {
    threads.emplace_back([&, tid] {
      for (int round = 0; round < 4; ++round) {
        bar.enter(tid);
        bar.leave(tid);
      }
      bar.drain(tid);
      ++done;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(done.load(), 3);
}

}  // namespace
}  // namespace ftbar::ext
