#include "trace/replay.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/mb.hpp"
#include "core/rb.hpp"
#include "sim/event_engine.hpp"
#include "sim/step_engine.hpp"
#include "trace/recorder.hpp"
#include "util/rng.hpp"

namespace ftbar::trace {
namespace {

// Drives `engine` for `steps` steps under a per-step detectable-fault
// environment, recording the schedule; a twin engine with identical seeds
// and faults runs beside it WITHOUT any tracing, and the states must agree
// at every step — tracing and recording never perturb an execution.
template <class P, class PerturbFn>
ScheduleRecording<P> record_with_faults(sim::StepEngine<P>& engine,
                                        sim::StepEngine<P>& twin,
                                        const PerturbFn& perturb,
                                        double fault_prob, std::size_t steps,
                                        util::Rng fault_rng) {
  util::Rng twin_fault_rng = fault_rng;
  ScheduleRecorder<P> recorder(engine);
  for (std::size_t s = 0; s < steps; ++s) {
    for (std::size_t j = 0; j < engine.state().size(); ++j) {
      if (fault_rng.bernoulli(fault_prob)) {
        perturb(j, engine.mutable_state()[j], fault_rng);
        recorder.note_fault(j);
      }
      if (twin_fault_rng.bernoulli(fault_prob)) {
        perturb(j, twin.mutable_state()[j], twin_fault_rng);
      }
    }
    recorder.step();
    twin.step();
    EXPECT_EQ(engine.state(), twin.state())
        << "recording changed the trajectory at step " << s;
  }
  return recorder.take();
}

TEST(Replay, RbMaxParallelWithFaultsIsBitIdentical) {
  const auto opt = core::rb_tree_options(255, 2);
  const auto actions = core::make_rb_actions(opt);
  sim::StepEngine<core::RbProc> engine(core::rb_start_state(opt), actions,
                                       util::Rng(11), sim::Semantics::kMaxParallel);
  sim::StepEngine<core::RbProc> twin(core::rb_start_state(opt), actions,
                                     util::Rng(11), sim::Semantics::kMaxParallel);
  const auto rec = record_with_faults(engine, twin, core::rb_detectable_fault(opt),
                                      0.0005, 120, util::Rng(77));
  ASSERT_FALSE(rec.steps.empty());
  std::size_t faults = 0;
  for (const auto& sr : rec.steps) faults += sr.faults.size();
  ASSERT_GT(faults, 0u) << "test needs f > 0; raise the fault probability";

  const auto report = replay_schedule(rec, actions);
  EXPECT_TRUE(report.ok) << report.message;
  EXPECT_EQ(report.steps_replayed, rec.steps.size());
}

TEST(Replay, RbInterleavingWithFaultsIsBitIdentical) {
  const auto opt = core::rb_ring_options(9, 2);
  const auto actions = core::make_rb_actions(opt);
  sim::StepEngine<core::RbProc> engine(core::rb_start_state(opt), actions,
                                       util::Rng(5));
  sim::StepEngine<core::RbProc> twin(core::rb_start_state(opt), actions,
                                     util::Rng(5));
  const auto rec = record_with_faults(engine, twin, core::rb_detectable_fault(opt),
                                      0.01, 300, util::Rng(6));
  const auto report = replay_schedule(rec, actions);
  EXPECT_TRUE(report.ok) << report.message;
  EXPECT_EQ(report.steps_replayed, rec.steps.size());
}

TEST(Replay, MbWithUndetectableFaultsIsBitIdentical) {
  core::MbOptions opt;
  opt.num_procs = 8;
  const auto actions = core::make_mb_actions(opt);
  sim::StepEngine<core::MbProc> engine(core::mb_start_state(opt), actions,
                                       util::Rng(21), sim::Semantics::kMaxParallel);
  sim::StepEngine<core::MbProc> twin(core::mb_start_state(opt), actions,
                                     util::Rng(21), sim::Semantics::kMaxParallel);
  const auto rec =
      record_with_faults(engine, twin, core::mb_undetectable_fault(opt), 0.005,
                         200, util::Rng(22));
  const auto report = replay_schedule(rec, actions);
  EXPECT_TRUE(report.ok) << report.message;
  EXPECT_EQ(report.steps_replayed, rec.steps.size());
}

TEST(Replay, TamperedDigestDiverges) {
  const auto opt = core::rb_ring_options(5, 2);
  const auto actions = core::make_rb_actions(opt);
  sim::StepEngine<core::RbProc> engine(core::rb_start_state(opt), actions,
                                       util::Rng(3), sim::Semantics::kMaxParallel);
  ScheduleRecorder<core::RbProc> recorder(engine);
  for (int s = 0; s < 10; ++s) recorder.step();
  auto rec = recorder.take();
  ASSERT_GE(rec.steps.size(), 3u);
  rec.steps[2].digest ^= 1;
  const auto report = replay_schedule(rec, actions);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.diverged_step, 2u);
}

TEST(Replay, TextSerializationRoundTrips) {
  const auto opt = core::rb_ring_options(6, 2);
  const auto actions = core::make_rb_actions(opt);
  sim::StepEngine<core::RbProc> engine(core::rb_start_state(opt), actions,
                                       util::Rng(9), sim::Semantics::kMaxParallel);
  sim::StepEngine<core::RbProc> twin(core::rb_start_state(opt), actions,
                                     util::Rng(9), sim::Semantics::kMaxParallel);
  const auto rec = record_with_faults(engine, twin, core::rb_detectable_fault(opt),
                                      0.02, 60, util::Rng(10));
  std::stringstream ss;
  save_schedule(ss, rec);
  const auto loaded = load_schedule<core::RbProc>(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->semantics, rec.semantics);
  EXPECT_EQ(loaded->initial, rec.initial);
  ASSERT_EQ(loaded->steps.size(), rec.steps.size());
  for (std::size_t i = 0; i < rec.steps.size(); ++i) {
    EXPECT_EQ(loaded->steps[i].fired, rec.steps[i].fired);
    EXPECT_EQ(loaded->steps[i].digest, rec.steps[i].digest);
  }
  const auto report = replay_schedule(*loaded, actions);
  EXPECT_TRUE(report.ok) << report.message;
}

TEST(Replay, WrongRecordSizeIsRejected) {
  // A schedule recorded for MbProc must not parse as RbProc.
  core::MbOptions opt;
  opt.num_procs = 4;
  sim::StepEngine<core::MbProc> engine(core::mb_start_state(opt),
                                       core::make_mb_actions(opt), util::Rng(1));
  ScheduleRecorder<core::MbProc> recorder(engine);
  recorder.step();
  std::stringstream ss;
  save_schedule(ss, recorder.take());
  EXPECT_FALSE(load_schedule<core::RbProc>(ss).has_value());
}

TEST(Replay, EventEngineDispatchOrderIsDeterministic) {
  auto run = [](TraceRecorder* rec) {
    sim::EventEngine eng;
    if (rec != nullptr) eng.set_sink(rec);
    int fired = 0;
    // Ties at t=1.0 must dispatch in schedule order (queue seq breaks ties).
    for (int i = 0; i < 5; ++i) eng.schedule(1.0, [&fired] { ++fired; });
    eng.schedule(0.5, [&eng, &fired] {
      eng.schedule(0.1, [&fired] { ++fired; });
      ++fired;
    });
    while (eng.step()) {
    }
    return fired;
  };

  TraceRecorder first(256);
  TraceRecorder second(256);
  EXPECT_EQ(run(&first), run(&second));
  const auto a = first.snapshot();
  const auto b = second.snapshot();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), 7u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, Kind::kEventDispatch);
    EXPECT_EQ(a[i].a, b[i].a) << "dispatch order differs at event " << i;
    EXPECT_EQ(a[i].time, b[i].time);
  }
}

// ---- shrinker ---------------------------------------------------------------

using Plan = std::vector<PlannedFault<core::RbProc>>;

Plan plan_of_procs(std::initializer_list<std::uint32_t> procs) {
  Plan plan;
  std::size_t step = 0;
  for (const auto p : procs) plan.push_back({step++, p, core::RbProc{}});
  return plan;
}

TEST(Shrink, ReducesToTheMinimalFailingSubset) {
  // The run "fails" iff faults on BOTH proc 3 and proc 7 are present.
  const auto fails = [](const Plan& plan) {
    bool has3 = false;
    bool has7 = false;
    for (const auto& f : plan) {
      has3 = has3 || f.proc == 3;
      has7 = has7 || f.proc == 7;
    }
    return has3 && has7;
  };
  const auto shrunk = shrink_fault_plan<core::RbProc>(
      plan_of_procs({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}), fails);
  ASSERT_EQ(shrunk.size(), 2u);
  EXPECT_TRUE(fails(shrunk)) << "shrinker must return a still-failing plan";
  // 1-minimal: removing either remaining fault loses the failure.
  for (std::size_t i = 0; i < shrunk.size(); ++i) {
    Plan cand = shrunk;
    cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
    EXPECT_FALSE(fails(cand));
  }
}

TEST(Shrink, SingleFaultCauseReducesToOne) {
  const auto fails = [](const Plan& plan) {
    for (const auto& f : plan) {
      if (f.proc == 5) return true;
    }
    return false;
  };
  const auto shrunk = shrink_fault_plan<core::RbProc>(
      plan_of_procs({9, 8, 7, 6, 5, 4, 3, 2, 1}), fails);
  ASSERT_EQ(shrunk.size(), 1u);
  EXPECT_EQ(shrunk[0].proc, 5u);
}

TEST(Shrink, NonFailingPlanIsReturnedUnchanged) {
  const auto plan = plan_of_procs({1, 2, 3});
  const auto shrunk = shrink_fault_plan<core::RbProc>(
      plan, [](const Plan&) { return false; });
  EXPECT_EQ(shrunk.size(), plan.size());
}

TEST(Shrink, ShrinksARealFaultRecordingToOneFault) {
  // Record a faulty run, extract its fault plan, then shrink it against an
  // oracle that RE-EXECUTES the engine from scratch applying the candidate
  // plan and reports failure when any process was detectably corrupted.
  // The minimal reproducer of that failure is a single fault.
  const auto opt = core::rb_ring_options(6, 2);
  const auto actions = core::make_rb_actions(opt);
  sim::StepEngine<core::RbProc> engine(core::rb_start_state(opt), actions,
                                       util::Rng(13), sim::Semantics::kMaxParallel);
  sim::StepEngine<core::RbProc> twin(core::rb_start_state(opt), actions,
                                     util::Rng(13), sim::Semantics::kMaxParallel);
  const auto rec = record_with_faults(engine, twin, core::rb_detectable_fault(opt),
                                      0.03, 80, util::Rng(14));
  const std::size_t total_steps = rec.steps.size();
  const auto full_plan = fault_plan_of(rec);
  ASSERT_GT(full_plan.size(), 1u) << "test needs several faults; raise the rate";

  const auto fails = [&](const Plan& plan) {
    sim::StepEngine<core::RbProc> probe(core::rb_start_state(opt), actions,
                                        util::Rng(13),
                                        sim::Semantics::kMaxParallel);
    std::size_t next = 0;
    bool corrupted = false;
    for (std::size_t s = 0; s < total_steps; ++s) {
      while (next < plan.size() && plan[next].step == s) {
        probe.mutable_state()[plan[next].proc] = plan[next].value;
        ++next;
      }
      for (const auto& p : probe.state()) corrupted |= p.cp == core::Cp::kError;
      probe.step();
    }
    return corrupted;
  };
  ASSERT_TRUE(fails(full_plan));

  const auto shrunk = shrink_fault_plan<core::RbProc>(full_plan, fails);
  ASSERT_EQ(shrunk.size(), 1u);
  EXPECT_TRUE(fails(shrunk));
}

}  // namespace
}  // namespace ftbar::trace
