#include "ext/crash_model.hpp"

#include <gtest/gtest.h>

#include "core/cb.hpp"
#include "sim/step_engine.hpp"

namespace ftbar::ext {
namespace {

using core::CbOptions;
using core::CbProc;
using core::Cp;

using AuxState = std::vector<WithAux<CbProc>>;

sim::StepEngine<WithAux<CbProc>> make_engine(const CbOptions& opt, std::uint64_t seed,
                                             bool with_byzantine = false) {
  std::function<void(std::size_t, CbProc&)> scramble;
  if (with_byzantine) {
    scramble = [n = opt.num_phases, rng = std::make_shared<util::Rng>(seed ^ 0xb12eULL)](
                   std::size_t, CbProc& p) {
      p.ph = static_cast<int>(rng->uniform(static_cast<std::uint64_t>(n)));
      p.cp = static_cast<Cp>(rng->uniform(4));
    };
  }
  return sim::StepEngine<WithAux<CbProc>>(
      lift_state(core::cb_start_state(opt)),
      add_crash_model(core::make_cb_actions(opt), scramble), util::Rng(seed));
}

int max_phase(const AuxState& s) {
  int m = 0;
  for (const auto& p : s) m = std::max(m, p.inner.ph);
  return m;
}

TEST(CrashModel, LiftedProgramBehavesLikeBase) {
  const CbOptions opt{3, 4};
  auto eng = make_engine(opt, 1);
  const auto done = eng.run_until(
      [](const AuxState& s) {
        return s[0].inner.ph == 2;  // advanced two phases
      },
      100'000);
  EXPECT_TRUE(done.has_value());
}

TEST(CrashModel, CrashedProcessStopsTheBarrier) {
  const CbOptions opt{3, 4};
  auto eng = make_engine(opt, 2);
  crash(eng.mutable_state()[1]);
  const int before = max_phase(eng.state());
  eng.run(20'000);
  // Without process 1, no phase can complete: progress is bounded by one
  // partial advance at most.
  EXPECT_LE(max_phase(eng.state()), before + 1);
}

TEST(CrashModel, RepairWithDetectableResetRestoresProgress) {
  const CbOptions opt{3, 4};
  auto eng = make_engine(opt, 3);
  crash(eng.mutable_state()[1]);
  eng.run(5'000);
  // Repair: restart with a detectable reset (cp = error).
  util::Rng repair_rng(33);
  repair(eng.mutable_state()[1], [&](CbProc& p) {
    p.cp = Cp::kError;
    p.ph = 0;
  });
  const auto done = eng.run_until(
      [](const AuxState& s) {
        return std::all_of(s.begin(), s.end(),
                           [](const auto& p) { return p.inner.ph >= 2; });
      },
      200'000);
  EXPECT_TRUE(done.has_value()) << "no progress after repair";
}

TEST(CrashModel, CrashedProcessExecutesNoActions) {
  const CbOptions opt{2, 2};
  auto eng = make_engine(opt, 4);
  crash(eng.mutable_state()[0]);
  const auto frozen = eng.state()[0];
  eng.run(5'000);
  EXPECT_EQ(eng.state()[0], frozen) << "a crashed process moved";
}

TEST(CrashModel, ByzantineProcessKeepsScribbling) {
  const CbOptions opt{3, 2};
  auto eng = make_engine(opt, 5, /*with_byzantine=*/true);
  make_byzantine(eng.mutable_state()[2]);
  // The byz action stays enabled forever; the run never quiesces.
  EXPECT_EQ(eng.run(2'000), 2'000u);
}

TEST(CrashModel, ByzantineRecoveryAfterGoodAgain) {
  const CbOptions opt{3, 2};
  auto eng = make_engine(opt, 6, /*with_byzantine=*/true);
  make_byzantine(eng.mutable_state()[1]);
  eng.run(2'000);
  make_good(eng.mutable_state()[1]);
  // Once good again, the stabilizing tolerance of CB applies: the program
  // reaches a legitimate state.
  const auto recovered = eng.run_until(
      [&](const AuxState& s) {
        std::vector<CbProc> inner;
        for (const auto& p : s) inner.push_back(p.inner);
        return core::cb_legitimate(inner, opt.num_phases);
      },
      200'000);
  EXPECT_TRUE(recovered.has_value());
}

TEST(CrashModel, LiftStatePreservesInner) {
  const CbOptions opt{4, 2};
  const auto lifted = lift_state(core::cb_start_state(opt, 1));
  ASSERT_EQ(lifted.size(), 4u);
  for (const auto& p : lifted) {
    EXPECT_TRUE(p.up);
    EXPECT_TRUE(p.good);
    EXPECT_EQ(p.inner.ph, 1);
    EXPECT_EQ(p.inner.cp, Cp::kReady);
  }
}

}  // namespace
}  // namespace ftbar::ext
