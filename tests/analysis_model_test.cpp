#include "analysis/model.hpp"

#include <gtest/gtest.h>

namespace ftbar::analysis {
namespace {

TEST(AnalysisModel, NoFaultNoLatencyIsUnitTime) {
  const Params p{5, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(phase_time(p), 1.0);
  EXPECT_DOUBLE_EQ(expected_instances(p), 1.0);
  EXPECT_DOUBLE_EQ(expected_phase_time(p), 1.0);
  EXPECT_DOUBLE_EQ(intolerant_phase_time(p), 1.0);
  EXPECT_DOUBLE_EQ(overhead(p), 0.0);
}

TEST(AnalysisModel, PhaseTimeFormula) {
  const Params p{5, 0.01, 0.0};
  EXPECT_DOUBLE_EQ(phase_time(p), 1.15);        // 1 + 3*5*0.01
  EXPECT_DOUBLE_EQ(intolerant_phase_time(p), 1.10);  // 1 + 2*5*0.01
}

TEST(AnalysisModel, PaperOverheadReferencePoints) {
  // Paper, Section 6.1 (32 processes, h = 5, c = 0.01):
  //   f = 0    -> overhead 4.5%
  //   f = 0.01 -> overhead 5.7%
  //   f = 0.05 -> overhead bounded by 10.8%
  EXPECT_NEAR(overhead({5, 0.01, 0.0}), 0.045, 0.001);
  EXPECT_NEAR(overhead({5, 0.01, 0.01}), 0.057, 0.001);
  EXPECT_NEAR(overhead({5, 0.01, 0.05}), 0.108, 0.001);
}

TEST(AnalysisModel, PaperReExecutionReferencePoints) {
  // "when the frequency of faults is small (f <= 0.01), the percentage of
  //  phases executed incorrectly is lower than 1.6%" (c = 0.01, h = 5)
  EXPECT_LT(expected_instances({5, 0.01, 0.01}) - 1.0, 0.016);
  // "even at high communication latency, c = 0.05, when f = 0.01 the
  //  probability that a phase is re-executed is as low as 1.7%"
  EXPECT_NEAR(expected_instances({5, 0.05, 0.01}) - 1.0, 0.017, 0.002);
}

TEST(AnalysisModel, RecoveryBoundWithinQuarterRule) {
  // Under the paper's assumption 2hc <= 0.5 the bound 5hc is at most 1.25.
  const Params p{5, 0.05, 0.0};
  EXPECT_DOUBLE_EQ(recovery_bound(p), 1.25);
  EXPECT_LE(recovery_bound({5, 0.01, 0.0}), 1.25);
}

TEST(AnalysisModel, InstancesIncreaseWithFaultFrequency) {
  double prev = 0.0;
  for (double f = 0.0; f <= 0.1001; f += 0.01) {
    const double v = expected_instances({5, 0.01, f});
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(AnalysisModel, InstancesIncreaseWithLatency) {
  double prev = 0.0;
  for (double c = 0.0; c <= 0.0501; c += 0.01) {
    const double v = expected_instances({5, c, 0.05});
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(AnalysisModel, OverheadIncreasesWithFaultFrequency) {
  EXPECT_LT(overhead({5, 0.01, 0.0}), overhead({5, 0.01, 0.01}));
  EXPECT_LT(overhead({5, 0.01, 0.01}), overhead({5, 0.01, 0.05}));
}

TEST(AnalysisModel, ExpectedPhaseTimeConsistency) {
  const Params p{5, 0.02, 0.03};
  EXPECT_NEAR(expected_phase_time(p), phase_time(p) * expected_instances(p), 1e-12);
}

TEST(AnalysisModel, DegenerateFaultFrequencies) {
  EXPECT_DOUBLE_EQ(no_fault_probability({5, 0.01, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(no_fault_probability({5, 0.01, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(no_fault_probability({5, 0.01, 2.0}), 0.0);
}

TEST(AnalysisModel, TreeHeight) {
  EXPECT_EQ(tree_height(1), 0);
  EXPECT_EQ(tree_height(2), 1);
  EXPECT_EQ(tree_height(3), 1);
  EXPECT_EQ(tree_height(4), 2);
  EXPECT_EQ(tree_height(7), 2);
  EXPECT_EQ(tree_height(8), 3);
  EXPECT_EQ(tree_height(32), 5);   // the paper's configuration
  EXPECT_EQ(tree_height(128), 7);
  EXPECT_EQ(tree_height(5, 1), 4);  // unary tree = chain
  EXPECT_EQ(tree_height(13, 3), 2);
}

}  // namespace
}  // namespace ftbar::analysis
