#include "mpi/comm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "mpi/collectives.hpp"

namespace ftbar::mpi {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<runtime::Network> make_net(int ranks, std::uint64_t seed = 1) {
  return std::make_shared<runtime::Network>(ranks, seed);
}

TEST(Communicator, PointToPointRoundTrip) {
  auto net = make_net(2);
  Communicator a(net, 0), b(net, 1);
  a.send(1, 5, 42);
  const auto v = b.recv_value<int>(0, 5, 100ms);
  EXPECT_EQ(v, 42);
}

TEST(Communicator, TagMatchingHoldsBackOtherTags) {
  auto net = make_net(2);
  Communicator a(net, 0), b(net, 1);
  a.send(1, /*tag=*/1, 10);
  a.send(1, /*tag=*/2, 20);
  // Ask for tag 2 first; tag 1 goes to the pending queue.
  EXPECT_EQ(b.recv_value<int>(0, 2, 100ms), 20);
  EXPECT_EQ(b.recv_value<int>(0, 1, 100ms), 10);
}

TEST(Communicator, SourceMatching) {
  auto net = make_net(3);
  Communicator a(net, 0), b(net, 1), c(net, 2);
  a.send(2, 0, 1);
  b.send(2, 0, 2);
  EXPECT_EQ(c.recv_value<int>(1, 0, 100ms), 2);
  EXPECT_EQ(c.recv_value<int>(0, 0, 100ms), 1);
}

TEST(Communicator, AnySourceAnyTag) {
  auto net = make_net(2);
  Communicator a(net, 0), b(net, 1);
  a.send(1, 9, 3.5);
  const auto m = b.recv(kAnySource, kAnyTag, 100ms);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->src, 0);
  EXPECT_EQ(m->tag, 9);
  EXPECT_EQ(m->as<double>(), 3.5);
}

TEST(Communicator, TimeoutReturnsNullopt) {
  auto net = make_net(2);
  Communicator b(net, 1);
  EXPECT_EQ(b.recv(kAnySource, kAnyTag, 20ms), std::nullopt);
}

TEST(Communicator, CorruptMessagesAreDiscarded) {
  auto net = make_net(2);
  net->set_link_faults(0, 1, runtime::LinkFaults{.corrupt = 1.0});
  Communicator a(net, 0), b(net, 1);
  a.send(1, 0, 7);
  EXPECT_EQ(b.recv(kAnySource, kAnyTag, 30ms), std::nullopt);
}

TEST(Communicator, StashReinsertsMessages) {
  auto net = make_net(2);
  Communicator b(net, 1);
  b.stash(Recvd{0, 3, {std::byte{1}, std::byte{0}, std::byte{0}, std::byte{0}}});
  EXPECT_EQ(b.recv_value<int>(0, 3, 10ms), 1);
}

// ---------------------------------------------------------------------------
// Collectives
// ---------------------------------------------------------------------------

class CollectiveSweep : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSweep, TreeBarrierSynchronizesRanks) {
  const int n = GetParam();
  auto net = make_net(n);
  std::vector<std::atomic<int>> progress(static_cast<std::size_t>(n));
  for (auto& p : progress) p.store(0);
  std::atomic<int> violations{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(net, r);
      for (int round = 1; round <= 20; ++round) {
        progress[static_cast<std::size_t>(r)].store(round, std::memory_order_release);
        if (tree_barrier(comm, static_cast<std::uint64_t>(round)) != Err::kSuccess) {
          ++errors;
          return;
        }
        for (int k = 0; k < n; ++k) {
          if (progress[static_cast<std::size_t>(k)].load(std::memory_order_acquire) <
              round) {
            ++violations;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(violations.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(Ranks, CollectiveSweep, ::testing::Values(1, 2, 3, 5, 8));

TEST(Collectives, TreeBarrierTimesOutOnMissingRank) {
  auto net = make_net(3);
  Communicator comm0(net, 0);
  std::thread r1([&] {
    Communicator comm(net, 1);
    EXPECT_EQ(tree_barrier(comm, 1, CollectiveOptions{std::chrono::milliseconds(60)}),
              Err::kTimeout);
  });
  // Rank 2 never joins; ranks 0 and 1 must report the loss, not hang.
  EXPECT_EQ(tree_barrier(comm0, 1, CollectiveOptions{std::chrono::milliseconds(60)}),
            Err::kTimeout);
  r1.join();
}

TEST(Collectives, BcastDistributesRootValue) {
  const int n = 5;
  auto net = make_net(n);
  std::vector<double> got(static_cast<std::size_t>(n), 0.0);
  std::vector<std::thread> threads;
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(net, r);
      double v = r == 0 ? 6.25 : 0.0;
      EXPECT_EQ(bcast(comm, v, 1), Err::kSuccess);
      got[static_cast<std::size_t>(r)] = v;
    });
  }
  for (auto& t : threads) t.join();
  for (double v : got) EXPECT_DOUBLE_EQ(v, 6.25);
}

TEST(Collectives, AllreduceSumsContributions) {
  const int n = 6;
  auto net = make_net(n);
  std::vector<double> got(static_cast<std::size_t>(n), 0.0);
  std::vector<std::thread> threads;
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(net, r);
      double v = static_cast<double>(r + 1);
      EXPECT_EQ(allreduce_sum(comm, v, 1), Err::kSuccess);
      got[static_cast<std::size_t>(r)] = v;
    });
  }
  for (auto& t : threads) t.join();
  for (double v : got) EXPECT_DOUBLE_EQ(v, 21.0);  // 1+2+...+6
}

TEST(Collectives, EpochFiltersStaleDuplicates) {
  // Deliver a duplicate of every message; the epoch stamps keep repeated
  // barriers correct.
  auto net = make_net(3);
  net->set_default_faults(runtime::LinkFaults{.duplicate = 1.0});
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(net, r);
      for (std::uint64_t round = 1; round <= 10; ++round) {
        if (tree_barrier(comm, round) != Err::kSuccess) ++errors;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
}

}  // namespace
}  // namespace ftbar::mpi
