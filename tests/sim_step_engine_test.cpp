#include "sim/step_engine.hpp"

#include <gtest/gtest.h>

#include "sim/fault_env.hpp"

namespace ftbar::sim {
namespace {

struct Cell {
  int v = 0;
  friend auto operator<=>(const Cell&, const Cell&) = default;
};

using State = std::vector<Cell>;

Action<Cell> inc_until(int j, int limit) {
  const auto uj = static_cast<std::size_t>(j);
  return make_action<Cell>(
      "inc@" + std::to_string(j), j,
      [uj, limit](const State& s) { return s[uj].v < limit; },
      [uj](State& s) { ++s[uj].v; });
}

TEST(StepEngine, InterleavingRunsToQuiescence) {
  StepEngine<Cell> eng({Cell{}}, {inc_until(0, 5)}, util::Rng(1));
  EXPECT_EQ(eng.run(100), 5u);
  EXPECT_EQ(eng.state()[0].v, 5);
  EXPECT_EQ(eng.step(), 0u) << "quiescent program must not step";
}

TEST(StepEngine, InterleavingExecutesOneActionPerStep) {
  StepEngine<Cell> eng({Cell{}, Cell{}}, {inc_until(0, 10), inc_until(1, 10)},
                       util::Rng(2));
  EXPECT_EQ(eng.step(), 1u);
  EXPECT_EQ(eng.state()[0].v + eng.state()[1].v, 1);
}

TEST(StepEngine, MaxParallelExecutesEveryEnabledProcess) {
  StepEngine<Cell> eng({Cell{}, Cell{}, Cell{}},
                       {inc_until(0, 10), inc_until(1, 10), inc_until(2, 10)},
                       util::Rng(3), Semantics::kMaxParallel);
  EXPECT_EQ(eng.step(), 3u);
  for (const auto& c : eng.state()) EXPECT_EQ(c.v, 1);
}

TEST(StepEngine, MaxParallelSkipsDisabledProcesses) {
  StepEngine<Cell> eng({Cell{5}, Cell{0}}, {inc_until(0, 5), inc_until(1, 5)},
                       util::Rng(4), Semantics::kMaxParallel);
  EXPECT_EQ(eng.step(), 1u);
  EXPECT_EQ(eng.state()[0].v, 5);
  EXPECT_EQ(eng.state()[1].v, 1);
}

TEST(StepEngine, MaxParallelStatementsReadPreState) {
  // Each process copies the other's value plus one. Synchronous semantics
  // must produce (1, 1) from (0, 0); a sequential bleed-through would give
  // (1, 2).
  auto copy_other = [](int j, int other) {
    const auto uj = static_cast<std::size_t>(j);
    const auto uo = static_cast<std::size_t>(other);
    return make_action<Cell>(
        "copy@" + std::to_string(j), j, [](const State&) { return true; },
        [uj, uo](State& s) { s[uj].v = s[uo].v + 1; });
  };
  StepEngine<Cell> eng({Cell{}, Cell{}}, {copy_other(0, 1), copy_other(1, 0)},
                       util::Rng(5), Semantics::kMaxParallel);
  eng.step();
  EXPECT_EQ(eng.state()[0].v, 1);
  EXPECT_EQ(eng.state()[1].v, 1);
}

TEST(StepEngine, MaxParallelPicksOneActionPerProcess) {
  // Two always-enabled actions on the same process; exactly one fires per
  // step, so after one step v is exactly 1 or -1, never 0 or +-2.
  std::vector<Action<Cell>> actions;
  actions.push_back(make_action<Cell>(
      "up@0", 0, [](const State&) { return true; },
      [](State& s) { ++s[0].v; }));
  actions.push_back(make_action<Cell>(
      "down@0", 0, [](const State&) { return true; },
      [](State& s) { --s[0].v; }));
  StepEngine<Cell> eng({Cell{}}, actions, util::Rng(6), Semantics::kMaxParallel);
  EXPECT_EQ(eng.step(), 1u);
  EXPECT_EQ(std::abs(eng.state()[0].v), 1);
}

TEST(StepEngine, RunUntilFindsPredicate) {
  StepEngine<Cell> eng({Cell{}}, {inc_until(0, 100)}, util::Rng(7));
  const auto steps = eng.run_until(
      [](const State& s) { return s[0].v == 42; }, 1'000);
  ASSERT_TRUE(steps.has_value());
  EXPECT_EQ(eng.state()[0].v, 42);
}

TEST(StepEngine, RunUntilReportsFailure) {
  StepEngine<Cell> eng({Cell{}}, {inc_until(0, 5)}, util::Rng(8));
  const auto steps = eng.run_until(
      [](const State& s) { return s[0].v == 42; }, 1'000);
  EXPECT_FALSE(steps.has_value());
}

TEST(StepEngine, InterleavingIsProbabilisticallyFair) {
  // Both processes must make progress over many steps.
  StepEngine<Cell> eng({Cell{}, Cell{}},
                       {inc_until(0, 1'000'000), inc_until(1, 1'000'000)},
                       util::Rng(9));
  eng.run(1'000);
  EXPECT_GT(eng.state()[0].v, 300);
  EXPECT_GT(eng.state()[1].v, 300);
}

TEST(StepEngine, StepsTakenCounts) {
  StepEngine<Cell> eng({Cell{}}, {inc_until(0, 3)}, util::Rng(10));
  eng.run(100);
  EXPECT_EQ(eng.steps_taken(), 3u);
}

TEST(FaultEnv, ZeroProbabilityNeverInjects) {
  FaultEnv<Cell> env(0.0, [](std::size_t, Cell& c, util::Rng&) { c.v = -1; },
                     util::Rng(11));
  State s(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(env.maybe_inject(s), 0u);
  for (const auto& c : s) EXPECT_EQ(c.v, 0);
}

TEST(FaultEnv, ProbabilityOneHitsEveryProcess) {
  FaultEnv<Cell> env(1.0, [](std::size_t, Cell& c, util::Rng&) { c.v = -1; },
                     util::Rng(12));
  State s(4);
  EXPECT_EQ(env.maybe_inject(s), 4u);
  for (const auto& c : s) EXPECT_EQ(c.v, -1);
  EXPECT_EQ(env.total_injected(), 4u);
}

TEST(FaultEnv, PerturbOneHitsExactlyOne) {
  FaultEnv<Cell> env(0.0, [](std::size_t, Cell& c, util::Rng&) { c.v = -1; },
                     util::Rng(13));
  State s(8);
  env.perturb_one(s);
  int hit = 0;
  for (const auto& c : s) hit += (c.v == -1);
  EXPECT_EQ(hit, 1);
}

TEST(FaultEnv, PerturbReceivesProcessIndex) {
  FaultEnv<Cell> env(0.0,
                     [](std::size_t i, Cell& c, util::Rng&) {
                       c.v = static_cast<int>(i);
                     },
                     util::Rng(14));
  State s(5);
  env.perturb_all(s);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_EQ(s[i].v, static_cast<int>(i));
}

TEST(FaultEnv, InjectionRateMatchesProbability) {
  FaultEnv<Cell> env(0.25, [](std::size_t, Cell&, util::Rng&) {}, util::Rng(15));
  State s(10);
  std::size_t total = 0;
  constexpr int kRounds = 10'000;
  for (int i = 0; i < kRounds; ++i) total += env.maybe_inject(s);
  EXPECT_NEAR(static_cast<double>(total) / (kRounds * 10), 0.25, 0.02);
}

}  // namespace
}  // namespace ftbar::sim
