#include "sim/step_engine.hpp"

#include <gtest/gtest.h>

#include "core/cb.hpp"
#include "core/mb.hpp"
#include "core/rb.hpp"
#include "sim/fault_env.hpp"
#include "sim/reference_step_engine.hpp"
#include "util/sweep.hpp"

namespace ftbar::sim {
namespace {

struct Cell {
  int v = 0;
  friend auto operator<=>(const Cell&, const Cell&) = default;
};

using State = std::vector<Cell>;

Action<Cell> inc_until(int j, int limit) {
  const auto uj = static_cast<std::size_t>(j);
  return make_action<Cell>(
      "inc@" + std::to_string(j), j,
      [uj, limit](const State& s) { return s[uj].v < limit; },
      [uj](State& s) { ++s[uj].v; });
}

TEST(StepEngine, InterleavingRunsToQuiescence) {
  StepEngine<Cell> eng({Cell{}}, {inc_until(0, 5)}, util::Rng(1));
  EXPECT_EQ(eng.run(100), 5u);
  EXPECT_EQ(eng.state()[0].v, 5);
  EXPECT_EQ(eng.step(), 0u) << "quiescent program must not step";
}

TEST(StepEngine, InterleavingExecutesOneActionPerStep) {
  StepEngine<Cell> eng({Cell{}, Cell{}}, {inc_until(0, 10), inc_until(1, 10)},
                       util::Rng(2));
  EXPECT_EQ(eng.step(), 1u);
  EXPECT_EQ(eng.state()[0].v + eng.state()[1].v, 1);
}

TEST(StepEngine, MaxParallelExecutesEveryEnabledProcess) {
  StepEngine<Cell> eng({Cell{}, Cell{}, Cell{}},
                       {inc_until(0, 10), inc_until(1, 10), inc_until(2, 10)},
                       util::Rng(3), Semantics::kMaxParallel);
  EXPECT_EQ(eng.step(), 3u);
  for (const auto& c : eng.state()) EXPECT_EQ(c.v, 1);
}

TEST(StepEngine, MaxParallelSkipsDisabledProcesses) {
  StepEngine<Cell> eng({Cell{5}, Cell{0}}, {inc_until(0, 5), inc_until(1, 5)},
                       util::Rng(4), Semantics::kMaxParallel);
  EXPECT_EQ(eng.step(), 1u);
  EXPECT_EQ(eng.state()[0].v, 5);
  EXPECT_EQ(eng.state()[1].v, 1);
}

TEST(StepEngine, MaxParallelStatementsReadPreState) {
  // Each process copies the other's value plus one. Synchronous semantics
  // must produce (1, 1) from (0, 0); a sequential bleed-through would give
  // (1, 2).
  auto copy_other = [](int j, int other) {
    const auto uj = static_cast<std::size_t>(j);
    const auto uo = static_cast<std::size_t>(other);
    return make_action<Cell>(
        "copy@" + std::to_string(j), j, [](const State&) { return true; },
        [uj, uo](State& s) { s[uj].v = s[uo].v + 1; });
  };
  StepEngine<Cell> eng({Cell{}, Cell{}}, {copy_other(0, 1), copy_other(1, 0)},
                       util::Rng(5), Semantics::kMaxParallel);
  eng.step();
  EXPECT_EQ(eng.state()[0].v, 1);
  EXPECT_EQ(eng.state()[1].v, 1);
}

TEST(StepEngine, MaxParallelPicksOneActionPerProcess) {
  // Two always-enabled actions on the same process; exactly one fires per
  // step, so after one step v is exactly 1 or -1, never 0 or +-2.
  std::vector<Action<Cell>> actions;
  actions.push_back(make_action<Cell>(
      "up@0", 0, [](const State&) { return true; },
      [](State& s) { ++s[0].v; }));
  actions.push_back(make_action<Cell>(
      "down@0", 0, [](const State&) { return true; },
      [](State& s) { --s[0].v; }));
  StepEngine<Cell> eng({Cell{}}, actions, util::Rng(6), Semantics::kMaxParallel);
  EXPECT_EQ(eng.step(), 1u);
  EXPECT_EQ(std::abs(eng.state()[0].v), 1);
}

TEST(StepEngine, RunUntilReportsTrueStepCount) {
  // v reaches 42 after exactly 42 steps; the reported count must be the
  // number of steps actually taken, not the bound.
  StepEngine<Cell> eng({Cell{}}, {inc_until(0, 100)}, util::Rng(7));
  const auto steps = eng.run_until(
      [](const State& s) { return s[0].v == 42; }, 1'000);
  ASSERT_TRUE(steps.has_value());
  EXPECT_EQ(*steps, 42u);
  EXPECT_EQ(eng.steps_taken(), 42u);
}

TEST(StepEngine, RunUntilNeverExceedsBoundOrLies) {
  // The seed engine took max_steps+1 steps and then reported max_steps when
  // the predicate first held after the loop — the count was a lie. Now at
  // most max_steps steps run, and a predicate not reached within the bound
  // is a failure, with steps_taken() giving the honest count.
  StepEngine<Cell> eng({Cell{}}, {inc_until(0, 100)}, util::Rng(7));
  const auto steps = eng.run_until(
      [](const State& s) { return s[0].v == 42; }, 41);
  EXPECT_FALSE(steps.has_value());
  EXPECT_EQ(eng.steps_taken(), 41u);
  EXPECT_EQ(eng.state()[0].v, 41);
}

TEST(StepEngine, RunUntilZeroStepsWhenPredicateAlreadyHolds) {
  StepEngine<Cell> eng({Cell{7}}, {inc_until(0, 100)}, util::Rng(7));
  const auto steps = eng.run_until(
      [](const State& s) { return s[0].v >= 7; }, 1'000);
  ASSERT_TRUE(steps.has_value());
  EXPECT_EQ(*steps, 0u);
}

TEST(StepEngine, RunUntilFindsPredicate) {
  StepEngine<Cell> eng({Cell{}}, {inc_until(0, 100)}, util::Rng(7));
  const auto steps = eng.run_until(
      [](const State& s) { return s[0].v == 42; }, 1'000);
  ASSERT_TRUE(steps.has_value());
  EXPECT_EQ(eng.state()[0].v, 42);
}

TEST(StepEngine, RunUntilReportsFailure) {
  StepEngine<Cell> eng({Cell{}}, {inc_until(0, 5)}, util::Rng(8));
  const auto steps = eng.run_until(
      [](const State& s) { return s[0].v == 42; }, 1'000);
  EXPECT_FALSE(steps.has_value());
}

TEST(StepEngine, InterleavingIsProbabilisticallyFair) {
  // Both processes must make progress over many steps.
  StepEngine<Cell> eng({Cell{}, Cell{}},
                       {inc_until(0, 1'000'000), inc_until(1, 1'000'000)},
                       util::Rng(9));
  eng.run(1'000);
  EXPECT_GT(eng.state()[0].v, 300);
  EXPECT_GT(eng.state()[1].v, 300);
}

TEST(StepEngine, StepsTakenCounts) {
  StepEngine<Cell> eng({Cell{}}, {inc_until(0, 3)}, util::Rng(10));
  eng.run(100);
  EXPECT_EQ(eng.steps_taken(), 3u);
}

// ---- incremental-engine machinery ------------------------------------------

Action<Cell> inc_with_reads(int j, int limit) {
  const auto uj = static_cast<std::size_t>(j);
  return make_action<Cell>(
      "inc@" + std::to_string(j), j, {j},
      [uj, limit](const State& s) { return s[uj].v < limit; },
      [uj](State& s) { ++s[uj].v; });
}

TEST(StepEngine, IncrementalEvaluatesFewerGuardsThanFullScan) {
  // 32 annotated single-process actions: after warm-up, each step dirties
  // one process, so only its one dependent guard is re-evaluated — the
  // full-scan fallback would pay 32 per step.
  std::vector<Action<Cell>> actions;
  for (int j = 0; j < 32; ++j) actions.push_back(inc_with_reads(j, 1 << 20));
  StepEngine<Cell> eng(State(32), actions, util::Rng(21));
  (void)eng.step();  // first step pays the full scan
  const auto after_warmup = eng.guard_evals();
  EXPECT_EQ(after_warmup, 32u);
  for (int i = 0; i < 100; ++i) (void)eng.step();
  EXPECT_EQ(eng.guard_evals(), after_warmup + 100u);
}

TEST(StepEngine, FullScanFallbackEvaluatesEveryGuard) {
  std::vector<Action<Cell>> actions;
  for (int j = 0; j < 8; ++j) actions.push_back(inc_until(j, 1 << 20));
  StepEngine<Cell> eng(State(8), actions, util::Rng(22));
  for (int i = 0; i < 10; ++i) (void)eng.step();
  EXPECT_EQ(eng.guard_evals(), 80u);
}

TEST(StepEngine, MutableStateInvalidatesEnabledCache) {
  // Process 1's guard only fires once process 1's value is below the limit
  // again; the write happens out of band via mutable_state(), which no
  // step's dirty set covers — the engine must rescan.
  StepEngine<Cell> eng({Cell{0}, Cell{5}},
                       {inc_with_reads(0, 10), inc_with_reads(1, 5)},
                       util::Rng(23), Semantics::kMaxParallel);
  EXPECT_EQ(eng.step(), 1u);  // only process 0 is enabled
  eng.mutable_state()[1].v = 0;
  EXPECT_EQ(eng.step(), 2u) << "out-of-band write must re-enable process 1";
  EXPECT_EQ(eng.state()[1].v, 1);
}

// ---- trajectory equivalence against the reference engine -------------------

/// Steps the incremental engine and the full-scan/full-copy reference in
/// lock-step from identical seeds, with an identical undetectable fault
/// injected out of band every 97 steps, and asserts bit-identical states
/// throughout. Randomized choices agree only if both engines also consume
/// randomness identically, so this pins the RNG contract too.
template <class P>
void ExpectTrajectoryEquivalence(const std::vector<P>& start,
                                 const std::vector<Action<P>>& actions,
                                 const typename FaultEnv<P>::Perturb& fault,
                                 bool max_parallel, std::uint64_t seed,
                                 std::size_t steps) {
  StepEngine<P> eng(start, actions, util::Rng(seed),
                    max_parallel ? Semantics::kMaxParallel
                                 : Semantics::kInterleaving);
  ReferenceStepEngine<P> ref(start, actions, util::Rng(seed), max_parallel);
  util::Rng fault_rng_a(seed ^ 0xfa01fULL);
  util::Rng fault_rng_b(seed ^ 0xfa01fULL);
  for (std::size_t k = 0; k < steps; ++k) {
    if (k % 97 == 43) {
      const auto j = k % start.size();
      fault(j, eng.mutable_state()[j], fault_rng_a);
      fault(j, ref.mutable_state()[j], fault_rng_b);
    }
    const auto a = eng.step();
    const auto b = ref.step();
    ASSERT_EQ(a, b) << "executed-count mismatch at step " << k;
    ASSERT_TRUE(eng.state() == ref.state()) << "state mismatch at step " << k;
    if (a == 0) break;
  }
}

TEST(StepEngineEquivalence, CbBothSemantics) {
  const core::CbOptions opt{5, 3};
  const auto actions = core::make_cb_actions(opt);
  const auto fault = core::cb_undetectable_fault(opt);
  ExpectTrajectoryEquivalence<core::CbProc>(core::cb_start_state(opt), actions,
                                            fault, /*max_parallel=*/false, 101,
                                            1'500);
  ExpectTrajectoryEquivalence<core::CbProc>(core::cb_start_state(opt), actions,
                                            fault, /*max_parallel=*/true, 102,
                                            1'500);
}

TEST(StepEngineEquivalence, RbRingBothSemantics) {
  const auto opt = core::rb_ring_options(7, 2);
  const auto actions = core::make_rb_actions(opt);
  const auto fault = core::rb_undetectable_fault(opt);
  ExpectTrajectoryEquivalence<core::RbProc>(core::rb_start_state(opt), actions,
                                            fault, /*max_parallel=*/false, 201,
                                            1'500);
  ExpectTrajectoryEquivalence<core::RbProc>(core::rb_start_state(opt), actions,
                                            fault, /*max_parallel=*/true, 202,
                                            1'500);
}

TEST(StepEngineEquivalence, RbTreeBothSemantics) {
  const auto opt = core::rb_tree_options(15, 2);
  const auto actions = core::make_rb_actions(opt);
  const auto fault = core::rb_undetectable_fault(opt);
  ExpectTrajectoryEquivalence<core::RbProc>(core::rb_start_state(opt), actions,
                                            fault, /*max_parallel=*/false, 301,
                                            1'500);
  ExpectTrajectoryEquivalence<core::RbProc>(core::rb_start_state(opt), actions,
                                            fault, /*max_parallel=*/true, 302,
                                            1'500);
}

TEST(StepEngineEquivalence, MbBothSemantics) {
  const core::MbOptions opt{6, 2, 0};
  const auto actions = core::make_mb_actions(opt);
  const auto fault = core::mb_undetectable_fault(opt);
  ExpectTrajectoryEquivalence<core::MbProc>(core::mb_start_state(opt), actions,
                                            fault, /*max_parallel=*/false, 401,
                                            1'500);
  ExpectTrajectoryEquivalence<core::MbProc>(core::mb_start_state(opt), actions,
                                            fault, /*max_parallel=*/true, 402,
                                            1'500);
}

// ---- sweep determinism ------------------------------------------------------

TEST(SweepDeterminism, ResultsIdenticalForOneAndEightThreads) {
  // A real workload per item (RB recovery driven by the item's RNG stream):
  // results must be bit-identical regardless of thread count because each
  // item's randomness is a pure function of (seed, index).
  const auto work = [](std::size_t idx) {
    const auto opt = core::rb_ring_options(5 + static_cast<int>(idx % 3), 2);
    StepEngine<core::RbProc> eng(core::rb_start_state(opt),
                                 core::make_rb_actions(opt),
                                 util::stream_rng(0x5eedULL, idx),
                                 Semantics::kMaxParallel);
    auto fault_rng = util::stream_rng(0xfa17ULL, idx);
    const auto fault = core::rb_undetectable_fault(opt);
    for (std::size_t j = 0; j < eng.mutable_state().size(); ++j) {
      fault(j, eng.mutable_state()[j], fault_rng);
    }
    const auto steps = eng.run_until(
        [](const core::RbState& s) { return core::rb_is_start_state(s); },
        100'000);
    return steps ? static_cast<double>(*steps) : -1.0;
  };
  util::Sweep one(1);
  util::Sweep eight(8);
  const auto a = one.map<double>(64, work);
  const auto b = eight.map<double>(64, work);
  EXPECT_EQ(one.threads(), 1);
  EXPECT_EQ(eight.threads(), 8);
  ASSERT_TRUE(a == b) << "sweep results depend on thread count";
}

TEST(FaultEnv, ZeroProbabilityNeverInjects) {
  FaultEnv<Cell> env(0.0, [](std::size_t, Cell& c, util::Rng&) { c.v = -1; },
                     util::Rng(11));
  State s(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(env.maybe_inject(s), 0u);
  for (const auto& c : s) EXPECT_EQ(c.v, 0);
}

TEST(FaultEnv, ProbabilityOneHitsEveryProcess) {
  FaultEnv<Cell> env(1.0, [](std::size_t, Cell& c, util::Rng&) { c.v = -1; },
                     util::Rng(12));
  State s(4);
  EXPECT_EQ(env.maybe_inject(s), 4u);
  for (const auto& c : s) EXPECT_EQ(c.v, -1);
  EXPECT_EQ(env.total_injected(), 4u);
}

TEST(FaultEnv, PerturbOneHitsExactlyOne) {
  FaultEnv<Cell> env(0.0, [](std::size_t, Cell& c, util::Rng&) { c.v = -1; },
                     util::Rng(13));
  State s(8);
  env.perturb_one(s);
  int hit = 0;
  for (const auto& c : s) hit += (c.v == -1);
  EXPECT_EQ(hit, 1);
}

TEST(FaultEnv, PerturbReceivesProcessIndex) {
  FaultEnv<Cell> env(0.0,
                     [](std::size_t i, Cell& c, util::Rng&) {
                       c.v = static_cast<int>(i);
                     },
                     util::Rng(14));
  State s(5);
  env.perturb_all(s);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_EQ(s[i].v, static_cast<int>(i));
}

TEST(FaultEnv, InjectionRateMatchesProbability) {
  FaultEnv<Cell> env(0.25, [](std::size_t, Cell&, util::Rng&) {}, util::Rng(15));
  State s(10);
  std::size_t total = 0;
  constexpr int kRounds = 10'000;
  for (int i = 0; i < kRounds; ++i) total += env.maybe_inject(s);
  EXPECT_NEAR(static_cast<double>(total) / (kRounds * 10), 0.25, 0.02);
}

}  // namespace
}  // namespace ftbar::sim
