// Unit tests for the check/ subsystem: interned state storage, successor
// enumeration under both semantics, the parallel checker itself, and the
// counterexample bridge into trace replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "check/checker.hpp"
#include "check/programs.hpp"
#include "check/semantics.hpp"
#include "check/state_store.hpp"
#include "check/swarm.hpp"
#include "core/rb.hpp"
#include "sim/step_engine.hpp"
#include "trace/replay.hpp"

namespace ftbar::check {
namespace {

using core::RbProc;
using core::RbState;

// The two-bit toy system of the seed Explorer tests.
struct Bit {
  int v = 0;
  friend auto operator<=>(const Bit&, const Bit&) = default;
};
using BitState = std::vector<Bit>;

sim::Action<Bit> set_bit(int j) {
  const auto uj = static_cast<std::size_t>(j);
  return sim::make_action<Bit>(
      "set@" + std::to_string(j), j,
      [uj](const BitState& s) { return s[uj].v == 0; },
      [uj](BitState& s) { s[uj].v = 1; });
}

sim::Action<Bit> add_bit(int j, int amount) {
  const auto uj = static_cast<std::size_t>(j);
  return sim::make_action<Bit>(
      "add" + std::to_string(amount) + "@" + std::to_string(j), j,
      [uj](const BitState& s) { return s[uj].v == 0; },
      [uj, amount](BitState& s) { s[uj].v += amount; });
}

// ---------------------------------------------------------------------------
// StateStore
// ---------------------------------------------------------------------------

TEST(StateStore, InternsDedupsAndKeepsDiscoveryMetadata) {
  StateStore<Bit> store(/*procs=*/2, /*max_states=*/100);
  const BitState a{Bit{0}, Bit{0}};
  const BitState b{Bit{1}, Bit{0}};
  const std::uint32_t fired_b[] = {7};

  const auto ra = store.intern(a.data(), store.digest(a.data()),
                               StateStore<Bit>::kNoId, {});
  ASSERT_TRUE(ra.inserted);
  const auto rb = store.intern(b.data(), store.digest(b.data()), ra.id, fired_b);
  ASSERT_TRUE(rb.inserted);
  EXPECT_EQ(store.size(), 2u);

  // Re-interning is a dedup hit that keeps the FIRST discovery edge.
  const std::uint32_t other_fired[] = {3, 4};
  const auto again = store.intern(b.data(), store.digest(b.data()), rb.id, other_fired);
  EXPECT_FALSE(again.inserted);
  EXPECT_EQ(again.id, rb.id);
  EXPECT_EQ(store.size(), 2u);

  const auto span = store.state(rb.id);
  EXPECT_TRUE(std::equal(span.begin(), span.end(), b.begin(), b.end()));
  EXPECT_EQ(store.parent(rb.id), ra.id);
  EXPECT_EQ(store.parent(ra.id), StateStore<Bit>::kNoId);
  ASSERT_EQ(store.fired(rb.id).size(), 1u);
  EXPECT_EQ(store.fired(rb.id)[0], 7u);
  EXPECT_EQ(store.digest_of(rb.id), store.digest(b.data()));

  auto digests = store.sorted_digests();
  EXPECT_EQ(digests.size(), 2u);
  EXPECT_TRUE(std::is_sorted(digests.begin(), digests.end()));
  EXPECT_EQ(store.all_ids().size(), 2u);
}

TEST(StateStore, InternBatchMatchesSingleInternSemantics) {
  using Store = StateStore<Bit>;
  Store store(/*procs=*/2, /*max_states=*/100, /*concurrent=*/true,
              /*fast_path=*/true, /*workers=*/1);
  const BitState root{Bit{0}, Bit{0}};
  const auto r0 =
      store.intern(root.data(), store.digest(root.data()), Store::kNoId, {});
  ASSERT_TRUE(r0.inserted);

  // Stage a batch the way the checker lays it out: three parallel arrays
  // (items / flat state bytes / flat fired lists).
  std::vector<Bit> states;
  const std::vector<std::uint32_t> fired{0, 1, 7, 7, 2};
  std::vector<Store::BulkItem> items;
  const auto stage = [&](const BitState& s, std::uint32_t ofs,
                         std::uint32_t len) {
    Store::BulkItem it;
    it.digest = store.digest(s.data());
    it.state_index = static_cast<std::uint32_t>(items.size());
    it.parent = r0.id;
    it.fired_ofs = ofs;
    it.fired_len = len;
    it.depth = 1;
    states.insert(states.end(), s.begin(), s.end());
    items.push_back(it);
  };
  stage(BitState{Bit{1}, Bit{0}}, 0, 1);  // fresh
  stage(BitState{Bit{0}, Bit{1}}, 1, 1);  // fresh
  stage(BitState{Bit{1}, Bit{0}}, 2, 2);  // in-batch duplicate of item 0
  stage(root, 4, 1);                      // duplicate of the pre-interned root

  std::vector<Store::InternResult> results(items.size());
  Store::BulkScratch scratch;
  const auto stats = store.intern_batch(items, states.data(), fired.data(),
                                        store.arena(0), scratch, results.data());

  EXPECT_TRUE(results[0].inserted);
  EXPECT_TRUE(results[1].inserted);
  EXPECT_FALSE(results[2].inserted);
  EXPECT_EQ(results[2].id, results[0].id);  // in-batch dup resolves to item 0
  EXPECT_FALSE(results[3].inserted);
  EXPECT_EQ(results[3].id, r0.id);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_GE(stats.groups, 1u);
  EXPECT_GE(stats.grouped_items, 2u);  // at least the two fresh insertions

  // First-discovery metadata of a fresh state matches its staged edge, and
  // the interned bytes round-trip out of the arena blob.
  EXPECT_EQ(store.parent(results[0].id), r0.id);
  ASSERT_EQ(store.fired(results[0].id).size(), 1u);
  EXPECT_EQ(store.fired(results[0].id)[0], 0u);
  EXPECT_EQ(store.depth(results[0].id), 1u);
  ASSERT_EQ(store.fired(results[2].id).size(), 1u);  // first edge kept on dup
  const auto span = store.state(results[1].id);
  const BitState b01{Bit{0}, Bit{1}};
  EXPECT_TRUE(std::equal(span.begin(), span.end(), b01.begin(), b01.end()));
  EXPECT_EQ(store.digest_of(results[1].id), store.digest(b01.data()));

  // Re-submitting the same batch is pure duplicates: size and ids stable.
  std::vector<Store::InternResult> again(items.size());
  store.intern_batch(items, states.data(), fired.data(), store.arena(0),
                     scratch, again.data());
  for (std::size_t i = 0; i < again.size(); ++i) {
    EXPECT_FALSE(again[i].inserted) << "item " << i;
    EXPECT_EQ(again[i].id, results[i].id) << "item " << i;
  }
  EXPECT_EQ(store.size(), 3u);
}

// ---------------------------------------------------------------------------
// SuccessorGen
// ---------------------------------------------------------------------------

TEST(SuccessorGen, InterleavingEmitsOneSuccessorPerEnabledAction) {
  // SuccessorGen holds a reference: the action vector must outlive it.
  const std::vector<sim::Action<Bit>> actions{set_bit(0), set_bit(1)};
  SuccessorGen<Bit> gen(actions, 2);
  std::vector<BitState> nexts;
  std::vector<std::vector<std::uint32_t>> fireds;
  gen.for_each_successor(BitState{Bit{0}, Bit{0}}, sim::Semantics::kInterleaving,
                         [&](const BitState& n, std::span<const std::uint32_t> f,
                             std::uint64_t digest) {
                           EXPECT_EQ(digest, trace::state_digest(n));
                           nexts.push_back(n);
                           fireds.emplace_back(f.begin(), f.end());
                         });
  ASSERT_EQ(nexts.size(), 2u);
  EXPECT_EQ(nexts[0], (BitState{Bit{1}, Bit{0}}));
  EXPECT_EQ(nexts[1], (BitState{Bit{0}, Bit{1}}));
  EXPECT_EQ(fireds[0], (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(fireds[1], (std::vector<std::uint32_t>{1}));
}

TEST(SuccessorGen, MaxParallelEnumeratesChoiceProduct) {
  // Process 0 has two enabled choices, process 1 has one: the product has
  // two combinations, each firing BOTH processes (ascending process order).
  const std::vector<sim::Action<Bit>> actions{add_bit(0, 1), add_bit(0, 2),
                                              add_bit(1, 5)};
  SuccessorGen<Bit> gen(actions, 2);
  std::vector<BitState> nexts;
  std::vector<std::vector<std::uint32_t>> fireds;
  gen.for_each_successor(BitState{Bit{0}, Bit{0}}, sim::Semantics::kMaxParallel,
                         [&](const BitState& n, std::span<const std::uint32_t> f,
                             std::uint64_t digest) {
                           EXPECT_EQ(digest, trace::state_digest(n));
                           nexts.push_back(n);
                           fireds.emplace_back(f.begin(), f.end());
                         });
  ASSERT_EQ(nexts.size(), 2u);
  EXPECT_EQ(nexts[0], (BitState{Bit{1}, Bit{5}}));
  EXPECT_EQ(nexts[1], (BitState{Bit{2}, Bit{5}}));
  EXPECT_EQ(fireds[0], (std::vector<std::uint32_t>{0, 2}));
  EXPECT_EQ(fireds[1], (std::vector<std::uint32_t>{1, 2}));
}

TEST(SuccessorGen, QuiescentStateHasNoSuccessors) {
  const std::vector<sim::Action<Bit>> actions{set_bit(0)};
  SuccessorGen<Bit> gen(actions, 1);
  int calls = 0;
  for (const auto sem :
       {sim::Semantics::kInterleaving, sim::Semantics::kMaxParallel}) {
    gen.for_each_successor(
        BitState{Bit{1}}, sem,
        [&](const BitState&, std::span<const std::uint32_t>, std::uint64_t) {
          ++calls;
        });
  }
  EXPECT_EQ(calls, 0);
}

TEST(SuccessorGen, MaxParallelAgreesWithStepEngine) {
  // Every maximal-parallel step the LIVE engine can take from a perturbed RB
  // state must be one of the enumerated successors.
  const auto b = make_rb_bundle(3);
  const RbState from = b.perturbed_roots[b.perturbed_roots.size() / 2];
  std::set<RbState> successors;
  SuccessorGen<RbProc> gen(b.actions, b.procs);
  gen.for_each_successor(
      from, sim::Semantics::kMaxParallel,
      [&](const RbState& n, std::span<const std::uint32_t>, std::uint64_t) {
        successors.insert(n);
      });
  ASSERT_FALSE(successors.empty());
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    sim::StepEngine<RbProc> eng(from, b.actions, util::Rng(seed),
                                sim::Semantics::kMaxParallel);
    ASSERT_GT(eng.step(), 0u);
    EXPECT_TRUE(successors.contains(eng.state()))
        << "engine step with seed " << seed << " not enumerated";
  }
}

// ---------------------------------------------------------------------------
// Checker
// ---------------------------------------------------------------------------

TEST(Checker, CountsReachableStatesLikeTheSeedExplorer) {
  Checker<Bit> ck({set_bit(0), set_bit(1)}, 2);
  const auto res = ck.run({BitState{Bit{0}, Bit{0}}},
                          [](const BitState&) { return true; });
  EXPECT_EQ(res.states_visited, 4u);  // (0,0) -> (1,0),(0,1) -> (1,1)
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.levels, 3u);  // two expansions plus the empty-frontier level
}

TEST(Checker, ViolatingRootIsReportedAsInitial) {
  Checker<Bit> ck({set_bit(0)}, 1);
  const auto res =
      ck.run({BitState{Bit{1}}}, [](const BitState& s) { return s[0].v == 0; });
  ASSERT_TRUE(res.violation.has_value());
  EXPECT_EQ(res.violation->violated_by, "<initial>");
  EXPECT_EQ(res.violation->length(), 0u);
}

TEST(Checker, TruncatesAtMaxStates) {
  auto inc = sim::make_action<Bit>(
      "inc", 0, [](const BitState& s) { return s[0].v < 1'000'000; },
      [](BitState& s) { ++s[0].v; });
  CheckOptions opt;
  opt.max_states = 50;
  Checker<Bit> ck({inc}, 1, opt);
  const auto res = ck.run({BitState{Bit{0}}}, [](const BitState&) { return true; });
  EXPECT_TRUE(res.truncated);
  EXPECT_FALSE(res.ok());
}

TEST(Checker, ThreadCountDoesNotChangeTheVisitedSet) {
  const auto b = make_rb_bundle(4);
  std::size_t baseline_states = 0;
  std::vector<std::uint64_t> baseline_digests;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    CheckOptions opt;
    opt.threads = threads;
    Checker<RbProc> ck(b.actions, b.procs, opt);
    const auto res =
        ck.run(b.perturbed_roots, [](const RbState&) { return true; });
    ASSERT_TRUE(res.ok());
    if (threads == 1) {
      baseline_states = res.states_visited;
      baseline_digests = ck.sorted_digests();
      continue;
    }
    EXPECT_EQ(res.states_visited, baseline_states) << threads << " threads";
    EXPECT_EQ(ck.sorted_digests(), baseline_digests) << threads << " threads";
  }
}

TEST(Checker, CounterexamplePathReplaysStepByStep) {
  const auto b = make_rb_bundle(3);
  // Weakened invariant: pretend the root process may never reach success.
  const auto no_success = [](const RbState& s) {
    return s.front().cp != core::Cp::kSuccess;
  };
  Checker<RbProc> ck(b.actions, b.procs);
  const auto res = ck.run(b.start_roots, no_success);
  ASSERT_TRUE(res.violation.has_value());
  const auto& cx = *res.violation;
  ASSERT_GT(cx.length(), 0u);
  EXPECT_EQ(cx.path.front(), b.start_roots.front());
  EXPECT_FALSE(no_success(cx.path.back()));
  EXPECT_FALSE(cx.violated_by.empty());

  // Each fired list transitions path[i] into path[i+1]...
  RbState state = cx.path.front();
  for (std::size_t i = 0; i < cx.fired.size(); ++i) {
    ASSERT_TRUE(apply_fired(state, cx.fired[i], b.actions, cx.semantics));
    EXPECT_EQ(state, cx.path[i + 1]) << "step " << i;
  }
  // ...and the schedule bridge replays digest-pinned through trace replay.
  const auto report = trace::replay_schedule(counterexample_schedule(cx), b.actions);
  EXPECT_TRUE(report.ok) << report.message;
  EXPECT_EQ(report.steps_replayed, cx.length());
}

// ---------------------------------------------------------------------------
// Work-stealing schedule
// ---------------------------------------------------------------------------

TEST(WorkStealing, MatchesBfsStateCountDiameterAndDigestsAcrossThreadCounts) {
  const auto b = make_rb_bundle(4);
  const auto always = [](const RbState&) { return true; };

  Checker<RbProc> bfs(b.actions, b.procs);
  const auto bfs_res = bfs.run(b.perturbed_roots, always);
  ASSERT_TRUE(bfs_res.ok());
  const auto bfs_digests = bfs.sorted_digests();

  for (const std::size_t threads : {1u, 2u, 8u}) {
    CheckOptions opt;
    opt.schedule = Schedule::kWorkStealing;
    opt.threads = threads;
    Checker<RbProc> ws(b.actions, b.procs, opt);
    const auto res = ws.run(b.perturbed_roots, always);
    ASSERT_TRUE(res.ok()) << threads << " threads";
    EXPECT_EQ(res.states_visited, bfs_res.states_visited)
        << threads << " threads";
    EXPECT_EQ(res.levels, bfs_res.levels) << threads << " threads";
    EXPECT_EQ(ws.sorted_digests(), bfs_digests) << threads << " threads";
  }
}

TEST(WorkStealing, FindsTheViolationWheneverBfsDoesAndItReplays) {
  const auto b = make_rb_bundle(3);
  const std::function<bool(const RbState&)> no_success =
      [](const RbState& s) { return s.front().cp != core::Cp::kSuccess; };

  Checker<RbProc> bfs(b.actions, b.procs);
  const bool bfs_violates =
      bfs.run(b.start_roots, no_success).violation.has_value();
  ASSERT_TRUE(bfs_violates);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    CheckOptions opt;
    opt.schedule = Schedule::kWorkStealing;
    opt.threads = threads;
    Checker<RbProc> ws(b.actions, b.procs, opt);
    const auto res = ws.run(b.start_roots, no_success);
    ASSERT_EQ(res.violation.has_value(), bfs_violates) << threads << " threads";

    // A work-stealing-discovered counterexample shrinks and replays exactly
    // like a BFS one (which violation is found may differ run to run with
    // threads > 1, so only the pipeline is pinned, not the specific path).
    const auto small = shrink_counterexample(*res.violation, b.actions,
                                             no_success);
    ASSERT_GT(small.path.size(), 0u);
    EXPECT_FALSE(no_success(small.path.back()));
    const auto report =
        trace::replay_schedule(counterexample_schedule(small), b.actions);
    EXPECT_TRUE(report.ok) << report.message;
    EXPECT_EQ(report.steps_replayed, small.length());
  }
}

// ---------------------------------------------------------------------------
// Batching determinism
// ---------------------------------------------------------------------------

// The chunk size is scheduler plumbing: at ANY granularity, under either
// schedule, any thread count, either semantics, symmetry on or off, the
// clean-run result (state count, diameter, sorted digests) must be
// bit-identical to the default-option baseline. chunk = 1 is the PR 4
// per-state handoff; 3 exercises partial-chunk publication on every
// frontier; 256 is the chunk capacity.
template <class P>
void expect_batching_invariance(const ProgramBundle<P>& b, const char* name) {
  const auto always = [](const std::vector<P>&) { return true; };
  for (const auto semantics :
       {sim::Semantics::kInterleaving, sim::Semantics::kMaxParallel}) {
    for (const bool symmetry : {false, true}) {
      CheckOptions base;
      base.semantics = semantics;
      base.symmetry = symmetry;
      Checker<P> ref(b.actions, b.procs, base, b.symmetry);
      const auto ref_res = ref.run(b.perturbed_roots, always);
      ASSERT_TRUE(ref_res.ok()) << name;
      const auto ref_digests = ref.sorted_digests();
      for (const std::size_t chunk : {1u, 3u, 64u, 256u}) {
        for (const std::size_t threads : {1u, 2u, 8u}) {
          for (const auto sched : {Schedule::kBfs, Schedule::kWorkStealing}) {
            CheckOptions opt = base;
            opt.chunk = chunk;
            opt.threads = threads;
            opt.schedule = sched;
            Checker<P> ck(b.actions, b.procs, opt, b.symmetry);
            const auto res = ck.run(b.perturbed_roots, always);
            const auto tag = [&] {
              return std::string(name) +
                     (semantics == sim::Semantics::kMaxParallel ? " maxpar"
                                                                : " interleaving") +
                     (symmetry ? " sym" : "") +
                     (sched == Schedule::kWorkStealing ? " ws" : " bfs") +
                     " chunk=" + std::to_string(chunk) +
                     " threads=" + std::to_string(threads);
            }();
            ASSERT_TRUE(res.ok()) << tag;
            EXPECT_EQ(res.states_visited, ref_res.states_visited) << tag;
            EXPECT_EQ(res.levels, ref_res.levels) << tag;
            EXPECT_EQ(ck.sorted_digests(), ref_digests) << tag;
          }
        }
      }
    }
  }
}

TEST(Batching, ChunkSizeNeverChangesTheResultOnAnyBundle) {
  expect_batching_invariance(make_cb_bundle(3), "cb");
  expect_batching_invariance(make_rb_bundle(3), "rb");
  expect_batching_invariance(make_rbp_bundle(3), "rbp");
  expect_batching_invariance(make_mb_bundle(3), "mb");
}

TEST(Batching, CounterexampleIdenticalAcrossChunkSizesAtOneThread) {
  // At one thread both schedules expand in a deterministic global order
  // regardless of batch granularity, so not just the verdict but the exact
  // counterexample (path, schedule, violating action) must be chunk-size
  // independent. (At threads > 1 which violation is found may race; only
  // the single-thread order is pinned.)
  const auto b = make_rb_bundle(3);
  const auto no_success = [](const RbState& s) {
    return s.front().cp != core::Cp::kSuccess;
  };
  for (const auto sched : {Schedule::kBfs, Schedule::kWorkStealing}) {
    std::optional<Counterexample<RbProc>> baseline;
    for (const std::size_t chunk : {1u, 3u, 64u, 256u}) {
      CheckOptions opt;
      opt.schedule = sched;
      opt.chunk = chunk;
      Checker<RbProc> ck(b.actions, b.procs, opt);
      const auto res = ck.run(b.start_roots, no_success);
      ASSERT_TRUE(res.violation.has_value()) << "chunk=" << chunk;
      if (!baseline) {
        baseline = *res.violation;
        continue;
      }
      EXPECT_EQ(res.violation->path, baseline->path) << "chunk=" << chunk;
      EXPECT_EQ(res.violation->fired, baseline->fired) << "chunk=" << chunk;
      EXPECT_EQ(res.violation->violated_by, baseline->violated_by)
          << "chunk=" << chunk;
    }
  }
}

// ---------------------------------------------------------------------------
// Counterexample shrinking
// ---------------------------------------------------------------------------

TEST(Shrink, DropsIrrelevantStepsAndRecomputesPath) {
  // Three independent bits; only bit 2 matters to the invariant. A walk that
  // sets all three must shrink to the single step setting bit 2.
  const std::vector<sim::Action<Bit>> actions{set_bit(0), set_bit(1), set_bit(2)};
  const std::function<bool(const BitState&)> invariant =
      [](const BitState& s) { return s[2].v == 0; };
  Counterexample<Bit> cx;
  cx.semantics = sim::Semantics::kInterleaving;
  cx.path.push_back(BitState{Bit{0}, Bit{0}, Bit{0}});
  for (const std::uint32_t ai : {0u, 1u, 2u}) {
    auto next = cx.path.back();
    actions[ai].apply(next);
    cx.path.push_back(next);
    cx.fired.push_back({ai});
  }
  cx.violated_by = actions[2].name;

  const auto small = shrink_counterexample(cx, actions, invariant);
  ASSERT_EQ(small.length(), 1u);
  EXPECT_EQ(small.fired[0], (std::vector<std::uint32_t>{2}));
  ASSERT_EQ(small.path.size(), 2u);
  EXPECT_EQ(small.path.front(), cx.path.front());
  EXPECT_FALSE(invariant(small.path.back()));
  EXPECT_EQ(small.violated_by, actions[2].name);
}

// ---------------------------------------------------------------------------
// Swarm mode
// ---------------------------------------------------------------------------

TEST(Swarm, FindsPlantedViolationDeterministicallyAcrossThreadCounts) {
  const auto b = make_rb_bundle(4);
  const auto no_success = [](const RbState& s) {
    return s.front().cp != core::Cp::kSuccess;
  };
  const std::function<RbState(util::Rng&)> make_root =
      [&](util::Rng&) { return b.start_roots.front(); };

  SwarmResult<RbProc> baseline;
  for (const int threads : {1, 3}) {
    SwarmOptions opt;
    opt.walks = 16;
    opt.depth = 128;
    opt.seed = 42;
    opt.threads = threads;
    const auto res = swarm_check<RbProc>(b.actions, make_root, no_success, opt);
    EXPECT_FALSE(res.ok());
    ASSERT_TRUE(res.violation.has_value());
    EXPECT_GT(res.distinct_states, 1u);
    if (threads == 1) {
      baseline = res;
      // The violating walk's recording replays and its end state violates.
      const auto report = trace::replay_schedule(*res.violation, b.actions);
      EXPECT_TRUE(report.ok) << report.message;
      RbState state = res.violation->initial;
      for (const auto& step : res.violation->steps) {
        ASSERT_TRUE(apply_fired(state, step.fired, b.actions,
                                res.violation->semantics));
      }
      EXPECT_FALSE(no_success(state));
      continue;
    }
    // util::Sweep's determinism contract: identical outcome at any pool size.
    EXPECT_EQ(res.violating_walk, baseline.violating_walk);
    EXPECT_EQ(res.violating_walks, baseline.violating_walks);
    EXPECT_EQ(res.total_steps, baseline.total_steps);
    EXPECT_EQ(res.distinct_states, baseline.distinct_states);
    EXPECT_EQ(res.violated_by, baseline.violated_by);
  }
}

TEST(Swarm, CleanProgramReportsCoverageOnly) {
  const auto b = make_rb_bundle(3);
  const std::function<RbState(util::Rng&)> make_root = [&](util::Rng& rng) {
    return b.perturbed_roots[rng.uniform(b.perturbed_roots.size())];
  };
  SwarmOptions opt;
  opt.walks = 32;
  opt.depth = 32;
  const auto res = swarm_check<RbProc>(
      b.actions, make_root, [](const RbState&) { return true; }, opt);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.walks_run, 32u);
  EXPECT_GT(res.total_steps, 0u);
  EXPECT_GT(res.distinct_states, 32u);  // walks visit more than their roots
}

}  // namespace
}  // namespace ftbar::check
