#include "sim/event_engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ftbar::sim {
namespace {

TEST(EventEngine, ExecutesInTimeOrder) {
  EventEngine eng;
  std::vector<int> order;
  eng.schedule(3.0, [&] { order.push_back(3); });
  eng.schedule(1.0, [&] { order.push_back(1); });
  eng.schedule(2.0, [&] { order.push_back(2); });
  while (eng.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(eng.now(), 3.0);
}

TEST(EventEngine, FifoTieBreakAtSameTime) {
  EventEngine eng;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    eng.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  while (eng.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventEngine, EventsCanScheduleMoreEvents) {
  EventEngine eng;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) eng.schedule(0.5, chain);
  };
  eng.schedule(0.5, chain);
  while (eng.step()) {
  }
  EXPECT_EQ(fired, 10);
  EXPECT_DOUBLE_EQ(eng.now(), 5.0);
}

TEST(EventEngine, PastTimesClampToNow) {
  EventEngine eng;
  double seen = -1.0;
  eng.schedule(2.0, [&] {
    eng.schedule_at(1.0, [&] { seen = eng.now(); });  // in the past
  });
  while (eng.step()) {
  }
  EXPECT_DOUBLE_EQ(seen, 2.0);
}

TEST(EventEngine, RunUntilStopsAtBoundaryInclusive) {
  EventEngine eng;
  int fired = 0;
  eng.schedule(1.0, [&] { ++fired; });
  eng.schedule(2.0, [&] { ++fired; });
  eng.schedule(2.5, [&] { ++fired; });
  EXPECT_EQ(eng.run_until(2.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(eng.pending(), 1u);
  EXPECT_EQ(eng.run_until(10.0), 1u);
  EXPECT_EQ(fired, 3);
}

TEST(EventEngine, RunWhilePendingHonoursPredicate) {
  EventEngine eng;
  int fired = 0;
  for (int i = 0; i < 10; ++i) eng.schedule(i + 1.0, [&] { ++fired; });
  EXPECT_TRUE(eng.run_while_pending([&] { return fired >= 4; }, 1'000));
  EXPECT_EQ(fired, 4);
  EXPECT_FALSE(eng.run_while_pending([&] { return fired >= 100; }, 1'000));
  EXPECT_EQ(fired, 10);
}

TEST(EventEngine, ProcessedCountAccumulates) {
  EventEngine eng;
  for (int i = 0; i < 7; ++i) eng.schedule(1.0, [] {});
  while (eng.step()) {
  }
  EXPECT_EQ(eng.processed(), 7u);
}

TEST(EventEngine, EmptyQueueStepReturnsFalse) {
  EventEngine eng;
  EXPECT_FALSE(eng.step());
  EXPECT_DOUBLE_EQ(eng.now(), 0.0);
}

}  // namespace
}  // namespace ftbar::sim
