#include "core/token_ring.hpp"

#include <gtest/gtest.h>

#include "sim/model_check.hpp"
#include "sim/step_engine.hpp"

namespace ftbar::core {
namespace {

struct TrHash {
  std::size_t operator()(const TrState& s) const {
    std::size_t h = 1469598103934665603ULL;
    for (const auto& p : s) {
      h ^= static_cast<std::size_t>(p.sn + 3);
      h *= 1099511628211ULL;
    }
    return h;
  }
};

std::vector<TrState> all_valid_states(const TrOptions& opt) {
  std::vector<TrState> out;
  const int k = opt.k();
  std::vector<int> digits(static_cast<std::size_t>(opt.num_procs), 0);
  for (;;) {
    TrState s(static_cast<std::size_t>(opt.num_procs));
    for (std::size_t j = 0; j < digits.size(); ++j) s[j].sn = digits[j];
    out.push_back(std::move(s));
    int pos = 0;
    while (pos < opt.num_procs && ++digits[static_cast<std::size_t>(pos)] == k) {
      digits[static_cast<std::size_t>(pos)] = 0;
      ++pos;
    }
    if (pos == opt.num_procs) break;
  }
  return out;
}

std::vector<TrState> all_states(const TrOptions& opt) {
  // Valid values plus BOT/TOP.
  std::vector<TrState> out;
  const int k = opt.k();
  std::vector<int> domain;
  for (int v = 0; v < k; ++v) domain.push_back(v);
  domain.push_back(kTrBot);
  domain.push_back(kTrTop);
  std::vector<std::size_t> digits(static_cast<std::size_t>(opt.num_procs), 0);
  for (;;) {
    TrState s(static_cast<std::size_t>(opt.num_procs));
    for (std::size_t j = 0; j < digits.size(); ++j) s[j].sn = domain[digits[j]];
    out.push_back(std::move(s));
    std::size_t pos = 0;
    while (pos < digits.size() && ++digits[pos] == domain.size()) {
      digits[pos] = 0;
      ++pos;
    }
    if (pos == digits.size()) break;
  }
  return out;
}

TEST(TokenRing, StartStateHasExactlyOneToken) {
  const TrOptions opt{5, 0};
  const auto s = tr_start_state(opt);
  EXPECT_EQ(tr_token_count(s), 1);
  EXPECT_TRUE(tr_has_token(s, 4)) << "uniform ring: token at the last process";
  EXPECT_TRUE(tr_legitimate(s));
}

TEST(TokenRing, FaultFreeSingleTokenInvariantModelChecked) {
  const TrOptions opt{4, 0};
  sim::Explorer<TrProc, TrHash> ex(make_tr_actions(opt), TrHash{});
  const auto result = ex.explore(
      {tr_start_state(opt)},
      [](const TrState& s) { return tr_token_count(s) == 1; });
  EXPECT_FALSE(result.truncated);
  EXPECT_FALSE(result.violation.has_value())
      << "token invariant violated via " << result.violated_by;
}

TEST(TokenRing, TokenCirculatesThroughEveryProcess) {
  const TrOptions opt{5, 0};
  sim::StepEngine<TrProc> eng(tr_start_state(opt), make_tr_actions(opt),
                              util::Rng(3));
  std::vector<int> holds(5, 0);
  for (int i = 0; i < 3'000; ++i) {
    for (int j = 0; j < 5; ++j) holds[static_cast<std::size_t>(j)] += tr_has_token(eng.state(), j);
    eng.step();
  }
  for (int j = 0; j < 5; ++j) {
    EXPECT_GT(holds[static_cast<std::size_t>(j)], 100) << "process " << j << " starved";
  }
}

TEST(TokenRing, DetectableFaultsKeepAtMostOneToken) {
  // Model check with gated detectable-fault actions (at least one other
  // process keeps a valid sn): property (a) of Section 4.1.
  const TrOptions opt{3, 0};
  auto actions = make_tr_actions(opt);
  for (int j = 0; j < 3; ++j) {
    const auto uj = static_cast<std::size_t>(j);
    actions.push_back(sim::make_action<TrProc>(
        "F@" + std::to_string(j), j,
        [uj](const TrState& s) {
          for (std::size_t q = 0; q < s.size(); ++q) {
            if (q != uj && tr_valid(s[q].sn)) return true;
          }
          return false;
        },
        [uj](TrState& s) { s[uj].sn = kTrBot; }));
  }
  sim::Explorer<TrProc, TrHash> ex(std::move(actions), TrHash{});
  const auto result = ex.explore(
      {tr_start_state(opt)},
      [](const TrState& s) { return tr_token_count(s) <= 1 && s[0].sn != kTrTop; });
  EXPECT_FALSE(result.truncated);
  EXPECT_FALSE(result.violation.has_value())
      << "violated via " << result.violated_by;
  // And from every reachable state the single token returns.
  EXPECT_TRUE(ex.legit_reachable_from_all(tr_legitimate));
}

TEST(TokenRing, StabilizesFromEveryStateIncludingBotTop) {
  const TrOptions opt{3, 0};  // K = 4 > N = 2
  sim::Explorer<TrProc, TrHash> ex(make_tr_actions(opt), TrHash{});
  const auto result = ex.explore(all_states(opt), [](const TrState&) { return true; });
  ASSERT_FALSE(result.truncated);
  EXPECT_TRUE(ex.legit_reachable_from_all(tr_legitimate));
}

TEST(TokenRing, ConvergesUnderAnySchedulingWhenKExceedsN) {
  // Dijkstra bound, positive side: with K = S (> N = S-1), there is no
  // infinite execution that avoids legitimacy — the non-legitimate part of
  // the transition graph is cycle-free.
  const TrOptions opt{4, 4};
  sim::Explorer<TrProc, TrHash> ex(make_tr_actions(opt), TrHash{});
  const auto result =
      ex.explore(all_valid_states(opt), [](const TrState&) { return true; });
  ASSERT_FALSE(result.truncated);
  EXPECT_TRUE(ex.converges_outside(tr_legitimate))
      << "a non-converging execution exists although K > N";
}

TEST(TokenRing, CycleExistsWhenKTooSmall) {
  // Dijkstra bound, negative side: K = S - 1 is known to still converge,
  // but at K = S - 2 the classic counterexample appears — an infinite
  // execution that never reaches a single-token state. This validates why
  // the sequence domain cannot be shrunk arbitrarily (the paper plays it
  // safe with K > N).
  const TrOptions opt{4, 2};
  sim::Explorer<TrProc, TrHash> ex(make_tr_actions(opt), TrHash{});
  const auto result =
      ex.explore(all_valid_states(opt), [](const TrState&) { return true; });
  ASSERT_FALSE(result.truncated);
  EXPECT_FALSE(ex.converges_outside(tr_legitimate))
      << "expected a non-converging cycle with K = N";
}

TEST(TokenRing, WholeRingDetectableCorruptionHealsViaTopWave) {
  const TrOptions opt{5, 0};
  sim::StepEngine<TrProc> eng(tr_start_state(opt), make_tr_actions(opt),
                              util::Rng(9));
  for (auto& p : eng.mutable_state()) p.sn = kTrBot;
  const auto recovered = eng.run_until(tr_legitimate, 100'000);
  EXPECT_TRUE(recovered.has_value()) << "TOP wave did not restore the ring";
}

TEST(TokenRing, RandomizedStabilization) {
  const TrOptions opt{7, 0};
  const auto perturb = tr_undetectable_fault(opt);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim::StepEngine<TrProc> eng(tr_start_state(opt), make_tr_actions(opt),
                                util::Rng(seed));
    util::Rng fault_rng(seed * 31);
    for (std::size_t j = 0; j < eng.mutable_state().size(); ++j) {
      perturb(j, eng.mutable_state()[j], fault_rng);
    }
    const auto recovered = eng.run_until(tr_legitimate, 200'000);
    ASSERT_TRUE(recovered.has_value()) << "seed " << seed;
    // Once legitimate, the single-token invariant is closed.
    for (int i = 0; i < 500; ++i) {
      eng.step();
      ASSERT_EQ(tr_token_count(eng.state()), 1) << "seed " << seed;
    }
  }
}

TEST(TokenRing, DefaultModulusSatisfiesPaperBound) {
  EXPECT_EQ((TrOptions{6, 0}).k(), 7);  // K = S+1 > N = S-1
  EXPECT_EQ((TrOptions{6, 9}).k(), 9);
}

}  // namespace
}  // namespace ftbar::core
