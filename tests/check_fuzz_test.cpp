// Differential fuzzing of the check/ subsystem against the seed
// sim::Explorer it supersedes: 500 seeded runs over randomly drawn root
// sets of all four programs. On the shared semantics (interleaving — the
// only one the seed implements) the two implementations must produce the
// SAME verdict, and on clean exhaustive runs the same visited-state set:
// bit-identical state counts and identical sorted digest fingerprints, plus
// agreement on both convergence queries over the recorded graphs.
//
// Each stream also draws a scheduler configuration — BFS or work-stealing,
// chunk size from {1, 3, 64, 256} — so the batching plumbing is fuzzed
// against the seed under every handoff granularity, not just the default.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "check/checker.hpp"
#include "check/programs.hpp"
#include "sim/model_check.hpp"
#include "trace/replay.hpp"
#include "util/sweep.hpp"

namespace ftbar::check {
namespace {

template <class P>
struct DigestHash {
  std::size_t operator()(const std::vector<P>& s) const {
    return static_cast<std::size_t>(trace::state_digest(s));
  }
};

constexpr std::uint64_t kFuzzSeed = 0xd1ffe2e27ull;
constexpr std::size_t kRuns = 500;

template <class P>
void differential_run(const ProgramBundle<P>& b, std::uint64_t stream) {
  util::Rng rng = util::stream_rng(kFuzzSeed, stream);

  // Roots: a random non-empty sample of the perturbation neighbourhood.
  std::vector<std::vector<P>> roots;
  const std::size_t picks = 1 + rng.uniform(4);
  for (std::size_t i = 0; i < picks; ++i) {
    roots.push_back(b.perturbed_roots[rng.uniform(b.perturbed_roots.size())]);
  }

  // Half the runs hunt safety violations (perturbed roots usually violate),
  // half collect the reachable set and compare the convergence queries too.
  const bool hunt = stream % 2 == 0;
  const std::function<bool(const std::vector<P>&)> invariant =
      hunt ? b.safe : [](const std::vector<P>&) { return true; };

  CheckOptions copt;
  copt.record_edges = !hunt;
  copt.schedule =
      rng.uniform(2) == 0 ? Schedule::kBfs : Schedule::kWorkStealing;
  constexpr std::size_t kChunks[] = {1, 3, 64, 256};
  copt.chunk = kChunks[rng.uniform(4)];
  Checker<P> checker(b.actions, b.procs, copt);
  const auto cres = checker.run(roots, invariant);

  sim::Explorer<P, DigestHash<P>> seed(b.actions, DigestHash<P>{});
  const auto sres = seed.explore(roots, invariant);

  ASSERT_FALSE(cres.truncated) << "stream " << stream;
  ASSERT_FALSE(sres.truncated) << "stream " << stream;
  EXPECT_EQ(cres.violation.has_value(), sres.violation.has_value())
      << "verdicts differ on stream " << stream;
  if (cres.violation.has_value() || sres.violation.has_value()) return;

  // Clean exhaustive runs: the reachable set is unique, so the count must be
  // bit-identical and the digest fingerprints equal element for element.
  EXPECT_EQ(cres.states_visited, sres.states_visited) << "stream " << stream;
  std::vector<std::uint64_t> seed_digests;
  seed_digests.reserve(seed.states().size());
  for (const auto& s : seed.states()) {
    seed_digests.push_back(trace::state_digest(s));
  }
  std::sort(seed_digests.begin(), seed_digests.end());
  EXPECT_EQ(checker.sorted_digests(), seed_digests) << "stream " << stream;

  // Both transition graphs must answer the convergence queries identically
  // (only the collect runs recorded edges; hunt runs have no graph).
  if (!hunt) {
    EXPECT_EQ(checker.legit_reachable_from_all(b.legit),
              seed.legit_reachable_from_all(b.legit))
        << "stream " << stream;
    EXPECT_EQ(checker.converges_outside(b.legit),
              seed.converges_outside(b.legit))
        << "stream " << stream;
  }
}

TEST(CheckFuzz, FiveHundredDifferentialRunsAgainstSeedExplorer) {
  for (std::uint64_t stream = 0; stream < kRuns; ++stream) {
    util::Rng pick = util::stream_rng(kFuzzSeed ^ 0xabcdULL, stream);
    switch (stream % 4) {
      case 0:
        differential_run(make_cb_bundle(2 + static_cast<int>(pick.uniform(3))),
                         stream);
        break;
      case 1:
        differential_run(make_rb_bundle(2 + static_cast<int>(pick.uniform(2))),
                         stream);
        break;
      case 2:
        differential_run(make_rbp_bundle(3 + static_cast<int>(pick.uniform(2))),
                         stream);
        break;
      default:
        differential_run(make_mb_bundle(2), stream);
        break;
    }
    if (HasFatalFailure()) break;
  }
}

}  // namespace
}  // namespace ftbar::check
