#include "ext/fault_matrix.hpp"

#include <gtest/gtest.h>

namespace ftbar::ext {
namespace {

TEST(FaultMatrix, Table1Mapping) {
  // Row 1: immediately correctable faults are trivially masked.
  EXPECT_EQ(appropriate_tolerance(Detectability::kDetectable, Correctability::kImmediate),
            Tolerance::kTriviallyMasking);
  EXPECT_EQ(
      appropriate_tolerance(Detectability::kUndetectable, Correctability::kImmediate),
      Tolerance::kTriviallyMasking);
  // Row 2: eventually correctable -> masking / stabilizing.
  EXPECT_EQ(appropriate_tolerance(Detectability::kDetectable, Correctability::kEventual),
            Tolerance::kMasking);
  EXPECT_EQ(
      appropriate_tolerance(Detectability::kUndetectable, Correctability::kEventual),
      Tolerance::kStabilizing);
  // Row 3: uncorrectable -> fail-safe / intolerant.
  EXPECT_EQ(
      appropriate_tolerance(Detectability::kDetectable, Correctability::kUncorrectable),
      Tolerance::kFailSafe);
  EXPECT_EQ(appropriate_tolerance(Detectability::kUndetectable,
                                  Correctability::kUncorrectable),
            Tolerance::kIntolerant);
}

TEST(FaultMatrix, CatalogClassifiesIntroductionFaults) {
  const auto catalog = standard_fault_catalog();
  ASSERT_GE(catalog.size(), 10u);
  auto find = [&](std::string_view name) -> const FaultType* {
    for (const auto& f : catalog) {
      if (f.name == name) return &f;
    }
    return nullptr;
  };
  const auto* loss = find("message loss");
  ASSERT_NE(loss, nullptr);
  EXPECT_EQ(loss->tolerance(), Tolerance::kMasking);

  const auto* transient = find("transient state corruption");
  ASSERT_NE(transient, nullptr);
  EXPECT_EQ(transient->tolerance(), Tolerance::kStabilizing);

  const auto* crash = find("permanent processor crash");
  ASSERT_NE(crash, nullptr);
  EXPECT_EQ(crash->tolerance(), Tolerance::kFailSafe);

  const auto* byz = find("Byzantine process");
  ASSERT_NE(byz, nullptr);
  EXPECT_EQ(byz->tolerance(), Tolerance::kIntolerant);

  const auto* ecc = find("ECC-corrected message corruption");
  ASSERT_NE(ecc, nullptr);
  EXPECT_EQ(ecc->tolerance(), Tolerance::kTriviallyMasking);
}

TEST(FaultMatrix, NamesAreStable) {
  EXPECT_EQ(to_string(Detectability::kDetectable), "detectable");
  EXPECT_EQ(to_string(Correctability::kUncorrectable), "uncorrectable");
  EXPECT_EQ(to_string(Tolerance::kFailSafe), "fail-safe");
  EXPECT_EQ(to_string(Tolerance::kStabilizing), "stabilizing");
}

TEST(FaultMatrix, CatalogNamesAreUnique) {
  const auto catalog = standard_fault_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    for (std::size_t j = i + 1; j < catalog.size(); ++j) {
      EXPECT_NE(catalog[i].name, catalog[j].name);
    }
  }
}

}  // namespace
}  // namespace ftbar::ext
