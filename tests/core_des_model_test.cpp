#include "core/des_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ftbar::core {
namespace {

TEST(DesModel, FaultFreePeriodWithinPipelineBounds) {
  // The steady-state period lies between the pure compute time (1.0, all
  // synchronization hidden by cross-phase pipelining) and the unpipelined
  // circulation time 1 + 2hc + 2c.
  DesParams p;
  p.num_procs = 31;  // h = 4 binary tree
  p.arity = 2;
  p.c = 0.01;
  p.f = 0.0;
  DesRbSimulation sim(p);
  (void)sim.run(1);  // absorb the startup transient
  const double t1 = sim.now();
  const auto r = sim.run(5);
  EXPECT_EQ(r.phases, 5u);
  const double period = (sim.now() - t1) / 5.0;
  EXPECT_GE(period, 1.0);
  EXPECT_LE(period, sim.fault_free_period_bound());
}

TEST(DesModel, FirstPhaseLatencyIsExactlyOnePlusHc) {
  // The first phase has no pipeline to hide in: the leaf completes exactly
  // at 1 + hc (execute wave down, then unit work).
  DesParams p;
  p.num_procs = 31;
  p.arity = 2;
  p.c = 0.01;
  p.f = 0.0;
  DesRbSimulation sim(p);
  const auto r = sim.run(1);
  EXPECT_EQ(r.phases, 1u);
  EXPECT_NEAR(sim.now(), 1.0 + 4 * 0.01, 1e-9);
}

TEST(DesModel, FaultFreeInstancesEqualPhases) {
  DesParams p;
  p.num_procs = 15;
  p.f = 0.0;
  DesRbSimulation sim(p);
  const auto r = sim.run(10);
  EXPECT_EQ(r.phases, 10u);
  EXPECT_EQ(r.instances, 10u);
  EXPECT_EQ(r.faults, 0u);
  EXPECT_TRUE(r.safety_ok);
}

TEST(DesModel, PipelinedPeriodBeatsAnalyticalWorstCase) {
  DesParams p;
  p.num_procs = 31;
  p.c = 0.02;
  DesRbSimulation sim(p);
  const int h = 4;
  EXPECT_LT(sim.fault_free_period_bound(), 1.0 + 3 * h * p.c);
  EXPECT_GT(sim.fault_free_period_bound(), 1.0 + 2 * h * p.c);
}

TEST(DesModel, RingTopologyWorks) {
  DesParams p;
  p.num_procs = 6;
  p.arity = 1;  // ring
  p.c = 0.01;
  DesRbSimulation sim(p);
  const auto r = sim.run(4);
  EXPECT_EQ(r.phases, 4u);
  EXPECT_TRUE(r.safety_ok);
  // Ring height is N-1: period 1 + 2(N-1)c + 2c.
  EXPECT_NEAR(sim.fault_free_period_bound(), 1.0 + 2 * 5 * 0.01 + 2 * 0.01, 1e-12);
}

TEST(DesModel, DetectableFaultsForceReExecutionsButPreserveSafety) {
  DesParams p;
  p.num_procs = 15;
  p.c = 0.01;
  p.f = 0.05;
  p.seed = 99;
  DesRbSimulation sim(p);
  const auto r = sim.run(200);
  EXPECT_EQ(r.phases, 200u);
  EXPECT_TRUE(r.safety_ok) << sim.monitor().violations().front();
  EXPECT_GT(r.faults, 0u);
  EXPECT_GT(r.instances, r.phases) << "faults must cause re-executions";
}

TEST(DesModel, InstancesGrowWithFaultFrequency) {
  auto instances_at = [](double f) {
    DesParams p;
    p.num_procs = 15;
    p.c = 0.01;
    p.f = f;
    p.seed = 7;
    DesRbSimulation sim(p);
    return sim.run(400).instances;
  };
  const auto low = instances_at(0.01);
  const auto high = instances_at(0.20);
  EXPECT_LT(low, high);
}

TEST(DesModel, MeanPhaseTimeBelowAnalyticalWorstCase) {
  DesParams p;
  p.num_procs = 31;
  p.c = 0.01;
  p.f = 0.05;
  p.seed = 13;
  DesRbSimulation sim(p);
  (void)sim.run(1);
  const double t1 = sim.now();
  const auto r = sim.run(400);
  ASSERT_EQ(r.phases, 400u);
  const double mean = (sim.now() - t1) / 400.0;
  const int h = 4;
  const double analytic_worst =
      (1.0 + 3 * h * p.c) / std::pow(1.0 - p.f, 1.0 + 3 * h * p.c);
  EXPECT_LT(mean, analytic_worst);
  EXPECT_GE(mean, 1.0);  // the phase work itself is incompressible
  EXPECT_TRUE(r.safety_ok);
}

TEST(DesModel, RepeatedRunsAccumulate) {
  DesParams p;
  p.num_procs = 7;
  DesRbSimulation sim(p);
  (void)sim.run(3);
  const auto r2 = sim.run(3);
  EXPECT_EQ(r2.phases, 3u);
  EXPECT_EQ(sim.monitor().successful_phases(), 6u);
}

}  // namespace
}  // namespace ftbar::core
