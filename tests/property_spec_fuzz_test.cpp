// Fuzz tests of the specification monitor: arbitrary event streams must
// never crash or corrupt its bookkeeping, and legally generated barrier
// executions (with random joins, failures, and re-executions) must always
// be accepted.
#include <gtest/gtest.h>

#include "core/spec.hpp"
#include "runtime/network.hpp"
#include "util/rng.hpp"

namespace ftbar::core {
namespace {

class SpecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpecFuzz, ArbitraryEventStormNeverCrashes) {
  util::Rng rng(GetParam());
  SpecMonitor m(4, 3);
  for (int i = 0; i < 20'000; ++i) {
    const int proc = static_cast<int>(rng.uniform(4));
    const int ph = static_cast<int>(rng.uniform(3));
    switch (rng.uniform(6)) {
      case 0: m.on_start(proc, ph, rng.bernoulli(0.3)); break;
      case 1: m.on_complete(proc, ph); break;
      case 2: m.on_abort(proc); break;
      case 3: m.on_undetectable_fault(); break;
      case 4: m.resync(static_cast<int>(rng.uniform(9)) - 3); break;
      case 5:
        (void)m.anyone_executing();
        (void)m.successful_phases();
        (void)m.expected_phase();
        break;
    }
  }
  // Bookkeeping stays internally consistent whatever happened.
  EXPECT_LE(m.failed_instances(), m.total_instances());
  EXPECT_GE(m.expected_phase(), 0);
  EXPECT_LT(m.expected_phase(), 3);
}

TEST_P(SpecFuzz, LegallyGeneratedExecutionsAreAlwaysAccepted) {
  // Generator of correct barrier behaviour: for each phase, run one or
  // more instances; all but the last fail through process resets at random
  // points (never leaving anyone executing when the next instance opens);
  // the last instance completes everywhere.
  util::Rng rng(GetParam() ^ 0x9999ULL);
  constexpr int kProcs = 5;
  constexpr int kPhaseCount = 4;
  SpecMonitor m(kProcs, kPhaseCount);

  int expected_successes = 0;
  int expected_failures = 0;
  for (int round = 0; round < 40; ++round) {
    const int ph = round % kPhaseCount;
    const int attempts = 1 + static_cast<int>(rng.uniform(3));
    for (int attempt = 0; attempt < attempts; ++attempt) {
      const bool last = attempt == attempts - 1;
      // Random join order, process 0-equivalent opener first.
      std::vector<int> order;
      for (int p = 0; p < kProcs; ++p) order.push_back(p);
      for (int i = kProcs - 1; i > 0; --i) {
        std::swap(order[static_cast<std::size_t>(i)],
                  order[static_cast<std::size_t>(rng.uniform(
                      static_cast<std::uint64_t>(i + 1)))]);
      }
      m.on_start(order[0], ph, /*new_instance=*/true);
      for (int i = 1; i < kProcs; ++i) {
        m.on_start(order[static_cast<std::size_t>(i)], ph, false);
      }
      if (last) {
        for (int p = 0; p < kProcs; ++p) m.on_complete(p, ph);
        ++expected_successes;
      } else {
        // A random prefix completes, the rest abort (state resets); then a
        // fresh instance may open since nobody is executing.
        const auto completed = rng.uniform(kProcs);  // < kProcs
        for (std::size_t i = 0; i < completed; ++i) {
          m.on_complete(order[i], ph);
        }
        for (std::size_t i = completed; i < kProcs; ++i) {
          m.on_abort(order[i]);
        }
        ++expected_failures;
      }
    }
  }
  EXPECT_TRUE(m.safety_ok()) << m.violations().front();
  EXPECT_EQ(m.successful_phases(), static_cast<std::size_t>(expected_successes));
  EXPECT_EQ(m.failed_instances(), static_cast<std::size_t>(expected_failures));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpecFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(NetworkFuzz, StatsStayConsistentUnderRandomTraffic) {
  util::Rng rng(4242);
  runtime::Network net(4, 99, /*inbox_capacity=*/64);
  net.set_default_faults(runtime::LinkFaults{.drop = 0.2, .duplicate = 0.2,
                                             .corrupt = 0.2, .reorder = 0.2});
  for (int i = 0; i < 20'000; ++i) {
    const int src = static_cast<int>(rng.uniform(4));
    int dst = static_cast<int>(rng.uniform(4));
    if (dst == src) dst = (dst + 1) % 4;
    if (rng.bernoulli(0.7)) {
      net.send_value(src, dst, static_cast<int>(rng.uniform(8)), i);
    } else {
      (void)net.try_recv(dst);
    }
  }
  const auto s = net.stats();
  // Every sent-or-duplicated message is delivered, dropped, or still held
  // back in one of the 16 reorder slots.
  EXPECT_LE(s.delivered + s.dropped, s.sent + s.duplicated);
  EXPECT_GE(s.delivered + s.dropped + 16, s.sent + s.duplicated);
  EXPECT_LE(s.corrupted, s.sent);
  EXPECT_LE(s.reordered, s.sent);
}

}  // namespace
}  // namespace ftbar::core
