#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ftbar::util {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Accumulator, SingleSample) {
  Accumulator a;
  a.add(5.0);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 5.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(Accumulator, KnownMoments) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(a.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator whole, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = 0.37 * i - 3.0;
    whole.add(x);
    (i < 40 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmptyIsIdentity) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  EXPECT_EQ(a.count(), 2u);

  Accumulator b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
  EXPECT_EQ(b.count(), 2u);
}

TEST(Samples, EmptyQuantileIsZero) {
  Samples s;
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Samples, ExactQuantiles) {
  Samples s;
  for (double x : {3.0, 1.0, 2.0, 5.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.75), 4.0);
}

TEST(Samples, InterpolatesBetweenPoints) {
  Samples s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.5);
}

TEST(Samples, QuantileClampsArgument) {
  Samples s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.quantile(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(2.0), 2.0);
}

TEST(Samples, AddAfterQuantileStillCorrect) {
  Samples s;
  s.add(2.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.5);
  s.add(0.0);  // resorts lazily on next quantile
  EXPECT_DOUBLE_EQ(s.median(), 1.0);
}

TEST(Samples, MeanIsArithmeticMean) {
  Samples s;
  for (int i = 1; i <= 10; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.mean(), 5.5);
}

}  // namespace
}  // namespace ftbar::util
