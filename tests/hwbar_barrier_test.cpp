#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "hwbar/central.hpp"
#include "hwbar/topo.hpp"
#include "hwbar/tree.hpp"
#include "trace/monitor.hpp"
#include "trace/recorder.hpp"

namespace ftbar::hwbar {
namespace {

// Correctness tests stay meaningful when oversubscribed (every wait loop
// yields), so only counts beyond max(hardware_concurrency, 8) are skipped —
// the 1/2/8 sweep always runs, even on a single-core box.
bool oversubscribed_beyond_floor(int n) {
  return n > std::max(hardware_threads(), 8);
}

Options quiet_options() {
  Options opt;
  // Fault-free runs must never suspect anyone, even under a sanitizer's
  // scheduling delays on a loaded single core.
  opt.suspect_after = std::chrono::milliseconds(10'000);
  return opt;
}

std::vector<std::unique_ptr<HwBarrier>> all_variants(int n,
                                                     const Options& opt) {
  std::vector<std::unique_ptr<HwBarrier>> out;
  out.push_back(std::make_unique<CentralHwBarrier>(n, opt));
  out.push_back(std::make_unique<TreeHwBarrier>(n, opt, 2));
  out.push_back(TopoHwBarrier::ring(n, opt));
  if (n >= 3) out.push_back(TopoHwBarrier::two_ring(n, opt));
  out.push_back(TopoHwBarrier::package_tree(n, /*threads_per_package=*/3, opt));
  return out;
}

/// After the barrier of round r every thread must observe every other
/// thread's counter at >= r, and its ticket must name episode r exactly.
void check_fault_free(HwBarrier& bar, int n, int rounds) {
  std::vector<std::atomic<int>> progress(static_cast<std::size_t>(n));
  for (auto& p : progress) p.store(0);
  std::atomic<int> violations{0};
  std::atomic<int> bad_tickets{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int tid = 0; tid < n; ++tid) {
    threads.emplace_back([&, tid] {
      for (int r = 1; r <= rounds; ++r) {
        progress[static_cast<std::size_t>(tid)].store(
            r, std::memory_order_release);
        const Ticket t = bar.arrive_and_wait(tid);
        if (t.status != ArriveStatus::kReleased ||
            t.episode != static_cast<std::uint64_t>(r) ||
            t.phase != static_cast<int>(r % bar.num_phases())) {
          ++bad_tickets;
        }
        for (int k = 0; k < n; ++k) {
          if (progress[static_cast<std::size_t>(k)].load(
                  std::memory_order_acquire) < r) {
            ++violations;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(bad_tickets.load(), 0);
  // Episode-count and sense invariants: exactly one commit per round, the
  // sense bit is the episode parity, and nothing degraded or died.
  EXPECT_EQ(bar.episode(), static_cast<std::uint64_t>(rounds));
  EXPECT_EQ(bar.sense(), (rounds & 1) != 0);
  EXPECT_FALSE(bar.degraded());
  const Stats s = bar.stats();
  EXPECT_EQ(s.deaths, 0U);
  EXPECT_EQ(s.rejoins, 0U);
  EXPECT_EQ(s.evictions, 0U);
  EXPECT_EQ(s.wave_commits + s.scan_commits,
            static_cast<std::uint64_t>(rounds));
}

class HwBarrierSweep : public ::testing::TestWithParam<int> {};

TEST_P(HwBarrierSweep, AllVariantsSynchronize) {
  const int n = GetParam();
  if (oversubscribed_beyond_floor(n)) {
    GTEST_SKIP() << "skipping " << n << " threads on "
                 << hardware_threads() << " hardware threads";
  }
  for (auto& bar : all_variants(n, quiet_options())) {
    SCOPED_TRACE(std::string(bar->kind_name()) + " n=" + std::to_string(n));
    check_fault_free(*bar, n, 50);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, HwBarrierSweep,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(HwBarrier, SingleThreadNeverBlocksAndSenseAlternates) {
  CentralHwBarrier bar(1, quiet_options());
  for (int r = 1; r <= 100; ++r) {
    const Ticket t = bar.arrive_and_wait(0);
    EXPECT_EQ(t.status, ArriveStatus::kReleased);
    EXPECT_EQ(bar.sense(), (r & 1) != 0);
  }
  EXPECT_EQ(bar.episode(), 100U);
}

TEST(HwBarrier, PhaseWrapsAtNumPhases) {
  Options opt = quiet_options();
  opt.num_phases = 4;
  TreeHwBarrier bar(2, opt);
  check_fault_free(bar, 2, 10);  // 10 rounds over a 4-phase cycle
}

TEST(HwBarrier, RejoinOnAliveSlotIsRefused) {
  CentralHwBarrier bar(2, quiet_options());
  const Ticket t = bar.rejoin(0);
  EXPECT_EQ(t.status, ArriveStatus::kEvicted);
  EXPECT_EQ(bar.episode(), 0U);
  EXPECT_EQ(bar.slot_state(0), SlotState::kAlive);
}

TEST(HwBarrier, RetireLetsSurvivorsContinue) {
  Options opt = quiet_options();
  CentralHwBarrier bar(3, opt);
  std::vector<std::thread> threads;
  // Threads retire one by one after a different number of rounds; the
  // remaining members must keep committing episodes without the retirees.
  for (int tid = 0; tid < 3; ++tid) {
    threads.emplace_back([&, tid] {
      const int rounds = 4 + 4 * tid;  // 4, 8, 12
      for (int r = 0; r < rounds; ++r) {
        const Ticket t = bar.arrive_and_wait(tid);
        ASSERT_EQ(t.status, ArriveStatus::kReleased);
      }
      bar.retire(tid);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bar.stats().retires, 3U);
  // Thread 2 ran 12 rounds; the first 4 had everyone, the rest progressively
  // fewer members, but every one of its arrivals was released.
  EXPECT_GE(bar.episode(), 12U);
}

TEST(HwBarrier, KillPointsAreConsultedOnTheFastPath) {
  FaultInjector inj;  // armed with nothing: pure consultation counting
  Options opt = quiet_options();
  opt.injector = &inj;
  const int n = 4;
  const int rounds = 20;
  TreeHwBarrier bar(n, opt);
  check_fault_free(bar, n, rounds);
  const auto consulted = static_cast<std::uint64_t>(n) * rounds;
  // Entry, publish and depart are on every released thread's path
  // unconditionally; the wave kill points depend on how often the scan
  // path won the race, so only their reachability matters here (the
  // recovery test arms each one individually).
  EXPECT_EQ(inj.consulted(KillPoint::kArriveEntry), consulted);
  EXPECT_EQ(inj.consulted(KillPoint::kAfterPublish), consulted);
  EXPECT_EQ(inj.consulted(KillPoint::kBeforeDepart), consulted);
  EXPECT_EQ(inj.kills(), 0U);
}

TEST(FaultInjector, ArmedKillFiresExactlyOnce) {
  FaultInjector inj;
  inj.arm(2, 7, KillPoint::kAfterPublish);
  EXPECT_FALSE(inj.should_die(2, 6, KillPoint::kAfterPublish));
  EXPECT_FALSE(inj.should_die(1, 7, KillPoint::kAfterPublish));
  EXPECT_FALSE(inj.should_die(2, 7, KillPoint::kArriveEntry));
  EXPECT_TRUE(inj.should_die(2, 7, KillPoint::kAfterPublish));
  EXPECT_FALSE(inj.should_die(2, 7, KillPoint::kAfterPublish));  // consumed
  EXPECT_EQ(inj.kills(), 1U);
  EXPECT_EQ(inj.consulted(KillPoint::kAfterPublish), 4U);
}

TEST(FaultInjector, KillPointNamesRoundTrip) {
  for (const KillPoint point : all_kill_points()) {
    KillPoint parsed{};
    ASSERT_TRUE(parse_kill_point(kill_point_name(point), &parsed))
        << kill_point_name(point);
    EXPECT_EQ(parsed, point);
  }
  KillPoint parsed{};
  EXPECT_FALSE(parse_kill_point("not_a_kill_point", &parsed));
  EXPECT_FALSE(parse_kill_point(nullptr, &parsed));
}

TEST(HwBarrier, TracedFaultFreeRunPassesSpecCheck) {
  trace::TraceRecorder recorder(std::size_t{1} << 16);
  Options opt = quiet_options();
  opt.sink = &recorder;
  opt.num_phases = 4;  // exercise the cyclic wrap in the monitor
  const int n = 2;
  const int rounds = 10;
  TreeHwBarrier bar(n, opt);
  std::vector<std::thread> threads;
  for (int tid = 0; tid < n; ++tid) {
    threads.emplace_back([&, tid] {
      for (int r = 0; r < rounds; ++r) {
        ASSERT_EQ(bar.arrive_and_wait(tid).status, ArriveStatus::kReleased);
      }
      bar.retire(tid);  // closes the trace stream cleanly
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(recorder.dropped(), 0U);
  const auto check =
      trace::check_trace(recorder.snapshot(), n, opt.num_phases);
  EXPECT_TRUE(check.ok) << (check.violations.empty()
                                ? "no violations"
                                : check.violations.front());
  EXPECT_EQ(check.successful_phases, static_cast<std::size_t>(rounds));
  EXPECT_EQ(check.failed_instances, 0U);
}

}  // namespace
}  // namespace ftbar::hwbar
