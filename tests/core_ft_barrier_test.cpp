#include "core/ft_barrier.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ftbar::core {
namespace {

using TicketLog = std::vector<PhaseTicket>;

bool operator_eq(const PhaseTicket& a, const PhaseTicket& b) {
  return a.phase == b.phase && a.repeated == b.repeated;
}

/// Runs `num_threads` workers; each asks `fail_here(tid, arrive_index)`
/// whether to report a lost phase, and stops after `goal` successfully
/// completed (non-repeated) phases. Returns per-thread ticket logs.
std::vector<TicketLog> run_workers(
    FaultTolerantBarrier& bar, int num_threads, int goal,
    const std::function<bool(int, int)>& fail_here) {
  std::vector<TicketLog> logs(static_cast<std::size_t>(num_threads));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_threads));
  for (int tid = 0; tid < num_threads; ++tid) {
    threads.emplace_back([&, tid] {
      int completed = 0;
      int arrives = 0;
      while (completed < goal) {
        const bool ok = !fail_here(tid, arrives);
        const auto t = bar.arrive_and_wait(tid, ok);
        logs[static_cast<std::size_t>(tid)].push_back(t);
        ++arrives;
        if (!t.repeated) ++completed;
      }
      bar.finalize(tid);
    });
  }
  for (auto& th : threads) th.join();
  return logs;
}

void expect_identical_logs(const std::vector<TicketLog>& logs) {
  for (std::size_t t = 1; t < logs.size(); ++t) {
    ASSERT_EQ(logs[t].size(), logs[0].size()) << "thread " << t;
    for (std::size_t i = 0; i < logs[0].size(); ++i) {
      EXPECT_TRUE(operator_eq(logs[t][i], logs[0][i]))
          << "thread " << t << " ticket " << i << ": (" << logs[t][i].phase
          << "," << logs[t][i].repeated << ") vs (" << logs[0][i].phase << ","
          << logs[0][i].repeated << ")";
    }
  }
}

/// The guarantee that holds even under faults: every thread commits the
/// same phases in the same order. (Repeat tickets may differ per thread: a
/// thread that never started a doomed instance has nothing to redo.)
void expect_identical_commits(const std::vector<TicketLog>& logs) {
  auto committed = [](const TicketLog& log) {
    std::vector<int> out;
    for (const auto& t : log) {
      if (!t.repeated) out.push_back(t.phase);
    }
    return out;
  };
  const auto reference = committed(logs[0]);
  for (std::size_t t = 1; t < logs.size(); ++t) {
    EXPECT_EQ(committed(logs[t]), reference) << "thread " << t;
  }
}

int total_repeats(const std::vector<TicketLog>& logs) {
  int repeats = 0;
  for (const auto& log : logs) {
    for (const auto& t : log) repeats += t.repeated;
  }
  return repeats;
}

TEST(FtBarrier, FaultFreePhasesAdvanceInLockstep) {
  constexpr int kThreads = 4;
  FaultTolerantBarrier bar(kThreads);
  const auto logs = run_workers(bar, kThreads, 6,
                                [](int, int) { return false; });
  expect_identical_logs(logs);
  ASSERT_EQ(logs[0].size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(logs[0][static_cast<std::size_t>(i)].phase, (i + 1) % 64);
    EXPECT_FALSE(logs[0][static_cast<std::size_t>(i)].repeated);
  }
}

TEST(FtBarrier, TwoThreadsMinimalRing) {
  FaultTolerantBarrier bar(2);
  const auto logs = run_workers(bar, 2, 4, [](int, int) { return false; });
  expect_identical_logs(logs);
  EXPECT_EQ(logs[0].size(), 4u);
}

TEST(FtBarrier, SingleFailureRepeatsThePhaseForEveryone) {
  constexpr int kThreads = 3;
  FaultTolerantBarrier bar(kThreads);
  // Thread 1 loses its state during its second phase (arrive index 1).
  const auto logs = run_workers(bar, kThreads, 4, [](int tid, int arrive) {
    return tid == 1 && arrive == 1;
  });
  expect_identical_commits(logs);
  // The faulting thread itself always re-executes the phase it lost; peers
  // that had already started that instance do too (at most once each).
  int t1_repeats = 0;
  for (const auto& t : logs[1]) t1_repeats += t.repeated;
  EXPECT_EQ(t1_repeats, 1);
  for (const auto& log : logs) {
    int repeats = 0;
    for (std::size_t i = 1; i < log.size(); ++i) {
      if (log[i].repeated) {
        ++repeats;
        // The repeat re-releases the phase that was in flight.
        EXPECT_EQ(log[i].phase, log[i - 1].phase);
      }
    }
    EXPECT_LE(repeats, 1);
  }
}

TEST(FtBarrier, RootFailureAlsoRepeats) {
  constexpr int kThreads = 3;
  FaultTolerantBarrier bar(kThreads);
  const auto logs = run_workers(bar, kThreads, 3, [](int tid, int arrive) {
    return tid == 0 && arrive == 0;
  });
  expect_identical_commits(logs);
  EXPECT_GE(total_repeats(logs), 1);
}

TEST(FtBarrier, MultipleFailuresAreAllMasked) {
  constexpr int kThreads = 4;
  FaultTolerantBarrier bar(kThreads);
  const auto logs = run_workers(bar, kThreads, 5, [](int tid, int arrive) {
    return (tid == 2 && arrive == 0) || (tid == 3 && arrive == 2) ||
           (tid == 1 && arrive == 4);
  });
  expect_identical_commits(logs);
  int completed = 0;
  for (const auto& t : logs[0]) completed += !t.repeated;
  EXPECT_EQ(completed, 5);
  EXPECT_GE(total_repeats(logs), 3) << "each faulting thread re-executes";
}

TEST(FtBarrier, MaskingSurvivesMessageLoss) {
  constexpr int kThreads = 3;
  BarrierOptions opt;
  opt.link_faults.drop = 0.10;
  FaultTolerantBarrier bar(kThreads, opt);
  const auto logs = run_workers(bar, kThreads, 5, [](int, int) { return false; });
  expect_identical_commits(logs);
  EXPECT_EQ(total_repeats(logs), 0) << "pure channel faults never repeat a phase";
  EXPECT_GT(bar.network_stats().dropped, 0u) << "loss injection did not engage";
}

TEST(FtBarrier, MaskingSurvivesDuplicationAndReorder) {
  constexpr int kThreads = 3;
  BarrierOptions opt;
  opt.link_faults.duplicate = 0.15;
  opt.link_faults.reorder = 0.15;
  FaultTolerantBarrier bar(kThreads, opt);
  const auto logs = run_workers(bar, kThreads, 5, [](int, int) { return false; });
  expect_identical_commits(logs);
  EXPECT_EQ(total_repeats(logs), 0);
  const auto stats = bar.network_stats();
  EXPECT_GT(stats.duplicated + stats.reordered, 0u);
}

TEST(FtBarrier, MaskingSurvivesDetectableCorruption) {
  constexpr int kThreads = 3;
  BarrierOptions opt;
  opt.link_faults.corrupt = 0.10;
  FaultTolerantBarrier bar(kThreads, opt);
  const auto logs = run_workers(bar, kThreads, 4, [](int, int) { return false; });
  expect_identical_commits(logs);
  EXPECT_EQ(total_repeats(logs), 0);
  EXPECT_GT(bar.network_stats().corrupted, 0u);
}

TEST(FtBarrier, CombinedCommunicationAndProcessFaults) {
  constexpr int kThreads = 4;
  BarrierOptions opt;
  opt.link_faults = runtime::LinkFaults{.drop = 0.05, .duplicate = 0.05,
                                        .corrupt = 0.05, .reorder = 0.05};
  opt.seed = 99;
  FaultTolerantBarrier bar(kThreads, opt);
  const auto logs = run_workers(bar, kThreads, 6, [](int tid, int arrive) {
    return tid == 1 && arrive == 2;
  });
  expect_identical_commits(logs);
  int completed = 0;
  for (const auto& t : logs[0]) completed += !t.repeated;
  EXPECT_EQ(completed, 6);
}

TEST(FtBarrier, PhaseCounterWrapsModulo) {
  constexpr int kThreads = 2;
  BarrierOptions opt;
  opt.num_phases = 3;
  FaultTolerantBarrier bar(kThreads, opt);
  const auto logs = run_workers(bar, kThreads, 7, [](int, int) { return false; });
  expect_identical_logs(logs);
  for (std::size_t i = 0; i < logs[0].size(); ++i) {
    EXPECT_EQ(logs[0][i].phase, static_cast<int>((i + 1) % 3));
  }
}

// Pumps a hand-driven 2-participant ring until both engines release a
// ticket, returning the FIRST ticket each produced (as the real barrier
// would consume them).
std::pair<PhaseTicket, PhaseTicket> pump_first_tickets(MbEngine& a, MbEngine& b) {
  std::optional<PhaseTicket> ta, tb;
  for (int i = 0; i < 64 && (!ta || !tb); ++i) {
    a.step();
    if (!ta) ta = a.take_ticket();
    b.on_neighbor_state(0, a.wire_state());
    b.step();
    if (!tb) tb = b.take_ticket();
    a.on_neighbor_state(1, b.wire_state());
  }
  EXPECT_TRUE(ta.has_value());
  EXPECT_TRUE(tb.has_value());
  return {ta.value_or(PhaseTicket{}), tb.value_or(PhaseTicket{})};
}

TEST(MbEngineUnit, RootReleasesPhasesAgainstLoopedCopies) {
  // Drive a 2-participant ring entirely by hand, no threads involved.
  MbEngine a(0, 2, 8);
  MbEngine b(1, 2, 8);
  const auto [ta, tb] = pump_first_tickets(a, b);
  EXPECT_EQ(ta.phase, 1);
  EXPECT_EQ(tb.phase, 1);
  EXPECT_FALSE(ta.repeated);
  EXPECT_FALSE(tb.repeated);
}

TEST(MbEngineUnit, DetectableFaultForcesRepeat) {
  MbEngine a(0, 2, 8);
  MbEngine b(1, 2, 8);
  b.inject_detectable_fault();
  const auto [ta, tb] = pump_first_tickets(a, b);
  EXPECT_TRUE(ta.repeated) << "phase 0 must be re-executed after the fault";
  EXPECT_EQ(ta.phase, 0);
  EXPECT_EQ(tb.phase, 0);
}

}  // namespace
}  // namespace ftbar::core
