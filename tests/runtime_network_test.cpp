#include "runtime/network.hpp"

#include <gtest/gtest.h>

namespace ftbar::runtime {
namespace {

using namespace std::chrono_literals;

struct Payload {
  int a = 0;
  double b = 0.0;
};

TEST(Network, DeliversInOrderWithoutFaults) {
  Network net(2, 1);
  for (int i = 0; i < 5; ++i) net.send_value(0, 1, 7, i);
  for (int i = 0; i < 5; ++i) {
    const auto m = net.recv(1, 100ms);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->src, 0);
    EXPECT_EQ(m->tag, 7);
    EXPECT_EQ(m->link_seq, static_cast<std::uint64_t>(i));
    EXPECT_EQ(Network::decode<int>(*m), i);
  }
  EXPECT_EQ(net.try_recv(1), std::nullopt);
}

TEST(Network, DecodeRoundTripsStructs) {
  Network net(2, 2);
  net.send_value(0, 1, 0, Payload{42, 2.5});
  const auto m = net.recv(1, 100ms);
  ASSERT_TRUE(m.has_value());
  const auto p = Network::decode<Payload>(*m);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->a, 42);
  EXPECT_DOUBLE_EQ(p->b, 2.5);
}

TEST(Network, DecodeRejectsSizeMismatch) {
  Network net(2, 3);
  net.send_value(0, 1, 0, 7);
  const auto m = net.recv(1, 100ms);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(Network::decode<double>(*m), std::nullopt);
}

TEST(Network, DropLosesMessages) {
  Network net(2, 4);
  net.set_link_faults(0, 1, LinkFaults{.drop = 1.0});
  for (int i = 0; i < 10; ++i) net.send_value(0, 1, 0, i);
  EXPECT_EQ(net.try_recv(1), std::nullopt);
  EXPECT_EQ(net.stats().dropped, 10u);
  EXPECT_EQ(net.stats().delivered, 0u);
}

TEST(Network, DuplicateDeliversTwice) {
  Network net(2, 5);
  net.set_link_faults(0, 1, LinkFaults{.duplicate = 1.0});
  net.send_value(0, 1, 0, 9);
  const auto a = net.recv(1, 100ms);
  const auto b = net.recv(1, 100ms);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->link_seq, b->link_seq);
  EXPECT_EQ(Network::decode<int>(*a), 9);
  EXPECT_EQ(Network::decode<int>(*b), 9);
  EXPECT_EQ(net.stats().duplicated, 1u);
}

TEST(Network, CorruptionIsDetectable) {
  Network net(2, 6);
  net.set_link_faults(0, 1, LinkFaults{.corrupt = 1.0});
  net.send_value(0, 1, 0, 1234);
  const auto m = net.recv(1, 100ms);
  ASSERT_TRUE(m.has_value());
  EXPECT_FALSE(Network::verify(*m));
  EXPECT_EQ(Network::decode<int>(*m), std::nullopt);
  EXPECT_EQ(net.stats().corrupted, 1u);
}

TEST(Network, ReorderSwapsAdjacentMessages) {
  Network net(2, 7);
  net.set_link_faults(0, 1, LinkFaults{.reorder = 1.0});
  // First message is held; the second's arrival releases it after itself.
  net.send_value(0, 1, 0, 100);
  // The second message is also a reorder candidate, but a held slot exists,
  // so it is delivered first, followed by the held one.
  net.send_value(0, 1, 0, 200);
  const auto a = net.recv(1, 100ms);
  const auto b = net.recv(1, 100ms);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(Network::decode<int>(*a), 200);
  EXPECT_EQ(Network::decode<int>(*b), 100);
  EXPECT_GT(a->link_seq, b->link_seq);  // stale-filterable
}

TEST(Network, SeparateLinksDoNotInterfere) {
  Network net(3, 8);
  net.set_link_faults(0, 1, LinkFaults{.drop = 1.0});
  net.send_value(0, 1, 0, 1);
  net.send_value(0, 2, 0, 2);
  net.send_value(2, 1, 0, 3);
  EXPECT_EQ(net.try_recv(1)->src, 2);
  EXPECT_EQ(Network::decode<int>(*net.recv(2, 100ms)), 2);
}

TEST(Network, LinkSequencesAreIndependent) {
  Network net(3, 9);
  net.send_value(0, 1, 0, 1);
  net.send_value(0, 1, 0, 2);
  net.send_value(2, 1, 0, 3);
  auto a = net.recv(1, 100ms);
  auto b = net.recv(1, 100ms);
  auto c = net.recv(1, 100ms);
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(a->link_seq, 0u);
  EXPECT_EQ(b->link_seq, 1u);
  EXPECT_EQ(c->link_seq, 0u);  // different link starts fresh
}

TEST(Network, FullInboxCountsAsLoss) {
  Network net(2, 10, /*inbox_capacity=*/2);
  for (int i = 0; i < 5; ++i) net.send_value(0, 1, 0, i);
  EXPECT_EQ(net.stats().delivered, 2u);
  EXPECT_EQ(net.stats().dropped, 3u);
}

TEST(Network, ShutdownUnblocksReceivers) {
  Network net(2, 11);
  net.shutdown();
  EXPECT_EQ(net.recv(1, 1000ms), std::nullopt);
}

TEST(Network, StatisticalLossRate) {
  // Inbox large enough that buffer exhaustion never adds to the drop count.
  Network net(2, 12, /*inbox_capacity=*/30'000);
  net.set_default_faults(LinkFaults{.drop = 0.3});
  constexpr int kSends = 20'000;
  for (int i = 0; i < kSends; ++i) net.send_value(0, 1, 0, i);
  const auto s = net.stats();
  EXPECT_NEAR(static_cast<double>(s.dropped) / kSends, 0.3, 0.02);
}

TEST(Fnv1a, KnownBehaviour) {
  const std::vector<std::byte> empty;
  const std::vector<std::byte> one{std::byte{0x61}};
  EXPECT_NE(fnv1a({empty.data(), empty.size()}), fnv1a({one.data(), one.size()}));
  EXPECT_EQ(fnv1a({one.data(), one.size()}), fnv1a({one.data(), one.size()}));
}

}  // namespace
}  // namespace ftbar::runtime
