// Tests for the extended collective set: reduce (all ops), gather, scatter,
// allgather — correctness across rank counts, epoch filtering under
// duplication, and timeout on a missing rank.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "mpi/collectives.hpp"

namespace ftbar::mpi {
namespace {

std::shared_ptr<runtime::Network> make_net(int ranks, std::uint64_t seed = 5) {
  return std::make_shared<runtime::Network>(ranks, seed);
}

/// Runs `body(comm, rank)` on every rank concurrently.
template <class Body>
void run_ranks(const std::shared_ptr<runtime::Network>& net, Body&& body) {
  std::vector<std::thread> threads;
  for (int r = 0; r < net->size(); ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(net, r);
      body(comm, r);
    });
  }
  for (auto& t : threads) t.join();
}

class ReduceOpsSweep : public ::testing::TestWithParam<int> {};

TEST_P(ReduceOpsSweep, AllOpsAllRanks) {
  const int n = GetParam();
  auto net = make_net(n);
  std::vector<std::array<double, 4>> results(static_cast<std::size_t>(n));
  run_ranks(net, [&](Communicator& comm, int r) {
    const double mine = static_cast<double>(r + 1);
    double v = mine;
    ASSERT_EQ(allreduce(comm, v, ReduceOp::kSum, 1), Err::kSuccess);
    results[static_cast<std::size_t>(r)][0] = v;
    v = mine;
    ASSERT_EQ(allreduce(comm, v, ReduceOp::kMin, 2), Err::kSuccess);
    results[static_cast<std::size_t>(r)][1] = v;
    v = mine;
    ASSERT_EQ(allreduce(comm, v, ReduceOp::kMax, 3), Err::kSuccess);
    results[static_cast<std::size_t>(r)][2] = v;
    v = mine;
    ASSERT_EQ(allreduce(comm, v, ReduceOp::kProd, 4), Err::kSuccess);
    results[static_cast<std::size_t>(r)][3] = v;
  });
  double sum = 0, prod = 1;
  for (int r = 1; r <= n; ++r) {
    sum += r;
    prod *= r;
  }
  for (int r = 0; r < n; ++r) {
    EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(r)][0], sum);
    EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(r)][1], 1.0);
    EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(r)][2], n);
    EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(r)][3], prod);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, ReduceOpsSweep, ::testing::Values(1, 2, 3, 5, 8));

TEST(Reduce, ResultOnlyAtRoot) {
  const int n = 4;
  auto net = make_net(n);
  std::vector<double> results(static_cast<std::size_t>(n), -1.0);
  run_ranks(net, [&](Communicator& comm, int r) {
    double v = static_cast<double>(r + 1);
    ASSERT_EQ(reduce(comm, v, ReduceOp::kSum, 1), Err::kSuccess);
    results[static_cast<std::size_t>(r)] = v;
  });
  EXPECT_DOUBLE_EQ(results[0], 10.0);
  // Non-root ranks keep their own value (MPI semantics: result undefined,
  // here: untouched beyond the local contribution).
  for (int r = 1; r < n; ++r) {
    EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(r)], r + 1.0);
  }
}

class GatherScatterSweep : public ::testing::TestWithParam<int> {};

TEST_P(GatherScatterSweep, GatherCollectsByRank) {
  const int n = GetParam();
  auto net = make_net(n);
  std::vector<double> at_root;
  run_ranks(net, [&](Communicator& comm, int r) {
    std::vector<double> out;
    ASSERT_EQ(gather(comm, 10.0 * r + 1, out, 1), Err::kSuccess);
    if (r == 0) at_root = out;
  });
  ASSERT_EQ(at_root.size(), static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    EXPECT_DOUBLE_EQ(at_root[static_cast<std::size_t>(r)], 10.0 * r + 1);
  }
}

TEST_P(GatherScatterSweep, ScatterDistributesByRank) {
  const int n = GetParam();
  auto net = make_net(n);
  std::vector<double> got(static_cast<std::size_t>(n), -1.0);
  run_ranks(net, [&](Communicator& comm, int r) {
    std::vector<double> in;
    if (r == 0) {
      for (int i = 0; i < n; ++i) in.push_back(100.0 + i);
    }
    double out = -1.0;
    ASSERT_EQ(scatter(comm, in, out, 1), Err::kSuccess);
    got[static_cast<std::size_t>(r)] = out;
  });
  for (int r = 0; r < n; ++r) {
    EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(r)], 100.0 + r);
  }
}

TEST_P(GatherScatterSweep, AllgatherGivesEveryoneEverything) {
  const int n = GetParam();
  auto net = make_net(n);
  std::vector<std::vector<double>> got(static_cast<std::size_t>(n));
  run_ranks(net, [&](Communicator& comm, int r) {
    std::vector<double> out;
    ASSERT_EQ(allgather(comm, static_cast<double>(r * r), out, 1), Err::kSuccess);
    got[static_cast<std::size_t>(r)] = out;
  });
  for (int r = 0; r < n; ++r) {
    ASSERT_EQ(got[static_cast<std::size_t>(r)].size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)],
                       static_cast<double>(i * i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, GatherScatterSweep, ::testing::Values(1, 2, 3, 5, 8));

TEST(CollectivesExt, RepeatedRoundsWithMonotoneEpochs) {
  const int n = 4;
  auto net = make_net(n);
  std::atomic<int> failures{0};
  run_ranks(net, [&](Communicator& comm, int r) {
    std::uint64_t epoch = 1;
    for (int round = 0; round < 5; ++round) {
      double v = static_cast<double>(r);
      if (allreduce(comm, v, ReduceOp::kSum, epoch++) != Err::kSuccess) ++failures;
      std::vector<double> out;
      if (allgather(comm, v, out, epoch) != Err::kSuccess) ++failures;
      epoch += static_cast<std::uint64_t>(n) + 1;  // allgather's epoch range
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(CollectivesExt, SurvivesDuplicationFaults) {
  const int n = 5;
  auto net = make_net(n, 77);
  net->set_default_faults(runtime::LinkFaults{.duplicate = 0.5});
  std::atomic<int> failures{0};
  std::vector<double> sums(static_cast<std::size_t>(n), 0.0);
  run_ranks(net, [&](Communicator& comm, int r) {
    std::uint64_t epoch = 1;
    for (int round = 0; round < 4; ++round) {
      double v = 1.0;
      if (allreduce(comm, v, ReduceOp::kSum, epoch++) != Err::kSuccess) {
        ++failures;
      } else if (v != n) {
        ++failures;  // a duplicate was double-counted
      }
    }
    sums[static_cast<std::size_t>(r)] = 1.0;
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(CollectivesExt, GatherTimesOutOnMissingRank) {
  auto net = make_net(3);
  Communicator comm0(net, 0);
  std::thread r1([&] {
    Communicator comm(net, 1);
    std::vector<double> out;
    // Rank 1 is a leaf in the 3-rank tree: its send succeeds but it never
    // observes rank 2's absence; only the root does.
    (void)gather(comm, 1.0, out, 1, CollectiveOptions{std::chrono::milliseconds(60)});
  });
  std::vector<double> out;
  EXPECT_EQ(gather(comm0, 0.0, out, 1, CollectiveOptions{std::chrono::milliseconds(60)}),
            Err::kTimeout);
  r1.join();
}

}  // namespace
}  // namespace ftbar::mpi
