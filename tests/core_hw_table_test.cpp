#include "core/hw_table.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ftbar::core::hw {
namespace {

TEST(HwTable, FollowerTableEquivalentToStatementExhaustively) {
  const PhaseRing ring(4);
  for (int self_cp = 0; self_cp < kCpCount; ++self_cp) {
    for (int prev_cp = 0; prev_cp < kCpCount; ++prev_cp) {
      for (int self_ph = 0; self_ph < 4; ++self_ph) {
        for (int prev_ph = 0; prev_ph < 4; ++prev_ph) {
          const CpPh self{static_cast<Cp>(self_cp), self_ph};
          const CpPh prev{static_cast<Cp>(prev_cp), prev_ph};
          const auto reference = rb_follower_update(self, prev, ring);
          const auto table = follower_update(self, prev, ring);
          EXPECT_EQ(table.next.cp, reference.next.cp)
              << "self=" << self_cp << " prev=" << prev_cp;
          EXPECT_EQ(table.next.ph, reference.next.ph)
              << "self=" << self_cp << " prev=" << prev_cp;
          EXPECT_EQ(static_cast<int>(table.event), static_cast<int>(reference.event))
              << "self=" << self_cp << " prev=" << prev_cp;
        }
      }
    }
  }
}

TEST(HwTable, RootTableEquivalentToStatementExhaustively) {
  const PhaseRing ring(4);
  // Enumerate all leaf configurations over one and two leaves with every
  // cp/ph combination, reduce them to the two alignment booleans, and
  // compare against the executable statement.
  for (int self_cp = 0; self_cp < 4; ++self_cp) {  // root cp excludes repeat
    for (int self_ph = 0; self_ph < 4; ++self_ph) {
      for (int l1_cp = 0; l1_cp < kCpCount; ++l1_cp) {
        for (int l1_ph = 0; l1_ph < 4; ++l1_ph) {
          for (int l2_cp = 0; l2_cp < kCpCount; ++l2_cp) {
            for (int l2_ph = 0; l2_ph < 4; ++l2_ph) {
              const CpPh self{static_cast<Cp>(self_cp), self_ph};
              const std::vector<CpPh> leaves{
                  CpPh{static_cast<Cp>(l1_cp), l1_ph},
                  CpPh{static_cast<Cp>(l2_cp), l2_ph}};
              bool ready = true, success = true;
              for (const auto& l : leaves) {
                ready &= l.cp == Cp::kReady && l.ph == self.ph;
                success &= l.cp == Cp::kSuccess && l.ph == self.ph;
              }
              const auto reference = rb_root_update(self, leaves, ring);
              const auto table =
                  root_update(self, ready, success, leaves.front().ph, ring);
              ASSERT_EQ(table.next.cp, reference.next.cp)
                  << "self=" << self_cp << " leaves=" << l1_cp << "," << l2_cp;
              ASSERT_EQ(table.next.ph, reference.next.ph)
                  << "self=" << self_cp << " ph=" << self_ph << " leaves=" << l1_cp
                  << "@" << l1_ph << "," << l2_cp << "@" << l2_ph;
              ASSERT_EQ(static_cast<int>(table.event),
                        static_cast<int>(reference.event));
            }
          }
        }
      }
    }
  }
}

TEST(HwTable, TablesAreConstexpr) {
  static_assert(kFollowerTable[0][1].next_cp() == Cp::kExecute);  // ready<-execute
  static_assert(kFollowerTable[0][1].event() == RbEvent::kStart);
  static_assert(kRootTable[0][1][0].next_cp() == Cp::kExecute);   // ready, aligned
  static_assert(kRootTable[1][0][0].next_cp() == Cp::kSuccess);   // execute
  SUCCEED();
}

TEST(HwTable, StateBitsAreLogarithmic) {
  static_assert(bits_for(1) == 0);
  static_assert(bits_for(2) == 1);
  static_assert(bits_for(5) == 3);
  static_assert(bits_for(6) == 3);
  // sn: ceil log2(K+2), cp: 3, ph: ceil log2(n).
  EXPECT_EQ(state_bits(31, 4), 6 + 3 + 2);   // K=32 -> 34 values -> 6 bits
  EXPECT_EQ(state_bits(255, 2), 9 + 3 + 1);  // 258 values -> 9 bits
  // O(log N): doubling N adds at most one sn bit.
  for (int n = 4; n <= 1024; n *= 2) {
    EXPECT_LE(state_bits(2 * n, 4), state_bits(n, 4) + 1);
  }
}

TEST(HwTable, EntryLayoutIsSmall) {
  // One ROM word per entry: must stay trivially packable.
  static_assert(sizeof(Entry) <= 4);
  SUCCEED();
}

}  // namespace
}  // namespace ftbar::core::hw
