#include "ext/fail_safe.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace ftbar::ext {
namespace {

using namespace std::chrono_literals;

TEST(FailSafeBarrier, CompletesWhenEveryoneIsHealthy) {
  const int n = 3;
  FailSafeBarrier bar(n);
  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < n; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 5; ++round) {
        if (bar.arrive_and_wait(t) == FailSafeResult::kCompleted) ++completed;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(completed.load(), 15);
}

TEST(FailSafeBarrier, UncorrectableFaultPoisonsEveryone) {
  const int n = 3;
  FailSafeBarrier bar(n);
  std::vector<FailSafeResult> results(static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  for (int t = 0; t < n; ++t) {
    threads.emplace_back([&, t] {
      // Participant 1 reports an uncorrectable fault.
      results[static_cast<std::size_t>(t)] = bar.arrive_and_wait(t, t != 1, 500ms);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(results[1], FailSafeResult::kFatal);
  // The healthy participants must NOT report completion.
  for (int t : {0, 2}) {
    EXPECT_NE(results[static_cast<std::size_t>(t)], FailSafeResult::kCompleted)
        << "participant " << t << " reported an incorrect completion";
  }
}

TEST(FailSafeBarrier, PoisonIsSticky) {
  FailSafeBarrier bar(2);
  std::thread peer([&] {
    EXPECT_EQ(bar.arrive_and_wait(1, /*ok=*/false), FailSafeResult::kFatal);
    // Every later call fails immediately, even with ok=true.
    EXPECT_EQ(bar.arrive_and_wait(1, true), FailSafeResult::kFatal);
  });
  EXPECT_NE(bar.arrive_and_wait(0, true, 500ms), FailSafeResult::kCompleted);
  EXPECT_TRUE(bar.poisoned(1) || bar.poisoned(0));
  peer.join();
}

TEST(FailSafeBarrier, StalledPeerCausesSafeTimeoutNotFalseCompletion) {
  FailSafeBarrier bar(2);
  // Participant 1 never arrives: participant 0 stalls out safely.
  EXPECT_EQ(bar.arrive_and_wait(0, true, 60ms), FailSafeResult::kTimeout);
  EXPECT_FALSE(bar.poisoned(0));
}

TEST(FailSafeBarrier, SafetyNeverReportsCompletionIncorrectly) {
  // Across many episodes with a random failure, count completion reports:
  // whenever any participant reports kCompleted for an episode, every
  // participant must in fact have arrived in that episode.
  const int n = 4;
  FailSafeBarrier bar(n);
  std::atomic<int> completions{0};
  std::atomic<int> fatals{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < n; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 6; ++round) {
        const bool ok = !(t == 2 && round == 3);
        const auto r = bar.arrive_and_wait(t, ok, 500ms);
        if (r == FailSafeResult::kCompleted) ++completions;
        if (r == FailSafeResult::kFatal) {
          ++fatals;
          return;  // uncorrectable: this participant is done for good
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Safety: the poisoned round (and everything after it) must never count
  // as complete anywhere — the faulty participant never arrives at round 3,
  // so at most 3 rounds * n participants can report completion. (A healthy
  // participant may fail closed even EARLIER if the poison overtakes a
  // straggler's arrival in its inbox: fewer completions are always safe.)
  EXPECT_LE(completions.load(), 3 * n);
  // The faulty participant completed its three clean rounds itself.
  EXPECT_GE(completions.load(), 3);
  EXPECT_GE(fatals.load(), 1);
}

}  // namespace
}  // namespace ftbar::ext
