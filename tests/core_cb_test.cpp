#include "core/cb.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/model_check.hpp"
#include "sim/step_engine.hpp"

namespace ftbar::core {
namespace {

struct CbHash {
  std::size_t operator()(const CbState& s) const {
    std::size_t h = 1469598103934665603ULL;
    for (const auto& p : s) {
      h ^= static_cast<std::size_t>(p.cp) * 31u + static_cast<std::size_t>(p.ph);
      h *= 1099511628211ULL;
    }
    return h;
  }
};

// ---------------------------------------------------------------------------
// Fault-free behaviour (Lemma 3.1)
// ---------------------------------------------------------------------------

struct CbRunParam {
  int num_procs;
  int num_phases;
  sim::Semantics semantics;
  std::uint64_t seed;
};

class CbFaultFree : public ::testing::TestWithParam<CbRunParam> {};

TEST_P(CbFaultFree, SatisfiesSpecification) {
  const auto param = GetParam();
  const CbOptions opt{param.num_procs, param.num_phases};
  SpecMonitor monitor(opt.num_procs, opt.num_phases);
  sim::StepEngine<CbProc> eng(cb_start_state(opt), make_cb_actions(opt, &monitor),
                              util::Rng(param.seed), param.semantics);
  // Run until at least three full cycles of phases complete.
  const auto target = static_cast<std::size_t>(3 * param.num_phases);
  const auto reached = eng.run_until(
      [&](const CbState&) { return monitor.successful_phases() >= target; },
      200'000);
  ASSERT_TRUE(reached.has_value()) << "Progress violated: only "
                                   << monitor.successful_phases() << " phases";
  EXPECT_TRUE(monitor.safety_ok()) << monitor.violations().front();
  EXPECT_EQ(monitor.failed_instances(), 0u);
  // In the absence of faults each phase executes exactly once (Section 2).
  EXPECT_EQ(monitor.total_instances(), monitor.successful_phases());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CbFaultFree,
    ::testing::Values(CbRunParam{2, 2, sim::Semantics::kInterleaving, 1},
                      CbRunParam{3, 2, sim::Semantics::kInterleaving, 2},
                      CbRunParam{5, 3, sim::Semantics::kInterleaving, 3},
                      CbRunParam{8, 4, sim::Semantics::kInterleaving, 4},
                      CbRunParam{2, 2, sim::Semantics::kMaxParallel, 5},
                      CbRunParam{4, 3, sim::Semantics::kMaxParallel, 6},
                      CbRunParam{16, 5, sim::Semantics::kMaxParallel, 7},
                      CbRunParam{32, 2, sim::Semantics::kMaxParallel, 8}));

// ---------------------------------------------------------------------------
// Masking tolerance to detectable faults (Lemma 3.2)
// ---------------------------------------------------------------------------

class CbDetectable : public ::testing::TestWithParam<CbRunParam> {};

TEST_P(CbDetectable, MasksDetectableFaults) {
  const auto param = GetParam();
  const CbOptions opt{param.num_procs, param.num_phases};
  SpecMonitor monitor(opt.num_procs, opt.num_phases);
  sim::StepEngine<CbProc> eng(cb_start_state(opt), make_cb_actions(opt, &monitor),
                              util::Rng(param.seed), param.semantics);
  util::Rng fault_rng(param.seed ^ 0xfau);
  const auto perturb = cb_detectable_fault(opt, &monitor);

  // Detectable faults preserve masking only while the current phase can be
  // recovered from SOME process (footnote 2: corrupting every process
  // detectably is classified undetectable). The injector therefore never
  // corrupts the last process holding valid phase knowledge (cp != error).
  const double f = 0.02;
  std::size_t steps = 0;
  while (monitor.successful_phases() < static_cast<std::size_t>(4 * param.num_phases) &&
         steps < 400'000) {
    auto& state = eng.mutable_state();
    for (std::size_t j = 0; j < state.size(); ++j) {
      if (!fault_rng.bernoulli(f)) continue;
      int intact = 0;
      for (std::size_t k = 0; k < state.size(); ++k) {
        if (k != j && state[k].cp != Cp::kError) ++intact;
      }
      if (intact > 0) perturb(j, state[j], fault_rng);
    }
    eng.step();
    ++steps;
  }
  EXPECT_TRUE(monitor.safety_ok()) << monitor.violations().front();
  EXPECT_GE(monitor.successful_phases(), static_cast<std::size_t>(4 * param.num_phases))
      << "Progress violated under detectable faults";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CbDetectable,
    ::testing::Values(CbRunParam{2, 2, sim::Semantics::kInterleaving, 11},
                      CbRunParam{3, 3, sim::Semantics::kInterleaving, 12},
                      CbRunParam{5, 2, sim::Semantics::kInterleaving, 13},
                      CbRunParam{4, 4, sim::Semantics::kInterleaving, 14},
                      CbRunParam{8, 2, sim::Semantics::kInterleaving, 15}));

TEST(CbDetectableFaults, FaultsCauseReExecutionNotSkipping) {
  const CbOptions opt{4, 2};
  SpecMonitor monitor(opt.num_procs, opt.num_phases);
  sim::StepEngine<CbProc> eng(cb_start_state(opt), make_cb_actions(opt, &monitor),
                              util::Rng(21));
  util::Rng fault_rng(22);
  const auto perturb = cb_detectable_fault(opt, &monitor);
  // Corrupt one process mid-run a few times; instances must be retried.
  std::size_t injected = 0;
  std::size_t steps = 0;
  while (monitor.successful_phases() < 20 && steps < 200'000) {
    if (steps % 97 == 42 && injected < 8) {
      auto& state = eng.mutable_state();
      // Corrupt a process that is not the only intact one.
      for (std::size_t j = 0; j < state.size(); ++j) {
        if (state[j].cp == Cp::kExecute) {
          perturb(j, state[j], fault_rng);
          ++injected;
          break;
        }
      }
    }
    eng.step();
    ++steps;
  }
  EXPECT_TRUE(monitor.safety_ok()) << monitor.violations().front();
  EXPECT_GE(monitor.successful_phases(), 20u);
  EXPECT_GT(injected, 0u);
  // Every injected fault hit an executing process, so the instance it was
  // part of cannot have completed successfully.
  EXPECT_GE(monitor.total_instances(), monitor.successful_phases());
}

// ---------------------------------------------------------------------------
// Exhaustive model checking (Lemmas 3.1-3.3 on small instances)
// ---------------------------------------------------------------------------

std::vector<CbState> all_states(const CbOptions& opt) {
  std::vector<CbState> out;
  const int domain = 4 * opt.num_phases;  // cp in 4 values x ph in n values
  const auto total = static_cast<std::size_t>(
      std::pow(static_cast<double>(domain), opt.num_procs) + 0.5);
  for (std::size_t code = 0; code < total; ++code) {
    CbState s(static_cast<std::size_t>(opt.num_procs));
    std::size_t rest = code;
    for (auto& p : s) {
      const auto d = rest % static_cast<std::size_t>(domain);
      rest /= static_cast<std::size_t>(domain);
      p.cp = static_cast<Cp>(d % 4);
      p.ph = static_cast<int>(d / 4);
    }
    out.push_back(std::move(s));
  }
  return out;
}

TEST(CbModelCheck, FaultFreeReachableSetEqualsLegitimatePredicate) {
  const CbOptions opt{3, 3};
  sim::Explorer<CbProc, CbHash> ex(make_cb_actions(opt), CbHash{});
  const auto result =
      ex.explore({cb_start_state(opt)}, [](const CbState&) { return true; });
  ASSERT_FALSE(result.truncated);
  std::set<CbState> reachable(ex.states().begin(), ex.states().end());
  // Every reachable state is legitimate.
  for (const auto& s : reachable) {
    EXPECT_TRUE(cb_legitimate(s, opt.num_phases))
        << "reachable state not covered by the closed-form legitimate set";
  }
  // Every legitimate state is reachable (the closed form is tight).
  for (const auto& s : all_states(opt)) {
    if (cb_legitimate(s, opt.num_phases)) {
      EXPECT_TRUE(reachable.contains(s))
          << "legitimate state not reachable from the start state";
    }
  }
}

TEST(CbModelCheck, LegitimateSetIsClosed) {
  const CbOptions opt{3, 2};
  const auto actions = make_cb_actions(opt);
  for (const auto& s : all_states(opt)) {
    if (!cb_legitimate(s, opt.num_phases)) continue;
    for (const auto& a : actions) {
      if (!a.enabled(s)) continue;
      CbState next = s;
      a.apply(next);
      EXPECT_TRUE(cb_legitimate(next, opt.num_phases))
          << "legitimate set not closed under action " << a.name;
    }
  }
}

TEST(CbModelCheck, StabilizesFromEveryState) {
  // Lemma 3.3: from an arbitrary state, a legitimate state is reachable.
  const CbOptions opt{3, 2};
  sim::Explorer<CbProc, CbHash> ex(make_cb_actions(opt), CbHash{});
  const auto result = ex.explore(all_states(opt), [](const CbState&) { return true; });
  ASSERT_FALSE(result.truncated);
  EXPECT_TRUE(ex.legit_reachable_from_all(
      [&](const CbState& s) { return cb_legitimate(s, opt.num_phases); }));
}

TEST(CbModelCheck, NoDeadlockInAnyReachableState) {
  const CbOptions opt{3, 2};
  const auto actions = make_cb_actions(opt);
  for (const auto& s : all_states(opt)) {
    bool any_enabled = false;
    for (const auto& a : actions) {
      if (a.enabled(s)) {
        any_enabled = true;
        break;
      }
    }
    EXPECT_TRUE(any_enabled) << "deadlocked state exists";
  }
}

// ---------------------------------------------------------------------------
// Stabilizing tolerance to undetectable faults (Lemmas 3.3-3.4, randomized)
// ---------------------------------------------------------------------------

class CbStabilization : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CbStabilization, RecoversFromArbitraryStateAndResatisfiesSpec) {
  const CbOptions opt{5, 4};
  SpecMonitor monitor(opt.num_procs, opt.num_phases);
  sim::StepEngine<CbProc> eng(cb_start_state(opt), make_cb_actions(opt, &monitor),
                              util::Rng(GetParam()), sim::Semantics::kInterleaving);
  util::Rng fault_rng(GetParam() ^ 0xdeadULL);
  const auto perturb = cb_undetectable_fault(opt, &monitor);

  // Corrupt every process to an arbitrary state.
  monitor.on_undetectable_fault();
  for (std::size_t j = 0; j < eng.mutable_state().size(); ++j) {
    perturb(j, eng.mutable_state()[j], fault_rng);
  }

  // Convergence: a start state (all ready, same phase) is reached.
  const auto recovered =
      eng.run_until([](const CbState& s) { return cb_is_start_state(s); }, 100'000);
  ASSERT_TRUE(recovered.has_value()) << "did not stabilize";

  // From there, the specification is (re)satisfied.
  monitor.resync(eng.state().front().ph);
  const auto ok = eng.run_until(
      [&](const CbState&) { return monitor.successful_phases() >= 8; }, 200'000);
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(monitor.safety_ok()) << monitor.violations().front();
}

TEST_P(CbStabilization, IncorrectPhasesBoundedByM) {
  // Lemma 3.4: perturbed into m distinct phases -> at most m phases execute
  // incorrectly. Concretely: every instance started before the system is
  // legitimate again lies in one of the m perturbed phases.
  const CbOptions opt{4, 6};
  sim::StepEngine<CbProc> eng(cb_start_state(opt), make_cb_actions(opt),
                              util::Rng(GetParam() * 31 + 7),
                              sim::Semantics::kInterleaving);
  util::Rng fault_rng(GetParam() * 17 + 3);
  const auto perturb = cb_undetectable_fault(opt, nullptr);
  for (std::size_t j = 0; j < eng.mutable_state().size(); ++j) {
    perturb(j, eng.mutable_state()[j], fault_rng);
  }

  std::set<int> perturbed_phases;
  for (const auto& p : eng.state()) perturbed_phases.insert(p.ph);

  std::set<int> started_before_legit;
  std::size_t steps = 0;
  while (!cb_legitimate(eng.state(), opt.num_phases) && steps < 100'000) {
    const CbState before = eng.state();
    eng.step();
    const CbState& after = eng.state();
    for (std::size_t j = 0; j < before.size(); ++j) {
      if (before[j].cp == Cp::kReady && after[j].cp == Cp::kExecute) {
        started_before_legit.insert(after[j].ph);
      }
    }
    ++steps;
  }
  ASSERT_TRUE(cb_legitimate(eng.state(), opt.num_phases));
  for (int ph : started_before_legit) {
    EXPECT_TRUE(perturbed_phases.contains(ph))
        << "phase " << ph << " executed incorrectly outside the m perturbed phases";
  }
  EXPECT_LE(started_before_legit.size(), perturbed_phases.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CbStabilization,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808,
                                           909, 1010));

// ---------------------------------------------------------------------------
// Helpers and state predicates
// ---------------------------------------------------------------------------

TEST(CbHelpers, StartStateIsStartState) {
  const CbOptions opt{4, 3};
  EXPECT_TRUE(cb_is_start_state(cb_start_state(opt, 0)));
  EXPECT_TRUE(cb_is_start_state(cb_start_state(opt, 2)));
  auto s = cb_start_state(opt);
  s[1].cp = Cp::kExecute;
  EXPECT_FALSE(cb_is_start_state(s));
  s = cb_start_state(opt);
  s[2].ph = 1;
  EXPECT_FALSE(cb_is_start_state(s));
}

TEST(CbHelpers, LegitimateCases) {
  const int n = 4;
  // Case A: mixed ready/execute, same phase.
  CbState a{{Cp::kReady, 1}, {Cp::kExecute, 1}, {Cp::kExecute, 1}};
  EXPECT_TRUE(cb_legitimate(a, n));
  // Case B: mixed execute/success, same phase.
  CbState b{{Cp::kSuccess, 2}, {Cp::kExecute, 2}, {Cp::kSuccess, 2}};
  EXPECT_TRUE(cb_legitimate(b, n));
  // Case C: success at i, ready at i+1.
  CbState c{{Cp::kSuccess, 3}, {Cp::kReady, 0}, {Cp::kSuccess, 3}};
  EXPECT_TRUE(cb_legitimate(c, n));
  // Not legitimate: error present.
  CbState d{{Cp::kError, 0}, {Cp::kReady, 0}};
  EXPECT_FALSE(cb_legitimate(d, n));
  // Not legitimate: ready and success in the same phase.
  CbState e{{Cp::kSuccess, 1}, {Cp::kReady, 1}};
  EXPECT_FALSE(cb_legitimate(e, n));
  // Not legitimate: phases diverge in case A.
  CbState f{{Cp::kReady, 0}, {Cp::kExecute, 1}};
  EXPECT_FALSE(cb_legitimate(f, n));
}

TEST(CbHelpers, DistinctPhases) {
  CbState s{{Cp::kReady, 0}, {Cp::kReady, 2}, {Cp::kReady, 0}};
  EXPECT_EQ(cb_distinct_phases(s), 2);
}

TEST(CbHelpers, ControlPositionNames) {
  EXPECT_EQ(to_string(Cp::kReady), "ready");
  EXPECT_EQ(to_string(Cp::kExecute), "execute");
  EXPECT_EQ(to_string(Cp::kSuccess), "success");
  EXPECT_EQ(to_string(Cp::kError), "error");
  EXPECT_EQ(to_string(Cp::kRepeat), "repeat");
}

TEST(CbHelpers, PhaseRingArithmetic) {
  constexpr PhaseRing ring(4);
  static_assert(ring.next(3) == 0);
  static_assert(ring.prev(0) == 3);
  static_assert(ring.canon(-1) == 3);
  static_assert(ring.canon(9) == 1);
  EXPECT_TRUE(ring.valid(0));
  EXPECT_FALSE(ring.valid(4));
  EXPECT_FALSE(ring.valid(-1));
}

}  // namespace
}  // namespace ftbar::core
