// Property-based tests of the shared transition rules (core/rb_rules.hpp)
// and the phase arithmetic: exhaustive over the small input domains,
// metamorphic where the domain is unbounded.
#include <gtest/gtest.h>

#include "core/rb_rules.hpp"

namespace ftbar::core {
namespace {

constexpr int kCpCount = 5;
constexpr int kPhases = 5;

std::vector<CpPh> all_cpph() {
  std::vector<CpPh> out;
  for (int cp = 0; cp < kCpCount; ++cp) {
    for (int ph = 0; ph < kPhases; ++ph) {
      out.push_back(CpPh{static_cast<Cp>(cp), ph});
    }
  }
  return out;
}

TEST(RulesProperty, FollowerAlwaysCopiesPredecessorPhase) {
  const PhaseRing ring(kPhases);
  for (const auto& self : all_cpph()) {
    for (const auto& prev : all_cpph()) {
      const auto r = rb_follower_update(self, prev, ring);
      EXPECT_EQ(r.next.ph, ring.canon(prev.ph));
    }
  }
}

TEST(RulesProperty, FollowerEventsOnlyOnTheirTransitions) {
  const PhaseRing ring(kPhases);
  for (const auto& self : all_cpph()) {
    for (const auto& prev : all_cpph()) {
      const auto r = rb_follower_update(self, prev, ring);
      switch (r.event) {
        case RbEvent::kStart:
          EXPECT_EQ(self.cp, Cp::kReady);
          EXPECT_EQ(prev.cp, Cp::kExecute);
          EXPECT_EQ(r.next.cp, Cp::kExecute);
          break;
        case RbEvent::kComplete:
          EXPECT_EQ(self.cp, Cp::kExecute);
          EXPECT_EQ(prev.cp, Cp::kSuccess);
          EXPECT_EQ(r.next.cp, Cp::kSuccess);
          break;
        case RbEvent::kAbort:
          EXPECT_EQ(self.cp, Cp::kExecute);
          EXPECT_EQ(r.next.cp, Cp::kRepeat);
          break;
        case RbEvent::kNone:
          break;
      }
    }
  }
}

TEST(RulesProperty, FollowerSecondApplicationIsEventFree) {
  // Re-applying the statement against the same predecessor state must not
  // double-fire start/complete/abort — the idempotence the retransmitting
  // runtime relies on (a duplicated snapshot is harmless).
  const PhaseRing ring(kPhases);
  for (const auto& self : all_cpph()) {
    for (const auto& prev : all_cpph()) {
      const auto first = rb_follower_update(self, prev, ring);
      const auto second = rb_follower_update(first.next, prev, ring);
      EXPECT_EQ(static_cast<int>(second.event), static_cast<int>(RbEvent::kNone))
          << "self=" << static_cast<int>(self.cp)
          << " prev=" << static_cast<int>(prev.cp);
    }
  }
}

TEST(RulesProperty, FollowerThirdApplicationIsFixpoint) {
  const PhaseRing ring(kPhases);
  for (const auto& self : all_cpph()) {
    for (const auto& prev : all_cpph()) {
      const auto a = rb_follower_update(self, prev, ring);
      const auto b = rb_follower_update(a.next, prev, ring);
      const auto c = rb_follower_update(b.next, prev, ring);
      EXPECT_EQ(c.next, b.next) << "no fixpoint after two applications";
    }
  }
}

TEST(RulesProperty, FollowerErrorNeverSurvives) {
  // Whatever the predecessor shows, an error control position is always
  // converted (the basis of the "cp=error iff sn corrupt" invariant).
  const PhaseRing ring(kPhases);
  for (const auto& prev : all_cpph()) {
    const auto r = rb_follower_update(CpPh{Cp::kError, 0}, prev, ring);
    EXPECT_NE(r.next.cp, Cp::kError);
  }
}

TEST(RulesProperty, RootEventsOnlyOnTheirTransitions) {
  const PhaseRing ring(kPhases);
  for (const auto& self : all_cpph()) {
    if (self.cp == Cp::kRepeat) continue;  // not in the root's domain
    for (const auto& l1 : all_cpph()) {
      for (const auto& l2 : all_cpph()) {
        const auto r =
            rb_root_update(self, std::vector<CpPh>{l1, l2}, ring);
        switch (r.event) {
          case RbEvent::kStart:
            EXPECT_EQ(self.cp, Cp::kReady);
            EXPECT_EQ(l1.cp, Cp::kReady);
            EXPECT_EQ(l2.cp, Cp::kReady);
            EXPECT_EQ(l1.ph, self.ph);
            EXPECT_EQ(l2.ph, self.ph);
            break;
          case RbEvent::kComplete:
            EXPECT_EQ(self.cp, Cp::kExecute);
            break;
          case RbEvent::kAbort:
            FAIL() << "the root never aborts";
            break;
          case RbEvent::kNone:
            break;
        }
      }
    }
  }
}

TEST(RulesProperty, RootPhaseAdvancesOnlyOnUnanimousSuccess) {
  const PhaseRing ring(kPhases);
  for (const auto& self : all_cpph()) {
    if (self.cp == Cp::kRepeat) continue;
    for (const auto& l1 : all_cpph()) {
      for (const auto& l2 : all_cpph()) {
        const auto r = rb_root_update(self, std::vector<CpPh>{l1, l2}, ring);
        if (r.next.ph == ring.next(self.ph) && self.cp == Cp::kSuccess) {
          // Increment implies unanimous, phase-aligned success — unless a
          // leaf happened to hold exactly that phase value for copying.
          const bool unanimous = l1.cp == Cp::kSuccess && l2.cp == Cp::kSuccess &&
                                 l1.ph == self.ph && l2.ph == self.ph;
          const bool copied = ring.canon(l1.ph) == ring.next(self.ph);
          EXPECT_TRUE(unanimous || copied);
        }
      }
    }
  }
}

TEST(RulesProperty, RootAlwaysKeepsPhaseInDomain) {
  const PhaseRing ring(kPhases);
  for (const auto& self : all_cpph()) {
    if (self.cp == Cp::kRepeat) continue;
    for (const auto& l1 : all_cpph()) {
      // Corrupted (out-of-domain) leaf phases must be canonicalized.
      CpPh wild = l1;
      wild.ph = l1.ph + 7 * kPhases;
      const auto r = rb_root_update(self, std::vector<CpPh>{wild}, ring);
      EXPECT_TRUE(ring.valid(r.next.ph));
    }
  }
}

TEST(RulesProperty, PhaseRingAlgebra) {
  for (int n = 2; n <= 7; ++n) {
    const PhaseRing ring(n);
    for (int ph = 0; ph < n; ++ph) {
      EXPECT_EQ(ring.prev(ring.next(ph)), ph);
      EXPECT_EQ(ring.next(ring.prev(ph)), ph);
      EXPECT_EQ(ring.canon(ph), ph);
      EXPECT_EQ(ring.canon(ph + 3 * n), ph);
      EXPECT_EQ(ring.canon(ph - 2 * n), ph);
      EXPECT_EQ(ring.canon(ring.canon(ph + 11)), ring.canon(ph + 11));
    }
  }
}

}  // namespace
}  // namespace ftbar::core
