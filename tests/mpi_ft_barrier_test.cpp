#include "mpi/ft_barrier_mpi.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

namespace ftbar::mpi {
namespace {

std::shared_ptr<runtime::Network> make_net(int ranks, std::uint64_t seed = 7) {
  return std::make_shared<runtime::Network>(ranks, seed);
}

TEST(MpiFtBarrier, ErrorCodeModeReportsMissingRank) {
  auto net = make_net(2);
  FtBarrierOptions opt;
  opt.intolerant_timeout = std::chrono::milliseconds(50);
  FtBarrier bar(Communicator(net, 0), FtMode::kErrorCode, opt);
  const auto r = bar.wait();  // rank 1 never arrives
  EXPECT_EQ(r.err, Err::kTimeout);
}

TEST(MpiFtBarrier, AbortModeThrows) {
  auto net = make_net(2);
  FtBarrierOptions opt;
  opt.intolerant_timeout = std::chrono::milliseconds(50);
  FtBarrier bar(Communicator(net, 0), FtMode::kAbort, opt);
  EXPECT_THROW(bar.wait(), BarrierAborted);
}

TEST(MpiFtBarrier, ErrorCodeModeSucceedsWhenAllArrive) {
  const int n = 4;
  auto net = make_net(n);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([&, r] {
      FtBarrier bar(Communicator(net, r), FtMode::kErrorCode);
      for (int i = 0; i < 10; ++i) {
        if (bar.wait().err != Err::kSuccess) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(MpiFtBarrier, TolerantModeAdvancesPhases) {
  const int n = 3;
  auto net = make_net(n);
  std::vector<std::vector<core::PhaseTicket>> logs(static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([&, r] {
      FtBarrier bar(Communicator(net, r), FtMode::kTolerant);
      int completed = 0;
      while (completed < 5) {
        const auto res = bar.wait();
        ASSERT_EQ(res.err, Err::kSuccess);
        logs[static_cast<std::size_t>(r)].push_back(res.ticket);
        if (!res.ticket.repeated) ++completed;
      }
      bar.drain();
    });
  }
  for (auto& t : threads) t.join();
  for (int r = 0; r < n; ++r) {
    ASSERT_EQ(logs[static_cast<std::size_t>(r)].size(), 5u);
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(logs[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)].phase,
                (i + 1) % 64);
    }
  }
}

TEST(MpiFtBarrier, TolerantModeMasksRankStateLoss) {
  const int n = 3;
  auto net = make_net(n);
  std::vector<std::vector<core::PhaseTicket>> logs(static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([&, r] {
      FtBarrier bar(Communicator(net, r), FtMode::kTolerant);
      int completed = 0;
      int arrives = 0;
      while (completed < 4) {
        const bool ok = !(r == 2 && arrives == 1);  // rank 2 loses a phase
        const auto res = bar.wait(ok);
        ++arrives;
        logs[static_cast<std::size_t>(r)].push_back(res.ticket);
        if (!res.ticket.repeated) ++completed;
      }
      bar.drain();
    });
  }
  for (auto& t : threads) t.join();
  // All ranks saw the same ticket sequence, with exactly one repeat.
  for (int r = 1; r < n; ++r) {
    ASSERT_EQ(logs[static_cast<std::size_t>(r)].size(), logs[0].size());
    for (std::size_t i = 0; i < logs[0].size(); ++i) {
      EXPECT_EQ(logs[static_cast<std::size_t>(r)][i].phase, logs[0][i].phase);
      EXPECT_EQ(logs[static_cast<std::size_t>(r)][i].repeated, logs[0][i].repeated);
    }
  }
  int repeats = 0;
  for (const auto& t : logs[0]) repeats += t.repeated;
  EXPECT_EQ(repeats, 1);
}

TEST(MpiFtBarrier, TolerantModeSurvivesLossyLinks) {
  const int n = 3;
  auto net = make_net(n, 21);
  net->set_default_faults(runtime::LinkFaults{.drop = 0.1, .duplicate = 0.05,
                                              .corrupt = 0.05, .reorder = 0.05});
  std::atomic<int> completed_total{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([&, r] {
      FtBarrier bar(Communicator(net, r), FtMode::kTolerant);
      int completed = 0;
      while (completed < 5) {
        const auto res = bar.wait();
        if (!res.ticket.repeated) ++completed;
      }
      bar.drain();
      completed_total += completed;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(completed_total.load(), 15);
}

TEST(MpiFtBarrier, TolerantAndIntolerantContrastUnderLoss) {
  // The headline contrast of the paper: under heavy loss the intolerant
  // barrier fails (times out) while the tolerant one completes.
  // Rank 1's arrival is always lost: rank 0 never sees it, and rank 1
  // never gets a release, so both sides report the fault.
  auto net_bad = make_net(2, 31);
  net_bad->set_link_faults(1, 0, runtime::LinkFaults{.drop = 1.0});
  FtBarrierOptions opt;
  opt.intolerant_timeout = std::chrono::milliseconds(50);
  std::thread peer([&] {
    FtBarrier bar(Communicator(net_bad, 1), FtMode::kErrorCode, opt);
    EXPECT_EQ(bar.wait().err, Err::kTimeout);
  });
  FtBarrier bar(Communicator(net_bad, 0), FtMode::kErrorCode, opt);
  EXPECT_EQ(bar.wait().err, Err::kTimeout);
  peer.join();

  // Same loss rate (but < 1 so retransmission can win) in tolerant mode.
  auto net_ok = make_net(2, 32);
  net_ok->set_default_faults(runtime::LinkFaults{.drop = 0.5});
  std::thread t1([&] {
    FtBarrier bar1(Communicator(net_ok, 1), FtMode::kTolerant);
    const auto res = bar1.wait();
    EXPECT_EQ(res.err, Err::kSuccess);
    bar1.drain();
  });
  FtBarrier bar0(Communicator(net_ok, 0), FtMode::kTolerant);
  EXPECT_EQ(bar0.wait().err, Err::kSuccess);
  bar0.drain();
  t1.join();
}

TEST(MpiFtBarrier, RankFailStopAndRepairRejoins) {
  // The paper's processor fail-stop + repair fault, end to end: rank 1's
  // thread DIES after two committed supersteps (its barrier state is gone),
  // the survivors stall — no barrier can complete without it — and a
  // replacement incarnation rejoins through the detectable-fault path.
  const int n = 3;
  auto net = make_net(n, 41);
  std::vector<std::vector<int>> commits(static_cast<std::size_t>(n));
  std::atomic<bool> rank1_died{false};

  auto run_rank = [&](int r, int goal) {
    FtBarrier bar(Communicator(net, r), FtMode::kTolerant);
    int completed = 0;
    while (completed < goal) {
      const auto res = bar.wait();
      if (!res.ticket.repeated) {
        ++completed;
        commits[static_cast<std::size_t>(r)].push_back(res.ticket.phase);
      }
      if (r == 1 && commits[1].size() == 2) {  // die after two commits
        rank1_died = true;
        return;  // thread exits: fail-stop (no drain, no goodbye)
      }
    }
    bar.drain();
  };

  std::thread survivor0([&] { run_rank(0, 6); });
  std::thread survivor2([&] { run_rank(2, 6); });
  std::thread victim([&] { run_rank(1, 6); });
  victim.join();
  ASSERT_TRUE(rank1_died.load());

  // Survivors are now blocked. Repair: a fresh incarnation of rank 1 whose
  // state was reset (the constructor state is NOT the ring's state, so its
  // first wait reports ok=false to re-learn everything cleanly).
  std::thread replacement([&] {
    FtBarrier bar(Communicator(net, 1), FtMode::kTolerant);
    int completed = 0;
    bool first = true;
    while (completed < 4) {  // finish the remaining supersteps
      const auto res = bar.wait(/*ok=*/!first);
      first = false;
      if (!res.ticket.repeated) {
        ++completed;
        commits[1].push_back(res.ticket.phase);
      }
    }
    bar.drain();
  });
  survivor0.join();
  survivor2.join();
  replacement.join();

  // Survivors committed all six supersteps, in identical order.
  EXPECT_EQ(commits[0].size(), 6u);
  EXPECT_EQ(commits[0], commits[2]);
  // The repaired rank committed the remainder; its commits are a suffix-
  // consistent subsequence of the survivors' (it may have re-run the phase
  // in flight at the crash, and joined mid-stream).
  EXPECT_GE(commits[1].size(), 6u);
}

}  // namespace
}  // namespace ftbar::mpi
