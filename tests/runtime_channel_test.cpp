#include "runtime/channel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace ftbar::runtime {
namespace {

TEST(Channel, FifoOrder) {
  Channel<int> ch;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(ch.push(i));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ch.try_pop(), i);
  EXPECT_EQ(ch.try_pop(), std::nullopt);
}

TEST(Channel, TryPushRespectsCapacity) {
  Channel<int> ch(2);
  EXPECT_TRUE(ch.try_push(1));
  EXPECT_TRUE(ch.try_push(2));
  EXPECT_FALSE(ch.try_push(3));
  EXPECT_EQ(ch.size(), 2u);
  ch.try_pop();
  EXPECT_TRUE(ch.try_push(3));
}

TEST(Channel, PopWaitForTimesOut) {
  Channel<int> ch;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(ch.pop_wait_for(std::chrono::milliseconds(20)), std::nullopt);
  EXPECT_GE(std::chrono::steady_clock::now() - start, std::chrono::milliseconds(15));
}

TEST(Channel, CloseDrainsThenReturnsNull) {
  Channel<int> ch;
  ch.push(7);
  ch.close();
  EXPECT_FALSE(ch.push(8));
  EXPECT_EQ(ch.pop(), 7);          // drains pending values
  EXPECT_EQ(ch.pop(), std::nullopt);  // then reports closure
  EXPECT_TRUE(ch.closed());
}

TEST(Channel, CloseWakesBlockedPop) {
  Channel<int> ch;
  std::thread waiter([&] { EXPECT_EQ(ch.pop(), std::nullopt); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ch.close();
  waiter.join();
}

TEST(Channel, ProducerConsumerTransfersEverything) {
  Channel<int> ch(16);
  constexpr int kItems = 5'000;
  std::atomic<long long> sum{0};
  std::thread consumer([&] {
    while (auto v = ch.pop()) sum += *v;
  });
  std::thread producer([&] {
    for (int i = 1; i <= kItems; ++i) ch.push(i);
    ch.close();
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(sum.load(), static_cast<long long>(kItems) * (kItems + 1) / 2);
}

TEST(Channel, MultipleProducersMultipleConsumers) {
  Channel<int> ch(8);
  constexpr int kPerProducer = 1'000;
  std::atomic<long long> sum{0};
  std::atomic<int> received{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 3; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) ch.push(1);
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (auto v = ch.pop()) {
        sum += *v;
        ++received;
      }
    });
  }
  for (int p = 0; p < 3; ++p) threads[static_cast<std::size_t>(p)].join();
  ch.close();
  threads[3].join();
  threads[4].join();
  EXPECT_EQ(sum.load(), 3LL * kPerProducer);
  EXPECT_EQ(received.load(), 3 * kPerProducer);
}

}  // namespace
}  // namespace ftbar::runtime
