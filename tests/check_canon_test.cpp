// Property tests for the checker's symmetry reduction (check/canon.hpp):
// canonical forms are rotation-invariant, orbit sizes divide the group
// order, and quotient exploration is differentially consistent with the
// unreduced exploration on the bundled programs — the canonical images of
// the unreduced reachable set ARE the quotient's stored set, and on
// orbit-closed workloads the per-orbit sizes sum back to the unreduced
// count. A toy token ring with a NON-identity action permutation pins the
// permute_fired leg of counterexample lifting, which the phase-rotation
// bundles (identity action_perm) never exercise.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "check/canon.hpp"
#include "check/checker.hpp"
#include "check/programs.hpp"
#include "core/rb.hpp"
#include "trace/replay.hpp"

namespace ftbar::check {
namespace {

using core::RbProc;
using core::RbState;

// Runs an exhaust (single-threaded, so the invariant callback is a safe
// collection point) and returns every state the checker accepted — raw
// states for an unreduced run, canonical representatives for a reduced one.
template <class P>
std::vector<std::vector<P>> collect_reachable(
    const std::vector<sim::Action<P>>& actions, std::size_t procs,
    const std::vector<std::vector<P>>& roots, const Symmetry<P>& sym,
    sim::Semantics semantics, bool symmetry) {
  CheckOptions opt;
  opt.semantics = semantics;
  opt.symmetry = symmetry;
  Checker<P> ck(actions, procs, opt, sym);
  std::vector<std::vector<P>> seen;
  const auto res = ck.run(roots, [&seen](const std::vector<P>& s) {
    seen.push_back(s);
    return true;
  });
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(seen.size(), res.states_visited);
  return seen;
}

// ---------------------------------------------------------------------------
// Canonicalization properties on the bundled phase-rotation groups
// ---------------------------------------------------------------------------

class CanonRbTest : public ::testing::TestWithParam<
                        std::tuple<int, int, sim::Semantics>> {};

TEST_P(CanonRbTest, CanonicalFormIsInvariantUnderEveryRotation) {
  const auto [n, phases, semantics] = GetParam();
  const auto b = make_rb_bundle(n, phases);
  ASSERT_EQ(b.symmetry.order, static_cast<std::size_t>(phases));
  Canonicalizer<RbProc> canon(&b.symmetry, b.procs);

  const auto states = collect_reachable(b.actions, b.procs, b.perturbed_roots,
                                        b.symmetry, semantics,
                                        /*symmetry=*/false);
  ASSERT_FALSE(states.empty());
  std::vector<RbProc> expect(b.procs), got(b.procs);
  for (const auto& s : states) {
    const auto e = canon.canonicalize(s.data(), expect.data());
    // The returned exponent really maps the input to the canonical form.
    std::vector<RbProc> image = s;
    canon.apply_pow(std::span<RbProc>{image}, e);
    EXPECT_EQ(image, expect);
    // Every rotation of s canonicalizes to the same representative.
    image = s;
    for (std::size_t k = 1; k < canon.order(); ++k) {
      b.symmetry.generator(std::span<RbProc>{image});
      canon.canonicalize(image.data(), got.data());
      EXPECT_EQ(got, expect) << "rotation " << k;
    }
  }
}

TEST_P(CanonRbTest, OrbitSizesDivideTheGroupOrder) {
  const auto [n, phases, semantics] = GetParam();
  const auto b = make_rb_bundle(n, phases);
  Canonicalizer<RbProc> canon(&b.symmetry, b.procs);
  const auto states = collect_reachable(b.actions, b.procs, b.perturbed_roots,
                                        b.symmetry, semantics,
                                        /*symmetry=*/false);
  for (const auto& s : states) {
    const auto t = canon.orbit_size(s.data());
    ASSERT_GT(t, 0u);
    EXPECT_EQ(canon.order() % t, 0u) << "orbit size " << t;
  }
}

TEST_P(CanonRbTest, QuotientStoresExactlyTheCanonicalImages) {
  const auto [n, phases, semantics] = GetParam();
  const auto b = make_rb_bundle(n, phases);
  Canonicalizer<RbProc> canon(&b.symmetry, b.procs);

  // Differential: the reduced run's stored set must equal the set of
  // canonical images of the unreduced reachable set — no state lost, none
  // invented. Holds for ANY root set (orbit-closed or not).
  const auto full = collect_reachable(b.actions, b.procs, b.perturbed_roots,
                                      b.symmetry, semantics,
                                      /*symmetry=*/false);
  const auto reduced = collect_reachable(b.actions, b.procs, b.perturbed_roots,
                                         b.symmetry, semantics,
                                         /*symmetry=*/true);

  std::set<std::uint64_t> canon_digests;
  std::vector<RbProc> buf(b.procs);
  for (const auto& s : full) {
    canon.canonicalize(s.data(), buf.data());
    canon_digests.insert(trace::state_digest(buf));
  }
  std::set<std::uint64_t> reduced_digests;
  for (const auto& s : reduced) reduced_digests.insert(trace::state_digest(s));
  EXPECT_EQ(reduced_digests, canon_digests);
}

TEST_P(CanonRbTest, OrbitSizesSumToTheOrbitClosureOfTheReachableSet) {
  const auto [n, phases, semantics] = GetParam();
  const auto b = make_rb_bundle(n, phases);
  Canonicalizer<RbProc> canon(&b.symmetry, b.procs);

  const auto full = collect_reachable(b.actions, b.procs, b.start_roots,
                                      b.symmetry, semantics,
                                      /*symmetry=*/false);
  const auto reduced = collect_reachable(b.actions, b.procs, b.start_roots,
                                         b.symmetry, semantics,
                                         /*symmetry=*/true);

  // Sum of |orbit| over the quotient's representatives counts each orbit of
  // a reachable state once in full: it must equal the size of the orbit
  // CLOSURE of the reachable set, for any workload.
  std::size_t orbit_sum = 0;
  for (const auto& s : reduced) orbit_sum += canon.orbit_size(s.data());
  std::set<std::uint64_t> closure;
  for (const auto& s : full) {
    std::vector<RbProc> image = s;
    closure.insert(trace::state_digest(image));
    for (std::size_t k = 1; k < canon.order(); ++k) {
      b.symmetry.generator(std::span<RbProc>{image});
      closure.insert(trace::state_digest(image));
    }
  }
  EXPECT_EQ(orbit_sum, closure.size());
  EXPECT_GE(orbit_sum, full.size());

  // Where the reachable set IS orbit-closed, the quotient partitions it
  // into full orbits and the sum collapses to the unreduced count — i.e.
  // reduced-count x average-orbit-size = unreduced-count. Empirically that
  // is the fault-free N=4 workload here (the system cycles through every
  // phase and the rotation permutes its reachable rounds); N=3's fault-free
  // set pairs each state with an UNREACHABLE orbit-mate, so its quotient
  // reduces nothing — asymmetry the closure assertion above still covers.
  if (closure.size() == full.size()) {
    EXPECT_EQ(orbit_sum, full.size());
    EXPECT_LT(reduced.size(), full.size());
  }
  if (n == 4) {
    EXPECT_EQ(closure.size(), full.size())
        << "fault-free N=4 workload lost orbit closure";
  }
}

INSTANTIATE_TEST_SUITE_P(
    RbSmallInstances, CanonRbTest,
    ::testing::Combine(::testing::Values(3, 4), ::testing::Values(2, 4),
                       ::testing::Values(sim::Semantics::kInterleaving,
                                         sim::Semantics::kMaxParallel)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_ph" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) == sim::Semantics::kMaxParallel
                  ? "_maxpar"
                  : "_interleaving");
    });

// ---------------------------------------------------------------------------
// Non-identity action permutation: a fully symmetric token ring
// ---------------------------------------------------------------------------
//
// The bundled programs all use the global phase rotation, whose action
// permutation is the identity, so their counterexample lifting never
// rewrites a fired list. This toy ring pins the general path: N identical
// processes, process rotation as the group, and action_perm mapping
// pass@i to pass@(i+1 mod N).

struct Ring {
  int token = 0;
  int count = 0;  ///< times the token has arrived here
  friend auto operator<=>(const Ring&, const Ring&) = default;
};
using RingState = std::vector<Ring>;

std::vector<sim::Action<Ring>> ring_actions(int n, int max_count) {
  std::vector<sim::Action<Ring>> acts;
  for (int i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const auto un = static_cast<std::size_t>((i + 1) % n);
    acts.push_back(sim::make_action<Ring>(
        "pass@" + std::to_string(i), i,
        [ui, un, max_count](const RingState& s) {
          return s[ui].token == 1 && s[un].count < max_count;
        },
        [ui, un](RingState& s) {
          s[ui].token = 0;
          s[un].token = 1;
          ++s[un].count;
        }));
  }
  return acts;
}

// g shifts every process's state one slot down the ring (process i takes
// process i-1's state), so a token at p moves to p+1 and pass@p corresponds
// to pass@(p+1) — a transition automorphism with a non-identity action_perm.
Symmetry<Ring> ring_rotation(int n) {
  Symmetry<Ring> sym;
  sym.order = static_cast<std::size_t>(n);
  sym.name = "proc-rotation";
  sym.generator = [](std::span<Ring> s) {
    std::rotate(s.begin(), s.end() - 1, s.end());
  };
  sym.action_perm.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    sym.action_perm[static_cast<std::size_t>(i)] =
        static_cast<std::uint32_t>((i + 1) % n);
  }
  return sym;
}

RingState ring_start(int n) {
  RingState s(static_cast<std::size_t>(n));
  s[0].token = 1;
  return s;
}

TEST(CanonTokenRing, PermuteFiredAppliesThePermutationAndReordersByProcess) {
  const int n = 3;
  const auto actions = ring_actions(n, /*max_count=*/1);
  const auto sym = ring_rotation(n);
  Canonicalizer<Ring> canon(&sym, static_cast<std::size_t>(n));

  std::vector<std::uint32_t> fired{2, 0};
  canon.permute_fired(fired, 1, actions);
  EXPECT_EQ(fired, (std::vector<std::uint32_t>{0, 1}));  // 2->0, 0->1, sorted
  fired = {1};
  canon.permute_fired(fired, 2, actions);  // applied twice: 1 -> 2 -> 0
  EXPECT_EQ(fired, (std::vector<std::uint32_t>{0}));
}

TEST(CanonTokenRing, PureTokenOrbitCollapsesToOneRepresentative) {
  const int n = 4;
  // max_count 0 would disable every action; use a count-free view instead:
  // with counts capped at n passes the token makes one full loop, but for
  // the orbit property only the token component matters. Canonicalize the
  // n one-hot token placements directly: one orbit, n members.
  const auto sym = ring_rotation(n);
  Canonicalizer<Ring> canon(&sym, static_cast<std::size_t>(n));
  RingState rep(static_cast<std::size_t>(n));
  canon.canonicalize(ring_start(n).data(), rep.data());
  RingState got(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    RingState s(static_cast<std::size_t>(n));
    s[static_cast<std::size_t>(p)].token = 1;
    EXPECT_EQ(canon.orbit_size(s.data()), static_cast<std::size_t>(n));
    canon.canonicalize(s.data(), got.data());
    EXPECT_EQ(got, rep) << "token at " << p;
  }
}

TEST(CanonTokenRing, QuotientCounterexampleLiftsThroughActionPermutation) {
  const int n = 3;
  const auto actions = ring_actions(n, /*max_count=*/2);
  const auto sym = ring_rotation(n);
  const RingState start = ring_start(n);
  // G-invariant safety property, violated once some process sees the token
  // a second time (after one full loop).
  const auto at_most_once = [](const RingState& s) {
    return std::all_of(s.begin(), s.end(),
                       [](const Ring& p) { return p.count < 2; });
  };

  CheckOptions opt;
  opt.symmetry = true;
  Checker<Ring> ck(actions, static_cast<std::size_t>(n), opt, sym);
  const auto res = ck.run({start}, at_most_once);
  ASSERT_TRUE(res.violation.has_value());
  const auto& cx = *res.violation;

  // The lifted path must be a CONCRETE execution: it starts at the raw
  // (uncanonicalized) root and every fired list — rewritten through
  // action_perm by the lifting — transitions path[i] into path[i+1].
  ASSERT_GT(cx.length(), 0u);
  EXPECT_EQ(cx.path.front(), start);
  EXPECT_FALSE(at_most_once(cx.path.back()));
  RingState state = cx.path.front();
  for (std::size_t i = 0; i < cx.fired.size(); ++i) {
    ASSERT_TRUE(apply_fired(state, cx.fired[i], actions, cx.semantics))
        << "step " << i;
    EXPECT_EQ(state, cx.path[i + 1]) << "step " << i;
  }

  // Differential verdict: the unreduced exploration agrees the property
  // fails, and its first violation depth matches the quotient's (the
  // quotient preserves shortest-path depths for G-invariant properties).
  Checker<Ring> full(actions, static_cast<std::size_t>(n));
  const auto fres = full.run({start}, at_most_once);
  ASSERT_TRUE(fres.violation.has_value());
  EXPECT_EQ(fres.violation->length(), cx.length());
}

}  // namespace
}  // namespace ftbar::check
