#include "topology/topology.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

namespace ftbar::topology {
namespace {

TEST(Topology, RingIsASinglePath) {
  const auto t = Topology::ring(5);
  EXPECT_EQ(t.size(), 5);
  EXPECT_EQ(t.root(), 0);
  EXPECT_EQ(t.parent(0), -1);
  for (int j = 1; j < 5; ++j) EXPECT_EQ(t.parent(j), j - 1);
  ASSERT_EQ(t.leaves().size(), 1u);
  EXPECT_EQ(t.leaves().front(), 4);
  EXPECT_EQ(t.height(), 4);
  EXPECT_TRUE(t.is_leaf(4));
  EXPECT_FALSE(t.is_leaf(0));
}

TEST(Topology, SingleProcessRing) {
  const auto t = Topology::ring(1);
  EXPECT_EQ(t.size(), 1);
  EXPECT_EQ(t.height(), 0);
  ASSERT_EQ(t.leaves().size(), 1u);
  EXPECT_EQ(t.leaves().front(), 0);
}

TEST(Topology, TwoRingHasTwoChainsFromRoot) {
  const auto t = Topology::two_ring(7);
  EXPECT_EQ(t.size(), 7);
  EXPECT_EQ(t.children(0).size(), 2u);
  EXPECT_EQ(t.leaves().size(), 2u);
  // Chains of 3 each: height 3.
  EXPECT_EQ(t.height(), 3);
}

TEST(Topology, TwoRingUnevenSplit) {
  const auto t = Topology::two_ring(4);  // chains of 2 and 1
  EXPECT_EQ(t.children(0).size(), 2u);
  EXPECT_EQ(t.leaves().size(), 2u);
  EXPECT_EQ(t.height(), 2);
}

TEST(Topology, BinaryTreeShape) {
  const auto t = Topology::kary_tree(7, 2);
  EXPECT_EQ(t.parent(1), 0);
  EXPECT_EQ(t.parent(2), 0);
  EXPECT_EQ(t.parent(3), 1);
  EXPECT_EQ(t.parent(6), 2);
  EXPECT_EQ(t.height(), 2);
  EXPECT_EQ(t.leaves().size(), 4u);
}

TEST(Topology, BinaryTreeHeightIsLogN) {
  EXPECT_EQ(Topology::kary_tree(31, 2).height(), 4);
  EXPECT_EQ(Topology::kary_tree(32, 2).height(), 5);
  EXPECT_EQ(Topology::kary_tree(127, 2).height(), 6);
}

TEST(Topology, UnaryTreeDegeneratesToRing) {
  const auto t = Topology::kary_tree(4, 1);
  for (int j = 1; j < 4; ++j) EXPECT_EQ(t.parent(j), j - 1);
}

TEST(Topology, DepthsAreConsistent) {
  const auto t = Topology::kary_tree(15, 2);
  EXPECT_EQ(t.depth(0), 0);
  for (int j = 1; j < 15; ++j) {
    EXPECT_EQ(t.depth(j), t.depth(t.parent(j)) + 1);
  }
}

TEST(Topology, ChildrenMatchParents) {
  const auto t = Topology::kary_tree(10, 3);
  for (int j = 0; j < 10; ++j) {
    for (int c : t.children(j)) EXPECT_EQ(t.parent(c), j);
  }
  std::size_t total_children = 0;
  for (int j = 0; j < 10; ++j) total_children += t.children(j).size();
  EXPECT_EQ(total_children, 9u);  // every non-root appears exactly once
}

TEST(Topology, SpanningTreeOfCycleGraph) {
  // 0-1-2-3-0 cycle; BFS tree from 0.
  const auto t = Topology::spanning_tree(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(t.parent(1), 0);
  EXPECT_EQ(t.parent(3), 0);
  EXPECT_TRUE(t.parent(2) == 1 || t.parent(2) == 3);
  EXPECT_EQ(t.height(), 2);
}

TEST(Topology, SpanningTreeRejectsDisconnected) {
  EXPECT_THROW(Topology::spanning_tree(4, {{0, 1}, {2, 3}}), std::invalid_argument);
}

TEST(Topology, SpanningTreeRejectsBadEdges) {
  EXPECT_THROW(Topology::spanning_tree(3, {{0, 5}}), std::invalid_argument);
}

TEST(Topology, FromParentsValidation) {
  EXPECT_THROW(Topology::from_parents({}), std::invalid_argument);
  EXPECT_THROW(Topology::from_parents({0}), std::invalid_argument);       // root not -1
  EXPECT_THROW(Topology::from_parents({-1, 5}), std::invalid_argument);   // out of range
  EXPECT_THROW(Topology::from_parents({-1, 1}), std::invalid_argument);   // self-loop
  EXPECT_THROW(Topology::from_parents({-1, 2, 1}), std::invalid_argument);  // cycle
  EXPECT_NO_THROW(Topology::from_parents({-1, 0, 0, 1}));
}

TEST(Topology, ConstructorRejectsBadSizes) {
  EXPECT_THROW(Topology::ring(0), std::invalid_argument);
  EXPECT_THROW(Topology::two_ring(2), std::invalid_argument);
  EXPECT_THROW(Topology::kary_tree(0, 2), std::invalid_argument);
  EXPECT_THROW(Topology::kary_tree(5, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ftbar::topology
