#include "runtime/failure_detector.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace ftbar::runtime {
namespace {

using namespace std::chrono_literals;
using Clock = SuspectTracker::Clock;

TEST(SuspectTracker, FreshTrackerSuspectsNobody) {
  SuspectTracker tracker(4, 0, 100ms);
  EXPECT_TRUE(tracker.suspected(Clock::now()).empty());
}

TEST(SuspectTracker, SilenceBeyondTimeoutIsSuspected) {
  SuspectTracker tracker(3, 0, 100ms);
  const auto t0 = Clock::now();
  tracker.record(1, t0);
  tracker.record(2, t0);
  EXPECT_FALSE(tracker.is_suspected(1, t0 + 50ms));
  EXPECT_TRUE(tracker.is_suspected(1, t0 + 150ms));
  const auto suspects = tracker.suspected(t0 + 150ms);
  EXPECT_EQ(suspects.size(), 2u);
}

TEST(SuspectTracker, RecordingClearsSuspicion) {
  SuspectTracker tracker(2, 0, 100ms);
  const auto t0 = Clock::now();
  tracker.record(1, t0);
  EXPECT_TRUE(tracker.is_suspected(1, t0 + 200ms));
  tracker.record(1, t0 + 180ms);
  EXPECT_FALSE(tracker.is_suspected(1, t0 + 200ms));
}

TEST(SuspectTracker, SelfIsNeverSuspected) {
  SuspectTracker tracker(2, 0, 1ms);
  const auto t0 = Clock::now();
  EXPECT_FALSE(tracker.is_suspected(0, t0 + 10s));
}

TEST(SuspectTracker, StaleRecordDoesNotRewindClock) {
  SuspectTracker tracker(2, 0, 100ms);
  const auto t0 = Clock::now();
  tracker.record(1, t0 + 100ms);
  tracker.record(1, t0);  // out-of-order observation
  EXPECT_EQ(tracker.last_seen(1), t0 + 100ms);
}

TEST(SuspectTracker, OutOfRangeRanksIgnored) {
  SuspectTracker tracker(2, 0, 100ms);
  tracker.record(-1, Clock::now());
  tracker.record(7, Clock::now());
  EXPECT_FALSE(tracker.is_suspected(-1, Clock::now() + 1s));
  EXPECT_FALSE(tracker.is_suspected(7, Clock::now() + 1s));
}

TEST(ProgressTracker, FirstObservationOnlyBaselines) {
  ProgressTracker tracker(2, 0, 100ms);
  const auto t0 = Clock::now();
  // The first observation of a counter must not count as progress: a rank
  // that was already dead at construction would otherwise get a fresh
  // benefit-of-the-doubt from every new observer.
  tracker.observe(1, 7, t0 + 90ms);
  EXPECT_TRUE(tracker.is_suspected(1, t0 + 120ms))
      << "baseline observation must not extend the construction grace";
}

TEST(ProgressTracker, StaleCounterIsSuspectedChangeRefreshes) {
  ProgressTracker tracker(2, 0, 100ms);
  const auto t0 = Clock::now();
  tracker.observe(1, 7, t0);  // baseline
  tracker.observe(1, 8, t0 + 10ms);
  EXPECT_FALSE(tracker.is_suspected(1, t0 + 100ms));
  // Counter frozen at 8: repeated observations are not signs of life.
  tracker.observe(1, 8, t0 + 50ms);
  tracker.observe(1, 8, t0 + 100ms);
  EXPECT_TRUE(tracker.is_suspected(1, t0 + 150ms));
  // Any change — even a decrease after a restart — refreshes.
  tracker.observe(1, 3, t0 + 160ms);
  EXPECT_FALSE(tracker.is_suspected(1, t0 + 200ms));
}

TEST(ProgressTracker, ForgiveAllRebaselines) {
  ProgressTracker tracker(3, 0, 100ms);
  const auto t0 = Clock::now();
  tracker.observe(1, 1, t0);
  tracker.observe(2, 1, t0);
  ASSERT_TRUE(tracker.is_suspected(1, t0 + 200ms));
  tracker.forgive_all(t0 + 200ms);
  EXPECT_FALSE(tracker.is_suspected(1, t0 + 250ms));
  EXPECT_FALSE(tracker.is_suspected(2, t0 + 250ms));
  // After the amnesty the old counters are forgotten: seeing the same
  // value again is a baseline, not progress.
  tracker.observe(1, 1, t0 + 290ms);
  EXPECT_TRUE(tracker.is_suspected(1, t0 + 310ms));
}

TEST(ProgressTracker, SelfIsNeverSuspected) {
  ProgressTracker tracker(2, 0, 1ms);
  EXPECT_FALSE(tracker.is_suspected(0, Clock::now() + 10s));
}

TEST(HeartbeatDetector, DetectsSilentRankAndRecovery) {
  auto net = std::make_shared<Network>(3, 11);
  HeartbeatDetector d0(net, 0, /*beat_every=*/5ms, /*timeout=*/60ms);
  HeartbeatDetector d1(net, 1, 5ms, 60ms);
  // Rank 2 exists but never beats.
  const auto deadline = Clock::now() + 1s;
  bool detected = false;
  while (Clock::now() < deadline && !detected) {
    d0.beat();
    d1.beat();
    while (auto m = net->try_recv(0)) d0.observe(*m);
    while (auto m = net->try_recv(1)) d1.observe(*m);
    detected = d0.is_suspected(2) && d1.is_suspected(2) && !d0.is_suspected(1) &&
               !d1.is_suspected(0);
    std::this_thread::sleep_for(2ms);
  }
  EXPECT_TRUE(detected) << "silent rank 2 was not suspected (or peers wrongly were)";

  // Rank 2 comes back: a single heartbeat clears the suspicion.
  HeartbeatDetector d2(net, 2, 5ms, 60ms);
  d2.beat();
  while (auto m = net->try_recv(0)) d0.observe(*m);
  EXPECT_FALSE(d0.is_suspected(2));
}

TEST(HeartbeatDetector, AnyVerifiedTrafficCountsAsLife) {
  auto net = std::make_shared<Network>(2, 12);
  HeartbeatDetector d0(net, 0, 5ms, 50ms);
  std::this_thread::sleep_for(60ms);
  EXPECT_TRUE(d0.is_suspected(1));
  net->send_value(1, 0, /*tag=*/42, 7);  // ordinary application message
  const auto m = net->try_recv(0);
  ASSERT_TRUE(m.has_value());
  EXPECT_FALSE(d0.observe(*m)) << "application messages are not consumed";
  EXPECT_FALSE(d0.is_suspected(1));
}

TEST(HeartbeatDetector, CorruptMessagesAreNotSignsOfLife) {
  auto net = std::make_shared<Network>(2, 13);
  net->set_link_faults(1, 0, LinkFaults{.corrupt = 1.0});
  HeartbeatDetector d0(net, 0, 5ms, 50ms);
  net->send_value(1, 0, HeartbeatDetector::kHeartbeatTag,
                  static_cast<std::uint8_t>(1));
  std::this_thread::sleep_for(60ms);
  if (auto m = net->try_recv(0)) d0.observe(*m);
  EXPECT_TRUE(d0.is_suspected(1));
}

TEST(HeartbeatDetector, BeatRespectsInterval) {
  auto net = std::make_shared<Network>(2, 14);
  HeartbeatDetector d0(net, 0, /*beat_every=*/1s, 10s);
  d0.beat();
  d0.beat();
  d0.beat();
  EXPECT_EQ(net->stats().sent, 1u) << "beats within the interval must coalesce";
}

}  // namespace
}  // namespace ftbar::runtime
