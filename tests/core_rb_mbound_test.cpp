// Lemma 4.1.4: if undetectable faults perturb the system into m distinct
// phases, at most m phases are executed incorrectly — correct execution
// resumes before any more phases run incorrectly. Randomized check on the
// ring: every phase STARTED before the system returns to a start state
// must be one of the m perturbed phases, except possibly one phase entered
// correctly through process 0's increment (which the lemma's proof calls
// out as executed correctly).
#include <gtest/gtest.h>

#include <set>

#include "check/checker.hpp"
#include "check/programs.hpp"
#include "core/rb.hpp"
#include "sim/step_engine.hpp"

namespace ftbar::core {
namespace {

class RbMBound : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RbMBound, PhasesStartedDuringRecoveryAreBoundedByM) {
  const auto opt = rb_ring_options(5, 8);
  sim::StepEngine<RbProc> eng(rb_start_state(opt), make_rb_actions(opt),
                              util::Rng(GetParam()), sim::Semantics::kInterleaving);
  util::Rng fault_rng(GetParam() ^ 0xbdULL);
  const auto perturb = rb_undetectable_fault(opt);
  for (std::size_t j = 0; j < eng.mutable_state().size(); ++j) {
    perturb(j, eng.mutable_state()[j], fault_rng);
  }

  std::set<int> perturbed_phases;
  for (const auto& p : eng.state()) perturbed_phases.insert(p.ph);
  const auto m = perturbed_phases.size();

  std::set<int> started;
  std::size_t steps = 0;
  while (!rb_is_start_state(eng.state()) && steps < 1'000'000) {
    const RbState before = eng.state();
    eng.step();
    const RbState& after = eng.state();
    for (std::size_t j = 0; j < before.size(); ++j) {
      if (before[j].cp != Cp::kExecute && after[j].cp == Cp::kExecute) {
        started.insert(after[j].ph);
      }
    }
    ++steps;
  }
  ASSERT_TRUE(rb_is_start_state(eng.state())) << "did not stabilize";

  // Phases started outside the perturbed set: at most one, and it must be
  // the increment successor of a perturbed phase.
  std::set<int> outside;
  const PhaseRing ring(opt.num_phases);
  for (int ph : started) {
    if (!perturbed_phases.contains(ph)) outside.insert(ph);
  }
  EXPECT_LE(outside.size(), 1u)
      << "more than one non-perturbed phase ran during recovery";
  for (int ph : outside) {
    EXPECT_TRUE(perturbed_phases.contains(ring.prev(ph)))
        << "phase " << ph << " is not an increment of a perturbed phase";
  }
  EXPECT_LE(started.size(), m + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RbMBound,
                         ::testing::Values(3, 7, 11, 19, 23, 31, 43, 53, 61, 71,
                                           83, 97));

// The randomized runs above sample 12 seeds; the model checker closes the
// gap behind the lemma: stabilization back to the start state is not merely
// observed but GUARANTEED — from every undetectable single-process
// corruption of the start state, under both execution semantics, the
// non-legitimate subgraph is acyclic with no deadlock, so every schedule
// (even an unfair one) recovers.
TEST(RbMBound, RecoveryExhaustivelyGuaranteedFromFaultNeighbourhood) {
  const auto b = check::make_rb_bundle(4);
  for (const auto sem :
       {sim::Semantics::kInterleaving, sim::Semantics::kMaxParallel}) {
    check::CheckOptions opt;
    opt.semantics = sem;
    opt.record_edges = true;
    check::Checker<RbProc> ck(b.actions, b.procs, opt);
    const auto res =
        ck.run(b.perturbed_roots, [](const RbState&) { return true; });
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(ck.legit_reachable_from_all(b.legit));
    EXPECT_TRUE(ck.converges_outside(b.legit));
  }
}

}  // namespace
}  // namespace ftbar::core
