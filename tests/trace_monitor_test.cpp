#include "trace/monitor.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/spec.hpp"
#include "core/timed_model.hpp"
#include "trace/event.hpp"
#include "trace/recorder.hpp"
#include "util/rng.hpp"

namespace ftbar::trace {
namespace {

TraceEvent at(std::vector<TraceEvent>& events, TraceEvent e) {
  e.seq = events.size();
  e.time = static_cast<double>(events.size());
  events.push_back(e);
  return e;
}

TEST(CheckTrace, CleanPhaseHistoryPasses) {
  // Two processes run two phases in lockstep: start, complete, next phase.
  std::vector<TraceEvent> events;
  for (int ph = 0; ph < 2; ++ph) {
    for (int p = 0; p < 2; ++p) {
      at(events, make_event(Kind::kPhaseStart, 0, p, ph, p == 0 ? 1 : 0));
    }
    for (int p = 0; p < 2; ++p) {
      at(events, make_event(Kind::kPhaseComplete, 0, p, ph));
    }
  }
  const auto result = check_trace(events, 2, 2);
  EXPECT_TRUE(result.ok) << (result.violations.empty()
                                 ? ""
                                 : result.violations.front());
  EXPECT_TRUE(result.safety_ok);
  EXPECT_TRUE(result.m_bound_ok);
  EXPECT_TRUE(result.bursts.empty());
  EXPECT_EQ(result.successful_phases, 2u);
}

TEST(CheckTrace, RecoveryBurstWithinBoundPasses) {
  std::vector<TraceEvent> events;
  // Two victims perturbed into the same phase: m = 1.
  at(events, make_event(Kind::kFaultUndetectable, 0, 0, 0, 1));
  at(events, make_event(Kind::kFaultUndetectable, 0, 1, 0, 1));
  at(events, make_event(Kind::kSpecDesync, 0, -1));
  // Recovery starts m + 1 = 2 distinct phases before converging.
  at(events, make_event(Kind::kPhaseStart, 0, 0, 1, 1, 1));
  at(events, make_event(Kind::kPhaseStart, 0, 1, 0, 1, 1));
  at(events, make_event(Kind::kSpecResync, 0, -1, 0));
  const auto result = check_trace(events, 2, 2);
  EXPECT_TRUE(result.ok) << (result.violations.empty()
                                 ? ""
                                 : result.violations.front());
  ASSERT_EQ(result.bursts.size(), 1u);
  EXPECT_EQ(result.bursts[0].m, 1u);
  EXPECT_EQ(result.bursts[0].started_phases, 2u);
  EXPECT_TRUE(result.bursts[0].within_bound);
}

TEST(CheckTrace, TamperedTraceViolatesTheMBound) {
  // Same burst (m = 1) but a forged trace claims THREE distinct phases
  // started during recovery — more than m + 1, which Lemma 3.4 forbids.
  std::vector<TraceEvent> events;
  at(events, make_event(Kind::kFaultUndetectable, 0, 0, 0, 1));
  at(events, make_event(Kind::kSpecDesync, 0, -1));
  at(events, make_event(Kind::kPhaseStart, 0, 0, 0, 1, 1));
  at(events, make_event(Kind::kPhaseStart, 0, 0, 1, 1, 1));
  at(events, make_event(Kind::kPhaseStart, 0, 0, 2, 1, 1));
  at(events, make_event(Kind::kSpecResync, 0, -1, 0));
  const auto result = check_trace(events, 2, 4);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.m_bound_ok);
  ASSERT_EQ(result.bursts.size(), 1u);
  EXPECT_EQ(result.bursts[0].m, 1u);
  EXPECT_EQ(result.bursts[0].started_phases, 3u);
  EXPECT_FALSE(result.bursts[0].within_bound);
  ASSERT_FALSE(result.violations.empty());
}

TEST(CheckTrace, BurstStillOpenAtCaptureEndIsChecked) {
  std::vector<TraceEvent> events;
  at(events, make_event(Kind::kFaultUndetectable, 0, 0, 0, 0));
  at(events, make_event(Kind::kSpecDesync, 0, -1));
  at(events, make_event(Kind::kPhaseStart, 0, 0, 0, 1, 1));
  at(events, make_event(Kind::kPhaseStart, 0, 0, 1, 1, 1));
  at(events, make_event(Kind::kPhaseStart, 0, 0, 2, 1, 1));
  // No resync: the capture ends mid-recovery, the burst is closed as-is.
  const auto result = check_trace(events, 2, 4);
  ASSERT_EQ(result.bursts.size(), 1u);
  EXPECT_EQ(result.bursts[0].started_phases, 3u);
  EXPECT_FALSE(result.ok);
}

TEST(CheckTrace, MalformedProcessIdsAreViolations) {
  std::vector<TraceEvent> events;
  at(events, make_event(Kind::kPhaseStart, 0, 7, 0, 1));  // only 2 procs
  const auto result = check_trace(events, 2, 2);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.safety_ok);
}

TEST(CheckTrace, ValidatesARealFig7RecoveryTrace) {
  // The Figure 7 experiment end to end: every process of RB on a binary
  // tree is undetectably corrupted, the run is traced with a live
  // SpecMonitor, and the offline checker must confirm the recovery bound.
  constexpr int kHeight = 3;
  constexpr int kProcs = (1 << (kHeight + 1)) - 1;
  TraceRecorder recorder(std::size_t{1} << 18);
  core::SpecMonitor monitor(kProcs, 2);
  monitor.set_sink(&recorder);
  util::Rng rng(0xf167u);
  const double recovery =
      core::measure_recovery(kHeight, 0.01, rng, &recorder, &monitor);
  EXPECT_GE(recovery, 0.0);
  EXPECT_EQ(recorder.dropped(), 0u);

  const auto events = recorder.snapshot();
  ASSERT_FALSE(events.empty());
  const auto result = check_trace(events, kProcs, 2);
  EXPECT_TRUE(result.ok) << (result.violations.empty()
                                 ? ""
                                 : result.violations.front());
  ASSERT_GE(result.bursts.size(), 1u);
  for (const auto& burst : result.bursts) {
    EXPECT_TRUE(burst.within_bound)
        << "recovery started " << burst.started_phases
        << " phases with m = " << burst.m;
  }
}

TEST(CheckTrace, TamperedFig7TraceIsRejected) {
  // Take the real recovery trace and forge extra phase starts into the
  // burst until the bound breaks — the checker must notice.
  constexpr int kHeight = 2;
  constexpr int kProcs = (1 << (kHeight + 1)) - 1;
  TraceRecorder recorder(std::size_t{1} << 18);
  core::SpecMonitor monitor(kProcs, 2);
  monitor.set_sink(&recorder);
  util::Rng rng(0xf167u);
  (void)core::measure_recovery(kHeight, 0.01, rng, &recorder, &monitor);
  auto events = recorder.snapshot();
  ASSERT_FALSE(events.empty());
  const auto honest = check_trace(events, kProcs, 2);
  ASSERT_TRUE(honest.ok);
  ASSERT_GE(honest.bursts.size(), 1u);

  // Insert forged distinct-phase starts right after the first undetectable
  // fault; phase ids beyond m+1 distinct values break the bound.
  std::size_t fault_at = events.size();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind == Kind::kFaultUndetectable) {
      fault_at = i;
      break;
    }
  }
  ASSERT_LT(fault_at, events.size());
  std::vector<TraceEvent> forged(events.begin(),
                                 events.begin() + static_cast<std::ptrdiff_t>(fault_at) + 1);
  for (int ph = 0; ph < static_cast<int>(honest.bursts[0].m) + 2; ++ph) {
    forged.push_back(make_event(Kind::kPhaseStart, 0.0, 0, ph, 1, 1));
  }
  forged.insert(forged.end(),
                events.begin() + static_cast<std::ptrdiff_t>(fault_at) + 1,
                events.end());
  const auto result = check_trace(forged, kProcs, 2);
  EXPECT_FALSE(result.m_bound_ok);
  EXPECT_FALSE(result.ok);
}

}  // namespace
}  // namespace ftbar::trace
