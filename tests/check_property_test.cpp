// Property tests driven by the check/ subsystem: exhaustive verification of
// the paper's claims at small instances, including the exact boundaries the
// sampled simulation tier cannot see.
//
//  * MB's sequence-number domain: the paper requires L > 2N+1 (Section 5).
//    MB's computations are those of RB on the "doubled ring" of C = 2(N+1)
//    cells, i.e. a Dijkstra-style K-state token ring, whose tight bound is
//    K >= C-1. So the TRUE boundary sits one unit below the paper's: the
//    minimal working modulus is L = 2N+1 (= C-1), and at L = 2N (= C-2) an
//    adversarial scheduler can cycle outside the legitimate set forever.
//    These tests pin both sides of that boundary for N in {2, 3}.
//  * RB' — RB on the two intersecting rings of Figure 2(b) — is closed and
//    converges from the whole undetectable single-process corruption
//    neighbourhood, under BOTH execution semantics, for N <= 5.
//  * CB does NOT recover under maximal parallelism: lockstep execution is
//    deterministic and preserves a perturbed process's phase discrepancy
//    forever, while interleaving breaks the symmetry and recovers. This is
//    a genuine property of the program, and exactly why the paper's
//    stabilizing construction needs the sequence numbers of RB/MB.
#include <gtest/gtest.h>

#include <vector>

#include "check/checker.hpp"
#include "check/programs.hpp"
#include "core/mb.hpp"
#include "core/rb.hpp"

namespace ftbar::check {
namespace {

using core::MbProc;
using core::MbState;
using core::RbProc;
using core::RbState;

// ---------------------------------------------------------------------------
// MB sequence-number domain boundary.
// ---------------------------------------------------------------------------

/// The refinement mapping of the appendix (same as tests/core_mb_test.cpp):
/// cell 2j is process j's own (sn, cp, ph), cell 2j+1 is the copy cell
/// held by process j+1.
RbState map_to_doubled_ring(const MbState& s) {
  const std::size_t n = s.size();
  RbState r(2 * n);
  for (std::size_t j = 0; j < n; ++j) {
    const auto& p = s[j];
    const auto& q = s[(j + 1) % n];
    r[2 * j] = RbProc{p.sn, p.cp, p.ph};
    r[2 * j + 1] = RbProc{q.c_sn, q.c_cp, q.c_ph};
  }
  return r;
}

struct MbVerdict {
  bool converges = false;  ///< converges_outside: recovery under ANY schedule
  bool possible = false;   ///< legit_reachable_from_all: recovery reachable
};

/// Exhausts MB(S, L) from `roots` under interleaving and reports both
/// convergence queries against the doubled ring's one-token legitimacy.
/// With `symmetry` the exploration runs on the phase-rotation quotient
/// (sound here: the legitimacy predicate only reads sequence numbers).
MbVerdict check_mb(int procs, int seq_modulus, const std::vector<MbState>& roots,
                   bool symmetry = false) {
  auto b = make_mb_bundle(procs, /*num_phases=*/2, seq_modulus);
  CheckOptions opt;
  opt.record_edges = true;
  opt.max_states = 5'000'000;
  opt.symmetry = symmetry;
  Checker<MbProc> ck(b.actions, b.procs, opt, b.symmetry);
  const auto res = ck.run(roots, [](const MbState&) { return true; });
  EXPECT_FALSE(res.truncated);
  auto legit = [seq_modulus](const MbState& s) {
    const auto r = map_to_doubled_ring(s);
    return !core::rb_any_corrupt_sn(r) &&
           core::rb_ring_token_count(r, seq_modulus) == 1;
  };
  return {ck.converges_outside(legit), ck.legit_reachable_from_all(legit)};
}

/// A start state whose 2S sequence-number cells are overwritten with
/// `cells` (doubled-ring order); control variables stay at start values.
MbState witness_root(int procs, int seq_modulus, const std::vector<int>& cells) {
  auto b = make_mb_bundle(procs, 2, seq_modulus);
  MbState root = b.start_roots.front();
  const std::size_t n = root.size();
  for (std::size_t j = 0; j < n; ++j) {
    root[j].sn = cells[2 * j];
    root[(j + 1) % n].c_sn = cells[2 * j + 1];
  }
  return root;
}

// The witness configurations below were found by exhausting the pure
// sequence-number projection (the C-cell, K-state Dijkstra ring that the
// doubled ring reduces to when control variables are ignored) and taking a
// state on a cycle outside the one-token set. They are rotating two-token
// waves: under the adversarial schedule the follower cells keep chasing the
// root's value without the two tokens ever merging.
TEST(MbSeqBoundary, ModulusTwoNAdmitsNonConvergentCycleN2) {
  // N = 2 (S = 3 processes, C = 6 cells), L = 2N = 4 = C - 2.
  const auto root = witness_root(3, 4, {0, 0, 3, 2, 1, 0});
  const auto v = check_mb(3, 4, {root});
  EXPECT_FALSE(v.converges) << "L = 2N must admit a cycle outside legit";
  // Recovery stays POSSIBLE — the violation needs an adversarial demon;
  // randomized runs (the simulation tier) converge with probability 1.
  EXPECT_TRUE(v.possible);
}

TEST(MbSeqBoundary, ModulusTwoNAdmitsNonConvergentCycleN3) {
  // N = 3 (S = 4 processes, C = 8 cells), L = 2N = 6 = C - 2.
  const auto root = witness_root(4, 6, {0, 0, 5, 4, 3, 2, 1, 0});
  const auto v = check_mb(4, 6, {root});
  EXPECT_FALSE(v.converges);
  EXPECT_TRUE(v.possible);
}

TEST(MbSeqBoundary, ModulusTwoNPlusOneConvergesFromWitness) {
  // The SAME sequence-number configurations one modulus up: L = 2N+1 = C-1
  // is the Dijkstra-tight minimum, one unit below the paper's L > 2N+1.
  const auto v2 = check_mb(3, 5, {witness_root(3, 5, {0, 0, 3, 2, 1, 0})});
  EXPECT_TRUE(v2.converges);
  const auto v3 = check_mb(4, 7, {witness_root(4, 7, {0, 0, 5, 4, 3, 2, 1, 0})});
  EXPECT_TRUE(v3.converges);
}

TEST(MbSeqBoundary, PaperModulusConvergesFromWitness) {
  // L = 2N+2 = 2S, the smallest modulus satisfying the paper's L > 2N+1.
  const auto v = check_mb(4, 8, {witness_root(4, 8, {0, 0, 5, 4, 3, 2, 1, 0})});
  EXPECT_TRUE(v.converges);
}

TEST(MbSeqBoundary, FullSnSpaceEnumerationN2) {
  // Not just the crafted witness: enumerate EVERY assignment of valid
  // sequence numbers to the 6 cells (control variables at start values) for
  // N = 2 and confirm the verdict flips across the boundary. 4^6 = 4096
  // roots at L = 4, 5^6 = 15625 at L = 5; both exhaust in well under a
  // second.
  for (const int l : {4, 5}) {
    auto b = make_mb_bundle(3, 2, l);
    const auto start = b.start_roots.front();
    std::vector<MbState> roots;
    std::vector<int> cells(6, 0);
    for (;;) {
      MbState s = start;
      for (std::size_t j = 0; j < 3; ++j) {
        s[j].sn = cells[2 * j];
        s[(j + 1) % 3].c_sn = cells[2 * j + 1];
      }
      roots.push_back(s);
      std::size_t k = 0;
      for (; k < cells.size(); ++k) {
        if (++cells[k] < l) break;
        cells[k] = 0;
      }
      if (k == cells.size()) break;
    }
    const auto v = check_mb(3, l, roots);
    EXPECT_EQ(v.converges, l >= 5) << "modulus " << l;
    EXPECT_TRUE(v.possible) << "modulus " << l;
  }
}

// ---------------------------------------------------------------------------
// RB' on the two intersecting rings of Figure 2(b).
// ---------------------------------------------------------------------------

class RbPrime : public ::testing::TestWithParam<int> {};

TEST_P(RbPrime, ClosureAndConvergenceUnderBothSemantics) {
  const int n = GetParam();
  const auto b = make_rbp_bundle(n);
  for (const auto sem :
       {sim::Semantics::kInterleaving, sim::Semantics::kMaxParallel}) {
    CheckOptions opt;
    opt.semantics = sem;
    opt.record_edges = true;
    Checker<RbProc> ck(b.actions, b.procs, opt);

    // Closure: the fault-free reachable set satisfies the safety invariant.
    const auto closure = ck.run(b.start_roots, b.safe);
    EXPECT_TRUE(closure.ok()) << "semantics " << static_cast<int>(sem);

    // Convergence: from the whole undetectable single-process corruption
    // neighbourhood, the start state is reachable from every state AND the
    // non-legit subgraph is acyclic (recovery under any scheduling).
    const auto res =
        ck.run(b.perturbed_roots, [](const RbState&) { return true; });
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(ck.legit_reachable_from_all(b.legit));
    EXPECT_TRUE(ck.converges_outside(b.legit));
  }
}

// two_ring() needs at least 3 processes; 5 keeps both semantics sub-second.
INSTANTIATE_TEST_SUITE_P(Sizes, RbPrime, ::testing::Values(3, 4, 5));

// ---------------------------------------------------------------------------
// CB under maximal parallelism.
// ---------------------------------------------------------------------------

class CbMaxPar : public ::testing::TestWithParam<int> {};

TEST_P(CbMaxPar, LockstepPreservesPhaseDiscrepancyForever) {
  const int n = GetParam();
  const auto b = make_cb_bundle(n);

  CheckOptions opt;
  opt.semantics = sim::Semantics::kMaxParallel;
  opt.record_edges = true;
  Checker<core::CbProc> ck(b.actions, b.procs, opt);
  const auto res =
      ck.run(b.perturbed_roots, [](const core::CbState&) { return true; });
  ASSERT_TRUE(res.ok());
  // Maximal parallelism makes CB deterministic (every process with an
  // enabled action fires), so a perturbed phase can never catch up with the
  // rest: recovery is not merely unguaranteed, it is UNREACHABLE.
  EXPECT_FALSE(ck.legit_reachable_from_all(b.legit));
  EXPECT_FALSE(ck.converges_outside(b.legit));

  // Interleaving breaks the lockstep symmetry: the same perturbed roots
  // recover, and even under an unfair demon (acyclic non-legit subgraph).
  opt.semantics = sim::Semantics::kInterleaving;
  Checker<core::CbProc> il(b.actions, b.procs, opt);
  const auto ires =
      il.run(b.perturbed_roots, [](const core::CbState&) { return true; });
  ASSERT_TRUE(ires.ok());
  EXPECT_TRUE(il.legit_reachable_from_all(b.legit));
  EXPECT_TRUE(il.converges_outside(b.legit));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CbMaxPar, ::testing::Values(3, 4));

// ---------------------------------------------------------------------------
// Symmetry reduction preserves every pinned verdict.
// ---------------------------------------------------------------------------
//
// The three property families above are this repo's acceptance pins for the
// checker. Quotient exploration must reproduce each verdict bit-for-bit —
// including the NEGATIVE ones, where a reduction bug could manufacture or
// hide a recovery path.

TEST(SymmetryVerdicts, CbMaxParNonRecoveryHoldsOnTheQuotient) {
  const auto b = make_cb_bundle(3);
  for (const bool symmetry : {false, true}) {
    CheckOptions opt;
    opt.semantics = sim::Semantics::kMaxParallel;
    opt.record_edges = true;
    opt.symmetry = symmetry;
    Checker<core::CbProc> ck(b.actions, b.procs, opt, b.symmetry);
    const auto res =
        ck.run(b.perturbed_roots, [](const core::CbState&) { return true; });
    ASSERT_TRUE(res.ok()) << "symmetry " << symmetry;
    EXPECT_FALSE(ck.legit_reachable_from_all(b.legit)) << "symmetry " << symmetry;
    EXPECT_FALSE(ck.converges_outside(b.legit)) << "symmetry " << symmetry;
  }
}

TEST(SymmetryVerdicts, RbGuaranteedRecoveryHoldsOnTheQuotient) {
  // The exhaustive backing of the Lemma 3.4 m-bound (see
  // tests/core_rb_mbound_test.cpp): recovery guaranteed from the whole
  // undetectable neighbourhood, both semantics.
  const auto b = make_rb_bundle(4);
  for (const auto sem :
       {sim::Semantics::kInterleaving, sim::Semantics::kMaxParallel}) {
    for (const bool symmetry : {false, true}) {
      CheckOptions opt;
      opt.semantics = sem;
      opt.record_edges = true;
      opt.symmetry = symmetry;
      Checker<RbProc> ck(b.actions, b.procs, opt, b.symmetry);
      const auto res =
          ck.run(b.perturbed_roots, [](const RbState&) { return true; });
      ASSERT_TRUE(res.ok());
      EXPECT_TRUE(ck.legit_reachable_from_all(b.legit))
          << "semantics " << static_cast<int>(sem) << " symmetry " << symmetry;
      EXPECT_TRUE(ck.converges_outside(b.legit))
          << "semantics " << static_cast<int>(sem) << " symmetry " << symmetry;
    }
  }
}

TEST(SymmetryVerdicts, MbSeqBoundaryHoldsOnTheQuotient) {
  // L = 2N still admits the non-convergent cycle, L = 2N+1 still converges
  // — from the same witness roots, explored on the quotient.
  const auto v4 = check_mb(3, 4, {witness_root(3, 4, {0, 0, 3, 2, 1, 0})},
                           /*symmetry=*/true);
  EXPECT_FALSE(v4.converges);
  EXPECT_TRUE(v4.possible);
  const auto v5 = check_mb(3, 5, {witness_root(3, 5, {0, 0, 3, 2, 1, 0})},
                           /*symmetry=*/true);
  EXPECT_TRUE(v5.converges);
  EXPECT_TRUE(v5.possible);
}

}  // namespace
}  // namespace ftbar::check
