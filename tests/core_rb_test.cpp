#include "core/rb.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sim/model_check.hpp"
#include "sim/step_engine.hpp"

namespace ftbar::core {
namespace {

struct RbHash {
  std::size_t operator()(const RbState& s) const {
    std::size_t h = 1469598103934665603ULL;
    for (const auto& p : s) {
      h ^= (static_cast<std::size_t>(p.sn + 3) * 131u) ^
           (static_cast<std::size_t>(p.cp) * 31u) ^ static_cast<std::size_t>(p.ph);
      h *= 1099511628211ULL;
    }
    return h;
  }
};

struct RbRunParam {
  const char* name;
  int num_procs;
  int arity;  // 0 = ring, 1 = two_ring, else k-ary tree
  int num_phases;
  sim::Semantics semantics;
  std::uint64_t seed;
};

RbOptions options_for(const RbRunParam& p) {
  using topology::Topology;
  std::shared_ptr<const Topology> topo;
  if (p.arity == 0) {
    topo = std::make_shared<const Topology>(Topology::ring(p.num_procs));
  } else if (p.arity == 1) {
    topo = std::make_shared<const Topology>(Topology::two_ring(p.num_procs));
  } else {
    topo = std::make_shared<const Topology>(Topology::kary_tree(p.num_procs, p.arity));
  }
  return RbOptions{topo, p.num_phases, 0};
}

// ---------------------------------------------------------------------------
// Fault-free behaviour (Lemma 4.1.1) across topologies and semantics
// ---------------------------------------------------------------------------

class RbFaultFree : public ::testing::TestWithParam<RbRunParam> {};

TEST_P(RbFaultFree, SatisfiesSpecification) {
  const auto param = GetParam();
  const auto opt = options_for(param);
  SpecMonitor monitor(opt.topo->size(), opt.num_phases);
  sim::StepEngine<RbProc> eng(rb_start_state(opt), make_rb_actions(opt, &monitor),
                              util::Rng(param.seed), param.semantics);
  const auto target = static_cast<std::size_t>(3 * param.num_phases);
  const auto reached = eng.run_until(
      [&](const RbState&) { return monitor.successful_phases() >= target; },
      500'000);
  ASSERT_TRUE(reached.has_value())
      << "Progress violated: " << monitor.successful_phases() << " phases";
  EXPECT_TRUE(monitor.safety_ok()) << monitor.violations().front();
  EXPECT_EQ(monitor.failed_instances(), 0u);
  EXPECT_EQ(monitor.total_instances(), monitor.successful_phases());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RbFaultFree,
    ::testing::Values(
        RbRunParam{"ring2", 2, 0, 2, sim::Semantics::kInterleaving, 1},
        RbRunParam{"ring4", 4, 0, 3, sim::Semantics::kInterleaving, 2},
        RbRunParam{"ring8", 8, 0, 2, sim::Semantics::kMaxParallel, 3},
        RbRunParam{"tworing5", 5, 1, 2, sim::Semantics::kInterleaving, 4},
        RbRunParam{"tworing9", 9, 1, 4, sim::Semantics::kMaxParallel, 5},
        RbRunParam{"btree7", 7, 2, 2, sim::Semantics::kInterleaving, 6},
        RbRunParam{"btree15", 15, 2, 3, sim::Semantics::kMaxParallel, 7},
        RbRunParam{"tree31", 31, 2, 2, sim::Semantics::kMaxParallel, 8},
        RbRunParam{"quad21", 21, 4, 2, sim::Semantics::kMaxParallel, 9}),
    [](const auto& info) { return info.param.name; });

TEST(RbFaultFree, RingAlwaysHasExactlyOneToken) {
  const auto opt = rb_ring_options(5);
  sim::StepEngine<RbProc> eng(rb_start_state(opt), make_rb_actions(opt),
                              util::Rng(77));
  for (int i = 0; i < 2'000; ++i) {
    ASSERT_EQ(rb_ring_token_count(eng.state(), opt.k()), 1)
        << "token invariant broken at step " << i;
    eng.step();
  }
}

// ---------------------------------------------------------------------------
// Masking tolerance to detectable faults (Lemma 4.1.2)
// ---------------------------------------------------------------------------

class RbDetectable : public ::testing::TestWithParam<RbRunParam> {};

TEST_P(RbDetectable, MasksDetectableFaults) {
  const auto param = GetParam();
  const auto opt = options_for(param);
  SpecMonitor monitor(opt.topo->size(), opt.num_phases);
  sim::StepEngine<RbProc> eng(rb_start_state(opt), make_rb_actions(opt, &monitor),
                              util::Rng(param.seed), param.semantics);
  util::Rng fault_rng(param.seed ^ 0xfefeULL);
  const auto perturb = rb_detectable_fault(opt, &monitor);

  // As in CB: corrupting every process detectably is classified as an
  // undetectable fault (footnote 2), so the injector keeps at least one
  // process with a valid sequence number.
  const double f = 0.01;
  std::size_t steps = 0;
  const auto target = static_cast<std::size_t>(4 * param.num_phases);
  while (monitor.successful_phases() < target && steps < 2'000'000) {
    auto& state = eng.mutable_state();
    for (std::size_t j = 0; j < state.size(); ++j) {
      if (!fault_rng.bernoulli(f)) continue;
      int intact = 0;
      for (std::size_t k = 0; k < state.size(); ++k) {
        if (k != j && sn_valid(state[k].sn)) ++intact;
      }
      if (intact > 0) perturb(j, state[j], fault_rng);
    }
    eng.step();
    ++steps;
  }
  EXPECT_TRUE(monitor.safety_ok()) << monitor.violations().front();
  EXPECT_GE(monitor.successful_phases(), target)
      << "Progress violated under detectable faults";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RbDetectable,
    ::testing::Values(
        RbRunParam{"ring3", 3, 0, 2, sim::Semantics::kInterleaving, 31},
        RbRunParam{"ring5", 5, 0, 3, sim::Semantics::kInterleaving, 32},
        RbRunParam{"ring4mp", 4, 0, 2, sim::Semantics::kMaxParallel, 33},
        RbRunParam{"tworing6", 6, 1, 2, sim::Semantics::kInterleaving, 34},
        RbRunParam{"btree7", 7, 2, 2, sim::Semantics::kInterleaving, 35},
        RbRunParam{"btree15mp", 15, 2, 2, sim::Semantics::kMaxParallel, 36}),
    [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Token-ring invariants under detectable faults, model-checked
// (Lemma 4.1.2 properties (a)-(c) of the underlying token program)
// ---------------------------------------------------------------------------

TEST(RbModelCheck, DetectableFaultInvariants) {
  const auto opt = rb_ring_options(3, 2);
  auto actions = make_rb_actions(opt);
  // Deterministic detectable-fault actions: one per (process, target phase),
  // gated so that at least one other process keeps a valid sequence number
  // (footnote 2: corrupting everything detectably is undetectable-class).
  for (int j = 0; j < 3; ++j) {
    for (int ph = 0; ph < 2; ++ph) {
      const auto uj = static_cast<std::size_t>(j);
      actions.push_back(sim::make_action<RbProc>(
          "F@" + std::to_string(j) + "," + std::to_string(ph), j,
          [uj](const RbState& s) {
            for (std::size_t k = 0; k < s.size(); ++k) {
              if (k != uj && sn_valid(s[k].sn)) return true;
            }
            return false;
          },
          [uj, ph](RbState& s) {
            s[uj].sn = kSnBot;
            s[uj].cp = Cp::kError;
            s[uj].ph = ph;
          }));
    }
  }
  sim::Explorer<RbProc, RbHash> ex(std::move(actions), RbHash{}, 4'000'000);
  const auto result = ex.explore(
      {rb_start_state(opt)}, [&](const RbState& s) {
        // (a) at most one token among valid sequence numbers;
        if (rb_ring_token_count(s, opt.k()) > 1) return false;
        // (b) cp = error exactly when sn is corrupted;
        for (const auto& p : s) {
          if ((p.cp == Cp::kError) != !sn_valid(p.sn)) return false;
        }
        // (c) process 0 never reaches TOP (never executes T5).
        return s[0].sn != kSnTop;
      });
  EXPECT_FALSE(result.truncated);
  EXPECT_FALSE(result.violation.has_value())
      << "invariant violated via " << result.violated_by;
}

// ---------------------------------------------------------------------------
// Stabilizing tolerance to undetectable faults (Lemma 4.1.3)
// ---------------------------------------------------------------------------

TEST(RbModelCheck, StabilizesFromEveryState) {
  // Exhaustive: from EVERY state of a 3-process ring (K=4, n=2), a start
  // state is reachable again.
  const auto opt = rb_ring_options(3, 2);
  const int k = opt.k();
  std::vector<RbState> roots;
  std::vector<int> sn_domain;
  for (int v = 0; v < k; ++v) sn_domain.push_back(v);
  sn_domain.push_back(kSnBot);
  sn_domain.push_back(kSnTop);
  for (int s0 : sn_domain) {
    for (int s1 : sn_domain) {
      for (int s2 : sn_domain) {
        for (int c0 = 0; c0 < 4; ++c0) {      // root: no repeat
          for (int c1 = 0; c1 < 5; ++c1) {
            for (int c2 = 0; c2 < 5; ++c2) {
              for (int p0 = 0; p0 < 2; ++p0) {
                for (int p1 = 0; p1 < 2; ++p1) {
                  for (int p2 = 0; p2 < 2; ++p2) {
                    roots.push_back(RbState{
                        RbProc{s0, static_cast<Cp>(c0), p0},
                        RbProc{s1, static_cast<Cp>(c1), p1},
                        RbProc{s2, static_cast<Cp>(c2), p2}});
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  sim::Explorer<RbProc, RbHash> ex(make_rb_actions(opt), RbHash{}, 4'000'000);
  const auto result = ex.explore(roots, [](const RbState&) { return true; });
  ASSERT_FALSE(result.truncated);
  EXPECT_TRUE(ex.legit_reachable_from_all(
      [](const RbState& s) { return rb_is_start_state(s); }))
      << "some state cannot recover to a start state";
}

TEST(RbModelCheck, TwoLeafTopologyStabilizesFromEveryState) {
  // The multi-leaf root guard (Section 4.2's "sn.0 = sn.N1 = sn.N2 before
  // executing T1") is the delicate spot: with a corrupted root and UNEQUAL
  // valid leaves, only the BOT/TOP escape disjunct prevents deadlock.
  // Exhaustive check on the 3-process two-ring (root + two leaves).
  const auto topo = std::make_shared<const topology::Topology>(
      topology::Topology::two_ring(3));
  const RbOptions opt{topo, 2, 0};
  const int k = opt.k();
  std::vector<int> sn_domain;
  for (int v = 0; v < k; ++v) sn_domain.push_back(v);
  sn_domain.push_back(kSnBot);
  sn_domain.push_back(kSnTop);
  std::vector<RbState> roots;
  for (int s0 : sn_domain) {
    for (int s1 : sn_domain) {
      for (int s2 : sn_domain) {
        for (int c0 = 0; c0 < 4; ++c0) {
          for (int c1 = 0; c1 < 5; ++c1) {
            for (int c2 = 0; c2 < 5; ++c2) {
              for (int p0 = 0; p0 < 2; ++p0) {
                for (int p1 = 0; p1 < 2; ++p1) {
                  for (int p2 = 0; p2 < 2; ++p2) {
                    roots.push_back(RbState{RbProc{s0, static_cast<Cp>(c0), p0},
                                            RbProc{s1, static_cast<Cp>(c1), p1},
                                            RbProc{s2, static_cast<Cp>(c2), p2}});
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  sim::Explorer<RbProc, RbHash> ex(make_rb_actions(opt), RbHash{}, 6'000'000);
  const auto result = ex.explore(roots, [](const RbState&) { return true; });
  ASSERT_FALSE(result.truncated);
  EXPECT_TRUE(ex.legit_reachable_from_all(
      [](const RbState& s) { return rb_is_start_state(s); }))
      << "a two-leaf state cannot recover (multi-leaf T1 guard deadlock)";
}

class RbStabilization : public ::testing::TestWithParam<RbRunParam> {};

TEST_P(RbStabilization, RecoversAndResatisfiesSpec) {
  const auto param = GetParam();
  const auto opt = options_for(param);
  SpecMonitor monitor(opt.topo->size(), opt.num_phases);
  sim::StepEngine<RbProc> eng(rb_start_state(opt), make_rb_actions(opt, &monitor),
                              util::Rng(param.seed), param.semantics);
  util::Rng fault_rng(param.seed ^ 0xabcdULL);
  const auto perturb = rb_undetectable_fault(opt, &monitor);

  monitor.on_undetectable_fault();
  for (std::size_t j = 0; j < eng.mutable_state().size(); ++j) {
    perturb(j, eng.mutable_state()[j], fault_rng);
  }

  const auto recovered =
      eng.run_until([](const RbState& s) { return rb_is_start_state(s); }, 1'000'000);
  ASSERT_TRUE(recovered.has_value()) << "did not stabilize";

  monitor.resync(eng.state().front().ph);
  const auto target = static_cast<std::size_t>(3 * param.num_phases);
  const auto ok = eng.run_until(
      [&](const RbState&) { return monitor.successful_phases() >= target; },
      1'000'000);
  ASSERT_TRUE(ok.has_value()) << "no progress after recovery";
  EXPECT_TRUE(monitor.safety_ok()) << monitor.violations().front();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RbStabilization,
    ::testing::Values(
        RbRunParam{"ring3a", 3, 0, 2, sim::Semantics::kInterleaving, 201},
        RbRunParam{"ring3b", 3, 0, 2, sim::Semantics::kInterleaving, 202},
        RbRunParam{"ring6", 6, 0, 3, sim::Semantics::kInterleaving, 203},
        RbRunParam{"ring6mp", 6, 0, 3, sim::Semantics::kMaxParallel, 204},
        RbRunParam{"tworing7", 7, 1, 2, sim::Semantics::kInterleaving, 205},
        RbRunParam{"btree7", 7, 2, 2, sim::Semantics::kInterleaving, 206},
        RbRunParam{"btree15mp", 15, 2, 2, sim::Semantics::kMaxParallel, 207},
        RbRunParam{"quad13mp", 13, 4, 4, sim::Semantics::kMaxParallel, 208}),
    [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

TEST(RbHelpers, StartStatePredicate) {
  const auto opt = rb_ring_options(4);
  auto s = rb_start_state(opt, 1);
  EXPECT_TRUE(rb_is_start_state(s));
  s[2].cp = Cp::kExecute;
  EXPECT_FALSE(rb_is_start_state(s));
  s = rb_start_state(opt);
  s[1].sn = 3;
  EXPECT_FALSE(rb_is_start_state(s));
  s = rb_start_state(opt);
  s[0].sn = kSnBot;
  for (auto& p : s) p.sn = kSnBot;
  EXPECT_FALSE(rb_is_start_state(s));
}

TEST(RbHelpers, TokenCountOnFreshRing) {
  const auto opt = rb_ring_options(4);
  const auto s = rb_start_state(opt);
  // Uniform sequence numbers: exactly one token, held at the last process.
  EXPECT_EQ(rb_ring_token_count(s, opt.k()), 1);
}

TEST(RbHelpers, TokenCountIgnoresCorruptPairs) {
  const auto opt = rb_ring_options(3);
  RbState s = rb_start_state(opt);
  s[1].sn = kSnBot;
  // Pairs (0,1) and (1,2) are corrupt; pair (2,0) matches -> one token.
  EXPECT_EQ(rb_ring_token_count(s, opt.k()), 1);
  s[0].sn = kSnTop;
  EXPECT_EQ(rb_ring_token_count(s, opt.k()), 0);
}

TEST(RbHelpers, CorruptSnPredicate) {
  const auto opt = rb_ring_options(3);
  RbState s = rb_start_state(opt);
  EXPECT_FALSE(rb_any_corrupt_sn(s));
  s[2].sn = kSnTop;
  EXPECT_TRUE(rb_any_corrupt_sn(s));
}

TEST(RbHelpers, OptionsDefaultModulusExceedsSize) {
  EXPECT_EQ(rb_ring_options(5).k(), 6);
  EXPECT_EQ(rb_tree_options(7, 2).k(), 8);
  RbOptions opt = rb_ring_options(5);
  opt.seq_modulus = 9;
  EXPECT_EQ(opt.k(), 9);
}

TEST(RbRules, RootLifecycle) {
  const PhaseRing ring(4);
  const CpPh leaf_ready{Cp::kReady, 1};
  // ready + all leaves ready -> execute (start).
  auto r = rb_root_update(CpPh{Cp::kReady, 1}, std::vector<CpPh>{leaf_ready}, ring);
  EXPECT_EQ(r.next.cp, Cp::kExecute);
  EXPECT_EQ(r.event, RbEvent::kStart);
  // execute -> success (complete), unconditionally.
  r = rb_root_update(CpPh{Cp::kExecute, 1}, std::vector<CpPh>{leaf_ready}, ring);
  EXPECT_EQ(r.next.cp, Cp::kSuccess);
  EXPECT_EQ(r.event, RbEvent::kComplete);
  // success + all leaves success same phase -> increment, ready.
  r = rb_root_update(CpPh{Cp::kSuccess, 1},
                     std::vector<CpPh>{CpPh{Cp::kSuccess, 1}}, ring);
  EXPECT_EQ(r.next.cp, Cp::kReady);
  EXPECT_EQ(r.next.ph, 2);
  // success + a repeat leaf -> re-execute the leaf's phase.
  r = rb_root_update(CpPh{Cp::kSuccess, 1},
                     std::vector<CpPh>{CpPh{Cp::kRepeat, 1}}, ring);
  EXPECT_EQ(r.next.cp, Cp::kReady);
  EXPECT_EQ(r.next.ph, 1);
  // error -> ready, copying the leaf's phase.
  r = rb_root_update(CpPh{Cp::kError, 3},
                     std::vector<CpPh>{CpPh{Cp::kSuccess, 1}}, ring);
  EXPECT_EQ(r.next.cp, Cp::kReady);
  EXPECT_EQ(r.next.ph, 1);
  // ready but a leaf lags -> no transition.
  r = rb_root_update(CpPh{Cp::kReady, 1},
                     std::vector<CpPh>{CpPh{Cp::kSuccess, 1}}, ring);
  EXPECT_EQ(r.next.cp, Cp::kReady);
  EXPECT_EQ(r.event, RbEvent::kNone);
}

TEST(RbRules, RootRequiresAllLeavesAligned) {
  const PhaseRing ring(2);
  // Two leaves, one lagging in phase: no start.
  auto r = rb_root_update(
      CpPh{Cp::kReady, 0},
      std::vector<CpPh>{CpPh{Cp::kReady, 0}, CpPh{Cp::kReady, 1}}, ring);
  EXPECT_EQ(r.event, RbEvent::kNone);
  // Both aligned: start.
  r = rb_root_update(CpPh{Cp::kReady, 0},
                     std::vector<CpPh>{CpPh{Cp::kReady, 0}, CpPh{Cp::kReady, 0}},
                     ring);
  EXPECT_EQ(r.event, RbEvent::kStart);
}

TEST(RbRules, FollowerLifecycle) {
  const PhaseRing ring(4);
  // ready follows execute.
  auto r = rb_follower_update(CpPh{Cp::kReady, 1}, CpPh{Cp::kExecute, 1}, ring);
  EXPECT_EQ(r.next.cp, Cp::kExecute);
  EXPECT_EQ(r.event, RbEvent::kStart);
  // execute follows success.
  r = rb_follower_update(CpPh{Cp::kExecute, 1}, CpPh{Cp::kSuccess, 1}, ring);
  EXPECT_EQ(r.next.cp, Cp::kSuccess);
  EXPECT_EQ(r.event, RbEvent::kComplete);
  // success follows ready (next phase propagates).
  r = rb_follower_update(CpPh{Cp::kSuccess, 1}, CpPh{Cp::kReady, 2}, ring);
  EXPECT_EQ(r.next.cp, Cp::kReady);
  EXPECT_EQ(r.next.ph, 2);
  // error is converted to repeat when any wave passes.
  r = rb_follower_update(CpPh{Cp::kError, 3}, CpPh{Cp::kSuccess, 1}, ring);
  EXPECT_EQ(r.next.cp, Cp::kRepeat);
  EXPECT_EQ(r.event, RbEvent::kNone);
  // ...except a ready wave, which resets it directly.
  r = rb_follower_update(CpPh{Cp::kError, 3}, CpPh{Cp::kReady, 2}, ring);
  EXPECT_EQ(r.next.cp, Cp::kReady);
  // an executing process cut off by a ready wave aborts.
  r = rb_follower_update(CpPh{Cp::kExecute, 1}, CpPh{Cp::kReady, 2}, ring);
  EXPECT_EQ(r.next.cp, Cp::kRepeat);
  EXPECT_EQ(r.event, RbEvent::kAbort);
  // repeat propagates through executing processes, aborting them.
  r = rb_follower_update(CpPh{Cp::kExecute, 1}, CpPh{Cp::kRepeat, 1}, ring);
  EXPECT_EQ(r.next.cp, Cp::kRepeat);
  EXPECT_EQ(r.event, RbEvent::kAbort);
  // matching states pass through unchanged.
  r = rb_follower_update(CpPh{Cp::kExecute, 1}, CpPh{Cp::kExecute, 1}, ring);
  EXPECT_EQ(r.next.cp, Cp::kExecute);
  EXPECT_EQ(r.event, RbEvent::kNone);
}

}  // namespace
}  // namespace ftbar::core
