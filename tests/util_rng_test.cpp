#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace ftbar::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 5);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, UniformBoundZeroIsZero) {
  Rng r(3);
  EXPECT_EQ(r.uniform(0), 0u);
}

TEST(Rng, UniformStaysInBound) {
  Rng r(11);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(r.uniform(7), 7u);
}

TEST(Rng, UniformCoversAllValues) {
  Rng r(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(r.uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng r(17);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[r.uniform(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 0.05 * kDraws / kBuckets);
  }
}

TEST(Rng, UniformRangeInclusive) {
  Rng r(19);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1'000; ++i) {
    const auto v = r.uniform_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng r(23);
  for (int i = 0; i < 10'000; ++i) {
    const double x = r.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-0.5));
    EXPECT_TRUE(r.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng r(31);
  constexpr int kDraws = 100'000;
  int hits = 0;
  for (int i = 0; i < kDraws; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng r(37);
  constexpr int kDraws = 200'000;
  const double rate = 2.5;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) sum += r.exponential(rate);
  EXPECT_NEAR(sum / kDraws, 1.0 / rate, 0.01);
}

TEST(Rng, ExponentialNonPositiveRateIsInfinite) {
  Rng r(41);
  EXPECT_TRUE(std::isinf(r.exponential(0.0)));
  EXPECT_TRUE(std::isinf(r.exponential(-1.0)));
}

TEST(Rng, ForkStreamsAreIndependent) {
  Rng base(43);
  Rng a = base.fork(0);
  Rng b = base.fork(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 5);
}

TEST(Rng, ForkIsDeterministic) {
  Rng base1(47), base2(47);
  Rng a = base1.fork(9);
  Rng b = base2.fork(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
}

}  // namespace
}  // namespace ftbar::util
