#include "core/single_phase.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ftbar::core {
namespace {

TEST(SinglePhaseBarrier, IteratesWithoutPhaseBookkeeping) {
  constexpr int kThreads = 3;
  SinglePhaseBarrier bar(kThreads);
  std::vector<int> iterations(kThreads, 0);
  std::vector<std::thread> threads;
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      for (int done = 0; done < 7;) {
        if (!bar.arrive_and_wait(tid).repeated) {
          ++done;
          ++iterations[static_cast<std::size_t>(tid)];
        }
      }
      bar.finalize(tid);
    });
  }
  for (auto& t : threads) t.join();
  for (int v : iterations) EXPECT_EQ(v, 7);
}

TEST(SinglePhaseBarrier, StateLossRepeatsTheIteration) {
  constexpr int kThreads = 2;
  SinglePhaseBarrier bar(kThreads);
  std::vector<int> repeats(kThreads, 0);
  std::vector<std::thread> threads;
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      int arrives = 0;
      for (int done = 0; done < 4;) {
        const bool ok = !(tid == 1 && arrives == 1);
        ++arrives;
        const auto o = bar.arrive_and_wait(tid, ok);
        if (o.repeated) {
          ++repeats[static_cast<std::size_t>(tid)];
        } else {
          ++done;
        }
      }
      bar.finalize(tid);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(repeats[0], 1);
  EXPECT_EQ(repeats[1], 1);
}

TEST(SinglePhaseBarrier, ReplicationSurvivesLossyLinks) {
  BarrierOptions opt;
  opt.link_faults.drop = 0.1;
  opt.num_phases = 17;  // caller's value is overridden by the replication
  SinglePhaseBarrier bar(2, opt);
  std::vector<std::thread> threads;
  std::vector<int> done(2, 0);
  for (int tid = 0; tid < 2; ++tid) {
    threads.emplace_back([&, tid] {
      while (done[static_cast<std::size_t>(tid)] < 5) {
        if (!bar.arrive_and_wait(tid).repeated) {
          ++done[static_cast<std::size_t>(tid)];
        }
      }
      bar.finalize(tid);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(done[0], 5);
  EXPECT_EQ(done[1], 5);
}

}  // namespace
}  // namespace ftbar::core
