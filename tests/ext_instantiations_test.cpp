// Tests for the Section 7 problem instantiations: atomic commitment,
// clock unison, and phase synchronization.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "ext/atomic_commit.hpp"
#include "ext/clock_unison.hpp"
#include "ext/phase_sync.hpp"

namespace ftbar::ext {
namespace {

// ---------------------------------------------------------------------------
// Atomic commitment
// ---------------------------------------------------------------------------

TEST(AtomicCommit, AllHealthySubtransactionsCommitFirstTry) {
  const int n = 3;
  AtomicCommitter committer(n);
  std::atomic<int> total_attempts{0};
  std::vector<std::thread> threads;
  for (int id = 0; id < n; ++id) {
    threads.emplace_back([&, id] {
      for (int txn = 0; txn < 4; ++txn) {
        total_attempts += committer.run_transaction(id, [](int) { return true; });
      }
      committer.finalize(id);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(total_attempts.load(), 4 * n) << "every transaction needed one attempt";
}

TEST(AtomicCommit, FailedSubtransactionForcesGlobalRetry) {
  const int n = 3;
  AtomicCommitter committer(n);
  std::vector<int> attempts(static_cast<std::size_t>(n), 0);
  std::vector<std::thread> threads;
  for (int id = 0; id < n; ++id) {
    threads.emplace_back([&, id] {
      // Participant 1's subtransaction fails on its first attempt.
      attempts[static_cast<std::size_t>(id)] = committer.run_transaction(
          id, [id](int attempt) { return !(id == 1 && attempt == 1); });
      committer.finalize(id);
    });
  }
  for (auto& t : threads) t.join();
  // Everyone needed exactly two attempts: the failed one and the commit.
  for (int id = 0; id < n; ++id) {
    EXPECT_EQ(attempts[static_cast<std::size_t>(id)], 2) << "participant " << id;
  }
}

TEST(AtomicCommit, SequentialTransactionsStayOrdered) {
  const int n = 2;
  AtomicCommitter committer(n);
  std::vector<std::vector<CommitOutcome>> outcomes(static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  for (int id = 0; id < n; ++id) {
    threads.emplace_back([&, id] {
      int committed = 0;
      int attempt_in_txn = 0;
      while (committed < 3) {
        ++attempt_in_txn;
        const bool fail = id == 0 && committed == 1 && attempt_in_txn == 1;
        const auto o = committer.submit(id, !fail);
        outcomes[static_cast<std::size_t>(id)].push_back(o);
        if (o == CommitOutcome::kCommitted) {
          ++committed;
          attempt_in_txn = 0;
        }
      }
      committer.finalize(id);
    });
  }
  for (auto& t : threads) t.join();
  // Both participants observed the identical global decision sequence.
  EXPECT_EQ(outcomes[0], outcomes[1]);
  int retries = 0;
  for (const auto o : outcomes[0]) retries += (o == CommitOutcome::kRetried);
  EXPECT_EQ(retries, 1);
}

// ---------------------------------------------------------------------------
// Clock unison
// ---------------------------------------------------------------------------

TEST(ClockUnison, StaysInUnisonWithoutFaults) {
  ClockUnison clock(4, 6, util::Rng(11));
  for (int i = 0; i < 20'000; ++i) {
    clock.step();
    ASSERT_TRUE(clock.in_unison()) << "clocks diverged at step " << i;
  }
}

TEST(ClockUnison, ClocksIncrementInfinitelyOften) {
  ClockUnison clock(3, 5, util::Rng(13));
  long long last = 0;
  for (int epoch = 0; epoch < 5; ++epoch) {
    for (int i = 0; i < 20'000 && clock.min_increments() < last + 3; ++i) clock.step();
    EXPECT_GE(clock.min_increments(), last + 3) << "slowest clock stalled";
    last = clock.min_increments();
  }
}

TEST(ClockUnison, RecoversUnisonAfterCorruption) {
  ClockUnison clock(4, 6, util::Rng(17));
  util::Rng fault_rng(18);
  for (int round = 0; round < 5; ++round) {
    clock.perturb(fault_rng);
    bool recovered = false;
    for (int i = 0; i < 200'000; ++i) {
      clock.step();
      if (clock.legitimate()) {
        recovered = true;
        break;
      }
    }
    ASSERT_TRUE(recovered) << "round " << round;
    EXPECT_TRUE(clock.in_unison()) << "legitimate but not in unison?";
  }
}

TEST(ClockUnison, LegitimateImpliesUnison) {
  // Drive with random perturbations and check the implication throughout.
  ClockUnison clock(3, 4, util::Rng(19));
  util::Rng fault_rng(20);
  clock.perturb(fault_rng);
  for (int i = 0; i < 50'000; ++i) {
    clock.step();
    if (clock.legitimate()) {
      ASSERT_TRUE(clock.in_unison()) << "at step " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Phase synchronization
// ---------------------------------------------------------------------------

TEST(PhaseSync, CleanStartExecutesPhasesInOrder) {
  PhaseSync sync(4, util::Rng(23));
  EXPECT_TRUE(sync.run_phases(10));
  EXPECT_EQ(sync.completed_phases(), 10u);
  EXPECT_TRUE(sync.safety_ok());
}

TEST(PhaseSync, InitialDetectableCorruptionIsMasked) {
  // The traditional phase-sync fault: some processes start with corrupted
  // variables. Every phase must still execute correctly.
  PhaseSync sync(5, util::Rng(29), /*corrupt_initially=*/{1, 3});
  EXPECT_TRUE(sync.run_phases(8));
  EXPECT_TRUE(sync.safety_ok()) << sync.monitor().violations().front();
  EXPECT_GE(sync.completed_phases(), 8u);
}

TEST(PhaseSync, CorruptingAllButOneStillMasks) {
  PhaseSync sync(4, util::Rng(31), {1, 2, 3});
  EXPECT_TRUE(sync.run_phases(6));
  EXPECT_TRUE(sync.safety_ok());
}

TEST(PhaseSync, ProgressContinuesAcrossManyPhases) {
  PhaseSync sync(3, util::Rng(37));
  for (int chunk = 0; chunk < 4; ++chunk) {
    EXPECT_TRUE(sync.run_phases(5));
  }
  EXPECT_EQ(sync.completed_phases(), 20u);
}

}  // namespace
}  // namespace ftbar::ext
