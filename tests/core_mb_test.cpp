#include "core/mb.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/rb.hpp"
#include "sim/step_engine.hpp"

namespace ftbar::core {
namespace {

// ---------------------------------------------------------------------------
// Fault-free behaviour across sizes and semantics
// ---------------------------------------------------------------------------

struct MbRunParam {
  int num_procs;
  int num_phases;
  sim::Semantics semantics;
  std::uint64_t seed;
};

class MbFaultFree : public ::testing::TestWithParam<MbRunParam> {};

TEST_P(MbFaultFree, SatisfiesSpecification) {
  const auto param = GetParam();
  const MbOptions opt{param.num_procs, param.num_phases, 0};
  SpecMonitor monitor(opt.num_procs, opt.num_phases);
  sim::StepEngine<MbProc> eng(mb_start_state(opt), make_mb_actions(opt, &monitor),
                              util::Rng(param.seed), param.semantics);
  const auto target = static_cast<std::size_t>(3 * param.num_phases);
  const auto reached = eng.run_until(
      [&](const MbState&) { return monitor.successful_phases() >= target; },
      500'000);
  ASSERT_TRUE(reached.has_value())
      << "Progress violated: " << monitor.successful_phases() << " phases";
  EXPECT_TRUE(monitor.safety_ok()) << monitor.violations().front();
  EXPECT_EQ(monitor.failed_instances(), 0u);
  EXPECT_EQ(monitor.total_instances(), monitor.successful_phases());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MbFaultFree,
    ::testing::Values(MbRunParam{2, 2, sim::Semantics::kInterleaving, 1},
                      MbRunParam{3, 3, sim::Semantics::kInterleaving, 2},
                      MbRunParam{5, 2, sim::Semantics::kInterleaving, 3},
                      MbRunParam{8, 4, sim::Semantics::kMaxParallel, 4},
                      MbRunParam{16, 2, sim::Semantics::kMaxParallel, 5}));

// ---------------------------------------------------------------------------
// Refinement: MB simulates RB on a ring of 2(N+1) processes
// ---------------------------------------------------------------------------

RbState map_to_doubled_ring(const MbState& s) {
  const int n = static_cast<int>(s.size());
  RbState r(static_cast<std::size_t>(2 * n));
  for (int j = 0; j < n; ++j) {
    const auto& p = s[static_cast<std::size_t>(j)];
    r[static_cast<std::size_t>(2 * j)] = RbProc{p.sn, p.cp, p.ph};
    // The copy cell held at process (j+1) sits between real j and real j+1.
    const auto& q = s[static_cast<std::size_t>((j + 1) % n)];
    r[static_cast<std::size_t>(2 * j + 1)] = RbProc{q.c_sn, q.c_cp, q.c_ph};
  }
  return r;
}

TEST(MbRefinement, FaultFreeTransitionsMatchDoubledRingRb) {
  const int s = 4;
  const MbOptions mb_opt{s, 3, 0};
  const int l = mb_opt.l();

  RbOptions rb_opt = rb_ring_options(2 * s, 3);
  rb_opt.seq_modulus = l;
  const auto rb_actions = make_rb_actions(rb_opt);
  // Index RB actions by name for the correspondence lookup.
  auto rb_action = [&](const std::string& name) -> const sim::Action<RbProc>& {
    const auto it = std::find_if(rb_actions.begin(), rb_actions.end(),
                                 [&](const auto& a) { return a.name == name; });
    EXPECT_NE(it, rb_actions.end()) << "missing RB action " << name;
    return *it;
  };

  // Correspondence: MT1@0 <-> T1@0, MT2@j <-> T2@(2j), COPY@j <-> T2 at the
  // copy cell's index in the doubled ring.
  auto corresponding = [&](const std::string& mb_name) -> std::string {
    if (mb_name == "MT1@0") return "T1@0";
    if (mb_name.rfind("MT2@", 0) == 0) {
      const int j = std::stoi(mb_name.substr(4));
      return "T2@" + std::to_string(2 * j);
    }
    if (mb_name.rfind("COPY@", 0) == 0) {
      const int j = std::stoi(mb_name.substr(5));
      const int cell = j == 0 ? 2 * s - 1 : 2 * j - 1;
      return "T2@" + std::to_string(cell);
    }
    return "";  // T3/T4/T5/CPYN have no fault-free counterpart
  };

  const auto mb_actions = make_mb_actions(mb_opt);
  sim::StepEngine<MbProc> eng(mb_start_state(mb_opt), make_mb_actions(mb_opt),
                              util::Rng(99), sim::Semantics::kInterleaving);

  for (int step = 0; step < 3'000; ++step) {
    const MbState& mb_state = eng.state();
    const RbState mapped = map_to_doubled_ring(mb_state);
    for (const auto& a : mb_actions) {
      const auto rb_name = corresponding(a.name);
      if (rb_name.empty()) {
        // Housekeeping actions must be disabled in fault-free computations
        // (property (*) of the appendix proof).
        EXPECT_FALSE(a.enabled(mb_state))
            << a.name << " enabled in a fault-free state";
        continue;
      }
      const auto& ra = rb_action(rb_name);
      ASSERT_EQ(a.enabled(mb_state), ra.enabled(mapped))
          << "enabledness mismatch: " << a.name << " vs " << rb_name
          << " at step " << step;
      if (!a.enabled(mb_state)) continue;
      MbState mb_next = mb_state;
      a.apply(mb_next);
      RbState rb_next = mapped;
      ra.apply(rb_next);
      ASSERT_EQ(map_to_doubled_ring(mb_next), rb_next)
          << "transition mismatch: " << a.name << " vs " << rb_name
          << " at step " << step;
    }
    if (eng.step() == 0) break;
  }
}

// ---------------------------------------------------------------------------
// Masking tolerance to detectable faults
// ---------------------------------------------------------------------------

class MbDetectable : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MbDetectable, MasksDetectableFaults) {
  const MbOptions opt{5, 2, 0};
  SpecMonitor monitor(opt.num_procs, opt.num_phases);
  sim::StepEngine<MbProc> eng(mb_start_state(opt), make_mb_actions(opt, &monitor),
                              util::Rng(GetParam()), sim::Semantics::kInterleaving);
  util::Rng fault_rng(GetParam() ^ 0x5a5aULL);
  const auto perturb = mb_detectable_fault(opt, &monitor);

  const double f = 0.005;
  std::size_t steps = 0;
  while (monitor.successful_phases() < 8 && steps < 2'000'000) {
    auto& state = eng.mutable_state();
    for (std::size_t j = 0; j < state.size(); ++j) {
      if (!fault_rng.bernoulli(f)) continue;
      int intact = 0;
      for (std::size_t k = 0; k < state.size(); ++k) {
        if (k != j && mb_sn_valid(state[k].sn)) ++intact;
      }
      if (intact > 0) perturb(j, state[j], fault_rng);
    }
    eng.step();
    ++steps;
  }
  EXPECT_TRUE(monitor.safety_ok()) << monitor.violations().front();
  EXPECT_GE(monitor.successful_phases(), 8u) << "Progress violated";
}

INSTANTIATE_TEST_SUITE_P(Seeds, MbDetectable,
                         ::testing::Values(11, 22, 33, 44, 55));

// ---------------------------------------------------------------------------
// Stabilizing tolerance to undetectable faults
// ---------------------------------------------------------------------------

class MbStabilization : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MbStabilization, RecoversAndResatisfiesSpec) {
  const MbOptions opt{4, 2, 0};
  SpecMonitor monitor(opt.num_procs, opt.num_phases);
  sim::StepEngine<MbProc> eng(mb_start_state(opt), make_mb_actions(opt, &monitor),
                              util::Rng(GetParam()), sim::Semantics::kInterleaving);
  util::Rng fault_rng(GetParam() ^ 0x1111ULL);
  const auto perturb = mb_undetectable_fault(opt, &monitor);

  monitor.on_undetectable_fault();
  for (std::size_t j = 0; j < eng.mutable_state().size(); ++j) {
    perturb(j, eng.mutable_state()[j], fault_rng);
  }

  const auto recovered =
      eng.run_until([](const MbState& s) { return mb_is_start_state(s); }, 2'000'000);
  ASSERT_TRUE(recovered.has_value()) << "did not stabilize";

  // Property (*): once converged, no BOT/TOP ever reappears without faults.
  monitor.resync(eng.state().front().ph);
  bool corrupt_seen = false;
  std::size_t steps = 0;
  while (monitor.successful_phases() < 6 && steps < 2'000'000) {
    eng.step();
    ++steps;
    for (const auto& p : eng.state()) {
      corrupt_seen |= !mb_sn_valid(p.sn) || !mb_sn_valid(p.c_sn);
    }
  }
  EXPECT_GE(monitor.successful_phases(), 6u);
  EXPECT_TRUE(monitor.safety_ok()) << monitor.violations().front();
  EXPECT_FALSE(corrupt_seen) << "BOT/TOP reappeared after convergence";
}

INSTANTIATE_TEST_SUITE_P(Seeds, MbStabilization,
                         ::testing::Values(71, 72, 73, 74, 75, 76, 77, 78));

// ---------------------------------------------------------------------------
// Whole-system detectable corruption heals via the TOP wave (MT3/MT4/MT5)
// ---------------------------------------------------------------------------

TEST(MbTopWave, GlobalDetectableCorruptionRecovers) {
  const MbOptions opt{4, 2, 0};
  sim::StepEngine<MbProc> eng(mb_start_state(opt), make_mb_actions(opt),
                              util::Rng(123), sim::Semantics::kInterleaving);
  util::Rng fault_rng(321);
  const auto perturb = mb_detectable_fault(opt, nullptr);
  // Corrupt EVERY process detectably (footnote 2: this is undetectable-class,
  // so phases may be lost, but the sn machinery must still converge).
  for (std::size_t j = 0; j < eng.mutable_state().size(); ++j) {
    perturb(j, eng.mutable_state()[j], fault_rng);
  }
  const auto recovered =
      eng.run_until([](const MbState& s) { return mb_is_start_state(s); }, 2'000'000);
  EXPECT_TRUE(recovered.has_value()) << "TOP wave did not restore the ring";
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

TEST(MbHelpers, StartStatePredicate) {
  const MbOptions opt{3, 2, 0};
  auto s = mb_start_state(opt, 1);
  EXPECT_TRUE(mb_is_start_state(s));
  s[1].c_cp = Cp::kSuccess;
  EXPECT_FALSE(mb_is_start_state(s));
  s = mb_start_state(opt);
  s[2].c_sn = 3;
  EXPECT_FALSE(mb_is_start_state(s));
}

TEST(MbHelpers, DefaultModulusExceedsDoubledRing) {
  const MbOptions opt{5, 2, 0};
  EXPECT_EQ(opt.l(), 10);          // L = 2 * (N+1) = 2N+2 > 2N+1
  EXPECT_GT(opt.l(), 2 * 5 - 1);
  MbOptions custom{5, 2, 16};
  EXPECT_EQ(custom.l(), 16);
}

TEST(MbHelpers, DetectableFaultResetsCopies) {
  const MbOptions opt{3, 4, 0};
  const auto perturb = mb_detectable_fault(opt, nullptr);
  util::Rng rng(5);
  MbProc p;
  p.sn = 3;
  p.c_sn = 3;
  p.c_next = 1;
  perturb(1, p, rng);
  EXPECT_EQ(p.sn, kMbSnBot);
  EXPECT_EQ(p.cp, Cp::kError);
  EXPECT_EQ(p.c_sn, kMbSnBot);
  EXPECT_EQ(p.c_cp, Cp::kError);
  EXPECT_EQ(p.c_next, kMbSnBot);
  EXPECT_GE(p.ph, 0);
  EXPECT_LT(p.ph, 4);
}

}  // namespace
}  // namespace ftbar::core
