#include "core/timed_model.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "analysis/model.hpp"

namespace ftbar::core {
namespace {

TEST(TimedRbModel, FaultFreePhaseIsExactlyAnalytic) {
  TimedRbModel model({5, 0.01, 0.0}, util::Rng(1));
  const auto s = model.run_phase();
  EXPECT_EQ(s.instances, 1);
  EXPECT_DOUBLE_EQ(s.elapsed, 1.15);  // 1 + 3hc
  EXPECT_DOUBLE_EQ(model.instance_time(), 1.15);
}

TEST(TimedRbModel, ZeroLatencyFaultFree) {
  TimedRbModel model({5, 0.0, 0.0}, util::Rng(2));
  const auto s = model.run_phases(10);
  EXPECT_EQ(s.instances, 10);
  EXPECT_DOUBLE_EQ(s.elapsed, 10.0);
}

struct SweepPoint {
  double c;
  double f;
};

class TimedMatchesAnalytic : public ::testing::TestWithParam<SweepPoint> {};

TEST_P(TimedMatchesAnalytic, MeanInstancesTrackFormula) {
  const auto [c, f] = GetParam();
  TimedRbModel model({5, c, f}, util::Rng(42));
  constexpr std::size_t kPhases = 40'000;
  const auto s = model.run_phases(kPhases);
  const double measured = static_cast<double>(s.instances) / kPhases;
  const double predicted = analysis::expected_instances({5, c, f});
  EXPECT_NEAR(measured, predicted, 0.05 * predicted)
      << "c=" << c << " f=" << f;
}

TEST_P(TimedMatchesAnalytic, MeanPhaseTimeBelowAnalyticWorstCase) {
  // Failed instances abort at a wave boundary, so the simulated time per
  // successful phase is at most the analytical worst case (Figures 4 vs 6)
  // but never below the fault-free floor 1 + 3hc.
  const auto [c, f] = GetParam();
  TimedRbModel model({5, c, f}, util::Rng(77));
  constexpr std::size_t kPhases = 40'000;
  const auto s = model.run_phases(kPhases);
  const double mean_time = s.elapsed / kPhases;
  const double analytic = analysis::expected_phase_time({5, c, f});
  EXPECT_LE(mean_time, analytic * 1.01) << "c=" << c << " f=" << f;
  EXPECT_GE(mean_time, (1.0 + 3 * 5 * c) * 0.999);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TimedMatchesAnalytic,
                         ::testing::Values(SweepPoint{0.0, 0.01},
                                           SweepPoint{0.01, 0.01},
                                           SweepPoint{0.01, 0.05},
                                           SweepPoint{0.03, 0.1},
                                           SweepPoint{0.05, 0.05}));

TEST(TimedRbModel, FaultsStrictlyIncreaseInstances) {
  TimedRbModel low({5, 0.01, 0.01}, util::Rng(5));
  TimedRbModel high({5, 0.01, 0.10}, util::Rng(5));
  constexpr std::size_t kPhases = 20'000;
  EXPECT_LT(low.run_phases(kPhases).instances, high.run_phases(kPhases).instances);
}

TEST(TimedRbModel, FailedInstancesAreCheaperThanWorstCase) {
  // With very frequent faults the average per-instance cost must fall well
  // below 1 + 3hc (instances abort early) yet remain positive.
  TimedRbModel model({5, 0.05, 0.5}, util::Rng(9));
  const auto s = model.run_phases(2'000);
  const double per_instance = s.elapsed / s.instances;
  EXPECT_LT(per_instance, model.instance_time());
  EXPECT_GT(per_instance, 0.0);
}

TEST(TimedRbModel, InstanceCountsFollowGeometricDistribution) {
  // Analytical model: a phase needs exactly k instances with probability
  // q^(k-1) * p where p = (1-f)^(1+3hc). Check the first categories of the
  // empirical distribution against the geometric law.
  const double c = 0.02;
  const double f = 0.15;  // high rate so multi-instance phases are common
  TimedRbModel model({5, c, f}, util::Rng(2718));
  constexpr std::size_t kPhases = 50'000;
  std::array<std::size_t, 6> histogram{};  // k = 1..5, 6+ lumped
  for (std::size_t i = 0; i < kPhases; ++i) {
    const auto s = model.run_phase();
    const auto bucket = std::min<std::size_t>(static_cast<std::size_t>(s.instances), 6);
    ++histogram[bucket - 1];
  }
  const double p = analysis::no_fault_probability({5, c, f});
  const double q = 1.0 - p;
  double qk = 1.0;  // q^(k-1)
  for (int k = 1; k <= 4; ++k) {
    const double expected = qk * p;
    const double observed =
        static_cast<double>(histogram[static_cast<std::size_t>(k - 1)]) / kPhases;
    // 4 sigma of the binomial sampling noise.
    const double sigma = std::sqrt(expected * (1 - expected) / kPhases);
    EXPECT_NEAR(observed, expected, 4 * sigma + 1e-6) << "k=" << k;
    qk *= q;
  }
}

TEST(TimedIntolerant, PhaseTimeFormula) {
  EXPECT_DOUBLE_EQ(timed_intolerant_phase_time({5, 0.01, 0.0}), 1.10);
  EXPECT_DOUBLE_EQ(timed_intolerant_phase_time({3, 0.0, 0.0}), 1.0);
}

TEST(Recovery, ZeroLatencyIsFree) {
  util::Rng rng(11);
  EXPECT_DOUBLE_EQ(measure_recovery(2, 0.0, rng), 0.0);
}

TEST(Recovery, CompletesAndScalesWithLatency) {
  util::Rng rng(13);
  const double at_c1 = measure_recovery(3, 0.01, rng);
  util::Rng rng2(13);
  const double at_c5 = measure_recovery(3, 0.05, rng2);
  EXPECT_GT(at_c1, 0.0);
  // Same seed, same step count: time scales linearly with c.
  EXPECT_NEAR(at_c5, 5.0 * at_c1, 1e-9);
}

TEST(Recovery, GrowsWithTreeHeightOnAverage) {
  util::Rng rng(17);
  double small = 0.0;
  double large = 0.0;
  for (int i = 0; i < 10; ++i) {
    small += measure_recovery(1, 0.01, rng);
    large += measure_recovery(4, 0.01, rng);
  }
  EXPECT_LT(small, large);
}

TEST(Recovery, StaysWithinPaperBallpark) {
  // Paper, Figure 7: h = 5, c = 0.01 recovers in well under the 2hc<=0.5
  // regime's bound of 1.25 time units.
  util::Rng rng(19);
  for (int i = 0; i < 5; ++i) {
    const double t = measure_recovery(5, 0.01, rng);
    EXPECT_GT(t, 0.0);
    EXPECT_LT(t, 1.25);
  }
}

}  // namespace
}  // namespace ftbar::core
