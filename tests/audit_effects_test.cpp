// Tests for the contract auditor's effect-inference engine (audit/
// effects.hpp, audit/audit.hpp): a toy system with known semantics is
// recovered exactly; fuzz sampling equals exhaustive enumeration when the
// sample covers the domain and under-approximates (never over-reports)
// when it does not; identical seeds render byte-identical reports; and all
// four seed bundles audit clean under their presets, with the RB root's
// footprint pinned value-for-value.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "audit/audit.hpp"
#include "audit/effects.hpp"
#include "audit/presets.hpp"
#include "audit/report.hpp"
#include "check/programs.hpp"

namespace ftbar::audit {
namespace {

// ---------------------------------------------------------------------------
// A two-process toy with hand-derivable effects
// ---------------------------------------------------------------------------

struct Cell {
  int v = 0;
  friend auto operator<=>(const Cell&, const Cell&) = default;
};

constexpr int kCellDomain = 4;  // records take values {0, 1, 2, 3}

RecordDomain<Cell> cell_domain() {
  return [](std::size_t, const Cell&,
            const std::function<void(const Cell&)>& emit) {
    for (int v = 0; v < kCellDomain; ++v) emit(Cell{v});
  };
}

// bump@0: guard reads {0}, writes {0}, statement reads nothing foreign.
// copy@1: guard reads {0, 1}; the written value at slot 1 tracks slot 0, so
// the statement observably reads {0} and writes {1}.
std::vector<sim::Action<Cell>> toy_actions() {
  std::vector<sim::Action<Cell>> actions;
  auto& bump = actions.emplace_back();
  bump.name = "bump@0";
  bump.process = 0;
  bump.reads = {0};
  bump.guard = [](const std::vector<Cell>& s) { return s[0].v < kCellDomain - 1; };
  bump.apply = [](std::vector<Cell>& s) { s[0].v += 1; };
  auto& copy = actions.emplace_back();
  copy.name = "copy@1";
  copy.process = 1;
  copy.reads = {0, 1};
  copy.guard = [](const std::vector<Cell>& s) { return s[0].v != s[1].v; };
  copy.apply = [](std::vector<Cell>& s) { s[1].v = s[0].v; };
  return actions;
}

// Every state of the toy's 4 x 4 space, so inference has perfect coverage.
std::vector<std::vector<Cell>> toy_all_states() {
  std::vector<std::vector<Cell>> states;
  for (int a = 0; a < kCellDomain; ++a) {
    for (int b = 0; b < kCellDomain; ++b) states.push_back({Cell{a}, Cell{b}});
  }
  return states;
}

TEST(InferEffectsTest, ToyEffectsRecoveredExactly) {
  const auto actions = toy_actions();
  const auto fx =
      infer_effects(actions, 2, toy_all_states(), cell_domain());
  ASSERT_EQ(fx.size(), 2u);

  EXPECT_EQ(fx[0].guard_reads, (std::vector<int>{0}));
  EXPECT_TRUE(fx[0].stmt_reads.empty());
  EXPECT_EQ(fx[0].writes, (std::vector<int>{0}));
  EXPECT_TRUE(fx[0].guard_deterministic);
  EXPECT_TRUE(fx[0].stmt_deterministic);
  EXPECT_GT(fx[0].guard_probes, 0u);
  EXPECT_GT(fx[0].stmt_probes, 0u);

  EXPECT_EQ(fx[1].guard_reads, (std::vector<int>{0, 1}));
  EXPECT_EQ(fx[1].stmt_reads, (std::vector<int>{0}));
  EXPECT_EQ(fx[1].writes, (std::vector<int>{1}));
  EXPECT_TRUE(fx[1].guard_deterministic);
  EXPECT_TRUE(fx[1].stmt_deterministic);
}

TEST(InferEffectsTest, CoveringFuzzSampleMatchesExhaustive) {
  const auto actions = toy_actions();
  const auto states = toy_all_states();
  const auto exhaustive =
      infer_effects(actions, 2, states, cell_domain());
  EffectOptions opt;
  opt.max_variants_per_slot = kCellDomain;  // covers the whole domain
  opt.seed = 99;
  const auto fuzz = infer_effects(actions, 2, states, cell_domain(), opt);
  ASSERT_EQ(fuzz.size(), exhaustive.size());
  for (std::size_t i = 0; i < fuzz.size(); ++i) {
    EXPECT_EQ(fuzz[i].guard_reads, exhaustive[i].guard_reads) << actions[i].name;
    EXPECT_EQ(fuzz[i].stmt_reads, exhaustive[i].stmt_reads) << actions[i].name;
    EXPECT_EQ(fuzz[i].writes, exhaustive[i].writes) << actions[i].name;
  }
}

bool subset_of(const std::vector<int>& sub, const std::vector<int>& super) {
  return std::all_of(sub.begin(), sub.end(), [&](int p) {
    return std::find(super.begin(), super.end(), p) != super.end();
  });
}

TEST(InferEffectsTest, UndersizedFuzzSampleUnderApproximates) {
  const auto actions = toy_actions();
  const auto states = toy_all_states();
  const auto exhaustive =
      infer_effects(actions, 2, states, cell_domain());
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    EffectOptions opt;
    opt.max_variants_per_slot = 1;  // genuinely partial sample
    opt.seed = seed;
    const auto fuzz =
        infer_effects(actions, 2, states, cell_domain(), opt);
    for (std::size_t i = 0; i < fuzz.size(); ++i) {
      EXPECT_TRUE(subset_of(fuzz[i].guard_reads, exhaustive[i].guard_reads));
      EXPECT_TRUE(subset_of(fuzz[i].stmt_reads, exhaustive[i].stmt_reads));
      EXPECT_TRUE(subset_of(fuzz[i].writes, exhaustive[i].writes));
      EXPECT_TRUE(fuzz[i].guard_deterministic);
      EXPECT_TRUE(fuzz[i].stmt_deterministic);
    }
  }
}

TEST(InferEffectsTest, CollectProbeStatesDedupsAndHonoursCap) {
  const auto actions = toy_actions();
  const std::vector<Cell> root = {Cell{0}, Cell{3}};
  // The same root three times must be stored once; the walks only add
  // distinct states on top.
  const auto states = collect_probe_states(actions, {root, root, root},
                                           /*walks_per_root=*/2, /*depth=*/8,
                                           /*seed=*/7, /*max_states=*/64);
  ASSERT_FALSE(states.empty());
  EXPECT_EQ(states.front(), root);
  for (std::size_t i = 0; i < states.size(); ++i) {
    for (std::size_t j = i + 1; j < states.size(); ++j) {
      EXPECT_NE(states[i], states[j]) << "duplicate probe state stored";
    }
  }
  const auto capped = collect_probe_states(actions, {root}, 4, 16, 7,
                                           /*max_states=*/3);
  EXPECT_EQ(capped.size(), 3u);
}

TEST(InferEffectsTest, GenericRecordDomainEmitsOnlyDistinctVariants) {
  const Cell base{1};
  const auto domain = generic_record_domain<Cell>({Cell{1}, Cell{2}});
  std::vector<Cell> emitted;
  domain(0, base, [&](const Cell& v) { emitted.push_back(v); });
  // Pool contributes only the record differing from base; byte pokes add
  // one variant per byte of the record, each differing from base.
  EXPECT_EQ(emitted.size(), 1 + sizeof(Cell));
  for (const Cell& v : emitted) EXPECT_NE(v, base);
}

// ---------------------------------------------------------------------------
// Seed bundles under their presets
// ---------------------------------------------------------------------------

template <class P>
ProgramAudit audit_seed(const std::string& name,
                        const check::ProgramBundle<P>& bundle,
                        std::size_t samples = 0, std::uint64_t seed = 1) {
  auto cfg = make_audit_config(name, bundle.procs);
  cfg.effects.max_variants_per_slot = samples;
  cfg.effects.seed = seed;
  return audit_bundle(bundle, cfg, make_extra_probe_roots(name, bundle));
}

TEST(AuditBundleTest, SeedBundlesAuditCleanUnderStrict) {
  const auto check_clean = [](const ProgramAudit& audit) {
    EXPECT_EQ(audit.num_errors(), 0u) << audit.program;
    EXPECT_EQ(audit.num_warnings(), 0u) << audit.program;
    EXPECT_GT(audit.probe_states, 0u);
    for (const auto& a : audit.actions) {
      if (a.has_declared_reads) {
        EXPECT_TRUE(subset_of(a.guard_reads, a.declared_reads)) << a.name;
      }
      // Write-locality: every action writes at most its own slot.
      EXPECT_TRUE(subset_of(a.writes, {a.process})) << a.name;
    }
  };
  check_clean(audit_seed("cb", check::make_cb_bundle(3)));
  check_clean(audit_seed("rb", check::make_rb_bundle(3)));
  check_clean(audit_seed("rbp", check::make_rbp_bundle(4)));
  check_clean(audit_seed("mb", check::make_mb_bundle(3)));
}

TEST(AuditBundleTest, RbRootFootprintPinned) {
  const auto audit = audit_seed("rb", check::make_rb_bundle(3));
  const auto it = std::find_if(audit.actions.begin(), audit.actions.end(),
                               [](const ActionSummary& a) {
                                 return a.name == "T1@0";
                               });
  ASSERT_NE(it, audit.actions.end());
  // The ring root's T1: guard polls itself and the leaf (slot n-1 = 2); the
  // new sequence number it writes into slot 0 is derived from the leaf's.
  EXPECT_EQ(it->process, 0);
  EXPECT_TRUE(it->has_declared_reads);
  EXPECT_EQ(it->declared_reads, (std::vector<int>{0, 2}));
  EXPECT_EQ(it->guard_reads, (std::vector<int>{0, 2}));
  EXPECT_EQ(it->stmt_reads, (std::vector<int>{2}));
  EXPECT_EQ(it->writes, (std::vector<int>{0}));
}

TEST(AuditBundleTest, RbFuzzRunFindsNoFalseErrors) {
  const auto bundle = check::make_rb_bundle(4);
  const auto exhaustive = audit_seed("rb", bundle);
  const auto fuzz = audit_seed("rb", bundle, /*samples=*/2, /*seed=*/3);
  EXPECT_EQ(exhaustive.num_errors(), 0u);
  EXPECT_EQ(fuzz.num_errors(), 0u);
  // Sampling may under-observe (tightness warnings are allowed) but must
  // never infer a read the exhaustive run did not.
  ASSERT_EQ(fuzz.actions.size(), exhaustive.actions.size());
  for (std::size_t i = 0; i < fuzz.actions.size(); ++i) {
    EXPECT_TRUE(subset_of(fuzz.actions[i].guard_reads,
                          exhaustive.actions[i].guard_reads))
        << fuzz.actions[i].name;
  }
}

TEST(AuditBundleTest, SameSeedRendersByteIdenticalReports) {
  const auto render = [](std::uint64_t seed) {
    AuditReport report;
    report.programs.push_back(
        audit_seed("rb", check::make_rb_bundle(3), /*samples=*/3, seed));
    return std::pair{render_json(report), render_text(report)};
  };
  const auto [json_a, text_a] = render(42);
  const auto [json_b, text_b] = render(42);
  EXPECT_EQ(json_a, json_b);
  EXPECT_EQ(text_a, text_b);
  EXPECT_NE(json_a.find("\"program\":\"rb\""), std::string::npos);
}

}  // namespace
}  // namespace ftbar::audit
