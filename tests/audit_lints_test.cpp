// Mutation-driven tests for the auditor's lint battery (audit/lints.hpp,
// audit/mutate.hpp): each planted contract violation is flagged by exactly
// the expected lint naming the planted action, a healthy bundle stays
// clean, the construction-time quick_validate hook catches the definite
// errors it promises, and the StepEngine foreign-write trap aborts in
// debug builds (skipped under NDEBUG, where it is compiled out).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "audit/audit.hpp"
#include "audit/debug_hook.hpp"
#include "audit/mutate.hpp"
#include "audit/presets.hpp"
#include "check/programs.hpp"
#include "sim/step_engine.hpp"
#include "util/rng.hpp"

namespace ftbar::audit {
namespace {

bool has_finding(const std::vector<Finding>& findings, const std::string& lint,
                 const std::string& action, Severity severity) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.lint == lint && f.action == action && f.severity == severity;
  });
}

bool has_lint(const std::vector<Finding>& findings, const std::string& lint) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.lint == lint; });
}

// Audits an rb bundle (n = 3) with `m` planted; returns the audit and the
// planted action's name through `planted`.
ProgramAudit audit_mutated_rb(Mutation m, std::string& planted) {
  auto bundle = check::make_rb_bundle(3);
  planted = apply_mutation(bundle, m);
  const auto cfg = make_audit_config("rb", bundle.procs);
  return audit_bundle(bundle, cfg, make_extra_probe_roots("rb", bundle));
}

TEST(MutationTest, HealthyRbBundleIsClean) {
  const auto bundle = check::make_rb_bundle(3);
  const auto cfg = make_audit_config("rb", bundle.procs);
  const auto audit =
      audit_bundle(bundle, cfg, make_extra_probe_roots("rb", bundle));
  EXPECT_EQ(audit.num_errors(), 0u);
  EXPECT_EQ(audit.num_warnings(), 0u);
  EXPECT_TRUE(audit.findings.empty());
}

TEST(MutationTest, UnderDeclareFlagsReadSetSoundness) {
  std::string planted;
  const auto audit = audit_mutated_rb(Mutation::kUnderDeclare, planted);
  ASSERT_FALSE(planted.empty());
  EXPECT_GT(audit.num_errors(), 0u);
  EXPECT_TRUE(has_finding(audit.findings, "read-set-soundness", planted,
                          Severity::kError));
}

TEST(MutationTest, OverDeclareFlagsReadSetTightnessAsWarningOnly) {
  std::string planted;
  const auto audit = audit_mutated_rb(Mutation::kOverDeclare, planted);
  ASSERT_FALSE(planted.empty());
  // Over-declaring is wasteful but sound: warnings only, never an error.
  EXPECT_EQ(audit.num_errors(), 0u);
  EXPECT_GT(audit.num_warnings(), 0u);
  EXPECT_TRUE(has_finding(audit.findings, "read-set-tightness", planted,
                          Severity::kWarning));
}

TEST(MutationTest, ForeignWriteFlagsWriteLocality) {
  std::string planted;
  const auto audit = audit_mutated_rb(Mutation::kForeignWrite, planted);
  ASSERT_FALSE(planted.empty());
  EXPECT_GT(audit.num_errors(), 0u);
  EXPECT_TRUE(
      has_finding(audit.findings, "write-locality", planted, Severity::kError));
}

TEST(MutationTest, BadAutomorphismFlagsSymmetry) {
  std::string planted;
  const auto audit = audit_mutated_rb(Mutation::kBadAutomorphism, planted);
  EXPECT_EQ(planted, "(group)");
  EXPECT_GT(audit.num_errors(), 0u);
  EXPECT_TRUE(has_lint(audit.findings, "symmetry"));
  // The process rotation is caught even though every read-set, write and
  // guard is individually honest.
  EXPECT_FALSE(has_lint(audit.findings, "read-set-soundness"));
  EXPECT_FALSE(has_lint(audit.findings, "write-locality"));
}

TEST(MutationTest, MbXorFlagsGranularityNotSoundness) {
  auto bundle = check::make_mb_bundle(4);
  const std::string planted = apply_mutation(bundle, Mutation::kMbXor);
  ASSERT_FALSE(planted.empty());
  const auto cfg = make_audit_config("mb", bundle.procs);
  const auto audit =
      audit_bundle(bundle, cfg, make_extra_probe_roots("mb", bundle));
  EXPECT_GT(audit.num_errors(), 0u);
  EXPECT_TRUE(has_finding(audit.findings, "mb-read-xor-write", planted,
                          Severity::kError));
  // The distance-2 read is declared honestly, so only the program-class
  // rule fires — granularity is separable from soundness.
  EXPECT_FALSE(has_lint(audit.findings, "read-set-soundness"));
}

TEST(MutationTest, NondeterminismFlagsDeterminism) {
  std::string planted;
  const auto audit = audit_mutated_rb(Mutation::kNondeterminism, planted);
  ASSERT_FALSE(planted.empty());
  EXPECT_GT(audit.num_errors(), 0u);
  EXPECT_TRUE(
      has_finding(audit.findings, "determinism", planted, Severity::kError));
}

// ---------------------------------------------------------------------------
// The construction-time debug hook (quick_validate / debug_enforce)
// ---------------------------------------------------------------------------

TEST(QuickValidateTest, HealthyBundlePasses) {
  const auto bundle = check::make_rb_bundle(3);
  ASSERT_FALSE(bundle.start_roots.empty());
  const auto findings =
      quick_validate(bundle.actions, bundle.procs, bundle.start_roots.front());
  EXPECT_TRUE(findings.empty());
}

TEST(QuickValidateTest, CatchesForeignWrite) {
  auto bundle = check::make_rb_bundle(3);
  const std::string planted = apply_mutation(bundle, Mutation::kForeignWrite);
  ASSERT_FALSE(planted.empty());
  const auto findings =
      quick_validate(bundle.actions, bundle.procs, bundle.start_roots.front());
  EXPECT_TRUE(
      has_finding(findings, "write-locality", planted, Severity::kError));
  // quick_validate promises definite errors only — no tightness noise from
  // the generic (under-observing) record domain.
  for (const auto& f : findings) EXPECT_EQ(f.severity, Severity::kError);
}

// ---------------------------------------------------------------------------
// The StepEngine foreign-write trap (debug builds only)
// ---------------------------------------------------------------------------

#ifndef NDEBUG
using StepEngineDebugTrapDeathTest = ::testing::Test;

TEST(StepEngineDebugTrapDeathTest, ForeignWriteAborts) {
  auto bundle = check::make_rb_bundle(3);
  const std::string planted = apply_mutation(bundle, Mutation::kForeignWrite);
  ASSERT_FALSE(planted.empty());
  ASSERT_FALSE(bundle.start_roots.empty());
  EXPECT_DEATH(
      {
        sim::StepEngine<core::RbProc> engine(bundle.start_roots.front(),
                                             bundle.actions, util::Rng(1),
                                             sim::Semantics::kInterleaving);
        // The mutated action sits on the root; a few steps are plenty for
        // the weakly-fair scheduler to fire it.
        engine.run(64);
      },
      "wrote foreign slot");
}
#else
TEST(StepEngineDebugTrapDeathTest, ForeignWriteAborts) {
  GTEST_SKIP() << "foreign-write trap is compiled out under NDEBUG";
}
#endif

}  // namespace
}  // namespace ftbar::audit
