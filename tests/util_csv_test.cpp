#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace ftbar::util {
namespace {

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("x")}), std::invalid_argument);
  EXPECT_THROW(t.add_row({std::string("x"), 1LL, 2.0}), std::invalid_argument);
}

TEST(Table, CsvRoundTrip) {
  Table t({"name", "count", "ratio"});
  t.add_row({std::string("alpha"), 3LL, 0.5});
  t.add_row({std::string("beta"), 10LL, 1.25});
  t.set_precision(2);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(),
            "name,count,ratio\n"
            "alpha,3,0.50\n"
            "beta,10,1.25\n");
}

TEST(Table, PrintAlignsColumns) {
  Table t({"x", "longer"});
  t.add_row({std::string("aaaa"), 1LL});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header, separator, one data row.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find("aaaa"), std::string::npos);
}

TEST(Table, PrecisionControlsDoubles) {
  Table t({"v"});
  t.add_row({1.23456789});
  t.set_precision(6);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("1.234568"), std::string::npos);
}

TEST(Table, DimensionsReported) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({1LL, 2LL, 3LL});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, EmptyTableStillPrintsHeader) {
  Table t({"only"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

}  // namespace
}  // namespace ftbar::util
