#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "baseline/central_barrier.hpp"
#include "baseline/dissemination_barrier.hpp"
#include "baseline/tree_barrier.hpp"

namespace ftbar::baseline {
namespace {

/// Generic correctness harness: after the barrier of round r, every thread
/// must observe every other thread's counter at >= r (no one is released
/// before everyone arrived).
template <class Barrier, class Arrive>
void check_barrier(Barrier& bar, int num_threads, int rounds, Arrive arrive) {
  std::vector<std::atomic<int>> progress(static_cast<std::size_t>(num_threads));
  for (auto& p : progress) p.store(0);
  std::atomic<int> violations{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_threads));
  for (int tid = 0; tid < num_threads; ++tid) {
    threads.emplace_back([&, tid] {
      for (int r = 1; r <= rounds; ++r) {
        progress[static_cast<std::size_t>(tid)].store(r, std::memory_order_release);
        arrive(bar, tid);
        for (int k = 0; k < num_threads; ++k) {
          if (progress[static_cast<std::size_t>(k)].load(std::memory_order_acquire) < r) {
            ++violations;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(violations.load(), 0);
}

class BarrierSweep : public ::testing::TestWithParam<int> {};

TEST_P(BarrierSweep, CentralBarrierSynchronizes) {
  const int n = GetParam();
  CentralBarrier bar(n);
  check_barrier(bar, n, 50, [](CentralBarrier& b, int) { b.arrive_and_wait(); });
}

TEST_P(BarrierSweep, TreeBarrierSynchronizes) {
  const int n = GetParam();
  TreeBarrier bar(n);
  check_barrier(bar, n, 50, [](TreeBarrier& b, int tid) { b.arrive_and_wait(tid); });
}

TEST_P(BarrierSweep, DisseminationBarrierSynchronizes) {
  const int n = GetParam();
  DisseminationBarrier bar(n);
  check_barrier(bar, n, 50,
                [](DisseminationBarrier& b, int tid) { b.arrive_and_wait(tid); });
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, BarrierSweep, ::testing::Values(1, 2, 3, 5, 8));

TEST(CentralBarrier, SingleThreadNeverBlocks) {
  CentralBarrier bar(1);
  for (int i = 0; i < 100; ++i) bar.arrive_and_wait();
}

TEST(TreeBarrier, HeightMatchesAnalyticalH) {
  EXPECT_EQ(TreeBarrier(1).height(), 0);
  EXPECT_EQ(TreeBarrier(3).height(), 1);
  EXPECT_EQ(TreeBarrier(7).height(), 2);
  EXPECT_EQ(TreeBarrier(8).height(), 3);
  EXPECT_EQ(TreeBarrier(32).height(), 5);  // the paper's 32-process setup
}

TEST(DisseminationBarrier, RoundsAreCeilLog2) {
  EXPECT_EQ(DisseminationBarrier(1).rounds(), 0);
  EXPECT_EQ(DisseminationBarrier(2).rounds(), 1);
  EXPECT_EQ(DisseminationBarrier(5).rounds(), 3);
  EXPECT_EQ(DisseminationBarrier(8).rounds(), 3);
  EXPECT_EQ(DisseminationBarrier(9).rounds(), 4);
}

TEST(DisseminationBarrier, ManyRoundsStayConsistent) {
  // Episode counters are monotone; make sure nothing wraps or deadlocks
  // over a longer run.
  DisseminationBarrier bar(4);
  check_barrier(bar, 4, 500,
                [](DisseminationBarrier& b, int tid) { b.arrive_and_wait(tid); });
}

}  // namespace
}  // namespace ftbar::baseline
