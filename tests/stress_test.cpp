// Long-horizon stress campaigns mixing fault classes, exercising the
// masking/stabilizing machinery far past the short unit-test runs.
//
// Every campaign records into a bounded trace window; when a test fails,
// the window and a seed/parameter reproducer line are dumped next to the
// test binary, so a flaky long run leaves an investigable artifact instead
// of just an assertion message.
#include <gtest/gtest.h>

#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "core/ft_barrier.hpp"
#include "core/mb.hpp"
#include "core/rb.hpp"
#include "sim/step_engine.hpp"
#include "trace/export.hpp"
#include "trace/recorder.hpp"

namespace ftbar::core {
namespace {

/// Bounded trace window + reproducer dump, written only when the enclosing
/// test has a failure by the time this object dies. The recorder keeps the
/// most recent events per producing thread (older ones are overwritten),
/// so even a multi-million-step campaign leaves a readable tail.
class FailureDump {
 public:
  FailureDump(std::string name, std::string repro)
      : name_(std::move(name)),
        repro_(std::move(repro)),
        recorder_(std::size_t{1} << 16) {}

  [[nodiscard]] trace::TraceRecorder* sink() { return &recorder_; }

  ~FailureDump() {
    if (!::testing::Test::HasFailure()) return;
    const std::string trace_path = name_ + ".fail.jsonl";
    const std::string repro_path = name_ + ".fail.repro";
    trace::write_trace_file(trace_path, "jsonl", recorder_.snapshot());
    std::ofstream repro(repro_path);
    repro << repro_ << "\n";
    std::cerr << "[stress] " << name_ << " FAILED; last "
              << recorder_.snapshot().size() << " trace events ("
              << recorder_.dropped() << " older dropped) -> " << trace_path
              << ", reproducer -> " << repro_path << "\n";
  }

 private:
  std::string name_;
  std::string repro_;
  trace::TraceRecorder recorder_;
};

/// Alternates masked segments (detectable faults only; safety must hold
/// throughout) with undetectable strikes (monitor desyncs, system must
/// restabilize), for many rounds.
TEST(Stress, RbMixedFaultCampaign) {
  FailureDump dump("stress_rb_mixed",
                   "Stress.RbMixedFaultCampaign: rb_tree_options(15,2,4) "
                   "engine_seed=0x57e55 fault_seed=0xfa57 interleaving "
                   "detectable_p=0.003 rounds=12 phases_per_round=6");
  const auto opt = rb_tree_options(15, 2, 4);
  SpecMonitor monitor(15, 4);
  monitor.set_sink(dump.sink());
  sim::StepEngine<RbProc> eng(rb_start_state(opt), make_rb_actions(opt, &monitor),
                              util::Rng(0x57e55ULL), sim::Semantics::kInterleaving);
  eng.set_sink(dump.sink());
  util::Rng fault_rng(0xfa57ULL);
  const auto detectable = rb_detectable_fault(opt, &monitor);
  const auto undetectable = rb_undetectable_fault(opt, &monitor);

  for (int round = 0; round < 12; ++round) {
    // Masked segment: random detectable faults, progress of 6 phases.
    const auto target = monitor.successful_phases() + 6;
    std::size_t steps = 0;
    while (monitor.successful_phases() < target && steps < 3'000'000) {
      auto& state = eng.mutable_state();
      for (std::size_t j = 0; j < state.size(); ++j) {
        if (!fault_rng.bernoulli(0.003)) continue;
        int intact = 0;
        for (std::size_t q = 0; q < state.size(); ++q) {
          if (q != j && sn_valid(state[q].sn)) ++intact;
        }
        if (intact > 0) detectable(j, state[j], fault_rng);
      }
      eng.step();
      ++steps;
    }
    ASSERT_GE(monitor.successful_phases(), target) << "round " << round;
    ASSERT_TRUE(monitor.safety_ok())
        << "round " << round << ": " << monitor.violations().front();

    // Undetectable strike: corrupt a random subset, then restabilize.
    monitor.on_undetectable_fault();
    const auto hits = 1 + fault_rng.uniform(eng.state().size());
    for (std::uint64_t h = 0; h < hits; ++h) {
      const auto j = fault_rng.uniform(eng.state().size());
      undetectable(j, eng.mutable_state()[j], fault_rng);
    }
    const auto recovered =
        eng.run_until([](const RbState& s) { return rb_is_start_state(s); },
                      3'000'000);
    ASSERT_TRUE(recovered.has_value()) << "round " << round << " did not stabilize";
    monitor.resync(eng.state().front().ph);
  }
}

TEST(Stress, MbLongDetectableCampaign) {
  FailureDump dump("stress_mb_detectable",
                   "Stress.MbLongDetectableCampaign: MbOptions{6,4,0} "
                   "engine_seed=0xabc fault_seed=0xdef interleaving "
                   "detectable_p=0.002 goal=60 phases");
  const MbOptions opt{6, 4, 0};
  SpecMonitor monitor(opt.num_procs, opt.num_phases);
  monitor.set_sink(dump.sink());
  sim::StepEngine<MbProc> eng(mb_start_state(opt), make_mb_actions(opt, &monitor),
                              util::Rng(0xabcULL), sim::Semantics::kInterleaving);
  eng.set_sink(dump.sink());
  util::Rng fault_rng(0xdefULL);
  const auto perturb = mb_detectable_fault(opt, &monitor);
  std::size_t steps = 0;
  while (monitor.successful_phases() < 60 && steps < 8'000'000) {
    auto& state = eng.mutable_state();
    for (std::size_t j = 0; j < state.size(); ++j) {
      if (!fault_rng.bernoulli(0.002)) continue;
      int intact = 0;
      for (std::size_t q = 0; q < state.size(); ++q) {
        if (q != j && mb_sn_valid(state[q].sn)) ++intact;
      }
      if (intact > 0) perturb(j, state[j], fault_rng);
    }
    eng.step();
    ++steps;
  }
  EXPECT_GE(monitor.successful_phases(), 60u);
  EXPECT_TRUE(monitor.safety_ok()) << monitor.violations().front();
  EXPECT_GT(monitor.failed_instances(), 0u) << "campaign injected no effective fault";
}

TEST(Stress, BarrierManyPhasesEveryFaultClassAtOnce) {
  constexpr int kThreads = 5;
  BarrierOptions opt;
  opt.link_faults = runtime::LinkFaults{.drop = 0.08, .duplicate = 0.08,
                                        .corrupt = 0.05, .reorder = 0.08};
  opt.seed = 0x600dULL;
  FailureDump dump("stress_barrier_all_faults",
                   "Stress.BarrierManyPhasesEveryFaultClassAtOnce: threads=5 "
                   "seed=0x600d drop=0.08 dup=0.08 corrupt=0.05 reorder=0.08 "
                   "state_loss_p=0.04 phases=25");
  FaultTolerantBarrier bar(kThreads, opt);
  bar.set_trace_sink(dump.sink());
  std::vector<std::vector<PhaseTicket>> logs(kThreads);
  std::vector<std::thread> threads;
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      util::Rng rng(static_cast<std::uint64_t>(tid) * 7919 + 1);
      int completed = 0;
      while (completed < 25) {
        const bool ok = !rng.bernoulli(0.04);  // occasional state loss
        const auto t = bar.arrive_and_wait(tid, ok);
        logs[static_cast<std::size_t>(tid)].push_back(t);
        if (!t.repeated) ++completed;
      }
      bar.finalize(tid, std::chrono::milliseconds(5000));
    });
  }
  for (auto& t : threads) t.join();
  // The guarantee under faults: every thread COMMITS the same phases in
  // the same order. Repeat tickets may differ per thread — a thread that
  // never started a doomed instance (the execute wave was cut off before
  // reaching it) has nothing to redo and correctly sees one fewer repeat.
  auto committed = [&](int tid) {
    std::vector<int> out;
    for (const auto& t : logs[static_cast<std::size_t>(tid)]) {
      if (!t.repeated) out.push_back(t.phase);
    }
    return out;
  };
  const auto reference = committed(0);
  EXPECT_EQ(reference.size(), 25u);
  for (int tid = 1; tid < kThreads; ++tid) {
    EXPECT_EQ(committed(tid), reference) << "thread " << tid;
  }
  const auto stats = bar.network_stats();
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_GT(stats.duplicated, 0u);
  EXPECT_GT(stats.corrupted, 0u);
}

TEST(Stress, RebootOutageStallsThenRecovers) {
  // Processor reboot (paper fault model): thread 1 goes silent mid-run and
  // comes back with its state reset. Peers must stall (no phase can commit
  // without it — that IS the barrier) and then resume, re-executing the
  // phase the reboot interrupted.
  constexpr int kThreads = 3;
  constexpr auto kOutage = std::chrono::milliseconds(150);
  FailureDump dump("stress_reboot_outage",
                   "Stress.RebootOutageStallsThenRecovers: threads=3 "
                   "outage_ms=150 reboot_thread=1 at_phase=3 phases=6");
  FaultTolerantBarrier bar(kThreads);
  bar.set_trace_sink(dump.sink());
  std::vector<std::vector<std::chrono::steady_clock::time_point>> commit_times(
      kThreads);
  std::vector<std::vector<PhaseTicket>> logs(kThreads);
  std::vector<std::thread> threads;
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      int completed = 0;
      bool rebooted = false;
      while (completed < 6) {
        bool ok = true;
        if (tid == 1 && completed == 3 && !rebooted) {
          rebooted = true;
          std::this_thread::sleep_for(kOutage);  // down
          ok = false;                            // back, state lost
        }
        const auto t = bar.arrive_and_wait(tid, ok);
        logs[static_cast<std::size_t>(tid)].push_back(t);
        if (!t.repeated) {
          ++completed;
          commit_times[static_cast<std::size_t>(tid)].push_back(
              std::chrono::steady_clock::now());
        }
      }
      bar.finalize(tid);
    });
  }
  for (auto& t : threads) t.join();
  // All threads agree on the ticket stream with exactly one repeat.
  for (int tid = 1; tid < kThreads; ++tid) {
    ASSERT_EQ(logs[static_cast<std::size_t>(tid)].size(), logs[0].size());
    for (std::size_t i = 0; i < logs[0].size(); ++i) {
      EXPECT_EQ(logs[static_cast<std::size_t>(tid)][i].repeated,
                logs[0][i].repeated);
    }
  }
  int repeats = 0;
  for (const auto& t : logs[0]) repeats += t.repeated;
  EXPECT_EQ(repeats, 1);
  // Thread 0 visibly stalled across the outage: some inter-commit gap on
  // its timeline spans at least most of the outage duration.
  auto max_gap = std::chrono::steady_clock::duration::zero();
  const auto& times = commit_times[0];
  for (std::size_t i = 1; i < times.size(); ++i) {
    max_gap = std::max(max_gap, times[i] - times[i - 1]);
  }
  EXPECT_GE(max_gap, kOutage - std::chrono::milliseconds(30));
}

}  // namespace
}  // namespace ftbar::core
