#include "util/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

namespace ftbar::util {
namespace {

TEST(StreamRng, PureFunctionOfSeedAndStream) {
  Rng a = stream_rng(42, 7);
  Rng b = stream_rng(42, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(StreamRng, DistinctStreamsDecorrelated) {
  // Adjacent small stream ids must not produce overlapping streams.
  std::set<std::uint64_t> seen;
  for (std::uint64_t stream = 0; stream < 64; ++stream) {
    Rng r = stream_rng(1, stream);
    for (int i = 0; i < 16; ++i) seen.insert(r());
  }
  EXPECT_EQ(seen.size(), 64u * 16u);
}

TEST(StreamRng, SeedChangesStream) {
  Rng a = stream_rng(1, 0);
  Rng b = stream_rng(2, 0);
  bool differs = false;
  for (int i = 0; i < 16; ++i) differs |= (a() != b());
  EXPECT_TRUE(differs);
}

TEST(Sweep, VisitsEveryIndexExactlyOnce) {
  Sweep sweep(4);
  std::vector<std::atomic<int>> hits(1000);
  sweep.for_each(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Sweep, MapIndexesResults) {
  Sweep sweep(3);
  const auto out =
      sweep.map<std::size_t>(257, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(Sweep, SingleThreadRunsInline) {
  Sweep sweep(1);
  EXPECT_EQ(sweep.threads(), 1);
  const auto tid = std::this_thread::get_id();
  sweep.for_each(10, [&](std::size_t) { EXPECT_EQ(std::this_thread::get_id(), tid); });
}

TEST(Sweep, ZeroItemsIsANoop) {
  Sweep sweep(4);
  bool called = false;
  sweep.for_each(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Sweep, ReusableAcrossJobs) {
  Sweep sweep(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> sum{0};
    sweep.for_each(100, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(Sweep, DefaultsToHardwareConcurrency) {
  Sweep sweep(0);
  EXPECT_GE(sweep.threads(), 1);
}

TEST(Sweep, MoreThreadsThanItems) {
  Sweep sweep(16);
  const auto out = sweep.map<int>(3, [](std::size_t i) { return static_cast<int>(i) + 1; });
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(SweepCli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog", "--csv", "--threads", "8", "200"};
  const auto cli = parse_sweep_cli(5, const_cast<char**>(argv));
  EXPECT_TRUE(cli.csv);
  EXPECT_EQ(cli.threads, 8);
  ASSERT_EQ(cli.positional.size(), 1u);
  EXPECT_EQ(cli.positional_or(0, 7), 200u);
  EXPECT_EQ(cli.positional_or(1, 7), 7u);
}

TEST(SweepCli, ParsesEqualsFormAndDefaults) {
  const char* argv[] = {"prog", "--threads=3"};
  const auto cli = parse_sweep_cli(2, const_cast<char**>(argv));
  EXPECT_FALSE(cli.csv);
  EXPECT_EQ(cli.threads, 3);
  EXPECT_TRUE(cli.positional.empty());
}

}  // namespace
}  // namespace ftbar::util
