# Record → replay round-trip driver for the cli_replay_* tests.
#
# Usage (via add_test):
#   cmake -DSIM=<ftbar_sim> -DTRACE=<file> "-DARGS=rb;--procs;15;..."
#         [-DTAMPER=1] -P replay_roundtrip.cmake
#
# Records a run with --trace, then replays it and requires exit 0 — the
# recorded schedule is bit-identically reproducible. With TAMPER=1 every
# per-step state digest in the file is overwritten first and the replay
# must FAIL, proving divergence detection is live end to end.

execute_process(COMMAND ${SIM} ${ARGS} --trace ${TRACE}
                RESULT_VARIABLE record_rc OUTPUT_QUIET)
if(NOT record_rc EQUAL 0)
  message(FATAL_ERROR "record run exited ${record_rc}")
endif()

if(TAMPER)
  file(READ ${TRACE} content)
  string(REGEX REPLACE "\"sched\":\"d [0-9]+\"" "\"sched\":\"d 1\"" content "${content}")
  file(WRITE ${TRACE} "${content}")
endif()

execute_process(COMMAND ${SIM} replay --replay ${TRACE}
                RESULT_VARIABLE replay_rc OUTPUT_QUIET ERROR_QUIET)
if(TAMPER)
  if(replay_rc EQUAL 0)
    message(FATAL_ERROR "replay of a tampered trace unexpectedly succeeded")
  endif()
else()
  if(NOT replay_rc EQUAL 0)
    message(FATAL_ERROR "replay diverged or failed: exit ${replay_rc}")
  endif()
endif()
