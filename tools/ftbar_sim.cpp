// ftbar_sim — command-line driver for the simulation suite.
//
// Runs any of the repo's models with one command, prints summary
// statistics, and exits nonzero on a safety violation or missed progress —
// usable both for exploration and as a CI probe.
//
//   ftbar_sim cb|rb|mb      guarded-command run until --phases-goal phases
//   ftbar_sim timed         wave-granularity timed model (Figures 5/6)
//   ftbar_sim des           asynchronous discrete-event model
//   ftbar_sim recovery      Figure 7 recovery-time measurement
//   ftbar_sim replay        re-execute a run recorded with --trace
//
// Common options (defaults in parentheses):
//   --procs N (8)            processes / ring size
//   --phases-goal P (10)     successful phases to run
//   --num-phases n (4)       phase ring modulus
//   --seed S (1)             RNG seed
//   --csv                    machine-readable output
//   --trace FILE             write a trace of the run to FILE
//   --trace-format jsonl|chrome (jsonl)
//                            jsonl traces embed the recorded schedule and
//                            are replayable; chrome traces load in
//                            chrome://tracing / Perfetto (view-only)
//   --replay FILE            (replay command) the jsonl trace to re-execute;
//                            exits 5 if the replay diverges. Combine with
//                            --trace to record the re-execution (the output
//                            embeds the schedule, so it replays again)
// cb/rb/mb:
//   --semantics interleaving|maxpar (interleaving)
//   --detectable F (0)       per-process per-step detectable fault prob
//   --undetectable-start     corrupt every process before running
//   --topology ring|tworing|tree (ring; rb only)   --arity K (2)
// timed/des/recovery:
//   --c X (0.01)  --f X (0)  --height H (5)  --arity K (2)  --reps R (20)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "analysis/model.hpp"
#include "audit/debug_hook.hpp"
#include "core/cb.hpp"
#include "core/des_model.hpp"
#include "core/mb.hpp"
#include "core/rb.hpp"
#include "core/timed_model.hpp"
#include "sim/step_engine.hpp"
#include "trace/export.hpp"
#include "trace/monitor.hpp"
#include "trace/recorder.hpp"
#include "trace/replay.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

namespace {

using namespace ftbar;

struct Args {
  std::string command;
  int procs = 8;
  std::size_t phases_goal = 10;
  int num_phases = 4;
  std::uint64_t seed = 1;
  bool csv = false;
  sim::Semantics semantics = sim::Semantics::kInterleaving;
  double detectable = 0.0;
  bool undetectable_start = false;
  std::string topology = "ring";
  int arity = 2;
  double c = 0.01;
  double f = 0.0;
  int height = 5;
  int reps = 20;
  std::string trace;                  ///< output trace path; empty = off
  std::string trace_format = "jsonl";
  std::string replay;                 ///< input trace path (replay command)
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s cb|rb|mb|timed|des|recovery|replay [options]\n"
               "see the header of tools/ftbar_sim.cpp for the option list\n",
               argv0);
  std::exit(2);
}

Args parse(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--procs") {
      args.procs = std::atoi(value());
    } else if (flag == "--phases-goal") {
      args.phases_goal = static_cast<std::size_t>(std::atoll(value()));
    } else if (flag == "--num-phases") {
      args.num_phases = std::atoi(value());
    } else if (flag == "--seed") {
      args.seed = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (flag == "--csv") {
      args.csv = true;
    } else if (flag == "--semantics") {
      const std::string v = value();
      if (v == "maxpar") {
        args.semantics = sim::Semantics::kMaxParallel;
      } else if (v == "interleaving") {
        args.semantics = sim::Semantics::kInterleaving;
      } else {
        usage(argv[0]);
      }
    } else if (flag == "--detectable") {
      args.detectable = std::atof(value());
    } else if (flag == "--undetectable-start") {
      args.undetectable_start = true;
    } else if (flag == "--topology") {
      args.topology = value();
    } else if (flag == "--arity") {
      args.arity = std::atoi(value());
    } else if (flag == "--c") {
      args.c = std::atof(value());
    } else if (flag == "--f") {
      args.f = std::atof(value());
    } else if (flag == "--height") {
      args.height = std::atoi(value());
    } else if (flag == "--reps") {
      args.reps = std::atoi(value());
    } else if (flag == "--trace") {
      args.trace = value();
    } else if (flag == "--trace-format") {
      args.trace_format = value();
      if (args.trace_format != "jsonl" && args.trace_format != "chrome") {
        usage(argv[0]);
      }
    } else if (flag == "--replay") {
      args.replay = value();
    } else {
      usage(argv[0]);
    }
  }
  return args;
}

void emit(const Args& args, util::Table& table) {
  if (args.csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

/// The self-describing first line of a jsonl trace file; replay uses it to
/// rebuild the same program and action system.
std::string meta_line(const Args& args) {
  return std::string("{\"meta\":1,\"program\":\"") + args.command +
         "\",\"procs\":" + std::to_string(args.procs) +
         ",\"num_phases\":" + std::to_string(args.num_phases) +
         ",\"topology\":\"" + args.topology +
         "\",\"arity\":" + std::to_string(args.arity) + ",\"semantics\":\"" +
         (args.semantics == sim::Semantics::kMaxParallel ? "maxpar"
                                                         : "interleaving") +
         "\",\"seed\":" + std::to_string(args.seed) + "}";
}

/// Writes the recorded events (and, for jsonl, the embedded replayable
/// schedule) to args.trace. Returns false on I/O failure.
template <class P>
bool write_trace_file(const Args& args, const trace::TraceRecorder& recorder,
                      const trace::ScheduleRecording<P>* schedule) {
  std::ofstream os(args.trace);
  if (!os) {
    std::fprintf(stderr, "error: cannot write trace file %s\n", args.trace.c_str());
    return false;
  }
  const auto events = recorder.snapshot();
  if (args.trace_format == "chrome") {
    // Engine steps are unitless; spread them 1 ms apart on the viewer's
    // microsecond axis so slices stay visible.
    trace::write_chrome_trace(os, events, 1000.0);
  } else {
    os << meta_line(args) << "\n";
    trace::write_jsonl(os, events);
    if (schedule != nullptr) {
      for (const auto& line : trace::schedule_lines(*schedule)) {
        os << "{\"sched\":\"" << trace::json_escape(line) << "\"}\n";
      }
    }
  }
  if (recorder.dropped() > 0) {
    std::fprintf(stderr,
                 "warning: trace ring overflowed, %llu oldest events lost\n",
                 static_cast<unsigned long long>(recorder.dropped()));
  }
  return os.good();
}

/// Events-only trace (no replayable schedule): timed/recovery commands.
bool write_trace_file(const Args& args, const trace::TraceRecorder& recorder) {
  return write_trace_file(
      args, recorder,
      static_cast<const trace::ScheduleRecording<core::RbProc>*>(nullptr));
}

/// Shared driver for the three guarded-command programs.
template <class P>
int run_program(const Args& args, std::vector<P> start,
                std::vector<sim::Action<P>> actions, core::SpecMonitor& monitor,
                const std::function<void(std::size_t, P&, util::Rng&)>& detectable,
                const std::function<void(std::size_t, P&, util::Rng&)>& undetectable,
                const std::function<bool(const P&)>& sn_intact,
                const std::function<bool(const std::vector<P>&)>& recovered,
                const std::function<int(const std::vector<P>&)>& phase_of) {
  const bool tracing = !args.trace.empty();
  trace::TraceRecorder recorder(std::size_t{1} << 20);
  if (tracing) monitor.set_sink(&recorder);

  // These actions notify the SpecMonitor from their statements, so the
  // engine's construction-time FTBAR_AUDIT_DEBUG probing would flood the
  // monitor with spurious events; suspend it here — the cb/rb/mb drivers
  // audit a monitor-free twin of the action system instead.
  sim::StepEngine<P> eng = [&] {
    const audit::DebugAuditSuspend suspend_audit;
    return sim::StepEngine<P>(std::move(start), std::move(actions),
                              util::Rng(args.seed), args.semantics);
  }();
  util::Rng fault_rng(args.seed ^ 0xfa0117ULL);

  std::size_t recovery_steps = 0;
  if (args.undetectable_start) {
    monitor.on_undetectable_fault();
    for (std::size_t j = 0; j < eng.mutable_state().size(); ++j) {
      undetectable(j, eng.mutable_state()[j], fault_rng);
      if (tracing) {
        recorder.emit(trace::make_event(trace::Kind::kFaultUndetectable, 0.0,
                                        static_cast<std::int32_t>(j), 0,
                                        eng.state()[j].ph));
      }
    }
    const auto steps = eng.run_until(recovered, 10'000'000);
    if (!steps) {
      std::fprintf(stderr, "error: program did not stabilize\n");
      return 4;
    }
    recovery_steps = *steps;
    monitor.resync(phase_of(eng.state()));
  }

  // The schedule recording starts here — after any stabilization prefix —
  // so its initial state is the state replay re-executes from.
  std::optional<trace::ScheduleRecorder<P>> schedule;
  if (tracing) schedule.emplace(eng, &recorder);

  std::size_t steps = 0;
  std::size_t faults = 0;
  const std::size_t max_steps = 50'000'000;
  while (monitor.successful_phases() < args.phases_goal && steps < max_steps) {
    if (args.detectable > 0.0) {
      auto& state = eng.mutable_state();
      for (std::size_t j = 0; j < state.size(); ++j) {
        if (!fault_rng.bernoulli(args.detectable)) continue;
        int intact = 0;
        for (std::size_t q = 0; q < state.size(); ++q) {
          if (q != j && sn_intact(state[q])) ++intact;
        }
        if (intact > 0) {
          detectable(j, state[j], fault_rng);
          ++faults;
          if (tracing) {
            schedule->note_fault(j);
            recorder.emit(trace::make_event(
                trace::Kind::kFaultDetectable, static_cast<double>(steps),
                static_cast<std::int32_t>(j), state[j].ph));
          }
        }
      }
    }
    if ((schedule ? schedule->step() : eng.step()) == 0) break;
    ++steps;
  }

  if (tracing) {
    monitor.set_sink(nullptr);
    const auto& recording = schedule->recording();
    if (!write_trace_file(args, recorder, &recording)) return 2;
  }

  util::Table table({"metric", "value"});
  table.add_row({std::string("program"), args.command});
  table.add_row({std::string("processes"), static_cast<long long>(args.procs)});
  if (args.undetectable_start) {
    table.add_row({std::string("recovery steps"),
                   static_cast<long long>(recovery_steps)});
  }
  table.add_row({std::string("steps"), static_cast<long long>(steps)});
  table.add_row({std::string("successful phases"),
                 static_cast<long long>(monitor.successful_phases())});
  table.add_row({std::string("instances"),
                 static_cast<long long>(monitor.total_instances())});
  table.add_row({std::string("failed instances"),
                 static_cast<long long>(monitor.failed_instances())});
  table.add_row({std::string("faults injected"), static_cast<long long>(faults)});
  table.add_row({std::string("safety"),
                 std::string(monitor.safety_ok() ? "ok" : "VIOLATED")});
  emit(args, table);

  if (!monitor.safety_ok()) return 1;
  if (monitor.successful_phases() < args.phases_goal) return 3;
  return 0;
}

/// FTBAR_AUDIT_DEBUG for the monitored drivers: the live action systems
/// carry the SpecMonitor side channel (see run_program), so the declared
/// contracts are validated against a freshly built monitor-FREE twin.
/// `make_clean_actions` is only invoked when the audit actually runs.
template <class MakeActions, class State>
void debug_audit_twin(MakeActions&& make_clean_actions, const State& start,
                      const char* site) {
#ifndef NDEBUG
  if (audit::debug_audit_enabled()) {
    audit::debug_enforce(make_clean_actions(), start.size(), start, site);
  }
#else
  (void)make_clean_actions;
  (void)start;
  (void)site;
#endif
}

int run_cb(const Args& args) {
  const core::CbOptions opt{args.procs, args.num_phases};
  core::SpecMonitor monitor(args.procs, args.num_phases);
  debug_audit_twin([&] { return core::make_cb_actions(opt); },
                   core::cb_start_state(opt), "ftbar_sim cb");
  return run_program<core::CbProc>(
      args, core::cb_start_state(opt), core::make_cb_actions(opt, &monitor), monitor,
      core::cb_detectable_fault(opt, &monitor),
      core::cb_undetectable_fault(opt, &monitor),
      [](const core::CbProc& p) { return p.cp != core::Cp::kError; },
      [](const core::CbState& s) { return core::cb_is_start_state(s); },
      [](const core::CbState& s) { return s.front().ph; });
}

std::shared_ptr<const topology::Topology> make_topology(const Args& args) {
  using topology::Topology;
  if (args.topology == "ring") {
    return std::make_shared<const Topology>(Topology::ring(args.procs));
  }
  if (args.topology == "tworing") {
    return std::make_shared<const Topology>(Topology::two_ring(args.procs));
  }
  if (args.topology == "tree") {
    return std::make_shared<const Topology>(
        Topology::kary_tree(args.procs, args.arity));
  }
  std::fprintf(stderr, "unknown topology %s\n", args.topology.c_str());
  return nullptr;
}

int run_rb(const Args& args) {
  const auto topo = make_topology(args);
  if (!topo) return 2;
  const core::RbOptions opt{topo, args.num_phases, 0};
  core::SpecMonitor monitor(args.procs, args.num_phases);
  debug_audit_twin([&] { return core::make_rb_actions(opt); },
                   core::rb_start_state(opt), "ftbar_sim rb");
  return run_program<core::RbProc>(
      args, core::rb_start_state(opt), core::make_rb_actions(opt, &monitor), monitor,
      core::rb_detectable_fault(opt, &monitor),
      core::rb_undetectable_fault(opt, &monitor),
      [](const core::RbProc& p) { return core::sn_valid(p.sn); },
      [](const core::RbState& s) { return core::rb_is_start_state(s); },
      [](const core::RbState& s) { return s.front().ph; });
}

int run_mb(const Args& args) {
  const core::MbOptions opt{args.procs, args.num_phases, 0};
  core::SpecMonitor monitor(args.procs, args.num_phases);
  debug_audit_twin([&] { return core::make_mb_actions(opt); },
                   core::mb_start_state(opt), "ftbar_sim mb");
  return run_program<core::MbProc>(
      args, core::mb_start_state(opt), core::make_mb_actions(opt, &monitor), monitor,
      core::mb_detectable_fault(opt, &monitor),
      core::mb_undetectable_fault(opt, &monitor),
      [](const core::MbProc& p) { return core::mb_sn_valid(p.sn); },
      [](const core::MbState& s) { return core::mb_is_start_state(s); },
      [](const core::MbState& s) { return s.front().ph; });
}

int run_timed(const Args& args) {
  trace::TraceRecorder recorder(std::size_t{1} << 20);
  core::TimedRbModel model({args.height, args.c, args.f}, util::Rng(args.seed));
  if (!args.trace.empty()) model.set_sink(&recorder);
  const auto stats = model.run_phases(args.phases_goal);
  if (!args.trace.empty() && !write_trace_file(args, recorder)) return 2;
  const analysis::Params ap{args.height, args.c, args.f};

  util::Table table({"metric", "value"});
  table.set_precision(5);
  table.add_row({std::string("phases"), static_cast<long long>(args.phases_goal)});
  table.add_row({std::string("instances/phase"),
                 static_cast<double>(stats.instances) /
                     static_cast<double>(args.phases_goal)});
  table.add_row({std::string("analytic instances/phase"),
                 analysis::expected_instances(ap)});
  table.add_row({std::string("time/phase"),
                 stats.elapsed / static_cast<double>(args.phases_goal)});
  table.add_row({std::string("analytic time/phase"),
                 analysis::expected_phase_time(ap)});
  table.add_row({std::string("overhead vs 1+2hc %"),
                 100.0 * (stats.elapsed / static_cast<double>(args.phases_goal) /
                              analysis::intolerant_phase_time(ap) -
                          1.0)});
  emit(args, table);
  return 0;
}

int run_des(const Args& args) {
  core::DesParams p;
  p.num_procs = args.procs;
  p.arity = args.arity;
  p.c = args.c;
  p.f = args.f;
  p.num_phases = args.num_phases;
  p.seed = args.seed;
  core::DesRbSimulation sim(p);
  const auto r = sim.run(args.phases_goal);

  util::Table table({"metric", "value"});
  table.set_precision(5);
  table.add_row({std::string("phases"), static_cast<long long>(r.phases)});
  table.add_row({std::string("instances"), static_cast<long long>(r.instances)});
  table.add_row({std::string("faults"), static_cast<long long>(r.faults)});
  table.add_row({std::string("elapsed"), r.elapsed});
  table.add_row({std::string("time/phase"),
                 r.phases ? r.elapsed / static_cast<double>(r.phases) : 0.0});
  table.add_row({std::string("period upper bound"), sim.fault_free_period_bound()});
  table.add_row({std::string("safety"), std::string(r.safety_ok ? "ok" : "VIOLATED")});
  emit(args, table);
  return r.safety_ok && r.phases >= args.phases_goal ? 0 : 1;
}

int run_recovery(const Args& args) {
  const bool tracing = !args.trace.empty();
  trace::TraceRecorder recorder(std::size_t{1} << 20);
  const int num_procs = (1 << (args.height + 1)) - 1;
  core::SpecMonitor monitor(num_procs, 2);
  if (tracing) monitor.set_sink(&recorder);

  util::Rng rng(args.seed);
  util::Accumulator acc;
  for (int i = 0; i < args.reps; ++i) {
    // The first repetition of a traced run is recorded end to end; the
    // remaining repetitions run untraced (same RNG stream either way).
    const bool record = tracing && i == 0;
    acc.add(core::measure_recovery(args.height, args.c, rng,
                                   record ? &recorder : nullptr,
                                   record ? &monitor : nullptr));
  }

  util::Table table({"metric", "value"});
  table.set_precision(5);
  table.add_row({std::string("height"), static_cast<long long>(args.height)});
  table.add_row({std::string("c"), args.c});
  table.add_row({std::string("reps"), static_cast<long long>(args.reps)});
  table.add_row({std::string("mean recovery"), acc.mean()});
  table.add_row({std::string("max recovery"), acc.max()});
  table.add_row({std::string("analytic bound 5hc"),
                 analysis::recovery_bound({args.height, args.c, 0.0})});

  bool spec_ok = true;
  if (tracing) {
    if (!write_trace_file(args, recorder)) return 2;
    // Offline validation: the trace alone must witness a safe recovery
    // within the Lemma 4.1.4 bound.
    const auto check = trace::check_trace(recorder.snapshot(), num_procs, 2);
    spec_ok = check.ok;
    table.add_row({std::string("trace events"),
                   static_cast<long long>(recorder.recorded())});
    table.add_row({std::string("recovery bursts"),
                   static_cast<long long>(check.bursts.size())});
    if (!check.bursts.empty()) {
      table.add_row({std::string("burst m"),
                     static_cast<long long>(check.bursts.front().m)});
      table.add_row({std::string("burst phases started"),
                     static_cast<long long>(check.bursts.front().started_phases)});
    }
    table.add_row({std::string("trace spec check"),
                   std::string(check.ok ? "ok" : "VIOLATED")});
    for (const auto& v : check.violations) {
      std::fprintf(stderr, "trace spec violation: %s\n", v.c_str());
    }
  }
  emit(args, table);
  return spec_ok ? 0 : 1;
}

template <class P>
int do_replay(const Args& args, const Args& meta, int procs,
              const std::vector<sim::Action<P>>& actions,
              const std::vector<std::string>& sched) {
  const auto rec = trace::parse_schedule_lines<P>(sched);
  if (!rec) {
    std::fprintf(stderr, "error: malformed schedule in %s\n", args.replay.c_str());
    return 2;
  }
  if (rec->initial.size() != static_cast<std::size_t>(procs)) {
    std::fprintf(stderr, "error: schedule process count %zu != meta procs %d\n",
                 rec->initial.size(), procs);
    return 2;
  }
  // --trace on replay: record the re-execution's kActionFired stream and
  // write it with the schedule embedded, so the output is itself replayable.
  const bool tracing = !args.trace.empty();
  trace::TraceRecorder recorder(std::size_t{1} << 20);
  const auto report =
      trace::replay_schedule(*rec, actions, tracing ? &recorder : nullptr);
  if (tracing) {
    Args tmeta = meta;
    tmeta.semantics = rec->semantics;
    if (!write_trace_file(tmeta, recorder, &*rec)) return 2;
  }
  util::Table table({"metric", "value"});
  table.add_row({std::string("steps replayed"),
                 static_cast<long long>(report.steps_replayed)});
  table.add_row({std::string("replay"),
                 std::string(report.ok ? "ok" : "DIVERGED")});
  emit(args, table);
  if (!report.ok) {
    std::fprintf(stderr, "replay diverged at step %zu: %s\n",
                 report.diverged_step, report.message.c_str());
    return 5;
  }
  return 0;
}

int run_replay(const Args& args) {
  if (args.replay.empty()) {
    std::fprintf(stderr, "error: replay requires --replay FILE\n");
    return 2;
  }
  std::ifstream is(args.replay);
  if (!is) {
    std::fprintf(stderr, "error: cannot open %s\n", args.replay.c_str());
    return 2;
  }
  Args meta = args;
  std::vector<std::string> sched;
  bool saw_meta = false;
  std::string line;
  while (std::getline(is, line)) {
    if (!saw_meta && line.find("\"meta\":1") != std::string::npos) {
      const auto program = trace::json_string_field(line, "program");
      const auto procs = trace::json_int_field(line, "procs");
      const auto num_phases = trace::json_int_field(line, "num_phases");
      if (!program || !procs || !num_phases) continue;
      meta.command = *program;
      meta.procs = static_cast<int>(*procs);
      meta.num_phases = static_cast<int>(*num_phases);
      if (const auto topo = trace::json_string_field(line, "topology")) {
        meta.topology = *topo;
      }
      if (const auto arity = trace::json_int_field(line, "arity")) {
        meta.arity = static_cast<int>(*arity);
      }
      saw_meta = true;
    } else if (const auto s = trace::json_string_field(line, "sched")) {
      // Schedule lines contain no JSON-escaped characters by construction.
      sched.push_back(*s);
    }
  }
  if (!saw_meta || sched.empty()) {
    std::fprintf(stderr,
                 "error: %s has no replayable schedule (jsonl traces of "
                 "cb/rb/mb runs embed one; chrome traces do not)\n",
                 args.replay.c_str());
    return 2;
  }
  if (meta.command == "cb") {
    const core::CbOptions opt{meta.procs, meta.num_phases};
    return do_replay<core::CbProc>(args, meta, meta.procs,
                                   core::make_cb_actions(opt, nullptr), sched);
  }
  if (meta.command == "rb") {
    const auto topo = make_topology(meta);
    if (!topo) return 2;
    const core::RbOptions opt{topo, meta.num_phases, 0};
    return do_replay<core::RbProc>(args, meta, meta.procs,
                                   core::make_rb_actions(opt, nullptr), sched);
  }
  if (meta.command == "mb") {
    const core::MbOptions opt{meta.procs, meta.num_phases, 0};
    return do_replay<core::MbProc>(args, meta, meta.procs,
                                   core::make_mb_actions(opt, nullptr), sched);
  }
  std::fprintf(stderr, "error: cannot replay program '%s'\n", meta.command.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  if (args.command == "cb") return run_cb(args);
  if (args.command == "rb") return run_rb(args);
  if (args.command == "mb") return run_mb(args);
  if (args.command == "timed") return run_timed(args);
  if (args.command == "des") return run_des(args);
  if (args.command == "recovery") return run_recovery(args);
  if (args.command == "replay") return run_replay(args);
  usage(argv[0]);
}
