// ftbar_check — explicit-state model-checking driver for the paper's
// programs (the verification counterpart of ftbar_sim).
//
//   ftbar_check --program cb|rb|rbp|mb --n N [options]
//
// Exhaust mode (default) runs the parallel checker of src/check/ over the
// chosen root set and semantics; swarm mode runs budgeted random walks
// through the live engine instead. Exit codes: 0 = all checks passed,
// 1 = a property failed (violation found, or convergence query false),
// 2 = usage / I/O error, 3 = state budget exhausted (verdict unknown).
//
// Options (defaults in parentheses):
//   --program cb|rb|rbp|mb   rbp = RB on the two intersecting rings (Fig 2b)
//   --n N (4)                processes (ring size for mb)
//   --num-phases n (2)       phase ring modulus
//   --semantics interleaving|maxpar|both (both)
//   --fault-class none|undetectable (undetectable)
//       none:         explore fault-free runs from the start state and
//                     check the program's closure invariant on every state
//       undetectable: explore from every single-process corruption of the
//                     start state and require convergence — a legitimate
//                     state reachable from every visited state AND no
//                     cycle/deadlock outside the legitimate set
//   --mode exhaust|swarm (exhaust)
//   --schedule bfs|ws (bfs)  exhaust exploration order: level-synchronized
//                            BFS or work-stealing deques (same visited set
//                            and diameter; ws scales better across threads)
//   --symmetry               canonicalize states under the program's declared
//                            symmetry group (phase rotation) — explores the
//                            quotient space, one state per orbit. Verdicts
//                            are unchanged (the invariants are group-
//                            invariant); state counts shrink by roughly the
//                            group order. Incompatible with --oracle, whose
//                            differential state-count comparison only holds
//                            in the unreduced space.
//   --stats                  periodic exploration progress on stderr and a
//                            final counters line after each run (including
//                            chunk occupancy, steals and bulk-insert group
//                            sizes — the batching health signals)
//   --threads T (1)          checker worker threads / swarm pool size
//   --chunk C (64)           states per scheduler handoff unit (1-256);
//                            1 restores per-state handoff. The visited set
//                            and single-threaded counterexamples are
//                            identical at every setting
//   --max-states M (2000000)
//   --walks W (256) --depth D (256) --seed S (1)      swarm budget
//   --seq-modulus L (0)      mb only; 0 = default 2N (L=2N+2 in paper terms)
//   --oracle                 cross-check states visited + digest fingerprint
//                            against the seed sim::Explorer (interleaving)
//   --weaken                 deliberately falsify the invariant ("the root
//                            never reaches cp=success") to exercise the
//                            counterexample path: find, ddmin-shrink,
//                            digest-verify via trace::replay_schedule
//   --cx-out FILE            write the (weakened or real) counterexample as
//                            a replayable jsonl trace for `ftbar_sim replay`
//   --csv                    machine-readable one-line-per-run output
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#ifndef NDEBUG
#include "audit/debug_hook.hpp"
#endif
#include "check/checker.hpp"
#include "check/counterexample.hpp"
#include "check/programs.hpp"
#include "check/swarm.hpp"
#include "sim/model_check.hpp"
#include "trace/export.hpp"
#include "trace/replay.hpp"

namespace {

using namespace ftbar;

struct Args {
  std::string program;
  int n = 4;
  int num_phases = 2;
  std::string semantics = "both";
  std::string fault_class = "undetectable";
  std::string mode = "exhaust";
  std::string schedule = "bfs";
  bool symmetry = false;
  bool stats = false;
  std::size_t threads = 1;
  std::size_t chunk = 64;
  std::size_t max_states = 2'000'000;
  std::size_t walks = 256;
  std::size_t depth = 256;
  std::uint64_t seed = 1;
  int seq_modulus = 0;
  bool oracle = false;
  bool weaken = false;
  std::string cx_out;
  bool csv = false;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --program cb|rb|rbp|mb [--n N] [--num-phases n]\n"
               "  [--semantics interleaving|maxpar|both] "
               "[--fault-class none|undetectable]\n"
               "  [--mode exhaust|swarm] [--schedule bfs|ws] [--symmetry]\n"
               "  [--stats] [--threads T] [--chunk C] [--max-states M]\n"
               "  [--walks W] [--depth D] [--seed S] [--seq-modulus L]\n"
               "  [--oracle] [--weaken] [--cx-out FILE] [--csv]\n",
               argv0);
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--program") {
      args.program = value();
    } else if (flag == "--n") {
      args.n = std::atoi(value());
    } else if (flag == "--num-phases") {
      args.num_phases = std::atoi(value());
    } else if (flag == "--semantics") {
      args.semantics = value();
    } else if (flag == "--fault-class") {
      args.fault_class = value();
    } else if (flag == "--mode") {
      args.mode = value();
    } else if (flag == "--schedule") {
      args.schedule = value();
    } else if (flag == "--symmetry") {
      args.symmetry = true;
    } else if (flag == "--stats") {
      args.stats = true;
    } else if (flag == "--threads") {
      args.threads = static_cast<std::size_t>(std::atoll(value()));
    } else if (flag == "--chunk") {
      args.chunk = static_cast<std::size_t>(std::atoll(value()));
    } else if (flag == "--max-states") {
      args.max_states = static_cast<std::size_t>(std::atoll(value()));
    } else if (flag == "--walks") {
      args.walks = static_cast<std::size_t>(std::atoll(value()));
    } else if (flag == "--depth") {
      args.depth = static_cast<std::size_t>(std::atoll(value()));
    } else if (flag == "--seed") {
      args.seed = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (flag == "--seq-modulus") {
      args.seq_modulus = std::atoi(value());
    } else if (flag == "--oracle") {
      args.oracle = true;
    } else if (flag == "--weaken") {
      args.weaken = true;
    } else if (flag == "--cx-out") {
      args.cx_out = value();
    } else if (flag == "--csv") {
      args.csv = true;
    } else {
      usage(argv[0]);
    }
  }
  if (args.program.empty()) usage(argv[0]);
  if (args.semantics != "interleaving" && args.semantics != "maxpar" &&
      args.semantics != "both") {
    usage(argv[0]);
  }
  if (args.fault_class != "none" && args.fault_class != "undetectable") {
    usage(argv[0]);
  }
  if (args.mode != "exhaust" && args.mode != "swarm") usage(argv[0]);
  if (args.schedule != "bfs" && args.schedule != "ws") usage(argv[0]);
  if (args.symmetry && args.oracle) {
    std::fprintf(stderr,
                 "error: --oracle compares unreduced state counts against the "
                 "seed Explorer and cannot run with --symmetry\n");
    std::exit(2);
  }
  return args;
}

const char* semantics_name(sim::Semantics s) {
  return s == sim::Semantics::kMaxParallel ? "maxpar" : "interleaving";
}

/// Hash functor adapting the digest to the seed Explorer's interface.
template <class P>
struct DigestHash {
  std::size_t operator()(const std::vector<P>& s) const noexcept {
    return static_cast<std::size_t>(trace::state_digest(s));
  }
};

/// The ftbar_sim-compatible meta line for counterexample trace files.
template <class P>
std::string meta_line(const Args& args, const check::ProgramBundle<P>& bundle,
                      sim::Semantics semantics) {
  return std::string("{\"meta\":1,\"program\":\"") + bundle.meta_program +
         "\",\"procs\":" + std::to_string(bundle.procs) +
         ",\"num_phases\":" + std::to_string(bundle.num_phases) +
         ",\"topology\":\"" + bundle.meta_topology +
         "\",\"arity\":" + std::to_string(bundle.arity) + ",\"semantics\":\"" +
         semantics_name(semantics) + "\",\"seed\":" + std::to_string(args.seed) +
         "}";
}

template <class P>
bool write_counterexample(const Args& args, const check::ProgramBundle<P>& bundle,
                          sim::Semantics semantics,
                          const trace::ScheduleRecording<P>& rec) {
  std::ofstream os(args.cx_out);
  if (!os) {
    std::fprintf(stderr, "error: cannot write %s\n", args.cx_out.c_str());
    return false;
  }
  os << meta_line(args, bundle, semantics) << "\n";
  for (const auto& line : trace::schedule_lines(rec)) {
    os << "{\"sched\":\"" << trace::json_escape(line) << "\"}\n";
  }
  if (!bundle.replayable_by_sim) {
    std::fprintf(stderr,
                 "warning: %s uses a non-default sequence modulus; "
                 "`ftbar_sim replay` rebuilds defaults and will diverge\n",
                 args.cx_out.c_str());
  }
  return os.good();
}

struct RunOutcome {
  int exit_code = 0;
  std::size_t interleaving_states = 0;  ///< for the oracle cross-check
};

void report(const Args& args, sim::Semantics sem, const char* verdict,
            std::size_t states, std::size_t levels, double seconds,
            const std::string& extra) {
  const double rate = seconds > 0 ? static_cast<double>(states) / seconds : 0.0;
  if (args.csv) {
    std::printf("%s,%s,%s,%s,%s,%zu,%zu,%.3f,%.0f%s%s\n", args.program.c_str(),
                semantics_name(sem), args.fault_class.c_str(), args.mode.c_str(),
                verdict, states, levels, seconds, rate, extra.empty() ? "" : ",",
                extra.c_str());
  } else {
    std::printf("%-4s %-12s fault=%-12s %-8s states=%-9zu levels=%-4zu "
                "%6.3fs %10.0f states/s  %s%s\n",
                args.program.c_str(), semantics_name(sem),
                args.fault_class.c_str(), verdict, states, levels, seconds, rate,
                extra.c_str(), extra.empty() ? "" : " ");
  }
}

/// Exhaustive run under one semantics. Returns 0/1/3 per the exit contract.
template <class P>
int run_exhaust(const Args& args, const check::ProgramBundle<P>& bundle,
                sim::Semantics semantics, RunOutcome& outcome) {
  const auto fc = args.fault_class == "none" ? check::FaultClass::kNone
                                             : check::FaultClass::kUndetectable;
  check::CheckOptions copt;
  copt.semantics = semantics;
  copt.max_states = args.max_states;
  copt.threads = args.threads;
  copt.schedule = args.schedule == "ws" ? check::Schedule::kWorkStealing
                                        : check::Schedule::kBfs;
  copt.symmetry = args.symmetry;
  copt.chunk = args.chunk;
  // Convergence queries need the transition graph; plain invariant checking
  // (fault-free closure, weakened-invariant hunts) does not.
  copt.record_edges = fc == check::FaultClass::kUndetectable && !args.weaken;

  std::unique_ptr<check::CheckStats> live;
  if (args.stats) {
    live = std::make_unique<check::CheckStats>();
    copt.live_stats = live.get();
  }

  typename check::Checker<P>::Invariant invariant;
  if (args.weaken) {
    // Deliberately false: fault-free runs complete phases, so the root does
    // reach cp=success — this exists to exercise the counterexample path.
    invariant = [](const std::vector<P>& s) {
      return s.front().cp != core::Cp::kSuccess;
    };
  } else if (fc == check::FaultClass::kNone) {
    invariant = bundle.safe;
  } else {
    invariant = [](const std::vector<P>&) { return true; };
  }
  const auto& roots =
      args.weaken ? bundle.roots(check::FaultClass::kNone) : bundle.roots(fc);

  check::Checker<P> checker(bundle.actions, bundle.procs, copt, bundle.symmetry);

  // Progress reporter: a stderr line every ~2s while exploration runs,
  // fed by the checker's lock-free live counters. Short runs print nothing.
  std::atomic<bool> run_done{false};
  std::thread progress;
  if (args.stats) {
    progress = std::thread([&] {
      const auto start = std::chrono::steady_clock::now();
      int ticks = 0;
      while (!run_done.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        if (++ticks % 20 != 0) continue;
        const double secs = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start)
                                .count();
        const auto expanded = live->expanded.load(std::memory_order_relaxed);
        const auto transitions = live->transitions.load(std::memory_order_relaxed);
        const auto dups = live->dup_fast.load(std::memory_order_relaxed) +
                          live->dup_slow.load(std::memory_order_relaxed);
        std::fprintf(stderr,
                     "[check] %s/%s: states=%llu expanded=%llu (%.0f/s) "
                     "frontier=%llu steals=%llu dedup=%.1f%%\n",
                     args.program.c_str(), semantics_name(semantics),
                     static_cast<unsigned long long>(
                         live->states.load(std::memory_order_relaxed)),
                     static_cast<unsigned long long>(expanded),
                     secs > 0 ? static_cast<double>(expanded) / secs : 0.0,
                     static_cast<unsigned long long>(
                         live->frontier.load(std::memory_order_relaxed)),
                     static_cast<unsigned long long>(
                         live->steals.load(std::memory_order_relaxed)),
                     transitions > 0 ? 100.0 * static_cast<double>(dups) /
                                           static_cast<double>(transitions)
                                     : 0.0);
      }
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto result = checker.run(roots, invariant);
  const auto t1 = std::chrono::steady_clock::now();
  run_done.store(true, std::memory_order_relaxed);
  if (progress.joinable()) progress.join();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();

  if (args.stats) {
    const auto& c = result.counters;
    std::fprintf(args.csv ? stderr : stdout,
                 "  counters: expanded=%llu transitions=%llu interned=%llu "
                 "dup_fast=%llu dup_slow=%llu steals=%llu reexpansions=%llu "
                 "guard_evals=%llu dedup_hit=%.1f%% rate=%.0f states/s\n"
                 "  batching: chunks=%llu occupancy=%.1f/%zu flushes=%llu "
                 "shard_groups=%llu avg_group=%.1f\n",
                 static_cast<unsigned long long>(c.expanded),
                 static_cast<unsigned long long>(c.transitions),
                 static_cast<unsigned long long>(c.interned),
                 static_cast<unsigned long long>(c.dup_fast),
                 static_cast<unsigned long long>(c.dup_slow),
                 static_cast<unsigned long long>(c.steals),
                 static_cast<unsigned long long>(c.reexpansions),
                 static_cast<unsigned long long>(c.guard_evals),
                 100.0 * c.dedup_hit_rate(), c.states_per_sec(),
                 static_cast<unsigned long long>(c.chunks), c.avg_chunk_fill(),
                 args.chunk, static_cast<unsigned long long>(c.flushes),
                 static_cast<unsigned long long>(c.bulk_groups),
                 c.avg_group_size());
  }

  if (semantics == sim::Semantics::kInterleaving) {
    outcome.interleaving_states = result.states_visited;
  }

  if (result.truncated) {
    report(args, semantics, "TRUNCATED", result.states_visited, result.levels,
           seconds, "state budget exhausted; verdict unknown");
    return 3;
  }

  if (args.weaken) {
    if (!result.violation) {
      report(args, semantics, "FAIL", result.states_visited, result.levels,
             seconds, "weakened invariant produced no violation");
      return 1;
    }
    auto cx = check::shrink_counterexample(*result.violation, bundle.actions,
                                           invariant);
    const auto rec = check::counterexample_schedule(cx);
    const auto replay = trace::replay_schedule(rec, bundle.actions);
    if (!replay.ok) {
      report(args, semantics, "FAIL", result.states_visited, result.levels,
             seconds, "counterexample failed digest replay: " + replay.message);
      return 1;
    }
    if (!args.cx_out.empty() &&
        !write_counterexample(args, bundle, semantics, rec)) {
      return 2;
    }
    report(args, semantics, "CX-OK", result.states_visited, result.levels,
           seconds,
           "violated '" + cx.violated_by + "' in " +
               std::to_string(cx.length()) + " steps (shrunk from " +
               std::to_string(result.violation->length()) + "); replay verified");
    return 0;
  }

  if (result.violation) {
    const auto rec = check::counterexample_schedule(*result.violation);
    if (!args.cx_out.empty() &&
        !write_counterexample(args, bundle, semantics, rec)) {
      return 2;
    }
    report(args, semantics, "FAIL", result.states_visited, result.levels,
           seconds,
           "invariant violated by '" + result.violation->violated_by + "' at depth " +
               std::to_string(result.violation->length()));
    return 1;
  }

  std::string extra;
  int code = 0;
  if (fc == check::FaultClass::kUndetectable) {
    // Guaranteed convergence (no cycle/deadlock outside the legitimate set,
    // i.e. under ANY scheduler) is strictly stronger than the paper's
    // weakly-fair claim; all four programs satisfy it at their shipped
    // parameters, so failing it is the tighter regression tripwire.
    const bool possible = checker.legit_reachable_from_all(bundle.legit);
    const bool guaranteed = possible && checker.converges_outside(bundle.legit);
    if (guaranteed) {
      extra = "convergence guaranteed from every state";
    } else if (possible) {
      extra = "convergence possible but NOT guaranteed "
              "(cycle outside the legitimate set)";
      code = 1;
    } else {
      extra = "some state cannot reach a legitimate state";
      code = 1;
    }
  } else {
    extra = "closure invariant holds on all reachable states";
  }

  if (args.oracle && semantics == sim::Semantics::kInterleaving) {
    sim::Explorer<P, DigestHash<P>> seed(bundle.actions, DigestHash<P>{},
                                         args.max_states);
    const auto seed_result = seed.explore(roots, invariant);
    bool match = !seed_result.truncated && !seed_result.violation &&
                 seed_result.states_visited == result.states_visited;
    if (match) {
      std::vector<std::uint64_t> seed_digests;
      seed_digests.reserve(seed.states().size());
      for (const auto& s : seed.states()) {
        seed_digests.push_back(trace::state_digest(s));
      }
      std::sort(seed_digests.begin(), seed_digests.end());
      match = seed_digests == checker.sorted_digests();
    }
    extra += match ? "; oracle match (" + std::to_string(result.states_visited) +
                         " states, identical digest sets)"
                   : "; ORACLE MISMATCH vs seed Explorer";
    if (!match) code = 1;
  }

  report(args, semantics, code == 0 ? "PASS" : "FAIL", result.states_visited,
         result.levels, seconds, extra);
  return code;
}

template <class P>
int run_swarm(const Args& args, const check::ProgramBundle<P>& bundle,
              sim::Semantics semantics) {
  const auto fc = args.fault_class == "none" ? check::FaultClass::kNone
                                             : check::FaultClass::kUndetectable;
  check::SwarmOptions sopt;
  sopt.semantics = semantics;
  sopt.walks = args.walks;
  sopt.depth = args.depth;
  sopt.seed = args.seed;
  sopt.threads = static_cast<int>(args.threads);

  // Each walk starts from a root drawn from the fault class's root set —
  // for kUndetectable that is a random single-process corruption.
  const auto& roots = bundle.roots(fc);
  auto make_root = [&roots](util::Rng& rng) {
    return roots[rng.uniform(roots.size())];
  };
  // Fault-free walks must stay inside the closure invariant; perturbed
  // walks are coverage/fuzz runs (invariant checking would trip on the
  // perturbation itself), unless --weaken hunts the planted violation.
  std::function<bool(const std::vector<P>&)> invariant;
  if (args.weaken) {
    invariant = [](const std::vector<P>& s) {
      return s.front().cp != core::Cp::kSuccess;
    };
  } else if (fc == check::FaultClass::kNone) {
    invariant = bundle.safe;
  } else {
    invariant = [](const std::vector<P>&) { return true; };
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto result = check::swarm_check<P>(bundle.actions, make_root, invariant, sopt);
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();

  std::string extra = std::to_string(result.walks_run) + " walks, " +
                      std::to_string(result.total_steps) + " steps, coverage " +
                      std::to_string(result.distinct_states) + " distinct states";
  int code = 0;
  if (!result.ok()) {
    extra += "; " + std::to_string(result.violating_walks) +
             " violating walks, first at walk " +
             std::to_string(result.violating_walk) + " via '" +
             result.violated_by + "'";
    if (!args.cx_out.empty() &&
        !write_counterexample(args, bundle, semantics, *result.violation)) {
      return 2;
    }
    code = args.weaken ? 0 : 1;  // --weaken EXPECTS the planted violation
  } else if (args.weaken) {
    extra += "; weakened invariant produced no violation";
    code = 1;
  }
  report(args, semantics, code == 0 ? (result.ok() ? "PASS" : "CX-OK") : "FAIL",
         result.distinct_states, 0, seconds, extra);
  return code;
}

template <class P>
int run_bundle(const Args& args, const check::ProgramBundle<P>& bundle) {
#ifndef NDEBUG
  // Opt-in declared-contract validation before any exploration (debug
  // builds with FTBAR_AUDIT_DEBUG=1): an unsound read-set or foreign write
  // would make every verdict below meaningless. Aborts on a violation.
  if (audit::debug_audit_enabled() && !bundle.start_roots.empty()) {
    audit::debug_enforce(bundle.actions, bundle.procs,
                         bundle.start_roots.front(), "ftbar_check");
  }
#endif
  std::vector<sim::Semantics> semantics;
  if (args.semantics != "maxpar") semantics.push_back(sim::Semantics::kInterleaving);
  if (args.semantics != "interleaving") {
    semantics.push_back(sim::Semantics::kMaxParallel);
  }
  int worst = 0;
  RunOutcome outcome;
  for (const auto sem : semantics) {
    const int code = args.mode == "swarm" ? run_swarm(args, bundle, sem)
                                          : run_exhaust(args, bundle, sem, outcome);
    worst = std::max(worst, code);
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  if (args.program == "cb") {
    return run_bundle(args, check::make_cb_bundle(args.n, args.num_phases));
  }
  if (args.program == "rb") {
    return run_bundle(args, check::make_rb_bundle(args.n, args.num_phases));
  }
  if (args.program == "rbp") {
    return run_bundle(args, check::make_rbp_bundle(args.n, args.num_phases));
  }
  if (args.program == "mb") {
    return run_bundle(args,
                      check::make_mb_bundle(args.n, args.num_phases, args.seq_modulus));
  }
  std::fprintf(stderr, "unknown program '%s'\n", args.program.c_str());
  return 2;
}
