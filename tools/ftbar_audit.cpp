// ftbar_audit — contract auditor for the paper's guarded-command programs
// (the static-analysis counterpart of ftbar_check: instead of exploring
// the state space, it checks that every declared contract the fast engines
// trust — read-sets, write-locality, purity, granularity class, symmetry —
// agrees with the actions' actual, experimentally inferred effects).
//
//   ftbar_audit --program cb|rb|rbp|mb|all [options]
//
// Exit codes: 0 = clean (no errors; warnings allowed unless --strict),
// 1 = contract violation found, 2 = usage error.
//
// Options (defaults in parentheses):
//   --program cb|rb|rbp|mb|all   programs to audit (rbp needs --n >= 3)
//   --n N (4)                    processes (ring size for mb)
//   --num-phases n (2)           phase ring modulus
//   --seq-modulus L (0)          mb only; 0 = default 2N
//   --seed S (1)                 probe-walk + fuzz-sampling seed; the report
//                                is byte-identical for identical seeds
//   --samples K (0)              per-(state,slot) cap on domain variants;
//                                0 = exhaustive, K > 0 = seeded fuzz sample
//   --walks W (2) --depth D (24) probe walks per perturbed root
//   --max-states M (4096)        probe-state cap
//   --json                       machine-readable report on stdout
//   --quiet                      findings only (suppress per-action table)
//   --strict                     warnings also fail (exit 1)
//   --no-symmetry                skip the automorphism audit
//   --mutate KIND                plant a deliberate contract violation
//                                first (self-test hook): under-declare |
//                                over-declare | foreign-write |
//                                bad-automorphism | mb-xor | nondeterminism
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "audit/audit.hpp"
#include "audit/mutate.hpp"
#include "audit/presets.hpp"
#include "audit/report.hpp"
#include "check/programs.hpp"

namespace {

using namespace ftbar;

struct Args {
  std::string program;
  int n = 4;
  int num_phases = 2;
  int seq_modulus = 0;
  std::uint64_t seed = 1;
  std::size_t samples = 0;
  std::size_t walks = 2;
  std::size_t depth = 24;
  std::size_t max_states = 4096;
  bool json = false;
  bool quiet = false;
  bool strict = false;
  bool no_symmetry = false;
  std::optional<audit::Mutation> mutate;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --program cb|rb|rbp|mb|all [--n N] [--num-phases n]\n"
               "  [--seq-modulus L] [--seed S] [--samples K] [--walks W]\n"
               "  [--depth D] [--max-states M] [--json] [--quiet] [--strict]\n"
               "  [--no-symmetry] [--mutate under-declare|over-declare|\n"
               "   foreign-write|bad-automorphism|mb-xor|nondeterminism]\n",
               argv0);
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--program") {
      args.program = value();
    } else if (flag == "--n") {
      args.n = std::atoi(value());
    } else if (flag == "--num-phases") {
      args.num_phases = std::atoi(value());
    } else if (flag == "--seq-modulus") {
      args.seq_modulus = std::atoi(value());
    } else if (flag == "--seed") {
      args.seed = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (flag == "--samples") {
      args.samples = static_cast<std::size_t>(std::atoll(value()));
    } else if (flag == "--walks") {
      args.walks = static_cast<std::size_t>(std::atoll(value()));
    } else if (flag == "--depth") {
      args.depth = static_cast<std::size_t>(std::atoll(value()));
    } else if (flag == "--max-states") {
      args.max_states = static_cast<std::size_t>(std::atoll(value()));
    } else if (flag == "--json") {
      args.json = true;
    } else if (flag == "--quiet") {
      args.quiet = true;
    } else if (flag == "--strict") {
      args.strict = true;
    } else if (flag == "--no-symmetry") {
      args.no_symmetry = true;
    } else if (flag == "--mutate") {
      args.mutate = audit::parse_mutation(value());
      if (!args.mutate) usage(argv[0]);
    } else {
      usage(argv[0]);
    }
  }
  if (args.program.empty()) usage(argv[0]);
  if (args.program != "cb" && args.program != "rb" && args.program != "rbp" &&
      args.program != "mb" && args.program != "all") {
    usage(argv[0]);
  }
  if (args.mutate && args.program == "all") {
    std::fprintf(stderr, "error: --mutate needs a single --program\n");
    std::exit(2);
  }
  return args;
}

template <class P>
void audit_one(const Args& args, check::ProgramBundle<P> bundle,
               const std::string& name, audit::AuditReport& report) {
  auto cfg = audit::make_audit_config(name, bundle.procs);
  cfg.check_symmetry = !args.no_symmetry;
  cfg.walks_per_root = args.walks;
  cfg.walk_depth = args.depth;
  cfg.max_probe_states = args.max_states;
  cfg.effects.seed = args.seed;
  cfg.effects.max_variants_per_slot = args.samples;
  if (args.mutate) {
    const std::string planted = audit::apply_mutation(bundle, *args.mutate);
    if (planted.empty()) {
      std::fprintf(stderr,
                   "error: mutation %s has no target in program %s "
                   "(mb-xor and foreign-write need enough processes)\n",
                   audit::mutation_name(*args.mutate), name.c_str());
      std::exit(2);
    }
    std::fprintf(stderr, "mutation %s planted in action '%s'\n",
                 audit::mutation_name(*args.mutate), planted.c_str());
  }
  report.programs.push_back(audit::audit_bundle(
      bundle, cfg, audit::make_extra_probe_roots(name, bundle)));
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  const bool all = args.program == "all";
  audit::AuditReport report;
  if (all || args.program == "cb") {
    audit_one(args, check::make_cb_bundle(args.n, args.num_phases), "cb",
              report);
  }
  if (all || args.program == "rb") {
    audit_one(args, check::make_rb_bundle(args.n, args.num_phases), "rb",
              report);
  }
  if (all || args.program == "rbp") {
    audit_one(args, check::make_rbp_bundle(args.n, args.num_phases), "rbp",
              report);
  }
  if (all || args.program == "mb") {
    audit_one(args,
              check::make_mb_bundle(args.n, args.num_phases, args.seq_modulus),
              "mb", report);
  }
  if (args.json) {
    std::printf("%s\n", audit::render_json(report).c_str());
  } else {
    std::fputs(audit::render_text(report, /*verbose_actions=*/!args.quiet).c_str(),
               stdout);
  }
  const bool fail =
      report.num_errors() > 0 || (args.strict && report.num_warnings() > 0);
  return fail ? 1 : 0;
}
