# Mutation self-test driver for ftbar_audit (see tools/CMakeLists.txt).
#
# Runs the auditor with a planted contract violation (--mutate) and asserts
# the three things the acceptance criteria demand:
#   1. nonzero exit — the violation is fatal, not advisory;
#   2. the report contains a finding of the expected lint (-DLINT=...);
#   3. that finding names the planted action (the tool prints
#      "mutation <kind> planted in action '<name>'" on stderr; "(group)"
#      means a group-level symmetry mutation, where the equivariance
#      findings name the non-commuting actions instead).
#
# Inputs: -DAUDIT=<ftbar_audit binary> -DLINT=<lint slug> -DARGS=<;-list>.

execute_process(COMMAND ${AUDIT} ${ARGS}
                RESULT_VARIABLE code
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err)

if(code EQUAL 0)
  message(FATAL_ERROR
          "mutated run exited 0 — the auditor missed the planted violation\n"
          "stdout:\n${out}\nstderr:\n${err}")
endif()

string(REGEX MATCH "planted in action '([^']+)'" _planted_line "${err}")
if(NOT _planted_line)
  message(FATAL_ERROR
          "no 'planted in action' line on stderr (mutation not applied?)\n"
          "stderr:\n${err}")
endif()
set(planted "${CMAKE_MATCH_1}")

if(NOT out MATCHES "\\[(error|warning)\\] ${LINT} ")
  message(FATAL_ERROR
          "expected a ${LINT} finding, report has none\n"
          "stdout:\n${out}")
endif()

if(NOT planted STREQUAL "(group)")
  if(NOT out MATCHES "${LINT} ${planted}")
    message(FATAL_ERROR
            "the ${LINT} finding does not name the planted action "
            "'${planted}'\nstdout:\n${out}")
  endif()
endif()
