# Model-checker counterexample → live-engine replay round trip.
#
# Usage (via add_test):
#   cmake -DCHECK=<ftbar_check> -DSIM=<ftbar_sim> -DCX=<file>
#         "-DARGS=--program;rb;--n;3;..." -P check_cx_roundtrip.cmake
#
# Runs ftbar_check with a deliberately weakened invariant so the checker
# must produce a counterexample, shrink it, and write it as a replayable
# jsonl schedule; then feeds that schedule to `ftbar_sim replay`, which
# re-executes it in the live engine and verifies the per-step state digests.
# Exit 0 on both sides proves the checker→trace bridge end to end.

execute_process(COMMAND ${CHECK} ${ARGS} --weaken --cx-out ${CX}
                RESULT_VARIABLE check_rc OUTPUT_QUIET)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "ftbar_check --weaken exited ${check_rc} "
                      "(expected a replay-verified counterexample)")
endif()

if(NOT EXISTS ${CX})
  message(FATAL_ERROR "counterexample file ${CX} was not written")
endif()

execute_process(COMMAND ${SIM} replay --replay ${CX} --trace ${CX}.trace.jsonl
                RESULT_VARIABLE replay_rc OUTPUT_QUIET ERROR_QUIET)
if(NOT replay_rc EQUAL 0)
  message(FATAL_ERROR "ftbar_sim replay of the counterexample diverged: "
                      "exit ${replay_rc}")
endif()

# The --trace output embeds the schedule again, so it must replay too.
execute_process(COMMAND ${SIM} replay --replay ${CX}.trace.jsonl
                RESULT_VARIABLE rereplay_rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rereplay_rc EQUAL 0)
  message(FATAL_ERROR "replay of the re-recorded counterexample trace "
                      "diverged: exit ${rereplay_rc}")
endif()
