// ftbar_hwbar — command-line driver for the native shared-memory
// fault-tolerant barriers (src/hwbar/).
//
// Spawns real std::thread workers through one of the hwbar variants, runs
// a fixed number of episodes, and exits nonzero on any protocol trouble —
// usable both as a demo of the kill/rejoin recovery path and as a CI
// probe (the hwbar-smoke ctest label runs it fault-free, killed, and
// killed+rejoined).
//
//   --barrier central|tree|ring|tworing|package (central)
//   --threads N (4)          worker threads / barrier slots
//   --episodes E (50)        episodes each worker runs before retiring
//   --arity K (2)            tree arity
//   --package-size P (4)     threads per package (package barrier)
//   --num-phases n (16)      phase ring modulus for trace/spec purposes
//   --work-us U (200)        simulated per-phase work per episode
//   --suspect-ms M (300)     failure-detector declaration timeout
//   --kill TID,EP,POINT      arm hwbar::FaultInjector: thread TID dies at
//                            kill point POINT of episode EP (point names:
//                            arrive_entry, after_publish, after_combine,
//                            after_commit, before_wake, before_depart)
//   --rejoin                 after the declaration, a replacement thread
//                            rejoins the dead slot and finishes the run
//   --trace FILE             record the run and re-check it offline with
//                            trace::check_trace (exit 3 on violation)
//   --trace-format jsonl|chrome (jsonl)
//   --csv                    machine-readable one-line summary
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "hwbar/central.hpp"
#include "hwbar/fault_injector.hpp"
#include "hwbar/topo.hpp"
#include "hwbar/tree.hpp"
#include "trace/export.hpp"
#include "trace/monitor.hpp"
#include "trace/recorder.hpp"

namespace {

using namespace ftbar;
using Clock = std::chrono::steady_clock;

struct Args {
  std::string barrier = "central";
  int threads = 4;
  std::uint64_t episodes = 50;
  int arity = 2;
  int package_size = 4;
  int num_phases = 16;
  int work_us = 200;
  int suspect_ms = 300;
  bool have_kill = false;
  int kill_tid = 0;
  std::uint64_t kill_episode = 0;
  hwbar::KillPoint kill_point = hwbar::KillPoint::kArriveEntry;
  bool rejoin = false;
  std::string trace;
  std::string trace_format = "jsonl";
  bool csv = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--barrier central|tree|ring|tworing|package] "
               "[--threads N] [--episodes E] [--kill TID,EP,POINT] "
               "[--rejoin] [--trace FILE] ...\n"
               "see the header of tools/ftbar_hwbar.cpp for the option "
               "list\n",
               argv0);
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--barrier") {
      args.barrier = value();
    } else if (flag == "--threads") {
      args.threads = std::atoi(value());
    } else if (flag == "--episodes") {
      args.episodes = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (flag == "--arity") {
      args.arity = std::atoi(value());
    } else if (flag == "--package-size") {
      args.package_size = std::atoi(value());
    } else if (flag == "--num-phases") {
      args.num_phases = std::atoi(value());
    } else if (flag == "--work-us") {
      args.work_us = std::atoi(value());
    } else if (flag == "--suspect-ms") {
      args.suspect_ms = std::atoi(value());
    } else if (flag == "--kill") {
      // TID,EPISODE,POINT_NAME
      std::string spec = value();
      const auto c1 = spec.find(',');
      const auto c2 = spec.find(',', c1 == std::string::npos ? c1 : c1 + 1);
      if (c1 == std::string::npos || c2 == std::string::npos) usage(argv[0]);
      args.kill_tid = std::atoi(spec.substr(0, c1).c_str());
      args.kill_episode = static_cast<std::uint64_t>(
          std::atoll(spec.substr(c1 + 1, c2 - c1 - 1).c_str()));
      if (!hwbar::parse_kill_point(spec.substr(c2 + 1).c_str(),
                                   &args.kill_point)) {
        std::fprintf(stderr, "unknown kill point '%s'\n",
                     spec.substr(c2 + 1).c_str());
        std::exit(2);
      }
      args.have_kill = true;
    } else if (flag == "--rejoin") {
      args.rejoin = true;
    } else if (flag == "--trace") {
      args.trace = value();
    } else if (flag == "--trace-format") {
      args.trace_format = value();
    } else if (flag == "--csv") {
      args.csv = true;
    } else {
      usage(argv[0]);
    }
  }
  if (args.threads < 1 || args.episodes < 1 || args.num_phases < 1) {
    usage(argv[0]);
  }
  if (args.have_kill &&
      (args.kill_tid < 0 || args.kill_tid >= args.threads ||
       args.kill_episode + 2 >= args.episodes)) {
    std::fprintf(stderr,
                 "--kill needs 0 <= TID < threads and EP + 2 < episodes\n");
    std::exit(2);
  }
  return args;
}

std::unique_ptr<hwbar::HwBarrier> make_barrier(const Args& args,
                                               const hwbar::Options& opt) {
  if (args.barrier == "central") {
    return std::make_unique<hwbar::CentralHwBarrier>(args.threads, opt);
  }
  if (args.barrier == "tree") {
    return std::make_unique<hwbar::TreeHwBarrier>(args.threads, opt,
                                                  args.arity);
  }
  if (args.barrier == "ring") {
    return hwbar::TopoHwBarrier::ring(args.threads, opt);
  }
  if (args.barrier == "tworing") {
    return hwbar::TopoHwBarrier::two_ring(args.threads, opt);
  }
  if (args.barrier == "package") {
    return hwbar::TopoHwBarrier::package_tree(args.threads, args.package_size,
                                              opt);
  }
  std::fprintf(stderr, "unknown barrier kind '%s'\n", args.barrier.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  hwbar::FaultInjector injector;
  if (args.have_kill) {
    injector.arm(args.kill_tid, args.kill_episode, args.kill_point);
  }
  trace::TraceRecorder recorder(std::size_t{1} << 20);

  hwbar::Options opt;
  opt.num_phases = args.num_phases;
  opt.suspect_after = std::chrono::milliseconds(args.suspect_ms);
  opt.injector = args.have_kill ? &injector : nullptr;
  opt.sink = args.trace.empty() ? nullptr : &recorder;

  auto bar = make_barrier(args, opt);
  const auto work = std::chrono::microseconds(args.work_us);
  std::atomic<int> troubles{0};

  auto worker = [&](int tid) {
    for (;;) {
      if (work.count() > 0) std::this_thread::sleep_for(work);
      const hwbar::Ticket t = bar->arrive_and_wait(tid);
      if (t.status == hwbar::ArriveStatus::kDied) return;
      if (t.status != hwbar::ArriveStatus::kReleased) {
        ++troubles;
        return;
      }
      if (t.episode >= args.episodes) {
        bar->retire(tid);
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(args.threads));
  for (int tid = 0; tid < args.threads; ++tid) {
    threads.emplace_back(worker, tid);
  }

  std::thread replacement;
  bool rejoin_ok = !args.rejoin;
  if (args.have_kill && args.rejoin) {
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(20 * args.suspect_ms + 5000);
    while (bar->stats().deaths == 0 && Clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (bar->stats().deaths == 1 &&
        bar->slot_state(args.kill_tid) == hwbar::SlotState::kDead) {
      threads[static_cast<std::size_t>(args.kill_tid)].join();
      replacement = std::thread([&] {
        const hwbar::Ticket t = bar->rejoin(args.kill_tid);
        if (t.status != hwbar::ArriveStatus::kReleased || !t.recovered) {
          ++troubles;
          return;
        }
        worker(args.kill_tid);
      });
      rejoin_ok = true;
    }
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  if (replacement.joinable()) replacement.join();

  const hwbar::Stats stats = bar->stats();
  if (args.csv) {
    std::printf(
        "barrier,threads,episodes,deaths,rejoins,retires,evictions,"
        "wave_commits,scan_commits\n%s,%d,%llu,%llu,%llu,%llu,%llu,%llu,"
        "%llu\n",
        bar->kind_name(), args.threads,
        static_cast<unsigned long long>(bar->episode()),
        static_cast<unsigned long long>(stats.deaths),
        static_cast<unsigned long long>(stats.rejoins),
        static_cast<unsigned long long>(stats.retires),
        static_cast<unsigned long long>(stats.evictions),
        static_cast<unsigned long long>(stats.wave_commits),
        static_cast<unsigned long long>(stats.scan_commits));
  } else {
    std::printf(
        "%s barrier, %d threads: %llu episodes committed "
        "(%llu wave, %llu scan), deaths=%llu rejoins=%llu retires=%llu\n",
        bar->kind_name(), args.threads,
        static_cast<unsigned long long>(bar->episode()),
        static_cast<unsigned long long>(stats.wave_commits),
        static_cast<unsigned long long>(stats.scan_commits),
        static_cast<unsigned long long>(stats.deaths),
        static_cast<unsigned long long>(stats.rejoins),
        static_cast<unsigned long long>(stats.retires));
  }

  int rc = 0;
  if (troubles.load() != 0) {
    std::fprintf(stderr, "FAIL: %d worker(s) saw unexpected tickets\n",
                 troubles.load());
    rc = 1;
  }
  if (bar->episode() < args.episodes) {
    std::fprintf(stderr, "FAIL: only %llu of %llu episodes committed\n",
                 static_cast<unsigned long long>(bar->episode()),
                 static_cast<unsigned long long>(args.episodes));
    rc = 1;
  }
  if (args.have_kill && injector.kills() != 1) {
    std::fprintf(stderr, "FAIL: armed kill never fired\n");
    rc = 1;
  }
  if (args.have_kill && stats.deaths != 1) {
    std::fprintf(stderr, "FAIL: victim was never declared dead\n");
    rc = 1;
  }
  if (!rejoin_ok || (args.rejoin && stats.rejoins != 1)) {
    std::fprintf(stderr, "FAIL: rejoin did not complete\n");
    rc = 1;
  }

  if (!args.trace.empty()) {
    if (recorder.dropped() != 0) {
      std::fprintf(stderr, "FAIL: trace recorder dropped %llu events\n",
                   static_cast<unsigned long long>(recorder.dropped()));
      return 4;
    }
    const auto events = recorder.snapshot();
    if (!trace::write_trace_file(args.trace, args.trace_format, events)) {
      return 4;
    }
    // jsonl traces are complete witnesses: re-derive the verdict offline.
    const auto check =
        trace::check_trace(events, args.threads, args.num_phases);
    if (!check.ok) {
      std::fprintf(stderr, "FAIL: trace check found %zu violation(s):\n",
                   check.violations.size());
      for (const auto& v : check.violations) {
        std::fprintf(stderr, "  %s\n", v.c_str());
      }
      return 3;
    }
    std::fprintf(stderr,
                 "trace: %zu events -> %s (%s), spec check ok "
                 "(%zu successful phases)\n",
                 events.size(), args.trace.c_str(), args.trace_format.c_str(),
                 check.successful_phases);
  }
  return rc;
}
