#include "baseline/dissemination_barrier.hpp"

#include <thread>

namespace ftbar::baseline {

DisseminationBarrier::DisseminationBarrier(int num_threads)
    : num_threads_(num_threads),
      episode_(static_cast<std::size_t>(num_threads), 0) {
  rounds_ = 0;
  for (int span = 1; span < num_threads; span *= 2) ++rounds_;
  slots_.reserve(static_cast<std::size_t>(rounds_) *
                 static_cast<std::size_t>(num_threads));
  for (int i = 0; i < rounds_ * num_threads; ++i) {
    slots_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
}

void DisseminationBarrier::arrive_and_wait(int tid) {
  const auto ut = static_cast<std::size_t>(tid);
  const std::uint64_t episode = ++episode_[ut];
  int distance = 1;
  for (int round = 0; round < rounds_; ++round, distance *= 2) {
    const int partner = (tid + distance) % num_threads_;
    slot(round, partner).fetch_add(1, std::memory_order_acq_rel);
    int spins = 0;
    while (slot(round, tid).load(std::memory_order_acquire) < episode) {
      if (++spins > 1024) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }
}

}  // namespace ftbar::baseline
