// Dissemination barrier — ceil(log2 N) rounds; in round k, thread i signals
// thread (i + 2^k) mod N and waits on (i - 2^k) mod N. No single hot
// location and no release wave, at the cost of N log N total signals.
// Fault-intolerant, like the other baselines.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace ftbar::baseline {

class DisseminationBarrier {
 public:
  explicit DisseminationBarrier(int num_threads);

  DisseminationBarrier(const DisseminationBarrier&) = delete;
  DisseminationBarrier& operator=(const DisseminationBarrier&) = delete;

  [[nodiscard]] int size() const noexcept { return num_threads_; }
  [[nodiscard]] int rounds() const noexcept { return rounds_; }

  void arrive_and_wait(int tid);

 private:
  [[nodiscard]] std::atomic<std::uint64_t>& slot(int round, int tid) {
    return *slots_[static_cast<std::size_t>(round) *
                       static_cast<std::size_t>(num_threads_) +
                   static_cast<std::size_t>(tid)];
  }

  int num_threads_;
  int rounds_;
  /// Monotone episode counters: signalling increments, waiting compares
  /// against the thread's episode number — no sense reversal needed.
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> slots_;
  std::vector<std::uint64_t> episode_;
};

}  // namespace ftbar::baseline
