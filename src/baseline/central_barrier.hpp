// Sense-reversing central counter barrier — the classic fault-INTOLERANT
// baseline. One atomic counter, one global sense flag; O(N) contention on
// the counter, O(1) state. If any participant dies or loses its state, the
// rest block forever: there is no recovery channel, which is precisely the
// gap the paper's program fills.
#pragma once

#include <atomic>

namespace ftbar::baseline {

class CentralBarrier {
 public:
  explicit CentralBarrier(int num_threads)
      : num_threads_(num_threads), remaining_(num_threads) {}

  CentralBarrier(const CentralBarrier&) = delete;
  CentralBarrier& operator=(const CentralBarrier&) = delete;

  [[nodiscard]] int size() const noexcept { return num_threads_; }

  /// Blocks until all participants arrive. Spin-then-yield waiting.
  void arrive_and_wait();

 private:
  int num_threads_;
  std::atomic<int> remaining_;
  std::atomic<bool> sense_{false};
};

}  // namespace ftbar::baseline
