#include "baseline/central_barrier.hpp"

#include <thread>

namespace ftbar::baseline {

void CentralBarrier::arrive_and_wait() {
  const bool my_sense = !sense_.load(std::memory_order_relaxed);
  if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last arrival: reset the counter and flip the sense to release.
    remaining_.store(num_threads_, std::memory_order_relaxed);
    sense_.store(my_sense, std::memory_order_release);
    return;
  }
  int spins = 0;
  while (sense_.load(std::memory_order_acquire) != my_sense) {
    if (++spins > 1024) {
      std::this_thread::yield();
      spins = 0;
    }
  }
}

}  // namespace ftbar::baseline
