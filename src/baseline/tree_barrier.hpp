// Combining-tree barrier — the paper's 1 + 2hc comparison point: arrivals
// combine up a static binary tree (the detection wave) and the release
// propagates back down (the dissemination wave). Fault-intolerant.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

namespace ftbar::baseline {

class TreeBarrier {
 public:
  explicit TreeBarrier(int num_threads);

  TreeBarrier(const TreeBarrier&) = delete;
  TreeBarrier& operator=(const TreeBarrier&) = delete;

  [[nodiscard]] int size() const noexcept { return num_threads_; }
  /// Height of the arrival tree (the h of the analytical model).
  [[nodiscard]] int height() const noexcept { return height_; }

  /// Blocks thread `tid` until every participant arrives.
  void arrive_and_wait(int tid);

 private:
  struct Node {
    std::atomic<int> pending{0};
    int fanin = 0;
  };

  int num_threads_;
  int height_;
  std::vector<Node> nodes_;  ///< binary heap layout over thread ids
  // Per-thread release sense; heap-allocated to dodge vector<atomic> moves.
  std::vector<std::unique_ptr<std::atomic<bool>>> release_;
  std::vector<char> local_sense_;  ///< char, not bool: vector<bool> bit-packs
};

}  // namespace ftbar::baseline
