#include "baseline/tree_barrier.hpp"

#include <thread>

namespace ftbar::baseline {

namespace {
void spin_yield(int& spins) {
  if (++spins > 1024) {
    std::this_thread::yield();
    spins = 0;
  }
}
}  // namespace

TreeBarrier::TreeBarrier(int num_threads)
    : num_threads_(num_threads),
      nodes_(static_cast<std::size_t>(num_threads)),
      local_sense_(static_cast<std::size_t>(num_threads), 0) {
  release_.reserve(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    release_.push_back(std::make_unique<std::atomic<bool>>(false));
    int fanin = 0;
    if (2 * t + 1 < num_threads) ++fanin;
    if (2 * t + 2 < num_threads) ++fanin;
    nodes_[static_cast<std::size_t>(t)].fanin = fanin;
  }
  height_ = 0;
  for (int span = 1; span < num_threads; span = 2 * span + 1) ++height_;
}

void TreeBarrier::arrive_and_wait(int tid) {
  const auto ut = static_cast<std::size_t>(tid);
  const bool my_sense = local_sense_[ut] == 0;
  local_sense_[ut] = my_sense ? 1 : 0;

  // Detection wave: wait for both children's subtrees, then tell the parent.
  auto& node = nodes_[ut];
  int spins = 0;
  while (node.pending.load(std::memory_order_acquire) < node.fanin) {
    spin_yield(spins);
  }
  node.pending.store(0, std::memory_order_relaxed);
  if (tid != 0) {
    nodes_[static_cast<std::size_t>((tid - 1) / 2)].pending.fetch_add(
        1, std::memory_order_acq_rel);
    // Release wave: wait for the parent to flip our sense.
    spins = 0;
    while (release_[ut]->load(std::memory_order_acquire) != my_sense) {
      spin_yield(spins);
    }
  }
  for (int child : {2 * tid + 1, 2 * tid + 2}) {
    if (child < num_threads_) {
      release_[static_cast<std::size_t>(child)]->store(my_sense,
                                                       std::memory_order_release);
    }
  }
}

}  // namespace ftbar::baseline
