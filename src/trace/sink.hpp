// trace::Sink — the interface every instrumented layer emits through.
//
// A producer holds a `Sink*` that is null by default: tracing disabled
// costs one predictable branch per would-be event (and the step engine can
// compile the branch out entirely, see sim/step_engine.hpp's TraceCapable
// parameter). Installing a sink — usually a trace::TraceRecorder — turns
// the same run into a machine-readable event stream.
//
// Sinks must tolerate concurrent emit() calls when they are shared between
// threads (the runtime/mpi layers emit from every rank thread);
// TraceRecorder does so with per-thread ring buffers.
#pragma once

#include "trace/event.hpp"

namespace ftbar::trace {

class Sink {
 public:
  virtual ~Sink() = default;
  virtual void emit(const TraceEvent& event) noexcept = 0;
};

/// Fan-out to two sinks; used to observe a run while a schedule recorder
/// is also attached to the engine.
class TeeSink final : public Sink {
 public:
  TeeSink(Sink* first, Sink* second) noexcept : first_(first), second_(second) {}
  void emit(const TraceEvent& event) noexcept override {
    if (first_ != nullptr) first_->emit(event);
    if (second_ != nullptr) second_->emit(event);
  }

 private:
  Sink* first_;
  Sink* second_;
};

/// Monotonic wall-clock in microseconds since the first call; the time
/// base the runtime/mpi producers stamp events with (simulation layers use
/// their own logical clocks instead).
[[nodiscard]] double mono_us() noexcept;

/// Process-global sink for util::log routing: when set, every log_line()
/// is mirrored into the sink as a kLog event (stderr output is unchanged).
/// The pointer is atomic; install/clear around the traced region and keep
/// the sink alive until cleared.
void set_log_sink(Sink* sink) noexcept;
[[nodiscard]] Sink* log_sink() noexcept;

/// Emits a kLog event to the global log sink, if one is installed.
void log_to_sink(int level, const char* message) noexcept;

}  // namespace ftbar::trace
