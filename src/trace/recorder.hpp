// TraceRecorder — a low-overhead, bounded, multi-producer event recorder.
//
// Each producing thread writes into its OWN fixed-capacity ring buffer
// (registered lazily on first emit), so concurrent ranks never contend on
// event storage; the only shared write is the global sequence counter that
// totally orders the merged stream. When a ring wraps, the oldest events
// are overwritten and counted — dropped() is EXACT, so a consumer always
// knows whether it is looking at a complete run or the most recent window.
//
// snapshot() merges all rings in sequence order. It is meant to be called
// when producers are quiescent (after join/shutdown, or between engine
// steps); events emitted concurrently with a snapshot may be torn and are
// the caller's race to avoid, exactly like reading any other statistics of
// a running system.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "trace/sink.hpp"

namespace ftbar::trace {

class TraceRecorder final : public Sink {
 public:
  /// `capacity_per_thread` events are retained per producing thread
  /// (rounded up to 1); older events are overwritten and counted.
  explicit TraceRecorder(std::size_t capacity_per_thread = std::size_t{1} << 14);

  void emit(const TraceEvent& event) noexcept override;

  /// All retained events of every producer, sorted by global sequence.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Total events ever emitted into this recorder.
  [[nodiscard]] std::uint64_t recorded() const noexcept;
  /// Events lost to ring wraparound, summed over producers — exact.
  [[nodiscard]] std::uint64_t dropped() const noexcept;
  /// Number of distinct producing threads seen so far.
  [[nodiscard]] std::size_t threads_seen() const noexcept;
  [[nodiscard]] std::size_t capacity_per_thread() const noexcept { return capacity_; }

  /// Discards all retained events and resets the counters. Producers must
  /// be quiescent (their cached ring pointers stay valid afterwards).
  void clear();

 private:
  struct Ring {
    std::vector<TraceEvent> buf;
    std::uint64_t count = 0;  ///< total writes; buf[count % cap] is next slot
    std::thread::id owner;    ///< producing thread (single writer per ring)
  };

  [[nodiscard]] Ring& local_ring();

  const std::uint64_t id_;    ///< distinguishes recorders in the thread cache
  const std::size_t capacity_;
  mutable std::mutex mutex_;  ///< guards rings_ registration and snapshot
  std::vector<std::unique_ptr<Ring>> rings_;
  std::atomic<std::uint64_t> next_seq_{0};
};

}  // namespace ftbar::trace
