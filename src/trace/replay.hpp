// Deterministic record/replay of step-engine executions, plus a greedy
// fault-schedule shrinker.
//
// A ScheduleRecording is a self-contained reproducer: the initial state,
// and per engine step (a) the out-of-band fault writes applied before the
// step (victim process + its full post-fault record) and (b) the indices
// of the actions that fired, in engine order, followed by a digest of the
// post-step state. Replaying needs NO random numbers — the statements are
// re-executed from the recorded choices under the recorded semantics, and
// the digest pins the trajectory bit-for-bit at every step (the replay
// test additionally compares full states against a live engine).
//
// The schedule serializes to a line-oriented text form (hex-encoded
// process records, P must be trivially copyable), embeddable in the JSONL
// trace files that `ftbar_sim --trace` writes and `--replay` consumes.
//
// shrink_fault_plan() is ddmin-style delta debugging over a list of
// planned fault injections: it repeatedly removes chunks (then single
// faults) while the caller's oracle still reports the run as failing,
// returning a 1-minimal failing plan — the small reproducer a randomized
// stress campaign owes its investigator.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

#include "sim/step_engine.hpp"
#include "trace/digest.hpp"  // fnv1a_*, state_digest (split out; see there)
#include "trace/sink.hpp"

namespace ftbar::trace {

template <class P>
struct FaultWrite {
  std::uint32_t proc = 0;
  P value{};  ///< full post-fault process record
};

template <class P>
struct StepRecord {
  std::vector<FaultWrite<P>> faults;  ///< applied before the step
  std::vector<std::uint32_t> fired;   ///< action indices, engine order
  std::uint64_t digest = 0;           ///< state digest AFTER the step
};

template <class P>
struct ScheduleRecording {
  sim::Semantics semantics = sim::Semantics::kInterleaving;
  std::vector<P> initial;
  std::vector<StepRecord<P>> steps;
};

/// Wraps a live StepEngine and records its schedule. Installs itself as the
/// engine's sink (forwarding every event to `downstream`, so a
/// TraceRecorder can observe the same run); the caller must drive the run
/// through step() and report out-of-band fault injections with
/// note_fault(proc) AFTER writing the corrupted value into the state.
template <class P>
class ScheduleRecorder final : public Sink {
 public:
  explicit ScheduleRecorder(sim::StepEngine<P>& engine, Sink* downstream = nullptr)
      : engine_(engine), downstream_(downstream) {
    recording_.semantics = engine.semantics();
    recording_.initial = engine.state();
    engine_.set_sink(this);
  }

  ~ScheduleRecorder() override { engine_.set_sink(downstream_); }

  void emit(const TraceEvent& event) noexcept override {
    if (event.kind == Kind::kActionFired) {
      pending_fired_.push_back(static_cast<std::uint32_t>(event.a));
    }
    if (downstream_ != nullptr) downstream_->emit(event);
  }

  /// Records that `proc`'s CURRENT record was just written out-of-band.
  void note_fault(std::size_t proc) {
    pending_faults_.push_back(
        {static_cast<std::uint32_t>(proc), engine_.state()[proc]});
  }

  /// Steps the engine, appending a StepRecord. A quiescent step (nothing
  /// fired) is still recorded when faults were injected, so a replay
  /// applies them; otherwise it is elided. Returns engine's step() result.
  std::size_t step() {
    pending_fired_.clear();
    const std::size_t executed = engine_.step();
    if (executed == 0 && pending_faults_.empty()) return 0;
    recording_.steps.push_back({std::move(pending_faults_), pending_fired_,
                                state_digest(engine_.state())});
    pending_faults_.clear();
    return executed;
  }

  [[nodiscard]] const ScheduleRecording<P>& recording() const noexcept {
    return recording_;
  }
  [[nodiscard]] ScheduleRecording<P> take() { return std::move(recording_); }

 private:
  sim::StepEngine<P>& engine_;
  Sink* downstream_;
  ScheduleRecording<P> recording_;
  std::vector<FaultWrite<P>> pending_faults_;
  std::vector<std::uint32_t> pending_fired_;
};

struct ReplayReport {
  bool ok = true;
  std::size_t steps_replayed = 0;
  std::size_t diverged_step = 0;  ///< valid when !ok
  std::string message;
};

/// Re-executes a recorded schedule against the given action system and
/// verifies the state digest after every step. The actions must be the
/// SAME system the recording was made from (same builder, same options) —
/// replay checks each recorded action's guard against the pre-state and
/// reports divergence if a guard no longer holds or a digest mismatches.
/// A non-null `sink` observes the re-execution: one kActionFired per fired
/// action (time = step ordinal), the same events the live engine emits.
template <class P>
[[nodiscard]] ReplayReport replay_schedule(const ScheduleRecording<P>& rec,
                                           const std::vector<sim::Action<P>>& actions,
                                           Sink* sink = nullptr) {
  ReplayReport report;
  auto fired = [&](std::size_t step, std::uint32_t ai) {
    if (sink != nullptr) {
      sink->emit(make_event(Kind::kActionFired, static_cast<double>(step),
                            actions[ai].process, static_cast<std::int64_t>(ai),
                            0, 0, actions[ai].name.c_str()));
    }
  };
  auto diverge = [&](std::size_t step, std::string message) {
    report.ok = false;
    report.diverged_step = step;
    report.message = std::move(message);
    return report;
  };

  std::vector<P> state = rec.initial;
  std::vector<P> next;
  for (std::size_t si = 0; si < rec.steps.size(); ++si) {
    const auto& sr = rec.steps[si];
    for (const auto& f : sr.faults) {
      if (f.proc >= state.size()) return diverge(si, "fault victim out of range");
      state[f.proc] = f.value;
    }
    if (rec.semantics == sim::Semantics::kMaxParallel) {
      next = state;
      for (const std::uint32_t ai : sr.fired) {
        if (ai >= actions.size()) return diverge(si, "action index out of range");
        const auto& act = actions[ai];
        if (!act.enabled(state)) {
          return diverge(si, "recorded action '" + act.name +
                                 "' is not enabled on replay");
        }
        // Maximal-parallel semantics: the statement reads the pre-state and
        // writes only its owner's slot (the engine's write-ownership
        // contract); harvest that slot and restore the pre-state value.
        const auto p = static_cast<std::size_t>(act.process);
        P saved = state[p];
        act.apply(state);
        next[p] = state[p];
        state[p] = saved;
        fired(si, ai);
      }
      state.swap(next);
    } else {
      for (const std::uint32_t ai : sr.fired) {
        if (ai >= actions.size()) return diverge(si, "action index out of range");
        const auto& act = actions[ai];
        if (!act.enabled(state)) {
          return diverge(si, "recorded action '" + act.name +
                                 "' is not enabled on replay");
        }
        act.apply(state);
        fired(si, ai);
      }
    }
    if (state_digest(state) != sr.digest) {
      return diverge(si, "state digest mismatch after step " + std::to_string(si));
    }
    ++report.steps_replayed;
  }
  return report;
}

// ---- text serialization -----------------------------------------------------

namespace detail {

inline void hex_encode(const void* data, std::size_t size, std::string& out) {
  static const char* digits = "0123456789abcdef";
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    out.push_back(digits[bytes[i] >> 4]);
    out.push_back(digits[bytes[i] & 0xF]);
  }
}

inline bool hex_decode(const std::string& text, void* data, std::size_t size) {
  if (text.size() != size * 2) return false;
  auto nibble = [](char ch) -> int {
    if (ch >= '0' && ch <= '9') return ch - '0';
    if (ch >= 'a' && ch <= 'f') return ch - 'a' + 10;
    if (ch >= 'A' && ch <= 'F') return ch - 'A' + 10;
    return -1;
  };
  auto* bytes = static_cast<unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    const int hi = nibble(text[2 * i]);
    const int lo = nibble(text[2 * i + 1]);
    if (hi < 0 || lo < 0) return false;
    bytes[i] = static_cast<unsigned char>((hi << 4) | lo);
  }
  return true;
}

template <class P>
std::string hex_of(const P& value) {
  std::string out;
  hex_encode(&value, sizeof(P), out);
  return out;
}

inline std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ') ++j;
    if (j > i) out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

}  // namespace detail

/// The recording as a list of plain-text lines:
///   semantics maxpar|interleaving
///   procs <N> bytes <sizeof(P)>
///   init <hexP> <hexP> ...
///   step
///   f <proc> <hexP>          (zero or more per step)
///   a <idx> <idx> ...        (omitted when nothing fired)
///   d <digest>
template <class P>
[[nodiscard]] std::vector<std::string> schedule_lines(const ScheduleRecording<P>& rec) {
  static_assert(std::is_trivially_copyable_v<P>);
  std::vector<std::string> out;
  out.push_back(std::string("semantics ") +
                (rec.semantics == sim::Semantics::kMaxParallel ? "maxpar"
                                                               : "interleaving"));
  out.push_back("procs " + std::to_string(rec.initial.size()) + " bytes " +
                std::to_string(sizeof(P)));
  std::string init = "init";
  for (const auto& p : rec.initial) {
    init += ' ';
    init += detail::hex_of(p);
  }
  out.push_back(std::move(init));
  for (const auto& sr : rec.steps) {
    out.push_back("step");
    for (const auto& f : sr.faults) {
      out.push_back("f " + std::to_string(f.proc) + " " + detail::hex_of(f.value));
    }
    if (!sr.fired.empty()) {
      std::string fired = "a";
      for (const auto ai : sr.fired) {
        fired += ' ';
        fired += std::to_string(ai);
      }
      out.push_back(std::move(fired));
    }
    out.push_back("d " + std::to_string(sr.digest));
  }
  return out;
}

/// Inverse of schedule_lines(); nullopt on any malformed line.
template <class P>
[[nodiscard]] std::optional<ScheduleRecording<P>> parse_schedule_lines(
    const std::vector<std::string>& lines) {
  static_assert(std::is_trivially_copyable_v<P>);
  ScheduleRecording<P> rec;
  bool saw_init = false;
  StepRecord<P>* open_step = nullptr;
  for (const auto& line : lines) {
    const auto tok = detail::split_ws(line);
    if (tok.empty()) continue;
    if (tok[0] == "semantics" && tok.size() == 2) {
      if (tok[1] == "maxpar") {
        rec.semantics = sim::Semantics::kMaxParallel;
      } else if (tok[1] == "interleaving") {
        rec.semantics = sim::Semantics::kInterleaving;
      } else {
        return std::nullopt;
      }
    } else if (tok[0] == "procs" && tok.size() == 4) {
      if (tok[3] != std::to_string(sizeof(P))) return std::nullopt;  // wrong P
    } else if (tok[0] == "init") {
      for (std::size_t i = 1; i < tok.size(); ++i) {
        P value;
        if (!detail::hex_decode(tok[i], &value, sizeof(P))) return std::nullopt;
        rec.initial.push_back(value);
      }
      saw_init = true;
    } else if (tok[0] == "step") {
      rec.steps.emplace_back();
      open_step = &rec.steps.back();
    } else if (tok[0] == "f" && tok.size() == 3) {
      if (open_step == nullptr) return std::nullopt;
      FaultWrite<P> f;
      f.proc = static_cast<std::uint32_t>(std::stoul(tok[1]));
      if (!detail::hex_decode(tok[2], &f.value, sizeof(P))) return std::nullopt;
      open_step->faults.push_back(f);
    } else if (tok[0] == "a") {
      if (open_step == nullptr) return std::nullopt;
      for (std::size_t i = 1; i < tok.size(); ++i) {
        open_step->fired.push_back(static_cast<std::uint32_t>(std::stoul(tok[i])));
      }
    } else if (tok[0] == "d" && tok.size() == 2) {
      if (open_step == nullptr) return std::nullopt;
      open_step->digest = std::stoull(tok[1]);
    } else {
      return std::nullopt;
    }
  }
  if (!saw_init) return std::nullopt;
  return rec;
}

template <class P>
void save_schedule(std::ostream& os, const ScheduleRecording<P>& rec) {
  for (const auto& line : schedule_lines(rec)) os << line << "\n";
}

template <class P>
[[nodiscard]] std::optional<ScheduleRecording<P>> load_schedule(std::istream& is) {
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return parse_schedule_lines<P>(lines);
}

// ---- fault-schedule shrinking ----------------------------------------------

/// A fault injection planned at a specific engine step (before the step).
template <class P>
struct PlannedFault {
  std::size_t step = 0;
  std::uint32_t proc = 0;
  P value{};
};

/// Extracts the fault plan of a recording (for re-running the same fault
/// sequence against a live engine, e.g. as the shrinker's starting point).
template <class P>
[[nodiscard]] std::vector<PlannedFault<P>> fault_plan_of(
    const ScheduleRecording<P>& rec) {
  std::vector<PlannedFault<P>> plan;
  for (std::size_t si = 0; si < rec.steps.size(); ++si) {
    for (const auto& f : rec.steps[si].faults) {
      plan.push_back({si, f.proc, f.value});
    }
  }
  return plan;
}

/// ddmin-style greedy minimization: removes chunks (halving granularity
/// down to single faults) while `still_fails(candidate)` holds. The input
/// plan must fail; the result is a failing plan where removing any single
/// remaining fault makes the failure disappear (1-minimal).
template <class P>
[[nodiscard]] std::vector<PlannedFault<P>> shrink_fault_plan(
    std::vector<PlannedFault<P>> plan,
    const std::function<bool(const std::vector<PlannedFault<P>>&)>& still_fails) {
  if (plan.empty() || !still_fails(plan)) return plan;

  auto without_range = [&](std::size_t begin, std::size_t end) {
    std::vector<PlannedFault<P>> candidate;
    candidate.reserve(plan.size() - (end - begin));
    for (std::size_t i = 0; i < plan.size(); ++i) {
      if (i < begin || i >= end) candidate.push_back(plan[i]);
    }
    return candidate;
  };

  std::size_t chunk = std::max<std::size_t>(1, plan.size() / 2);
  while (!plan.empty()) {
    bool removed_any = false;
    std::size_t begin = 0;
    while (begin < plan.size()) {
      const std::size_t end = std::min(begin + chunk, plan.size());
      auto candidate = without_range(begin, end);
      if (still_fails(candidate)) {
        plan = std::move(candidate);
        removed_any = true;  // same begin now addresses the next chunk
      } else {
        begin = end;
      }
    }
    if (chunk > 1) {
      chunk = (chunk + 1) / 2;
    } else if (!removed_any) {
      break;  // single-fault fixpoint: 1-minimal
    }
  }
  return plan;
}

}  // namespace ftbar::trace
