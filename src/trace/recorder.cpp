#include "trace/recorder.hpp"

#include <algorithm>

namespace ftbar::trace {

namespace {
std::atomic<std::uint64_t> g_recorder_ids{1};

/// Per-thread cache of the last (recorder, ring) pair so the common path
/// never touches the registration mutex. The recorder id (never reused)
/// guards against a stale pointer after a recorder at the same address was
/// destroyed and another constructed.
struct ThreadCache {
  std::uint64_t recorder_id = 0;
  void* ring = nullptr;
};
thread_local ThreadCache t_cache;
}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity_per_thread)
    : id_(g_recorder_ids.fetch_add(1, std::memory_order_relaxed)),
      capacity_(std::max<std::size_t>(capacity_per_thread, 1)) {}

TraceRecorder::Ring& TraceRecorder::local_ring() {
  if (t_cache.recorder_id == id_) {
    return *static_cast<Ring*>(t_cache.ring);
  }
  // Cache miss: this thread may still own a ring here (it emitted into
  // another recorder in between) — reuse it rather than registering twice.
  const auto me = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mutex_);
  Ring* ring = nullptr;
  for (const auto& r : rings_) {
    if (r->owner == me) {
      ring = r.get();
      break;
    }
  }
  if (ring == nullptr) {
    rings_.push_back(std::make_unique<Ring>());
    ring = rings_.back().get();
    ring->owner = me;
    ring->buf.resize(capacity_);
  }
  t_cache.recorder_id = id_;
  t_cache.ring = ring;
  return *ring;
}

void TraceRecorder::emit(const TraceEvent& event) noexcept {
  Ring& ring = local_ring();
  TraceEvent& slot = ring.buf[ring.count % capacity_];
  slot = event;
  slot.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  ++ring.count;
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& ring : rings_) {
      const std::uint64_t retained = std::min<std::uint64_t>(ring->count, capacity_);
      const std::uint64_t first = ring->count - retained;
      for (std::uint64_t i = first; i < ring->count; ++i) {
        out.push_back(ring->buf[i % capacity_]);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& x, const TraceEvent& y) { return x.seq < y.seq; });
  return out;
}

std::uint64_t TraceRecorder::recorded() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->count;
  return total;
}

std::uint64_t TraceRecorder::dropped() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    if (ring->count > capacity_) total += ring->count - capacity_;
  }
  return total;
}

std::size_t TraceRecorder::threads_seen() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return rings_.size();
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& ring : rings_) ring->count = 0;
  next_seq_.store(0, std::memory_order_relaxed);
}

}  // namespace ftbar::trace
