// Trace exporters: JSONL (one JSON object per line, greppable and easy to
// post-process) and the Chrome trace_event format (a `{"traceEvents":[...]}`
// object that chrome://tracing and Perfetto load directly).
//
// The Chrome writer maps the repo's events onto the viewer's model:
//   * action firings become "X" (complete) slices on track tid=process;
//   * phase start/complete become "B"/"E" slices (an abort or a new start
//     with a slice still open auto-closes it, so the stream always
//     balances and the viewer never rejects the file);
//   * faults, message traffic, rank kill/restart and log lines become
//     instant events carrying their payload in args.
// Timestamps are event.time scaled by `time_scale` (use e.g. 1000.0 to
// spread untimed engine steps 1 ms apart on the viewer's µs axis).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "trace/event.hpp"

namespace ftbar::trace {

/// One JSON object per event, in stream order.
void write_jsonl(std::ostream& os, const std::vector<TraceEvent>& events);

/// Chrome trace_event JSON (chrome://tracing / Perfetto "load trace").
void write_chrome_trace(std::ostream& os, const std::vector<TraceEvent>& events,
                        double time_scale = 1.0);

/// Convenience one-shot: writes `events` to `path` as "jsonl" or "chrome".
/// Returns false (after a line on stderr) on an unknown format or I/O error.
bool write_trace_file(const std::string& path, const std::string& format,
                      const std::vector<TraceEvent>& events, double time_scale = 1.0);

/// JSON string escaping for the writers above (exposed for the tools that
/// append their own JSONL records next to the exported events).
[[nodiscard]] std::string json_escape(const std::string& text);

/// Minimal field extraction from a single-line JSON object produced by this
/// library (string values must not contain escaped quotes). Used by the
/// replay loader; not a general JSON parser.
[[nodiscard]] std::optional<std::string> json_string_field(const std::string& line,
                                                           const std::string& key);
[[nodiscard]] std::optional<long long> json_int_field(const std::string& line,
                                                      const std::string& key);

}  // namespace ftbar::trace
