// Offline spec monitoring: feed a recorded trace back through the
// executable specification of Section 2 (core::SpecMonitor) and check the
// stabilization bound of Lemma 3.4 / 4.1.4 on each recovery burst.
//
// check_trace() consumes the phase-level events a traced run emits
// (kPhaseStart/kPhaseComplete/kPhaseAbort from the barrier program,
// kFaultUndetectable from the fault harness, kSpecDesync/kSpecResync from
// the monitor driving the run, kRankKill/kRankRestart from a failure
// detector or process host changing the membership) and re-derives the
// verdicts from the trace alone — so a trace file is a complete,
// independently checkable witness of a run, and a tampered or truncated
// trace is caught as a violation. Membership events make the checker work
// on real hwbar executions: a killed slot stops being required for an
// instance to close, and a rejoined one is re-admitted at its first
// aligned phase start (core::SpecMonitor::on_leave/on_join).
//
// Bound m: a recovery burst opens at the first undetectable fault (or at
// kSpecDesync) and closes at kSpecResync. Within a burst, m is the number
// of DISTINCT phases the faults perturbed processes into (event field b),
// and the burst's started-phase count is the number of distinct phases any
// process started while desynced. Lemma 4.1.4 bounds the latter by m plus
// at most one phase entered correctly through the increment — started <=
// m + 1 — and check_trace() reports a violation for any burst exceeding it.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "trace/event.hpp"

namespace ftbar::trace {

/// One desync..resync window and its Lemma 4.1.4 accounting.
struct RecoveryBurst {
  std::size_t m = 0;               ///< distinct perturbed phases
  std::size_t started_phases = 0;  ///< distinct phases started while desynced
  bool within_bound = true;        ///< started_phases <= m + 1
};

struct SpecCheckResult {
  bool ok = true;  ///< safety_ok && m_bound_ok && !malformed
  bool safety_ok = true;
  bool m_bound_ok = true;
  std::vector<std::string> violations;
  std::vector<RecoveryBurst> bursts;
  // Section 6 metrics re-derived from the trace.
  std::size_t successful_phases = 0;
  std::size_t total_instances = 0;
  std::size_t failed_instances = 0;
  std::size_t phase_events = 0;  ///< events the checker consumed
};

/// Replays the phase-level events of `events` (any other kinds are
/// ignored) through a fresh core::SpecMonitor for `num_procs` processes
/// and `num_phases` cyclic phases, and checks the recovery bound m.
[[nodiscard]] SpecCheckResult check_trace(const std::vector<TraceEvent>& events,
                                          int num_procs, int num_phases);

}  // namespace ftbar::trace
