#include "trace/sink.hpp"

#include <atomic>
#include <chrono>

namespace ftbar::trace {

namespace {
std::atomic<Sink*> g_log_sink{nullptr};

std::chrono::steady_clock::time_point mono_epoch() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}
}  // namespace

double mono_us() noexcept {
  const auto elapsed = std::chrono::steady_clock::now() - mono_epoch();
  return std::chrono::duration<double, std::micro>(elapsed).count();
}

void set_log_sink(Sink* sink) noexcept {
  g_log_sink.store(sink, std::memory_order_release);
}

Sink* log_sink() noexcept { return g_log_sink.load(std::memory_order_acquire); }

void log_to_sink(int level, const char* message) noexcept {
  Sink* sink = log_sink();
  if (sink == nullptr) return;
  sink->emit(make_event(Kind::kLog, mono_us(), -1, level, 0, 0, message));
}

const char* kind_name(Kind kind) noexcept {
  switch (kind) {
    case Kind::kActionFired: return "action_fired";
    case Kind::kGuardEval: return "guard_eval";
    case Kind::kFaultDetectable: return "fault_detectable";
    case Kind::kFaultUndetectable: return "fault_undetectable";
    case Kind::kPhaseStart: return "phase_start";
    case Kind::kPhaseComplete: return "phase_complete";
    case Kind::kPhaseAbort: return "phase_abort";
    case Kind::kSpecDesync: return "spec_desync";
    case Kind::kSpecResync: return "spec_resync";
    case Kind::kMsgSend: return "msg_send";
    case Kind::kMsgDeliver: return "msg_deliver";
    case Kind::kMsgRecv: return "msg_recv";
    case Kind::kMsgDrop: return "msg_drop";
    case Kind::kMsgCorrupt: return "msg_corrupt";
    case Kind::kMsgDup: return "msg_dup";
    case Kind::kMsgReorder: return "msg_reorder";
    case Kind::kRankStart: return "rank_start";
    case Kind::kRankKill: return "rank_kill";
    case Kind::kRankRestart: return "rank_restart";
    case Kind::kBarrierRepair: return "barrier_repair";
    case Kind::kEventDispatch: return "event_dispatch";
    case Kind::kInstanceBegin: return "instance_begin";
    case Kind::kInstanceAbort: return "instance_abort";
    case Kind::kInstanceCommit: return "instance_commit";
    case Kind::kLog: return "log";
  }
  return "unknown";
}

}  // namespace ftbar::trace
