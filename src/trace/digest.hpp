// FNV-1a state digesting, split out of trace/replay.hpp so headers that
// sit BELOW sim/step_engine.hpp in the include graph (the audit debug hook
// the engine constructor calls in debug builds) can digest states without
// pulling the engine in. replay.hpp re-exports everything here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace ftbar::trace {

inline constexpr std::uint64_t kFnv1aOffsetBasis = 1469598103934665603ULL;

/// Continues an FNV-1a hash from intermediate state `h`. Because FNV-1a is
/// a byte-serial fold, hashing a buffer equals resuming from the hash of
/// any prefix — the checker's successor generator exploits this to digest
/// a successor that shares a prefix with its parent in O(suffix) time.
[[nodiscard]] inline std::uint64_t fnv1a_resume(std::uint64_t h, const void* data,
                                                std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ULL;
  }
  return h;
}

/// FNV-1a over raw memory; the per-step state digest.
[[nodiscard]] inline std::uint64_t fnv1a_bytes(const void* data,
                                               std::size_t size) noexcept {
  return fnv1a_resume(kFnv1aOffsetBasis, data, size);
}

template <class P>
[[nodiscard]] std::uint64_t state_digest(const std::vector<P>& state) noexcept {
  static_assert(std::is_trivially_copyable_v<P>,
                "schedule recording requires trivially copyable process records");
  static_assert(std::has_unique_object_representations_v<P>,
                "schedule recording digests raw bytes; P must have no padding "
                "(pad the struct explicitly or widen small members)");
  return fnv1a_bytes(state.data(), state.size() * sizeof(P));
}

}  // namespace ftbar::trace
