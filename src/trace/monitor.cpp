#include "trace/monitor.hpp"

#include <set>
#include <string>

#include "core/spec.hpp"

namespace ftbar::trace {

SpecCheckResult check_trace(const std::vector<TraceEvent>& events,
                            int num_procs, int num_phases) {
  SpecCheckResult result;
  if (num_procs <= 0 || num_phases <= 0) {
    result.ok = false;
    result.violations.emplace_back("invalid num_procs/num_phases");
    return result;
  }

  core::SpecMonitor spec(num_procs, num_phases);

  bool burst_open = false;
  std::set<long long> perturbed;  ///< distinct fault phases of the open burst
  std::set<long long> started;    ///< distinct phases started while desynced

  auto close_burst = [&]() {
    if (!burst_open) return;
    RecoveryBurst burst;
    burst.m = perturbed.size();
    burst.started_phases = started.size();
    burst.within_bound = burst.started_phases <= burst.m + 1;
    if (!burst.within_bound) {
      result.m_bound_ok = false;
      result.violations.push_back(
          "recovery burst started " + std::to_string(burst.started_phases) +
          " distinct phases but only m=" + std::to_string(burst.m) +
          " were perturbed (bound m+1 exceeded)");
    }
    result.bursts.push_back(burst);
    burst_open = false;
    perturbed.clear();
    started.clear();
  };

  auto bad = [&](std::string what) {
    result.safety_ok = false;
    result.violations.push_back(std::move(what));
  };

  for (const auto& e : events) {
    switch (e.kind) {
      case Kind::kPhaseStart:
        ++result.phase_events;
        if (e.proc < 0 || e.proc >= num_procs) {
          bad("phase start with out-of-range process " + std::to_string(e.proc));
          break;
        }
        if (burst_open) started.insert(e.a);
        spec.on_start(e.proc, static_cast<int>(e.a), e.b != 0);
        break;
      case Kind::kPhaseComplete:
        ++result.phase_events;
        if (e.proc < 0 || e.proc >= num_procs) {
          bad("phase complete with out-of-range process " + std::to_string(e.proc));
          break;
        }
        spec.on_complete(e.proc, static_cast<int>(e.a));
        break;
      case Kind::kPhaseAbort:
        ++result.phase_events;
        if (e.proc < 0 || e.proc >= num_procs) {
          bad("phase abort with out-of-range process " + std::to_string(e.proc));
          break;
        }
        spec.on_abort(e.proc);
        break;
      case Kind::kRankKill:
        // A participant left the membership (failure-detector declaration
        // or voluntary retire): the spec stops requiring it.
        ++result.phase_events;
        if (e.proc < 0 || e.proc >= num_procs) {
          bad("rank kill with out-of-range process " + std::to_string(e.proc));
          break;
        }
        spec.on_leave(e.proc);
        break;
      case Kind::kRankRestart:
        ++result.phase_events;
        if (e.proc < 0 || e.proc >= num_procs) {
          bad("rank restart with out-of-range process " +
              std::to_string(e.proc));
          break;
        }
        spec.on_join(e.proc);
        break;
      case Kind::kFaultUndetectable:
        // The fault harness emits one per victim BEFORE notifying the
        // monitor, so the fault itself opens (or extends) the burst.
        ++result.phase_events;
        burst_open = true;
        perturbed.insert(e.b);
        break;
      case Kind::kSpecDesync:
        ++result.phase_events;
        burst_open = true;
        spec.on_undetectable_fault();
        break;
      case Kind::kSpecResync:
        ++result.phase_events;
        close_burst();
        spec.resync(static_cast<int>(e.a));
        break;
      default:
        break;  // engine/runtime events are not the spec's concern
    }
  }
  // A burst still open at the end of the capture is checked as-is: the
  // trace witnessed the perturbation, so the phases it saw start while
  // desynced must already respect the bound.
  close_burst();

  result.safety_ok = result.safety_ok && spec.safety_ok();
  for (const auto& v : spec.violations()) result.violations.push_back(v);
  result.successful_phases = spec.successful_phases();
  result.total_instances = spec.total_instances();
  result.failed_instances = spec.failed_instances();
  result.ok = result.safety_ok && result.m_bound_ok;
  return result;
}

}  // namespace ftbar::trace
