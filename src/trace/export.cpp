#include "trace/export.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <ostream>

#include "trace/sink.hpp"

namespace ftbar::trace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

namespace {

void write_number(std::ostream& os, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  os << buf;
}

void write_event_jsonl(std::ostream& os, const TraceEvent& e) {
  os << "{\"seq\":" << e.seq << ",\"kind\":\"" << kind_name(e.kind)
     << "\",\"t\":";
  write_number(os, e.time);
  os << ",\"proc\":" << e.proc << ",\"a\":" << e.a << ",\"b\":" << e.b
     << ",\"c\":" << e.c;
  if (e.label[0] != '\0') {
    os << ",\"label\":\"" << json_escape(e.label) << "\"";
  }
  os << "}\n";
}

}  // namespace

void write_jsonl(std::ostream& os, const std::vector<TraceEvent>& events) {
  for (const auto& e : events) write_event_jsonl(os, e);
}

namespace {

/// Emits one Chrome trace_event record; `first` tracks comma placement.
class ChromeWriter {
 public:
  ChromeWriter(std::ostream& os, double scale) : os_(os), scale_(scale) {
    os_ << "{\"traceEvents\":[";
  }

  void record(const std::string& name, const char* ph, double ts, int tid,
              const std::string& extra_args) {
    if (!first_) os_ << ",";
    first_ = false;
    os_ << "\n{\"name\":\"" << json_escape(name) << "\",\"ph\":\"" << ph
        << "\",\"ts\":";
    write_number(os_, ts * scale_);
    os_ << ",\"pid\":0,\"tid\":" << tid;
    if (ph[0] == 'X') os_ << ",\"dur\":" << scale_;
    if (ph[0] == 'i') os_ << ",\"s\":\"t\"";
    if (!extra_args.empty()) os_ << ",\"args\":{" << extra_args << "}";
    os_ << "}";
  }

  void finish() { os_ << "\n]}\n"; }

 private:
  std::ostream& os_;
  double scale_;
  bool first_ = true;
};

std::string int_arg(const char* key, long long value) {
  return std::string("\"") + key + "\":" + std::to_string(value);
}

}  // namespace

void write_chrome_trace(std::ostream& os, const std::vector<TraceEvent>& events,
                        double time_scale) {
  ChromeWriter w(os, time_scale);
  // Per-tid open "B" phase slice, so the B/E stream always balances.
  std::map<int, bool> open_phase;

  auto close_phase = [&](int tid, double ts, const char* why) {
    if (open_phase[tid]) {
      w.record("phase", "E", ts, tid, std::string("\"end\":\"") + why + "\"");
      open_phase[tid] = false;
    }
  };

  for (const auto& e : events) {
    const int tid = e.proc < 0 ? 0 : e.proc;
    switch (e.kind) {
      case Kind::kActionFired:
        w.record(e.label[0] != '\0' ? e.label : "action", "X", e.time, tid,
                 int_arg("action", e.a) + "," + int_arg("step",
                                                        static_cast<long long>(e.time)));
        break;
      case Kind::kPhaseStart:
        close_phase(tid, e.time, "restart");
        w.record("phase " + std::to_string(e.a), "B", e.time, tid,
                 int_arg("phase", e.a) + "," + int_arg("new_instance", e.b) +
                     "," + int_arg("desynced", e.c));
        open_phase[tid] = true;
        break;
      case Kind::kPhaseComplete:
        close_phase(tid, e.time, "complete");
        break;
      case Kind::kPhaseAbort:
        close_phase(tid, e.time, "abort");
        break;
      case Kind::kGuardEval:
      case Kind::kFaultDetectable:
      case Kind::kFaultUndetectable:
      case Kind::kSpecDesync:
      case Kind::kSpecResync:
      case Kind::kMsgSend:
      case Kind::kMsgDeliver:
      case Kind::kMsgRecv:
      case Kind::kMsgDrop:
      case Kind::kMsgCorrupt:
      case Kind::kMsgDup:
      case Kind::kMsgReorder:
      case Kind::kRankStart:
      case Kind::kRankKill:
      case Kind::kRankRestart:
      case Kind::kBarrierRepair:
      case Kind::kEventDispatch:
      case Kind::kInstanceBegin:
      case Kind::kInstanceAbort:
      case Kind::kInstanceCommit:
      case Kind::kLog: {
        std::string args = int_arg("a", e.a) + "," + int_arg("b", e.b) + "," +
                           int_arg("c", e.c);
        if (e.label[0] != '\0') {
          args += ",\"label\":\"" + json_escape(e.label) + "\"";
        }
        w.record(kind_name(e.kind), "i", e.time, tid, args);
        break;
      }
    }
  }
  // Balance any phases still open at the end of the capture window.
  for (const auto& [tid, open] : open_phase) {
    if (open) {
      w.record("phase", "E",
               events.empty() ? 0.0 : events.back().time, tid,
               "\"end\":\"capture_end\"");
    }
  }
  w.finish();
}

std::optional<std::string> json_string_field(const std::string& line,
                                             const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  const auto begin = at + needle.size();
  const auto end = line.find('"', begin);
  if (end == std::string::npos) return std::nullopt;
  return line.substr(begin, end - begin);
}

std::optional<long long> json_int_field(const std::string& line,
                                        const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  auto begin = at + needle.size();
  if (begin >= line.size()) return std::nullopt;
  if (line[begin] == '"') return std::nullopt;  // string field, not int
  std::size_t consumed = 0;
  long long value = 0;
  try {
    value = std::stoll(line.substr(begin), &consumed);
  } catch (...) {
    return std::nullopt;
  }
  if (consumed == 0) return std::nullopt;
  return value;
}

bool write_trace_file(const std::string& path, const std::string& format,
                      const std::vector<TraceEvent>& events, double time_scale) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "error: cannot open trace file " << path << "\n";
    return false;
  }
  if (format == "chrome") {
    write_chrome_trace(os, events, time_scale);
  } else if (format == "jsonl") {
    write_jsonl(os, events);
  } else {
    std::cerr << "error: unknown trace format " << format
              << " (expected jsonl or chrome)\n";
    return false;
  }
  return os.good();
}

}  // namespace ftbar::trace
