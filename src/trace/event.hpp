// Typed trace events — the unit of observation of the trace subsystem.
//
// Every execution layer of the repo (the untimed step engine, the
// discrete-event engine, the threads network/process-host runtime and the
// mini-MPI communicator) can report what it does as a stream of TraceEvent
// records through a trace::Sink. The event is a fixed-size POD so that the
// per-thread ring buffers of trace::TraceRecorder never allocate on the
// hot path; the short textual label (action name, log line) is copied into
// an inline truncated buffer rather than referenced, so events stay valid
// after their producer dies.
//
// Field conventions per kind (a/b/c are kind-specific payload slots):
//   kActionFired       proc=owner, a=action index, time=step, label=name
//   kGuardEval         proc=owner, a=action index, b=enabled?1:0, time=step
//   kFaultDetectable   proc=victim, a=phase after reset, time=producer clock
//   kFaultUndetectable proc=victim, b=phase after corruption
//   kPhaseStart        proc, a=phase, b=new_instance?1:0, c=desynced?1:0
//   kPhaseComplete     proc, a=phase
//   kPhaseAbort        proc
//   kSpecDesync        (monitor suspends safety checking)
//   kSpecResync        a=phase the system converged to
//   kMsgSend           proc=src, a=dst, b=tag, c=link_seq
//   kMsgDeliver        proc=dst, a=src, b=tag, c=link_seq (pushed to inbox)
//   kMsgRecv           proc=rank, a=src, b=tag (consumed by the rank)
//   kMsgDrop           proc=src, a=dst, b=tag, c=reason (0 link loss,
//                      1 inbox full, 2 checksum mismatch on receive)
//   kMsgCorrupt        proc=src, a=dst, b=tag, c=link_seq
//   kMsgDup            proc=src, a=dst, b=tag, c=link_seq
//   kMsgReorder        proc=src, a=dst, b=tag, c=link_seq (held back)
//   kRankStart         proc=rank, a=generation
//   kRankKill          proc=rank, a=generation (process-host), or
//                      a=episode, b=1 if a voluntary hwbar retire (hwbar
//                      emits it when a barrier slot leaves the membership)
//   kRankRestart       proc=rank, a=generation about to launch, or the
//                      episode an hwbar slot rejoined in
//   kBarrierRepair     proc=committing thread, a=phase, b=episode (hwbar
//                      scan-path commit taken while the barrier was
//                      degraded by a death/retire)
//   kEventDispatch     a=queue seq, time=simulated time
//   kInstanceBegin     a=instance ordinal within the phase, time=sim time
//   kInstanceAbort     a=segment index the fault landed in, time=sim time
//   kInstanceCommit    time=sim time
//   kLog               a=util::LogLevel, label=message (truncated)
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace ftbar::trace {

enum class Kind : std::uint8_t {
  kActionFired = 0,
  kGuardEval,
  kFaultDetectable,
  kFaultUndetectable,
  kPhaseStart,
  kPhaseComplete,
  kPhaseAbort,
  kSpecDesync,
  kSpecResync,
  kMsgSend,
  kMsgDeliver,
  kMsgRecv,
  kMsgDrop,
  kMsgCorrupt,
  kMsgDup,
  kMsgReorder,
  kRankStart,
  kRankKill,
  kRankRestart,
  kBarrierRepair,
  kEventDispatch,
  kInstanceBegin,
  kInstanceAbort,
  kInstanceCommit,
  kLog,
};

/// Stable lowercase identifier used by the exporters ("action_fired", ...).
[[nodiscard]] const char* kind_name(Kind kind) noexcept;

struct TraceEvent {
  static constexpr std::size_t kLabelCapacity = 40;

  std::uint64_t seq = 0;  ///< global order, stamped by the recorder
  double time = 0.0;      ///< producer clock: steps, sim time, or wall µs
  Kind kind = Kind::kActionFired;
  std::int32_t proc = -1;        ///< process / rank the event concerns
  std::int64_t a = 0, b = 0, c = 0;  ///< kind-specific payload (see above)
  char label[kLabelCapacity] = {};   ///< truncated copy, always NUL-terminated

  void set_label(const char* text) noexcept {
    if (text == nullptr) {
      label[0] = '\0';
      return;
    }
    std::strncpy(label, text, kLabelCapacity - 1);
    label[kLabelCapacity - 1] = '\0';
  }
};

/// Terse event factory for producer call sites.
inline TraceEvent make_event(Kind kind, double time, std::int32_t proc,
                             std::int64_t a = 0, std::int64_t b = 0,
                             std::int64_t c = 0,
                             const char* label = nullptr) noexcept {
  TraceEvent e;
  e.time = time;
  e.kind = kind;
  e.proc = proc;
  e.a = a;
  e.b = b;
  e.c = c;
  e.set_label(label);
  return e;
}

}  // namespace ftbar::trace
