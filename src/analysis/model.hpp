// Closed-form analytical model of Section 6.1.
//
// Time is normalized to the phase execution time (1.0). On a tree of
// height h with communication latency c and fault frequency f (probability
// that a fault occurs per unit time, so no fault occurs in an interval of
// length T with probability (1-f)^T):
//
//   phase time, no faults (RB)   : 1 + 3hc        (three cp changes, hc each)
//   P(no fault during a phase)   : (1-f)^(1+3hc)
//   E[instances per phase]       : (1-f)^-(1+3hc)           (geometric mean)
//   E[time per successful phase] : (1+3hc) * (1-f)^-(1+3hc)
//   fault-intolerant phase time  : 1 + 2hc        (detect + release waves)
//   overhead of fault-tolerance  : ratio of the two minus 1
//   recovery bound (undetectable): 5hc            (sn repair + <= 4 waves)
#pragma once

namespace ftbar::analysis {

/// Model parameters; all times are in units of the phase execution time.
struct Params {
  int h = 5;        ///< tree height (32 processes in the paper's Figure 3)
  double c = 0.01;  ///< communication latency
  double f = 0.0;   ///< fault frequency per unit time
};

/// Time to execute one instance of a phase with no faults: 1 + 3hc.
[[nodiscard]] double phase_time(const Params& p) noexcept;

/// Probability that no fault occurs during one instance: (1-f)^(1+3hc).
[[nodiscard]] double no_fault_probability(const Params& p) noexcept;

/// Expected number of instances executed per successful phase.
[[nodiscard]] double expected_instances(const Params& p) noexcept;

/// Expected time to execute a phase successfully under detectable faults.
[[nodiscard]] double expected_phase_time(const Params& p) noexcept;

/// Phase time of the fault-intolerant tree barrier: 1 + 2hc.
[[nodiscard]] double intolerant_phase_time(const Params& p) noexcept;

/// Overhead of fault-tolerance: expected_phase_time / intolerant - 1.
[[nodiscard]] double overhead(const Params& p) noexcept;

/// Worst-case time to recover from an arbitrary state: 5hc
/// (<= hc to repair the sequence numbers, <= 4hc to re-align cp/ph).
[[nodiscard]] double recovery_bound(const Params& p) noexcept;

/// Height of the balanced `arity`-ary tree over num_procs processes
/// (e.g. 32 processes, arity 2 -> h = 5 as in the paper).
[[nodiscard]] int tree_height(int num_procs, int arity = 2) noexcept;

}  // namespace ftbar::analysis
