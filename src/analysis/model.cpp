#include "analysis/model.hpp"

#include <cmath>

namespace ftbar::analysis {

double phase_time(const Params& p) noexcept { return 1.0 + 3.0 * p.h * p.c; }

double no_fault_probability(const Params& p) noexcept {
  if (p.f <= 0.0) return 1.0;
  if (p.f >= 1.0) return 0.0;
  return std::pow(1.0 - p.f, phase_time(p));
}

double expected_instances(const Params& p) noexcept {
  return 1.0 / no_fault_probability(p);
}

double expected_phase_time(const Params& p) noexcept {
  return phase_time(p) * expected_instances(p);
}

double intolerant_phase_time(const Params& p) noexcept {
  return 1.0 + 2.0 * p.h * p.c;
}

double overhead(const Params& p) noexcept {
  return expected_phase_time(p) / intolerant_phase_time(p) - 1.0;
}

double recovery_bound(const Params& p) noexcept { return 5.0 * p.h * p.c; }

int tree_height(int num_procs, int arity) noexcept {
  if (num_procs <= 1 || arity < 1) return 0;
  if (arity == 1) return num_procs - 1;
  int h = 0;
  long long capacity = 1;  // nodes in a complete tree of height h
  long long level = 1;
  while (capacity < num_procs) {
    level *= arity;
    capacity += level;
    ++h;
  }
  return h;
}

}  // namespace ftbar::analysis
