// In-process message-passing network with per-link fault injection.
//
// This is the testbed substitute for a real cluster interconnect: ranks
// exchange byte messages through per-rank inboxes while the network injects
// the paper's communication faults — loss, duplication, detectable
// corruption (checksum mismatch) and reorder — at configurable per-link
// probabilities. Messages carry a per-link sequence number so higher layers
// can discard stale deliveries (turning reorder into a detectable,
// maskable fault, as the paper's fault classification requires).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

#include "runtime/channel.hpp"
#include "trace/sink.hpp"
#include "util/rng.hpp"

namespace ftbar::runtime {

struct Message {
  int src = -1;
  int dst = -1;
  int tag = 0;
  std::uint64_t link_seq = 0;  ///< monotone per (src,dst,tag-agnostic) link
  std::vector<std::byte> payload;
  std::uint64_t checksum = 0;  ///< FNV-1a over payload, set at send time
};

/// Per-link fault-injection probabilities (each applied independently).
struct LinkFaults {
  double drop = 0.0;       ///< message vanishes
  double duplicate = 0.0;  ///< message delivered twice
  double corrupt = 0.0;    ///< payload bytes flipped; checksum then fails
  double reorder = 0.0;    ///< message held back and swapped with the next
};

class Network {
 public:
  Network(int num_ranks, std::uint64_t seed, std::size_t inbox_capacity = 1024);

  [[nodiscard]] int size() const noexcept { return num_ranks_; }

  /// Attaches a trace sink: sends, deliveries, consumed receives and every
  /// injected fault emit message events (kMsgSend/kMsgDeliver/kMsgRecv/
  /// kMsgDrop/kMsgCorrupt/kMsgDup/kMsgReorder) stamped with wall-clock
  /// microseconds. The sink must be thread-safe and outlive the network.
  void set_trace_sink(trace::Sink* sink) noexcept {
    sink_.store(sink, std::memory_order_release);
  }
  [[nodiscard]] trace::Sink* trace_sink() const noexcept {
    return sink_.load(std::memory_order_acquire);
  }

  /// Applies to every link without an explicit per-link setting.
  void set_default_faults(const LinkFaults& faults);
  void set_link_faults(int src, int dst, const LinkFaults& faults);

  /// Sends `bytes` from src to dst, subject to fault injection. Messages to
  /// a full inbox are dropped (counted as losses) — the fault model calls
  /// this "non-availability of buffers".
  void send(int src, int dst, int tag, std::span<const std::byte> bytes);

  /// Sends a trivially copyable value.
  template <class T>
  void send_value(int src, int dst, int tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    send(src, dst, tag,
         std::span<const std::byte>(reinterpret_cast<const std::byte*>(&value),
                                    sizeof(T)));
  }

  /// Blocking receive with timeout; nullopt on timeout or shutdown.
  std::optional<Message> recv(int rank, std::chrono::milliseconds timeout);
  std::optional<Message> try_recv(int rank);

  /// True when the payload matches its checksum (i.e. not corrupted).
  [[nodiscard]] static bool verify(const Message& m) noexcept;

  /// Decodes a trivially copyable value; nullopt on size or checksum
  /// mismatch (corruption is detected, never silently consumed).
  template <class T>
  [[nodiscard]] static std::optional<T> decode(const Message& m) noexcept {
    static_assert(std::is_trivially_copyable_v<T>);
    if (m.payload.size() != sizeof(T) || !verify(m)) return std::nullopt;
    T out;
    std::memcpy(&out, m.payload.data(), sizeof(T));
    return out;
  }

  /// Closes every inbox; pending and future recvs drain/return nullopt.
  void shutdown();

  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t reordered = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Link {
    std::uint64_t next_seq = 0;
    std::optional<LinkFaults> faults;  ///< overrides the default when set
    std::optional<Message> held;       ///< reorder holdback slot
  };

  [[nodiscard]] std::size_t link_index(int src, int dst) const {
    return static_cast<std::size_t>(src) * static_cast<std::size_t>(num_ranks_) +
           static_cast<std::size_t>(dst);
  }
  void deliver(Message m);
  void trace(trace::Kind kind, int proc, std::int64_t a, std::int64_t b,
             std::int64_t c) const noexcept;

  int num_ranks_;
  std::atomic<trace::Sink*> sink_{nullptr};
  std::vector<std::unique_ptr<Channel<Message>>> inboxes_;
  mutable std::mutex mutex_;  ///< guards links_, default_faults_, rng_, stats_
  std::vector<Link> links_;
  LinkFaults default_faults_;
  util::Rng rng_;
  Stats stats_;
};

[[nodiscard]] std::uint64_t fnv1a(std::span<const std::byte> bytes) noexcept;

}  // namespace ftbar::runtime
