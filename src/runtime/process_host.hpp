// Per-rank thread hosting with cooperative kill/restart — the processor
// fail-stop / repair / reboot fault of the paper's fault model, realized on
// std::thread. A killed rank's main observes `alive` turning false and
// unwinds; restart() launches a fresh incarnation with a new generation
// number so the rank can rejoin a protocol via its detectable-fault path.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "trace/sink.hpp"

namespace ftbar::runtime {

class ProcessHost {
 public:
  /// Rank main: loops doing work while `alive` is true; `generation` is 0
  /// for the first incarnation and increments on every restart.
  using RankMain = std::function<void(int rank, int generation,
                                      const std::atomic<bool>& alive)>;

  ProcessHost(int num_ranks, RankMain main);
  ~ProcessHost();

  ProcessHost(const ProcessHost&) = delete;
  ProcessHost& operator=(const ProcessHost&) = delete;

  /// Attaches a trace sink: launches, kills and restarts emit
  /// kRankStart/kRankKill/kRankRestart with the rank's generation.
  void set_trace_sink(trace::Sink* sink) noexcept {
    sink_.store(sink, std::memory_order_release);
  }

  /// Launches every rank (generation 0).
  void start();

  /// Fail-stops a rank: its alive flag drops and its thread is joined.
  void kill(int rank);

  /// Restarts a previously killed rank with the next generation number.
  void restart(int rank);

  [[nodiscard]] bool alive(int rank) const;
  [[nodiscard]] int generation(int rank) const;

  /// Signals every rank to stop and joins all threads.
  void shutdown();

 private:
  struct Slot {
    std::unique_ptr<std::atomic<bool>> alive = std::make_unique<std::atomic<bool>>(false);
    std::thread thread;
    int generation = -1;
  };

  void launch(int rank);
  void trace(trace::Kind kind, int rank, int generation) const noexcept;

  int num_ranks_;
  std::atomic<trace::Sink*> sink_{nullptr};
  RankMain main_;
  mutable std::mutex mutex_;
  std::vector<Slot> slots_;
};

}  // namespace ftbar::runtime
