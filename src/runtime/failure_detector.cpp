#include "runtime/failure_detector.hpp"

#include <algorithm>

namespace ftbar::runtime {

SuspectTracker::SuspectTracker(int num_ranks, int self, Clock::duration timeout)
    : num_ranks_(num_ranks),
      self_(self),
      timeout_(timeout),
      last_seen_(static_cast<std::size_t>(num_ranks), Clock::time_point{}) {
  // Everyone gets the benefit of the doubt at construction time.
  const auto now = Clock::now();
  for (auto& t : last_seen_) t = now;
}

void SuspectTracker::record(int rank, Clock::time_point now) {
  if (rank < 0 || rank >= num_ranks_) return;
  auto& slot = last_seen_[static_cast<std::size_t>(rank)];
  if (now > slot) slot = now;
}

bool SuspectTracker::is_suspected(int rank, Clock::time_point now) const {
  if (rank == self_ || rank < 0 || rank >= num_ranks_) return false;
  return now - last_seen_[static_cast<std::size_t>(rank)] > timeout_;
}

std::vector<int> SuspectTracker::suspected(Clock::time_point now) const {
  std::vector<int> out;
  for (int r = 0; r < num_ranks_; ++r) {
    if (is_suspected(r, now)) out.push_back(r);
  }
  return out;
}

void ProgressTracker::observe(int rank, std::uint64_t counter,
                              Clock::time_point now) {
  const auto r = static_cast<std::size_t>(rank);
  if (r >= last_counter_.size()) return;
  if (seen_[r] == 0) {
    seen_[r] = 1;
    last_counter_[r] = counter;
    return;
  }
  if (counter != last_counter_[r]) {
    last_counter_[r] = counter;
    tracker_.record(rank, now);
  }
}

void ProgressTracker::forgive_all(Clock::time_point now) {
  std::fill(seen_.begin(), seen_.end(), 0);
  for (std::size_t r = 0; r < last_counter_.size(); ++r) {
    tracker_.record(static_cast<int>(r), now);
  }
}

HeartbeatDetector::HeartbeatDetector(std::shared_ptr<Network> net, int rank,
                                     SuspectTracker::Clock::duration beat_every,
                                     SuspectTracker::Clock::duration timeout)
    : net_(std::move(net)),
      rank_(rank),
      beat_every_(beat_every),
      tracker_(net_->size(), rank, timeout),
      last_beat_(SuspectTracker::Clock::time_point{}) {}

void HeartbeatDetector::beat() {
  const auto now = SuspectTracker::Clock::now();
  if (now - last_beat_ < beat_every_) return;
  last_beat_ = now;
  for (int peer = 0; peer < net_->size(); ++peer) {
    if (peer != rank_) {
      net_->send_value(rank_, peer, kHeartbeatTag, static_cast<std::uint8_t>(1));
    }
  }
}

bool HeartbeatDetector::observe(const Message& m) {
  // ANY verified message is a sign of life, not just heartbeats.
  if (Network::verify(m)) {
    tracker_.record(m.src, SuspectTracker::Clock::now());
  }
  return m.tag == kHeartbeatTag;
}

}  // namespace ftbar::runtime
