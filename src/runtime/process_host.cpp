#include "runtime/process_host.hpp"

#include <stdexcept>

namespace ftbar::runtime {

ProcessHost::ProcessHost(int num_ranks, RankMain main)
    : num_ranks_(num_ranks),
      main_(std::move(main)),
      slots_(static_cast<std::size_t>(num_ranks)) {}

ProcessHost::~ProcessHost() { shutdown(); }

void ProcessHost::trace(trace::Kind kind, int rank, int generation) const noexcept {
  trace::Sink* sink = sink_.load(std::memory_order_acquire);
  if (sink != nullptr) {
    sink->emit(trace::make_event(kind, trace::mono_us(), rank, generation));
  }
}

void ProcessHost::launch(int rank) {
  auto& slot = slots_[static_cast<std::size_t>(rank)];
  ++slot.generation;
  slot.alive->store(true, std::memory_order_release);
  const int generation = slot.generation;
  std::atomic<bool>* alive = slot.alive.get();
  slot.thread = std::thread([this, rank, generation, alive] {
    main_(rank, generation, *alive);
  });
  trace(trace::Kind::kRankStart, rank, generation);
}

void ProcessHost::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (int r = 0; r < num_ranks_; ++r) {
    if (!slots_[static_cast<std::size_t>(r)].thread.joinable()) launch(r);
  }
}

void ProcessHost::kill(int rank) {
  std::thread victim;
  int generation = -1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = slots_[static_cast<std::size_t>(rank)];
    if (!slot.thread.joinable()) return;
    slot.alive->store(false, std::memory_order_release);
    victim = std::move(slot.thread);
    generation = slot.generation;
  }
  victim.join();
  trace(trace::Kind::kRankKill, rank, generation);
}

void ProcessHost::restart(int rank) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = slots_[static_cast<std::size_t>(rank)];
  if (slot.thread.joinable()) {
    throw std::logic_error("ProcessHost::restart: rank is still running");
  }
  trace(trace::Kind::kRankRestart, rank, slot.generation + 1);
  launch(rank);
}

bool ProcessHost::alive(int rank) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_[static_cast<std::size_t>(rank)].alive->load(std::memory_order_acquire);
}

int ProcessHost::generation(int rank) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_[static_cast<std::size_t>(rank)].generation;
}

void ProcessHost::shutdown() {
  std::vector<std::thread> victims;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& slot : slots_) {
      slot.alive->store(false, std::memory_order_release);
      if (slot.thread.joinable()) victims.push_back(std::move(slot.thread));
    }
  }
  for (auto& t : victims) t.join();
}

}  // namespace ftbar::runtime
