// Bounded MPMC channel used as the per-rank inbox of the in-process network.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

namespace ftbar::runtime {

template <class T>
class Channel {
 public:
  /// capacity == 0 means unbounded.
  explicit Channel(std::size_t capacity = 0) : capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocks while full. Returns false (and drops the value) if closed.
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || !full_locked(); });
    if (closed_) return false;
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T value) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || full_locked()) return false;
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until a value is available or the channel is closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    return pop_locked();
  }

  /// Waits up to `timeout`; nullopt on timeout or closed-and-drained.
  std::optional<T> pop_wait_for(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait_for(lock, timeout, [&] { return closed_ || !queue_.empty(); });
    return pop_locked();
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    return pop_locked();
  }

  /// Closes the channel: pending pops drain the queue, pushes fail.
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  [[nodiscard]] bool full_locked() const {
    return capacity_ != 0 && queue_.size() >= capacity_;
  }

  std::optional<T> pop_locked() {
    if (queue_.empty()) return std::nullopt;
    std::optional<T> out(std::move(queue_.front()));
    queue_.pop_front();
    not_full_.notify_one();
    return out;
  }

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace ftbar::runtime
