// Heartbeat failure detector: turns SILENT faults (a hung process, a
// crashed rank) into DETECTABLE ones, which is the precondition for the
// paper's masking machinery — a fail-stopped peer must be noticed before
// the barrier can decide to re-execute the phase or hand the rank's work
// elsewhere.
//
// Two layers:
//   SuspectTracker — pure logic: record(rank, time) on every sign of life,
//     suspected(now) lists ranks silent for longer than the timeout.
//     Deterministic and directly unit-testable.
//   HeartbeatDetector — the wire loop over runtime::Network: beat() sends
//     heartbeats to every peer, observe() feeds received messages, and
//     suspected() applies the tracker. Drive both from the rank's poll
//     loop (the same place the barrier's retransmission lives).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/network.hpp"

namespace ftbar::runtime {

/// Pure suspicion logic over abstract timestamps.
class SuspectTracker {
 public:
  using Clock = std::chrono::steady_clock;

  SuspectTracker(int num_ranks, int self, Clock::duration timeout);

  /// Records a sign of life from `rank` at `now`.
  void record(int rank, Clock::time_point now);

  /// Ranks (other than self) whose last sign of life is older than the
  /// timeout relative to `now`.
  [[nodiscard]] std::vector<int> suspected(Clock::time_point now) const;

  [[nodiscard]] bool is_suspected(int rank, Clock::time_point now) const;

  /// Time of the last sign of life from `rank`.
  [[nodiscard]] Clock::time_point last_seen(int rank) const {
    return last_seen_[static_cast<std::size_t>(rank)];
  }

 private:
  int num_ranks_;
  int self_;
  Clock::duration timeout_;
  std::vector<Clock::time_point> last_seen_;
};

/// Shared-memory flavor of the detector: peers publish monotone progress
/// counters (heartbeats, arrival counts) instead of sending messages, and
/// each observer runs its own tracker over them. observe() feeds the
/// current counter value; a change is a sign of life, an unchanged counter
/// for longer than the timeout makes the peer suspected. This is the
/// timeout path hwbar's barriers use to declare a participant dead.
class ProgressTracker {
 public:
  using Clock = SuspectTracker::Clock;

  ProgressTracker(int num_ranks, int self, Clock::duration timeout)
      : tracker_(num_ranks, self, timeout),
        last_counter_(static_cast<std::size_t>(num_ranks), 0),
        seen_(static_cast<std::size_t>(num_ranks), 0) {}

  /// Feeds the current value of `rank`'s progress counter at `now`.
  /// The first observation only baselines the counter (construction
  /// already granted the benefit of the doubt); later observations record
  /// a sign of life iff the counter moved.
  void observe(int rank, std::uint64_t counter, Clock::time_point now);

  /// Ranks (other than self) whose counter has not moved for longer than
  /// the timeout.
  [[nodiscard]] std::vector<int> suspected(Clock::time_point now) const {
    return tracker_.suspected(now);
  }
  [[nodiscard]] bool is_suspected(int rank, Clock::time_point now) const {
    return tracker_.is_suspected(rank, now);
  }

  /// Grants `rank` a fresh timeout window (e.g. it visibly rejoined).
  void forgive(int rank, Clock::time_point now) { tracker_.record(rank, now); }

  /// Re-baselines everyone: used by a replacement thread whose knowledge
  /// of peer progress predates its own restart.
  void forgive_all(Clock::time_point now);

 private:
  SuspectTracker tracker_;
  std::vector<std::uint64_t> last_counter_;
  std::vector<char> seen_;
};

/// Wire protocol over the in-process network.
class HeartbeatDetector {
 public:
  static constexpr int kHeartbeatTag = 300;

  HeartbeatDetector(std::shared_ptr<Network> net, int rank,
                    SuspectTracker::Clock::duration beat_every,
                    SuspectTracker::Clock::duration timeout);

  /// Sends a heartbeat to every peer if the beat interval elapsed.
  void beat();

  /// Feeds a received message; returns true if it was a heartbeat (and was
  /// consumed), false if the caller should process it itself.
  bool observe(const Message& m);

  [[nodiscard]] std::vector<int> suspected() const {
    return tracker_.suspected(SuspectTracker::Clock::now());
  }
  [[nodiscard]] bool is_suspected(int rank) const {
    return tracker_.is_suspected(rank, SuspectTracker::Clock::now());
  }

 private:
  std::shared_ptr<Network> net_;
  int rank_;
  SuspectTracker::Clock::duration beat_every_;
  SuspectTracker tracker_;
  SuspectTracker::Clock::time_point last_beat_;
};

}  // namespace ftbar::runtime
