#include "runtime/network.hpp"

namespace ftbar::runtime {

std::uint64_t fnv1a(std::span<const std::byte> bytes) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ULL;
  }
  return h;
}

Network::Network(int num_ranks, std::uint64_t seed, std::size_t inbox_capacity)
    : num_ranks_(num_ranks),
      links_(static_cast<std::size_t>(num_ranks) * static_cast<std::size_t>(num_ranks)),
      rng_(seed) {
  inboxes_.reserve(static_cast<std::size_t>(num_ranks));
  for (int i = 0; i < num_ranks; ++i) {
    inboxes_.push_back(std::make_unique<Channel<Message>>(inbox_capacity));
  }
}

void Network::set_default_faults(const LinkFaults& faults) {
  std::lock_guard<std::mutex> lock(mutex_);
  default_faults_ = faults;
}

void Network::set_link_faults(int src, int dst, const LinkFaults& faults) {
  std::lock_guard<std::mutex> lock(mutex_);
  links_[link_index(src, dst)].faults = faults;
}

void Network::trace(trace::Kind kind, int proc, std::int64_t a, std::int64_t b,
                    std::int64_t c) const noexcept {
  trace::Sink* sink = sink_.load(std::memory_order_acquire);
  if (sink != nullptr) {
    sink->emit(trace::make_event(kind, trace::mono_us(), proc, a, b, c));
  }
}

void Network::deliver(Message m) {
  const int src = m.src, dst = m.dst, tag = m.tag;
  const auto seq = static_cast<std::int64_t>(m.link_seq);
  // try_push: a full inbox drops the message (buffer exhaustion fault).
  const bool pushed =
      inboxes_[static_cast<std::size_t>(m.dst)]->try_push(std::move(m));
  {
    // deliver() runs outside send()'s critical section (concurrent sender
    // threads), so the stats update needs its own lock acquisition.
    std::lock_guard<std::mutex> lock(mutex_);
    if (pushed) {
      ++stats_.delivered;
    } else {
      ++stats_.dropped;
    }
  }
  if (pushed) {
    trace(trace::Kind::kMsgDeliver, dst, src, tag, seq);
  } else {
    trace(trace::Kind::kMsgDrop, src, dst, tag, 1);  // reason 1: inbox full
  }
}

void Network::send(int src, int dst, int tag, std::span<const std::byte> bytes) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.tag = tag;
  m.payload.assign(bytes.begin(), bytes.end());
  m.checksum = fnv1a(bytes);

  std::vector<Message> out;
  std::int64_t seq = 0;
  bool lost = false, corrupted = false, duplicated = false, held_back = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Link& link = links_[link_index(src, dst)];
    m.link_seq = link.next_seq++;
    seq = static_cast<std::int64_t>(m.link_seq);
    const LinkFaults faults = link.faults.value_or(default_faults_);
    ++stats_.sent;

    if (rng_.bernoulli(faults.drop)) {
      ++stats_.dropped;
      lost = true;
      // A dropped message still releases any held-back message so reorder
      // holdbacks cannot be starved forever.
      if (link.held) {
        out.push_back(std::move(*link.held));
        link.held.reset();
      }
    } else {
      if (rng_.bernoulli(faults.corrupt) && !m.payload.empty()) {
        ++stats_.corrupted;
        corrupted = true;
        m.payload[0] ^= std::byte{0xFF};  // checksum now fails: detectable
      }
      const bool dup = rng_.bernoulli(faults.duplicate);
      if (dup) {
        ++stats_.duplicated;
        duplicated = true;
      }

      if (link.held) {
        // The held message is released AFTER this one: the swap is the reorder.
        out.push_back(m);
        if (dup) out.push_back(m);
        out.push_back(std::move(*link.held));
        link.held.reset();
      } else if (rng_.bernoulli(faults.reorder)) {
        ++stats_.reordered;
        held_back = true;
        link.held = m;
        if (dup) out.push_back(std::move(m));  // the duplicate goes out now
      } else {
        out.push_back(m);
        if (dup) out.push_back(std::move(m));
      }
    }
  }
  trace(trace::Kind::kMsgSend, src, dst, tag, seq);
  if (lost) trace(trace::Kind::kMsgDrop, src, dst, tag, 0);  // reason 0: loss
  if (corrupted) trace(trace::Kind::kMsgCorrupt, src, dst, tag, seq);
  if (duplicated) trace(trace::Kind::kMsgDup, src, dst, tag, seq);
  if (held_back) trace(trace::Kind::kMsgReorder, src, dst, tag, seq);
  for (auto& msg : out) deliver(std::move(msg));
}

std::optional<Message> Network::recv(int rank, std::chrono::milliseconds timeout) {
  auto m = inboxes_[static_cast<std::size_t>(rank)]->pop_wait_for(timeout);
  if (m) trace(trace::Kind::kMsgRecv, rank, m->src, m->tag, 0);
  return m;
}

std::optional<Message> Network::try_recv(int rank) {
  auto m = inboxes_[static_cast<std::size_t>(rank)]->try_pop();
  if (m) trace(trace::Kind::kMsgRecv, rank, m->src, m->tag, 0);
  return m;
}

bool Network::verify(const Message& m) noexcept {
  return fnv1a(std::span<const std::byte>(m.payload.data(), m.payload.size())) ==
         m.checksum;
}

void Network::shutdown() {
  for (auto& inbox : inboxes_) inbox->close();
}

Network::Stats Network::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace ftbar::runtime
