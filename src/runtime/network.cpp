#include "runtime/network.hpp"

namespace ftbar::runtime {

std::uint64_t fnv1a(std::span<const std::byte> bytes) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ULL;
  }
  return h;
}

Network::Network(int num_ranks, std::uint64_t seed, std::size_t inbox_capacity)
    : num_ranks_(num_ranks),
      links_(static_cast<std::size_t>(num_ranks) * static_cast<std::size_t>(num_ranks)),
      rng_(seed) {
  inboxes_.reserve(static_cast<std::size_t>(num_ranks));
  for (int i = 0; i < num_ranks; ++i) {
    inboxes_.push_back(std::make_unique<Channel<Message>>(inbox_capacity));
  }
}

void Network::set_default_faults(const LinkFaults& faults) {
  std::lock_guard<std::mutex> lock(mutex_);
  default_faults_ = faults;
}

void Network::set_link_faults(int src, int dst, const LinkFaults& faults) {
  std::lock_guard<std::mutex> lock(mutex_);
  links_[link_index(src, dst)].faults = faults;
}

void Network::deliver(Message m) {
  // try_push: a full inbox drops the message (buffer exhaustion fault).
  if (inboxes_[static_cast<std::size_t>(m.dst)]->try_push(std::move(m))) {
    ++stats_.delivered;
  } else {
    ++stats_.dropped;
  }
}

void Network::send(int src, int dst, int tag, std::span<const std::byte> bytes) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.tag = tag;
  m.payload.assign(bytes.begin(), bytes.end());
  m.checksum = fnv1a(bytes);

  std::vector<Message> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Link& link = links_[link_index(src, dst)];
    m.link_seq = link.next_seq++;
    const LinkFaults faults = link.faults.value_or(default_faults_);
    ++stats_.sent;

    if (rng_.bernoulli(faults.drop)) {
      ++stats_.dropped;
      // A dropped message still releases any held-back message so reorder
      // holdbacks cannot be starved forever.
      if (link.held) {
        out.push_back(std::move(*link.held));
        link.held.reset();
      }
    } else {
      if (rng_.bernoulli(faults.corrupt) && !m.payload.empty()) {
        ++stats_.corrupted;
        m.payload[0] ^= std::byte{0xFF};  // checksum now fails: detectable
      }
      const bool dup = rng_.bernoulli(faults.duplicate);
      if (dup) ++stats_.duplicated;

      if (link.held) {
        // The held message is released AFTER this one: the swap is the reorder.
        out.push_back(m);
        if (dup) out.push_back(m);
        out.push_back(std::move(*link.held));
        link.held.reset();
      } else if (rng_.bernoulli(faults.reorder)) {
        ++stats_.reordered;
        link.held = m;
        if (dup) out.push_back(std::move(m));  // the duplicate goes out now
      } else {
        out.push_back(m);
        if (dup) out.push_back(std::move(m));
      }
    }
  }
  for (auto& msg : out) deliver(std::move(msg));
}

std::optional<Message> Network::recv(int rank, std::chrono::milliseconds timeout) {
  return inboxes_[static_cast<std::size_t>(rank)]->pop_wait_for(timeout);
}

std::optional<Message> Network::try_recv(int rank) {
  return inboxes_[static_cast<std::size_t>(rank)]->try_pop();
}

bool Network::verify(const Message& m) noexcept {
  return fnv1a(std::span<const std::byte>(m.payload.data(), m.payload.size())) ==
         m.checksum;
}

void Network::shutdown() {
  for (auto& inbox : inboxes_) inbox->close();
}

Network::Stats Network::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace ftbar::runtime
