#include "mpi/collectives.hpp"

#include <algorithm>
#include <cstring>

namespace ftbar::mpi {

namespace {

constexpr int kArriveTag = 100;
constexpr int kReleaseTag = 101;
constexpr int kReduceTag = 102;
constexpr int kBcastTag = 103;
constexpr int kGatherTag = 104;
constexpr int kScatterTag = 105;

struct Stamp {
  std::uint64_t epoch;
};

struct StampedValue {
  std::uint64_t epoch;
  double value;
};

[[nodiscard]] int parent_of(int r) noexcept { return (r - 1) / 2; }
[[nodiscard]] int left_of(int r) noexcept { return 2 * r + 1; }
[[nodiscard]] int right_of(int r) noexcept { return 2 * r + 2; }

/// Receives a stamped message of type T from `src` with the right epoch.
/// Stale epochs (duplicates/reorder from earlier collectives) are
/// discarded; FUTURE epochs — a peer already running the next collective —
/// are held back and re-stashed for later receives.
template <class T>
std::optional<T> recv_epoch(Communicator& comm, int src, int tag,
                            std::uint64_t epoch, std::chrono::milliseconds timeout) {
  std::vector<Recvd> futures;
  const auto restash = [&] {
    for (auto& f : futures) comm.stash(std::move(f));
  };
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left <= std::chrono::milliseconds::zero()) {
      restash();
      return std::nullopt;
    }
    auto m = comm.recv(src, tag, left);
    if (!m) {
      restash();
      return std::nullopt;
    }
    const auto v = m->as<T>();
    if (!v) continue;  // wrong shape: treat as corruption
    if (v->epoch == epoch) {
      restash();
      return v;
    }
    if (v->epoch > epoch) futures.push_back(std::move(*m));
    // Older epoch: a duplicate or reordered leftover; drop it.
  }
}

}  // namespace

Err tree_barrier(Communicator& comm, std::uint64_t epoch,
                 const CollectiveOptions& options) {
  const int r = comm.rank();
  const int n = comm.size();
  // Convergecast: wait for both children, then notify the parent.
  for (int child : {left_of(r), right_of(r)}) {
    if (child >= n) continue;
    if (!recv_epoch<Stamp>(comm, child, kArriveTag, epoch, options.timeout)) {
      return Err::kTimeout;
    }
  }
  if (r != 0) {
    comm.send(parent_of(r), kArriveTag, Stamp{epoch});
    if (!recv_epoch<Stamp>(comm, parent_of(r), kReleaseTag, epoch, options.timeout)) {
      return Err::kTimeout;
    }
  }
  // Release broadcast.
  for (int child : {left_of(r), right_of(r)}) {
    if (child >= n) continue;
    comm.send(child, kReleaseTag, Stamp{epoch});
  }
  return Err::kSuccess;
}

Err bcast(Communicator& comm, double& value, std::uint64_t epoch,
          const CollectiveOptions& options) {
  const int r = comm.rank();
  const int n = comm.size();
  if (r != 0) {
    const auto v =
        recv_epoch<StampedValue>(comm, parent_of(r), kBcastTag, epoch, options.timeout);
    if (!v) return Err::kTimeout;
    value = v->value;
  }
  for (int child : {left_of(r), right_of(r)}) {
    if (child >= n) continue;
    comm.send(child, kBcastTag, StampedValue{epoch, value});
  }
  return Err::kSuccess;
}

Err allreduce_sum(Communicator& comm, double& value, std::uint64_t epoch,
                  const CollectiveOptions& options) {
  return allreduce(comm, value, ReduceOp::kSum, epoch, options);
}

Err reduce(Communicator& comm, double& value, ReduceOp op, std::uint64_t epoch,
           const CollectiveOptions& options) {
  const int r = comm.rank();
  const int n = comm.size();
  auto combine = [op](double a, double b) {
    switch (op) {
      case ReduceOp::kSum: return a + b;
      case ReduceOp::kProd: return a * b;
      case ReduceOp::kMin: return std::min(a, b);
      case ReduceOp::kMax: return std::max(a, b);
    }
    return a;
  };
  double acc = value;
  for (int child : {left_of(r), right_of(r)}) {
    if (child >= n) continue;
    const auto v =
        recv_epoch<StampedValue>(comm, child, kReduceTag, epoch, options.timeout);
    if (!v) return Err::kTimeout;
    acc = combine(acc, v->value);
  }
  if (r != 0) {
    comm.send(parent_of(r), kReduceTag, StampedValue{epoch, acc});
  } else {
    value = acc;
  }
  return Err::kSuccess;
}

Err allreduce(Communicator& comm, double& value, ReduceOp op, std::uint64_t epoch,
              const CollectiveOptions& options) {
  const auto err = reduce(comm, value, op, epoch, options);
  if (err != Err::kSuccess) return err;
  return bcast(comm, value, epoch, options);
}

namespace {

/// Wire format for gather/scatter segments: epoch, then (rank, value) pairs.
struct Slot {
  std::uint64_t epoch;
  std::int32_t rank;
  double value;
};

std::vector<std::byte> pack_slots(const std::vector<Slot>& slots) {
  std::vector<std::byte> bytes(slots.size() * sizeof(Slot));
  std::memcpy(bytes.data(), slots.data(), bytes.size());
  return bytes;
}

std::optional<std::vector<Slot>> unpack_slots(const Recvd& m) {
  if (m.payload.size() % sizeof(Slot) != 0) return std::nullopt;
  std::vector<Slot> slots(m.payload.size() / sizeof(Slot));
  std::memcpy(slots.data(), m.payload.data(), m.payload.size());
  return slots;
}

/// Receives a slot bundle from `src` with the right epoch; stale bundles
/// are dropped, future ones held back and re-stashed (as in recv_epoch).
std::optional<std::vector<Slot>> recv_slots(Communicator& comm, int src, int tag,
                                            std::uint64_t epoch,
                                            std::chrono::milliseconds timeout) {
  std::vector<Recvd> futures;
  const auto restash = [&] {
    for (auto& f : futures) comm.stash(std::move(f));
  };
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left <= std::chrono::milliseconds::zero()) {
      restash();
      return std::nullopt;
    }
    auto m = comm.recv(src, tag, left);
    if (!m) {
      restash();
      return std::nullopt;
    }
    const auto slots = unpack_slots(*m);
    if (!slots || slots->empty()) continue;
    if (slots->front().epoch == epoch) {
      restash();
      return slots;
    }
    if (slots->front().epoch > epoch) futures.push_back(std::move(*m));
  }
}

}  // namespace

Err gather(Communicator& comm, double value, std::vector<double>& out,
           std::uint64_t epoch, const CollectiveOptions& options) {
  const int r = comm.rank();
  const int n = comm.size();
  std::vector<Slot> collected{{epoch, r, value}};
  for (int child : {left_of(r), right_of(r)}) {
    if (child >= n) continue;
    const auto slots = recv_slots(comm, child, kGatherTag, epoch, options.timeout);
    if (!slots) return Err::kTimeout;
    collected.insert(collected.end(), slots->begin(), slots->end());
  }
  if (r != 0) {
    const auto bytes = pack_slots(collected);
    comm.send_bytes(parent_of(r), kGatherTag,
                    std::span<const std::byte>(bytes.data(), bytes.size()));
    return Err::kSuccess;
  }
  out.assign(static_cast<std::size_t>(n), 0.0);
  for (const auto& slot : collected) {
    if (slot.rank >= 0 && slot.rank < n) {
      out[static_cast<std::size_t>(slot.rank)] = slot.value;
    }
  }
  return Err::kSuccess;
}

Err scatter(Communicator& comm, const std::vector<double>& in, double& out,
            std::uint64_t epoch, const CollectiveOptions& options) {
  const int r = comm.rank();
  const int n = comm.size();
  std::vector<Slot> mine;
  if (r == 0) {
    mine.reserve(static_cast<std::size_t>(n));
    for (int rank = 0; rank < n && rank < static_cast<int>(in.size()); ++rank) {
      mine.push_back(Slot{epoch, rank, in[static_cast<std::size_t>(rank)]});
    }
  } else {
    const auto slots =
        recv_slots(comm, parent_of(r), kScatterTag, epoch, options.timeout);
    if (!slots) return Err::kTimeout;
    mine = *slots;
  }
  // Keep my slot; forward each child the slice for its subtree.
  for (const auto& slot : mine) {
    if (slot.rank == r) out = slot.value;
  }
  for (int child : {left_of(r), right_of(r)}) {
    if (child >= n) continue;
    std::vector<Slot> subtree;
    // The binary-heap subtree of `child` is exactly the ranks whose
    // ancestor chain passes through `child`.
    for (const auto& slot : mine) {
      int a = slot.rank;
      while (a > child) a = parent_of(a);
      if (a == child) subtree.push_back(slot);
    }
    const auto bytes = pack_slots(subtree);
    comm.send_bytes(child, kScatterTag,
                    std::span<const std::byte>(bytes.data(), bytes.size()));
  }
  return Err::kSuccess;
}

Err allgather(Communicator& comm, double value, std::vector<double>& out,
              std::uint64_t epoch, const CollectiveOptions& options) {
  const auto err = gather(comm, value, out, epoch, options);
  if (err != Err::kSuccess) return err;
  // Broadcast the gathered vector element by element (simple and robust;
  // an optimized implementation would ship one bundle). Elements use the
  // sub-epochs epoch+1 .. epoch+size, hence the documented requirement
  // that callers advance their epoch counter by size()+1 per allgather.
  const int n = comm.size();
  if (comm.rank() != 0) out.assign(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    const auto e = bcast(comm, out[static_cast<std::size_t>(i)],
                         epoch + 1 + static_cast<std::uint64_t>(i), options);
    if (e != Err::kSuccess) return e;
  }
  return Err::kSuccess;
}

}  // namespace ftbar::mpi
