#include "mpi/comm.hpp"

namespace ftbar::mpi {

std::optional<Recvd> Communicator::recv(int src, int tag,
                                        std::chrono::milliseconds timeout) {
  // Serve from the holdback queue first.
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (matches(*it, src, tag)) {
      Recvd out = std::move(*it);
      pending_.erase(it);
      return out;
    }
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left <= std::chrono::milliseconds::zero()) return std::nullopt;
    auto m = net_->recv(rank_, left);
    if (!m) return std::nullopt;  // timeout or shutdown
    if (!runtime::Network::verify(*m)) {  // detectable corruption: discard
      if (trace::Sink* sink = net_->trace_sink()) {
        sink->emit(trace::make_event(trace::Kind::kMsgDrop, trace::mono_us(),
                                     m->src, rank_, m->tag,
                                     2));  // reason 2: checksum mismatch
      }
      continue;
    }
    Recvd r{m->src, m->tag, std::move(m->payload)};
    if (matches(r, src, tag)) return r;
    pending_.push_back(std::move(r));
  }
}

}  // namespace ftbar::mpi
