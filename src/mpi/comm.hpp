// Mini-MPI: a small message-passing interface over runtime::Network.
//
// This is the repo's substitute for a real MPI installation: ranks, typed
// point-to-point sends, and source/tag-matched receives, enough to host
// both the fault-intolerant collectives (mpi/collectives.hpp) and the
// paper's fault-tolerant barrier (mpi/ft_barrier_mpi.hpp) over the same
// fault-injecting transport.
//
// Fault surface: corrupted messages (checksum mismatch) are discarded on
// receipt — detectable corruption degenerates to loss, as in the paper's
// fault classification. Loss itself surfaces as a receive timeout, which
// the layers above translate into the MPI alternatives: abort, error code,
// or tolerance.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstring>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "runtime/network.hpp"

namespace ftbar::mpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// MPI-style error results for collectives and receives.
enum class Err {
  kSuccess = 0,
  kTimeout,  ///< a peer did not respond in time (loss or crash)
};

struct Recvd {
  int src = -1;
  int tag = 0;
  std::vector<std::byte> payload;

  template <class T>
  [[nodiscard]] std::optional<T> as() const noexcept {
    static_assert(std::is_trivially_copyable_v<T>);
    if (payload.size() != sizeof(T)) return std::nullopt;
    T out;
    std::memcpy(&out, payload.data(), sizeof(T));
    return out;
  }
};

/// A rank's endpoint. One Communicator per rank; not thread-safe (each rank
/// is driven by exactly one thread, as in MPI).
class Communicator {
 public:
  Communicator(std::shared_ptr<runtime::Network> net, int rank)
      : net_(std::move(net)), rank_(rank) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return net_->size(); }
  [[nodiscard]] runtime::Network& network() noexcept { return *net_; }

  void send_bytes(int dst, int tag, std::span<const std::byte> bytes) {
    net_->send(rank_, dst, tag, bytes);
  }

  template <class T>
  void send(int dst, int tag, const T& value) {
    net_->send_value(rank_, dst, tag, value);
  }

  /// Receives the next message matching (src, tag), where kAnySource /
  /// kAnyTag match everything. Non-matching messages are queued for later
  /// receives; corrupted messages are dropped. Returns nullopt on timeout.
  std::optional<Recvd> recv(int src, int tag, std::chrono::milliseconds timeout);

  /// Re-queues a message for a later recv. Used by layers that pull raw
  /// network messages (e.g. the tolerant barrier) when they encounter
  /// traffic destined for someone else's matching loop.
  void stash(Recvd r) { pending_.push_back(std::move(r)); }

  template <class T>
  std::optional<T> recv_value(int src, int tag, std::chrono::milliseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    for (;;) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left <= std::chrono::milliseconds::zero()) return std::nullopt;
      const auto m = recv(src, tag, left);
      if (!m) return std::nullopt;
      if (const auto v = m->as<T>()) return v;
      // Wrong size for T: treat like corruption and keep waiting.
    }
  }

 private:
  [[nodiscard]] static bool matches(const Recvd& m, int src, int tag) noexcept {
    return (src == kAnySource || m.src == src) && (tag == kAnyTag || m.tag == tag);
  }

  std::shared_ptr<runtime::Network> net_;
  int rank_;
  std::deque<Recvd> pending_;
};

}  // namespace ftbar::mpi
