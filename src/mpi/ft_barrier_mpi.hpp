// The paper's "third alternative" for MPI barrier synchronization.
//
// MPI traditionally offers two ways of dealing with faults: (i) abort the
// program, and (ii) return an error code and leave recovery to the user.
// This binding adds (iii): tolerate the fault — program MB runs under the
// barrier so that detectable faults (message loss, duplication, reorder,
// detectable corruption, a rank losing its state) are masked by
// re-executing the affected phase, per the paper's Section 1 and 8 goals.
//
//   FtMode::kAbort     - intolerant tree barrier; a timeout throws
//                        BarrierAborted (the MPI_Abort analogue).
//   FtMode::kErrorCode - intolerant tree barrier; a timeout returns
//                        Err::kTimeout and the caller must recover.
//   FtMode::kTolerant  - program MB over the same communicator; the wait
//                        returns a PhaseTicket that says which phase to run
//                        next and whether the previous one must be redone.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>

#include "core/ft_barrier.hpp"
#include "mpi/collectives.hpp"
#include "mpi/comm.hpp"

namespace ftbar::mpi {

enum class FtMode { kAbort, kErrorCode, kTolerant };

/// Thrown by FtMode::kAbort when a peer fails, standing in for MPI_Abort.
class BarrierAborted : public std::runtime_error {
 public:
  BarrierAborted() : std::runtime_error("barrier aborted: peer fault detected") {}
};

struct FtBarrierOptions {
  int num_phases = 64;
  std::chrono::milliseconds retransmit_every{2};
  std::chrono::milliseconds poll{1};
  /// Timeout for the intolerant modes (kAbort / kErrorCode).
  std::chrono::milliseconds intolerant_timeout{1000};
};

struct WaitResult {
  Err err = Err::kSuccess;
  core::PhaseTicket ticket{};  ///< meaningful in kTolerant mode
};

/// Persistent barrier object bound to one rank's communicator.
class FtBarrier {
 public:
  FtBarrier(Communicator comm, FtMode mode, FtBarrierOptions options = {});

  [[nodiscard]] FtMode mode() const noexcept { return mode_; }

  /// Completes one barrier episode. In kTolerant mode `ok=false` reports
  /// that this rank's phase work was lost, forcing a re-execution
  /// everywhere. In the intolerant modes `ok` is ignored (they have no
  /// recovery channel — that is the point of the comparison).
  WaitResult wait(bool ok = true);

  /// Keeps servicing the protocol (republish + consume, tickets discarded)
  /// for `duration` after this rank's LAST wait, so peers still blocked in
  /// theirs can observe the final wave even when its messages were lost.
  /// The message-passing analogue of FaultTolerantBarrier::finalize(); a
  /// no-op in the intolerant modes.
  void drain(std::chrono::milliseconds duration = std::chrono::milliseconds(500));

 private:
  WaitResult wait_tolerant(bool ok);
  WaitResult wait_intolerant();
  void publish();
  void pump();

  Communicator comm_;
  FtMode mode_;
  FtBarrierOptions options_;
  core::MbEngine engine_;
  std::uint64_t epoch_ = 0;        ///< intolerant-mode collective stamp
  std::uint64_t last_seq_pred_ = 0;
  std::uint64_t last_seq_succ_ = 0;
  std::uint64_t bye_mask_ = 0;  ///< drain(): peers known to be done
  std::chrono::steady_clock::time_point last_publish_{};
};

}  // namespace ftbar::mpi
