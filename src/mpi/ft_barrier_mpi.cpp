#include "mpi/ft_barrier_mpi.hpp"

namespace ftbar::mpi {

namespace {
constexpr int kMbStateTag = 110;
constexpr int kMbByeTag = 111;
}

FtBarrier::FtBarrier(Communicator comm, FtMode mode, FtBarrierOptions options)
    : comm_(std::move(comm)),
      mode_(mode),
      options_(options),
      engine_(comm_.rank(), comm_.size(), options.num_phases) {}

WaitResult FtBarrier::wait(bool ok) {
  return mode_ == FtMode::kTolerant ? wait_tolerant(ok) : wait_intolerant();
}

WaitResult FtBarrier::wait_intolerant() {
  const auto err =
      tree_barrier(comm_, epoch_++, CollectiveOptions{options_.intolerant_timeout});
  if (err != Err::kSuccess && mode_ == FtMode::kAbort) throw BarrierAborted();
  return WaitResult{err, {}};
}

void FtBarrier::publish() {
  const int rank = comm_.rank();
  const int size = comm_.size();
  const auto ws = engine_.wire_state();
  comm_.send((rank + 1) % size, kMbStateTag, ws);
  comm_.send((rank + size - 1) % size, kMbStateTag, ws);
}

void FtBarrier::pump() {
  const int rank = comm_.rank();
  const int pred = (rank + comm_.size() - 1) % comm_.size();
  // Pull raw messages so the link sequence numbers are visible for the
  // reorder/duplication filter.
  if (auto m = comm_.network().recv(rank, options_.poll)) {
    if (m->tag == kMbStateTag) {
      if (runtime::Network::verify(*m)) {
        if (const auto ws = runtime::Network::decode<core::WireState>(*m)) {
          auto& last = m->src == pred ? last_seq_pred_ : last_seq_succ_;
          if (m->link_seq >= last) {
            last = m->link_seq + 1;
            engine_.on_neighbor_state(m->src, *ws);
          }
        }
      }
    } else if (m->tag == kMbByeTag) {
      if (const auto mask = runtime::Network::decode<std::uint64_t>(*m)) {
        bye_mask_ |= *mask;
      }
    } else if (runtime::Network::verify(*m)) {
      // Someone else's traffic: keep it for the communicator's matcher.
      comm_.stash(Recvd{m->src, m->tag, std::move(m->payload)});
    }
  }
  const bool changed = engine_.step();
  const auto now = std::chrono::steady_clock::now();
  if (changed || now - last_publish_ >= options_.retransmit_every) {
    publish();
    last_publish_ = now;
  }
}

WaitResult FtBarrier::wait_tolerant(bool ok) {
  if (!ok) engine_.inject_detectable_fault();
  engine_.step();
  publish();
  last_publish_ = std::chrono::steady_clock::now();
  for (;;) {
    if (auto ticket = engine_.take_ticket()) {
      publish();  // keep the wave moving before starting phase work
      return WaitResult{Err::kSuccess, *ticket};
    }
    pump();
  }
}

void FtBarrier::drain(std::chrono::milliseconds duration) {
  if (mode_ != FtMode::kTolerant) return;
  const int rank = comm_.rank();
  const int size = comm_.size();
  const std::uint64_t full = size == 64 ? ~0ULL : ((1ULL << size) - 1);
  bye_mask_ |= 1ULL << rank;
  const auto deadline = std::chrono::steady_clock::now() + duration;
  auto last_bye = std::chrono::steady_clock::time_point{};
  while (bye_mask_ != full && std::chrono::steady_clock::now() < deadline) {
    const auto now = std::chrono::steady_clock::now();
    if (now - last_bye >= options_.retransmit_every) {
      for (int peer = 0; peer < size; ++peer) {
        if (peer != rank) comm_.send(peer, kMbByeTag, bye_mask_);
      }
      last_bye = now;
    }
    pump();
    (void)engine_.take_ticket();  // releases past the final wait are moot
  }
  // Parting shots for peers that are still draining.
  for (int round = 0; round < 3; ++round) {
    for (int peer = 0; peer < size; ++peer) {
      if (peer != rank) comm_.send(peer, kMbByeTag, bye_mask_);
    }
  }
}

}  // namespace ftbar::mpi
