// Fault-INTOLERANT collectives over the mini-MPI layer: the comparison
// baseline (1 + 2hc: one convergecast to detect completion, one broadcast
// to release) and the substrate for the Abort / ErrorCode fault-handling
// alternatives that MPI traditionally offers.
//
// All collectives run over the binomial-ish static tree rank r ->
// children 2r+1, 2r+2 and carry an epoch stamp so that duplicated or
// reordered messages from older collectives are discarded. Loss surfaces
// as Err::kTimeout.
#pragma once

#include <chrono>
#include <cstdint>

#include "mpi/comm.hpp"

namespace ftbar::mpi {

struct CollectiveOptions {
  std::chrono::milliseconds timeout{1000};
};

/// Tree barrier: arrive-up then release-down. Every rank must call it with
/// the same epoch. Returns kTimeout if any wait expires (peer crashed or
/// message lost) — the caller then aborts or propagates the error code.
[[nodiscard]] Err tree_barrier(Communicator& comm, std::uint64_t epoch,
                               const CollectiveOptions& options = {});

/// Broadcast of a double from rank 0.
[[nodiscard]] Err bcast(Communicator& comm, double& value, std::uint64_t epoch,
                        const CollectiveOptions& options = {});

/// Sum-allreduce of a double (reduce-up to rank 0, broadcast-down).
[[nodiscard]] Err allreduce_sum(Communicator& comm, double& value,
                                std::uint64_t epoch,
                                const CollectiveOptions& options = {});

enum class ReduceOp { kSum, kProd, kMin, kMax };

/// Reduce to rank 0: on return, rank 0's `value` holds the reduction.
[[nodiscard]] Err reduce(Communicator& comm, double& value, ReduceOp op,
                         std::uint64_t epoch, const CollectiveOptions& options = {});

/// Reduce + broadcast: every rank gets the reduction.
[[nodiscard]] Err allreduce(Communicator& comm, double& value, ReduceOp op,
                            std::uint64_t epoch,
                            const CollectiveOptions& options = {});

/// Gather: rank 0's `out` receives all ranks' contributions, indexed by
/// rank; other ranks' `out` is untouched.
[[nodiscard]] Err gather(Communicator& comm, double value, std::vector<double>& out,
                         std::uint64_t epoch, const CollectiveOptions& options = {});

/// Scatter from rank 0: `in` (meaningful at rank 0 only, size = comm.size())
/// is distributed; every rank receives its slot in `out`.
[[nodiscard]] Err scatter(Communicator& comm, const std::vector<double>& in,
                          double& out, std::uint64_t epoch,
                          const CollectiveOptions& options = {});

/// Allgather: every rank's `out` receives all contributions by rank.
/// Consumes the epoch range [epoch, epoch + size()] — advance your epoch
/// counter by size() + 1 afterwards so later collectives stay monotone.
[[nodiscard]] Err allgather(Communicator& comm, double value,
                            std::vector<double>& out, std::uint64_t epoch,
                            const CollectiveOptions& options = {});

}  // namespace ftbar::mpi
