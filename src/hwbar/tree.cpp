#include "hwbar/tree.hpp"

namespace ftbar::hwbar {

HwBarrier::WaveResult TreeHwBarrier::wave(int tid, std::uint64_t e) {
  Slot& me = slot(tid);

  // Combine: gather the subtree waves of every child.
  for (const int child : topo_.children(tid)) {
    Slot& ch = slot(child);
    const SpinExit ex = spin_until(tid, e, /*exit_on_degraded=*/true, [&] {
      return ch.subtree_epoch.load(std::memory_order_acquire) > e;
    });
    if (ex == SpinExit::kGlobal) {
      // A poll's scan commit beat the wave while we were still combining.
      // The root's after-commit kill point means "right after this thread
      // learned episode e committed", whichever path committed it —
      // without this, an armed root kill would silently never fire on a
      // slow (e.g. sanitized) run where the scan path wins the race.
      if (tid == topo_.root() &&
          maybe_die(tid, e, KillPoint::kAfterCommit)) {
        return WaveResult::kDied;
      }
      return WaveResult::kReleased;
    }
    if (ex == SpinExit::kDegraded) return WaveResult::kFellBack;
    if (ex == SpinExit::kEvicted) return WaveResult::kEvicted;
  }
  me.subtree_epoch.store(e + 1, std::memory_order_release);
  if (maybe_die(tid, e, KillPoint::kAfterCombine)) return WaveResult::kDied;

  if (tid == topo_.root()) {
    // The root's subtree is everyone: in a clean episode the ground-truth
    // scan succeeds immediately. If it does not (a participant is off the
    // wave — mid-rejoin, mid-degrade), the poll underneath the wait below
    // keeps retrying it.
    try_commit(tid, e, /*via_wave=*/true);
    if (maybe_die(tid, e, KillPoint::kAfterCommit)) return WaveResult::kDied;
    const SpinExit ex = spin_until(tid, e, /*exit_on_degraded=*/true,
                                   [] { return false; });
    if (ex == SpinExit::kDegraded) return WaveResult::kFellBack;
    if (ex == SpinExit::kEvicted) return WaveResult::kEvicted;
  } else {
    // Wait for the wakeup cascade on our own line (or the global epoch,
    // whichever is observed first — a scan commit releases us too).
    const SpinExit ex = spin_until(tid, e, /*exit_on_degraded=*/true, [&] {
      return me.release_epoch.load(std::memory_order_acquire) > e;
    });
    if (ex == SpinExit::kDegraded) return WaveResult::kFellBack;
    if (ex == SpinExit::kEvicted) return WaveResult::kEvicted;
  }

  if (maybe_die(tid, e, KillPoint::kBeforeWake)) return WaveResult::kDied;
  for (const int child : topo_.children(tid)) {
    slot(child).release_epoch.store(e + 1, std::memory_order_release);
  }
  return WaveResult::kReleased;
}

}  // namespace ftbar::hwbar
