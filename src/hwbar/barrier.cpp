#include "hwbar/barrier.hpp"

namespace ftbar::hwbar {

namespace {
using Clock = runtime::SuspectTracker::Clock;

SlotState state_of(std::uint8_t raw) noexcept {
  return static_cast<SlotState>(raw);
}
}  // namespace

int hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

HwBarrier::HwBarrier(int num_threads, const Options& opt)
    : opt_(opt), size_(num_threads), slots_(static_cast<std::size_t>(num_threads)) {
  observers_.reserve(static_cast<std::size_t>(num_threads));
  for (int tid = 0; tid < num_threads; ++tid) {
    observers_.push_back(
        std::make_unique<Observer>(num_threads, tid, opt_.suspect_after));
  }
}

Stats HwBarrier::stats() const noexcept {
  Stats s;
  s.deaths = deaths_.load(std::memory_order_relaxed);
  s.rejoins = rejoins_.load(std::memory_order_relaxed);
  s.retires = retires_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.wave_commits = wave_commits_.load(std::memory_order_relaxed);
  s.scan_commits = scan_commits_.load(std::memory_order_relaxed);
  return s;
}

void HwBarrier::emit(trace::Kind kind, int proc, long long a, long long b,
                     long long c) noexcept {
  if (opt_.sink != nullptr) {
    opt_.sink->emit(trace::make_event(kind, trace::mono_us(), proc, a, b, c));
  }
}

bool HwBarrier::poll_due(int tid) noexcept {
  Observer& ob = *observers_[static_cast<std::size_t>(tid)];
  const auto now = Clock::now();
  if (now < ob.next_poll) return false;
  ob.next_poll = now + opt_.poll_every;
  return true;
}

bool HwBarrier::try_commit(int tid, std::uint64_t e, bool via_wave) {
  if (epoch_.load(std::memory_order_acquire) != e) return false;
  bool any_absent = false;
  bool any_required = false;
  for (int k = 0; k < size_; ++k) {
    const Slot& s = slots_[static_cast<std::size_t>(k)];
    const SlotState st = state_of(s.status.load(std::memory_order_acquire));
    if (st != SlotState::kAlive) {
      any_absent = true;
      continue;
    }
    if (s.join_epoch.load(std::memory_order_acquire) > e) continue;
    any_required = true;
    if (s.arrived_epoch.load(std::memory_order_acquire) <= e) return false;
  }
  // An episode no live slot is required for has nobody to vouch for it;
  // refusing it keeps episode() meaningful through full teardown.
  if (!any_required) return false;
  std::uint64_t expected = e;
  if (!epoch_.compare_exchange_strong(expected, e + 1,
                                      std::memory_order_acq_rel)) {
    return false;
  }
  if (via_wave) {
    wave_commits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    scan_commits_.fetch_add(1, std::memory_order_relaxed);
    if (degraded_.load(std::memory_order_relaxed)) {
      emit(trace::Kind::kBarrierRepair, tid, phase_of(e),
           static_cast<long long>(e));
    }
  }
  // Winner-only restore: the commit scan just observed every slot Alive, so
  // the structured wave is viable again. A death declared concurrently with
  // this store re-degrades on the declarer's side (and every poll tick
  // re-asserts the flag while any slot is absent), so a lost store only
  // costs speed, never safety.
  if (!any_absent && degraded_.load(std::memory_order_relaxed)) {
    degraded_.store(false, std::memory_order_release);
  }
  return true;
}

void HwBarrier::declare_dead(int victim, std::uint64_t e) {
  auto expected = static_cast<std::uint8_t>(SlotState::kAlive);
  if (slots_[static_cast<std::size_t>(victim)].status.compare_exchange_strong(
          expected, static_cast<std::uint8_t>(SlotState::kDead),
          std::memory_order_acq_rel)) {
    degraded_.store(true, std::memory_order_release);
    deaths_.fetch_add(1, std::memory_order_relaxed);
    emit(trace::Kind::kRankKill, victim, static_cast<long long>(e));
  }
}

bool HwBarrier::poll(int tid, std::uint64_t e) {
  Slot& me = slots_[static_cast<std::size_t>(tid)];
  me.heartbeat.fetch_add(1, std::memory_order_relaxed);
  if (state_of(me.status.load(std::memory_order_acquire)) !=
      SlotState::kAlive) {
    return false;
  }
  Observer& ob = *observers_[static_cast<std::size_t>(tid)];
  const auto now = Clock::now();
  bool any_absent = false;
  for (int k = 0; k < size_; ++k) {
    if (k == tid) continue;
    const Slot& s = slots_[static_cast<std::size_t>(k)];
    if (state_of(s.status.load(std::memory_order_acquire)) !=
        SlotState::kAlive) {
      any_absent = true;
      continue;
    }
    // Progress is heartbeat + arrival count: either advancing is life.
    ob.tracker.observe(k,
                       s.heartbeat.load(std::memory_order_relaxed) +
                           s.arrived_epoch.load(std::memory_order_acquire),
                       now);
  }
  if (any_absent && !degraded_.load(std::memory_order_relaxed)) {
    degraded_.store(true, std::memory_order_release);
  }
  for (const int suspect : ob.tracker.suspected(now)) {
    const Slot& s = slots_[static_cast<std::size_t>(suspect)];
    // Only a slot the in-flight episode is actually waiting on may be
    // declared dead: required (Alive, member by e) and not arrived.
    if (state_of(s.status.load(std::memory_order_acquire)) ==
            SlotState::kAlive &&
        s.join_epoch.load(std::memory_order_acquire) <= e &&
        s.arrived_epoch.load(std::memory_order_acquire) <= e) {
      declare_dead(suspect, e);
    }
  }
  try_commit(tid, e, /*via_wave=*/false);
  return true;
}

ArriveStatus HwBarrier::wait_scan(int tid, std::uint64_t e) {
  try_commit(tid, e, /*via_wave=*/false);
  const SpinExit ex =
      spin_until(tid, e, /*exit_on_degraded=*/false, [] { return false; });
  if (ex == SpinExit::kEvicted) {
    evictions_.fetch_add(1, std::memory_order_relaxed);
    return ArriveStatus::kEvicted;
  }
  return ArriveStatus::kReleased;
}

Ticket HwBarrier::cut_died_ticket(std::uint64_t e) noexcept {
  // Fail-stop: the victim leaves every published word as-is and goes
  // silent. Survivors find out through the detector timeout.
  return Ticket{e, phase_of(e), ArriveStatus::kDied, false};
}

Ticket HwBarrier::arrive_and_wait(int tid) {
  Slot& me = slot(tid);
  if (state_of(me.status.load(std::memory_order_acquire)) !=
      SlotState::kAlive) {
    evictions_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t now_e = epoch_.load(std::memory_order_acquire);
    return Ticket{now_e, phase_of(now_e), ArriveStatus::kEvicted, false};
  }
  const std::uint64_t e = epoch_.load(std::memory_order_acquire);
  if (maybe_die(tid, e, KillPoint::kArriveEntry)) return cut_died_ticket(e);

  // Trace: close the work interval that just finished. The start of the
  // in-flight phase was emitted at the previous depart; if the thread
  // drifted (rejoin races, missed episodes), re-align with an abort+start
  // so the spec monitor sees a coherent stream. The complete is emitted
  // BEFORE the arrival is published: any later kill point then leaves a
  // trace in which this thread's phase was properly closed.
  if (opt_.sink != nullptr) {
    if (!me.started_emitted) {
      emit(trace::Kind::kPhaseStart, tid, phase_of(e));
    } else if (me.last_started_episode != e) {
      emit(trace::Kind::kPhaseAbort, tid);
      emit(trace::Kind::kPhaseStart, tid, phase_of(e));
    }
    emit(trace::Kind::kPhaseComplete, tid, phase_of(e));
  }
  me.started_emitted = true;
  me.last_started_episode = e;

  me.heartbeat.fetch_add(1, std::memory_order_relaxed);
  me.arrived_epoch.store(e + 1, std::memory_order_release);
  if (maybe_die(tid, e, KillPoint::kAfterPublish)) return cut_died_ticket(e);

  WaveResult w = WaveResult::kFellBack;
  if (!degraded_.load(std::memory_order_acquire)) w = wave(tid, e);
  switch (w) {
    case WaveResult::kDied:
      return cut_died_ticket(e);
    case WaveResult::kEvicted:
      evictions_.fetch_add(1, std::memory_order_relaxed);
      return Ticket{e, phase_of(e), ArriveStatus::kEvicted, false};
    case WaveResult::kFellBack: {
      const ArriveStatus st = wait_scan(tid, e);
      if (st != ArriveStatus::kReleased) {
        return Ticket{e, phase_of(e), st, false};
      }
      break;
    }
    case WaveResult::kReleased:
      break;
  }

  if (maybe_die(tid, e, KillPoint::kBeforeDepart)) return cut_died_ticket(e);
  const std::uint64_t next = e + 1;
  emit(trace::Kind::kPhaseStart, tid, phase_of(next));
  me.last_started_episode = next;
  return Ticket{next, phase_of(next), ArriveStatus::kReleased, false};
}

Ticket HwBarrier::rejoin(int tid) {
  Slot& me = slot(tid);
  const std::uint64_t observed = epoch_.load(std::memory_order_acquire);
  if (state_of(me.status.load(std::memory_order_acquire)) !=
      SlotState::kDead) {
    return Ticket{observed, phase_of(observed), ArriveStatus::kEvicted, false};
  }
  // Fresh start for the replacement's own failure detector: everything it
  // knew about peer progress predates the crash.
  observers_[static_cast<std::size_t>(tid)]->tracker.forgive_all(Clock::now());

  // Pre-publish membership and the arrival for the in-flight episode, THEN
  // flip the slot Alive (release): a commit scan that observes the slot
  // Alive is guaranteed to also observe it arrived, so the flip can never
  // stall or corrupt the episode it lands in. The crashed thread's work
  // for that episode is forfeited (Ticket::recovered tells the caller).
  me.join_epoch.store(observed, std::memory_order_relaxed);
  me.arrived_epoch.store(observed + 1, std::memory_order_release);
  me.heartbeat.fetch_add(1, std::memory_order_relaxed);
  me.status.store(static_cast<std::uint8_t>(SlotState::kAlive),
                  std::memory_order_release);
  rejoins_.fetch_add(1, std::memory_order_relaxed);
  emit(trace::Kind::kRankRestart, tid, static_cast<long long>(observed));

  // Ride out the episode we pre-arrived for; released together with the
  // survivors, at which point the slot participates normally.
  const SpinExit ex = spin_until(tid, observed, /*exit_on_degraded=*/false,
                                 [] { return false; });
  if (ex == SpinExit::kEvicted) {
    evictions_.fetch_add(1, std::memory_order_relaxed);
    return Ticket{observed, phase_of(observed), ArriveStatus::kEvicted, true};
  }
  const std::uint64_t now_e = epoch_.load(std::memory_order_acquire);
  emit(trace::Kind::kPhaseStart, tid, phase_of(now_e));
  me.started_emitted = true;
  me.last_started_episode = now_e;
  return Ticket{now_e, phase_of(now_e), ArriveStatus::kReleased, true};
}

void HwBarrier::retire(int tid) {
  Slot& me = slot(tid);
  if (state_of(me.status.load(std::memory_order_acquire)) !=
      SlotState::kAlive) {
    return;
  }
  // Discard the open phase and announce the withdrawal (b=1 marks it
  // voluntary, vs the detector's kRankKill declarations).
  emit(trace::Kind::kPhaseAbort, tid);
  emit(trace::Kind::kRankKill, tid,
       static_cast<long long>(epoch_.load(std::memory_order_acquire)), 1);
  me.status.store(static_cast<std::uint8_t>(SlotState::kRetired),
                  std::memory_order_release);
  retires_.fetch_add(1, std::memory_order_relaxed);
  // The wave would wait on this slot's signals; keep everyone on the scan
  // path from here on, and unwedge any episode that was waiting only on us.
  degraded_.store(true, std::memory_order_release);
  try_commit(tid, epoch_.load(std::memory_order_acquire), /*via_wave=*/false);
}

}  // namespace ftbar::hwbar
