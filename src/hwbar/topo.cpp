#include "hwbar/topo.hpp"

#include <algorithm>
#include <vector>

namespace ftbar::hwbar {

std::unique_ptr<TopoHwBarrier> TopoHwBarrier::ring(int num_threads,
                                                   const Options& opt) {
  return std::make_unique<TopoHwBarrier>(topology::Topology::ring(num_threads),
                                         opt);
}

std::unique_ptr<TopoHwBarrier> TopoHwBarrier::two_ring(int num_threads,
                                                       const Options& opt) {
  return std::make_unique<TopoHwBarrier>(
      topology::Topology::two_ring(num_threads), opt);
}

std::unique_ptr<TopoHwBarrier> TopoHwBarrier::kary(int num_threads, int arity,
                                                   const Options& opt) {
  return std::make_unique<TopoHwBarrier>(
      topology::Topology::kary_tree(num_threads, arity), opt);
}

std::unique_ptr<TopoHwBarrier> TopoHwBarrier::package_tree(
    int num_threads, int threads_per_package, const Options& opt) {
  if (threads_per_package <= 0) {
    threads_per_package = std::max(2, hardware_threads());
  }
  // Thread i belongs to package i / threads_per_package; the package's
  // first thread is its leader. Local threads combine into their leader,
  // leaders combine into thread 0 (leader of package 0).
  std::vector<int> parent(static_cast<std::size_t>(num_threads), -1);
  for (int tid = 1; tid < num_threads; ++tid) {
    const int leader = (tid / threads_per_package) * threads_per_package;
    parent[static_cast<std::size_t>(tid)] = tid == leader ? 0 : leader;
  }
  return std::make_unique<TopoHwBarrier>(
      topology::Topology::from_parents(std::move(parent)), opt);
}

}  // namespace ftbar::hwbar
