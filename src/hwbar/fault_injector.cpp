#include "hwbar/fault_injector.hpp"

#include <cstring>

namespace ftbar::hwbar {

const char* kill_point_name(KillPoint point) noexcept {
  switch (point) {
    case KillPoint::kArriveEntry: return "arrive_entry";
    case KillPoint::kAfterPublish: return "after_publish";
    case KillPoint::kAfterCombine: return "after_combine";
    case KillPoint::kAfterCommit: return "after_commit";
    case KillPoint::kBeforeWake: return "before_wake";
    case KillPoint::kBeforeDepart: return "before_depart";
  }
  return "unknown";
}

bool parse_kill_point(const char* text, KillPoint* out) noexcept {
  if (text == nullptr || out == nullptr) return false;
  for (const KillPoint point : all_kill_points()) {
    if (std::strcmp(text, kill_point_name(point)) == 0) {
      *out = point;
      return true;
    }
  }
  return false;
}

std::array<KillPoint, kNumKillPoints> all_kill_points() noexcept {
  return {KillPoint::kArriveEntry,  KillPoint::kAfterPublish,
          KillPoint::kAfterCombine, KillPoint::kAfterCommit,
          KillPoint::kBeforeWake,   KillPoint::kBeforeDepart};
}

void FaultInjector::arm(int tid, std::uint64_t episode, KillPoint point) {
  const std::lock_guard<std::mutex> lock(mutex_);
  armed_.push_back(Kill{tid, episode, point});
  armed_count_.fetch_add(1, std::memory_order_release);
}

bool FaultInjector::should_die(int tid, std::uint64_t episode,
                               KillPoint point) noexcept {
  consulted_[static_cast<std::size_t>(point)].fetch_add(
      1, std::memory_order_relaxed);
  if (armed_count_.load(std::memory_order_acquire) == 0) return false;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = armed_.begin(); it != armed_.end(); ++it) {
    if (it->tid == tid && it->episode == episode && it->point == point) {
      armed_.erase(it);
      armed_count_.fetch_sub(1, std::memory_order_release);
      kills_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

}  // namespace ftbar::hwbar
