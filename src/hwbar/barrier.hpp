// Native shared-memory fault-tolerant barriers (std::thread level).
//
// The simulated engines prove the paper's protocols over guarded commands;
// this subsystem re-earns them over real atomics. The design generalizes
// sense reversal to a monotone 64-bit EPISODE counter (`epoch_`): episode e
// is in flight while epoch_ == e, committing it stores e+1, and the classic
// sense bit is just the parity of the epoch. A thread arrives for episode e
// by publishing `arrived_epoch = e+1` in its cache-line-padded slot.
//
// The recovery logic is superposed the way the paper superposes MB on the
// fault-intolerant barrier: the structured wave (central counter-free scan,
// combining tree, topology cascade) is only a CONTENTION OPTIMIZATION, and
// the scan-based commit (`try_commit`) — "every slot that is alive and was
// a member by episode e has arrived" — is always the ground truth. Every
// spin loop periodically polls: it bumps its own heartbeat, feeds a
// runtime::ProgressTracker with every peer's progress counters, declares a
// required-but-silent peer dead after the timeout (CAS Alive -> Dead,
// trace kRankKill), and retries the scan commit itself. Hence a commit is
// never lost to a dead committer, and a dead participant stalls the
// barrier for at most the detection timeout.
//
// Membership is per-slot: {Alive, Dead, Retired} plus `join_epoch`, the
// first episode the slot is required for. A replacement thread rejoin()s a
// Dead slot by pre-publishing an arrival for the in-flight episode BEFORE
// flipping the status to Alive — so any commit scan that observes it Alive
// also observes it arrived, and the rejoiner is released together with the
// survivors and participates normally from the next episode on. Rejoining
// is therefore bounded: the replacement holds a live ticket at most two
// episodes after the flip.
//
// A sticky `degraded_` flag routes every thread to the scan path while any
// slot is Dead or Retired (structured waves would wait on the dead slot's
// signals); the thread that commits an episode observing every slot Alive
// clears it, restoring the fast wave. Mixed modes — some threads waving,
// some scanning, a stale degraded read — are always SAFE, merely slower,
// because arrivals are published before either path runs and every wait
// loop also watches the global epoch word.
//
// Memory-ordering argument (DESIGN.md §11 walks the full chain): arrival
// stores are release, the commit scan's loads are acquire, the epoch CAS
// is acq_rel, and waiter loads of epoch/release words are acquire — so
// everything sequenced before any arrive of episode e happens-before
// everything sequenced after any release from e, which is exactly the
// barrier contract. Heartbeats are relaxed (they order nothing).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "hwbar/fault_injector.hpp"
#include "runtime/failure_detector.hpp"
#include "trace/sink.hpp"

namespace ftbar::hwbar {

inline constexpr std::size_t kCacheLine = 64;

/// std::thread::hardware_concurrency() with a sane floor (it may report 0).
[[nodiscard]] int hardware_threads() noexcept;

enum class SlotState : std::uint8_t { kAlive = 0, kDead = 1, kRetired = 2 };

enum class ArriveStatus : std::uint8_t {
  kReleased = 0,  ///< normal release: every required participant arrived
  kDied = 1,      ///< this thread was killed at an armed kill point
  kEvicted = 2,   ///< this slot was declared dead; the caller must stand
                  ///< down (and may rejoin() once it sees the declaration)
};

struct Ticket {
  std::uint64_t episode = 0;  ///< episodes committed when the ticket was cut
  int phase = 0;              ///< episode mod num_phases: the phase to run next
  ArriveStatus status = ArriveStatus::kReleased;
  bool recovered = false;  ///< cut by rejoin(): phases up to `episode` were
                           ///< forfeited by the crash, re-execute if needed
};

struct Options {
  int num_phases = 64;  ///< cyclic phase count for tickets and trace events
  /// Silence longer than this declares a required participant dead. Must
  /// exceed the longest inter-arrival gap (phase work) of the application.
  std::chrono::milliseconds suspect_after{250};
  /// Cadence of the poll tick (heartbeat + detector + scan commit).
  std::chrono::microseconds poll_every{200};
  int spin_before_yield = 64;  ///< spins per yield in every wait loop
  trace::Sink* sink = nullptr;          ///< optional; null = no tracing
  FaultInjector* injector = nullptr;    ///< optional; null = no kill points
};

struct Stats {
  std::uint64_t deaths = 0;        ///< slots declared dead by the detector
  std::uint64_t rejoins = 0;       ///< successful rejoin() calls
  std::uint64_t retires = 0;       ///< voluntary retire() calls
  std::uint64_t evictions = 0;     ///< live threads told to stand down
  std::uint64_t wave_commits = 0;  ///< episodes committed by the fast wave
  std::uint64_t scan_commits = 0;  ///< episodes committed by the scan path
};

class HwBarrier {
 public:
  virtual ~HwBarrier() = default;
  HwBarrier(const HwBarrier&) = delete;
  HwBarrier& operator=(const HwBarrier&) = delete;

  /// Arrives for the in-flight episode and waits for its release (or for a
  /// kill/eviction). Each slot has exactly one owning thread at a time.
  Ticket arrive_and_wait(int tid);

  /// Re-activates a Dead slot with a replacement thread: pre-arrives for
  /// the in-flight episode, flips the slot Alive, and blocks until that
  /// episode is released so the caller re-enters phase-aligned. Returns a
  /// kEvicted ticket (without touching anything) if the slot is not Dead —
  /// callers should wait for slot_state(tid) == kDead first.
  Ticket rejoin(int tid);

  /// Permanently withdraws the slot so the remaining participants can keep
  /// committing episodes without it (clean shutdown of one thread).
  void retire(int tid);

  [[nodiscard]] int size() const noexcept { return size_; }
  [[nodiscard]] int num_phases() const noexcept { return opt_.num_phases; }
  /// Episodes committed so far (the monotone generalization of the sense).
  [[nodiscard]] std::uint64_t episode() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }
  /// The classic sense-reversal bit: parity of the episode counter.
  [[nodiscard]] bool sense() const noexcept { return (episode() & 1U) != 0U; }
  [[nodiscard]] bool degraded() const noexcept {
    return degraded_.load(std::memory_order_acquire);
  }
  [[nodiscard]] SlotState slot_state(int tid) const noexcept {
    return static_cast<SlotState>(
        slots_[static_cast<std::size_t>(tid)].status.load(
            std::memory_order_acquire));
  }
  [[nodiscard]] Stats stats() const noexcept;
  [[nodiscard]] const Options& options() const noexcept { return opt_; }

  [[nodiscard]] virtual const char* kind_name() const noexcept = 0;
  /// Kill points this implementation consults, for sweep-style tests.
  [[nodiscard]] virtual std::vector<KillPoint> kill_points() const = 0;

 protected:
  HwBarrier(int num_threads, const Options& opt);

  struct alignas(kCacheLine) Slot {
    // Owner-published line: arrival, liveness, membership.
    std::atomic<std::uint64_t> arrived_epoch{0};  ///< e+1 == arrived for e
    std::atomic<std::uint64_t> heartbeat{0};
    std::atomic<std::uint64_t> subtree_epoch{0};  ///< tree combine signal
    std::atomic<std::uint64_t> join_epoch{0};  ///< first episode required for
    std::atomic<std::uint8_t> status{
        static_cast<std::uint8_t>(SlotState::kAlive)};
    // Owner-only trace bookkeeping (never read by other threads).
    std::uint64_t last_started_episode = 0;
    bool started_emitted = false;
    // Parent-written release word on its own line (tree wakeup cascade).
    alignas(kCacheLine) std::atomic<std::uint64_t> release_epoch{0};
  };

  enum class WaveResult : std::uint8_t {
    kReleased,  ///< the wave observed the episode committed
    kFellBack,  ///< bail out to the scan path (degraded or stalled)
    kDied,      ///< killed at a kill point inside the wave
    kEvicted,   ///< own slot declared dead during the wave
  };

  /// The structured fast path for episode e, run after the arrival is
  /// published. Implementations must keep every internal wait loop on
  /// spin_until() so the ground-truth scan and the failure detector stay
  /// live underneath the wave.
  virtual WaveResult wave(int tid, std::uint64_t e) = 0;

  enum class SpinExit : std::uint8_t { kPred, kGlobal, kDegraded, kEvicted };

  /// Waits until `pred()` holds, the global epoch passes e, the barrier
  /// degrades (only when exit_on_degraded), or the caller's slot is
  /// declared dead. Runs the poll tick at Options::poll_every cadence.
  template <class Pred>
  SpinExit spin_until(int tid, std::uint64_t e, bool exit_on_degraded,
                      Pred&& pred) {
    int spins = 0;
    for (;;) {
      if (pred()) return SpinExit::kPred;
      if (epoch_.load(std::memory_order_acquire) > e) return SpinExit::kGlobal;
      if (exit_on_degraded && degraded_.load(std::memory_order_acquire)) {
        return SpinExit::kDegraded;
      }
      if (++spins >= opt_.spin_before_yield) {
        spins = 0;
        if (poll_due(tid)) {
          if (!poll(tid, e)) return SpinExit::kEvicted;
          if (epoch_.load(std::memory_order_acquire) > e) {
            return SpinExit::kGlobal;
          }
        }
        std::this_thread::yield();
      }
    }
  }

  /// Ground truth: commits episode e iff every Alive slot with
  /// join_epoch <= e has published its arrival (Dead/Retired slots are
  /// excluded; an episode no live slot is required for never commits).
  /// The winner clears degraded_ when it observed every slot Alive.
  bool try_commit(int tid, std::uint64_t e, bool via_wave);

  /// Scan-path wait: commit if possible, then spin on the epoch word.
  ArriveStatus wait_scan(int tid, std::uint64_t e);

  /// One detector tick; returns false when the caller's own slot is no
  /// longer Alive (the caller must stand down).
  bool poll(int tid, std::uint64_t e);

  /// Consults the injector; true means the caller dies here.
  [[nodiscard]] bool maybe_die(int tid, std::uint64_t e,
                               KillPoint point) noexcept {
    return opt_.injector != nullptr &&
           opt_.injector->should_die(tid, e, point);
  }

  void declare_dead(int victim, std::uint64_t e);
  void emit(trace::Kind kind, int proc, long long a = 0, long long b = 0,
            long long c = 0) noexcept;
  [[nodiscard]] int phase_of(std::uint64_t e) const noexcept {
    return static_cast<int>(e % static_cast<std::uint64_t>(opt_.num_phases));
  }
  [[nodiscard]] Slot& slot(int tid) noexcept {
    return slots_[static_cast<std::size_t>(tid)];
  }

  Options opt_;
  int size_;
  std::vector<Slot> slots_;
  alignas(kCacheLine) std::atomic<std::uint64_t> epoch_{0};
  alignas(kCacheLine) std::atomic<bool> degraded_{false};

 private:
  [[nodiscard]] bool poll_due(int tid) noexcept;
  Ticket cut_died_ticket(std::uint64_t e) noexcept;

  struct Observer {
    explicit Observer(int num_threads, int self,
                      runtime::SuspectTracker::Clock::duration timeout)
        : tracker(num_threads, self, timeout) {}
    runtime::ProgressTracker tracker;
    runtime::SuspectTracker::Clock::time_point next_poll{};
  };
  std::vector<std::unique_ptr<Observer>> observers_;

  std::atomic<std::uint64_t> deaths_{0};
  std::atomic<std::uint64_t> rejoins_{0};
  std::atomic<std::uint64_t> retires_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> wave_commits_{0};
  std::atomic<std::uint64_t> scan_commits_{0};
};

}  // namespace ftbar::hwbar
