// Topology-aware combining layouts for TreeHwBarrier.
//
// The wave machinery of tree.cpp works over any rooted topology::Topology,
// so the "topology-aware" barrier is a set of layout factories mirroring
// the paper's Figure 2 organizations plus a package-aware two-level tree
// (one leader per package combining its local threads, leaders combining
// into the root — the Galois FastBarrier wakeup-cascade shape, seeded here
// from hardware_concurrency() in lieu of a real NUMA map).
#pragma once

#include <memory>

#include "hwbar/tree.hpp"

namespace ftbar::hwbar {

class TopoHwBarrier final : public TreeHwBarrier {
 public:
  TopoHwBarrier(topology::Topology topo, const Options& opt)
      : TreeHwBarrier(std::move(topo), opt) {}

  [[nodiscard]] const char* kind_name() const noexcept override {
    return "topo";
  }

  /// Figure 2(a): a single combining chain (deepest tree, fewest lines).
  static std::unique_ptr<TopoHwBarrier> ring(int num_threads,
                                             const Options& opt);
  /// Figure 2(b): two chains meeting at thread 0.
  static std::unique_ptr<TopoHwBarrier> two_ring(int num_threads,
                                                 const Options& opt);
  /// Figure 2(c): complete-as-possible k-ary combining tree.
  static std::unique_ptr<TopoHwBarrier> kary(int num_threads, int arity,
                                             const Options& opt);
  /// Package-aware two-level tree: threads_per_package-sized groups, each
  /// combining into its leader, leaders combining into thread 0. Pass 0 to
  /// derive the group size from hardware_threads().
  static std::unique_ptr<TopoHwBarrier> package_tree(int num_threads,
                                                     int threads_per_package,
                                                     const Options& opt);
};

}  // namespace ftbar::hwbar
