// Cooperative kill-point injection for the shared-memory barriers.
//
// A real thread cannot be killed asynchronously without taking the whole
// process down, so hwbar models fail-stop the way the paper's simulated
// engines model detectable faults: the barrier consults the injector at a
// small set of named KILL POINTS inside its protocol, and a thread armed to
// die there simply stops participating — it returns from arrive_and_wait()
// with ArriveStatus::kDied, leaves every shared word exactly as the
// protocol had published it so far, and never touches the barrier again
// (until a replacement rejoin()s the slot). Survivors learn of the death
// only through the failure detector's timeout, exactly like a silent crash.
//
// The kill points are chosen so that every distinct "shape" of partially
// published protocol state is reachable:
//
//   kArriveEntry  — died during phase work: nothing of this episode
//                   published (the hardest case: survivors must time out).
//   kAfterPublish — arrival flag visible, but the thread will neither
//                   combine nor wait: the episode can commit without it,
//                   the NEXT one cannot.
//   kAfterCombine — (tree) its subtree signal is up; the parent proceeds.
//   kAfterCommit  — died immediately after advancing the global epoch.
//   kBeforeWake   — (tree) released, but its children were never cascaded
//                   to — they must fall back to the global epoch word.
//   kBeforeDepart — released and done, but the next phase never starts.
//
// The injector is also the experiment's measurement point: it counts how
// often each kill point was consulted (proof the protocol actually passes
// through it) and how many kills it delivered.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace ftbar::hwbar {

enum class KillPoint : std::uint8_t {
  kArriveEntry = 0,
  kAfterPublish,
  kAfterCombine,
  kAfterCommit,
  kBeforeWake,
  kBeforeDepart,
};

inline constexpr int kNumKillPoints = 6;

/// Stable lowercase identifier ("arrive_entry", ...), for CLI flags and logs.
[[nodiscard]] const char* kill_point_name(KillPoint point) noexcept;

/// Parses a kill_point_name() string; returns false on unknown names.
[[nodiscard]] bool parse_kill_point(const char* text, KillPoint* out) noexcept;

/// All kill points, in consultation order, for sweep-style tests.
[[nodiscard]] std::array<KillPoint, kNumKillPoints> all_kill_points() noexcept;

class FaultInjector {
 public:
  struct Kill {
    int tid = -1;
    std::uint64_t episode = 0;
    KillPoint point = KillPoint::kArriveEntry;
  };

  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms one kill: thread `tid` dies when it reaches `point` in episode
  /// `episode`. May be called while the barrier is running.
  void arm(int tid, std::uint64_t episode, KillPoint point);

  /// Consulted by the barrier. Returns true exactly once per armed kill
  /// (the kill is consumed); always counts the consultation.
  [[nodiscard]] bool should_die(int tid, std::uint64_t episode,
                                KillPoint point) noexcept;

  /// How many times the barrier consulted this kill point.
  [[nodiscard]] std::uint64_t consulted(KillPoint point) const noexcept {
    return consulted_[static_cast<std::size_t>(point)].load(
        std::memory_order_relaxed);
  }
  /// Kills delivered so far.
  [[nodiscard]] std::uint64_t kills() const noexcept {
    return kills_.load(std::memory_order_relaxed);
  }

 private:
  // armed_count_ keeps the no-faults fast path to one relaxed load; the
  // mutex is only taken while kills are actually pending.
  std::atomic<int> armed_count_{0};
  std::atomic<std::uint64_t> kills_{0};
  std::array<std::atomic<std::uint64_t>, kNumKillPoints> consulted_{};
  std::mutex mutex_;
  std::vector<Kill> armed_;
};

}  // namespace ftbar::hwbar
