// Sense-reversing central barrier, recovery-superposed.
//
// The textbook central barrier keeps a shared count and a sense flag; this
// one IS the recovery machinery's scan path run as the fast path: each
// arrival publishes its per-slot flag (no shared counter to corrupt when
// membership changes) and attempts the ground-truth commit; everyone then
// spins on the single epoch word, whose parity is the classic sense bit.
// O(n) loads per arrival on one line-per-slot — the expected central-
// barrier contention profile — but death, rejoin and retire need no extra
// code at all: the fast path and the degraded path are the same path.
#pragma once

#include "hwbar/barrier.hpp"

namespace ftbar::hwbar {

class CentralHwBarrier final : public HwBarrier {
 public:
  CentralHwBarrier(int num_threads, const Options& opt)
      : HwBarrier(num_threads, opt) {}

  [[nodiscard]] const char* kind_name() const noexcept override {
    return "central";
  }
  [[nodiscard]] std::vector<KillPoint> kill_points() const override {
    return {KillPoint::kArriveEntry, KillPoint::kAfterPublish,
            KillPoint::kAfterCommit, KillPoint::kBeforeDepart};
  }

 protected:
  WaveResult wave(int tid, std::uint64_t e) override;
};

}  // namespace ftbar::hwbar
