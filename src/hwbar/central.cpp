#include "hwbar/central.hpp"

namespace ftbar::hwbar {

HwBarrier::WaveResult CentralHwBarrier::wave(int tid, std::uint64_t e) {
  try_commit(tid, e, /*via_wave=*/true);
  if (maybe_die(tid, e, KillPoint::kAfterCommit)) return WaveResult::kDied;
  const SpinExit ex =
      spin_until(tid, e, /*exit_on_degraded=*/false, [] { return false; });
  return ex == SpinExit::kEvicted ? WaveResult::kEvicted
                                  : WaveResult::kReleased;
}

}  // namespace ftbar::hwbar
