// Combining-tree barrier over an arbitrary topology::Topology, with the
// recovery logic superposed.
//
// Fast path (MCS-style, per-slot cache-line-padded signal words):
//   combine  — wait for each child's `subtree_epoch` to pass the episode,
//              then publish your own: a wave of per-edge release/acquire
//              handoffs that carries every descendant's arrival to the
//              root with O(fan-in) remote lines per node.
//   commit   — the root runs the ground-truth scan commit (its subtree is
//              everyone, so in a clean episode the scan succeeds at first
//              try) and advances the epoch.
//   wake     — releases cascade root -> leaves through per-slot
//              `release_epoch` words (each thread spins on its OWN line,
//              written by its parent), the NUMA-friendly wakeup pattern.
//
// Superposition: every one of those waits runs on spin_until(), so the
// failure detector and the scan commit keep running underneath. A death
// anywhere flips `degraded_`, every waiter bails out of the wave to the
// scan path, and the episode commits without the dead slot after at most
// the detection timeout. Threads in the wave and threads in the scan mix
// safely: arrivals were published before either path started, and every
// wave wait also watches the global epoch word — a scan commit releases
// wave waiters too, stale signal words merely lag (all comparisons are
// monotone `> e`).
#pragma once

#include "hwbar/barrier.hpp"
#include "topology/topology.hpp"

namespace ftbar::hwbar {

class TreeHwBarrier : public HwBarrier {
 public:
  /// Complete-as-possible `arity`-ary combining tree in BFS order.
  TreeHwBarrier(int num_threads, const Options& opt, int arity = 2)
      : TreeHwBarrier(topology::Topology::kary_tree(num_threads, arity), opt) {}

  /// Any rooted topology (root must be thread 0, per topology::Topology).
  TreeHwBarrier(topology::Topology topo, const Options& opt)
      : HwBarrier(topo.size(), opt), topo_(std::move(topo)) {}

  [[nodiscard]] const char* kind_name() const noexcept override {
    return "tree";
  }
  [[nodiscard]] std::vector<KillPoint> kill_points() const override {
    return {KillPoint::kArriveEntry,  KillPoint::kAfterPublish,
            KillPoint::kAfterCombine, KillPoint::kAfterCommit,
            KillPoint::kBeforeWake,   KillPoint::kBeforeDepart};
  }

  [[nodiscard]] const topology::Topology& topo() const noexcept {
    return topo_;
  }

 protected:
  WaveResult wave(int tid, std::uint64_t e) override;

 private:
  topology::Topology topo_;
};

}  // namespace ftbar::hwbar
