// Concrete checking bundles for the paper's four programs.
//
// The checker core is program-agnostic; this header packages each program
// (CB, RB on the ring, RB' on the two intersecting rings of Fig 2(b), MB)
// with exactly what a verification run needs:
//
//  * the action system and process count;
//  * root sets per fault class — fault-free start states, and the
//    single-process corruption neighbourhood of a start state (the
//    paper's undetectable-fault model: one process's variables set to
//    arbitrary domain values). CB/RB enumerate the WHOLE corrupted record
//    domain; MB's record has seven fields whose product is combinatorially
//    heavy, so MB enumerates single-VARIABLE corruptions instead — the
//    coarser classes are reachable from these via further faults, and the
//    reduction is stated here rather than applied silently;
//  * `safe`, a closure invariant that holds in every fault-free reachable
//    state (checked with fault class kNone), and `legit`, the legitimacy
//    predicate convergence is measured against (the target of
//    legit_reachable_from_all / converges_outside after perturbation);
//  * the metadata needed to emit an `ftbar_sim replay`-compatible trace
//    header for counterexample schedules. Replay rebuilds options with the
//    DEFAULT sequence modulus, so bundles built with a non-default
//    `seq_modulus` are flagged replayable_by_sim = false.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "check/canon.hpp"
#include "core/cb.hpp"
#include "core/mb.hpp"
#include "core/rb.hpp"
#include "sim/action.hpp"

namespace ftbar::check {

enum class FaultClass { kNone, kUndetectable };

template <class P>
struct ProgramBundle {
  std::vector<sim::Action<P>> actions;
  std::size_t procs = 0;
  std::vector<std::vector<P>> start_roots;
  std::vector<std::vector<P>> perturbed_roots;  ///< includes start_roots
  std::function<bool(const std::vector<P>&)> safe;   ///< fault-free closure invariant
  std::function<bool(const std::vector<P>&)> legit;  ///< convergence target
  /// Enumerates the per-process record domain: record_domain(j, base, emit)
  /// emits every record slot j may hold — the corruption domain of the
  /// undetectable fault model, and the substitution domain the contract
  /// auditor perturbs slots with. CB/RB enumerate the full record domain
  /// (base is ignored); MB emits single-field sweeps around `base`, the
  /// same single-variable reduction its perturbed_roots use (programs.hpp
  /// header comment). perturbed_roots is derived from this.
  std::function<void(std::size_t, const P&, const std::function<void(const P&)>&)>
      record_domain;
  /// The program's declared cyclic transition-automorphism group (the
  /// global phase rotation for all four programs; see canon.hpp and
  /// DESIGN.md §9 for the soundness argument). safe/legit above are
  /// invariant under it, so CheckOptions::symmetry may quotient by it.
  Symmetry<P> symmetry;

  // `ftbar_sim replay` meta-line fields.
  std::string meta_program;
  std::string meta_topology = "ring";
  int arity = 2;
  int num_phases = 2;
  bool replayable_by_sim = true;

  [[nodiscard]] const std::vector<std::vector<P>>& roots(FaultClass fc) const {
    return fc == FaultClass::kNone ? start_roots : perturbed_roots;
  }
};

[[nodiscard]] ProgramBundle<core::CbProc> make_cb_bundle(int num_procs,
                                                         int num_phases = 2);
[[nodiscard]] ProgramBundle<core::RbProc> make_rb_bundle(int num_procs,
                                                         int num_phases = 2);
/// RB' — RB over the two intersecting rings of Figure 2(b).
[[nodiscard]] ProgramBundle<core::RbProc> make_rbp_bundle(int num_procs,
                                                          int num_phases = 2);
/// seq_modulus 0 selects MbOptions' default L = 2 * num_procs.
[[nodiscard]] ProgramBundle<core::MbProc> make_mb_bundle(int num_procs,
                                                         int num_phases = 2,
                                                         int seq_modulus = 0);

}  // namespace ftbar::check
