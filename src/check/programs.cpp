#include "check/programs.hpp"

#include <memory>
#include <utility>

#include "topology/topology.hpp"

namespace ftbar::check {

namespace {

using core::Cp;

/// Sequence-number domain of RB/MB: the valid values plus BOT and TOP.
std::vector<int> sn_domain(int modulus) {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(modulus) + 2);
  for (int v = 0; v < modulus; ++v) out.push_back(v);
  out.push_back(core::kSnBot);
  out.push_back(core::kSnTop);
  return out;
}

/// Control-position domain: the root excludes kRepeat (it is the decision
/// process; repeat is not in its domain), matching the fault actions.
std::vector<Cp> cp_domain(bool is_root, bool include_repeat_at_all = true) {
  std::vector<Cp> out{Cp::kReady, Cp::kExecute, Cp::kSuccess, Cp::kError};
  if (!is_root && include_repeat_at_all) out.push_back(Cp::kRepeat);
  return out;
}

/// Derives the perturbed root set from the bundle's record domain: for each
/// process slot, every domain record substituted into the start state.
template <class P>
void add_single_proc_corruptions(ProgramBundle<P>& b) {
  const auto& start = b.start_roots.front();
  for (std::size_t j = 0; j < start.size(); ++j) {
    b.record_domain(j, start[j], [&](const P& record) {
      b.perturbed_roots.push_back(start);
      b.perturbed_roots.back()[j] = record;
    });
  }
}

/// The global phase rotation ph := ph + 1 (mod n) applied to every process
/// — the cyclic automorphism group all four programs share. Every guard
/// only compares phases for equality (or counts distinct values) and every
/// statement only copies or increments them mod n, so the rotation commutes
/// with each action as-is: the action permutation is the identity. The one
/// textual exception, CB4's arbitrary-phase fallback (ph := 0 when no
/// process is ready or success), requires every process to sit at cp=error
/// — unreachable from the bundles' root sets, which corrupt a single
/// process and contain no error-producing action. DESIGN.md §9 spells the
/// argument out per action.
template <class P, class Rotate>
Symmetry<P> phase_rotation(int num_phases, Rotate&& rotate_one) {
  Symmetry<P> sym;
  sym.order = static_cast<std::size_t>(num_phases);
  sym.name = "phase-rotation";
  sym.generator = [num_phases, rotate_one](std::span<P> s) {
    for (auto& p : s) rotate_one(p, num_phases);
  };
  return sym;
}

ProgramBundle<core::RbProc> make_rb_like_bundle(
    std::shared_ptr<const topology::Topology> topo, int num_phases,
    std::string meta_topology) {
  const core::RbOptions opt{std::move(topo), num_phases, 0};
  const int k = opt.k();
  ProgramBundle<core::RbProc> b;
  b.actions = core::make_rb_actions(opt);
  b.procs = static_cast<std::size_t>(opt.topo->size());
  b.num_phases = num_phases;
  b.meta_program = "rb";
  b.meta_topology = std::move(meta_topology);
  b.start_roots = {core::rb_start_state(opt)};
  b.perturbed_roots = b.start_roots;
  // Whole-record domain: the undetectable fault's full corruption domain
  // (rb_undetectable_fault without the randomness); `base` is ignored.
  b.record_domain = [k, num_phases](std::size_t j, const core::RbProc&,
                                    const std::function<void(const core::RbProc&)>& emit) {
    for (const int sn : sn_domain(k)) {
      for (const Cp cp : cp_domain(j == 0)) {
        for (int ph = 0; ph < num_phases; ++ph) {
          emit(core::RbProc{sn, cp, ph});
        }
      }
    }
  };
  add_single_proc_corruptions(b);
  b.safe = [](const core::RbState& s) { return !core::rb_any_corrupt_sn(s); };
  b.legit = [](const core::RbState& s) { return core::rb_is_start_state(s); };
  b.symmetry = phase_rotation<core::RbProc>(
      num_phases,
      [](core::RbProc& p, int n) { p.ph = (p.ph + 1) % n; });
  return b;
}

}  // namespace

ProgramBundle<core::CbProc> make_cb_bundle(int num_procs, int num_phases) {
  const core::CbOptions opt{num_procs, num_phases};
  ProgramBundle<core::CbProc> b;
  b.actions = core::make_cb_actions(opt);
  b.procs = static_cast<std::size_t>(num_procs);
  b.num_phases = num_phases;
  b.meta_program = "cb";
  b.start_roots = {core::cb_start_state(opt)};
  b.perturbed_roots = b.start_roots;
  b.record_domain = [num_phases](std::size_t, const core::CbProc&,
                                 const std::function<void(const core::CbProc&)>& emit) {
    for (const Cp cp : cp_domain(/*is_root=*/true)) {  // CB has no kRepeat
      for (int ph = 0; ph < num_phases; ++ph) {
        emit(core::CbProc{cp, ph});
      }
    }
  };
  add_single_proc_corruptions(b);
  b.safe = [num_phases](const core::CbState& s) {
    return core::cb_legitimate(s, num_phases);
  };
  b.legit = b.safe;
  b.symmetry = phase_rotation<core::CbProc>(
      num_phases,
      [](core::CbProc& p, int n) { p.ph = (p.ph + 1) % n; });
  return b;
}

ProgramBundle<core::RbProc> make_rb_bundle(int num_procs, int num_phases) {
  auto topo = std::make_shared<const topology::Topology>(
      topology::Topology::ring(num_procs));
  const int k = num_procs + 1;
  auto b = make_rb_like_bundle(std::move(topo), num_phases, "ring");
  // On the ring the fault-free runs additionally keep exactly one token.
  b.safe = [k](const core::RbState& s) {
    return !core::rb_any_corrupt_sn(s) && core::rb_ring_token_count(s, k) == 1;
  };
  return b;
}

ProgramBundle<core::RbProc> make_rbp_bundle(int num_procs, int num_phases) {
  auto topo = std::make_shared<const topology::Topology>(
      topology::Topology::two_ring(num_procs));
  return make_rb_like_bundle(std::move(topo), num_phases, "tworing");
}

ProgramBundle<core::MbProc> make_mb_bundle(int num_procs, int num_phases,
                                           int seq_modulus) {
  const core::MbOptions opt{num_procs, num_phases, seq_modulus};
  const int l = opt.l();
  ProgramBundle<core::MbProc> b;
  b.actions = core::make_mb_actions(opt);
  b.procs = static_cast<std::size_t>(num_procs);
  b.num_phases = num_phases;
  b.meta_program = "mb";
  b.replayable_by_sim = seq_modulus == 0;  // replay rebuilds with default L
  b.start_roots = {core::mb_start_state(opt)};
  b.perturbed_roots = b.start_roots;
  // Single-VARIABLE domain (see programs.hpp for why not whole-record):
  // each of the seven fields of `base` swept over its domain in turn.
  b.record_domain = [l, num_phases](std::size_t j, const core::MbProc& base,
                                    const std::function<void(const core::MbProc&)>& emit) {
    for (const int sn : sn_domain(l)) {
      auto p = base;
      p.sn = sn;
      emit(p);
      p = base;
      p.c_sn = sn;
      emit(p);
      p = base;
      p.c_next = sn;
      emit(p);
    }
    for (int ph = 0; ph < num_phases; ++ph) {
      auto p = base;
      p.ph = ph;
      emit(p);
      p = base;
      p.c_ph = ph;
      emit(p);
    }
    for (const Cp cp : cp_domain(j == 0)) {
      auto p = base;
      p.cp = cp;
      emit(p);
    }
    for (const Cp cp : cp_domain(/*is_root=*/false)) {  // copy cells follow
      auto p = base;
      p.c_cp = cp;
      emit(p);
    }
  };
  add_single_proc_corruptions(b);
  b.safe = [](const core::MbState& s) {
    for (const auto& p : s) {
      if (!core::mb_sn_valid(p.sn) || !core::mb_sn_valid(p.c_sn) ||
          !core::mb_sn_valid(p.c_next)) {
        return false;
      }
    }
    return true;
  };
  b.legit = [](const core::MbState& s) { return core::mb_is_start_state(s); };
  // MB's copy cell holds a neighbour's ph, so it rotates with the owner.
  b.symmetry = phase_rotation<core::MbProc>(
      num_phases, [](core::MbProc& p, int n) {
        p.ph = (p.ph + 1) % n;
        p.c_ph = (p.c_ph + 1) % n;
      });
  return b;
}

}  // namespace ftbar::check
