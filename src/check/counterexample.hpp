// Counterexample paths and their bridge into the record/replay machinery.
//
// A checker-found invariant violation is only as useful as its reproducer.
// This header turns a path of (state, fired-actions) pairs into a
// trace::ScheduleRecording — the exact artifact `ftbar_sim replay` consumes
// — so a model-checking counterexample re-executes in the live engine with
// tracing on, digest-pinned at every step. It also shrinks counterexamples
// ddmin-style (the shrink_fault_plan approach applied to schedule steps):
// BFS counterexamples are already shortest, but swarm-mode violations come
// from random walks hundreds of steps long, most of them irrelevant.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/semantics.hpp"
#include "sim/action.hpp"
#include "sim/step_engine.hpp"
#include "trace/replay.hpp"

namespace ftbar::check {

/// A violating execution: path[0] is a root, path.back() violates the
/// invariant, and fired[i] (action indices, engine order) transitions
/// path[i] into path[i+1]. fired.size() == path.size() - 1; a path of one
/// state means a root itself violated.
template <class P>
struct Counterexample {
  std::vector<std::vector<P>> path;
  std::vector<std::vector<std::uint32_t>> fired;
  sim::Semantics semantics = sim::Semantics::kInterleaving;
  std::string violated_by;  ///< name of the last action fired ("<initial>" for roots)

  [[nodiscard]] std::size_t length() const noexcept { return fired.size(); }
};

/// Executes one schedule step (the recorded semantics) in place. Returns
/// false — leaving `state` partially advanced — if a fired action's guard
/// does not hold, which replay would report as divergence.
template <class P>
[[nodiscard]] bool apply_fired(std::vector<P>& state,
                               const std::vector<std::uint32_t>& fired,
                               const std::vector<sim::Action<P>>& actions,
                               sim::Semantics semantics) {
  if (semantics == sim::Semantics::kMaxParallel) {
    std::vector<P> next = state;
    for (const std::uint32_t ai : fired) {
      const auto& act = actions[ai];
      if (!act.enabled(state)) return false;
      const auto p = static_cast<std::size_t>(act.process);
      P saved = state[p];
      act.apply(state);
      next[p] = state[p];
      state[p] = saved;
    }
    state.swap(next);
  } else {
    for (const std::uint32_t ai : fired) {
      const auto& act = actions[ai];
      if (!act.enabled(state)) return false;
      act.apply(state);
    }
  }
  return true;
}

/// The counterexample as a replayable schedule: no faults, the recorded
/// fired lists, and the post-step digest of every path state — byte-for-byte
/// what ScheduleRecorder would have produced had the live engine happened to
/// make these choices. Round-trips through schedule_lines / the jsonl trace
/// embedding and replays with trace::replay_schedule or `ftbar_sim replay`.
template <class P>
[[nodiscard]] trace::ScheduleRecording<P> counterexample_schedule(
    const Counterexample<P>& cx) {
  trace::ScheduleRecording<P> rec;
  rec.semantics = cx.semantics;
  rec.initial = cx.path.front();
  for (std::size_t i = 0; i < cx.fired.size(); ++i) {
    rec.steps.push_back({{}, cx.fired[i], trace::state_digest(cx.path[i + 1])});
  }
  return rec;
}

/// ddmin-style minimization of a counterexample's step list (the
/// shrink_fault_plan algorithm over schedule steps): removes chunks, then
/// single steps, while the remaining steps still execute (every guard holds)
/// AND the final state still violates the invariant. Returns a 1-minimal
/// counterexample with its path states recomputed. The input must violate.
template <class P>
[[nodiscard]] Counterexample<P> shrink_counterexample(
    const Counterexample<P>& cx, const std::vector<sim::Action<P>>& actions,
    const std::function<bool(const std::vector<P>&)>& invariant) {
  auto still_fails = [&](const std::vector<std::vector<std::uint32_t>>& steps) {
    std::vector<P> state = cx.path.front();
    for (const auto& fired : steps) {
      if (!apply_fired(state, fired, actions, cx.semantics)) return false;
    }
    return !invariant(state);
  };
  std::vector<std::vector<std::uint32_t>> steps = cx.fired;
  if (steps.empty() || !still_fails(steps)) return cx;

  auto without_range = [&](std::size_t begin, std::size_t end) {
    std::vector<std::vector<std::uint32_t>> candidate;
    candidate.reserve(steps.size() - (end - begin));
    for (std::size_t i = 0; i < steps.size(); ++i) {
      if (i < begin || i >= end) candidate.push_back(steps[i]);
    }
    return candidate;
  };

  std::size_t chunk = std::max<std::size_t>(1, steps.size() / 2);
  while (!steps.empty()) {
    bool removed_any = false;
    std::size_t begin = 0;
    while (begin < steps.size()) {
      const std::size_t end = std::min(begin + chunk, steps.size());
      auto candidate = without_range(begin, end);
      if (still_fails(candidate)) {
        steps = std::move(candidate);
        removed_any = true;  // same begin now addresses the next chunk
      } else {
        begin = end;
      }
    }
    if (chunk > 1) {
      chunk = (chunk + 1) / 2;
    } else if (!removed_any) {
      break;  // single-step fixpoint: 1-minimal
    }
  }

  Counterexample<P> out;
  out.semantics = cx.semantics;
  out.violated_by = cx.violated_by;
  out.fired = std::move(steps);
  out.path.push_back(cx.path.front());
  std::vector<P> state = cx.path.front();
  for (const auto& fired : out.fired) {
    const bool ok = apply_fired(state, fired, actions, cx.semantics);
    (void)ok;  // still_fails vetted every surviving step
    out.path.push_back(state);
  }
  if (!out.fired.empty()) {
    out.violated_by = actions[out.fired.back().back()].name;
  }
  return out;
}

}  // namespace ftbar::check
