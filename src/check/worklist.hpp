// Chase-Lev work-stealing deque plus the state-chunk types it trades in —
// the scheduler substrate replacing the checker's level-synchronized BFS.
//
// One deque per worker. Since PR 7 the unit of scheduling is a CHUNK of
// 1–256 packed (state id, depth) entries, not a single state: per-state
// deque traffic (one release fence + one seq_cst CAS per handoff) was
// larger than the per-state expansion work itself on the paper's
// programs, which is why 8 threads explored RB *slower* than 1. A worker
// accumulates discoveries into a private open chunk and publishes it to
// its deque only when full (or when it runs dry), so the synchronization
// cost is amortized over the chunk.
//
// The owner push()es newly published chunks at the bottom; any thread
// (including the owner) may steal() from the top. The checker's owner
// TAKES from the top of its own deque too — making each deque FIFO in
// practice — and drains a chunk front to back, so a single-threaded
// work-stealing run expands states in exactly global BFS order at ANY
// chunk size (chunks are published in discovery order and drained in
// order), and multi-threaded runs stay near breadth-first (which keeps
// the incremental successor generator's diff-against-previous-state small
// and the depth-correction re-expansions rare). pop() (LIFO bottom end)
// is provided for completeness and tested, but the checker does not use
// it.
//
// Memory model follows Lê/Pop/Cohen/Nardelli, "Correct and Efficient
// Work-Stealing for Weak Memory Models" (PPoPP'13): bottom is owner-local
// (relaxed loads suffice for the owner), top is contended under a seq_cst
// CAS, and the array pointer is release-published on growth. Retired
// arrays are kept alive until deque destruction — a stale thief may still
// be reading a slot of an old array after the owner grew; reclaiming it
// any earlier would need hazard pointers for no measurable gain (growth is
// rare and geometric).
//
// Elements are uint64 payloads (the checker passes StateChunk pointers;
// any payload value is valid — empty-vs-success is reported via the bool
// return).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace ftbar::check {

/// A batch of packed (state id << 32 | depth) entries — the work-stealing
/// scheduler's unit of handoff. `fill` is owner-private while the chunk
/// accumulates; `count` is the published size, release-stored by the
/// publisher and acquire-loaded by whichever worker drains the chunk, so
/// the entries (written before the release) are visible to the drainer
/// without relying on the deque's fence pairing for the pointed-to bytes.
struct StateChunk {
  static constexpr std::uint32_t kCapacity = 256;

  std::uint32_t fill = 0;                ///< owner-only accumulation cursor
  std::atomic<std::uint32_t> count{0};   ///< published entry count
  std::uint64_t items[kCapacity];

  void publish() noexcept { count.store(fill, std::memory_order_release); }
  [[nodiscard]] std::uint32_t drain_count() const noexcept {
    return count.load(std::memory_order_acquire);
  }
  void reset() noexcept {
    fill = 0;
    count.store(0, std::memory_order_relaxed);
  }
};

/// Per-worker chunk recycler. Chunks migrate freely between workers (a
/// thief drains chunks the victim allocated), so ownership of the MEMORY
/// stays with the allocating pool (`owned_`) while the free list belongs
/// to whichever pool the drained chunk was returned to — no cross-thread
/// synchronization on either, because get()/put() are only ever called by
/// the pool's worker. All chunks live until the pools are destroyed (after
/// the workers joined), so a stale deque slot never points at freed memory.
class ChunkPool {
 public:
  [[nodiscard]] StateChunk* get() {
    if (!free_.empty()) {
      StateChunk* c = free_.back();
      free_.pop_back();
      return c;
    }
    owned_.push_back(std::make_unique<StateChunk>());
    return owned_.back().get();
  }
  void put(StateChunk* c) {
    c->reset();
    free_.push_back(c);
  }

 private:
  std::vector<std::unique_ptr<StateChunk>> owned_;
  std::vector<StateChunk*> free_;
};

class WorkDeque {
 public:
  explicit WorkDeque(std::size_t initial_capacity = 1024) {
    std::size_t cap = 64;
    while (cap < initial_capacity) cap <<= 1;
    active_ = new Array(cap);
    array_.store(active_, std::memory_order_relaxed);
    retired_.emplace_back(active_);
  }

  WorkDeque(const WorkDeque&) = delete;
  WorkDeque& operator=(const WorkDeque&) = delete;

  /// Owner only: append at the bottom.
  void push(std::uint64_t v) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Array* a = active_;
    if (b - t > static_cast<std::int64_t>(a->cap) - 1) {
      a = grow(a, t, b);
    }
    a->slot(b).store(v, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner only: remove from the bottom (LIFO). Unused by the checker.
  bool pop(std::uint64_t& out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Array* a = active_;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {  // already empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    out = a->slot(b).load(std::memory_order_relaxed);
    if (t == b) {
      // Last element: race the thieves for it.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      return won;
    }
    return true;
  }

  /// Any thread: remove from the top (FIFO).
  bool steal(std::uint64_t& out) {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return false;
    Array* a = array_.load(std::memory_order_acquire);
    const std::uint64_t v = a->slot(t).load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return false;  // lost the race; caller retries elsewhere
    }
    out = v;
    return true;
  }

  /// Approximate occupancy (racy; stats only).
  [[nodiscard]] std::size_t size_estimate() const noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  struct Array {
    explicit Array(std::size_t c)
        : cap(c), mask(c - 1), data(std::make_unique<std::atomic<std::uint64_t>[]>(c)) {}
    [[nodiscard]] std::atomic<std::uint64_t>& slot(std::int64_t i) const noexcept {
      return data[static_cast<std::size_t>(i) & mask];
    }
    std::size_t cap;
    std::size_t mask;
    std::unique_ptr<std::atomic<std::uint64_t>[]> data;
  };

  /// Owner only. Doubles the array, copying the live range [t, b).
  Array* grow(Array* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Array(old->cap * 2);
    for (std::int64_t i = t; i < b; ++i) {
      bigger->slot(i).store(old->slot(i).load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    active_ = bigger;
    array_.store(bigger, std::memory_order_release);
    retired_.emplace_back(bigger);  // retired_ owns every array ever active
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Array*> array_{nullptr};
  Array* active_ = nullptr;  ///< owner's cached copy of array_
  std::vector<std::unique_ptr<Array>> retired_;
};

}  // namespace ftbar::check
