// Swarm mode: budgeted random-walk checking for instances too large to
// exhaust.
//
// Exhaustive BFS is the gold standard, but the reachable set of RB/MB
// explodes well before the process counts the scaling experiments care
// about. Swarm checking (in the SPIN "swarm verification" tradition) trades
// completeness for budget: many independent random walks, each from a
// (typically perturbed) root produced by a caller-supplied generator, each
// driven by the REAL StepEngine under its own util::Rng stream — so a walk
// is exactly a simulation run, and a violating walk is automatically a
// replayable ScheduleRecording because every walk runs under a
// ScheduleRecorder.
//
// Determinism: walk w draws all randomness from stream_rng(seed, w)
// (root generation and engine scheduling), results are reduced in walk
// order, and the reported violation is the lowest-indexed violating walk —
// so the outcome is independent of thread count, per util::Sweep's
// contract. Coverage is reported as the number of distinct state digests
// touched across all walks: a cheap, comparable proxy for how much of the
// space a budget reached (digest collisions can only undercount).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/action.hpp"
#include "sim/step_engine.hpp"
#include "trace/replay.hpp"
#include "util/sweep.hpp"

namespace ftbar::check {

struct SwarmOptions {
  sim::Semantics semantics = sim::Semantics::kInterleaving;
  std::size_t walks = 256;
  std::size_t depth = 256;  ///< max engine steps per walk
  std::uint64_t seed = 1;
  int threads = 1;  ///< util::Sweep pool size; <= 0 = hardware_concurrency
};

template <class P>
struct SwarmResult {
  std::size_t walks_run = 0;
  std::size_t total_steps = 0;
  std::size_t distinct_states = 0;  ///< coverage: merged digest-set size
  std::size_t violating_walks = 0;
  /// Recording of the lowest-indexed violating walk, root through the first
  /// violating state — feed to shrink via counterexample machinery or
  /// directly to `ftbar_sim replay`.
  std::optional<trace::ScheduleRecording<P>> violation;
  std::string violated_by;
  std::size_t violating_walk = 0;  ///< valid when violation is set

  [[nodiscard]] bool ok() const noexcept { return violating_walks == 0; }
};

/// Runs `opts.walks` random walks of at most `opts.depth` steps each.
/// `make_root(rng)` produces each walk's start state (e.g. a start state
/// with a few fault perturbations applied); `invariant` is checked on the
/// root and after every step.
template <class P>
[[nodiscard]] SwarmResult<P> swarm_check(
    const std::vector<sim::Action<P>>& actions,
    const std::function<std::vector<P>(util::Rng&)>& make_root,
    const std::function<bool(const std::vector<P>&)>& invariant,
    const SwarmOptions& opts) {
  struct WalkOutcome {
    std::vector<std::uint64_t> digests;
    std::size_t steps = 0;
    bool violated = false;
    std::optional<trace::ScheduleRecording<P>> recording;
    std::string violated_by;
  };

  util::Sweep sweep(opts.threads);
  auto outcomes = sweep.map<WalkOutcome>(opts.walks, [&](std::size_t w) {
    WalkOutcome out;
    util::Rng rng = util::stream_rng(opts.seed, w);
    std::vector<P> root = make_root(rng);
    sim::StepEngine<P> engine(std::move(root), actions, rng, opts.semantics);
    trace::ScheduleRecorder<P> recorder(engine);
    out.digests.push_back(trace::state_digest(engine.state()));
    if (!invariant(engine.state())) {
      out.violated = true;
      out.violated_by = "<initial>";
      out.recording = recorder.take();
      return out;
    }
    while (out.steps < opts.depth) {
      if (recorder.step() == 0) break;  // quiescent
      ++out.steps;
      out.digests.push_back(trace::state_digest(engine.state()));
      if (!invariant(engine.state())) {
        out.violated = true;
        const auto& rec = recorder.recording();
        out.violated_by = actions[rec.steps.back().fired.back()].name;
        out.recording = recorder.take();
        break;
      }
    }
    return out;
  });

  SwarmResult<P> result;
  result.walks_run = outcomes.size();
  std::unordered_set<std::uint64_t> coverage;
  for (std::size_t w = 0; w < outcomes.size(); ++w) {
    auto& out = outcomes[w];
    result.total_steps += out.steps;
    coverage.insert(out.digests.begin(), out.digests.end());
    if (out.violated) {
      ++result.violating_walks;
      if (!result.violation) {  // walk order == lowest index: deterministic
        result.violation = std::move(out.recording);
        result.violated_by = out.violated_by;
        result.violating_walk = w;
      }
    }
  }
  result.distinct_states = coverage.size();
  return result;
}

}  // namespace ftbar::check
