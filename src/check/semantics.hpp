// Semantics plugins for the explicit-state checker: successor enumeration
// under both execution models the paper uses.
//
// The live StepEngine picks ONE step per semantics (randomized weak
// fairness); the checker instead needs EVERY possible step:
//
//  - kInterleaving: one successor per enabled action (the classic
//    explicit-state transition relation);
//  - kMaxParallel:  one successor per element of the cartesian product of
//    the per-process enabled-action choices — every process with at least
//    one enabled action fires exactly one of them (paper, Section 6). The
//    per-step execution mirrors StepEngine::step_max_parallel /
//    replay_schedule's maxpar block: each chosen statement reads the
//    pre-state and writes only its owner's slot, which is harvested into
//    the successor buffer and restored, so a statement violating
//    write-ownership is caught by the same contract the engine enforces.
//
// Two per-state costs are made incremental (both optional, so the PR 3
// full-recompute behaviour remains available as a benchmark baseline):
//
//  * ENABLED-SET MAINTENANCE. A SuccessorGen remembers the last state it
//    expanded and, via the shared sim::ReadIndex (the engine's declared
//    read-set -> dependents inversion), re-evaluates only the guards whose
//    read-set intersects the slots that differ — under BFS/work-stealing
//    order consecutive expanded states are usually siblings differing in
//    one or two slots, so this replaces |actions| guard closures per state
//    with a handful. Actions without a usable read-set are re-evaluated
//    every time (full-scan fallback), exactly like the engine.
//
//  * SUCCESSOR DIGESTS. FNV-1a is a byte-serial fold, so the generator
//    checkpoints the hash at every slot boundary of the CURRENT state and
//    digests a successor by resuming from the first modified slot —
//    O(changed suffix) instead of O(state). The checkpoints themselves are
//    incremental too: the enabled-set diff already finds the first slot
//    where the expanded state differs from the previous one, and the
//    shared-prefix checkpoints are reused, so back-to-back sibling
//    expansions (the common case when the checker drains a chunk) re-fold
//    only the changed tail. The callback receives the digest
//    (bit-identical to trace::state_digest) along with the successor, so
//    the store never re-hashes what enumeration already hashed.
//
// Fired-action lists are reported in ascending process order (interleaving:
// a single index), exactly the order StepEngine emits kActionFired events —
// so a path of (state, fired) pairs IS a valid ScheduleRecording step
// sequence and replays through trace::replay_schedule unchanged.
//
// A SuccessorGen is per-worker scratch: no successor state or choice vector
// is heap-allocated in steady state, and for_each_successor hands out
// references into reused buffers (callees must copy what they keep).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "sim/action.hpp"
#include "sim/read_index.hpp"
#include "sim/step_engine.hpp"
#include "trace/replay.hpp"

namespace ftbar::check {

template <class P>
class SuccessorGen {
 public:
  using State = std::vector<P>;

  /// `index` may be shared, read-only, across workers; pass nullptr to have
  /// the generator build (and own) one. `incremental` = false restores the
  /// evaluate-every-guard-per-state baseline.
  SuccessorGen(const std::vector<sim::Action<P>>& actions, std::size_t procs,
               const sim::ReadIndex* index = nullptr, bool incremental = true)
      : actions_(actions),
        procs_(procs),
        incremental_(incremental),
        choices_(procs),
        enabled_flag_(actions.size(), 0),
        eval_epoch_(actions.size(), 0),
        checkpoints_(procs + 1, 0) {
    // checkpoint_digests resumes from checkpoints_[stale_from_]; slot 0 is
    // the hash of the empty prefix and is never recomputed once seeded.
    checkpoints_[0] = trace::kFnv1aOffsetBasis;
    if (incremental_) {
      if (index != nullptr) {
        idx_ = index;
      } else {
        owned_idx_ = sim::build_read_index(actions, procs);
        idx_ = &owned_idx_;
      }
    }
  }

  /// Guard closures invoked so far (a full-scan generator performs
  /// |actions| per expanded state; the incremental one far fewer).
  [[nodiscard]] std::size_t guard_evals() const noexcept { return guard_evals_; }

  /// Invokes `fn(next, fired, digest)` once per successor of `current`
  /// under `semantics`. `next` is a State reference and `fired` a span of
  /// action indices, both valid only for the duration of the call; `digest`
  /// is trace::state_digest(next), computed incrementally. A state with no
  /// enabled action has no successors (quiescence is not a self-loop,
  /// matching the seed Explorer and the engine's step() == 0).
  template <class Fn>
  void for_each_successor(const State& current, sim::Semantics semantics, Fn&& fn) {
    refresh_enabled(current);
    checkpoint_digests(current);
    if (semantics == sim::Semantics::kInterleaving) {
      interleaving(current, fn);
    } else {
      max_parallel(current, fn);
    }
  }

 private:
  /// Brings enabled_flag_ up to date for `current`. Incremental mode diffs
  /// against the previously expanded state slot-by-slot and re-evaluates
  /// only dependent guards (plus the full-scan fallback list); otherwise —
  /// or on the first call / a size change — every guard is evaluated.
  /// Records in stale_from_ the first slot where `current` differs from the
  /// previous expanded state, which doubles as the first checkpoint that
  /// needs recomputing (prefix hashes over equal prefixes are equal).
  void refresh_enabled(const State& current) {
    if (!incremental_ || !last_valid_ || last_.size() != current.size()) {
      for (std::size_t i = 0; i < actions_.size(); ++i) {
        enabled_flag_[i] = actions_[i].enabled(current) ? 1 : 0;
      }
      guard_evals_ += actions_.size();
      stale_from_ = 0;
      if (incremental_) {
        last_ = current;
        last_valid_ = true;
      }
      return;
    }
    ++epoch_;
    stale_from_ = procs_;
    for (const std::size_t i : idx_->fullscan_actions) {
      eval_epoch_[i] = epoch_;
      enabled_flag_[i] = actions_[i].enabled(current) ? 1 : 0;
      ++guard_evals_;
    }
    for (std::size_t p = 0; p < procs_; ++p) {
      if (std::memcmp(&last_[p], &current[p], sizeof(P)) == 0) continue;
      if (stale_from_ == procs_) stale_from_ = p;
      last_[p] = current[p];
      for (const std::size_t i : idx_->deps_by_proc[p]) {
        if (eval_epoch_[i] == epoch_) continue;  // already re-evaluated
        eval_epoch_[i] = epoch_;
        enabled_flag_[i] = actions_[i].enabled(current) ? 1 : 0;
        ++guard_evals_;
      }
    }
  }

  /// FNV-1a states at every slot boundary of `current`: checkpoints_[p] is
  /// the hash of slots [0, p). A successor equal to `current` below slot p
  /// digests as fnv1a_resume(checkpoints_[p], successor bytes from p on).
  /// Resumes from stale_from_: under near-BFS expansion order consecutive
  /// expanded states are usually siblings differing in a suffix, so the
  /// shared-prefix checkpoints from the previous expansion are still valid
  /// and only the changed tail is re-folded.
  void checkpoint_digests(const State& current) {
    std::uint64_t h = checkpoints_[stale_from_];
    for (std::size_t p = stale_from_; p < procs_; ++p) {
      checkpoints_[p] = h;
      h = trace::fnv1a_resume(h, &current[p], sizeof(P));
    }
    checkpoints_[procs_] = h;
  }

  [[nodiscard]] std::uint64_t digest_from(std::size_t first_changed,
                                          const State& next) const noexcept {
    return trace::fnv1a_resume(checkpoints_[first_changed], &next[first_changed],
                               (procs_ - first_changed) * sizeof(P));
  }

  template <class Fn>
  void interleaving(const State& current, Fn&& fn) {
    next_ = current;
    for (std::size_t i = 0; i < actions_.size(); ++i) {
      if (!enabled_flag_[i]) continue;
      const auto p = static_cast<std::size_t>(actions_[i].process);
      // next_ equals current here, so the statement reads the pre-state;
      // write-ownership means only slot p changed — restore just it.
      P saved = next_[p];
      actions_[i].apply(next_);
      fired_one_[0] = static_cast<std::uint32_t>(i);
      fn(next_, std::span<const std::uint32_t>{fired_one_, 1}, digest_from(p, next_));
      next_[p] = saved;
    }
  }

  template <class Fn>
  void max_parallel(const State& current, Fn&& fn) {
    // Per-process enabled-action choices, ascending action index within a
    // process (the order the engine's counting-sorted index walks them).
    for (auto& c : choices_) c.clear();
    for (std::size_t i = 0; i < actions_.size(); ++i) {
      if (enabled_flag_[i]) {
        choices_[static_cast<std::size_t>(actions_[i].process)].push_back(
            static_cast<std::uint32_t>(i));
      }
    }
    firing_procs_.clear();
    for (std::size_t p = 0; p < choices_.size(); ++p) {
      if (!choices_[p].empty()) firing_procs_.push_back(p);
    }
    if (firing_procs_.empty()) return;

    // Odometer over the cartesian product. Every combination fires the same
    // process set, so successive combinations overwrite exactly the slots
    // the previous one wrote — next_ needs no per-combination reset, and
    // every successor differs from `current` only at slots >=
    // firing_procs_.front() (ascending), which is where the digest resumes.
    odometer_.assign(firing_procs_.size(), 0);
    state_ = current;
    next_ = current;
    fired_.resize(firing_procs_.size());
    for (;;) {
      for (std::size_t k = 0; k < firing_procs_.size(); ++k) {
        const std::size_t p = firing_procs_[k];
        const std::uint32_t ai = choices_[p][odometer_[k]];
        // Save/apply/harvest/restore — the engine's maxpar step.
        P saved = state_[p];
        actions_[ai].apply(state_);
        next_[p] = state_[p];
        state_[p] = saved;
        fired_[k] = ai;
      }
      fn(next_, std::span<const std::uint32_t>{fired_},
         digest_from(firing_procs_.front(), next_));
      std::size_t k = 0;
      for (; k < firing_procs_.size(); ++k) {
        if (++odometer_[k] < choices_[firing_procs_[k]].size()) break;
        odometer_[k] = 0;
      }
      if (k == firing_procs_.size()) return;  // odometer wrapped: done
    }
  }

  const std::vector<sim::Action<P>>& actions_;
  std::size_t procs_;
  bool incremental_;
  const sim::ReadIndex* idx_ = nullptr;
  sim::ReadIndex owned_idx_;

  // Incremental enabled-set state.
  std::vector<std::vector<std::uint32_t>> choices_;  ///< per-proc enabled actions
  std::vector<char> enabled_flag_;
  std::vector<std::size_t> eval_epoch_;
  std::size_t epoch_ = 0;
  std::size_t guard_evals_ = 0;
  State last_;  ///< previously expanded state (diff base)
  bool last_valid_ = false;

  // Digest checkpoints of the current state (slot-boundary FNV states).
  // checkpoints_[p] for p <= stale_from_ are still valid from the previous
  // expansion (equal state prefixes hash equally); the rest are stale.
  std::vector<std::uint64_t> checkpoints_;
  std::size_t stale_from_ = 0;  ///< first slot differing from the previous state

  std::vector<std::size_t> firing_procs_;
  std::vector<std::size_t> odometer_;
  std::vector<std::uint32_t> fired_;
  std::uint32_t fired_one_[1] = {0};
  State state_;  ///< maxpar pre-state work buffer
  State next_;   ///< successor buffer handed to the callback
};

}  // namespace ftbar::check
