// Semantics plugins for the explicit-state checker: successor enumeration
// under both execution models the paper uses.
//
// The live StepEngine picks ONE step per semantics (randomized weak
// fairness); the checker instead needs EVERY possible step:
//
//  - kInterleaving: one successor per enabled action (the classic
//    explicit-state transition relation);
//  - kMaxParallel:  one successor per element of the cartesian product of
//    the per-process enabled-action choices — every process with at least
//    one enabled action fires exactly one of them (paper, Section 6). The
//    per-step execution mirrors StepEngine::step_max_parallel /
//    replay_schedule's maxpar block: each chosen statement reads the
//    pre-state and writes only its owner's slot, which is harvested into
//    the successor buffer and restored, so a statement violating
//    write-ownership is caught by the same contract the engine enforces.
//
// Fired-action lists are reported in ascending process order (interleaving:
// a single index), exactly the order StepEngine emits kActionFired events —
// so a path of (state, fired) pairs IS a valid ScheduleRecording step
// sequence and replays through trace::replay_schedule unchanged.
//
// A SuccessorGen is per-worker scratch: no successor state or choice vector
// is heap-allocated in steady state, and for_each_successor hands out
// references into reused buffers (callees must copy what they keep).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/action.hpp"
#include "sim/step_engine.hpp"

namespace ftbar::check {

template <class P>
class SuccessorGen {
 public:
  using State = std::vector<P>;

  SuccessorGen(const std::vector<sim::Action<P>>& actions, std::size_t procs)
      : actions_(actions), choices_(procs) {}

  /// Invokes `fn(next, fired)` once per successor of `current` under
  /// `semantics`. `next` is a State reference and `fired` a span of action
  /// indices, both valid only for the duration of the call. A state with no
  /// enabled action has no successors (quiescence is not a self-loop,
  /// matching the seed Explorer and the engine's step() == 0).
  template <class Fn>
  void for_each_successor(const State& current, sim::Semantics semantics, Fn&& fn) {
    if (semantics == sim::Semantics::kInterleaving) {
      interleaving(current, fn);
    } else {
      max_parallel(current, fn);
    }
  }

 private:
  template <class Fn>
  void interleaving(const State& current, Fn&& fn) {
    next_ = current;
    for (std::size_t i = 0; i < actions_.size(); ++i) {
      if (!actions_[i].enabled(current)) continue;
      const auto p = static_cast<std::size_t>(actions_[i].process);
      // next_ equals current here, so the statement reads the pre-state;
      // write-ownership means only slot p changed — restore just it.
      P saved = next_[p];
      actions_[i].apply(next_);
      fired_one_[0] = static_cast<std::uint32_t>(i);
      fn(next_, std::span<const std::uint32_t>{fired_one_, 1});
      next_[p] = saved;
    }
  }

  template <class Fn>
  void max_parallel(const State& current, Fn&& fn) {
    // Per-process enabled-action choices, ascending action index within a
    // process (the order the engine's counting-sorted index walks them).
    for (auto& c : choices_) c.clear();
    for (std::size_t i = 0; i < actions_.size(); ++i) {
      if (actions_[i].enabled(current)) {
        choices_[static_cast<std::size_t>(actions_[i].process)].push_back(
            static_cast<std::uint32_t>(i));
      }
    }
    firing_procs_.clear();
    for (std::size_t p = 0; p < choices_.size(); ++p) {
      if (!choices_[p].empty()) firing_procs_.push_back(p);
    }
    if (firing_procs_.empty()) return;

    // Odometer over the cartesian product. Every combination fires the same
    // process set, so successive combinations overwrite exactly the slots
    // the previous one wrote — next_ needs no per-combination reset.
    odometer_.assign(firing_procs_.size(), 0);
    state_ = current;
    next_ = current;
    fired_.resize(firing_procs_.size());
    for (;;) {
      for (std::size_t k = 0; k < firing_procs_.size(); ++k) {
        const std::size_t p = firing_procs_[k];
        const std::uint32_t ai = choices_[p][odometer_[k]];
        // Save/apply/harvest/restore — the engine's maxpar step.
        P saved = state_[p];
        actions_[ai].apply(state_);
        next_[p] = state_[p];
        state_[p] = saved;
        fired_[k] = ai;
      }
      fn(next_, std::span<const std::uint32_t>{fired_});
      std::size_t k = 0;
      for (; k < firing_procs_.size(); ++k) {
        if (++odometer_[k] < choices_[firing_procs_[k]].size()) break;
        odometer_[k] = 0;
      }
      if (k == firing_procs_.size()) return;  // odometer wrapped: done
    }
  }

  const std::vector<sim::Action<P>>& actions_;
  std::vector<std::vector<std::uint32_t>> choices_;  ///< per-proc enabled actions
  std::vector<std::size_t> firing_procs_;
  std::vector<std::size_t> odometer_;
  std::vector<std::uint32_t> fired_;
  std::uint32_t fired_one_[1] = {0};
  State state_;  ///< maxpar pre-state work buffer
  State next_;   ///< successor buffer handed to the callback
};

}  // namespace ftbar::check
