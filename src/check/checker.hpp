// Parallel explicit-state bounded model checker for guarded-command
// programs — the promotion of sim::Explorer into a subsystem.
//
// Differences from the seed Explorer it supersedes as the verification
// workhorse (the seed stays on as a differential oracle in the tests):
//
//  * states are interned compactly in a sharded concurrent StateStore
//    keyed by FNV state digests — no per-state std::vector<P> copies, no
//    per-state heap allocation;
//  * exploration is a level-synchronized parallel BFS: worker threads
//    claim frontier batches from an atomic cursor, intern successors
//    concurrently, and join at a level barrier (which is also the
//    synchronization point making store metadata safely readable);
//  * both execution semantics are checked, via check/semantics.hpp —
//    interleaving AND maximal-parallel — closing the gap between what the
//    simulator runs and what the checker verifies;
//  * every interned state carries parent/fired back-pointers, so an
//    invariant violation yields a full Counterexample path from a root
//    (minimal-length, by BFS level order) ready for schedule replay.
//
// Determinism: on a clean exhaustive run the visited-state set — and hence
// states_visited and sorted_digests() — is independent of thread count and
// scheduling (the reachable set is unique). When a violation is found with
// threads > 1, WHICH violation is reported may vary run to run; use
// threads = 1 where a deterministic counterexample matters (the CLI and
// tests do). The transition graph handed to the convergence queries is
// complete only for clean exhaustive runs; the queries abort on truncated
// results rather than answer from a partial graph.
#pragma once

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "check/counterexample.hpp"
#include "check/semantics.hpp"
#include "check/state_store.hpp"
#include "sim/action.hpp"
#include "sim/step_engine.hpp"

namespace ftbar::check {

struct CheckOptions {
  sim::Semantics semantics = sim::Semantics::kInterleaving;
  std::size_t max_states = 2'000'000;
  std::size_t threads = 1;
  /// Record the transition graph for legit_reachable_from_all() /
  /// converges_outside(). Off by default: violation hunting and state-count
  /// oracles don't need edges, and the edge list dwarfs the state store.
  bool record_edges = false;
};

template <class P>
struct CheckResult {
  std::size_t states_visited = 0;
  std::size_t levels = 0;  ///< BFS depth reached (diameter on clean runs)
  bool truncated = false;
  std::optional<Counterexample<P>> violation;

  [[nodiscard]] bool ok() const noexcept { return !violation && !truncated; }
};

template <class P>
class Checker {
 public:
  using Id = typename StateStore<P>::Id;
  using State = std::vector<P>;
  using Invariant = std::function<bool(const State&)>;

  Checker(std::vector<sim::Action<P>> actions, std::size_t procs,
          CheckOptions options = {})
      : actions_(std::move(actions)), procs_(procs), options_(options) {}

  /// Explores everything reachable from `roots` under the configured
  /// semantics, stopping at the first state violating `invariant` (pass an
  /// always-true predicate to just collect the reachable set).
  CheckResult<P> run(const std::vector<State>& roots, const Invariant& invariant) {
    store_.emplace(procs_, options_.max_states, options_.threads > 1);
    edges_.clear();
    stop_.store(false, std::memory_order_relaxed);
    truncated_.store(false, std::memory_order_relaxed);
    violation_id_ = StateStore<P>::kNoId;

    CheckResult<P> result;
    std::vector<Id> frontier;
    for (const auto& root : roots) {
      if (root.size() != procs_) std::abort();  // bundle/options mismatch
      const auto digest = store_->digest(root.data());
      const auto res = store_->intern(root.data(), digest, StateStore<P>::kNoId, {});
      if (!res.inserted) continue;
      if (!invariant(root)) {
        Counterexample<P> cx;
        cx.path.push_back(root);
        cx.semantics = options_.semantics;
        cx.violated_by = "<initial>";
        result.violation = std::move(cx);
        result.states_visited = store_->size();
        return result;
      }
      frontier.push_back(res.id);
    }

    const std::size_t nthreads = options_.threads == 0 ? 1 : options_.threads;
    std::vector<Worker> workers(nthreads);
    if (nthreads == 1) {
      while (!frontier.empty() && !stop_.load(std::memory_order_relaxed)) {
        ++result.levels;
        cursor_.store(0, std::memory_order_relaxed);
        workers[0].next.clear();
        workers[0].edges.clear();
        expand_level(frontier, invariant, workers[0]);
        merge_level(frontier, workers);
      }
    } else {
      // Persistent worker pool, one spawn per run(): each BFS level is a
      // barrier round (spawning per level would cost more than the level
      // itself on small instances). The main thread owns the workers'
      // buffers and the frontier while they are parked at `sync`.
      std::barrier sync(static_cast<std::ptrdiff_t>(nthreads) + 1);
      std::atomic<bool> done{false};
      std::vector<std::thread> pool;
      pool.reserve(nthreads);
      for (auto& w : workers) {
        pool.emplace_back([&] {
          for (;;) {
            sync.arrive_and_wait();  // level start
            if (done.load(std::memory_order_acquire)) return;
            expand_level(frontier, invariant, w);
            sync.arrive_and_wait();  // level end: interns now visible
          }
        });
      }
      while (!frontier.empty() && !stop_.load(std::memory_order_relaxed)) {
        ++result.levels;
        cursor_.store(0, std::memory_order_relaxed);
        for (auto& w : workers) {
          w.next.clear();
          w.edges.clear();
        }
        sync.arrive_and_wait();
        sync.arrive_and_wait();
        merge_level(frontier, workers);
      }
      done.store(true, std::memory_order_release);
      sync.arrive_and_wait();
      for (auto& t : pool) t.join();
    }

    result.states_visited = store_->size();
    result.truncated = truncated_.load(std::memory_order_relaxed);
    if (violation_id_ != StateStore<P>::kNoId) {
      result.violation = path_to(violation_id_);
    }
    return result;
  }

  /// The state store of the last run() (valid until the next run()).
  [[nodiscard]] const StateStore<P>& store() const { return *store_; }

  /// Sorted digests of the visited set — the cross-run/cross-implementation
  /// fingerprint the differential tests compare.
  [[nodiscard]] std::vector<std::uint64_t> sorted_digests() const {
    return store_->sorted_digests();
  }

  /// True iff from every visited state some state satisfying `legit` is
  /// reachable (possibility of convergence). Requires record_edges and a
  /// clean exhaustive last run.
  [[nodiscard]] bool legit_reachable_from_all(const Invariant& legit) const {
    require_complete_graph();
    const auto ids = store_->all_ids();
    const auto dense = dense_index(ids);
    const std::size_t n = ids.size();
    std::vector<std::vector<std::size_t>> rev(n);
    for (const auto& [from, to] : edges_) {
      rev[dense.at(to)].push_back(dense.at(from));
    }
    std::vector<char> ok(n, 0);
    std::deque<std::size_t> frontier;
    State scratch;
    for (std::size_t i = 0; i < n; ++i) {
      if (legit(materialize(ids[i], scratch))) {
        ok[i] = 1;
        frontier.push_back(i);
      }
    }
    while (!frontier.empty()) {
      const auto v = frontier.front();
      frontier.pop_front();
      for (const auto u : rev[v]) {
        if (!ok[u]) {
          ok[u] = 1;
          frontier.push_back(u);
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!ok[i]) return false;
    }
    return true;
  }

  /// True iff the transition graph restricted to non-legit states is
  /// acyclic and no non-legit state is terminal — convergence under ANY
  /// (even unfair) scheduling. Requires record_edges and a clean exhaustive
  /// last run. Mirrors sim::Explorer::converges_outside so the two stay
  /// cross-checkable.
  [[nodiscard]] bool converges_outside(const Invariant& legit) const {
    require_complete_graph();
    const auto ids = store_->all_ids();
    const auto dense = dense_index(ids);
    const std::size_t n = ids.size();
    std::vector<std::vector<std::size_t>> out(n);
    for (const auto& [from, to] : edges_) {
      out[dense.at(from)].push_back(dense.at(to));
    }
    std::vector<char> is_legit(n, 0);
    State scratch;
    for (std::size_t i = 0; i < n; ++i) {
      is_legit[i] = legit(materialize(ids[i], scratch)) ? 1 : 0;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!is_legit[i] && out[i].empty()) return false;  // non-legit deadlock
    }
    std::vector<char> color(n, 0);  // 0 white, 1 gray, 2 black
    for (std::size_t s = 0; s < n; ++s) {
      if (is_legit[s] || color[s] != 0) continue;
      std::vector<std::pair<std::size_t, std::size_t>> stack{{s, 0}};
      color[s] = 1;
      while (!stack.empty()) {
        const auto v = stack.back().first;
        if (stack.back().second < out[v].size()) {
          const auto w = out[v][stack.back().second++];
          if (is_legit[w]) continue;        // edges into legit states are fine
          if (color[w] == 1) return false;  // back edge: cycle outside legit
          if (color[w] == 0) {
            color[w] = 1;
            stack.emplace_back(w, 0);
          }
          continue;
        }
        color[v] = 2;
        stack.pop_back();
      }
    }
    return true;
  }

 private:
  struct Worker {
    std::vector<Id> next;
    std::vector<std::pair<Id, Id>> edges;
  };

  /// Merges the per-worker successor/edge buffers, in worker order, into the
  /// next frontier. Runs after the level barrier, so every intern of the
  /// finished level is visible.
  void merge_level(std::vector<Id>& frontier, std::vector<Worker>& workers) {
    frontier.clear();
    for (auto& w : workers) {
      frontier.insert(frontier.end(), w.next.begin(), w.next.end());
      if (options_.record_edges) {
        edges_.insert(edges_.end(), w.edges.begin(), w.edges.end());
      }
    }
  }

  void expand_level(const std::vector<Id>& frontier, const Invariant& invariant,
                    Worker& w) {
    SuccessorGen<P> gen(actions_, procs_);
    State current;
    constexpr std::size_t kBatch = 16;
    for (;;) {
      const std::size_t begin = cursor_.fetch_add(kBatch, std::memory_order_relaxed);
      if (begin >= frontier.size()) return;
      const std::size_t end = std::min(begin + kBatch, frontier.size());
      for (std::size_t fi = begin; fi < end; ++fi) {
        if (stop_.load(std::memory_order_relaxed)) return;
        const Id id = frontier[fi];
        const auto span = store_->state(id);
        current.assign(span.begin(), span.end());
        gen.for_each_successor(current, options_.semantics, [&](const State& next,
                                                                std::span<const std::uint32_t>
                                                                    fired) {
          if (stop_.load(std::memory_order_relaxed)) return;
          if (store_->size() >= options_.max_states) {
            truncated_.store(true, std::memory_order_relaxed);
            stop_.store(true, std::memory_order_relaxed);
            return;
          }
          const auto digest = store_->digest(next.data());
          const auto res = store_->intern(next.data(), digest, id, fired);
          if (options_.record_edges) w.edges.emplace_back(id, res.id);
          if (!res.inserted) return;
          if (!invariant(next)) {
            std::scoped_lock lock(violation_mu_);
            if (violation_id_ == StateStore<P>::kNoId) violation_id_ = res.id;
            stop_.store(true, std::memory_order_relaxed);
            return;
          }
          w.next.push_back(res.id);
        });
      }
    }
  }

  /// Walks parent pointers from `vid` back to a root and materializes the
  /// Counterexample. Runs after all workers joined, so metadata is stable.
  [[nodiscard]] Counterexample<P> path_to(Id vid) const {
    std::vector<Id> ids;
    for (Id id = vid; id != StateStore<P>::kNoId; id = store_->parent(id)) {
      ids.push_back(id);
    }
    std::reverse(ids.begin(), ids.end());
    Counterexample<P> cx;
    cx.semantics = options_.semantics;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const auto span = store_->state(ids[i]);
      cx.path.emplace_back(span.begin(), span.end());
      if (i > 0) {
        const auto fired = store_->fired(ids[i]);
        cx.fired.emplace_back(fired.begin(), fired.end());
      }
    }
    cx.violated_by =
        cx.fired.empty() ? "<initial>" : actions_[cx.fired.back().back()].name;
    return cx;
  }

  void require_complete_graph() const {
    // Answering a convergence query from a partial graph would be a silent
    // soundness hole; insist the caller recorded edges on a clean run.
    if (!options_.record_edges || !store_ ||
        truncated_.load(std::memory_order_relaxed) ||
        violation_id_ != StateStore<P>::kNoId) {
      std::abort();
    }
  }

  [[nodiscard]] std::unordered_map<Id, std::size_t> dense_index(
      const std::vector<Id>& ids) const {
    std::unordered_map<Id, std::size_t> dense;
    dense.reserve(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) dense.emplace(ids[i], i);
    return dense;
  }

  [[nodiscard]] const State& materialize(Id id, State& scratch) const {
    const auto span = store_->state(id);
    scratch.assign(span.begin(), span.end());
    return scratch;
  }

  std::vector<sim::Action<P>> actions_;
  std::size_t procs_;
  CheckOptions options_;
  std::optional<StateStore<P>> store_;
  std::vector<std::pair<Id, Id>> edges_;
  std::atomic<std::size_t> cursor_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> truncated_{false};
  std::mutex violation_mu_;
  Id violation_id_ = StateStore<P>::kNoId;
};

}  // namespace ftbar::check
