// Parallel explicit-state bounded model checker for guarded-command
// programs — the promotion of sim::Explorer into a subsystem.
//
// Differences from the seed Explorer it supersedes as the verification
// workhorse (the seed stays on as a differential oracle in the tests):
//
//  * states are interned compactly in a sharded concurrent StateStore
//    keyed by FNV state digests — state bytes live in per-worker bump
//    arenas, no per-state heap allocation — fronted by a lock-free
//    duplicate-hit fast path (the common case past the first few levels);
//  * THE HOT PATH IS BATCHED END TO END. Workers do not intern successors
//    one at a time: each worker STAGES a chunk's worth of enumerated
//    successors (bytes, fired lists, parent edges) in flat per-worker
//    buffers and flushes them through StateStore::intern_batch, which
//    groups by shard and takes each shard's lock once per group. Scheduler
//    handoff is batched the same way: the work-stealing unit is a
//    StateChunk of up to --chunk packed (id, depth) entries, so the
//    per-item Chase-Lev fence/CAS cost — which made 8 threads SLOWER than
//    1 on the paper's programs, whose per-state expansion work is tiny —
//    is amortized over the chunk (worklist.hpp);
//  * two schedulers: a level-synchronized parallel BFS (workers claim
//    chunk-sized frontier slices from an atomic cursor and join at a level
//    barrier), and a WORK-STEALING scheduler (per-worker Chase-Lev deques
//    trading in chunks, owner takes FIFO from its own top). Termination
//    detection COUNTS STATES, not chunks: pending_ holds the number of
//    states queued in published chunks plus states expanded whose
//    successors are still staged — a worker acknowledges an expansion only
//    at the flush that routes its successors onward, and every flush adds
//    its fresh states to pending_ before subtracting its acknowledgements,
//    so pending_ can never dip to zero while work is still in flight.
//    Work-stealing keeps depths exact anyway: every state's depth is
//    CAS-min'ed and a state rediscovered shallower is re-expanded, so the
//    reported diameter equals the BFS diameter on clean exhaustive runs;
//  * successor enumeration is INCREMENTAL (check/semantics.hpp): guards are
//    re-evaluated only where the expanded state differs from the previous
//    one (declared read-set index shared with the simulation engine), and
//    successor digests resume from slot-boundary FNV checkpoints instead of
//    re-hashing whole states. Each worker reuses ONE generator and ONE
//    canonicalization scratch across a whole drained chunk, and chunk
//    entries are near-siblings under FIFO draining, so the diffs stay
//    small;
//  * optional SYMMETRY REDUCTION (check/canon.hpp): states are
//    canonicalized under the program's declared cyclic automorphism group
//    before interning, shrinking the stored space by up to the group order;
//    per-state exponents lift any counterexample back to a concrete,
//    replayable schedule (sound only for group-invariant invariants — the
//    bundles' are);
//  * both execution semantics are checked — interleaving AND
//    maximal-parallel — closing the gap between what the simulator runs
//    and what the checker verifies;
//  * every interned state carries parent/fired back-pointers, so an
//    invariant violation yields a full Counterexample path from a root
//    (minimal-length under BFS order) ready for schedule replay.
//
// Determinism: on a clean exhaustive run the visited-state set — and hence
// states_visited, levels and sorted_digests() — is independent of thread
// count, scheduler, scheduling AND chunk size (the reachable set is unique;
// depths are CAS-min-corrected). At threads = 1 the work-stealing scheduler
// expands states in exactly global BFS order at ANY chunk size: a single
// worker publishes chunks in discovery order and drains its own deque FIFO,
// and flushes process staged successors in discovery order — so the FIRST
// fresh violating state, and hence the counterexample, is identical across
// chunk sizes and equal to the BFS one. When a violation is found with
// threads > 1, WHICH violation is reported may vary run to run (and a few
// states staged alongside the violating one may land in the store), so use
// threads = 1 where a deterministic counterexample matters (the CLI and
// tests do). The transition graph handed to the convergence queries is
// complete only for clean exhaustive runs; the queries abort on truncated
// results rather than answer from a partial graph.
#pragma once

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "check/canon.hpp"
#include "check/counterexample.hpp"
#include "check/semantics.hpp"
#include "check/state_store.hpp"
#include "check/worklist.hpp"
#include "sim/action.hpp"
#include "sim/read_index.hpp"
#include "sim/step_engine.hpp"

namespace ftbar::check {

enum class Schedule { kBfs, kWorkStealing };

/// Exploration counters, aggregated across workers at the end of run().
struct CheckCounters {
  std::uint64_t expanded = 0;     ///< states whose successors were enumerated
  std::uint64_t transitions = 0;  ///< successor states enumerated
  std::uint64_t interned = 0;     ///< fresh states (== states_visited)
  std::uint64_t dup_fast = 0;     ///< duplicates resolved lock-free
  std::uint64_t dup_slow = 0;     ///< duplicates resolved under a shard mutex
  std::uint64_t steals = 0;       ///< successful chunk steals from another deque
  std::uint64_t reexpansions = 0;  ///< depth-improvement re-expansions (ws)
  std::uint64_t guard_evals = 0;  ///< guard closures invoked
  std::uint64_t chunks = 0;       ///< chunks drained (work-stealing only)
  std::uint64_t chunk_states = 0;  ///< states delivered via drained chunks
  std::uint64_t flushes = 0;       ///< intern_batch calls
  std::uint64_t bulk_groups = 0;   ///< shard locks taken across all flushes
  std::uint64_t bulk_grouped = 0;  ///< staged items that reached a locked group
  double seconds = 0;             ///< wall time of the exploration

  [[nodiscard]] double dedup_hit_rate() const noexcept {
    return transitions == 0
               ? 0.0
               : static_cast<double>(dup_fast + dup_slow) /
                     static_cast<double>(transitions);
  }
  [[nodiscard]] double states_per_sec() const noexcept {
    return seconds > 0 ? static_cast<double>(expanded) / seconds : 0.0;
  }
  /// Mean states per drained chunk — chunk occupancy. Low occupancy at a
  /// large --chunk means the frontier is too thin to fill chunks (handoff
  /// overhead is back to per-state).
  [[nodiscard]] double avg_chunk_fill() const noexcept {
    return chunks == 0 ? 0.0
                       : static_cast<double>(chunk_states) /
                             static_cast<double>(chunks);
  }
  /// Mean staged items per shard lock acquisition — how well the bulk path
  /// amortizes the per-shard mutex (1.0 would be the unbatched cost).
  [[nodiscard]] double avg_group_size() const noexcept {
    return bulk_groups == 0 ? 0.0
                            : static_cast<double>(bulk_grouped) /
                                  static_cast<double>(bulk_groups);
  }
};

/// Live counters a monitor thread may poll while run() is in flight (the
/// CLI's --stats). Workers flush local deltas every few hundred states, so
/// values lag slightly but never require synchronization.
struct CheckStats {
  std::atomic<std::uint64_t> expanded{0};
  std::atomic<std::uint64_t> transitions{0};
  std::atomic<std::uint64_t> states{0};    ///< store size snapshot
  std::atomic<std::uint64_t> dup_fast{0};
  std::atomic<std::uint64_t> dup_slow{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> chunks{0};    ///< chunks drained so far (ws)
  std::atomic<std::uint64_t> frontier{0};  ///< queued, not yet expanded
};

struct CheckOptions {
  sim::Semantics semantics = sim::Semantics::kInterleaving;
  std::size_t max_states = 2'000'000;
  std::size_t threads = 1;
  /// Record the transition graph for legit_reachable_from_all() /
  /// converges_outside(). Off by default: violation hunting and state-count
  /// oracles don't need edges, and the edge list dwarfs the state store.
  bool record_edges = false;
  Schedule schedule = Schedule::kBfs;
  /// Canonicalize states under the program's declared symmetry group
  /// before interning (see canon.hpp). Off by default: the quotient space
  /// has different digests, so differential comparisons against the seed
  /// Explorer require it off.
  bool symmetry = false;
  /// Incremental guard re-evaluation + digest checkpointing. Off = the
  /// PR 3 recompute-everything baseline (kept selectable for benchmarks).
  bool incremental = true;
  /// Lock-free duplicate fast path in the store. Off = PR 3 baseline.
  bool dedup_fast_path = true;
  /// States per scheduler handoff unit (work-stealing chunk / BFS cursor
  /// slice), clamped to [1, StateChunk::kCapacity]. 1 reproduces per-state
  /// handoff (the PR 4 granularity, kept selectable for benchmarks); the
  /// visited set, depths and single-threaded counterexamples are identical
  /// at every setting.
  std::size_t chunk = 64;
  CheckStats* live_stats = nullptr;  ///< optional --stats sink
};

template <class P>
struct CheckResult {
  std::size_t states_visited = 0;
  std::size_t levels = 0;  ///< BFS depth reached (diameter on clean runs)
  bool truncated = false;
  std::optional<Counterexample<P>> violation;
  CheckCounters counters;

  [[nodiscard]] bool ok() const noexcept { return !violation && !truncated; }
};

template <class P>
class Checker {
 public:
  using Id = typename StateStore<P>::Id;
  using State = std::vector<P>;
  using Invariant = std::function<bool(const State&)>;

  /// `symmetry` is the program's transition-automorphism group; it is only
  /// consulted when options.symmetry is set. The default (trivial) group
  /// makes canonicalization the identity.
  Checker(std::vector<sim::Action<P>> actions, std::size_t procs,
          CheckOptions options = {}, Symmetry<P> symmetry = {})
      : actions_(std::move(actions)),
        procs_(procs),
        options_(options),
        symmetry_(std::move(symmetry)) {}

  /// Explores everything reachable from `roots` under the configured
  /// semantics, stopping at the first state violating `invariant` (pass an
  /// always-true predicate to just collect the reachable set). With
  /// symmetry on, `invariant` (and any later graph-query predicate) must be
  /// invariant under the declared group — the bundles' are by construction.
  CheckResult<P> run(const std::vector<State>& roots, const Invariant& invariant) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::size_t nthreads = options_.threads == 0 ? 1 : options_.threads;
    chunk_ = std::clamp<std::size_t>(options_.chunk, 1, StateChunk::kCapacity);
    store_.emplace(procs_, options_.max_states, nthreads > 1,
                   options_.dedup_fast_path, nthreads);
    edges_.clear();
    stop_.store(false, std::memory_order_relaxed);
    truncated_.store(false, std::memory_order_relaxed);
    pending_.store(0, std::memory_order_relaxed);
    violation_id_ = StateStore<P>::kNoId;
    use_symmetry_ = options_.symmetry && !symmetry_.trivial();
    if (options_.incremental) {
      read_index_ = sim::build_read_index(actions_, procs_);
    }

    std::vector<Worker> workers(nthreads);
    for (std::size_t i = 0; i < nthreads; ++i) {
      Worker& w = workers[i];
      w.index = i;
      w.gen = std::make_unique<SuccessorGen<P>>(
          actions_, procs_, options_.incremental ? &read_index_ : nullptr,
          options_.incremental);
      w.canon = std::make_unique<Canonicalizer<P>>(&symmetry_, procs_);
      w.canon_buf.resize(procs_);
    }

    CheckResult<P> result;
    std::vector<Id> frontier;
    {
      Canonicalizer<P> canon(&symmetry_, procs_);
      std::vector<P> buf(procs_);
      for (const auto& root : roots) {
        if (root.size() != procs_) std::abort();  // bundle/options mismatch
        std::uint32_t exp = 0;
        const P* data = root.data();
        if (use_symmetry_) {
          exp = canon.canonicalize(root.data(), buf.data());
          data = buf.data();
        }
        const auto digest = store_->digest(data);
        const auto res = store_->intern(data, digest, StateStore<P>::kNoId, {},
                                        /*depth=*/0, exp);
        if (!res.inserted) continue;  // duplicate root (or orbit-equivalent)
        if (!invariant(use_symmetry_ ? buf : root)) {
          result.violation = path_to(res.id);
          result.states_visited = store_->size();
          return result;
        }
        frontier.push_back(res.id);
      }
    }

    if (options_.schedule == Schedule::kWorkStealing) {
      run_work_stealing(frontier, invariant, workers, result);
    } else {
      run_bfs(frontier, invariant, workers, result);
    }

    result.states_visited = store_->size();
    result.truncated = truncated_.load(std::memory_order_relaxed);
    if (violation_id_ != StateStore<P>::kNoId) {
      result.violation = path_to(violation_id_);
    }
    for (auto& w : workers) {
      w.counters.guard_evals = w.gen->guard_evals();
      flush_stats(w);
      result.counters.expanded += w.counters.expanded;
      result.counters.transitions += w.counters.transitions;
      result.counters.interned += w.counters.interned;
      result.counters.dup_fast += w.counters.dup_fast;
      result.counters.dup_slow += w.counters.dup_slow;
      result.counters.steals += w.counters.steals;
      result.counters.reexpansions += w.counters.reexpansions;
      result.counters.guard_evals += w.counters.guard_evals;
      result.counters.chunks += w.counters.chunks;
      result.counters.chunk_states += w.counters.chunk_states;
      result.counters.flushes += w.counters.flushes;
      result.counters.bulk_groups += w.counters.bulk_groups;
      result.counters.bulk_grouped += w.counters.bulk_grouped;
    }
    result.counters.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (options_.live_stats != nullptr) {
      options_.live_stats->states.store(store_->size(),
                                        std::memory_order_relaxed);
      options_.live_stats->frontier.store(0, std::memory_order_relaxed);
    }
    return result;
  }

  /// The state store of the last run() (valid until the next run()).
  [[nodiscard]] const StateStore<P>& store() const { return *store_; }

  /// Sorted digests of the visited set — the cross-run/cross-implementation
  /// fingerprint the differential tests compare. With symmetry on these are
  /// digests of canonical representatives.
  [[nodiscard]] std::vector<std::uint64_t> sorted_digests() const {
    return store_->sorted_digests();
  }

  /// True iff from every visited state some state satisfying `legit` is
  /// reachable (possibility of convergence). Requires record_edges and a
  /// clean exhaustive last run. With symmetry on, `legit` must be
  /// group-invariant (the quotient preserves reachability of invariant
  /// predicates).
  [[nodiscard]] bool legit_reachable_from_all(const Invariant& legit) const {
    require_complete_graph();
    const auto ids = store_->all_ids();
    const auto dense = dense_index(ids);
    const std::size_t n = ids.size();
    std::vector<std::vector<std::size_t>> rev(n);
    for (const auto& [from, to] : edges_) {
      rev[dense.at(to)].push_back(dense.at(from));
    }
    std::vector<char> ok(n, 0);
    std::deque<std::size_t> frontier;
    State scratch;
    for (std::size_t i = 0; i < n; ++i) {
      if (legit(materialize(ids[i], scratch))) {
        ok[i] = 1;
        frontier.push_back(i);
      }
    }
    while (!frontier.empty()) {
      const auto v = frontier.front();
      frontier.pop_front();
      for (const auto u : rev[v]) {
        if (!ok[u]) {
          ok[u] = 1;
          frontier.push_back(u);
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!ok[i]) return false;
    }
    return true;
  }

  /// True iff the transition graph restricted to non-legit states is
  /// acyclic and no non-legit state is terminal — convergence under ANY
  /// (even unfair) scheduling. Requires record_edges and a clean exhaustive
  /// last run. Mirrors sim::Explorer::converges_outside so the two stay
  /// cross-checkable. (A quotient cycle lifts to a cycle through rotated
  /// copies in the full graph and vice versa, so the answer is unchanged
  /// by symmetry reduction for group-invariant `legit`.)
  [[nodiscard]] bool converges_outside(const Invariant& legit) const {
    require_complete_graph();
    const auto ids = store_->all_ids();
    const auto dense = dense_index(ids);
    const std::size_t n = ids.size();
    std::vector<std::vector<std::size_t>> out(n);
    for (const auto& [from, to] : edges_) {
      out[dense.at(from)].push_back(dense.at(to));
    }
    std::vector<char> is_legit(n, 0);
    State scratch;
    for (std::size_t i = 0; i < n; ++i) {
      is_legit[i] = legit(materialize(ids[i], scratch)) ? 1 : 0;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!is_legit[i] && out[i].empty()) return false;  // non-legit deadlock
    }
    std::vector<char> color(n, 0);  // 0 white, 1 gray, 2 black
    for (std::size_t s = 0; s < n; ++s) {
      if (is_legit[s] || color[s] != 0) continue;
      std::vector<std::pair<std::size_t, std::size_t>> stack{{s, 0}};
      color[s] = 1;
      while (!stack.empty()) {
        const auto v = stack.back().first;
        if (stack.back().second < out[v].size()) {
          const auto w = out[v][stack.back().second++];
          if (is_legit[w]) continue;        // edges into legit states are fine
          if (color[w] == 1) return false;  // back edge: cycle outside legit
          if (color[w] == 0) {
            color[w] = 1;
            stack.emplace_back(w, 0);
          }
          continue;
        }
        color[v] = 2;
        stack.pop_back();
      }
    }
    return true;
  }

 private:
  struct Worker {
    std::size_t index = 0;                   ///< arena / deque slot
    std::vector<Id> next;                    ///< BFS: next-level frontier
    std::vector<std::pair<Id, Id>> edges;
    std::unique_ptr<SuccessorGen<P>> gen;
    std::unique_ptr<Canonicalizer<P>> canon;
    std::vector<P> canon_buf;
    State current;
    State eval_buf;  ///< invariant-evaluation scratch at flush time

    // Staged successors awaiting a bulk flush: three flat parallel buffers
    // (items / state bytes / fired indices), the layout intern_batch takes.
    std::vector<typename StateStore<P>::BulkItem> staged;
    std::vector<P> staged_states;
    std::vector<std::uint32_t> staged_fired;
    std::vector<typename StateStore<P>::InternResult> results;
    typename StateStore<P>::BulkScratch scratch;
    /// Expanded states whose pending_ decrement is deferred to the next
    /// flush (their successors are still in the staging buffers).
    std::uint64_t unacked = 0;

    // Work-stealing only: the worker's deque, chunk recycler, and the open
    // chunk accumulating fresh discoveries until it reaches chunk_ entries.
    WorkDeque* deque = nullptr;
    ChunkPool pool;
    StateChunk* open = nullptr;

    CheckCounters counters;       ///< cumulative locals
    CheckCounters flushed;        ///< portion already pushed to live_stats
    std::uint32_t since_flush = 0;
  };

  static constexpr std::uint32_t kFlushEvery = 256;

  [[nodiscard]] static std::uint64_t pack(Id id, std::uint32_t depth) noexcept {
    return (static_cast<std::uint64_t>(id) << 32) | depth;
  }
  [[nodiscard]] static std::uint64_t pack_chunk(StateChunk* c) noexcept {
    return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(c));
  }
  [[nodiscard]] static StateChunk* unpack_chunk(std::uint64_t e) noexcept {
    return reinterpret_cast<StateChunk*>(static_cast<std::uintptr_t>(e));
  }

  void run_bfs(std::vector<Id>& frontier, const Invariant& invariant,
               std::vector<Worker>& workers, CheckResult<P>& result) {
    std::uint32_t depth = 0;
    const std::size_t nthreads = workers.size();
    if (nthreads == 1) {
      while (!frontier.empty() && !stop_.load(std::memory_order_relaxed)) {
        ++result.levels;
        cursor_.store(0, std::memory_order_relaxed);
        workers[0].next.clear();
        workers[0].edges.clear();
        expand_level(frontier, depth, invariant, workers[0]);
        merge_level(frontier, workers);
        ++depth;
      }
      return;
    }
    // Persistent worker pool, one spawn per run(): each BFS level is a
    // barrier round (spawning per level would cost more than the level
    // itself on small instances). The main thread owns the workers'
    // buffers and the frontier while they are parked at `sync`.
    std::barrier sync(static_cast<std::ptrdiff_t>(nthreads) + 1);
    std::atomic<bool> done{false};
    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (auto& w : workers) {
      pool.emplace_back([&] {
        for (;;) {
          sync.arrive_and_wait();  // level start
          if (done.load(std::memory_order_acquire)) return;
          expand_level(frontier, depth, invariant, w);
          sync.arrive_and_wait();  // level end: interns now visible
        }
      });
    }
    while (!frontier.empty() && !stop_.load(std::memory_order_relaxed)) {
      ++result.levels;
      cursor_.store(0, std::memory_order_relaxed);
      for (auto& w : workers) {
        w.next.clear();
        w.edges.clear();
      }
      sync.arrive_and_wait();
      sync.arrive_and_wait();
      merge_level(frontier, workers);
      ++depth;
    }
    done.store(true, std::memory_order_release);
    sync.arrive_and_wait();
    for (auto& t : pool) t.join();
  }

  /// Merges the per-worker successor/edge buffers, in worker order, into the
  /// next frontier. Runs after the level barrier, so every intern of the
  /// finished level is visible.
  void merge_level(std::vector<Id>& frontier, std::vector<Worker>& workers) {
    frontier.clear();
    for (auto& w : workers) {
      frontier.insert(frontier.end(), w.next.begin(), w.next.end());
      if (options_.record_edges) {
        edges_.insert(edges_.end(), w.edges.begin(), w.edges.end());
      }
    }
  }

  /// BFS level body: claim chunk-sized frontier slices until the level is
  /// exhausted, then flush the staged tail so every intern of this level is
  /// in the store before the level barrier.
  void expand_level(const std::vector<Id>& frontier, std::uint32_t depth,
                    const Invariant& invariant, Worker& w) {
    for (;;) {
      const std::size_t begin = cursor_.fetch_add(chunk_, std::memory_order_relaxed);
      if (begin >= frontier.size()) break;
      const std::size_t end = std::min(begin + chunk_, frontier.size());
      for (std::size_t fi = begin; fi < end; ++fi) {
        if (stop_.load(std::memory_order_relaxed)) break;
        expand_one(frontier[fi], depth, invariant, w);
      }
      if (stop_.load(std::memory_order_relaxed)) break;
    }
    flush_batch(invariant, w);
  }

  void run_work_stealing(std::vector<Id>& frontier, const Invariant& invariant,
                         std::vector<Worker>& workers, CheckResult<P>& result) {
    const std::size_t nthreads = workers.size();
    std::vector<std::unique_ptr<WorkDeque>> deques;
    deques.reserve(nthreads);
    for (std::size_t i = 0; i < nthreads; ++i) {
      deques.push_back(std::make_unique<WorkDeque>());
      workers[i].deque = deques[i].get();
      workers[i].open = workers[i].pool.get();
    }
    // Seed round-robin into chunks so workers start on disjoint regions;
    // pending_ counts STATES (chunks are just envelopes). The main thread
    // may touch the workers' pools/deques here: nothing runs yet, and
    // thread creation below orders these writes before the workers' reads.
    pending_.store(static_cast<std::int64_t>(frontier.size()),
                   std::memory_order_relaxed);
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      chunk_append(workers[i % nthreads], pack(frontier[i], 0));
    }
    for (auto& w : workers) publish_open(w);
    frontier.clear();
    auto worker_loop = [&](std::size_t wi) {
      Worker& w = workers[wi];
      std::size_t idle_spins = 0;
      for (;;) {
        if (stop_.load(std::memory_order_relaxed)) return;
        std::uint64_t e = 0;
        bool got = deques[wi]->steal(e);  // own top: FIFO, near-BFS order
        if (!got) {
          for (std::size_t k = 1; k < nthreads && !got; ++k) {
            if (deques[(wi + k) % nthreads]->steal(e)) {
              got = true;
              ++w.counters.steals;
            }
          }
        }
        if (got) {
          idle_spins = 0;
          StateChunk* c = unpack_chunk(e);
          const std::uint32_t n = c->drain_count();
          ++w.counters.chunks;
          w.counters.chunk_states += n;
          for (std::uint32_t k = 0; k < n; ++k) {
            if (stop_.load(std::memory_order_relaxed)) return;
            const std::uint64_t item = c->items[k];
            expand_one(static_cast<Id>(item >> 32),
                       static_cast<std::uint32_t>(item & 0xffffffffu),
                       invariant, w);
          }
          w.pool.put(c);  // recycle locally; the victim's pool keeps it alive
          continue;
        }
        // All deques looked empty. Push out anything this worker is still
        // holding — staged successors and the partial open chunk — then
        // retry: the flush may have refilled our own deque.
        if (!w.staged.empty() || w.unacked > 0 ||
            (w.open != nullptr && w.open->fill > 0)) {
          flush_batch(invariant, w);
          publish_open(w);
          continue;
        }
        // pending > 0 means a state is in flight somewhere (queued in a
        // published chunk, or expanded with successors still staged on
        // another worker) — keep polling.
        if (pending_.load(std::memory_order_acquire) == 0) return;
        if (++idle_spins > 64) std::this_thread::yield();
      }
    };
    if (nthreads == 1) {
      worker_loop(0);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(nthreads);
      for (std::size_t i = 0; i < nthreads; ++i) {
        pool.emplace_back(worker_loop, i);
      }
      for (auto& t : pool) t.join();
    }
    if (options_.record_edges) {
      for (auto& w : workers) {
        edges_.insert(edges_.end(), w.edges.begin(), w.edges.end());
        w.edges.clear();
      }
    }
    // Depth-corrected exact diameter (see class comment): on clean runs
    // every depth equals the true BFS depth, and the deepest state sits
    // max_depth levels below the roots. Mirror the BFS level count (which
    // counts waves 0..max_depth). On a violation, mirror BFS's "levels
    // completed when the violation was interned".
    if (violation_id_ != StateStore<P>::kNoId) {
      result.levels = store_->depth(violation_id_);
    } else if (store_->size() > 0) {
      result.levels = static_cast<std::size_t>(store_->max_depth()) + 1;
    }
  }

  /// Appends a packed (id, depth) entry to the worker's open chunk,
  /// publishing and replacing the chunk when it reaches chunk_ entries.
  void chunk_append(Worker& w, std::uint64_t e) {
    w.open->items[w.open->fill++] = e;
    if (w.open->fill >= chunk_) publish_open(w);
  }

  /// Publishes the open chunk (if non-empty) to the worker's own deque and
  /// starts a fresh one. Chunks are published in discovery order, which is
  /// what makes single-threaded work-stealing expand in exact BFS order.
  void publish_open(Worker& w) {
    if (w.open == nullptr || w.open->fill == 0) return;
    w.open->publish();
    w.deque->push(pack_chunk(w.open));
    w.open = w.pool.get();
  }

  /// Enumerates the successors of `id` (recorded at `depth`) and STAGES
  /// each — canonicalized when symmetry reduction is on — into the worker's
  /// flat batch buffers. Interning, invariant evaluation and scheduler
  /// routing all happen at the next flush_batch; the expansion itself is
  /// acknowledged to the termination counter there too (w.unacked).
  void expand_one(Id id, std::uint32_t depth, const Invariant& invariant,
                  Worker& w) {
    const auto span = store_->state(id);
    w.current.assign(span.begin(), span.end());
    ++w.counters.expanded;
    w.gen->for_each_successor(
        w.current, options_.semantics,
        [&](const State& next, std::span<const std::uint32_t> fired,
            std::uint64_t digest) {
          if (stop_.load(std::memory_order_relaxed)) return;
          ++w.counters.transitions;
          if (store_->size() >= options_.max_states) {
            truncated_.store(true, std::memory_order_relaxed);
            stop_.store(true, std::memory_order_relaxed);
            return;
          }
          const P* data = next.data();
          std::uint32_t exp = 0;
          if (use_symmetry_) {
            exp = w.canon->canonicalize(next.data(), w.canon_buf.data());
            data = w.canon_buf.data();
            digest = store_->digest(data);
          }
          auto& item = w.staged.emplace_back();
          item.digest = digest;
          item.state_index = static_cast<std::uint32_t>(w.staged.size() - 1);
          item.parent = id;
          item.fired_ofs = static_cast<std::uint32_t>(w.staged_fired.size());
          item.fired_len = static_cast<std::uint32_t>(fired.size());
          item.depth = depth + 1;
          item.exponent = exp;
          w.staged_states.insert(w.staged_states.end(), data, data + procs_);
          w.staged_fired.insert(w.staged_fired.end(), fired.begin(), fired.end());
          // Flush early when the batch hits the store's bulk cap, or when
          // the OPTIMISTIC size (interned + staged) reaches the state
          // budget — the latter keeps the truncation check above exact to
          // within duplicates, so a space that exhausts inside the budget
          // is never falsely truncated and an overshoot is bounded.
          if (w.staged.size() >= StateStore<P>::kMaxBatch ||
              store_->size() + w.staged.size() >= options_.max_states) {
            flush_batch(invariant, w);
          }
        });
    ++w.unacked;
    if (options_.live_stats != nullptr && ++w.since_flush >= kFlushEvery) {
      flush_stats(w);
    }
  }

  /// Pushes the staged batch through StateStore::intern_batch, then walks
  /// the results IN DISCOVERY ORDER: fresh states get their invariant
  /// check and are routed onward (open chunk in work-stealing mode, the
  /// next-level buffer in BFS mode); duplicates feed the dedup counters
  /// and the depth-correction CAS. Finally acknowledges the expansions
  /// whose successor sets this flush completed — adds before subtracts, so
  /// the termination counter never transiently hits zero.
  void flush_batch(const Invariant& invariant, Worker& w) {
    if (!w.staged.empty()) {
      w.results.resize(w.staged.size());
      const auto bs = store_->intern_batch(
          std::span<const typename StateStore<P>::BulkItem>(w.staged),
          w.staged_states.data(), w.staged_fired.data(),
          store_->arena(w.index), w.scratch, w.results.data());
      ++w.counters.flushes;
      w.counters.bulk_groups += bs.groups;
      w.counters.bulk_grouped += bs.grouped_items;
      for (std::size_t i = 0; i < w.staged.size(); ++i) {
        if (stop_.load(std::memory_order_relaxed)) break;
        const auto& item = w.staged[i];
        const auto& res = w.results[i];
        if (options_.record_edges) w.edges.emplace_back(item.parent, res.id);
        if (res.inserted) {
          ++w.counters.interned;
          const P* bytes = w.staged_states.data() +
                           static_cast<std::size_t>(item.state_index) * procs_;
          w.eval_buf.assign(bytes, bytes + procs_);
          if (!invariant(w.eval_buf)) {
            std::scoped_lock lock(violation_mu_);
            if (violation_id_ == StateStore<P>::kNoId) violation_id_ = res.id;
            stop_.store(true, std::memory_order_relaxed);
            break;
          }
          if (w.deque != nullptr) {
            pending_.fetch_add(1, std::memory_order_relaxed);
            chunk_append(w, pack(res.id, item.depth));
          } else {
            w.next.push_back(res.id);
          }
        } else {
          if (res.fast_hit) {
            ++w.counters.dup_fast;
          } else {
            ++w.counters.dup_slow;
          }
          // Out-of-order discovery may have recorded too deep a depth;
          // fix it and re-expand so successors inherit the correction.
          // Impossible under level order (BFS mode skips the CAS).
          if (w.deque != nullptr &&
              store_->try_improve_depth(res.id, item.depth)) {
            ++w.counters.reexpansions;
            pending_.fetch_add(1, std::memory_order_relaxed);
            chunk_append(w, pack(res.id, item.depth));
          }
        }
      }
      w.staged.clear();
      w.staged_states.clear();
      w.staged_fired.clear();
    }
    if (w.deque != nullptr && w.unacked > 0) {
      // Release pairs with the idle path's acquire load: a worker that
      // observes pending == 0 also observes every push made above.
      pending_.fetch_sub(static_cast<std::int64_t>(w.unacked),
                         std::memory_order_release);
      w.unacked = 0;
    }
  }

  /// Pushes the delta since the last flush into the live-stats atomics.
  void flush_stats(Worker& w) {
    w.since_flush = 0;
    CheckStats* s = options_.live_stats;
    if (s == nullptr) return;
    s->expanded.fetch_add(w.counters.expanded - w.flushed.expanded,
                          std::memory_order_relaxed);
    s->transitions.fetch_add(w.counters.transitions - w.flushed.transitions,
                             std::memory_order_relaxed);
    s->dup_fast.fetch_add(w.counters.dup_fast - w.flushed.dup_fast,
                          std::memory_order_relaxed);
    s->dup_slow.fetch_add(w.counters.dup_slow - w.flushed.dup_slow,
                          std::memory_order_relaxed);
    s->steals.fetch_add(w.counters.steals - w.flushed.steals,
                        std::memory_order_relaxed);
    s->chunks.fetch_add(w.counters.chunks - w.flushed.chunks,
                        std::memory_order_relaxed);
    w.flushed = w.counters;
    s->states.store(store_->size(), std::memory_order_relaxed);
    const auto pending = pending_.load(std::memory_order_relaxed);
    s->frontier.store(pending > 0 ? static_cast<std::uint64_t>(pending) : 0,
                      std::memory_order_relaxed);
  }

  /// Walks parent pointers from `vid` back to a root, lifting the stored
  /// canonical states to a CONCRETE execution via the recorded group
  /// exponents (see canon.hpp: running exponent u_i, conjugated fired
  /// lists). With symmetry off every exponent is 0 and this reduces to
  /// plain materialization. Runs after all workers joined.
  [[nodiscard]] Counterexample<P> path_to(Id vid) const {
    std::vector<Id> ids;
    for (Id id = vid; id != StateStore<P>::kNoId; id = store_->parent(id)) {
      ids.push_back(id);
    }
    std::reverse(ids.begin(), ids.end());
    Counterexample<P> cx;
    cx.semantics = options_.semantics;
    Canonicalizer<P> canon(&symmetry_, procs_);
    std::uint32_t u = 0;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (i > 0) {
        const auto fired = store_->fired(ids[i]);
        std::vector<std::uint32_t> f(fired.begin(), fired.end());
        canon.permute_fired(f, u, actions_);  // conjugate by g^{u_{i-1}}
        cx.fired.push_back(std::move(f));
      }
      u = i == 0 ? canon.inverse(store_->exponent(ids[0]))
                 : canon.compose(u, canon.inverse(store_->exponent(ids[i])));
      const auto span = store_->state(ids[i]);
      State s(span.begin(), span.end());
      canon.apply_pow(std::span<P>{s}, u);
      cx.path.push_back(std::move(s));
    }
    cx.violated_by =
        cx.fired.empty() ? "<initial>" : actions_[cx.fired.back().back()].name;
    return cx;
  }

  void require_complete_graph() const {
    // Answering a convergence query from a partial graph would be a silent
    // soundness hole; insist the caller recorded edges on a clean run.
    if (!options_.record_edges || !store_ ||
        truncated_.load(std::memory_order_relaxed) ||
        violation_id_ != StateStore<P>::kNoId) {
      std::abort();
    }
  }

  [[nodiscard]] std::unordered_map<Id, std::size_t> dense_index(
      const std::vector<Id>& ids) const {
    std::unordered_map<Id, std::size_t> dense;
    dense.reserve(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) dense.emplace(ids[i], i);
    return dense;
  }

  [[nodiscard]] const State& materialize(Id id, State& scratch) const {
    const auto span = store_->state(id);
    scratch.assign(span.begin(), span.end());
    return scratch;
  }

  std::vector<sim::Action<P>> actions_;
  std::size_t procs_;
  CheckOptions options_;
  Symmetry<P> symmetry_;
  bool use_symmetry_ = false;
  std::size_t chunk_ = 64;  ///< clamped options_.chunk, set per run()
  sim::ReadIndex read_index_;
  std::optional<StateStore<P>> store_;
  std::vector<std::pair<Id, Id>> edges_;
  std::atomic<std::size_t> cursor_{0};
  std::atomic<std::int64_t> pending_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> truncated_{false};
  std::mutex violation_mu_;
  Id violation_id_ = StateStore<P>::kNoId;
};

}  // namespace ftbar::check
