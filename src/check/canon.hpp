// Symmetry reduction for the explicit-state checker: canonicalization under
// a cyclic automorphism group of the program.
//
// A Symmetry declares a cyclic group G = <g> of order m acting on states
// (and, via `action_perm`, on action indices). The checker may explore the
// QUOTIENT space — interning only the lexicographically minimal element of
// each orbit — which is sound for an invariant I when
//
//   (1) g is a transition automorphism: action a is enabled at s iff
//       action_perm(a) is enabled at g(s), and
//       g(apply(a, s)) = apply(action_perm(a), g(s));
//   (2) I is G-invariant: I(s) <=> I(g(s));
//   (3) the root set is explored orbit-wise (each root is canonicalized on
//       entry; roots in the same orbit collapse, which only removes
//       duplicates since their reachable orbits coincide by (1)).
//
// Under (1)-(3), a state violating I is reachable iff a state of its orbit
// is reachable in the quotient (Clarke/Emerson/Jha). Reachability of a
// G-invariant predicate (the convergence queries' `legit`) is likewise
// preserved, so the graph queries remain valid on the quotient graph.
//
// What group do the paper's programs admit? NOT process rotation: CB
// resolves nondeterminism to the lowest-index process and RB/MB single out
// a root (process 0) whose control domain differs from the followers', so
// rotating processes maps reachable states to states of a DIFFERENT
// verification problem. What all four programs do admit is the GLOBAL PHASE
// ROTATION ph := ph + 1 (mod num_phases) applied to every process (MB: the
// local copy c_ph rotates too — it is a copy of a neighbour's ph). Phases
// are only ever compared for equality, copied, incremented modulo
// num_phases, or counted distinct, so every guard and statement commutes
// with the rotation and action_perm is the identity (see DESIGN.md §9 for
// the per-action argument, including CB4's arbitrary-phase fallback, whose
// non-equivariant branch is unreachable from the bundles' root sets).
// Bundles declare this group in check/programs.cpp.
//
// Counterexample lifting. The store records, per interned state, the
// exponent e with canonical = g^e(raw-discovered). Walking a canonical path
// c_0 .. c_k back to a concrete execution keeps a running exponent u
// (u_0 = -e_0 mod m, so the lifted path starts at the RAW root):
//   s_i      = g^{u_i}(c_i)
//   F_{i+1}  = action_perm^{u_i}(fired_{i+1})   (identity for phase shift)
//   u_{i+1}  = u_i - e_{i+1}  (mod m)
// Equivariance (1) makes each F step transform s_i into s_{i+1}, so the
// lifted schedule replays digest-for-digest in the live engine.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "sim/action.hpp"

namespace ftbar::check {

/// A cyclic transition-automorphism group <g> of order `order`.
/// order <= 1 (or a null generator) means the trivial group: the
/// canonicalizer degenerates to the identity and reduces nothing.
template <class P>
struct Symmetry {
  std::size_t order = 1;
  std::function<void(std::span<P>)> generator;  ///< applies g once, in place
  /// Image of each action index under g; empty = identity (g commutes with
  /// every action, the phase-rotation case).
  std::vector<std::uint32_t> action_perm;
  std::string name = "identity";

  [[nodiscard]] bool trivial() const noexcept {
    return order <= 1 || !generator;
  }
};

/// Per-worker canonicalization scratch. Maps a raw state to the
/// lexicographically minimal (raw-byte memcmp, a total order because P has
/// unique object representations) element of its orbit, remembering the
/// group exponent that got there.
template <class P>
class Canonicalizer {
 public:
  Canonicalizer(const Symmetry<P>* sym, std::size_t procs)
      : sym_(sym), procs_(procs), image_(procs), best_(procs) {}

  [[nodiscard]] std::size_t order() const noexcept {
    return sym_ == nullptr || sym_->trivial() ? 1 : sym_->order;
  }
  [[nodiscard]] bool trivial() const noexcept { return order() == 1; }

  /// Writes the canonical form of `in` to `out` (both length procs) and
  /// returns the smallest exponent e with out = g^e(in).
  std::uint32_t canonicalize(const P* in, P* out) {
    if (trivial()) {
      std::memcpy(out, in, bytes());
      return 0;
    }
    std::memcpy(best_.data(), in, bytes());
    std::memcpy(image_.data(), in, bytes());
    std::uint32_t best_e = 0;
    for (std::uint32_t k = 1; k < order(); ++k) {
      sym_->generator(std::span<P>{image_});
      if (std::memcmp(image_.data(), best_.data(), bytes()) < 0) {
        std::memcpy(best_.data(), image_.data(), bytes());
        best_e = k;
      }
    }
    std::memcpy(out, best_.data(), bytes());
    return best_e;
  }

  /// Applies g^k in place.
  void apply_pow(std::span<P> s, std::uint32_t k) const {
    for (std::uint32_t i = 0; i < k; ++i) sym_->generator(s);
  }

  /// The exponent of g^{-e} in <g>.
  [[nodiscard]] std::uint32_t inverse(std::uint32_t e) const noexcept {
    return e == 0 ? 0 : static_cast<std::uint32_t>(order()) - e;
  }

  /// Composes exponents: g^a . g^b = g^{(a+b) mod m}.
  [[nodiscard]] std::uint32_t compose(std::uint32_t a,
                                      std::uint32_t b) const noexcept {
    return static_cast<std::uint32_t>((a + b) % order());
  }

  /// Rewrites a fired-action list through action_perm^k, then restores the
  /// ascending-process order replay schedules expect (a no-op for the
  /// identity action permutation).
  void permute_fired(std::vector<std::uint32_t>& fired, std::uint32_t k,
                     const std::vector<sim::Action<P>>& actions) const {
    if (trivial() || k == 0 || sym_->action_perm.empty()) return;
    for (auto& ai : fired) {
      for (std::uint32_t i = 0; i < k; ++i) ai = sym_->action_perm[ai];
    }
    std::stable_sort(fired.begin(), fired.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return actions[a].process < actions[b].process;
                     });
  }

  /// Size of the orbit of `s`: the smallest t > 0 with g^t(s) = s. Always
  /// divides the group order (cyclic group acting on a point).
  [[nodiscard]] std::size_t orbit_size(const P* s) {
    if (trivial()) return 1;
    std::memcpy(image_.data(), s, bytes());
    for (std::size_t t = 1;; ++t) {
      sym_->generator(std::span<P>{image_});
      if (std::memcmp(image_.data(), s, bytes()) == 0) return t;
    }
  }

 private:
  [[nodiscard]] std::size_t bytes() const noexcept {
    return procs_ * sizeof(P);
  }

  const Symmetry<P>* sym_;
  std::size_t procs_;
  std::vector<P> image_;  ///< walking image g^k(in)
  std::vector<P> best_;   ///< minimal image so far
};

}  // namespace ftbar::check
