// Sharded, concurrent interned-state storage for the explicit-state checker.
//
// The seed sim::Explorer kept every visited state as a whole
// std::vector<P> (one heap allocation per state) in a single-threaded hash
// map. This store replaces that with compact interning designed for the
// parallel explorer in check/checker.hpp:
//
//  * states are raw byte blobs — P must be trivially copyable with unique
//    object representations (the same contract the trace/replay digests
//    rely on) — appended into per-shard block arenas, so interning a state
//    allocates nothing in steady state;
//  * the dedup index is sharded 64 ways on the low bits of the FNV-1a
//    state digest (trace::fnv1a_bytes, the digest record/replay
//    introduced), one mutex per shard, so worker threads interning
//    unrelated states never contend;
//  * every interned state carries its BFS parent id and the action indices
//    fired on the discovering edge, so any state — in particular an
//    invariant violation — can be expanded into a full counterexample path
//    back to a root without re-searching.
//
// Concurrency contract. intern() may be called from any number of threads.
// state() may be called concurrently with intern() ONLY for ids published
// to the caller before the current synchronization point (the checker's
// level barrier): the block-pointer vector is reserved to its maximum size
// up front so a concurrent append never reallocates the spine, and blob
// bytes are written before the id escapes the shard mutex. Metadata
// accessors (parent / fired / digest_of) are valid only after all
// intern() calls have been joined.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <span>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "trace/replay.hpp"

namespace ftbar::check {

template <class P>
class StateStore {
  static_assert(std::is_trivially_copyable_v<P>,
                "the checker interns raw state bytes");
  static_assert(std::has_unique_object_representations_v<P>,
                "padding bytes would poison digests and byte-equality");

 public:
  using Id = std::uint32_t;
  static constexpr Id kNoId = 0xffffffffu;
  static constexpr std::size_t kShardBits = 6;
  static constexpr std::size_t kShards = std::size_t{1} << kShardBits;
  static constexpr std::size_t kBlockStates = 1024;

  /// `concurrent` = false elides the shard mutexes: valid only when every
  /// intern() comes from one thread (the checker passes threads > 1).
  StateStore(std::size_t procs, std::size_t max_states, bool concurrent = true)
      : procs_(procs), state_bytes_(procs * sizeof(P)), concurrent_(concurrent) {
    // Reserve every shard's block spine for the worst case (all states in
    // one shard) so a concurrent reader never observes a reallocation.
    const std::size_t spine = max_states / kBlockStates + 2;
    for (auto& shard : shards_) shard.blocks.reserve(spine);
  }

  struct InternResult {
    Id id = kNoId;
    bool inserted = false;
  };

  /// Digest of a whole-system state, as the replay layer computes it.
  [[nodiscard]] std::uint64_t digest(const P* s) const noexcept {
    return trace::fnv1a_bytes(s, state_bytes_);
  }

  /// Interns `s` (byte-compared against digest collisions). On first
  /// insertion the discovering edge (parent, fired action indices) is
  /// recorded; later discoveries of the same state keep the first edge.
  InternResult intern(const P* s, std::uint64_t digest, Id parent,
                      std::span<const std::uint32_t> fired) {
    Shard& shard = shards_[shard_of(digest)];
    std::unique_lock<std::mutex> lock(shard.mu, std::defer_lock);
    if (concurrent_) lock.lock();
    auto [it, fresh] = shard.index.try_emplace(digest, kNoLocal);
    for (std::uint32_t local = it->second; local != kNoLocal;
         local = shard.collision_next[local]) {
      if (std::memcmp(slot(shard, local), s, state_bytes_) == 0) {
        return {make_id(shard_of(digest), local), false};
      }
    }
    const auto local = static_cast<std::uint32_t>(shard.count);
    if (local % kBlockStates == 0) {
      shard.blocks.push_back(std::make_unique<P[]>(kBlockStates * procs_));
    }
    std::memcpy(slot(shard, local), s, state_bytes_);
    shard.digests.push_back(digest);
    shard.parents.push_back(parent);
    shard.fired_offsets.push_back(static_cast<std::uint32_t>(shard.fired_arena.size()));
    shard.fired_arena.push_back(static_cast<std::uint32_t>(fired.size()));
    shard.fired_arena.insert(shard.fired_arena.end(), fired.begin(), fired.end());
    shard.collision_next.push_back(fresh ? kNoLocal : it->second);
    it->second = local;
    ++shard.count;
    total_.fetch_add(1, std::memory_order_relaxed);
    return {make_id(shard_of(digest), local), true};
  }

  [[nodiscard]] std::span<const P> state(Id id) const {
    const Shard& shard = shards_[id & (kShards - 1)];
    return {slot(shard, id >> kShardBits), procs_};
  }

  [[nodiscard]] Id parent(Id id) const {
    return shards_[id & (kShards - 1)].parents[id >> kShardBits];
  }

  [[nodiscard]] std::span<const std::uint32_t> fired(Id id) const {
    const Shard& shard = shards_[id & (kShards - 1)];
    const std::uint32_t ofs = shard.fired_offsets[id >> kShardBits];
    return {shard.fired_arena.data() + ofs + 1, shard.fired_arena[ofs]};
  }

  [[nodiscard]] std::uint64_t digest_of(Id id) const {
    return shards_[id & (kShards - 1)].digests[id >> kShardBits];
  }

  /// Total interned states. Relaxed: exact after a synchronization point,
  /// approximate (monotone lower bound) while workers are interning.
  [[nodiscard]] std::size_t size() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t procs() const noexcept { return procs_; }

  /// Every interned id, shard-major. Stable post-run enumeration order.
  [[nodiscard]] std::vector<Id> all_ids() const {
    std::vector<Id> out;
    out.reserve(size());
    for (std::size_t sh = 0; sh < kShards; ++sh) {
      for (std::size_t local = 0; local < shards_[sh].count; ++local) {
        out.push_back(make_id(sh, static_cast<std::uint32_t>(local)));
      }
    }
    return out;
  }

  /// Sorted digests of every interned state — the canonical fingerprint
  /// used to compare two explorations state-set for state-set.
  [[nodiscard]] std::vector<std::uint64_t> sorted_digests() const {
    std::vector<std::uint64_t> out;
    out.reserve(size());
    for (const auto& shard : shards_) {
      out.insert(out.end(), shard.digests.begin(), shard.digests.end());
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  static constexpr std::uint32_t kNoLocal = 0xffffffffu;

  struct Shard {
    std::mutex mu;
    std::unordered_map<std::uint64_t, std::uint32_t> index;  ///< digest -> newest local
    std::vector<std::uint32_t> collision_next;  ///< older state, same digest
    std::vector<std::unique_ptr<P[]>> blocks;
    std::vector<std::uint64_t> digests;
    std::vector<Id> parents;
    std::vector<std::uint32_t> fired_offsets;  ///< into fired_arena: [count, a...]
    std::vector<std::uint32_t> fired_arena;
    std::size_t count = 0;
  };

  [[nodiscard]] static constexpr std::size_t shard_of(std::uint64_t digest) noexcept {
    return digest & (kShards - 1);
  }
  [[nodiscard]] static constexpr Id make_id(std::size_t shard,
                                            std::uint32_t local) noexcept {
    return (local << kShardBits) | static_cast<Id>(shard);
  }
  [[nodiscard]] P* slot(const Shard& shard, std::uint32_t local) const {
    return shard.blocks[local / kBlockStates].get() +
           (local % kBlockStates) * procs_;
  }

  std::size_t procs_;
  std::size_t state_bytes_;
  bool concurrent_;
  std::atomic<std::size_t> total_{0};
  Shard shards_[kShards];
};

}  // namespace ftbar::check
