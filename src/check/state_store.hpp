// Sharded, concurrent interned-state storage for the explicit-state checker.
//
// The seed sim::Explorer kept every visited state as a whole
// std::vector<P> (one heap allocation per state) in a single-threaded hash
// map. This store replaces that with compact interning designed for the
// parallel explorer in check/checker.hpp:
//
//  * states are raw byte blobs — P must be trivially copyable with unique
//    object representations (the same contract the trace/replay digests
//    rely on) — bump-allocated from per-worker arena slabs (StateArena),
//    so interning a state allocates nothing in steady state and workers
//    never contend on the blob storage; each shard records one pointer per
//    state into the owning worker's arena;
//  * the dedup index is sharded 64 ways on the low bits of the FNV-1a
//    state digest (trace::fnv1a_bytes, the digest record/replay
//    introduced), one mutex per shard — each shard padded to its own cache
//    lines so worker threads interning unrelated states never contend, not
//    even by false sharing;
//  * a LOCK-FREE DUPLICATE FAST PATH fronts the shards: a fixed-size open
//    table of atomic id slots, probed before any mutex is touched. Past the
//    first few BFS levels >90% of interns are duplicate hits, and the fast
//    path resolves them with one acquire load plus one byte-compare. Slots
//    are advisory (a hash collision may overwrite one); the mutex-guarded
//    shard index stays authoritative, so a fast-path miss is never wrong,
//    just slower;
//  * the HOT PATH IS BATCHED (intern_batch): the checker stages a chunk's
//    worth of successors and hands them over in one call, which probes the
//    fast path with software prefetch running ahead, groups the survivors
//    by shard with a stable counting sort, prefetches each group's
//    open-addressing index slots, and takes every shard's lock exactly
//    ONCE per group — the per-state lock/CAS traffic that made parallel
//    exploration slower than sequential is amortized over the group. The
//    single-state intern() remains for root seeding and tests and is NOT
//    safe to call concurrently with itself (it shares the root arena);
//    concurrent interning goes through intern_batch with per-worker arenas;
//  * every interned state carries its discovering edge (parent id + fired
//    action indices), its symmetry-group exponent (canonical = g^exp(raw),
//    used to lift quotient-space counterexamples back to concrete runs —
//    see canon.hpp), and an atomically CAS-min'able depth, which the
//    work-stealing scheduler uses to keep BFS depths exact out of order.
//
// Concurrency contract. intern_batch() may be called from any number of
// threads, each with its own arena and scratch. state(), depth() and
// try_improve_depth() may be called concurrently with interning ONLY for
// ids published to the caller (returned from intern_batch(), read from a
// fast-path slot, or handed across the checker's scheduler): the
// pointer/depth block spines are reserved to their maximum size up front so
// a concurrent append never reallocates them, and blob bytes, the blob
// pointer and the depth are written before the id escapes the shard mutex
// or is release-stored into a fast-path slot. Metadata accessors (parent /
// fired / digest_of / exponent / max_depth) are valid only after all
// interning calls joined.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

#include "trace/replay.hpp"

namespace ftbar::check {

/// Best-effort read prefetch; a no-op on toolchains without the builtin.
inline void prefetch_read(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/1);
#else
  (void)p;
#endif
}

/// Bump allocator for interned state blobs: slabs of `slab_states` states,
/// each `procs` P records wide. Single-owner (one arena per worker); the
/// store keeps the arenas alive as long as itself, since shard pointer
/// tables point into them. Slabs are never freed or reused, so a pointer
/// handed out stays valid for the arena's lifetime.
template <class P>
class StateArena {
 public:
  explicit StateArena(std::size_t procs, std::size_t slab_states = 4096)
      : procs_(procs), slab_states_(slab_states), used_(slab_states) {}

  /// Space for one state (procs_ records), uninitialized.
  [[nodiscard]] P* alloc() {
    if (used_ == slab_states_) {
      slabs_.push_back(
          std::make_unique_for_overwrite<P[]>(slab_states_ * procs_));
      used_ = 0;
    }
    return slabs_.back().get() + (used_++) * procs_;
  }

 private:
  std::size_t procs_;
  std::size_t slab_states_;
  std::size_t used_;
  std::vector<std::unique_ptr<P[]>> slabs_;
};

template <class P>
class StateStore {
  static_assert(std::is_trivially_copyable_v<P>,
                "the checker interns raw state bytes");
  static_assert(std::has_unique_object_representations_v<P>,
                "padding bytes would poison digests and byte-equality");

 public:
  using Id = std::uint32_t;
  static constexpr Id kNoId = 0xffffffffu;
  static constexpr std::size_t kShardBits = 6;
  static constexpr std::size_t kShards = std::size_t{1} << kShardBits;
  static constexpr std::size_t kBlockStates = 1024;
  /// Largest batch intern_batch accepts; the spine slack below is sized so
  /// that every worker overshooting max_states by one full batch into one
  /// shard still fits the reserved pointer spines.
  static constexpr std::size_t kMaxBatch = 4096;

  /// `workers` sizes the per-worker arena set (arena(w) for w < workers).
  /// `concurrent` = false elides the shard mutexes: valid only when every
  /// interning call comes from one thread (the checker passes threads > 1).
  /// `fast_path` = false disables the lock-free duplicate table (the PR 3
  /// baseline, kept selectable for benchmarking).
  StateStore(std::size_t procs, std::size_t max_states, bool concurrent = true,
             bool fast_path = true, std::size_t workers = 1)
      : procs_(procs), state_bytes_(procs * sizeof(P)), concurrent_(concurrent) {
    if (workers == 0) workers = 1;
    arenas_.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) arenas_.emplace_back(procs);
    // Reserve every shard's block spine for the worst case (all states in
    // one shard, plus every worker overshooting the budget by one batch
    // between size checks) so a concurrent reader never observes a
    // reallocation of the spine it is indexing.
    const std::size_t spine =
        (max_states + workers * kMaxBatch) / kBlockStates + 2;
    for (auto& shard : shards_) {
      shard.ptr_blocks.reserve(spine);
      shard.depth_blocks.reserve(spine);
      shard.index_keys.resize(kInitialIndexSlots);
      shard.index_vals.assign(kInitialIndexSlots, 0);
      shard.index_mask = kInitialIndexSlots - 1;
    }
    if (fast_path) {
      // ~2 slots per possible state, power of two, bounded: the table is a
      // cache keyed by digest bits, so undersizing only costs extra slow
      // paths. Value-initialized atomics are zero = empty.
      std::size_t want = max_states < (std::size_t{1} << 22)
                             ? 2 * max_states
                             : (std::size_t{1} << 23);
      fast_bits_ = 12;
      while ((std::size_t{1} << fast_bits_) < want && fast_bits_ < 23) {
        ++fast_bits_;
      }
      // calloc, not make_unique: value-initializing the slots would fault
      // in every page of a table sized for max_states up front; the OS's
      // lazy zero pages make an untouched (or read-only-touched) region
      // free. Slots are plain uint32_t accessed through std::atomic_ref.
      fast_.reset(static_cast<std::uint32_t*>(
          std::calloc(std::size_t{1} << fast_bits_, sizeof(std::uint32_t))));
      if (fast_ == nullptr) throw std::bad_alloc();
    }
  }

  struct InternResult {
    Id id = kNoId;
    bool inserted = false;
    bool fast_hit = false;  ///< duplicate resolved without touching a shard
  };

  /// One staged successor in an intern_batch call. The state bytes live at
  /// `states + state_index * procs` of the caller's staging buffer and the
  /// fired list at `fired + fired_ofs`, so the batch is three parallel
  /// flat buffers instead of a vector of vectors.
  struct BulkItem {
    std::uint64_t digest = 0;
    std::uint32_t state_index = 0;
    Id parent = kNoId;
    std::uint32_t fired_ofs = 0;
    std::uint32_t fired_len = 0;
    std::uint32_t depth = 0;
    std::uint32_t exponent = 0;
  };

  /// Shard-group telemetry of one intern_batch call (accumulated by the
  /// checker into its --stats counters): `groups` shard locks taken,
  /// `grouped_items` items that reached the locked slow path (the rest were
  /// resolved by the lock-free fast table).
  struct BulkStats {
    std::uint64_t groups = 0;
    std::uint64_t grouped_items = 0;
  };

  /// Reusable per-caller scratch for intern_batch's shard grouping.
  struct BulkScratch {
    std::vector<std::uint32_t> pending;  ///< item indices not fast-resolved
    std::vector<std::uint32_t> grouped;  ///< same, stably sorted by shard
  };

  /// Digest of a whole-system state, as the replay layer computes it.
  [[nodiscard]] std::uint64_t digest(const P* s) const noexcept {
    return trace::fnv1a_bytes(s, state_bytes_);
  }

  /// Per-worker blob arena (w < the `workers` the store was built with).
  [[nodiscard]] StateArena<P>& arena(std::size_t w) { return arenas_[w]; }

  /// Interns `s` (byte-compared against digest collisions). On first
  /// insertion the discovering edge (parent, fired action indices), the
  /// symmetry exponent and the discovery depth are recorded; later
  /// discoveries of the same state keep the first edge (depth may still
  /// improve via try_improve_depth). Blob bytes go to arena 0 — this entry
  /// point is for root seeding and tests and must not be called from two
  /// threads at once; concurrent interning uses intern_batch.
  InternResult intern(const P* s, std::uint64_t digest, Id parent,
                      std::span<const std::uint32_t> fired,
                      std::uint32_t depth = 0, std::uint32_t exponent = 0) {
    std::uint32_t* fast_slot = nullptr;
    InternResult out;
    if (probe_fast(s, digest, fast_slot, out)) return out;
    Shard& shard = shards_[shard_of(digest)];
    std::unique_lock<std::mutex> lock(shard.mu, std::defer_lock);
    if (concurrent_) lock.lock();
    return intern_locked(shard, s, digest, parent, fired.data(),
                         static_cast<std::uint32_t>(fired.size()), depth,
                         exponent, arenas_[0], fast_slot);
  }

  /// Bulk interning: resolves `items` against the store in one call —
  /// lock-free fast-table probes with prefetch running `kPrefetchAhead`
  /// items ahead, then one locked pass per shard GROUP (stable counting
  /// sort by shard, index slots prefetched before the probes), fresh blobs
  /// bump-allocated from `arena`. results[i] corresponds to items[i]; the
  /// first occurrence of a duplicated state within the batch is the one
  /// that inserts (stable grouping preserves in-batch discovery order per
  /// shard), so batched exploration keeps the unbatched discovery-edge
  /// semantics. items.size() must be <= kMaxBatch.
  BulkStats intern_batch(std::span<const BulkItem> items, const P* states,
                         const std::uint32_t* fired, StateArena<P>& arena,
                         BulkScratch& scratch, InternResult* results) {
    const std::size_t n = items.size();
    if (n > kMaxBatch) std::abort();  // caller bug: spine slack would be void
    BulkStats stats;
    static constexpr std::size_t kPrefetchAhead = 8;

    scratch.pending.clear();
    if (fast_ != nullptr) {
      for (std::size_t i = 0; i < n; ++i) {
        if (i + kPrefetchAhead < n) {
          prefetch_read(&fast_[fast_index(items[i + kPrefetchAhead].digest)]);
        }
        std::uint32_t* slot_ptr = nullptr;
        if (!probe_fast(states + items[i].state_index * procs_,
                        items[i].digest, slot_ptr, results[i])) {
          scratch.pending.push_back(static_cast<std::uint32_t>(i));
        }
      }
    } else {
      scratch.pending.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        scratch.pending[i] = static_cast<std::uint32_t>(i);
      }
    }

    // Stable counting sort of the unresolved items by destination shard:
    // one pass to count, one to scatter. Stability keeps in-batch
    // discovery order within each shard group.
    std::uint32_t counts[kShards] = {};
    for (const auto idx : scratch.pending) {
      ++counts[shard_of(items[idx].digest)];
    }
    std::uint32_t starts[kShards + 1];
    starts[0] = 0;
    for (std::size_t s = 0; s < kShards; ++s) starts[s + 1] = starts[s] + counts[s];
    scratch.grouped.resize(scratch.pending.size());
    {
      std::uint32_t cursor[kShards];
      std::copy(starts, starts + kShards, cursor);
      for (const auto idx : scratch.pending) {
        scratch.grouped[cursor[shard_of(items[idx].digest)]++] = idx;
      }
    }

    std::size_t fresh = 0;
    for (std::size_t s = 0; s < kShards; ++s) {
      if (counts[s] == 0) continue;
      ++stats.groups;
      stats.grouped_items += counts[s];
      Shard& shard = shards_[s];
      std::unique_lock<std::mutex> lock(shard.mu, std::defer_lock);
      if (concurrent_) lock.lock();
      // Prefetch the group's home index slots under the lock (the index
      // array may be swapped by a concurrent grow, so touching it outside
      // the lock would race); the probe loop below then finds them warm.
      for (std::uint32_t g = starts[s]; g < starts[s + 1]; ++g) {
        const auto& it = items[scratch.grouped[g]];
        prefetch_read(&shard.index_vals[index_slot(shard, it.digest)]);
        prefetch_read(&shard.index_keys[index_slot(shard, it.digest)]);
      }
      for (std::uint32_t g = starts[s]; g < starts[s + 1]; ++g) {
        const std::uint32_t idx = scratch.grouped[g];
        const auto& it = items[idx];
        std::uint32_t* fast_slot =
            fast_ != nullptr ? &fast_[fast_index(it.digest)] : nullptr;
        results[idx] = intern_locked(
            shard, states + it.state_index * procs_, it.digest, it.parent,
            fired + it.fired_ofs, it.fired_len, it.depth, it.exponent, arena,
            fast_slot, /*bump_total=*/false);
        if (results[idx].inserted) ++fresh;
      }
    }
    if (fresh > 0) total_.fetch_add(fresh, std::memory_order_relaxed);
    return stats;
  }

  [[nodiscard]] std::span<const P> state(Id id) const {
    const Shard& shard = shards_[id & (kShards - 1)];
    return {slot(shard, id >> kShardBits), procs_};
  }

  [[nodiscard]] Id parent(Id id) const {
    return shards_[id & (kShards - 1)].parents[id >> kShardBits];
  }

  [[nodiscard]] std::span<const std::uint32_t> fired(Id id) const {
    const Shard& shard = shards_[id & (kShards - 1)];
    const std::uint32_t ofs = shard.fired_offsets[id >> kShardBits];
    return {shard.fired_arena.data() + ofs + 1, shard.fired_arena[ofs]};
  }

  [[nodiscard]] std::uint64_t digest_of(Id id) const {
    return shards_[id & (kShards - 1)].digests[id >> kShardBits];
  }

  /// Symmetry-group exponent recorded at first insertion: the stored
  /// canonical state is g^exponent(raw state discovered).
  [[nodiscard]] std::uint32_t exponent(Id id) const {
    return shards_[id & (kShards - 1)].exponents[id >> kShardBits];
  }

  /// Discovery depth (safe concurrently for published ids).
  [[nodiscard]] std::uint32_t depth(Id id) const {
    return depth_slot(shards_[id & (kShards - 1)], id >> kShardBits)
        .load(std::memory_order_relaxed);
  }

  /// CAS-min on the recorded depth. Returns true iff `depth` was strictly
  /// smaller and is now stored — the work-stealing scheduler re-expands the
  /// state in that case, so final depths equal true BFS depths regardless
  /// of discovery order.
  bool try_improve_depth(Id id, std::uint32_t depth) {
    auto& slot = depth_slot(shards_[id & (kShards - 1)], id >> kShardBits);
    std::uint32_t cur = slot.load(std::memory_order_relaxed);
    while (depth < cur) {
      if (slot.compare_exchange_weak(cur, depth, std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  /// Largest recorded depth (post-join; the BFS diameter on clean runs).
  [[nodiscard]] std::uint32_t max_depth() const {
    std::uint32_t best = 0;
    for (const auto& shard : shards_) {
      for (std::size_t local = 0; local < shard.count; ++local) {
        best = std::max(best,
                        depth_slot(shard, static_cast<std::uint32_t>(local))
                            .load(std::memory_order_relaxed));
      }
    }
    return best;
  }

  /// Total interned states. Relaxed: exact after a synchronization point,
  /// approximate (monotone lower bound) while workers are interning.
  [[nodiscard]] std::size_t size() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t procs() const noexcept { return procs_; }

  /// Every interned id, shard-major. Stable post-run enumeration order.
  [[nodiscard]] std::vector<Id> all_ids() const {
    std::vector<Id> out;
    out.reserve(size());
    for (std::size_t sh = 0; sh < kShards; ++sh) {
      for (std::size_t local = 0; local < shards_[sh].count; ++local) {
        out.push_back(make_id(sh, static_cast<std::uint32_t>(local)));
      }
    }
    return out;
  }

  /// Sorted digests of every interned state — the canonical fingerprint
  /// used to compare two explorations state-set for state-set.
  [[nodiscard]] std::vector<std::uint64_t> sorted_digests() const {
    std::vector<std::uint64_t> out;
    out.reserve(size());
    for (const auto& shard : shards_) {
      out.insert(out.end(), shard.digests.begin(), shard.digests.end());
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  static constexpr std::uint32_t kNoLocal = 0xffffffffu;
  static constexpr std::size_t kInitialIndexSlots = 64;

  /// Padded to cache lines: neighbouring shards' mutexes and hot counters
  /// must not share a line, or uncontended interns ping-pong it.
  struct alignas(64) Shard {
    std::mutex mu;
    // digest -> newest local + 1 (0 = empty), open addressing.
    std::vector<std::uint64_t> index_keys;
    std::vector<std::uint32_t> index_vals;
    std::size_t index_mask = 0;
    std::size_t index_used = 0;
    std::vector<std::uint32_t> collision_next;  ///< older state, same digest
    /// Per-state blob pointers into the worker arenas, in kBlockStates
    /// blocks so the spine (reserved up front) never moves under a reader.
    std::vector<std::unique_ptr<const P*[]>> ptr_blocks;
    std::vector<std::unique_ptr<std::atomic<std::uint32_t>[]>> depth_blocks;
    std::vector<std::uint64_t> digests;
    std::vector<Id> parents;
    std::vector<std::uint32_t> exponents;
    std::vector<std::uint32_t> fired_offsets;  ///< into fired_arena: [count, a...]
    std::vector<std::uint32_t> fired_arena;
    std::size_t count = 0;
  };

  [[nodiscard]] static constexpr std::size_t shard_of(std::uint64_t digest) noexcept {
    return digest & (kShards - 1);
  }
  [[nodiscard]] static constexpr Id make_id(std::size_t shard,
                                            std::uint32_t local) noexcept {
    return (local << kShardBits) | static_cast<Id>(shard);
  }
  [[nodiscard]] const P* slot(const Shard& shard, std::uint32_t local) const {
    return shard.ptr_blocks[local / kBlockStates][local % kBlockStates];
  }
  [[nodiscard]] static std::atomic<std::uint32_t>& depth_slot(
      const Shard& shard, std::uint32_t local) {
    return shard.depth_blocks[local / kBlockStates][local % kBlockStates];
  }

  /// Lock-free duplicate probe. On a byte-equal hit fills `out` and returns
  /// true; otherwise leaves `fast_slot` pointing at the slot to publish to.
  bool probe_fast(const P* s, std::uint64_t digest, std::uint32_t*& fast_slot,
                  InternResult& out) const {
    if (fast_ == nullptr) return false;
    fast_slot = &fast_[fast_index(digest)];
    const std::uint32_t cached =
        std::atomic_ref<std::uint32_t>(*fast_slot).load(
            std::memory_order_acquire);
    if (cached == 0) return false;
    const Id cand = cached - 1;
    const Shard& shard = shards_[cand & (kShards - 1)];
    if (std::memcmp(slot(shard, cand >> kShardBits), s, state_bytes_) != 0) {
      return false;
    }
    out = {cand, false, true};
    return true;
  }

  /// Probe-or-insert under the (already held, in concurrent mode) shard
  /// lock. Blob bytes for fresh states are bump-allocated from `arena` and
  /// copied before the digest -> id mapping becomes visible, so a reader
  /// that finds the id (via the index after the lock is released, or the
  /// fast slot's release store) always sees complete bytes.
  InternResult intern_locked(Shard& shard, const P* s, std::uint64_t digest,
                             Id parent, const std::uint32_t* fired,
                             std::uint32_t fired_len, std::uint32_t depth,
                             std::uint32_t exponent, StateArena<P>& arena,
                             std::uint32_t* fast_slot, bool bump_total = true) {
    // Open-addressing digest index (linear probing, power-of-two, grown at
    // ~70% load): the hot intern path must not pay a node allocation and a
    // bucket-chain walk per fresh state the way an unordered_map does.
    std::size_t probe = index_slot(shard, digest);
    while (shard.index_vals[probe] != 0) {
      if (shard.index_keys[probe] == digest) break;
      probe = (probe + 1) & shard.index_mask;
    }
    const bool fresh = shard.index_vals[probe] == 0;
    for (std::uint32_t local = fresh ? kNoLocal : shard.index_vals[probe] - 1;
         local != kNoLocal; local = shard.collision_next[local]) {
      if (std::memcmp(slot(shard, local), s, state_bytes_) == 0) {
        const Id found = make_id(shard_of(digest), local);
        if (fast_slot != nullptr) {
          std::atomic_ref<std::uint32_t>(*fast_slot).store(
              found + 1, std::memory_order_release);
        }
        return {found, false, false};
      }
    }
    const auto local = static_cast<std::uint32_t>(shard.count);
    if (local % kBlockStates == 0) {
      // for_overwrite: zero-filling the blocks would cost more than the
      // ~20 states a shard typically holds on small instances. Every
      // pointer and depth is fully written before its id is published.
      shard.ptr_blocks.push_back(
          std::make_unique_for_overwrite<const P*[]>(kBlockStates));
      shard.depth_blocks.push_back(
          std::make_unique_for_overwrite<std::atomic<std::uint32_t>[]>(
              kBlockStates));
    }
    P* blob = arena.alloc();
    std::memcpy(blob, s, state_bytes_);
    shard.ptr_blocks[local / kBlockStates][local % kBlockStates] = blob;
    depth_slot(shard, local).store(depth, std::memory_order_relaxed);
    shard.digests.push_back(digest);
    shard.parents.push_back(parent);
    shard.exponents.push_back(exponent);
    shard.fired_offsets.push_back(static_cast<std::uint32_t>(shard.fired_arena.size()));
    shard.fired_arena.push_back(fired_len);
    shard.fired_arena.insert(shard.fired_arena.end(), fired, fired + fired_len);
    shard.collision_next.push_back(fresh ? kNoLocal
                                         : shard.index_vals[probe] - 1);
    shard.index_keys[probe] = digest;
    shard.index_vals[probe] = local + 1;
    if (fresh && ++shard.index_used * 10 >= shard.index_mask * 7) {
      grow_index(shard);
    }
    ++shard.count;
    if (bump_total) total_.fetch_add(1, std::memory_order_relaxed);
    const Id id = make_id(shard_of(digest), local);
    if (fast_slot != nullptr) {
      // Publish AFTER the blob bytes, pointer and depth: the release pairs
      // with the fast path's acquire, so a fast-path reader sees complete
      // bytes.
      std::atomic_ref<std::uint32_t>(*fast_slot).store(
          id + 1, std::memory_order_release);
    }
    return {id, true, false};
  }

  /// Home slot in the shard's open-addressing index. The shard id consumed
  /// the digest's low bits; the multiply redistributes the rest.
  [[nodiscard]] static std::size_t index_slot(const Shard& shard,
                                              std::uint64_t digest) noexcept {
    return (digest * 0x9e3779b97f4a7c15ULL >> 32) & shard.index_mask;
  }
  /// Doubles a shard's index and re-inserts every key (caller holds the
  /// shard mutex in concurrent mode; the index is never read lock-free).
  static void grow_index(Shard& shard) {
    const std::size_t cap = 2 * (shard.index_mask + 1);
    std::vector<std::uint64_t> keys(cap);
    std::vector<std::uint32_t> vals(cap, 0);
    const std::size_t mask = cap - 1;
    for (std::size_t i = 0; i <= shard.index_mask; ++i) {
      if (shard.index_vals[i] == 0) continue;
      std::size_t probe =
          (shard.index_keys[i] * 0x9e3779b97f4a7c15ULL >> 32) & mask;
      while (vals[probe] != 0) probe = (probe + 1) & mask;
      keys[probe] = shard.index_keys[i];
      vals[probe] = shard.index_vals[i];
    }
    shard.index_keys = std::move(keys);
    shard.index_vals = std::move(vals);
    shard.index_mask = mask;
  }
  /// Fibonacci-hash the digest into the fast table (the shard index already
  /// consumed the low bits; the multiply redistributes the rest).
  [[nodiscard]] std::size_t fast_index(std::uint64_t digest) const noexcept {
    return (digest * 0x9e3779b97f4a7c15ULL) >> (64 - fast_bits_);
  }

  std::size_t procs_;
  std::size_t state_bytes_;
  bool concurrent_;
  unsigned fast_bits_ = 0;
  struct FreeDeleter {
    void operator()(void* p) const noexcept { std::free(p); }
  };
  std::unique_ptr<std::uint32_t[], FreeDeleter> fast_;  ///< id+1 slots; 0 empty
  std::atomic<std::size_t> total_{0};
  std::vector<StateArena<P>> arenas_;
  Shard shards_[kShards];
};

}  // namespace ftbar::check
