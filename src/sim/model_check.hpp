// Exhaustive state-space exploration for small instances of the paper's
// guarded-command programs. Used by the test suite to machine-check the
// lemmas of Sections 3-5 (safety invariants, closure of the legitimate
// state set, and convergence back to it) instead of trusting sampled runs.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/action.hpp"

namespace ftbar::sim {

/// Result of an exploration. `violation` holds the first state failing the
/// invariant (if any); `truncated` is set when max_states was hit.
template <class P>
struct ExploreResult {
  std::size_t states_visited = 0;
  std::optional<std::vector<P>> violation;
  std::string violated_by;  ///< action that produced the violating state.
  bool truncated = false;
};

/// Breadth-first exploration of all states reachable from `initial` via the
/// interleaving semantics (one action per transition). `Hash` must hash a
/// whole-system state; P needs operator==.
template <class P, class Hash>
class Explorer {
 public:
  using State = std::vector<P>;

  Explorer(std::vector<Action<P>> actions, Hash hash, std::size_t max_states = 2'000'000)
      : actions_(std::move(actions)), hash_(hash), max_states_(max_states) {}

  /// Explores from every state in `roots`; stops early on the first state
  /// violating `invariant` (pass an always-true predicate to just collect).
  ExploreResult<P> explore(const std::vector<State>& roots,
                           const std::function<bool(const State&)>& invariant) {
    seen_.clear();
    order_.clear();
    edges_.clear();
    ExploreResult<P> result;
    std::deque<std::size_t> frontier;
    for (const auto& root : roots) {
      if (!invariant(root)) {
        result.violation = root;
        result.violated_by = "<initial>";
        result.states_visited = order_.size();
        return result;
      }
      if (auto id = intern(root)) frontier.push_back(*id);
    }
    while (!frontier.empty()) {
      if (order_.size() >= max_states_) {
        result.truncated = true;
        break;
      }
      const auto id = frontier.front();
      frontier.pop_front();
      const State current = order_[id];  // copy: order_ may reallocate below
      for (const auto& action : actions_) {
        if (!action.enabled(current)) continue;
        State next = current;
        action.apply(next);
        // Intern and record the edge BEFORE the violation early-return, so
        // the transition graph handed to legit_reachable_from_all() /
        // converges_outside() contains the final (violating) transition
        // instead of silently omitting it.
        const auto nid = intern(next);
        edges_[id].push_back(id_of(next));
        if (!invariant(next)) {
          result.violation = next;
          result.violated_by = action.name;
          result.states_visited = order_.size();
          return result;
        }
        if (nid) frontier.push_back(*nid);
      }
    }
    result.states_visited = order_.size();
    return result;
  }

  /// All distinct states seen by the last explore().
  [[nodiscard]] const std::vector<State>& states() const noexcept { return order_; }

  /// True iff from every reachable state some state satisfying `legit` is
  /// reachable (possibility of convergence; inevitability under fairness is
  /// checked separately with no_cycle_outside()).
  [[nodiscard]] bool legit_reachable_from_all(
      const std::function<bool(const State&)>& legit) const {
    // Reverse-BFS from legit states over reversed edges.
    std::vector<char> ok(order_.size(), 0);
    std::deque<std::size_t> frontier;
    for (std::size_t i = 0; i < order_.size(); ++i) {
      if (legit(order_[i])) {
        ok[i] = 1;
        frontier.push_back(i);
      }
    }
    // Build reverse adjacency.
    std::vector<std::vector<std::size_t>> rev(order_.size());
    for (const auto& [from, tos] : edges_) {
      for (auto to : tos) rev[to].push_back(from);
    }
    while (!frontier.empty()) {
      const auto v = frontier.front();
      frontier.pop_front();
      for (auto u : rev[v]) {
        if (!ok[u]) {
          ok[u] = 1;
          frontier.push_back(u);
        }
      }
    }
    for (std::size_t i = 0; i < order_.size(); ++i) {
      if (!ok[i]) return false;
    }
    return true;
  }

  /// True iff the transition graph restricted to non-legit states is acyclic
  /// and has no terminal (deadlocked) non-legit state — a sufficient
  /// condition for convergence under ANY (even unfair) scheduling.
  [[nodiscard]] bool converges_outside(
      const std::function<bool(const State&)>& legit) const {
    const std::size_t n = order_.size();
    std::vector<char> is_legit(n, 0);
    for (std::size_t i = 0; i < n; ++i) is_legit[i] = legit(order_[i]) ? 1 : 0;
    // Deadlock check: a non-legit state with no outgoing edges never recovers.
    for (std::size_t i = 0; i < n; ++i) {
      if (is_legit[i]) continue;
      auto it = edges_.find(i);
      if (it == edges_.end() || it->second.empty()) return false;
    }
    // Cycle check among non-legit states (iterative DFS, colors).
    std::vector<char> color(n, 0);  // 0 white, 1 gray, 2 black
    for (std::size_t s = 0; s < n; ++s) {
      if (is_legit[s] || color[s] != 0) continue;
      std::vector<std::pair<std::size_t, std::size_t>> stack{{s, 0}};
      color[s] = 1;
      while (!stack.empty()) {
        const auto v = stack.back().first;
        const auto it = edges_.find(v);
        const auto& out = it == edges_.end() ? empty_ : it->second;
        if (stack.back().second < out.size()) {
          const auto w = out[stack.back().second++];
          if (is_legit[w]) continue;        // edges into legit states are fine
          if (color[w] == 1) return false;  // back edge: cycle outside legit
          if (color[w] == 0) {
            color[w] = 1;
            stack.emplace_back(w, 0);
          }
          continue;
        }
        color[v] = 2;
        stack.pop_back();
      }
    }
    return true;
  }

 private:
  std::optional<std::size_t> intern(const State& s) {
    const auto key = hash_(s);
    auto [it, inserted] = seen_.emplace(key, std::vector<std::size_t>{});
    for (auto id : it->second) {
      if (order_[id] == s) return std::nullopt;  // already present
    }
    const auto id = order_.size();
    order_.push_back(s);
    it->second.push_back(id);
    return id;
  }

  std::size_t id_of(const State& s) const {
    const auto it = seen_.find(hash_(s));
    if (it != seen_.end()) {
      for (auto id : it->second) {
        if (order_[id] == s) return id;
      }
    }
    // Every caller interns `s` first, so a miss means the store is
    // corrupted; fail hard instead of returning a poisoned sentinel that
    // would index out of bounds much later.
    std::abort();
  }

  std::vector<Action<P>> actions_;
  Hash hash_;
  std::size_t max_states_;
  std::unordered_map<std::size_t, std::vector<std::size_t>> seen_;
  std::vector<State> order_;
  std::unordered_map<std::size_t, std::vector<std::size_t>> edges_;
  std::vector<std::size_t> empty_;
};

}  // namespace ftbar::sim
