// Reference implementation of the untimed step engine: full guard scan on
// every step and a full state copy per executing process, exactly as the
// original (pre-incremental) engine worked. It is deliberately naive —
// O(|actions|) guard evaluations per step and O(N) state copies per
// max-parallel step — and consumes randomness in the same order as
// StepEngine, so the two must produce bit-identical trajectories from the
// same seed. Kept as the oracle for the engine-equivalence tests and as
// the baseline for bench_sim_engine's incremental-vs-full-scan cases; not
// for production use.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/action.hpp"
#include "util/rng.hpp"

namespace ftbar::sim {

template <class P>
class ReferenceStepEngine {
 public:
  using State = std::vector<P>;

  ReferenceStepEngine(State initial, std::vector<Action<P>> actions, util::Rng rng,
                      bool max_parallel)
      : state_(std::move(initial)),
        actions_(std::move(actions)),
        rng_(rng),
        max_parallel_(max_parallel) {}

  [[nodiscard]] const State& state() const noexcept { return state_; }
  [[nodiscard]] State& mutable_state() noexcept { return state_; }
  [[nodiscard]] std::size_t steps_taken() const noexcept { return steps_; }

  std::size_t step() { return max_parallel_ ? step_max_parallel() : step_interleaving(); }

 private:
  [[nodiscard]] std::vector<std::size_t> enabled() const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < actions_.size(); ++i) {
      if (actions_[i].enabled(state_)) out.push_back(i);
    }
    return out;
  }

  std::size_t step_interleaving() {
    const auto en = enabled();
    if (en.empty()) return 0;
    const auto pick = en[rng_.uniform(en.size())];
    actions_[pick].apply(state_);
    ++steps_;
    return 1;
  }

  std::size_t step_max_parallel() {
    const State pre = state_;
    std::vector<std::vector<std::size_t>> per_proc(pre.size());
    bool any = false;
    for (std::size_t i = 0; i < actions_.size(); ++i) {
      if (actions_[i].enabled(pre)) {
        per_proc[static_cast<std::size_t>(actions_[i].process)].push_back(i);
        any = true;
      }
    }
    if (!any) return 0;
    State next = pre;
    std::size_t executed = 0;
    for (std::size_t p = 0; p < per_proc.size(); ++p) {
      if (per_proc[p].empty()) continue;
      const auto pick = per_proc[p][rng_.uniform(per_proc[p].size())];
      // A fresh copy of the pre-state per executing process, so reads of
      // other processes see the state at the start of the step.
      State scratch = pre;
      actions_[pick].apply(scratch);
      next[p] = scratch[p];
      ++executed;
    }
    state_ = std::move(next);
    ++steps_;
    return executed;
  }

  State state_;
  std::vector<Action<P>> actions_;
  util::Rng rng_;
  bool max_parallel_;
  std::size_t steps_ = 0;
};

}  // namespace ftbar::sim
