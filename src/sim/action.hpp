// Guarded-command actions, the unit of computation in the paper's model.
//
// A program is a set of processes, each a finite set of actions
//     (name) :: (guard) -> (statement)
// where the guard is a boolean expression over the variables of that and
// possibly other processes, and the statement updates zero or more
// variables of that process (paper, Section 2).
//
// We represent the whole-system state as std::vector<P> where P is the
// per-process record for the protocol at hand (e.g. {sn, cp, ph}). An
// action's guard may read the entire vector; its statement must, by
// convention, write only element `process` — the maximal-parallel engine
// relies on this to merge simultaneous statements.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace ftbar::sim {

template <class P>
struct Action {
  using State = std::vector<P>;

  std::string name;   ///< e.g. "CB1@3" — unique per (rule, process).
  int process;        ///< owning process index; the only index `apply` may write.
  std::function<bool(const State&)> guard;
  std::function<void(State&)> apply;

  [[nodiscard]] bool enabled(const State& s) const { return guard(s); }
};

/// Convenience builder keeping action definitions terse at call sites.
template <class P>
Action<P> make_action(std::string name, int process,
                      std::function<bool(const std::vector<P>&)> guard,
                      std::function<void(std::vector<P>&)> apply) {
  return Action<P>{std::move(name), process, std::move(guard), std::move(apply)};
}

}  // namespace ftbar::sim
