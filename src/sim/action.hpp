// Guarded-command actions, the unit of computation in the paper's model.
//
// A program is a set of processes, each a finite set of actions
//     (name) :: (guard) -> (statement)
// where the guard is a boolean expression over the variables of that and
// possibly other processes, and the statement updates zero or more
// variables of that process (paper, Section 2).
//
// We represent the whole-system state as std::vector<P> where P is the
// per-process record for the protocol at hand (e.g. {sn, cp, ph}). An
// action's guard may read the entire vector; its statement must, by
// convention, write only element `process` — the maximal-parallel engine
// relies on this to merge simultaneous statements.
//
// Read-sets. An action may additionally DECLARE the set of process indices
// its guard reads (`reads`). The step engine uses this to re-evaluate a
// guard only when a declared-read process was written in the previous step
// (incremental enabled-set maintenance). The contract is:
//
//   * if `reads` is non-empty, the guard's value may depend only on the
//     state of the listed processes (the owner should be listed too when
//     the guard reads it — it almost always does);
//   * if `reads` is empty, nothing is declared and the engine falls back to
//     re-evaluating the guard on every step (full-scan mode), so existing
//     action builders keep working until they are annotated.
//
// Statements are NOT constrained by `reads`: a statement may read any
// process (it always sees the pre-state of the step) — only guard reads
// matter for enabled-set maintenance.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace ftbar::sim {

template <class P>
struct Action {
  using State = std::vector<P>;

  std::string name;   ///< e.g. "CB1@3" — unique per (rule, process).
  int process;        ///< owning process index; the only index `apply` may write.
  std::function<bool(const State&)> guard;
  std::function<void(State&)> apply;
  /// Declared guard read-set (process indices); empty = undeclared, the
  /// engine re-evaluates the guard every step.
  std::vector<int> reads;

  [[nodiscard]] bool enabled(const State& s) const { return guard(s); }
  [[nodiscard]] bool has_read_set() const noexcept { return !reads.empty(); }
};

/// Convenience builder keeping action definitions terse at call sites.
template <class P>
Action<P> make_action(std::string name, int process,
                      std::function<bool(const std::vector<P>&)> guard,
                      std::function<void(std::vector<P>&)> apply) {
  return Action<P>{std::move(name), process, std::move(guard), std::move(apply), {}};
}

/// Builder with a declared guard read-set (see the contract above).
template <class P>
Action<P> make_action(std::string name, int process, std::vector<int> reads,
                      std::function<bool(const std::vector<P>&)> guard,
                      std::function<void(std::vector<P>&)> apply) {
  return Action<P>{std::move(name), process, std::move(guard), std::move(apply),
                   std::move(reads)};
}

/// The full read-set {0..num_procs-1}, for guards that genuinely read every
/// process (e.g. CB's coarse-grain quantifiers). Declaring it is honest but
/// degenerates to full-scan cost for that action.
inline std::vector<int> all_reads(int num_procs) {
  std::vector<int> out(static_cast<std::size_t>(num_procs));
  for (int j = 0; j < num_procs; ++j) out[static_cast<std::size_t>(j)] = j;
  return out;
}

}  // namespace ftbar::sim
