// Fault environments for the untimed step engine.
//
// The paper represents each fault as an action that assigns either "reset"
// values (detectable fault) or nondeterministically chosen values from the
// variable domains (undetectable fault). A FaultEnv injects such fault
// actions between program steps, each process being hit independently with
// a fixed per-step probability — the discrete analogue of the fault
// frequency f of Section 6.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace ftbar::sim {

template <class P>
class FaultEnv {
 public:
  using Perturb = std::function<void(std::size_t, P&, util::Rng&)>;

  FaultEnv(double per_step_prob, Perturb perturb, util::Rng rng)
      : prob_(per_step_prob), perturb_(std::move(perturb)), rng_(rng) {}

  /// Visits every process; each is corrupted independently with the
  /// configured probability. Returns how many faults were injected.
  std::size_t maybe_inject(std::vector<P>& state) {
    std::size_t injected = 0;
    for (std::size_t i = 0; i < state.size(); ++i) {
      if (rng_.bernoulli(prob_)) {
        perturb_(i, state[i], rng_);
        ++injected;
      }
    }
    total_ += injected;
    return injected;
  }

  /// Unconditionally corrupts every process — used to start stabilization
  /// experiments from an arbitrary state.
  void perturb_all(std::vector<P>& state) {
    for (std::size_t i = 0; i < state.size(); ++i) perturb_(i, state[i], rng_);
    total_ += state.size();
  }

  /// Corrupts exactly one (randomly chosen) process.
  void perturb_one(std::vector<P>& state) {
    const auto i = rng_.uniform(state.size());
    perturb_(i, state[i], rng_);
    ++total_;
  }

  [[nodiscard]] std::size_t total_injected() const noexcept { return total_; }
  [[nodiscard]] util::Rng& rng() noexcept { return rng_; }

 private:
  double prob_;
  Perturb perturb_;
  util::Rng rng_;
  std::size_t total_ = 0;
};

}  // namespace ftbar::sim
