// Untimed execution engine for guarded-command programs.
//
// Two semantics are provided, mirroring the paper:
//  - kInterleaving: in every step one enabled action is chosen and its
//    statement executed atomically; randomized choice gives probabilistic
//    weak fairness (Section 2).
//  - kMaxParallel:  in every step EVERY process executes one of its enabled
//    actions unless all its actions are disabled (Section 6, "maximum
//    parallel semantics"). Statements of a step read the pre-state — the
//    standard synchronous interpretation — which is sound because a
//    statement writes only its own process's variables.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "sim/action.hpp"
#include "util/rng.hpp"

namespace ftbar::sim {

enum class Semantics { kInterleaving, kMaxParallel };

template <class P>
class StepEngine {
 public:
  using State = std::vector<P>;

  StepEngine(State initial, std::vector<Action<P>> actions, util::Rng rng,
             Semantics semantics = Semantics::kInterleaving)
      : state_(std::move(initial)),
        actions_(std::move(actions)),
        rng_(rng),
        semantics_(semantics) {}

  [[nodiscard]] const State& state() const noexcept { return state_; }
  [[nodiscard]] State& mutable_state() noexcept { return state_; }
  [[nodiscard]] const std::vector<Action<P>>& actions() const noexcept { return actions_; }
  [[nodiscard]] Semantics semantics() const noexcept { return semantics_; }
  [[nodiscard]] std::size_t steps_taken() const noexcept { return steps_; }

  /// Indices of currently enabled actions.
  [[nodiscard]] std::vector<std::size_t> enabled() const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < actions_.size(); ++i) {
      if (actions_[i].enabled(state_)) out.push_back(i);
    }
    return out;
  }

  /// Executes one step under the configured semantics. Returns the number
  /// of actions executed (0 means the program is quiescent / deadlocked).
  std::size_t step() {
    return semantics_ == Semantics::kInterleaving ? step_interleaving()
                                                  : step_max_parallel();
  }

  /// Runs until quiescent or `max_steps` steps elapse; returns steps run.
  std::size_t run(std::size_t max_steps) {
    std::size_t n = 0;
    while (n < max_steps && step() > 0) ++n;
    return n;
  }

  /// Runs until `pred(state)` holds, quiescence, or the step bound.
  /// Returns the number of steps taken if the predicate was reached.
  template <class Pred>
  std::optional<std::size_t> run_until(Pred&& pred, std::size_t max_steps) {
    for (std::size_t n = 0; n <= max_steps; ++n) {
      if (pred(state_)) return n;
      if (step() == 0) break;
    }
    return pred(state_) ? std::optional<std::size_t>(max_steps) : std::nullopt;
  }

 private:
  std::size_t step_interleaving() {
    const auto en = enabled();
    if (en.empty()) return 0;
    const auto pick = en[rng_.uniform(en.size())];
    actions_[pick].apply(state_);
    ++steps_;
    return 1;
  }

  std::size_t step_max_parallel() {
    // Group enabled actions by process against the pre-state.
    const State pre = state_;
    std::vector<std::vector<std::size_t>> per_proc(pre.size());
    bool any = false;
    for (std::size_t i = 0; i < actions_.size(); ++i) {
      if (actions_[i].enabled(pre)) {
        per_proc[static_cast<std::size_t>(actions_[i].process)].push_back(i);
        any = true;
      }
    }
    if (!any) return 0;
    State next = pre;
    std::size_t executed = 0;
    for (std::size_t p = 0; p < per_proc.size(); ++p) {
      if (per_proc[p].empty()) continue;
      const auto pick = per_proc[p][rng_.uniform(per_proc[p].size())];
      // Run the statement against a copy of the pre-state so that reads of
      // other processes see the state at the start of the step, then keep
      // only the owner's writes.
      State scratch = pre;
      actions_[pick].apply(scratch);
      next[p] = scratch[p];
      ++executed;
    }
    state_ = std::move(next);
    ++steps_;
    return executed;
  }

  State state_;
  std::vector<Action<P>> actions_;
  util::Rng rng_;
  Semantics semantics_;
  std::size_t steps_ = 0;
};

}  // namespace ftbar::sim
