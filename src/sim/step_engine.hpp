// Untimed execution engine for guarded-command programs.
//
// Two semantics are provided, mirroring the paper:
//  - kInterleaving: in every step one enabled action is chosen and its
//    statement executed atomically; randomized choice gives probabilistic
//    weak fairness (Section 2).
//  - kMaxParallel:  in every step EVERY process executes one of its enabled
//    actions unless all its actions are disabled (Section 6, "maximum
//    parallel semantics"). Statements of a step read the pre-state — the
//    standard synchronous interpretation — which is sound because a
//    statement writes only its own process's variables.
//
// Performance model. The engine maintains the enabled set incrementally:
// at construction it inverts the actions' declared read-sets into a
// process -> dependent-actions index (sim/read_index.hpp, shared with the
// checker's successor generator), and after each step re-evaluates only
// the guards whose read-set intersects the processes written in that step.
// Actions without a declared read-set are re-evaluated every step (the
// full-scan fallback), so unannotated programs remain correct, just slower.
// External state mutation through mutable_state() conservatively invalidates
// the whole enabled set.
//
// The maximal-parallel step is copy-free: instead of cloning the entire
// system state once per executing process, the engine keeps a second state
// buffer (`next_`). Each chosen statement runs against the pre-state buffer
// in place — saving and restoring its owner's slot, which is the only slot
// it is allowed to write — and its result is harvested into the next-state
// buffer. The buffers are swapped at the end of the step and reused, never
// reallocated. This tightens the write-ownership convention into a hard
// requirement: a statement that writes a slot other than `process` is
// undefined behaviour under kMaxParallel (the seed engine silently
// discarded such writes). Debug builds trap the violation instead of
// discarding it — each apply is checked against a pre-state snapshot and
// the engine aborts naming the action and the foreign slot; Release keeps
// the copy-free fast path untouched. Setting FTBAR_AUDIT_DEBUG=1 in a
// debug build additionally audits the whole action system's declared
// contracts at construction (audit/debug_hook.hpp).
//
// Determinism: for a given action list, seed and semantics, the engine
// consumes randomness exactly like a naive full-scan/full-copy engine
// (candidates are always collected in ascending action-index order), so
// state trajectories are bit-identical to the reference implementation —
// tests/sim_step_engine_test.cpp asserts this for CB, RB and MB.
//
// Tracing. set_sink() attaches a trace::Sink; each executed action then
// emits a kActionFired event (time = step ordinal, a = action index) and,
// when trace_guards(true) is also set, every guard (re)evaluation emits
// kGuardEval. Emission sits behind a null check of the sink pointer; the
// TraceCapable template parameter additionally lets a caller compile the
// instrumentation out altogether (StepEngine<P, false>), which is the
// baseline the trace-overhead guard in bench/ compares against. Tracing
// never touches the RNG, so traced, trace-disabled and trace-incapable
// engines all follow bit-identical trajectories.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "sim/action.hpp"
#include "sim/read_index.hpp"
#include "trace/sink.hpp"
#include "util/rng.hpp"

#ifndef NDEBUG
#include <cstdio>
#include <cstdlib>

#include "audit/debug_hook.hpp"
#endif

namespace ftbar::sim {

enum class Semantics { kInterleaving, kMaxParallel };

template <class P, bool TraceCapable = true>
class StepEngine {
 public:
  using State = std::vector<P>;

  StepEngine(State initial, std::vector<Action<P>> actions, util::Rng rng,
             Semantics semantics = Semantics::kInterleaving)
      : state_(std::move(initial)),
        actions_(std::move(actions)),
        rng_(rng),
        semantics_(semantics) {
    idx_ = build_read_index(actions_, state_.size());
    enabled_flag_.assign(actions_.size(), 0);
    eval_epoch_.assign(actions_.size(), 0);
    proc_enabled_count_.assign(state_.size(), 0);
    full_rescan_ = true;
#ifndef NDEBUG
    // Opt-in construction-time contract audit (FTBAR_AUDIT_DEBUG=1): catch
    // an unsound read-set, foreign write or impure guard before it becomes
    // a silently wrong trajectory. See audit/debug_hook.hpp.
    if (audit::debug_audit_enabled()) {
      audit::debug_enforce(actions_, state_.size(), state_, "sim::StepEngine");
    }
#endif
  }

  [[nodiscard]] const State& state() const noexcept { return state_; }
  /// Mutable access for fault injection / test setup. Any out-of-band write
  /// may flip any guard, so the cached enabled set is invalidated wholesale.
  [[nodiscard]] State& mutable_state() noexcept {
    full_rescan_ = true;
    return state_;
  }
  [[nodiscard]] const std::vector<Action<P>>& actions() const noexcept { return actions_; }
  [[nodiscard]] Semantics semantics() const noexcept { return semantics_; }
  [[nodiscard]] std::size_t steps_taken() const noexcept { return steps_; }

  /// Attaches (or detaches, with nullptr) a trace sink. No-op when the
  /// engine was instantiated with TraceCapable = false.
  void set_sink(trace::Sink* sink) noexcept {
    if constexpr (TraceCapable) sink_ = sink;
  }
  [[nodiscard]] trace::Sink* sink() const noexcept {
    if constexpr (TraceCapable) return sink_;
    return nullptr;
  }
  /// Also emit kGuardEval events (high volume; off by default).
  void trace_guards(bool on) noexcept {
    if constexpr (TraceCapable) trace_guards_ = on;
  }

  /// Indices of currently enabled actions. Evaluates every guard against
  /// the current state — an inspection helper, not the engine's hot path.
  [[nodiscard]] std::vector<std::size_t> enabled() const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < actions_.size(); ++i) {
      if (actions_[i].enabled(state_)) out.push_back(i);
    }
    return out;
  }

  /// Number of guard evaluations performed so far (incremental-evaluation
  /// observability; a full-scan engine would evaluate |actions| per step).
  [[nodiscard]] std::size_t guard_evals() const noexcept { return guard_evals_; }

  /// Executes one step under the configured semantics. Returns the number
  /// of actions executed (0 means the program is quiescent / deadlocked).
  std::size_t step() {
    return semantics_ == Semantics::kInterleaving ? step_interleaving()
                                                  : step_max_parallel();
  }

  /// Runs until quiescent or `max_steps` steps elapse; returns steps run.
  std::size_t run(std::size_t max_steps) {
    std::size_t n = 0;
    while (n < max_steps && step() > 0) ++n;
    return n;
  }

  /// Runs until `pred(state)` holds, quiescence, or the step bound.
  /// Returns the number of steps actually taken when the predicate was
  /// reached (0 if it already held), std::nullopt otherwise. At most
  /// `max_steps` steps are executed.
  template <class Pred>
  std::optional<std::size_t> run_until(Pred&& pred, std::size_t max_steps) {
    for (std::size_t n = 0;; ++n) {
      if (pred(state_)) return n;
      if (n == max_steps || step() == 0) return std::nullopt;
    }
  }

 private:
  /// kActionFired for `i`, executed in the step currently numbered steps_.
  /// Only the null test lives inline; event construction is outlined so the
  /// disabled-tracing hot loops stay as tight as the untraced instantiation.
  void emit_fired(std::size_t i) noexcept {
    if constexpr (TraceCapable) {
      if (sink_ != nullptr) [[unlikely]] emit_fired_slow(i);
    }
  }

  [[gnu::noinline]] void emit_fired_slow(std::size_t i) noexcept {
    if constexpr (TraceCapable) {
      sink_->emit(trace::make_event(
          trace::Kind::kActionFired, static_cast<double>(steps_),
          actions_[i].process, static_cast<std::int64_t>(i), 0, 0,
          actions_[i].name.c_str()));
    }
  }

  /// kGuardEval for `i` (only when guard tracing is opted in).
  void emit_guard(std::size_t i, bool now) noexcept {
    if constexpr (TraceCapable) {
      if (sink_ != nullptr) [[unlikely]] emit_guard_slow(i, now);
    }
  }

  [[gnu::noinline]] void emit_guard_slow(std::size_t i, bool now) noexcept {
    if constexpr (TraceCapable) {
      if (!trace_guards_) return;
      sink_->emit(trace::make_event(
          trace::Kind::kGuardEval, static_cast<double>(steps_),
          actions_[i].process, static_cast<std::int64_t>(i), now ? 1 : 0));
    }
  }

  /// Brings enabled_flag_ (and the per-process enabled counts) up to date:
  /// full scan after external mutation, otherwise only full-scan-mode
  /// actions plus the dependents of the processes written last step.
  void refresh_enabled() {
    if (full_rescan_) {
      std::fill(proc_enabled_count_.begin(), proc_enabled_count_.end(), 0);
      for (std::size_t i = 0; i < actions_.size(); ++i) {
        const char now = actions_[i].enabled(state_) ? 1 : 0;
        emit_guard(i, now != 0);
        enabled_flag_[i] = now;
        proc_enabled_count_[static_cast<std::size_t>(actions_[i].process)] += now;
      }
      guard_evals_ += actions_.size();
      full_rescan_ = false;
      dirty_procs_.clear();
      return;
    }
    ++epoch_;
    for (const std::size_t i : idx_.fullscan_actions) {
      update_flag(i);
      ++guard_evals_;
    }
    for (const std::size_t p : dirty_procs_) {
      for (const std::size_t i : idx_.deps_by_proc[p]) {
        if (eval_epoch_[i] == epoch_) continue;  // already re-evaluated this step
        eval_epoch_[i] = epoch_;
        update_flag(i);
        ++guard_evals_;
      }
    }
    dirty_procs_.clear();
  }

  /// Re-evaluates one guard, keeping the owner's enabled count in sync.
  void update_flag(std::size_t i) {
    const char now = actions_[i].enabled(state_) ? 1 : 0;
    emit_guard(i, now != 0);
    if (now != enabled_flag_[i]) {
      enabled_flag_[i] = now;
      proc_enabled_count_[static_cast<std::size_t>(actions_[i].process)] +=
          now != 0 ? 1 : -1;
    }
  }

  std::size_t step_interleaving() {
    refresh_enabled();
    enabled_scratch_.clear();
    for (std::size_t i = 0; i < actions_.size(); ++i) {
      if (enabled_flag_[i]) enabled_scratch_.push_back(i);
    }
    if (enabled_scratch_.empty()) return 0;
    const auto pick = enabled_scratch_[rng_.uniform(enabled_scratch_.size())];
    emit_fired(pick);
#ifndef NDEBUG
    debug_pre_ = state_;
#endif
    actions_[pick].apply(state_);
#ifndef NDEBUG
    // A foreign write under interleaving desyncs dirty-slot tracking (only
    // the owner is marked dirty below), so trap it here too, not just in
    // the max-parallel merge.
    debug_check_foreign_writes(pick,
                               static_cast<std::size_t>(actions_[pick].process));
#endif
    dirty_procs_.push_back(static_cast<std::size_t>(actions_[pick].process));
    ++steps_;
    return 1;
  }

  std::size_t step_max_parallel() {
    // After last step's swap the buffers differ exactly at the slots that
    // executed (next_ still holds their pre-state values), so re-syncing is
    // O(executed), not O(N). External mutation desyncs unknown slots; the
    // first step starts with an empty next_ — both force the full copy
    // (element-wise into the persistent buffer; no steady-state allocation).
    if (full_rescan_) {
      next_ = state_;
    } else {
      for (const std::size_t p : dirty_procs_) next_[p] = state_[p];
    }
    refresh_enabled();
#ifndef NDEBUG
    debug_pre_ = state_;
#endif
    std::size_t executed = 0;
    for (std::size_t p = 0; p < proc_enabled_count_.size(); ++p) {
      const int enabled_here = proc_enabled_count_[p];
      if (enabled_here == 0) continue;
      // Draw the same uniform index a gathered candidate vector would get
      // (RNG parity), then rank-walk this process's actions — ascending
      // action index, matching a naive full scan — to the chosen one.
      auto r = rng_.uniform(static_cast<std::uint64_t>(enabled_here));
      std::size_t pick = 0;
      for (std::size_t k = idx_.proc_action_offsets[p];; ++k) {
        pick = idx_.proc_actions[k];
        if (enabled_flag_[pick] && r-- == 0) break;
      }
      // The statement reads the pre-state buffer and writes only slot p:
      // run it in place, harvest slot p into the next-state buffer, restore
      // the pre-state value so later statements of this step still read the
      // state at the start of the step.
      P saved = state_[p];
      emit_fired(pick);
      actions_[pick].apply(state_);
#ifndef NDEBUG
      // The merge below harvests only slot p: a write anywhere else would
      // be silently dropped (or leak into a later step through the reused
      // next_ buffer). Trap it instead of discarding it.
      debug_check_foreign_writes(pick, p);
#endif
      next_[p] = state_[p];
      state_[p] = std::move(saved);
      dirty_procs_.push_back(p);
      ++executed;
    }
    if (executed == 0) return 0;
    std::swap(state_, next_);
    ++steps_;
    return executed;
  }

#ifndef NDEBUG
  /// Compares every non-owner slot against the pre-apply snapshot
  /// (debug_pre_) and aborts, naming the action and slot, on a mismatch —
  /// the write-locality convention turned into a debug-build trap.
  void debug_check_foreign_writes(std::size_t pick, std::size_t owner) {
    for (std::size_t q = 0; q < state_.size(); ++q) {
      if (q == owner || state_[q] == debug_pre_[q]) continue;
      std::fprintf(stderr,
                   "StepEngine: action '%s' (owner %zu) wrote foreign slot "
                   "%zu; statements must write only their own process's "
                   "variables\n",
                   actions_[pick].name.c_str(), owner, q);
      std::abort();
    }
  }
#endif

  State state_;
  State next_;  ///< kMaxParallel double buffer; swapped with state_ each step
  std::vector<Action<P>> actions_;
  util::Rng rng_;
  Semantics semantics_;
  std::size_t steps_ = 0;
  std::size_t guard_evals_ = 0;

  // Incremental enabled-set machinery (the dependency index itself lives in
  // sim/read_index.hpp; ascending action index within each process's slice
  // is what the RNG-parity contract relies on).
  ReadIndex idx_;
  std::vector<char> enabled_flag_;        ///< per-action cached guard value
  std::vector<int> proc_enabled_count_;   ///< per-proc count of set flags
  std::vector<std::size_t> dirty_procs_;  ///< processes written last step
  std::vector<std::size_t> eval_epoch_;   ///< per-action dedup stamp
  std::size_t epoch_ = 0;
  bool full_rescan_ = true;

  // Reusable per-step scratch (allocation-free steady state).
  std::vector<std::size_t> enabled_scratch_;

#ifndef NDEBUG
  State debug_pre_;  ///< pre-apply snapshot for the foreign-write trap
#endif

  // Tracing (dormant — one null check per fired action — unless a sink is
  // installed; absent from the hot path entirely when !TraceCapable).
  trace::Sink* sink_ = nullptr;
  bool trace_guards_ = false;
};

}  // namespace ftbar::sim
