// Discrete-event simulation core: a time-ordered event queue with
// deterministic tie-breaking (FIFO among same-time events). Complements
// the untimed StepEngine: where the step engine explores semantics
// (interleaving / maximal parallelism), the event engine attaches REAL
// TIME to actions — communication latency c per hop, 1.0 per phase
// execution — for the Section 6.2 performance experiments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "trace/sink.hpp"

namespace ftbar::sim {

class EventEngine {
 public:
  using EventFn = std::function<void()>;

  /// Attaches a trace sink: each dispatched event emits kEventDispatch
  /// (time = simulated time, a = queue sequence number), which pins the
  /// dispatch order of a DES run for determinism checks.
  void set_sink(trace::Sink* sink) noexcept { sink_ = sink; }
  [[nodiscard]] trace::Sink* sink() const noexcept { return sink_; }

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t processed() const noexcept { return processed_; }

  /// Schedules `fn` to run `delay` time units from now (delay >= 0).
  void schedule(double delay, EventFn fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Schedules `fn` at an absolute time (>= now; earlier is clamped to now).
  void schedule_at(double time, EventFn fn) {
    queue_.push(Event{time < now_ ? now_ : time, next_seq_++, std::move(fn)});
  }

  /// Executes the earliest pending event; false when the queue is empty.
  bool step() {
    if (queue_.empty()) return false;
    // The queue is a max-heap on `later`, so top() is the earliest event.
    Event e = queue_.top();
    queue_.pop();
    now_ = e.time;
    ++processed_;
    if (sink_ != nullptr) {
      sink_->emit(trace::make_event(trace::Kind::kEventDispatch, now_, -1,
                                    static_cast<std::int64_t>(e.seq)));
    }
    e.fn();
    return true;
  }

  /// Runs events until the queue drains, simulated time passes `t_end`, or
  /// `max_events` fire. Events scheduled exactly at t_end still run.
  /// Returns the number of events executed.
  std::size_t run_until(double t_end,
                        std::size_t max_events = static_cast<std::size_t>(-1)) {
    std::size_t n = 0;
    while (n < max_events && !queue_.empty() && queue_.top().time <= t_end) {
      step();
      ++n;
    }
    return n;
  }

  /// Runs until `pred()` holds (checked after each event), the queue
  /// drains, or `max_events` fire. Returns true if the predicate held.
  template <class Pred>
  bool run_while_pending(Pred&& pred, std::size_t max_events) {
    for (std::size_t n = 0; n < max_events; ++n) {
      if (pred()) return true;
      if (!step()) break;
    }
    return pred();
  }

 private:
  struct Event {
    double time;
    std::uint64_t seq;  ///< FIFO tie-break for same-time events
    EventFn fn;
    bool operator<(const Event& other) const noexcept {
      // std::priority_queue is a max-heap; invert so the EARLIEST wins.
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
  trace::Sink* sink_ = nullptr;
};

}  // namespace ftbar::sim
