// Declared-read-set dependency index over an action system — the inversion
// that makes incremental guard evaluation possible.
//
// Built once per (action list, process count), the index answers two
// questions every incremental evaluator asks:
//
//  * "process p changed — which guards could have flipped?"
//    deps_by_proc[p] lists every action whose declared read-set contains p.
//    Actions without a (usable) read-set land in fullscan_actions and must
//    be re-evaluated on every refresh — unannotated programs stay correct,
//    just slower.
//  * "which actions does process p own?"  proc_actions[proc_action_offsets[p]
//    .. proc_action_offsets[p+1]) — counting-sorted so indices stay
//    ascending within a process, which the engine's RNG-parity contract and
//    the checker's successor-enumeration order both rely on.
//
// The index is immutable after construction and holds no reference to the
// actions, so one instance can be shared read-only across worker threads
// (the checker builds it once and hands a pointer to every per-worker
// SuccessorGen); StepEngine keeps a private copy.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/action.hpp"

namespace ftbar::sim {

struct ReadIndex {
  std::vector<std::vector<std::size_t>> deps_by_proc;  ///< proc -> dependent actions
  std::vector<std::size_t> fullscan_actions;  ///< actions without a usable read-set
  std::vector<std::size_t> proc_action_offsets;  ///< n+1 slice boundaries
  std::vector<std::size_t> proc_actions;         ///< concatenated ascending slices
  std::size_t num_actions = 0;
  std::size_t num_procs = 0;
};

/// Inverts declared read-sets into deps_by_proc, collects actions without
/// one (or with out-of-range entries) into the full-scan list, and builds
/// the flat proc -> own-actions index.
template <class P>
[[nodiscard]] ReadIndex build_read_index(const std::vector<Action<P>>& actions,
                                         std::size_t num_procs) {
  ReadIndex idx;
  idx.num_actions = actions.size();
  idx.num_procs = num_procs;
  idx.deps_by_proc.assign(num_procs, {});
  for (std::size_t i = 0; i < actions.size(); ++i) {
    bool indexed = actions[i].has_read_set();
    if (indexed) {
      for (const int p : actions[i].reads) {
        if (p < 0 || static_cast<std::size_t>(p) >= num_procs) {
          indexed = false;
          break;
        }
      }
    }
    if (!indexed) {
      idx.fullscan_actions.push_back(i);
      continue;
    }
    for (const int p : actions[i].reads) {
      idx.deps_by_proc[static_cast<std::size_t>(p)].push_back(i);
    }
  }
  // Counting sort of action indices by owning process.
  idx.proc_action_offsets.assign(num_procs + 1, 0);
  for (const auto& a : actions) {
    ++idx.proc_action_offsets[static_cast<std::size_t>(a.process) + 1];
  }
  for (std::size_t p = 0; p < num_procs; ++p) {
    idx.proc_action_offsets[p + 1] += idx.proc_action_offsets[p];
  }
  idx.proc_actions.resize(actions.size());
  {
    auto cursor = idx.proc_action_offsets;
    for (std::size_t i = 0; i < actions.size(); ++i) {
      idx.proc_actions[cursor[static_cast<std::size_t>(actions[i].process)]++] = i;
    }
  }
  return idx;
}

}  // namespace ftbar::sim
