#include "ext/fault_matrix.hpp"

#include <array>

namespace ftbar::ext {

std::string_view to_string(Detectability d) noexcept {
  return d == Detectability::kDetectable ? "detectable" : "undetectable";
}

std::string_view to_string(Correctability c) noexcept {
  switch (c) {
    case Correctability::kImmediate: return "immediately correctable";
    case Correctability::kEventual: return "eventually correctable";
    case Correctability::kUncorrectable: return "uncorrectable";
  }
  return "?";
}

std::string_view to_string(Tolerance t) noexcept {
  switch (t) {
    case Tolerance::kTriviallyMasking: return "trivially masking";
    case Tolerance::kMasking: return "masking";
    case Tolerance::kStabilizing: return "stabilizing";
    case Tolerance::kFailSafe: return "fail-safe";
    case Tolerance::kIntolerant: return "intolerant";
  }
  return "?";
}

Tolerance appropriate_tolerance(Detectability d, Correctability c) noexcept {
  switch (c) {
    case Correctability::kImmediate:
      // Correction is modeled simultaneously with occurrence: the fault
      // effectively does not exist, whatever its detectability.
      return Tolerance::kTriviallyMasking;
    case Correctability::kEventual:
      return d == Detectability::kDetectable ? Tolerance::kMasking
                                             : Tolerance::kStabilizing;
    case Correctability::kUncorrectable:
      return d == Detectability::kDetectable ? Tolerance::kFailSafe
                                             : Tolerance::kIntolerant;
  }
  return Tolerance::kIntolerant;
}

std::span<const FaultType> standard_fault_catalog() noexcept {
  // Classification per Section 2's detectable/undetectable lists and the
  // correctability discussion of Section 7.
  static constexpr std::array<FaultType, 16> kCatalog{{
      {"message loss", Detectability::kDetectable, Correctability::kEventual},
      {"detectable message corruption", Detectability::kDetectable,
       Correctability::kEventual},
      {"ECC-corrected message corruption", Detectability::kDetectable,
       Correctability::kImmediate},
      {"message duplication", Detectability::kDetectable, Correctability::kEventual},
      {"message reorder", Detectability::kDetectable, Correctability::kEventual},
      {"unexpected message reception", Detectability::kDetectable,
       Correctability::kEventual},
      {"processor fail-stop with repair", Detectability::kDetectable,
       Correctability::kEventual},
      {"processor reboot", Detectability::kDetectable, Correctability::kEventual},
      {"floating point exception", Detectability::kDetectable,
       Correctability::kEventual},
      {"I/O error", Detectability::kDetectable, Correctability::kEventual},
      {"permanent processor crash", Detectability::kDetectable,
       Correctability::kUncorrectable},
      {"undetectable message corruption", Detectability::kUndetectable,
       Correctability::kEventual},
      {"transient state corruption", Detectability::kUndetectable,
       Correctability::kEventual},
      {"memory leak", Detectability::kUndetectable, Correctability::kEventual},
      {"hanging process", Detectability::kUndetectable, Correctability::kEventual},
      {"Byzantine process", Detectability::kUndetectable,
       Correctability::kUncorrectable},
  }};
  return kCatalog;
}

}  // namespace ftbar::ext
