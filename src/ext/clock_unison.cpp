#include "ext/clock_unison.hpp"

#include <algorithm>
#include <set>

namespace ftbar::ext {

ClockUnison::ClockUnison(int num_procs, int bound, util::Rng rng)
    : options_{num_procs, bound},
      engine_(core::cb_start_state(options_), core::make_cb_actions(options_), rng,
              sim::Semantics::kInterleaving),
      last_clocks_(static_cast<std::size_t>(num_procs), 0),
      increments_(static_cast<std::size_t>(num_procs), 0) {}

std::vector<int> ClockUnison::clocks() const {
  std::vector<int> out;
  out.reserve(engine_.state().size());
  for (const auto& p : engine_.state()) out.push_back(p.ph);
  return out;
}

void ClockUnison::step() {
  engine_.step();
  const auto now = clocks();
  for (std::size_t j = 0; j < now.size(); ++j) {
    if (now[j] != last_clocks_[j]) ++increments_[j];
  }
  last_clocks_ = now;
  min_increments_ = *std::min_element(increments_.begin(), increments_.end());
}

bool ClockUnison::in_unison() const {
  std::set<int> values;
  for (const auto& p : engine_.state()) values.insert(p.ph);
  if (values.size() == 1) return true;
  if (values.size() != 2) return false;
  const core::PhaseRing ring(options_.num_phases);
  const int a = *values.begin();
  const int b = *std::next(values.begin());
  return ring.next(a) == b || ring.next(b) == a;
}

bool ClockUnison::legitimate() const {
  return core::cb_legitimate(engine_.state(), options_.num_phases);
}

void ClockUnison::perturb(util::Rng& rng) {
  const auto fault = core::cb_undetectable_fault(options_);
  for (std::size_t j = 0; j < engine_.mutable_state().size(); ++j) {
    fault(j, engine_.mutable_state()[j], rng);
  }
  last_clocks_ = clocks();
}

}  // namespace ftbar::ext
