// Fail-safe barrier (paper, Section 7, bottom-left of Table 1): when a
// fault is detectable but UNCORRECTABLE, Progress cannot be guaranteed, but
// Safety can — the barrier must never report a completion incorrectly.
//
// FailSafeBarrier wraps the intolerant tree pattern with a poison channel:
// a participant that detects an uncorrectable local fault poisons the
// group; every subsequent wait (and any wait that observes poison instead
// of its release) returns kFatal, permanently. A wait returns kCompleted
// only if every participant genuinely arrived un-poisoned — so a kCompleted
// verdict is always truthful, while a faulty run stalls into kFatal rather
// than lying.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "runtime/network.hpp"

namespace ftbar::ext {

enum class FailSafeResult {
  kCompleted,  ///< everyone arrived; the report is guaranteed correct
  kFatal,      ///< an uncorrectable fault was reported; the barrier is dead
  kTimeout,    ///< no completion observed (e.g. a peer stalled); safe stall
};

class FailSafeBarrier {
 public:
  explicit FailSafeBarrier(int num_threads, std::uint64_t seed = 0xfa11ULL);

  [[nodiscard]] int size() const noexcept { return num_threads_; }

  /// Participant `tid` arrives; `ok=false` reports an uncorrectable local
  /// fault. Blocks up to `timeout` for the episode to complete.
  FailSafeResult arrive_and_wait(int tid, bool ok = true,
                                 std::chrono::milliseconds timeout =
                                     std::chrono::milliseconds(1000));

  /// True once the barrier has been poisoned (any participant's view).
  [[nodiscard]] bool poisoned(int tid) const;

 private:
  void broadcast(int tid, int tag, std::uint64_t value);

  int num_threads_;
  std::unique_ptr<runtime::Network> net_;
  std::vector<std::uint64_t> episode_;  ///< per-participant episode counter
  std::vector<char> poisoned_;          ///< per-participant sticky poison view
  /// highest_seen_[tid][src]: latest episode tid observed src arriving in.
  std::vector<std::vector<std::uint64_t>> highest_seen_;
};

}  // namespace ftbar::ext
