// Auxiliary-variable modeling of crash and Byzantine faults (paper,
// Section 7): corruption of ACTIONS is expressed as corruption of
// VARIABLES by wrapping each process state P with two auxiliary booleans:
//
//   up   — a crashed process (up = false) executes no actions; the crash
//          fault sets up := false, the repair fault sets up := true and
//          resets the process detectably.
//   good — a Byzantine process (good = false) additionally executes
//          nondeterministic actions that scribble over its own variables.
//
// add_crash_model() transforms a program's action list accordingly, so the
// tolerance results proved for the base program can be exercised under
// crash/Byzantine behaviour without touching the base program's code.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "sim/action.hpp"
#include "util/rng.hpp"

namespace ftbar::ext {

template <class P>
struct WithAux {
  P inner{};
  bool up = true;
  bool good = true;
  friend auto operator<=>(const WithAux&, const WithAux&) = default;
};

/// Lifts base-program actions into the auxiliary-variable model: every
/// guard additionally requires the owner to be up, and each not-good
/// process gains a "byz" action that applies `scramble` to its own state.
/// `scramble` may be empty to model crash faults only.
template <class P>
std::vector<sim::Action<WithAux<P>>> add_crash_model(
    const std::vector<sim::Action<P>>& base,
    std::function<void(std::size_t, P&)> scramble = {}) {
  using Aux = WithAux<P>;
  std::vector<sim::Action<Aux>> out;
  out.reserve(base.size());
  for (const auto& action : base) {
    const auto owner = static_cast<std::size_t>(action.process);
    // The lifted guard reads the base read-set plus the owner's up flag.
    std::vector<int> reads = action.reads;
    if (!reads.empty() &&
        std::find(reads.begin(), reads.end(), action.process) == reads.end()) {
      reads.push_back(action.process);
    }
    out.push_back(sim::make_action<Aux>(
        action.name, action.process, std::move(reads),
        [owner, guard = action.guard](const std::vector<Aux>& s) {
          if (!s[owner].up) return false;
          std::vector<P> inner;
          inner.reserve(s.size());
          for (const auto& a : s) inner.push_back(a.inner);
          return guard(inner);
        },
        [owner, apply = action.apply](std::vector<Aux>& s) {
          std::vector<P> inner;
          inner.reserve(s.size());
          for (const auto& a : s) inner.push_back(a.inner);
          apply(inner);
          s[owner].inner = inner[owner];
        }));
  }
  if (scramble) {
    const auto procs = [&] {
      int max_proc = -1;
      for (const auto& a : base) max_proc = std::max(max_proc, a.process);
      return max_proc + 1;
    }();
    for (int j = 0; j < procs; ++j) {
      const auto uj = static_cast<std::size_t>(j);
      out.push_back(sim::make_action<Aux>(
          "byz@" + std::to_string(j), j, {j},
          [uj](const std::vector<Aux>& s) { return s[uj].up && !s[uj].good; },
          [uj, scramble](std::vector<Aux>& s) { scramble(uj, s[uj].inner); }));
    }
  }
  return out;
}

/// Crash fault: the process stops executing (up := false).
template <class P>
void crash(WithAux<P>& p) {
  p.up = false;
}

/// Repair fault: the process restarts; `reset` applies the base program's
/// detectable-fault reset to its state.
template <class P, class Reset>
void repair(WithAux<P>& p, Reset&& reset) {
  reset(p.inner);
  p.up = true;
}

/// Byzantine corruption: the process keeps running but behaves arbitrarily.
template <class P>
void make_byzantine(WithAux<P>& p) {
  p.good = false;
}

template <class P>
void make_good(WithAux<P>& p) {
  p.good = true;
}

/// Lifts a base start state into the auxiliary model (all up, all good).
template <class P>
std::vector<WithAux<P>> lift_state(const std::vector<P>& base) {
  std::vector<WithAux<P>> out;
  out.reserve(base.size());
  for (const auto& p : base) out.push_back(WithAux<P>{p, true, true});
  return out;
}

}  // namespace ftbar::ext
