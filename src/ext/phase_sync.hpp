// Phase synchronization instantiation (paper, Section 7): each process
// executes a potentially infinite sequence of phases; a process executes a
// phase only when all processes have completed the previous one. The
// traditional fault model corrupts phase variables detectably at the START
// of the computation (not during it); the required tolerance is that every
// phase still executes correctly.
//
// Barrier synchronization generalizes this: each phase of the former maps
// to an instance of a phase in the latter, and the masking tolerance of RB
// to detectable variable corruption covers the initial-corruption model.
// PhaseSync runs RB with optional initial detectable corruption and tracks
// the unbounded phase index each process has reached.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rb.hpp"
#include "core/spec.hpp"
#include "sim/step_engine.hpp"

namespace ftbar::ext {

class PhaseSync {
 public:
  /// `corrupt_initially`: processes whose state is detectably corrupted
  /// before the computation starts (the traditional phase-sync fault).
  PhaseSync(int num_procs, util::Rng rng, const std::vector<int>& corrupt_initially = {});

  /// Executes steps until `phases` more phases complete successfully.
  /// Returns false if the bound on steps is exceeded.
  bool run_phases(std::size_t phases, std::size_t max_steps = 1'000'000);

  /// Unbounded index of the last successfully completed phase.
  [[nodiscard]] std::uint64_t completed_phases() const noexcept {
    return monitor_.successful_phases();
  }

  [[nodiscard]] bool safety_ok() const noexcept { return monitor_.safety_ok(); }
  [[nodiscard]] const core::SpecMonitor& monitor() const noexcept { return monitor_; }

 private:
  core::RbOptions options_;
  core::SpecMonitor monitor_;
  sim::StepEngine<core::RbProc> engine_;
};

}  // namespace ftbar::ext
