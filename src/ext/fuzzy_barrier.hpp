// Fuzzy barriers (paper, Section 8): the transition execute -> success is
// "entering the barrier" and ready -> execute is "leaving" it, so a process
// may perform useful work that does not belong to either phase between the
// two transitions, instead of blocking.
//
//   FuzzyBarrier bar(kThreads);
//   // thread tid, once per phase:
//   do_phase_work();
//   bar.enter(tid, ok);            // announce completion, returns at once
//   while (!bar.poll(tid)) {       // barrier completes in the background
//     do_fuzzy_work();             // work outside any phase
//   }
//   PhaseTicket t = bar.leave(tid);  // next phase released
#pragma once

#include <chrono>
#include <memory>
#include <vector>

#include "core/ft_barrier.hpp"

namespace ftbar::ext {

class FuzzyBarrier {
 public:
  explicit FuzzyBarrier(int num_threads, core::BarrierOptions options = {});

  [[nodiscard]] int size() const noexcept { return num_threads_; }

  /// Enters the barrier: publishes this thread's phase completion (or its
  /// failure when ok=false) and returns immediately.
  void enter(int tid, bool ok = true);

  /// Services the protocol briefly; true once the next phase is released
  /// (call leave() to collect it). Call repeatedly between fuzzy work.
  bool poll(int tid);

  /// Blocks until the next phase is released and returns its ticket.
  core::PhaseTicket leave(int tid);

  /// Services the protocol after this thread's LAST leave so peers still
  /// inside poll/leave can finish even if the final wave's messages were
  /// lost. Returns when every thread has drained or after `deadline`.
  void drain(int tid, std::chrono::milliseconds deadline =
                          std::chrono::milliseconds(2000));

 private:
  void publish(int tid);
  void consume(int tid, const runtime::Message& m);

  int num_threads_;
  core::BarrierOptions options_;
  std::unique_ptr<runtime::Network> net_;
  std::vector<std::unique_ptr<core::MbEngine>> engines_;
  std::vector<std::uint64_t> last_seq_pred_;
  std::vector<std::uint64_t> last_seq_succ_;
  std::vector<std::uint64_t> bye_mask_;  ///< per-thread view of drained peers
  std::vector<std::chrono::steady_clock::time_point> last_publish_;
};

}  // namespace ftbar::ext
