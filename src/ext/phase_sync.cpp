#include "ext/phase_sync.hpp"

namespace ftbar::ext {

PhaseSync::PhaseSync(int num_procs, util::Rng rng,
                     const std::vector<int>& corrupt_initially)
    : options_(core::rb_ring_options(num_procs, /*num_phases=*/16)),
      monitor_(num_procs, options_.num_phases),
      engine_(core::rb_start_state(options_), core::make_rb_actions(options_, &monitor_),
              rng, sim::Semantics::kInterleaving) {
  const auto fault = core::rb_detectable_fault(options_, &monitor_);
  util::Rng fault_rng = rng.fork(0x9a5eULL);
  for (int j : corrupt_initially) {
    // The traditional model corrupts variables before the computation
    // begins; keep at least one process intact so the phase identity
    // survives (footnote 2).
    if (j >= 0 && j < num_procs &&
        static_cast<std::size_t>(corrupt_initially.size()) <
            engine_.state().size()) {
      fault(static_cast<std::size_t>(j),
            engine_.mutable_state()[static_cast<std::size_t>(j)], fault_rng);
    }
  }
}

bool PhaseSync::run_phases(std::size_t phases, std::size_t max_steps) {
  const auto target = monitor_.successful_phases() + phases;
  const auto done = engine_.run_until(
      [&](const core::RbState&) { return monitor_.successful_phases() >= target; },
      max_steps);
  return done.has_value();
}

}  // namespace ftbar::ext
