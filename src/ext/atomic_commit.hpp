// Atomic commitment instantiation (paper, Section 7): a transaction
// commits only if all of its subtransactions complete successfully, and
// transaction j+1 executes only after transaction j commits.
//
// The mapping onto the barrier program is direct: each participant runs a
// subtransaction per phase; a successful subtransaction is the
// execute -> success transition, a failed one the error path — in which
// case the whole transaction is re-executed (our retry-until-commit
// semantics; an abort-instead-of-retry policy is a trivial caller-side
// variation, also offered below).
#pragma once

#include <atomic>
#include <cstdint>

#include "core/ft_barrier.hpp"

namespace ftbar::ext {

enum class CommitOutcome {
  kCommitted,  ///< all subtransactions succeeded
  kRetried,    ///< some subtransaction failed; the transaction re-executes
};

class AtomicCommitter {
 public:
  explicit AtomicCommitter(int participants, core::BarrierOptions options = {})
      : barrier_(participants, options) {}

  [[nodiscard]] int participants() const noexcept { return barrier_.size(); }

  /// Participant `id` reports the outcome of its current subtransaction.
  /// Blocks until the group decides; kCommitted moves to the next
  /// transaction, kRetried means the SAME transaction must run again.
  CommitOutcome submit(int id, bool subtransaction_ok) {
    const auto ticket = barrier_.arrive_and_wait(id, subtransaction_ok);
    return ticket.repeated ? CommitOutcome::kRetried : CommitOutcome::kCommitted;
  }

  /// Runs `work` (returning subtransaction success) until the transaction
  /// commits; returns the number of attempts.
  template <class Work>
  int run_transaction(int id, Work&& work) {
    int attempts = 0;
    for (;;) {
      ++attempts;
      if (submit(id, work(attempts)) == CommitOutcome::kCommitted) return attempts;
    }
  }

  void finalize(int id) { barrier_.finalize(id); }

 private:
  core::FaultTolerantBarrier barrier_;
};

}  // namespace ftbar::ext
