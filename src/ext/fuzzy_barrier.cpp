#include "ext/fuzzy_barrier.hpp"

#include <cassert>

namespace ftbar::ext {

namespace {
constexpr int kStateTag = 1;
constexpr int kByeTag = 2;
}

FuzzyBarrier::FuzzyBarrier(int num_threads, core::BarrierOptions options)
    : num_threads_(num_threads),
      options_(options),
      net_(std::make_unique<runtime::Network>(num_threads, options.seed,
                                              /*inbox_capacity=*/4096)),
      last_seq_pred_(static_cast<std::size_t>(num_threads), 0),
      last_seq_succ_(static_cast<std::size_t>(num_threads), 0),
      bye_mask_(static_cast<std::size_t>(num_threads), 0),
      last_publish_(static_cast<std::size_t>(num_threads),
                    std::chrono::steady_clock::now()) {
  assert(num_threads >= 2);
  net_->set_default_faults(options.link_faults);
  engines_.reserve(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    engines_.push_back(
        std::make_unique<core::MbEngine>(t, num_threads, options.num_phases));
  }
}

void FuzzyBarrier::publish(int tid) {
  const auto ws = engines_[static_cast<std::size_t>(tid)]->wire_state();
  net_->send_value(tid, (tid + 1) % num_threads_, kStateTag, ws);
  net_->send_value(tid, (tid + num_threads_ - 1) % num_threads_, kStateTag, ws);
  last_publish_[static_cast<std::size_t>(tid)] = std::chrono::steady_clock::now();
}

void FuzzyBarrier::consume(int tid, const runtime::Message& m) {
  if (!runtime::Network::verify(m)) return;
  if (m.tag == kByeTag) {
    if (const auto mask = runtime::Network::decode<std::uint64_t>(m)) {
      bye_mask_[static_cast<std::size_t>(tid)] |= *mask;
    }
    return;
  }
  if (m.tag != kStateTag) return;
  const auto ws = runtime::Network::decode<core::WireState>(m);
  if (!ws) return;
  const auto utid = static_cast<std::size_t>(tid);
  const int pred = (tid + num_threads_ - 1) % num_threads_;
  auto& last = m.src == pred ? last_seq_pred_[utid] : last_seq_succ_[utid];
  if (m.link_seq < last) return;
  last = m.link_seq + 1;
  engines_[utid]->on_neighbor_state(m.src, *ws);
}

void FuzzyBarrier::enter(int tid, bool ok) {
  auto& eng = *engines_[static_cast<std::size_t>(tid)];
  if (!ok) eng.inject_detectable_fault();
  eng.step();
  publish(tid);
}

bool FuzzyBarrier::poll(int tid) {
  auto& eng = *engines_[static_cast<std::size_t>(tid)];
  if (eng.has_ticket()) return true;
  if (const auto m = net_->recv(tid, options_.poll)) consume(tid, *m);
  const bool changed = eng.step();
  const auto now = std::chrono::steady_clock::now();
  if (changed ||
      now - last_publish_[static_cast<std::size_t>(tid)] >= options_.retransmit_every) {
    publish(tid);
  }
  return eng.has_ticket();
}

core::PhaseTicket FuzzyBarrier::leave(int tid) {
  auto& eng = *engines_[static_cast<std::size_t>(tid)];
  while (!eng.has_ticket()) poll(tid);
  const auto ticket = eng.take_ticket();
  publish(tid);  // keep the release wave moving
  return *ticket;
}

void FuzzyBarrier::drain(int tid, std::chrono::milliseconds deadline) {
  const auto utid = static_cast<std::size_t>(tid);
  const std::uint64_t full =
      num_threads_ == 64 ? ~0ULL : ((1ULL << num_threads_) - 1);
  bye_mask_[utid] |= 1ULL << tid;
  const auto until = std::chrono::steady_clock::now() + deadline;
  auto last_bye = std::chrono::steady_clock::time_point{};
  while (bye_mask_[utid] != full && std::chrono::steady_clock::now() < until) {
    const auto now = std::chrono::steady_clock::now();
    if (now - last_bye >= options_.retransmit_every) {
      for (int peer = 0; peer < num_threads_; ++peer) {
        if (peer != tid) net_->send_value(tid, peer, kByeTag, bye_mask_[utid]);
      }
      last_bye = now;
    }
    (void)poll(tid);
    (void)engines_[utid]->take_ticket();
  }
  for (int round = 0; round < 3; ++round) {
    for (int peer = 0; peer < num_threads_; ++peer) {
      if (peer != tid) net_->send_value(tid, peer, kByeTag, bye_mask_[utid]);
    }
  }
}

}  // namespace ftbar::ext
