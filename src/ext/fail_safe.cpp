#include "ext/fail_safe.hpp"

namespace ftbar::ext {

namespace {
constexpr int kArriveTag = 200;
constexpr int kPoisonTag = 201;
}  // namespace

FailSafeBarrier::FailSafeBarrier(int num_threads, std::uint64_t seed)
    : num_threads_(num_threads),
      net_(std::make_unique<runtime::Network>(num_threads, seed)),
      episode_(static_cast<std::size_t>(num_threads), 0),
      poisoned_(static_cast<std::size_t>(num_threads), 0),
      highest_seen_(static_cast<std::size_t>(num_threads),
                    std::vector<std::uint64_t>(static_cast<std::size_t>(num_threads), 0)) {}

void FailSafeBarrier::broadcast(int tid, int tag, std::uint64_t value) {
  for (int peer = 0; peer < num_threads_; ++peer) {
    if (peer != tid) net_->send_value(tid, peer, tag, value);
  }
}

bool FailSafeBarrier::poisoned(int tid) const {
  return poisoned_[static_cast<std::size_t>(tid)] != 0;
}

FailSafeResult FailSafeBarrier::arrive_and_wait(int tid, bool ok,
                                                std::chrono::milliseconds timeout) {
  const auto utid = static_cast<std::size_t>(tid);
  if (poisoned_[utid]) return FailSafeResult::kFatal;

  const std::uint64_t episode = ++episode_[utid];
  if (!ok) {
    // Uncorrectable detectable fault: poison the group and fail closed.
    poisoned_[utid] = 1;
    broadcast(tid, kPoisonTag, episode);
    return FailSafeResult::kFatal;
  }
  broadcast(tid, kArriveTag, episode);
  auto& seen = highest_seen_[utid];
  seen[utid] = episode;

  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    bool all_arrived = true;
    for (int peer = 0; peer < num_threads_; ++peer) {
      if (seen[static_cast<std::size_t>(peer)] < episode) {
        all_arrived = false;
        break;
      }
    }
    if (all_arrived) return FailSafeResult::kCompleted;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left <= std::chrono::milliseconds::zero()) return FailSafeResult::kTimeout;
    const auto m = net_->recv(tid, std::min(left, std::chrono::milliseconds(5)));
    if (!m || !runtime::Network::verify(*m)) continue;
    if (m->tag == kPoisonTag) {
      poisoned_[utid] = 1;
      return FailSafeResult::kFatal;
    }
    if (m->tag == kArriveTag) {
      if (const auto e = runtime::Network::decode<std::uint64_t>(*m)) {
        auto& h = seen[static_cast<std::size_t>(m->src)];
        if (*e > h) h = *e;
      }
    }
  }
}

}  // namespace ftbar::ext
