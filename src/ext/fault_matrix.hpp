// The fault classification of Table 1 (paper, Section 7): detectability x
// correctability determines the appropriate tolerance for barrier
// synchronization. The catalog below classifies the standard fault types
// the introduction enumerates; the table1 bench demonstrates each cell
// empirically.
#pragma once

#include <span>
#include <string_view>

namespace ftbar::ext {

enum class Detectability { kDetectable, kUndetectable };

enum class Correctability {
  kImmediate,      ///< correction can be modeled with the fault itself
  kEventual,       ///< the fault stops / is repaired eventually
  kUncorrectable,  ///< no repair ever happens
};

enum class Tolerance {
  kTriviallyMasking,  ///< pretend the fault never happened
  kMasking,           ///< every barrier still executes correctly
  kStabilizing,       ///< eventually barriers execute correctly again
  kFailSafe,          ///< never report a completion incorrectly; may stall
  kIntolerant,        ///< no guarantee possible
};

[[nodiscard]] std::string_view to_string(Detectability d) noexcept;
[[nodiscard]] std::string_view to_string(Correctability c) noexcept;
[[nodiscard]] std::string_view to_string(Tolerance t) noexcept;

/// Table 1: the appropriate tolerance for each (detectability,
/// correctability) cell.
[[nodiscard]] Tolerance appropriate_tolerance(Detectability d, Correctability c) noexcept;

/// One named fault type from the introduction's enumeration, classified.
struct FaultType {
  std::string_view name;
  Detectability detectability;
  Correctability correctability;

  [[nodiscard]] Tolerance tolerance() const noexcept {
    return appropriate_tolerance(detectability, correctability);
  }
};

/// The standard fault types of Section 1, classified per Sections 2 and 7.
[[nodiscard]] std::span<const FaultType> standard_fault_catalog() noexcept;

}  // namespace ftbar::ext
