// Clock unison instantiation (paper, Section 7): every process maintains a
// bounded counter such that, at all times (in legitimate states), any two
// counters differ by at most one, and every counter is incremented
// infinitely often. Phase.i of the barrier computation maps onto the i-th
// counter value, and the barrier program's stabilizing tolerance to
// undetectable counter corruption is exactly the unison requirement.
//
// The model runs program CB with the phase ring as the clock domain; the
// clock of a process is its phase, nudged forward by one when the process
// has already completed the current phase (so clocks are adjacent, not
// equal, mid-rollover — matching the unison specification).
#pragma once

#include <vector>

#include "core/cb.hpp"
#include "sim/step_engine.hpp"
#include "util/rng.hpp"

namespace ftbar::ext {

class ClockUnison {
 public:
  /// `bound` is the clock modulus (>= 3 so adjacency mod bound is
  /// unambiguous); all clocks start at 0.
  ClockUnison(int num_procs, int bound, util::Rng rng);

  [[nodiscard]] int bound() const noexcept { return options_.num_phases; }

  /// Executes one interleaving step of the underlying program.
  void step();

  /// Current clock values (one per process).
  [[nodiscard]] std::vector<int> clocks() const;

  /// True when every pair of clocks differs by at most one (mod bound) —
  /// the unison safety condition; holds in all legitimate states.
  [[nodiscard]] bool in_unison() const;

  /// True when the underlying program is in a legitimate state.
  [[nodiscard]] bool legitimate() const;

  /// Corrupts every clock undetectably (the traditional unison fault).
  void perturb(util::Rng& rng);

  /// Number of times the slowest clock has been incremented (progress
  /// metric: grows without bound in fault-free runs).
  [[nodiscard]] long long min_increments() const noexcept { return min_increments_; }

 private:
  core::CbOptions options_;
  sim::StepEngine<core::CbProc> engine_;
  std::vector<int> last_clocks_;
  std::vector<long long> increments_;  ///< per-process clock-change counts
  long long min_increments_ = 0;
};

}  // namespace ftbar::ext
