#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

#include "trace/sink.hpp"

namespace ftbar::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kOff};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kOff: break;
  }
  return "     ";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& message) {
  trace::log_to_sink(static_cast<int>(level), message.c_str());
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[" << level_name(level) << "] " << message << "\n";
}

}  // namespace ftbar::util
