#include "util/csv.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ftbar::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<Cell> row) {
  if (row.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::render(const Cell& cell) const {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<long long>(&cell)) return std::to_string(*i);
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision_) << std::get<double>(cell);
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(render(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c])) << cells[c]
         << (c + 1 == cells.size() ? "\n" : "  ");
    }
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c], '-') << (c + 1 == headers_.size() ? "\n" : "  ");
  }
  for (const auto& cells : rendered) emit(cells);
}

void Table::write_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << headers_[c] << (c + 1 == headers_.size() ? "\n" : ",");
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << render(row[c]) << (c + 1 == row.size() ? "\n" : ",");
    }
  }
}

}  // namespace ftbar::util
