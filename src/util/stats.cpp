#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace ftbar::util {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Samples::mean() const noexcept {
  if (data_.empty()) return 0.0;
  double s = 0.0;
  for (double x : data_) s += x;
  return s / static_cast<double>(data_.size());
}

double Samples::quantile(double q) {
  if (data_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(data_.begin(), data_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(data_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= data_.size()) return data_.back();
  return data_[lo] * (1.0 - frac) + data_[lo + 1] * frac;
}

}  // namespace ftbar::util
