#include "util/sweep.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

namespace ftbar::util {

Rng stream_rng(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Two splitmix64 steps decorrelate (seed, stream) pairs even for small,
  // structured stream ids (0, 1, 2, ...) — same construction as Rng::fork
  // but stateless, so item k's stream is independent of execution order.
  std::uint64_t h = seed ^ (stream * 0x9e3779b97f4a7c15ULL);
  (void)splitmix64(h);
  return Rng(splitmix64(h));
}

struct Sweep::Impl {
  std::mutex mu;
  std::condition_variable work_cv;    ///< workers wait for a job
  std::condition_variable done_cv;    ///< for_each waits for completion
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::size_t limit = 0;
  std::size_t active = 0;  ///< workers still draining the current job
  std::uint64_t generation = 0;
  bool shutdown = false;
  std::vector<std::thread> workers;

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::unique_lock lock(mu);
      work_cv.wait(lock, [&] { return shutdown || generation != seen; });
      if (shutdown) return;
      seen = generation;
      const auto* job = fn;
      const std::size_t n = limit;
      lock.unlock();

      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        (*job)(i);
      }

      lock.lock();
      if (--active == 0) done_cv.notify_all();
    }
  }
};

Sweep::Sweep(int threads) : impl_(new Impl) {
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? static_cast<int>(hw) : 1;
  }
  threads_ = threads;
  impl_->workers.reserve(static_cast<std::size_t>(threads - 1));
  // The calling thread participates in every job, so the pool only needs
  // threads-1 workers (and --threads 1 runs everything inline).
  for (int t = 1; t < threads; ++t) {
    impl_->workers.emplace_back([impl = impl_] { impl->worker_loop(); });
  }
}

Sweep::~Sweep() {
  {
    std::lock_guard lock(impl_->mu);
    impl_->shutdown = true;
  }
  impl_->work_cv.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

void Sweep::for_each(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  {
    std::lock_guard lock(impl_->mu);
    impl_->fn = &fn;
    impl_->limit = n;
    impl_->next.store(0);
    impl_->active = impl_->workers.size() + 1;  // workers + this thread
    ++impl_->generation;
  }
  impl_->work_cv.notify_all();

  for (std::size_t i = impl_->next.fetch_add(1); i < n; i = impl_->next.fetch_add(1)) {
    fn(i);
  }

  std::unique_lock lock(impl_->mu);
  if (--impl_->active > 0) {
    impl_->done_cv.wait(lock, [&] { return impl_->active == 0; });
  }
  impl_->fn = nullptr;
}

std::size_t SweepCli::positional_or(std::size_t i, std::size_t fallback) const {
  if (i >= positional.size()) return fallback;
  return static_cast<std::size_t>(std::strtoull(positional[i].c_str(), nullptr, 10));
}

SweepCli parse_sweep_cli(int argc, char** argv) {
  SweepCli cli;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      cli.csv = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      cli.threads = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      cli.threads = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      cli.trace = argv[++i];
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      cli.trace = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--trace-format") == 0 && i + 1 < argc) {
      cli.trace_format = argv[++i];
    } else if (std::strncmp(argv[i], "--trace-format=", 15) == 0) {
      cli.trace_format = argv[i] + 15;
    } else {
      cli.positional.emplace_back(argv[i]);
    }
  }
  return cli;
}

}  // namespace ftbar::util
