// Deterministic pseudo-random number generation for simulations.
//
// All stochastic behaviour in the library (fault arrival, scheduler choice,
// state perturbation) flows through util::Rng so that every experiment is
// reproducible from a single 64-bit seed. The generator is xoshiro256**,
// seeded via splitmix64 per the authors' recommendation.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace ftbar::util {

/// One step of the splitmix64 sequence; used for seeding and for cheap
/// stateless hashing of (seed, stream) pairs.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality, 256-bit state.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions, though the member helpers below are
/// preferred for portability of generated streams across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  /// Re-initialize the full 256-bit state from a 64-bit seed.
  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound == 0 yields 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  [[nodiscard]] std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Exponentially distributed variate with the given rate (mean 1/rate).
  /// Used for fault inter-arrival times; rate <= 0 yields +infinity.
  [[nodiscard]] double exponential(double rate) noexcept;

  /// A derived generator whose stream is independent of this one for any
  /// distinct `stream` value. Used to give each process / channel its own
  /// reproducible randomness.
  [[nodiscard]] Rng fork(std::uint64_t stream) const noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace ftbar::util
