#include "util/rng.hpp"

#include <cmath>

namespace ftbar::util {

std::uint64_t Rng::uniform(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire 2019: multiply-shift with rejection of the biased low range.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::exponential(double rate) noexcept {
  if (rate <= 0.0) return std::numeric_limits<double>::infinity();
  // Inverse-CDF; 1 - uniform01() is in (0, 1] so the log is finite.
  return -std::log(1.0 - uniform01()) / rate;
}

Rng Rng::fork(std::uint64_t stream) const noexcept {
  // Hash the current state together with the stream id so forks taken at
  // different times or with different ids are decorrelated.
  std::uint64_t h = state_[0] ^ (stream * 0x9e3779b97f4a7c15ULL);
  h ^= state_[2] + 0x632be59bd9b4e019ULL;
  Rng out(0);
  out.reseed(splitmix64(h));
  return out;
}

}  // namespace ftbar::util
