// Online statistics accumulators used by the benchmark harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace ftbar::util {

/// Welford online accumulator: mean / variance / min / max in O(1) space.
class Accumulator {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const Accumulator& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores every sample; supports exact quantiles. Use for modest sample
/// counts (simulation repetitions), not per-event streams.
class Samples {
 public:
  void add(double x) {
    data_.push_back(x);
    sorted_ = false;
  }
  [[nodiscard]] std::size_t count() const noexcept { return data_.size(); }
  [[nodiscard]] double mean() const noexcept;
  /// Exact quantile by linear interpolation, q in [0, 1]. Sorts lazily.
  [[nodiscard]] double quantile(double q);
  [[nodiscard]] double median() { return quantile(0.5); }
  [[nodiscard]] const std::vector<double>& data() const noexcept { return data_; }

 private:
  std::vector<double> data_;
  bool sorted_ = false;
};

}  // namespace ftbar::util
