// Tabular output helpers for the benchmark harnesses: each figure/table
// bench prints an aligned human-readable table to stdout and can also emit
// machine-readable CSV.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace ftbar::util {

/// A cell is a string, an integer, or a double (printed with fixed precision).
using Cell = std::variant<std::string, long long, double>;

/// A simple column-aligned table builder.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<Cell> row);

  /// Number of digits after the decimal point for double cells (default 4).
  void set_precision(int digits) noexcept { precision_ = digits; }

  /// Writes an aligned plain-text rendering.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (no quoting of embedded commas is attempted;
  /// headers and cells in this library never contain commas).
  void write_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return headers_.size(); }

 private:
  [[nodiscard]] std::string render(const Cell& cell) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

}  // namespace ftbar::util
