// Parallel sweep runner for the figure/ablation experiment drivers.
//
// Every experiment in the reproduction is a map over an independent grid of
// (grid-point, replica, seed) work items — exactly the shape a thread pool
// parallelizes without changing semantics. The contract that keeps output
// deterministic regardless of thread count:
//
//  * each work item derives its own util::Rng stream from
//    (sweep seed, item index) via splitmix64 (stream_rng below), so no item
//    ever observes another item's randomness;
//  * results are stored by item index and reduced by the caller in grid
//    order, so tables/CSV are byte-identical for --threads 1 and
//    --threads 8.
//
// Drivers accept a --threads N flag (0 or absent = hardware_concurrency),
// parsed by parse_sweep_cli alongside the pre-existing --csv flag, the
// --trace/--trace-format options and positional budget arguments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace ftbar::util {

/// An Rng whose stream is a pure function of (seed, stream): distinct
/// stream ids yield decorrelated generators. This is the per-work-item
/// randomness of the sweep runner — independent of execution order.
[[nodiscard]] Rng stream_rng(std::uint64_t seed, std::uint64_t stream) noexcept;

/// A fixed-size thread pool mapping a function over an index range.
/// Work items must be independent; they are claimed dynamically (atomic
/// counter), so the pool load-balances uneven items, while determinism is
/// preserved by indexing results, never by completion order.
class Sweep {
 public:
  /// `threads` <= 0 selects std::thread::hardware_concurrency().
  explicit Sweep(int threads = 0);
  ~Sweep();

  Sweep(const Sweep&) = delete;
  Sweep& operator=(const Sweep&) = delete;

  [[nodiscard]] int threads() const noexcept { return threads_; }

  /// Calls fn(i) for every i in [0, n), distributing items over the pool.
  /// Blocks until all items completed. fn must not throw.
  void for_each(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Maps fn over [0, n) into a vector indexed by item — the deterministic
  /// grid-order reduction happens simply by iterating the result.
  template <class R, class Fn>
  std::vector<R> map(std::size_t n, Fn&& fn) {
    std::vector<R> out(n);
    for_each(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  struct Impl;
  Impl* impl_;
  int threads_;
};

/// Common command line of the sweep-based drivers:
///   [--csv] [--threads N] [--trace FILE [--trace-format jsonl|chrome]]
///   [positional...]
/// `--trace` asks the driver to record one representative grid cell (which
/// cell is driver-defined) and write it to FILE; the sweep results are
/// unaffected because tracing never touches an item's RNG stream.
struct SweepCli {
  bool csv = false;
  int threads = 0;  ///< 0 = hardware_concurrency
  std::string trace;                  ///< empty = tracing off
  std::string trace_format = "jsonl"; ///< "jsonl" or "chrome"
  std::vector<std::string> positional;

  /// Positional argument `i` parsed as unsigned, or `fallback` if absent.
  [[nodiscard]] std::size_t positional_or(std::size_t i, std::size_t fallback) const;
};

[[nodiscard]] SweepCli parse_sweep_cli(int argc, char** argv);

}  // namespace ftbar::util
