// Minimal leveled logging. Off by default so simulations stay quiet; tests
// and examples can raise the level to trace protocol transitions.
#pragma once

#include <sstream>
#include <string>

namespace ftbar::util {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

/// Global log level. The level is an atomic: it may be raised or lowered
/// at any time, including while rank threads are logging concurrently.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits a line to stderr if `level` is enabled. Thread-safe per line.
/// When a trace sink is installed (trace::set_log_sink), the line is also
/// mirrored into the active trace as a kLog event.
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  ((os << std::forward<Args>(args)), ...);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, Args&&... args) {
  if (static_cast<int>(level) <= static_cast<int>(log_level())) {
    log_line(level, detail::concat(std::forward<Args>(args)...));
  }
}

}  // namespace ftbar::util
