#include "core/spec.hpp"

#include <algorithm>
#include <sstream>

namespace ftbar::core {

SpecMonitor::SpecMonitor(int num_procs, int num_phases)
    : num_procs_(num_procs),
      num_phases_(num_phases),
      started_(static_cast<std::size_t>(num_procs), 0),
      completed_(static_cast<std::size_t>(num_procs), 0),
      aborted_(static_cast<std::size_t>(num_procs), 0),
      excluded_(static_cast<std::size_t>(num_procs), 0),
      grace_(static_cast<std::size_t>(num_procs), 0) {}

void SpecMonitor::violate(std::string what) { violations_.push_back(std::move(what)); }

void SpecMonitor::emit_event(ftbar::trace::Kind kind, int proc, long long a, long long b,
                        long long c) noexcept {
  ++events_seen_;
  if (sink_ != nullptr) {
    sink_->emit(ftbar::trace::make_event(kind, static_cast<double>(events_seen_),
                                         proc, a, b, c));
  }
}

void SpecMonitor::open_instance(int ph) {
  instance_open_ = true;
  instance_phase_ = ph;
  ++total_instances_;
  std::fill(started_.begin(), started_.end(), 0);
  std::fill(completed_.begin(), completed_.end(), 0);
  std::fill(aborted_.begin(), aborted_.end(), 0);
}

void SpecMonitor::close_failed() {
  instance_open_ = false;
  ++failed_instances_;
}

bool SpecMonitor::anyone_executing() const noexcept {
  if (!instance_open_) return false;
  for (int p = 0; p < num_procs_; ++p) {
    if (executing(p)) return true;
  }
  return false;
}

std::size_t SpecMonitor::successful_phases() const noexcept {
  return advanced_ + (last_successful_ ? 1 : 0);
}

void SpecMonitor::on_start(int proc, int ph, bool new_instance) {
  emit_event(ftbar::trace::Kind::kPhaseStart, proc, ph, new_instance ? 1 : 0,
        desynced_ ? 1 : 0);
  if (desynced_) return;
  const auto p = static_cast<std::size_t>(proc);

  if (grace_[p] != 0) {
    // A rejoined process re-enters checking at its first start that lines
    // up with the monitor's view; anything earlier is a stale echo of the
    // instance that was in flight when it rejoined, and is ignored.
    const bool joins_open =
        instance_open_ && ph == instance_phase_ && started_[p] == 0;
    const bool opens_next =
        !instance_open_ &&
        (ph == expected_phase_ ||
         (ph == (expected_phase_ + 1) % num_phases_ && last_successful_));
    if (!joins_open && !opens_next) return;
    grace_[p] = 0;
    excluded_[p] = 0;
  } else if (excluded_[p] != 0) {
    violate("process " + std::to_string(proc) + " started phase " +
            std::to_string(ph) + " after leaving the membership");
    return;
  }

  if (instance_open_) {
    // A fresh instance may legitimately be opened by several processes in
    // the same maximal-parallel step; as long as the open instance is still
    // pristine (same phase, no completions/aborts, proc not yet in it),
    // such a start is indistinguishable from joining and is treated so.
    const bool pristine_join =
        ph == instance_phase_ && !started_[p] &&
        std::none_of(completed_.begin(), completed_.end(), [](char c) { return c; }) &&
        std::none_of(aborted_.begin(), aborted_.end(), [](char c) { return c; });

    if (new_instance && !pristine_join) {
      if (anyone_executing()) {
        violate("new instance of phase " + std::to_string(ph) +
                " opened while a process is executing in the current instance");
      }
      close_failed();  // the open instance did not complete successfully
      // fall through to the !instance_open_ logic below
    } else {
      // Join path.
      if (ph != instance_phase_) {
        violate("process " + std::to_string(proc) + " started phase " +
                std::to_string(ph) + " while the open instance is of phase " +
                std::to_string(instance_phase_));
        return;
      }
      if (started_[p]) {
        violate("process " + std::to_string(proc) +
                " executed twice in one instance of phase " + std::to_string(ph));
        return;
      }
      started_[p] = 1;
      return;
    }
  }

  // Opening a new instance.
  if (ph == expected_phase_) {
    // Another attempt at the pending phase (first attempt, or a repeat
    // after a failed — or even successful — earlier instance).
    last_successful_ = false;
  } else if (ph == (expected_phase_ + 1) % num_phases_ && last_successful_) {
    ++advanced_;
    expected_phase_ = ph;
    last_successful_ = false;
  } else {
    std::ostringstream os;
    os << "phase " << ph << " started but phase " << expected_phase_
       << (last_successful_ ? " (already successful)" : " (not yet successful)")
       << " is the " << (last_successful_ ? "latest completed" : "pending") << " phase";
    violate(os.str());
    return;
  }
  open_instance(ph);
  started_[p] = 1;
  (void)new_instance;
}

void SpecMonitor::on_complete(int proc, int ph) {
  emit_event(ftbar::trace::Kind::kPhaseComplete, proc, ph);
  if (desynced_) return;
  const auto p = static_cast<std::size_t>(proc);
  if (grace_[p] != 0) return;  // unaligned rejoiner echo — ignored
  if (excluded_[p] != 0) {
    violate("process " + std::to_string(proc) + " completed phase " +
            std::to_string(ph) + " after leaving the membership");
    return;
  }
  if (!instance_open_ || ph != instance_phase_) {
    violate("process " + std::to_string(proc) + " completed phase " +
            std::to_string(ph) + " with no matching open instance");
    return;
  }
  if (!started_[p] || aborted_[p]) {
    violate("process " + std::to_string(proc) + " completed phase " +
            std::to_string(ph) + " without executing it in this instance");
    return;
  }
  if (completed_[p]) {
    violate("process " + std::to_string(proc) + " completed phase " +
            std::to_string(ph) + " twice in one instance");
    return;
  }
  completed_[p] = 1;
  maybe_close_successful();
}

void SpecMonitor::maybe_close_successful() {
  if (!instance_open_) return;
  // The instance closes successfully when every process still in the
  // membership completed — and at least one did (an instance everyone
  // abandoned has nobody left to vouch for it).
  bool any_member_completed = false;
  for (int proc = 0; proc < num_procs_; ++proc) {
    const auto p = static_cast<std::size_t>(proc);
    if (excluded_[p] != 0) continue;
    if (completed_[p] == 0) return;
    any_member_completed = true;
  }
  if (!any_member_completed) return;
  instance_open_ = false;
  last_successful_ = true;  // the phase now counts as executed successfully
}

void SpecMonitor::on_leave(int proc) {
  emit_event(ftbar::trace::Kind::kRankKill, proc);
  if (proc < 0 || proc >= num_procs_) return;
  const auto p = static_cast<std::size_t>(proc);
  excluded_[p] = 1;
  grace_[p] = 0;
  if (desynced_) return;
  if (instance_open_ && started_[p] != 0 && completed_[p] == 0) {
    aborted_[p] = 1;  // its partial execution died with it
  }
  // The leaver may have been the only process the open instance was still
  // waiting on.
  maybe_close_successful();
}

void SpecMonitor::on_join(int proc) {
  emit_event(ftbar::trace::Kind::kRankRestart, proc);
  if (proc < 0 || proc >= num_procs_) return;
  // Still excluded until its first aligned start: the replacement must not
  // block instances it is not yet executing in.
  grace_[static_cast<std::size_t>(proc)] = 1;
}

void SpecMonitor::on_abort(int proc) {
  emit_event(ftbar::trace::Kind::kPhaseAbort, proc);
  if (desynced_ || !instance_open_) return;
  const auto p = static_cast<std::size_t>(proc);
  if (excluded_[p] != 0) return;  // a zombie's abort orders nothing
  if (started_[p] && !completed_[p]) aborted_[p] = 1;
}

void SpecMonitor::on_undetectable_fault() {
  emit_event(ftbar::trace::Kind::kSpecDesync, -1);
  if (instance_open_) close_failed();
  desynced_ = true;
}

void SpecMonitor::resync(int current_phase) {
  emit_event(ftbar::trace::Kind::kSpecResync, -1, current_phase);
  desynced_ = false;
  instance_open_ = false;
  last_successful_ = false;
  const int m = current_phase % num_phases_;
  expected_phase_ = m < 0 ? m + num_phases_ : m;
}

}  // namespace ftbar::core
