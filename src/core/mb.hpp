// Program MB — the message-passing refinement (paper, Section 5).
//
// Each action of RB instantaneously accessed a neighbour's state AND
// updated its own. MB splits this: process j keeps LOCAL COPIES of the
// variables of its ring predecessor (sn, cp, ph) and of its successor's sn,
// and every action either refreshes a local copy from the real neighbour
// variables or updates j's own variables from j's local copies — never
// both. Such actions are implementable with messages.
//
// The copy cell between j-1 and j behaves exactly like a T2 process, so the
// computations of MB are equivalent to RB on a ring of 2(N+1) processes
// (the refinement theorem proved in the paper's appendix; the test suite
// checks the simulation relation transition-by-transition). The sequence
// number domain grows accordingly: L > 2N+1.
//
// Actions at process j (ring of size S = N+1):
//   MT1  (j=0)   : copy_sn valid /\ (sn.0 = copy_sn \/ sn.0 in {BOT,TOP})
//                     -> sn.0 := copy_sn + 1 (mod L); root cp/ph statement
//                        against the copies
//   MT2  (j!=0)  : copy_sn valid /\ sn.j != copy_sn
//                     -> sn.j := copy_sn; follower cp/ph statement against
//                        the copies
//   COPY (all j) : sn.(j-1) valid /\ copy_sn.j != sn.(j-1)
//                     -> copy_{sn,cp,ph}.j updated via the follower
//                        statement reading the REAL (j-1) variables
//   CPYN (j!=N)  : sn.(j+1) = TOP /\ copy_next.j != TOP -> copy_next.j := TOP
//   MT3  (j=N)   : sn.N = BOT -> sn.N := TOP
//   MT4  (j!=N)  : sn.j = BOT /\ copy_next.j = TOP -> sn.j := TOP
//   MT5  (j=0)   : sn.0 = TOP -> sn.0 := 0
#pragma once

#include <vector>

#include "core/control.hpp"
#include "core/rb_rules.hpp"
#include "core/spec.hpp"
#include "sim/action.hpp"
#include "sim/fault_env.hpp"

namespace ftbar::core {

/// Sequence-number special values shared with RB (kSnBot/kSnTop) live in
/// core/rb.hpp; MB re-declares nothing and uses plain ints the same way.
inline constexpr int kMbSnBot = -1;
inline constexpr int kMbSnTop = -2;

[[nodiscard]] constexpr bool mb_sn_valid(int sn) noexcept { return sn >= 0; }

/// Per-process state of MB: own variables plus the local copies.
struct MbProc {
  int sn = 0;
  Cp cp = Cp::kReady;
  int ph = 0;
  // Local copies of the predecessor's variables (the "copy cell").
  int c_sn = 0;
  Cp c_cp = Cp::kReady;
  int c_ph = 0;
  // Local copy of the successor's sequence number (only ever set to TOP).
  int c_next = 0;
  friend auto operator<=>(const MbProc&, const MbProc&) = default;
};

using MbState = std::vector<MbProc>;

struct MbOptions {
  int num_procs = 4;   ///< ring size S = N+1
  int num_phases = 2;  ///< n >= 2
  /// Sequence modulus L; must satisfy L > 2N+1. 0 selects 2*num_procs.
  int seq_modulus = 0;

  [[nodiscard]] int l() const { return seq_modulus > 0 ? seq_modulus : 2 * num_procs; }
};

[[nodiscard]] MbState mb_start_state(const MbOptions& opt, int phase = 0);

[[nodiscard]] std::vector<sim::Action<MbProc>> make_mb_actions(const MbOptions& opt,
                                                               SpecMonitor* monitor = nullptr);

// ---- fault actions (paper, Section 5) ---------------------------------------
/// Detectable fault: own vars reset as in RB, and additionally the local
/// copies: c_sn := BOT, c_cp := error, c_ph := ?, c_next := BOT.
[[nodiscard]] sim::FaultEnv<MbProc>::Perturb mb_detectable_fault(const MbOptions& opt,
                                                                 SpecMonitor* monitor = nullptr);
/// Undetectable fault: every variable (copies included) := arbitrary.
[[nodiscard]] sim::FaultEnv<MbProc>::Perturb mb_undetectable_fault(
    const MbOptions& opt, SpecMonitor* monitor = nullptr);

// ---- state predicates --------------------------------------------------------
[[nodiscard]] bool mb_is_start_state(const MbState& s);

}  // namespace ftbar::core
