#include "core/mb.hpp"

#include <algorithm>
#include <cassert>
#include <string>

namespace ftbar::core {

namespace {

void report(SpecMonitor* monitor, int j, const RbUpdate& upd, int pre_ph, bool root) {
  if (monitor == nullptr) return;
  switch (upd.event) {
    case RbEvent::kStart:
      monitor->on_start(j, upd.next.ph, /*new_instance=*/root);
      break;
    case RbEvent::kComplete:
      monitor->on_complete(j, pre_ph);
      break;
    case RbEvent::kAbort:
      monitor->on_abort(j);
      break;
    case RbEvent::kNone:
      break;
  }
}

}  // namespace

MbState mb_start_state(const MbOptions& opt, int phase) {
  assert(opt.num_procs >= 2 && opt.num_phases >= 2);
  MbProc p;
  p.sn = p.c_sn = 0;
  p.cp = p.c_cp = Cp::kReady;
  p.ph = p.c_ph = phase;
  p.c_next = 0;
  return MbState(static_cast<std::size_t>(opt.num_procs), p);
}

std::vector<sim::Action<MbProc>> make_mb_actions(const MbOptions& opt,
                                                 SpecMonitor* monitor) {
  const int s = opt.num_procs;
  const int l = opt.l();
  // The paper requires L > 2N+1 = 2S-1 for convergence; the default
  // opt.l() = 2S satisfies it. We deliberately do NOT assert the paper
  // bound here so the model checker can probe the boundary with smaller
  // moduli (tests/check_property_test.cpp); only the structural minimum
  // for modular arithmetic is enforced.
  assert(l >= 2);
  const PhaseRing ring(opt.num_phases);
  std::vector<sim::Action<MbProc>> actions;

  for (int j = 0; j < s; ++j) {
    const auto uj = static_cast<std::size_t>(j);
    const auto uprev = static_cast<std::size_t>((j + s - 1) % s);
    const auto unext = static_cast<std::size_t>((j + 1) % s);

    if (j == 0) {
      // MT1: the root acts on its local copies only.
      actions.push_back(sim::make_action<MbProc>(
          "MT1@0", 0, {0},
          [](const MbState& st) {
            return mb_sn_valid(st[0].c_sn) &&
                   (st[0].sn == st[0].c_sn || !mb_sn_valid(st[0].sn));
          },
          [l, ring, monitor](MbState& st) {
            const CpPh leaf{st[0].c_cp, st[0].c_ph};
            const int pre_ph = st[0].ph;
            const auto upd =
                rb_root_update(CpPh{st[0].cp, st[0].ph}, std::vector<CpPh>{leaf}, ring);
            st[0].sn = (st[0].c_sn + 1) % l;
            st[0].cp = upd.next.cp;
            st[0].ph = upd.next.ph;
            report(monitor, 0, upd, pre_ph, /*root=*/true);
          }));
    } else {
      // MT2: follower acts on its local copies only.
      actions.push_back(sim::make_action<MbProc>(
          "MT2@" + std::to_string(j), j, {j},
          [uj](const MbState& st) {
            return mb_sn_valid(st[uj].c_sn) && st[uj].sn != st[uj].c_sn;
          },
          [uj, j, ring, monitor](MbState& st) {
            const int pre_ph = st[uj].ph;
            const auto upd = rb_follower_update(CpPh{st[uj].cp, st[uj].ph},
                                                CpPh{st[uj].c_cp, st[uj].c_ph}, ring);
            st[uj].sn = st[uj].c_sn;
            st[uj].cp = upd.next.cp;
            st[uj].ph = upd.next.ph;
            report(monitor, j, upd, pre_ph, /*root=*/false);
          }));
    }

    // COPY: refresh the copy cell from the real predecessor variables; the
    // cell itself evolves with the follower statement, making it the odd
    // process of the doubled ring.
    actions.push_back(sim::make_action<MbProc>(
        "COPY@" + std::to_string(j), j, {j, (j + s - 1) % s},
        [uj, uprev](const MbState& st) {
          return mb_sn_valid(st[uprev].sn) && st[uj].c_sn != st[uprev].sn;
        },
        [uj, uprev, ring](MbState& st) {
          const auto upd = rb_follower_update(CpPh{st[uj].c_cp, st[uj].c_ph},
                                              CpPh{st[uprev].cp, st[uprev].ph}, ring);
          st[uj].c_sn = st[uprev].sn;
          st[uj].c_cp = upd.next.cp;
          st[uj].c_ph = upd.next.ph;
        }));

    if (j == s - 1) {
      // MT3 at the last process.
      actions.push_back(sim::make_action<MbProc>(
          "MT3@" + std::to_string(j), j, {j},
          [uj](const MbState& st) { return st[uj].sn == kMbSnBot; },
          [uj](MbState& st) { st[uj].sn = kMbSnTop; }));
    } else {
      // CPYN: observe a TOP successor.
      actions.push_back(sim::make_action<MbProc>(
          "CPYN@" + std::to_string(j), j, {j, (j + 1) % s},
          [uj, unext](const MbState& st) {
            return st[unext].sn == kMbSnTop && st[uj].c_next != kMbSnTop;
          },
          [uj](MbState& st) { st[uj].c_next = kMbSnTop; }));
      // MT4: propagate TOP backwards using the local copy.
      actions.push_back(sim::make_action<MbProc>(
          "MT4@" + std::to_string(j), j, {j},
          [uj](const MbState& st) {
            return st[uj].sn == kMbSnBot && st[uj].c_next == kMbSnTop;
          },
          [uj](MbState& st) { st[uj].sn = kMbSnTop; }));
    }
  }

  // MT5 at the root.
  actions.push_back(sim::make_action<MbProc>(
      "MT5@0", 0, {0}, [](const MbState& st) { return st[0].sn == kMbSnTop; },
      [](MbState& st) { st[0].sn = 0; }));

  return actions;
}

sim::FaultEnv<MbProc>::Perturb mb_detectable_fault(const MbOptions& opt,
                                                   SpecMonitor* monitor) {
  const int n = opt.num_phases;
  return [n, monitor](std::size_t j, MbProc& p, util::Rng& rng) {
    if (monitor != nullptr) monitor->on_abort(static_cast<int>(j));
    p.ph = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
    p.cp = Cp::kError;
    p.sn = kMbSnBot;
    p.c_sn = kMbSnBot;
    p.c_cp = Cp::kError;
    p.c_ph = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
    p.c_next = kMbSnBot;
  };
}

sim::FaultEnv<MbProc>::Perturb mb_undetectable_fault(const MbOptions& opt,
                                                     SpecMonitor* monitor) {
  const int n = opt.num_phases;
  const int l = opt.l();
  return [n, l, monitor](std::size_t j, MbProc& p, util::Rng& rng) {
    if (monitor != nullptr) monitor->on_undetectable_fault();
    auto any_sn = [&]() {
      const auto pick = rng.uniform(static_cast<std::uint64_t>(l) + 2);
      return pick < static_cast<std::uint64_t>(l) ? static_cast<int>(pick)
             : pick == static_cast<std::uint64_t>(l) ? kMbSnBot
                                                     : kMbSnTop;
    };
    p.sn = any_sn();
    p.c_sn = any_sn();
    p.c_next = any_sn();
    p.ph = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
    p.c_ph = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
    // The root's own cp excludes repeat; copy cells are followers and may
    // hold any of the five values.
    p.cp = static_cast<Cp>(rng.uniform(j == 0 ? 4 : 5));
    p.c_cp = static_cast<Cp>(rng.uniform(5));
  };
}

bool mb_is_start_state(const MbState& s) {
  if (s.empty()) return false;
  const int sn0 = s.front().sn;
  if (!mb_sn_valid(sn0)) return false;
  return std::all_of(s.begin(), s.end(), [&](const MbProc& p) {
    return p.sn == sn0 && p.c_sn == sn0 && p.cp == Cp::kReady &&
           p.c_cp == Cp::kReady && p.ph == s.front().ph && p.c_ph == s.front().ph;
  });
}

}  // namespace ftbar::core
