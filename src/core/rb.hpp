// Program RB — barrier synchronization superposed on a multitolerant token
// ring (paper, Section 4.1), generalized to every topology of Section 4.2.
//
// Each process j maintains a sequence number sn.j in {0..K-1} augmented
// with two special values: BOT (the sequence number was detectably
// corrupted) and TOP (used to detect whole-system corruption). The token
// circulates root -> tree -> leaves; the root reads the leaves directly to
// detect that a circulation completed (in the ring, the single leaf is
// process N).
//
// Underlying token-program actions (ring formulation in the paper):
//   T1 :: at the root, all leaves valid /\ (sn.0 = sn.leaves \/ sn.0 in
//         {BOT,TOP})                    -> sn.0 := sn.leaf + 1 (mod K)
//   T2 :: at j != 0, sn.parent valid /\ sn.j != sn.parent
//                                       -> sn.j := sn.parent
//   T3 :: at a leaf,  sn = BOT          -> sn := TOP
//   T4 :: at a non-leaf, sn = BOT /\ all children TOP  -> sn := TOP
//   T5 :: at the root, sn = TOP         -> sn := 0
//
// T1 and T2 additionally run the superposed cp/ph statements of
// core/rb_rules.hpp, which implement the barrier itself.
#pragma once

#include <memory>
#include <vector>

#include "core/control.hpp"
#include "core/rb_rules.hpp"
#include "core/spec.hpp"
#include "sim/action.hpp"
#include "sim/fault_env.hpp"
#include "topology/topology.hpp"

namespace ftbar::core {

/// Sequence-number special values (stored in the int sn field).
inline constexpr int kSnBot = -1;  ///< "⊥": detectably corrupted
inline constexpr int kSnTop = -2;  ///< "⊤": whole-system corruption marker

[[nodiscard]] constexpr bool sn_valid(int sn) noexcept { return sn >= 0; }

/// Per-process state of RB.
struct RbProc {
  int sn = 0;
  Cp cp = Cp::kReady;
  int ph = 0;
  friend auto operator<=>(const RbProc&, const RbProc&) = default;
};

using RbState = std::vector<RbProc>;

struct RbOptions {
  std::shared_ptr<const topology::Topology> topo;
  int num_phases = 2;
  /// Sequence-number modulus K; must exceed the process count for
  /// stabilization (paper: K > N). 0 selects topo->size() + 1.
  int seq_modulus = 0;

  [[nodiscard]] int k() const {
    return seq_modulus > 0 ? seq_modulus : topo->size() + 1;
  }
};

[[nodiscard]] RbOptions rb_ring_options(int num_procs, int num_phases = 2);
[[nodiscard]] RbOptions rb_tree_options(int num_procs, int arity, int num_phases = 2);

/// A start state: all ready, same phase, uniform sequence numbers (so the
/// token is about to be received by the root).
[[nodiscard]] RbState rb_start_state(const RbOptions& opt, int phase = 0);

/// All guarded-command actions of RB over the given topology.
[[nodiscard]] std::vector<sim::Action<RbProc>> make_rb_actions(const RbOptions& opt,
                                                               SpecMonitor* monitor = nullptr);

// ---- fault actions (paper, Section 4.1) -------------------------------------
/// Detectable fault: ph := ?, cp := error, sn := BOT.
[[nodiscard]] sim::FaultEnv<RbProc>::Perturb rb_detectable_fault(const RbOptions& opt,
                                                                 SpecMonitor* monitor = nullptr);
/// Undetectable fault: everything := arbitrary domain values. cp.0 stays in
/// {ready, execute, success, error} (repeat is not in the root's domain).
[[nodiscard]] sim::FaultEnv<RbProc>::Perturb rb_undetectable_fault(
    const RbOptions& opt, SpecMonitor* monitor = nullptr);

// ---- state predicates --------------------------------------------------------
[[nodiscard]] bool rb_is_start_state(const RbState& s);
/// Number of tokens in a RING topology state (paper's token predicate).
[[nodiscard]] int rb_ring_token_count(const RbState& s, int k);
/// True if any process carries a BOT/TOP sequence number.
[[nodiscard]] bool rb_any_corrupt_sn(const RbState& s);

}  // namespace ftbar::core
