#include "core/control.hpp"

namespace ftbar::core {

std::string_view to_string(Cp cp) noexcept {
  switch (cp) {
    case Cp::kReady: return "ready";
    case Cp::kExecute: return "execute";
    case Cp::kSuccess: return "success";
    case Cp::kError: return "error";
    case Cp::kRepeat: return "repeat";
  }
  return "?";
}

}  // namespace ftbar::core
