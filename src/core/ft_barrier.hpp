// The practical fault-tolerant barrier: program MB running over a real
// asynchronous message-passing substrate.
//
// This is the deliverable the paper's "MPI implementation" goal asks for: a
// barrier primitive that, instead of aborting or returning a bare error
// code, gives the caller a third alternative — it masks detectable faults
// by re-executing the affected phase and stabilizes after undetectable
// ones.
//
// Two layers:
//  * MbEngine — the pure protocol state machine of one participant (process
//    j of the ring of Section 5). It consumes neighbour state snapshots and
//    produces its own snapshot to publish plus "tickets" releasing phases.
//    No I/O, no threads: both the std::thread barrier below and the
//    mini-MPI binding (mpi/ft_barrier_mpi.hpp) drive the same engine, so
//    the protocol logic exists exactly once.
//  * FaultTolerantBarrier — the std::thread front end over runtime::Network,
//    masking message loss (periodic republish), duplication and reorder
//    (link sequence filtering), detectable corruption (checksums) and
//    participant resets (the ok=false path), per the paper's fault classes.
//
// Usage:
//   FaultTolerantBarrier bar(kThreads);
//   // thread tid:
//   PhaseTicket t = FaultTolerantBarrier::initial_ticket();
//   for (int done = 0; done < kPhases;) {
//     bool ok = do_phase_work(t.phase);   // ok=false: my state was lost
//     t = bar.arrive_and_wait(tid, ok);
//     if (!t.repeated) ++done;            // repeat = redo the same phase
//   }
//   bar.finalize(tid);
//
// Guarantee: every thread COMMITS (receives with repeated=false) the same
// phases in the same order. Repeat tickets may differ per thread: a thread
// that never began a doomed instance — the execute wave was cut off before
// reaching it — has nothing to roll back and is simply released into the
// re-execution directly, which the paper's specification permits (an
// instance only requires each process to execute the phase AT MOST once).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/control.hpp"
#include "core/rb_rules.hpp"
#include "runtime/network.hpp"

namespace ftbar::core {

/// Wire snapshot of a participant's protocol state.
struct WireState {
  std::int32_t sn = 0;
  std::uint8_t cp = 0;  ///< static_cast<Cp>
  std::int32_t ph = 0;
};

/// Release of a phase to the caller.
struct PhaseTicket {
  int phase = 0;        ///< phase (mod n) the caller must execute next
  bool repeated = false;  ///< true: re-execution of the phase just attempted
};

/// Protocol state machine of participant `id` on a ring of `size`.
class MbEngine {
 public:
  MbEngine(int id, int size, int num_phases, int seq_modulus = 0);

  [[nodiscard]] int id() const noexcept { return id_; }

  /// Feeds a state snapshot received from the ring predecessor (the COPY
  /// action) or, when `from` is the successor, the TOP observation (CPYN).
  void on_neighbor_state(int from, const WireState& state);

  /// Fires enabled actions (MT1..MT5) until quiescent. Returns true when
  /// the participant's own published state changed (callers must publish).
  bool step();

  /// Consumes the pending phase release, if any (set when the engine takes
  /// the ready -> execute transition).
  [[nodiscard]] std::optional<PhaseTicket> take_ticket();

  /// True when a phase release is pending (without consuming it).
  [[nodiscard]] bool has_ticket() const noexcept { return ticket_.has_value(); }

  /// Snapshot of the participant's own variables for publishing.
  [[nodiscard]] WireState wire_state() const noexcept;

  /// The detectable-fault action: the participant's state was lost
  /// (paper: ph, cp, sn := ?, error, BOT, and the local copies reset).
  void inject_detectable_fault();

  [[nodiscard]] Cp cp() const noexcept { return cp_; }
  [[nodiscard]] int phase() const noexcept { return ph_; }

 private:
  [[nodiscard]] bool is_root() const noexcept { return id_ == 0; }
  [[nodiscard]] bool is_last() const noexcept { return id_ == size_ - 1; }

  int id_;
  int size_;
  int l_;  ///< sequence modulus, > 2N+1
  PhaseRing ring_;

  // Own variables.
  int sn_ = 0;
  Cp cp_ = Cp::kExecute;  ///< phase 0 is implicitly released at construction
  int ph_ = 0;
  // Local copies of the predecessor's variables.
  int c_sn_ = 0;
  Cp c_cp_ = Cp::kExecute;
  int c_ph_ = 0;
  // Local copy of the successor's sequence number (TOP detection).
  int c_next_ = 0;

  int last_released_phase_ = 0;
  std::optional<PhaseTicket> ticket_;
};

/// Options for the threads barrier.
struct BarrierOptions {
  int num_phases = 64;  ///< modulus of the phase counter
  /// Republish period while waiting (masks message loss).
  std::chrono::milliseconds retransmit_every{2};
  /// Poll timeout for each inbox wait.
  std::chrono::milliseconds poll{1};
  /// Faults injected on every link of the internal network.
  runtime::LinkFaults link_faults{};
  std::uint64_t seed = 0x5eedULL;
};

class FaultTolerantBarrier {
 public:
  explicit FaultTolerantBarrier(int num_threads, BarrierOptions options = {});
  ~FaultTolerantBarrier();

  FaultTolerantBarrier(const FaultTolerantBarrier&) = delete;
  FaultTolerantBarrier& operator=(const FaultTolerantBarrier&) = delete;

  [[nodiscard]] int size() const noexcept { return num_threads_; }

  /// The implicit release of phase 0 at construction.
  [[nodiscard]] static PhaseTicket initial_ticket() noexcept { return {0, false}; }

  /// Called by thread `tid` after executing its phase. `ok=false` reports
  /// that the thread's state was lost (detectable fault): the barrier then
  /// guarantees the phase is re-executed by everyone. Blocks until the next
  /// phase (or the repeat) is released.
  PhaseTicket arrive_and_wait(int tid, bool ok = true);

  /// Drains the protocol so peers still inside arrive_and_wait can finish;
  /// returns when all threads have called finalize or after `deadline`.
  void finalize(int tid, std::chrono::milliseconds deadline =
                             std::chrono::milliseconds(2000));

  /// Network fault-injection statistics (for tests and examples).
  [[nodiscard]] runtime::Network::Stats network_stats() const;

  /// Attaches a trace sink to the barrier's internal network so the
  /// message traffic of a barrier run (sends, deliveries, injected faults)
  /// is observable; pass nullptr to detach. The sink must be thread-safe.
  void set_trace_sink(trace::Sink* sink) noexcept { net_->set_trace_sink(sink); }

  /// Diagnostic snapshot of a participant's protocol state. Only
  /// meaningful when the owning thread is quiescent (deadlock analysis).
  [[nodiscard]] WireState debug_state(int tid) const {
    return engines_[static_cast<std::size_t>(tid)]->wire_state();
  }

 private:
  void publish(int tid);
  void consume(int tid, const runtime::Message& m);

  int num_threads_;
  BarrierOptions options_;
  std::unique_ptr<runtime::Network> net_;
  // Engines are indexed by thread id; each entry is touched only by its
  // owning thread (communication goes through the network).
  std::vector<std::unique_ptr<MbEngine>> engines_;
  std::vector<std::uint64_t> last_seq_from_pred_;
  std::vector<std::uint64_t> last_seq_from_succ_;
  std::vector<std::uint64_t> bye_mask_;  ///< per-thread view of finalized peers
};

}  // namespace ftbar::core
