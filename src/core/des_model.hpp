// Asynchronous discrete-event realization of program RB on a tree.
//
// A second, finer-grained model of the Section 6.2 experiments,
// independent of the wave-granularity TimedRbModel: here every guarded
// action of RB runs as a discrete event, state changes propagate to their
// readers with latency c per hop, and phase execution occupies each
// process for 1.0 time units between its execute and success transitions.
// Detectable faults arrive as a global Poisson process with rate
// -ln(1 - f) and strike a uniformly random process.
//
// Because the model is fully asynchronous, the execute/success/ready waves
// of CONSECUTIVE phases pipeline through the tree: the steady-state phase
// period lands between 1.0 (the compute time, with all synchronization
// hidden underneath) and the unpipelined wave time 1 + 2hc + 2c — strictly
// below the analytical worst case 1 + 3hc. This reproduces, by a second
// independent route, the paper's observation that simulated numbers sit
// under the analytical ones, and quantifies how much an asynchronous
// implementation gains over the lockstep (maximal-parallel) accounting.
#pragma once

#include <cstddef>

#include "core/rb.hpp"
#include "core/spec.hpp"
#include "sim/event_engine.hpp"
#include "util/rng.hpp"

namespace ftbar::core {

struct DesParams {
  int num_procs = 31;
  int arity = 2;       ///< tree arity (Figure 2c); 1 degenerates to the ring
  double c = 0.01;     ///< per-hop communication latency
  double f = 0.0;      ///< fault frequency per unit time
  int num_phases = 4;  ///< phase ring modulus
  std::uint64_t seed = 0xde5ULL;
};

class DesRbSimulation {
 public:
  explicit DesRbSimulation(const DesParams& params);

  struct Result {
    double elapsed = 0.0;          ///< simulated time consumed
    std::size_t phases = 0;        ///< successful phases completed
    std::size_t instances = 0;     ///< instances opened (incl. failures)
    std::size_t faults = 0;        ///< detectable faults injected
    bool safety_ok = true;
  };

  /// Runs until `phases` successful phases complete (or the event budget
  /// runs out — `elapsed`/`phases` then report partial progress).
  Result run(std::size_t phases, std::size_t max_events = 50'000'000);

  [[nodiscard]] const SpecMonitor& monitor() const noexcept { return monitor_; }
  [[nodiscard]] double now() const noexcept { return engine_.now(); }

  /// Upper bound on the fault-free phase period: the unpipelined time of
  /// one execute + success + ready circulation, 1 + 2hc + 2c. The measured
  /// steady-state period is below this (cross-phase wave pipelining) and
  /// at least 1.0 (the phase work itself).
  [[nodiscard]] double fault_free_period_bound() const noexcept;

 private:
  void activate(int j);
  void notify_readers(int j);
  void schedule_next_fault();

  DesParams params_;
  std::shared_ptr<const topology::Topology> topo_;
  int k_;  ///< sequence-number modulus
  PhaseRing ring_;
  SpecMonitor monitor_;
  sim::EventEngine engine_;
  util::Rng rng_;
  double fault_rate_;

  RbState state_;
  std::vector<double> work_end_;  ///< per-process phase-work completion time
  std::size_t faults_injected_ = 0;
  bool fault_chain_started_ = false;
};

}  // namespace ftbar::core
