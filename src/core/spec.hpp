// Executable specification of barrier synchronization (paper, Section 2).
//
// The SpecMonitor observes the events of a run — process j starts executing
// phase i, completes it, or loses its state to a fault — and checks the
// paper's definitions online:
//
//   * An INSTANCE of phase.i is executed iff some process starts executing
//     phase.i and each process executes phase.i at most once.
//   * An instance is executed SUCCESSFULLY iff all processes execute the
//     phase fully in that instance.
//   * Phase.i is executed successfully iff one or more instances of phase.i
//     are executed in sequence, the last of which is successful.
//
// Safety: execution of phase.(i+1) begins only after phase.i is executed
// successfully, and a new instance begins only when no process is executing
// in the current one.
// Progress: eventually each phase is executed successfully (the caller
// watches successful_phases()).
//
// Instance boundaries are not observable from start/complete events alone
// (joining an ongoing instance and opening a fresh one look identical), so
// the program reports `new_instance` on the starts that its own logic knows
// to be instance-opening (CB1's all-ready disjunct; process 0's transition
// in RB/MB).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "trace/sink.hpp"

namespace ftbar::core {

class SpecMonitor {
 public:
  /// @param num_procs   number of processes.
  /// @param num_phases  cyclic phase count n (phase ids are 0..n-1).
  SpecMonitor(int num_procs, int num_phases);

  /// Attaches a trace sink: every observed event is mirrored as a trace
  /// event (kPhaseStart/kPhaseComplete/kPhaseAbort/kSpecDesync/kSpecResync),
  /// emitted BEFORE the desync early-returns so a trace witnesses the
  /// phases started during recovery — exactly what the offline bound-m
  /// checker (trace::check_trace) needs. Event time is the monitor's own
  /// event ordinal.
  void set_sink(trace::Sink* sink) noexcept { sink_ = sink; }
  [[nodiscard]] trace::Sink* sink() const noexcept { return sink_; }

  // ---- events -------------------------------------------------------------
  /// Process `proc` transitions ready -> execute in phase `ph`.
  /// `new_instance` is true when the program knows this start opens a fresh
  /// instance rather than joining the ongoing one.
  void on_start(int proc, int ph, bool new_instance);
  /// Process `proc` transitions execute -> success in phase `ph`.
  void on_complete(int proc, int ph);
  /// Process `proc`'s state is reset (detectable fault); its partial
  /// execution in the open instance is discarded.
  void on_abort(int proc);
  /// An undetectable fault desynchronizes the monitor's view; safety
  /// checking is suspended until resync() (stabilizing tolerance does not
  /// promise correct phases in the interim, only that their number is
  /// bounded — the caller counts those separately).
  void on_undetectable_fault();
  /// Re-arms safety checking once the caller knows the system converged to
  /// a legitimate state in phase `current_phase`.
  void resync(int current_phase);

  /// Process `proc` leaves the membership (declared dead by a failure
  /// detector, or voluntarily retired). Its partial execution in the open
  /// instance is discarded, and from here on the instance-close predicate
  /// — and therefore "executed successfully" — quantifies only over the
  /// remaining members; any further start/complete from `proc` is a
  /// violation (a zombie). Mirrored to the sink as kRankKill.
  void on_leave(int proc);
  /// A replacement for `proc` rejoins a running protocol. Because the
  /// replacement cannot know exactly which instance was in flight when its
  /// events race the survivors', it enters in a GRACE state: starts that
  /// do not line up with the monitor's view are ignored as stale echoes,
  /// and the first start that joins the open instance (or validly opens
  /// the next) re-admits the process to full checking. Mirrored to the
  /// sink as kRankRestart.
  void on_join(int proc);
  [[nodiscard]] bool is_excluded(int proc) const noexcept {
    return proc >= 0 && proc < num_procs_ &&
           excluded_[static_cast<std::size_t>(proc)] != 0;
  }

  // ---- verdicts -----------------------------------------------------------
  [[nodiscard]] bool safety_ok() const noexcept { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }

  /// Number of phases executed successfully so far (Progress metric).
  [[nodiscard]] std::size_t successful_phases() const noexcept;
  /// Total instances ever opened — the "number of instances executed"
  /// metric of Section 6.
  [[nodiscard]] std::size_t total_instances() const noexcept { return total_instances_; }
  /// Instances that closed without every process completing.
  [[nodiscard]] std::size_t failed_instances() const noexcept { return failed_instances_; }
  /// Phase whose successful execution is pending (mod n).
  [[nodiscard]] int expected_phase() const noexcept { return expected_phase_; }
  /// True when the most recent closed instance of the expected phase was
  /// successful (i.e. the phase counts as executed successfully).
  [[nodiscard]] bool last_instance_successful() const noexcept { return last_successful_; }
  /// True while at least one process is mid-phase in the open instance.
  [[nodiscard]] bool anyone_executing() const noexcept;
  [[nodiscard]] bool instance_open() const noexcept { return instance_open_; }
  [[nodiscard]] bool desynced() const noexcept { return desynced_; }

 private:
  void violate(std::string what);
  void open_instance(int ph);
  void close_failed();
  /// Closes the open instance successfully iff every non-excluded process
  /// completed (and at least one process is left to vouch for it).
  void maybe_close_successful();
  void emit_event(ftbar::trace::Kind kind, int proc, long long a = 0, long long b = 0,
             long long c = 0) noexcept;
  [[nodiscard]] bool executing(int proc) const noexcept {
    return started_[static_cast<std::size_t>(proc)] &&
           !completed_[static_cast<std::size_t>(proc)] &&
           !aborted_[static_cast<std::size_t>(proc)];
  }

  int num_procs_;
  int num_phases_;
  int expected_phase_ = 0;
  bool last_successful_ = false;
  std::size_t advanced_ = 0;  ///< times expected_phase_ moved forward

  bool instance_open_ = false;
  int instance_phase_ = -1;
  std::vector<char> started_;
  std::vector<char> completed_;
  std::vector<char> aborted_;
  std::vector<char> excluded_;  ///< left the membership (dead/retired)
  std::vector<char> grace_;     ///< rejoined, first start not yet aligned

  bool desynced_ = false;
  std::size_t total_instances_ = 0;
  std::size_t failed_instances_ = 0;
  std::vector<std::string> violations_;

  trace::Sink* sink_ = nullptr;
  std::size_t events_seen_ = 0;  ///< logical clock for emitted trace events
};

}  // namespace ftbar::core
