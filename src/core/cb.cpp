#include "core/cb.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <string>

namespace ftbar::core {

namespace {

bool all_cp(const CbState& s, Cp cp) {
  return std::all_of(s.begin(), s.end(), [cp](const CbProc& p) { return p.cp == cp; });
}

bool any_cp(const CbState& s, Cp cp) {
  return std::any_of(s.begin(), s.end(), [cp](const CbProc& p) { return p.cp == cp; });
}

bool none_cp(const CbState& s, Cp cp) { return !any_cp(s, cp); }

/// Lowest-index process in control position `cp`, or -1.
int first_with(const CbState& s, Cp cp) {
  for (std::size_t k = 0; k < s.size(); ++k) {
    if (s[k].cp == cp) return static_cast<int>(k);
  }
  return -1;
}

}  // namespace

CbState cb_start_state(const CbOptions& opt, int phase) {
  assert(opt.num_phases >= 2);
  return CbState(static_cast<std::size_t>(opt.num_procs), CbProc{Cp::kReady, phase});
}

std::vector<sim::Action<CbProc>> make_cb_actions(const CbOptions& opt, SpecMonitor* monitor) {
  assert(opt.num_procs >= 1 && opt.num_phases >= 2);
  std::vector<sim::Action<CbProc>> actions;
  actions.reserve(static_cast<std::size_t>(opt.num_procs) * 4);
  const PhaseRing ring(opt.num_phases);
  // Every CB guard quantifies over all processes (the coarse-grain point of
  // the program), so the honest read-set is the full process range.
  const std::vector<int> all = sim::all_reads(opt.num_procs);

  for (int j = 0; j < opt.num_procs; ++j) {
    const auto uj = static_cast<std::size_t>(j);

    // CB1: ready -> execute once everyone is ready, or following a starter.
    actions.push_back(sim::make_action<CbProc>(
        "CB1@" + std::to_string(j), j, all,
        [uj](const CbState& s) {
          return s[uj].cp == Cp::kReady &&
                 (all_cp(s, Cp::kReady) || any_cp(s, Cp::kExecute));
        },
        [uj, j, monitor](CbState& s) {
          if (monitor != nullptr) {
            // The all-ready disjunct is the instance-opening transition.
            monitor->on_start(j, s[uj].ph, /*new_instance=*/all_cp(s, Cp::kReady));
          }
          s[uj].cp = Cp::kExecute;
        }));

    // CB2: execute -> success only after every process left ready (so a
    // reset process cannot be stranded mid-instance), or following a
    // process already in success.
    actions.push_back(sim::make_action<CbProc>(
        "CB2@" + std::to_string(j), j, all,
        [uj](const CbState& s) {
          return s[uj].cp == Cp::kExecute &&
                 (none_cp(s, Cp::kReady) || any_cp(s, Cp::kSuccess));
        },
        [uj, j, monitor](CbState& s) {
          if (monitor != nullptr) monitor->on_complete(j, s[uj].ph);
          s[uj].cp = Cp::kSuccess;
        }));

    // CB3: success -> ready when nobody is executing; picks the next phase.
    actions.push_back(sim::make_action<CbProc>(
        "CB3@" + std::to_string(j), j, all,
        [uj](const CbState& s) {
          return s[uj].cp == Cp::kSuccess && none_cp(s, Cp::kExecute);
        },
        [uj, ring](CbState& s) {
          if (const int r = first_with(s, Cp::kReady); r >= 0) {
            s[uj].ph = s[static_cast<std::size_t>(r)].ph;
          } else if (all_cp(s, Cp::kSuccess)) {
            s[uj].ph = ring.next(s[uj].ph);
          }
          // else: some process is in error -> keep the phase, forcing a new
          // instance of the current phase.
          s[uj].cp = Cp::kReady;
        }));

    // CB4: error -> ready when nobody is executing; re-learns the phase.
    actions.push_back(sim::make_action<CbProc>(
        "CB4@" + std::to_string(j), j, all,
        [uj](const CbState& s) {
          return s[uj].cp == Cp::kError && none_cp(s, Cp::kExecute);
        },
        [uj](CbState& s) {
          if (const int r = first_with(s, Cp::kReady); r >= 0) {
            s[uj].ph = s[static_cast<std::size_t>(r)].ph;
          } else if (const int c = first_with(s, Cp::kSuccess); c >= 0) {
            s[uj].ph = s[static_cast<std::size_t>(c)].ph;
          } else {
            s[uj].ph = 0;  // "an arbitrary number in {0..n-1}"
          }
          s[uj].cp = Cp::kReady;
        }));
  }
  return actions;
}

sim::FaultEnv<CbProc>::Perturb cb_detectable_fault(const CbOptions& opt,
                                                   SpecMonitor* monitor) {
  const int n = opt.num_phases;
  return [n, monitor](std::size_t j, CbProc& p, util::Rng& rng) {
    if (monitor != nullptr) monitor->on_abort(static_cast<int>(j));
    p.ph = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
    p.cp = Cp::kError;
  };
}

sim::FaultEnv<CbProc>::Perturb cb_undetectable_fault(const CbOptions& opt,
                                                     SpecMonitor* monitor) {
  const int n = opt.num_phases;
  return [n, monitor](std::size_t, CbProc& p, util::Rng& rng) {
    if (monitor != nullptr) monitor->on_undetectable_fault();
    p.ph = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
    // CB's cp domain: ready, execute, success, error (no repeat).
    p.cp = static_cast<Cp>(rng.uniform(4));
  };
}

bool cb_is_start_state(const CbState& s) {
  if (s.empty() || !all_cp(s, Cp::kReady)) return false;
  return std::all_of(s.begin(), s.end(),
                     [&](const CbProc& p) { return p.ph == s.front().ph; });
}

bool cb_legitimate(const CbState& s, int num_phases) {
  if (s.empty()) return false;
  const PhaseRing ring(num_phases);

  // Case A/B: all in the same phase with cp drawn from {ready, execute} or
  // from {execute, success}.
  const int ph0 = s.front().ph;
  const bool same_phase =
      std::all_of(s.begin(), s.end(), [&](const CbProc& p) { return p.ph == ph0; });
  if (same_phase) {
    const bool re = std::all_of(s.begin(), s.end(), [](const CbProc& p) {
      return p.cp == Cp::kReady || p.cp == Cp::kExecute;
    });
    const bool es = std::all_of(s.begin(), s.end(), [](const CbProc& p) {
      return p.cp == Cp::kExecute || p.cp == Cp::kSuccess;
    });
    if (re || es) return true;
  }

  // Case C: the phase-advance front — success in phase i, ready in phase
  // i+1, both present.
  int ph_succ = -1;
  for (const auto& p : s) {
    if (p.cp == Cp::kSuccess) {
      ph_succ = p.ph;
      break;
    }
  }
  if (ph_succ < 0) return false;
  const int ph_next = ring.next(ph_succ);
  bool any_ready = false;
  for (const auto& p : s) {
    if (p.cp == Cp::kSuccess && p.ph == ph_succ) continue;
    if (p.cp == Cp::kReady && p.ph == ph_next) {
      any_ready = true;
      continue;
    }
    return false;
  }
  return any_ready;
}

int cb_distinct_phases(const CbState& s) {
  std::set<int> phases;
  for (const auto& p : s) phases.insert(p.ph);
  return static_cast<int>(phases.size());
}

}  // namespace ftbar::core
