// The single-phase case (paper, Section 3, closing remark).
//
// The programs assume a cyclic sequence of at least two phases so that
// "the next phase" and "a new instance of the current phase" are
// distinguishable states. When the computation really has ONE recurring
// phase (a plain iterative barrier loop), the paper offers two options:
// modify the program to drop the ph variable, or "map the single phase
// case onto the multiple phase case, without loss of generality, by
// replicating the single phase". This adapter implements the replication:
// the underlying machinery runs with two phase ids, both of which the
// caller sees as the same single phase; `repeated` keeps its meaning (the
// same ITERATION must be redone).
#pragma once

#include "core/ft_barrier.hpp"

namespace ftbar::core {

/// A barrier for a single recurring phase, built by phase replication.
class SinglePhaseBarrier {
 public:
  explicit SinglePhaseBarrier(int num_threads, BarrierOptions options = {})
      : barrier_(num_threads, normalize(options)) {}

  [[nodiscard]] int size() const noexcept { return barrier_.size(); }

  struct Outcome {
    bool repeated = false;  ///< the iteration must be re-executed
  };

  /// Arrives at the single phase's barrier; `ok=false` reports state loss.
  Outcome arrive_and_wait(int tid, bool ok = true) {
    const auto ticket = barrier_.arrive_and_wait(tid, ok);
    return Outcome{ticket.repeated};
  }

  void finalize(int tid, std::chrono::milliseconds deadline =
                             std::chrono::milliseconds(2000)) {
    barrier_.finalize(tid, deadline);
  }

  [[nodiscard]] runtime::Network::Stats network_stats() const {
    return barrier_.network_stats();
  }

 private:
  static BarrierOptions normalize(BarrierOptions options) {
    options.num_phases = 2;  // the replication: one phase, two ids
    return options;
  }

  FaultTolerantBarrier barrier_;
};

}  // namespace ftbar::core
