// Control positions and phase arithmetic shared by all refinements.
#pragma once

#include <cstdint>
#include <string_view>

namespace ftbar::core {

/// Control position of a process (paper, Sections 3-4).
///
/// kRepeat exists only in the distributed refinements (RB/MB): a process
/// that was detectably corrupted, or that observes the instance has failed,
/// propagates `repeat` toward the decision process instead of `success`.
///
/// The underlying type is int-width so that the process structs embedding a
/// Cp next to int fields (RbProc, CbProc, MbProc) have no padding bytes and
/// admit unique object representations — the record/replay layer digests
/// and serialises raw state bytes, which padding garbage would poison.
/// Wire encodings that want one byte cast explicitly (WireState).
enum class Cp : std::int32_t {
  kReady = 0,    ///< ready to execute the current phase
  kExecute = 1,  ///< executing the current phase
  kSuccess = 2,  ///< completed the current phase
  kError = 3,    ///< control state detectably corrupted
  kRepeat = 4,   ///< (RB/MB only) instance failed; request re-execution
};

[[nodiscard]] std::string_view to_string(Cp cp) noexcept;

/// Phase arithmetic modulo the cyclic phase count n (paper: ph in 0..n-1).
class PhaseRing {
 public:
  explicit constexpr PhaseRing(int n) noexcept : n_(n) {}

  [[nodiscard]] constexpr int n() const noexcept { return n_; }
  [[nodiscard]] constexpr int next(int ph) const noexcept { return (ph + 1) % n_; }
  [[nodiscard]] constexpr int prev(int ph) const noexcept { return (ph + n_ - 1) % n_; }
  [[nodiscard]] constexpr bool valid(int ph) const noexcept { return 0 <= ph && ph < n_; }
  /// Clamp an arbitrary (possibly corrupted) value into the domain.
  [[nodiscard]] constexpr int canon(int ph) const noexcept {
    const int m = ph % n_;
    return m < 0 ? m + n_ : m;
  }

 private:
  int n_;
};

}  // namespace ftbar::core
