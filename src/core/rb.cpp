#include "core/rb.hpp"

#include <algorithm>
#include <cassert>
#include <string>

namespace ftbar::core {

namespace {

/// Dispatches the spec-monitor event for an update at process j.
void report(SpecMonitor* monitor, int j, const RbUpdate& upd, int pre_ph,
            bool root) {
  if (monitor == nullptr) return;
  switch (upd.event) {
    case RbEvent::kStart:
      monitor->on_start(j, upd.next.ph, /*new_instance=*/root);
      break;
    case RbEvent::kComplete:
      monitor->on_complete(j, pre_ph);
      break;
    case RbEvent::kAbort:
      monitor->on_abort(j);
      break;
    case RbEvent::kNone:
      break;
  }
}

}  // namespace

RbOptions rb_ring_options(int num_procs, int num_phases) {
  return RbOptions{
      std::make_shared<const topology::Topology>(topology::Topology::ring(num_procs)),
      num_phases, 0};
}

RbOptions rb_tree_options(int num_procs, int arity, int num_phases) {
  return RbOptions{std::make_shared<const topology::Topology>(
                       topology::Topology::kary_tree(num_procs, arity)),
                   num_phases, 0};
}

RbState rb_start_state(const RbOptions& opt, int phase) {
  assert(opt.topo != nullptr && opt.num_phases >= 2);
  return RbState(static_cast<std::size_t>(opt.topo->size()),
                 RbProc{0, Cp::kReady, phase});
}

std::vector<sim::Action<RbProc>> make_rb_actions(const RbOptions& opt,
                                                 SpecMonitor* monitor) {
  assert(opt.topo != nullptr);
  const auto topo = opt.topo;
  const int k = opt.k();
  assert(k > topo->size());
  const PhaseRing ring(opt.num_phases);
  std::vector<sim::Action<RbProc>> actions;

  const auto& leaves = topo->leaves();

  // Guard read-set of T1: the root plus every leaf (the root detects a
  // completed circulation by reading the leaves directly, Fig 2).
  std::vector<int> t1_reads{0};
  t1_reads.insert(t1_reads.end(), leaves.begin(), leaves.end());

  // T1 + superposed root statement.
  //
  // Guard: in normal circulation (sn.0 valid) every leaf must hold the
  // root's sequence number. When the root itself is corrupted (BOT/TOP) it
  // may escape off ANY single valid leaf — requiring all leaves valid here
  // would deadlock against T4 (which requires all children TOP) when the
  // leaves are split between valid and TOP, a state the two-leaf
  // exhaustive check exhibits. The ring (one leaf) is unaffected.
  actions.push_back(sim::make_action<RbProc>(
      "T1@0", 0, std::move(t1_reads),
      [topo](const RbState& s) {
        const auto& lv = topo->leaves();
        const int sn0 = s[0].sn;
        if (sn0 == kSnBot || sn0 == kSnTop) {
          return std::any_of(lv.begin(), lv.end(), [&](int l) {
            return sn_valid(s[static_cast<std::size_t>(l)].sn);
          });
        }
        return std::all_of(lv.begin(), lv.end(), [&](int l) {
          return s[static_cast<std::size_t>(l)].sn == sn0;
        });
      },
      [topo, k, ring, monitor](RbState& s) {
        const auto& lv = topo->leaves();
        // Reference leaf: the first valid one (in normal circulation every
        // leaf is valid and equal, so this is just the first). Its view is
        // rotated to the front so the statement's "copy the phase of a
        // leaf" branch reads a trustworthy phase.
        std::size_t ref = 0;
        for (std::size_t i = 0; i < lv.size(); ++i) {
          if (sn_valid(s[static_cast<std::size_t>(lv[i])].sn)) {
            ref = i;
            break;
          }
        }
        std::vector<CpPh> leaf_views;
        leaf_views.reserve(lv.size());
        for (std::size_t i = 0; i < lv.size(); ++i) {
          const auto& p = s[static_cast<std::size_t>(lv[(ref + i) % lv.size()])];
          leaf_views.push_back(CpPh{p.cp, p.ph});
        }
        const int pre_ph = s[0].ph;
        const auto upd = rb_root_update(CpPh{s[0].cp, s[0].ph}, leaf_views, ring);
        s[0].sn = (s[static_cast<std::size_t>(lv[ref])].sn + 1) % k;
        s[0].cp = upd.next.cp;
        s[0].ph = upd.next.ph;
        report(monitor, 0, upd, pre_ph, /*root=*/true);
      }));

  // T2 + superposed follower statement, one per non-root process.
  for (int j = 1; j < topo->size(); ++j) {
    const auto uj = static_cast<std::size_t>(j);
    const auto up = static_cast<std::size_t>(topo->parent(j));
    actions.push_back(sim::make_action<RbProc>(
        "T2@" + std::to_string(j), j, {j, topo->parent(j)},
        [uj, up](const RbState& s) {
          return sn_valid(s[up].sn) && s[uj].sn != s[up].sn;
        },
        [uj, up, j, ring, monitor](RbState& s) {
          const int pre_ph = s[uj].ph;
          const auto upd = rb_follower_update(CpPh{s[uj].cp, s[uj].ph},
                                              CpPh{s[up].cp, s[up].ph}, ring);
          s[uj].sn = s[up].sn;
          s[uj].cp = upd.next.cp;
          s[uj].ph = upd.next.ph;
          report(monitor, j, upd, pre_ph, /*root=*/false);
        }));
  }

  // T3 at every leaf: BOT -> TOP.
  for (int l : leaves) {
    const auto ul = static_cast<std::size_t>(l);
    actions.push_back(sim::make_action<RbProc>(
        "T3@" + std::to_string(l), l, {l},
        [ul](const RbState& s) { return s[ul].sn == kSnBot; },
        [ul](RbState& s) { s[ul].sn = kSnTop; }));
  }

  // T4 at every non-leaf (including the root): BOT with all children TOP -> TOP.
  for (int j = 0; j < topo->size(); ++j) {
    if (topo->is_leaf(j)) continue;
    const auto uj = static_cast<std::size_t>(j);
    const auto kids = topo->children(j);
    std::vector<int> t4_reads{j};
    t4_reads.insert(t4_reads.end(), kids.begin(), kids.end());
    actions.push_back(sim::make_action<RbProc>(
        "T4@" + std::to_string(j), j, std::move(t4_reads),
        [uj, kids](const RbState& s) {
          if (s[uj].sn != kSnBot) return false;
          return std::all_of(kids.begin(), kids.end(), [&](int c) {
            return s[static_cast<std::size_t>(c)].sn == kSnTop;
          });
        },
        [uj](RbState& s) { s[uj].sn = kSnTop; }));
  }

  // T5 at the root: TOP -> 0.
  actions.push_back(sim::make_action<RbProc>(
      "T5@0", 0, {0}, [](const RbState& s) { return s[0].sn == kSnTop; },
      [](RbState& s) { s[0].sn = 0; }));

  return actions;
}

sim::FaultEnv<RbProc>::Perturb rb_detectable_fault(const RbOptions& opt,
                                                   SpecMonitor* monitor) {
  const int n = opt.num_phases;
  return [n, monitor](std::size_t j, RbProc& p, util::Rng& rng) {
    if (monitor != nullptr) monitor->on_abort(static_cast<int>(j));
    p.ph = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
    p.cp = Cp::kError;
    p.sn = kSnBot;
  };
}

sim::FaultEnv<RbProc>::Perturb rb_undetectable_fault(const RbOptions& opt,
                                                     SpecMonitor* monitor) {
  const int n = opt.num_phases;
  const int k = opt.k();
  return [n, k, monitor](std::size_t j, RbProc& p, util::Rng& rng) {
    if (monitor != nullptr) monitor->on_undetectable_fault();
    p.ph = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
    // sn: any of {0..K-1, BOT, TOP}.
    const auto pick = rng.uniform(static_cast<std::uint64_t>(k) + 2);
    p.sn = pick < static_cast<std::uint64_t>(k) ? static_cast<int>(pick)
           : pick == static_cast<std::uint64_t>(k) ? kSnBot
                                                   : kSnTop;
    // cp: the root's domain excludes repeat.
    p.cp = static_cast<Cp>(rng.uniform(j == 0 ? 4 : 5));
  };
}

bool rb_is_start_state(const RbState& s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [&](const RbProc& p) {
    return p.cp == Cp::kReady && p.ph == s.front().ph && p.sn == s.front().sn &&
           sn_valid(p.sn);
  });
}

int rb_ring_token_count(const RbState& s, int k) {
  (void)k;
  int count = 0;
  const auto n = s.size();
  for (std::size_t j = 0; j + 1 < n; ++j) {
    if (sn_valid(s[j].sn) && sn_valid(s[j + 1].sn) && s[j].sn != s[j + 1].sn) ++count;
  }
  if (sn_valid(s[n - 1].sn) && sn_valid(s[0].sn) && s[n - 1].sn == s[0].sn) ++count;
  return count;
}

bool rb_any_corrupt_sn(const RbState& s) {
  return std::any_of(s.begin(), s.end(), [](const RbProc& p) { return !sn_valid(p.sn); });
}

}  // namespace ftbar::core
