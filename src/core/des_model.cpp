#include "core/des_model.hpp"

#include <cmath>

namespace ftbar::core {

DesRbSimulation::DesRbSimulation(const DesParams& params)
    : params_(params),
      topo_(std::make_shared<const topology::Topology>(
          params.arity <= 1 ? topology::Topology::ring(params.num_procs)
                            : topology::Topology::kary_tree(params.num_procs,
                                                            params.arity))),
      k_(topo_->size() + 1),
      ring_(params.num_phases),
      monitor_(params.num_procs, params.num_phases),
      rng_(params.seed),
      fault_rate_(params.f > 0.0 ? -std::log(1.0 - params.f) : 0.0),
      state_(rb_start_state(RbOptions{topo_, params.num_phases, 0})),
      work_end_(static_cast<std::size_t>(params.num_procs), 0.0) {}

double DesRbSimulation::fault_free_period_bound() const noexcept {
  return 1.0 + 2.0 * topo_->height() * params_.c + 2.0 * params_.c;
}

void DesRbSimulation::notify_readers(int j) {
  // Readers of j's variables: its children (T2), its parent (T4), and —
  // when j is a leaf — the root via the leaf->root links of Figure 2(c).
  for (int child : topo_->children(j)) {
    engine_.schedule(params_.c, [this, child] { activate(child); });
  }
  if (j != 0) {
    const int parent = topo_->parent(j);
    engine_.schedule(params_.c, [this, parent] { activate(parent); });
    if (topo_->is_leaf(j)) {
      engine_.schedule(params_.c, [this] { activate(0); });
    }
  }
}

void DesRbSimulation::activate(int j) {
  const auto uj = static_cast<std::size_t>(j);
  bool any_change = false;
  for (bool fired = true; fired;) {
    fired = false;

    if (j == 0) {
      // T1 guard, mirroring core/rb.cpp: normal circulation requires every
      // leaf to match the root's sn; a corrupted root escapes off any
      // single valid leaf.
      const auto& lv = topo_->leaves();
      bool enabled;
      if (!sn_valid(state_[0].sn)) {
        enabled = false;
        for (int l : lv) {
          if (sn_valid(state_[static_cast<std::size_t>(l)].sn)) enabled = true;
        }
      } else {
        enabled = true;
        for (int l : lv) {
          if (state_[static_cast<std::size_t>(l)].sn != state_[0].sn) enabled = false;
        }
      }
      if (enabled) {
        // Phase-work gating: the execute -> success transition may not run
        // before this process's phase work is finished.
        if (state_[0].cp == Cp::kExecute && engine_.now() < work_end_[0]) {
          engine_.schedule_at(work_end_[0], [this] { activate(0); });
        } else {
          // Reference leaf: the first valid one, rotated to the front of
          // the views (as in core/rb.cpp).
          std::size_t ref = 0;
          for (std::size_t i = 0; i < lv.size(); ++i) {
            if (sn_valid(state_[static_cast<std::size_t>(lv[i])].sn)) {
              ref = i;
              break;
            }
          }
          std::vector<CpPh> leaf_views;
          leaf_views.reserve(lv.size());
          for (std::size_t i = 0; i < lv.size(); ++i) {
            const auto& p =
                state_[static_cast<std::size_t>(lv[(ref + i) % lv.size()])];
            leaf_views.push_back(CpPh{p.cp, p.ph});
          }
          const int pre_ph = state_[0].ph;
          const auto upd = rb_root_update(CpPh{state_[0].cp, state_[0].ph},
                                          leaf_views, ring_);
          state_[0].sn =
              (state_[static_cast<std::size_t>(lv[ref])].sn + 1) % k_;
          state_[0].cp = upd.next.cp;
          state_[0].ph = upd.next.ph;
          switch (upd.event) {
            case RbEvent::kStart:
              monitor_.on_start(0, upd.next.ph, /*new_instance=*/true);
              work_end_[0] = engine_.now() + 1.0;
              break;
            case RbEvent::kComplete:
              monitor_.on_complete(0, pre_ph);
              break;
            case RbEvent::kAbort:
              monitor_.on_abort(0);
              break;
            case RbEvent::kNone:
              break;
          }
          fired = any_change = true;
        }
      }
      // T5: TOP -> 0.
      if (state_[0].sn == kSnTop) {
        state_[0].sn = 0;
        fired = any_change = true;
      }
    } else {
      // T2 guard: parent valid, own sn differs.
      const auto up = static_cast<std::size_t>(topo_->parent(j));
      if (sn_valid(state_[up].sn) && state_[uj].sn != state_[up].sn) {
        const bool completing =
            state_[uj].cp == Cp::kExecute && state_[up].cp == Cp::kSuccess;
        if (completing && engine_.now() < work_end_[uj]) {
          engine_.schedule_at(work_end_[uj], [this, j] { activate(j); });
        } else {
          const int pre_ph = state_[uj].ph;
          const auto upd = rb_follower_update(CpPh{state_[uj].cp, state_[uj].ph},
                                              CpPh{state_[up].cp, state_[up].ph},
                                              ring_);
          state_[uj].sn = state_[up].sn;
          state_[uj].cp = upd.next.cp;
          state_[uj].ph = upd.next.ph;
          switch (upd.event) {
            case RbEvent::kStart:
              monitor_.on_start(j, upd.next.ph, /*new_instance=*/false);
              work_end_[uj] = engine_.now() + 1.0;
              break;
            case RbEvent::kComplete:
              monitor_.on_complete(j, pre_ph);
              break;
            case RbEvent::kAbort:
              monitor_.on_abort(j);
              break;
            case RbEvent::kNone:
              break;
          }
          fired = any_change = true;
        }
      }
      // T3 at leaves: BOT -> TOP.
      if (topo_->is_leaf(j) && state_[uj].sn == kSnBot) {
        state_[uj].sn = kSnTop;
        fired = any_change = true;
      }
    }

    // T4 at non-leaves (root included): BOT with all children TOP -> TOP.
    if (!topo_->is_leaf(j) && state_[uj].sn == kSnBot) {
      bool all_top = true;
      for (int child : topo_->children(j)) {
        if (state_[static_cast<std::size_t>(child)].sn != kSnTop) all_top = false;
      }
      if (all_top) {
        state_[uj].sn = kSnTop;
        fired = any_change = true;
      }
    }
  }
  if (any_change) notify_readers(j);
}

void DesRbSimulation::schedule_next_fault() {
  if (fault_rate_ <= 0.0) return;
  fault_chain_started_ = true;
  engine_.schedule(rng_.exponential(fault_rate_), [this] {
    // Pick a victim whose corruption keeps at least one process intact
    // (footnote 2: corrupting everyone detectably is undetectable-class).
    const auto victim = rng_.uniform(state_.size());
    int intact = 0;
    for (std::size_t k = 0; k < state_.size(); ++k) {
      if (k != victim && sn_valid(state_[k].sn)) ++intact;
    }
    if (intact > 0) {
      monitor_.on_abort(static_cast<int>(victim));
      state_[victim].sn = kSnBot;
      state_[victim].cp = Cp::kError;
      state_[victim].ph =
          static_cast<int>(rng_.uniform(static_cast<std::uint64_t>(params_.num_phases)));
      ++faults_injected_;
      const auto v = static_cast<int>(victim);
      engine_.schedule(params_.c, [this, v] { activate(v); });
      notify_readers(v);
    }
    schedule_next_fault();
  });
}

DesRbSimulation::Result DesRbSimulation::run(std::size_t phases,
                                             std::size_t max_events) {
  const double t0 = engine_.now();
  const auto phases0 = monitor_.successful_phases();
  const auto instances0 = monitor_.total_instances();
  const auto faults0 = faults_injected_;

  for (int j = 0; j < params_.num_procs; ++j) {
    engine_.schedule(0.0, [this, j] { activate(j); });
  }
  if (!fault_chain_started_) schedule_next_fault();

  engine_.run_while_pending(
      [&] { return monitor_.successful_phases() >= phases0 + phases; }, max_events);

  Result result;
  result.elapsed = engine_.now() - t0;
  result.phases = monitor_.successful_phases() - phases0;
  result.instances = monitor_.total_instances() - instances0;
  result.faults = faults_injected_ - faults0;
  result.safety_ok = monitor_.safety_ok();
  return result;
}

}  // namespace ftbar::core
