#include "core/hw_table.hpp"

namespace ftbar::core::hw {

namespace {
int apply_ph(PhOp op, int self_ph, int neighbor_ph, const PhaseRing& ring) {
  switch (op) {
    case PhOp::kKeep: return self_ph;
    case PhOp::kIncrement: return ring.next(self_ph);
    case PhOp::kCopyNeighbor: return ring.canon(neighbor_ph);
  }
  return self_ph;
}
}  // namespace

RbUpdate follower_update(CpPh self, CpPh prev, const PhaseRing& ring) {
  const Entry& e = kFollowerTable[static_cast<std::size_t>(self.cp)]
                                 [static_cast<std::size_t>(prev.cp)];
  return RbUpdate{CpPh{e.next_cp(), apply_ph(e.ph_op(), self.ph, prev.ph, ring)}, e.event()};
}

RbUpdate root_update(CpPh self, bool leaves_ready_aligned,
                     bool leaves_success_aligned, int first_leaf_ph,
                     const PhaseRing& ring) {
  const Entry& e = kRootTable[static_cast<std::size_t>(self.cp)]
                             [leaves_ready_aligned ? 1 : 0]
                             [leaves_success_aligned ? 1 : 0];
  return RbUpdate{CpPh{e.next_cp(), apply_ph(e.ph_op(), self.ph, first_leaf_ph, ring)},
                  e.event()};
}

}  // namespace ftbar::core::hw
