#include "core/token_ring.hpp"

#include <cassert>
#include <string>

namespace ftbar::core {

TrState tr_start_state(const TrOptions& opt) {
  return TrState(static_cast<std::size_t>(opt.num_procs), TrProc{0});
}

std::vector<sim::Action<TrProc>> make_tr_actions(const TrOptions& opt) {
  const int s = opt.num_procs;
  const int k = opt.k();
  assert(s >= 2);
  std::vector<sim::Action<TrProc>> actions;
  const auto last = static_cast<std::size_t>(s - 1);

  // Honest read-sets throughout (the contract auditor's worklist made
  // explicit): each guard names exactly the slots it compares.
  actions.push_back(sim::make_action<TrProc>(
      "T1@0", 0, {0, s - 1},
      [last](const TrState& st) {
        return tr_valid(st[last].sn) && (st[0].sn == st[last].sn || !tr_valid(st[0].sn));
      },
      [last, k](TrState& st) { st[0].sn = (st[last].sn + 1) % k; }));

  for (int j = 1; j < s; ++j) {
    const auto uj = static_cast<std::size_t>(j);
    actions.push_back(sim::make_action<TrProc>(
        "T2@" + std::to_string(j), j, {j - 1, j},
        [uj](const TrState& st) {
          return tr_valid(st[uj - 1].sn) && st[uj].sn != st[uj - 1].sn;
        },
        [uj](TrState& st) { st[uj].sn = st[uj - 1].sn; }));
  }

  actions.push_back(sim::make_action<TrProc>(
      "T3@" + std::to_string(s - 1), s - 1, {s - 1},
      [last](const TrState& st) { return st[last].sn == kTrBot; },
      [last](TrState& st) { st[last].sn = kTrTop; }));

  for (int j = 0; j < s - 1; ++j) {
    const auto uj = static_cast<std::size_t>(j);
    actions.push_back(sim::make_action<TrProc>(
        "T4@" + std::to_string(j), j, {j, j + 1},
        [uj](const TrState& st) {
          return st[uj].sn == kTrBot && st[uj + 1].sn == kTrTop;
        },
        [uj](TrState& st) { st[uj].sn = kTrTop; }));
  }

  actions.push_back(sim::make_action<TrProc>(
      "T5@0", 0, {0}, [](const TrState& st) { return st[0].sn == kTrTop; },
      [](TrState& st) { st[0].sn = 0; }));

  return actions;
}

bool tr_has_token(const TrState& s, int j) {
  const auto n = s.size();
  const auto uj = static_cast<std::size_t>(j);
  if (uj + 1 < n) {
    return tr_valid(s[uj].sn) && tr_valid(s[uj + 1].sn) && s[uj].sn != s[uj + 1].sn;
  }
  return tr_valid(s[n - 1].sn) && tr_valid(s[0].sn) && s[n - 1].sn == s[0].sn;
}

int tr_token_count(const TrState& s) {
  int count = 0;
  for (std::size_t j = 0; j < s.size(); ++j) {
    count += tr_has_token(s, static_cast<int>(j));
  }
  return count;
}

bool tr_legitimate(const TrState& s) {
  for (const auto& p : s) {
    if (!tr_valid(p.sn)) return false;
  }
  return tr_token_count(s) == 1;
}

sim::FaultEnv<TrProc>::Perturb tr_detectable_fault() {
  return [](std::size_t, TrProc& p, util::Rng&) { p.sn = kTrBot; };
}

sim::FaultEnv<TrProc>::Perturb tr_undetectable_fault(const TrOptions& opt) {
  const int k = opt.k();
  return [k](std::size_t, TrProc& p, util::Rng& rng) {
    const auto pick = rng.uniform(static_cast<std::uint64_t>(k) + 2);
    p.sn = pick < static_cast<std::uint64_t>(k) ? static_cast<int>(pick)
           : pick == static_cast<std::uint64_t>(k) ? kTrBot
                                                   : kTrTop;
  };
}

}  // namespace ftbar::core
