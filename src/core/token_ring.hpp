// The underlying multitolerant token ring (paper, Section 4.1), standalone.
//
// RB superposes the barrier's cp/ph updates on this program; the standalone
// form exists so its own properties — the ones Lemma 4.1.2 cites — can be
// tested in isolation:
//   * fault-free: exactly one token circulates forever;
//   * detectable faults: at most one token at all times, eventually exactly
//     one, and a process can tell it was corrupted (sn in {BOT, TOP});
//   * undetectable faults: any number of tokens transiently, but the ring
//     converges to exactly one (self-stabilization a la Dijkstra, which
//     needs the sequence domain K to EXCEED the ring size minus one — the
//     paper's "K > N"; the tests exhibit a non-converging cycle when K is
//     one smaller).
//
// Actions (ring 0..S-1, arithmetic mod K on sequence numbers):
//   T1 :: at 0, sn.last valid /\ (sn.0 = sn.last \/ sn.0 in {BOT,TOP})
//                                  -> sn.0 := sn.last + 1
//   T2 :: at j != 0, sn.(j-1) valid /\ sn.j != sn.(j-1) -> sn.j := sn.(j-1)
//   T3 :: at last, sn = BOT -> sn := TOP
//   T4 :: at j != last, sn.j = BOT /\ sn.(j+1) = TOP -> sn.j := TOP
//   T5 :: at 0, sn.0 = TOP -> sn.0 := 0
#pragma once

#include <vector>

#include "sim/action.hpp"
#include "sim/fault_env.hpp"
#include "util/rng.hpp"

namespace ftbar::core {

inline constexpr int kTrBot = -1;
inline constexpr int kTrTop = -2;

[[nodiscard]] constexpr bool tr_valid(int sn) noexcept { return sn >= 0; }

struct TrProc {
  int sn = 0;
  friend auto operator<=>(const TrProc&, const TrProc&) = default;
};

using TrState = std::vector<TrProc>;

struct TrOptions {
  int num_procs = 4;   ///< ring size S (the paper's N+1)
  int seq_modulus = 0; ///< K; 0 selects num_procs + 1 (satisfies K > N)

  [[nodiscard]] int k() const { return seq_modulus > 0 ? seq_modulus : num_procs + 1; }
};

/// Uniform sequence numbers: the single token sits at the last process.
[[nodiscard]] TrState tr_start_state(const TrOptions& opt);

[[nodiscard]] std::vector<sim::Action<TrProc>> make_tr_actions(const TrOptions& opt);

/// Token predicate of the paper: process j != last holds the token iff
/// sn.j != sn.(j+1) (both valid); the last process iff sn.last = sn.0.
[[nodiscard]] bool tr_has_token(const TrState& s, int j);
[[nodiscard]] int tr_token_count(const TrState& s);

/// Legitimate: every sn valid and exactly one token.
[[nodiscard]] bool tr_legitimate(const TrState& s);

/// Detectable fault: sn := BOT. Undetectable: sn := arbitrary domain value.
[[nodiscard]] sim::FaultEnv<TrProc>::Perturb tr_detectable_fault();
[[nodiscard]] sim::FaultEnv<TrProc>::Perturb tr_undetectable_fault(const TrOptions& opt);

}  // namespace ftbar::core
