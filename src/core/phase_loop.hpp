// Checkpoint/rollback driver for phase computations over the
// fault-tolerant barrier.
//
// Applications using the barrier repeat the same pattern the examples
// implement by hand: checkpoint the phase's input state, run the phase, and
// on a `repeated` ticket roll back and run it again. PhaseLoop packages
// that pattern:
//
//   core::FaultTolerantBarrier bar(kWorkers);
//   // thread tid, with per-thread state of any copyable type:
//   core::PhaseLoop<Segment> loop(bar, tid, initial_segment);
//   loop.run(kPhases, [&](Segment& seg, int phase) {
//     return update(seg, phase);  // PhaseStatus: kOk / kStateLost
//   });
//
// The work function mutates the state in place; on kStateLost (or a peer's
// loss) the state is restored from the checkpoint taken before the attempt
// and the phase re-runs. run() returns statistics about attempts and
// rollbacks.
#pragma once

#include <cstddef>

#include "core/ft_barrier.hpp"

namespace ftbar::core {

enum class PhaseStatus {
  kOk,         ///< the phase completed; its writes are valid
  kStateLost,  ///< a detectable fault destroyed this worker's phase state
};

struct PhaseLoopStats {
  std::size_t phases_completed = 0;
  std::size_t attempts = 0;   ///< total work-function invocations
  std::size_t rollbacks = 0;  ///< times the checkpoint was restored
};

template <class State>
class PhaseLoop {
 public:
  /// Binds worker `tid` of `barrier` with its private `state`.
  PhaseLoop(FaultTolerantBarrier& barrier, int tid, State state)
      : barrier_(barrier), tid_(tid), state_(std::move(state)) {}

  [[nodiscard]] const State& state() const noexcept { return state_; }
  [[nodiscard]] State& state() noexcept { return state_; }

  /// Runs `phases` phases to completion; `work(state, phase)` returns a
  /// PhaseStatus. Calls finalize() on the barrier afterwards unless
  /// `finalize` is false (e.g. when more run() calls follow).
  template <class Work>
  PhaseLoopStats run(std::size_t phases, Work&& work, bool finalize = true) {
    PhaseLoopStats stats;
    auto ticket = ticket_;
    while (stats.phases_completed < phases) {
      const State checkpoint = state_;
      ++stats.attempts;
      const PhaseStatus status = work(state_, ticket.phase);
      ticket = barrier_.arrive_and_wait(tid_, status == PhaseStatus::kOk);
      if (ticket.repeated) {
        state_ = checkpoint;
        ++stats.rollbacks;
      } else {
        ++stats.phases_completed;
      }
    }
    ticket_ = ticket;
    if (finalize) barrier_.finalize(tid_);
    return stats;
  }

 private:
  FaultTolerantBarrier& barrier_;
  int tid_;
  State state_;
  PhaseTicket ticket_ = FaultTolerantBarrier::initial_ticket();
};

}  // namespace ftbar::core
