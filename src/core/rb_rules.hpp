// The superposed cp/ph update statements of RB (paper, Section 4.1),
// factored out so the simulator model (rb.cpp), the message-passing
// refinement (mb.cpp) and the threads runtime (ft_barrier) execute the
// EXACT same transition logic.
#pragma once

#include <cstdint>
#include <span>

#include "core/control.hpp"

namespace ftbar::core {

/// The (cp, ph) pair a statement reads/writes.
struct CpPh {
  Cp cp = Cp::kReady;
  int ph = 0;
  friend auto operator<=>(const CpPh&, const CpPh&) = default;
};

/// What a transition did, for spec-monitor instrumentation.
enum class RbEvent : std::uint8_t {
  kNone,
  kStart,     ///< ready -> execute: the process begins executing its phase
  kComplete,  ///< execute -> success: the process completed its phase
  kAbort,     ///< execute -> repeat: a partial execution was discarded
};

struct RbUpdate {
  CpPh next;
  RbEvent event = RbEvent::kNone;
};

/// Statement executed by process 0 in parallel with T1, generalized from
/// "compare with process N" (ring) to "compare with every leaf" (the
/// two-ring and tree refinements of Section 4.2; a ring has one leaf).
///
///   if cp.0=ready /\ (forall leaves: cp=ready /\ ph=ph.0)  -> cp.0 := execute
///   elif cp.0=execute                                      -> cp.0 := success
///   elif cp.0 in {success, error}:
///        if cp.0=success /\ (forall leaves: cp=success /\ ph=ph.0)
///                                          -> ph.0 := ph.0+1; cp.0 := ready
///        else                              -> ph.0 := ph(first leaf); cp.0 := ready
///
/// A start by process 0 always opens a fresh instance.
inline RbUpdate rb_root_update(CpPh self, std::span<const CpPh> leaves,
                               const PhaseRing& ring) {
  RbUpdate r{self, RbEvent::kNone};
  auto all_leaves = [&](Cp cp) {
    for (const auto& l : leaves) {
      if (l.cp != cp || l.ph != self.ph) return false;
    }
    return true;
  };
  if (self.cp == Cp::kReady) {
    if (all_leaves(Cp::kReady)) {
      r.next.cp = Cp::kExecute;
      r.event = RbEvent::kStart;
    }
  } else if (self.cp == Cp::kExecute) {
    r.next.cp = Cp::kSuccess;
    r.event = RbEvent::kComplete;
  } else if (self.cp == Cp::kSuccess || self.cp == Cp::kError) {
    if (self.cp == Cp::kSuccess && all_leaves(Cp::kSuccess)) {
      r.next.ph = ring.next(self.ph);
    } else if (!leaves.empty()) {
      r.next.ph = ring.canon(leaves[0].ph);
    }
    r.next.cp = Cp::kReady;
  }
  // cp.0 is never kRepeat in RB; an (undetectably) corrupted value outside
  // the domain would wedge the chain, so the fault constructors keep cp.0
  // inside {ready, execute, success, error}.
  return r;
}

/// Statement executed by process j != 0 in parallel with T2:
///
///   ph.j := ph.(j-1)
///   if   cp.j=ready   /\ cp.(j-1)=execute  -> cp.j := execute
///   elif cp.j=execute /\ cp.(j-1)=success  -> cp.j := success
///   elif cp.j!=execute /\ cp.(j-1)=ready   -> cp.j := ready
///   elif cp.j=error \/ cp.(j-1)!=cp.j      -> cp.j := repeat
inline RbUpdate rb_follower_update(CpPh self, CpPh prev, const PhaseRing& ring) {
  RbUpdate r{self, RbEvent::kNone};
  r.next.ph = ring.canon(prev.ph);
  if (self.cp == Cp::kReady && prev.cp == Cp::kExecute) {
    r.next.cp = Cp::kExecute;
    r.event = RbEvent::kStart;
  } else if (self.cp == Cp::kExecute && prev.cp == Cp::kSuccess) {
    r.next.cp = Cp::kSuccess;
    r.event = RbEvent::kComplete;
  } else if (self.cp != Cp::kExecute && prev.cp == Cp::kReady) {
    r.next.cp = Cp::kReady;
  } else if (self.cp == Cp::kError || prev.cp != self.cp) {
    r.next.cp = Cp::kRepeat;
    if (self.cp == Cp::kExecute) r.event = RbEvent::kAbort;
  }
  return r;
}

}  // namespace ftbar::core
