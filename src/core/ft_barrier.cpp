#include "core/ft_barrier.hpp"

#include <cassert>

namespace ftbar::core {

namespace {
constexpr int kStateTag = 1;
constexpr int kByeTag = 2;
constexpr int kSnBotWire = -1;
constexpr int kSnTopWire = -2;

[[nodiscard]] bool wire_sn_valid(int sn) noexcept { return sn >= 0; }
}  // namespace

// ---------------------------------------------------------------------------
// MbEngine
// ---------------------------------------------------------------------------

MbEngine::MbEngine(int id, int size, int num_phases, int seq_modulus)
    : id_(id),
      size_(size),
      l_(seq_modulus > 0 ? seq_modulus : 2 * size),
      ring_(num_phases) {
  assert(size >= 2 && id >= 0 && id < size);
  assert(l_ > 2 * size - 1);
}

void MbEngine::on_neighbor_state(int from, const WireState& state) {
  const int pred = (id_ + size_ - 1) % size_;
  const int succ = (id_ + 1) % size_;
  // On a two-process ring the predecessor IS the successor, so a snapshot
  // may serve both the COPY and the CPYN role — hence two ifs, not else-if.
  if (from == pred) {
    // COPY: the copy cell advances with the follower statement.
    if (wire_sn_valid(state.sn) && c_sn_ != state.sn) {
      const auto upd = rb_follower_update(
          CpPh{c_cp_, c_ph_}, CpPh{static_cast<Cp>(state.cp), state.ph}, ring_);
      c_sn_ = state.sn;
      c_cp_ = upd.next.cp;
      c_ph_ = upd.next.ph;
    }
  }
  if (from == succ && !is_last()) {
    // CPYN: only the successor's TOP is ever recorded.
    if (state.sn == kSnTopWire) c_next_ = kSnTopWire;
  }
}

bool MbEngine::step() {
  bool changed = false;
  for (bool fired = true; fired;) {
    fired = false;
    if (is_root()) {
      // MT1.
      if (wire_sn_valid(c_sn_) && (sn_ == c_sn_ || !wire_sn_valid(sn_))) {
        const auto upd = rb_root_update(
            CpPh{cp_, ph_}, std::vector<CpPh>{CpPh{c_cp_, c_ph_}}, ring_);
        sn_ = (c_sn_ + 1) % l_;
        cp_ = upd.next.cp;
        ph_ = upd.next.ph;
        if (upd.event == RbEvent::kStart) {
          ticket_ = PhaseTicket{ph_, ph_ == last_released_phase_};
          last_released_phase_ = ph_;
        }
        fired = changed = true;
      }
      // MT5.
      if (sn_ == kSnTopWire) {
        sn_ = 0;
        fired = changed = true;
      }
    } else {
      // MT2.
      if (wire_sn_valid(c_sn_) && sn_ != c_sn_) {
        const auto upd =
            rb_follower_update(CpPh{cp_, ph_}, CpPh{c_cp_, c_ph_}, ring_);
        sn_ = c_sn_;
        cp_ = upd.next.cp;
        ph_ = upd.next.ph;
        if (upd.event == RbEvent::kStart) {
          ticket_ = PhaseTicket{ph_, ph_ == last_released_phase_};
          last_released_phase_ = ph_;
        }
        fired = changed = true;
      }
    }
    if (is_last()) {
      // MT3.
      if (sn_ == kSnBotWire) {
        sn_ = kSnTopWire;
        fired = changed = true;
      }
    } else {
      // MT4.
      if (sn_ == kSnBotWire && c_next_ == kSnTopWire) {
        sn_ = kSnTopWire;
        c_next_ = 0;  // consume the observation
        fired = changed = true;
      }
    }
  }
  return changed;
}

std::optional<PhaseTicket> MbEngine::take_ticket() {
  auto t = ticket_;
  ticket_.reset();
  return t;
}

WireState MbEngine::wire_state() const noexcept {
  return WireState{sn_, static_cast<std::uint8_t>(cp_), ph_};
}

void MbEngine::inject_detectable_fault() {
  sn_ = kSnBotWire;
  cp_ = Cp::kError;
  c_sn_ = kSnBotWire;
  c_cp_ = Cp::kError;
  c_next_ = kSnBotWire;
  // ph_/c_ph_ keep their (now untrusted) values — a legal instance of the
  // paper's "ph := ?"; the protocol re-learns the phase from a neighbour.
}

// ---------------------------------------------------------------------------
// FaultTolerantBarrier
// ---------------------------------------------------------------------------

FaultTolerantBarrier::FaultTolerantBarrier(int num_threads, BarrierOptions options)
    : num_threads_(num_threads),
      options_(options),
      net_(std::make_unique<runtime::Network>(num_threads, options.seed,
                                              /*inbox_capacity=*/4096)),
      last_seq_from_pred_(static_cast<std::size_t>(num_threads), 0),
      last_seq_from_succ_(static_cast<std::size_t>(num_threads), 0),
      bye_mask_(static_cast<std::size_t>(num_threads), 0) {
  assert(num_threads >= 2 && num_threads <= 64);
  net_->set_default_faults(options.link_faults);
  engines_.reserve(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    engines_.push_back(
        std::make_unique<MbEngine>(t, num_threads, options.num_phases));
  }
}

FaultTolerantBarrier::~FaultTolerantBarrier() { net_->shutdown(); }

void FaultTolerantBarrier::publish(int tid) {
  const auto ws = engines_[static_cast<std::size_t>(tid)]->wire_state();
  const int succ = (tid + 1) % num_threads_;
  const int pred = (tid + num_threads_ - 1) % num_threads_;
  net_->send_value(tid, succ, kStateTag, ws);  // feeds successor's COPY
  net_->send_value(tid, pred, kStateTag, ws);  // feeds predecessor's CPYN
}

void FaultTolerantBarrier::consume(int tid, const runtime::Message& m) {
  const auto utid = static_cast<std::size_t>(tid);
  if (m.tag == kByeTag) {
    if (const auto mask = runtime::Network::decode<std::uint64_t>(m)) {
      bye_mask_[utid] |= *mask;
    }
    return;
  }
  if (m.tag != kStateTag) return;
  const auto ws = runtime::Network::decode<WireState>(m);
  if (!ws) return;  // detectable corruption == loss
  // Reorder/duplication masking: discard stale or replayed link sequences.
  const int pred = (tid + num_threads_ - 1) % num_threads_;
  auto& last = m.src == pred ? last_seq_from_pred_[utid] : last_seq_from_succ_[utid];
  if (m.link_seq < last) return;
  last = m.link_seq + 1;
  engines_[utid]->on_neighbor_state(m.src, *ws);
}

PhaseTicket FaultTolerantBarrier::arrive_and_wait(int tid, bool ok) {
  auto& eng = *engines_[static_cast<std::size_t>(tid)];
  if (!ok) eng.inject_detectable_fault();
  eng.step();
  publish(tid);
  auto last_publish = std::chrono::steady_clock::now();
  for (;;) {
    if (auto ticket = eng.take_ticket()) {
      publish(tid);  // let the wave continue before starting the phase
      return *ticket;
    }
    if (const auto m = net_->recv(tid, options_.poll)) consume(tid, *m);
    const bool changed = eng.step();
    const auto now = std::chrono::steady_clock::now();
    if (changed || now - last_publish >= options_.retransmit_every) {
      publish(tid);
      last_publish = now;
    }
  }
}

void FaultTolerantBarrier::finalize(int tid, std::chrono::milliseconds deadline) {
  const auto utid = static_cast<std::size_t>(tid);
  const std::uint64_t full =
      num_threads_ == 64 ? ~0ULL : ((1ULL << num_threads_) - 1);
  bye_mask_[utid] |= 1ULL << tid;
  const auto start = std::chrono::steady_clock::now();
  auto last_publish = std::chrono::steady_clock::time_point{};
  while (bye_mask_[utid] != full &&
         std::chrono::steady_clock::now() - start < deadline) {
    for (int peer = 0; peer < num_threads_; ++peer) {
      if (peer != tid) net_->send_value(tid, peer, kByeTag, bye_mask_[utid]);
    }
    if (const auto m = net_->recv(tid, options_.poll)) consume(tid, *m);
    // Keep the token alive for peers still blocked in arrive_and_wait —
    // INCLUDING periodic republishing: the final wave this thread emitted
    // before finalize may have been lost, and the engine being quiescent
    // does not mean the peers saw it.
    const bool changed = engines_[utid]->step();
    const auto now = std::chrono::steady_clock::now();
    if (changed || now - last_publish >= options_.retransmit_every) {
      publish(tid);
      last_publish = now;
    }
    (void)engines_[utid]->take_ticket();  // releases past finalize are moot
  }
  // Parting shots so peers that were still draining see our bye.
  for (int round = 0; round < 3; ++round) {
    for (int peer = 0; peer < num_threads_; ++peer) {
      if (peer != tid) net_->send_value(tid, peer, kByeTag, bye_mask_[utid]);
    }
  }
}

runtime::Network::Stats FaultTolerantBarrier::network_stats() const {
  return net_->stats();
}

}  // namespace ftbar::core
