// Timed simulation models for the Section 6.2 experiments.
//
// TimedRbModel reproduces the SIEFAST experiment: RB on a tree of height h
// under maximal parallel semantics with real-time action costs. At wave
// granularity one instance of a phase is
//
//     ready wave (hc) . execute wave (hc) . work (1.0) . success wave (hc)
//
// i.e. the three control-position changes of Figure 1 cost hc each, plus
// the unit phase execution — total 1 + 3hc, the analytical model's phase
// time. Detectable faults arrive as a Poisson process with rate
// -ln(1 - f), so that P(no fault in an interval of length T) = (1-f)^T,
// exactly the analytical model's assumption. A fault aborts the instance at
// the end of the wave segment in which it lands (the repeat wave completes
// the circulation), which is why simulated failed instances finish sooner
// than the analytical worst case — the effect the paper observes when
// comparing Figures 4 and 6.
//
// measure_recovery() runs the REAL RB program (core/rb.hpp) on a binary
// tree from an undetectably-corrupted state under maximal parallelism and
// reports steps-to-legitimacy scaled by the per-step communication cost c —
// the Figure 7 experiment.
#pragma once

#include <cstddef>

#include "trace/sink.hpp"
#include "util/rng.hpp"

namespace ftbar::core {

class SpecMonitor;

struct TimedParams {
  int h = 5;        ///< tree height
  double c = 0.01;  ///< communication latency (phase time = 1)
  double f = 0.0;   ///< fault frequency per unit time
};

/// Outcome of executing one phase successfully.
struct PhaseStats {
  int instances = 0;    ///< attempts, including the final successful one
  double elapsed = 0.0; ///< total time spent on this phase
};

class TimedRbModel {
 public:
  TimedRbModel(TimedParams params, util::Rng rng);

  /// Attaches a trace sink: each instance attempt emits kInstanceBegin
  /// (a = attempt ordinal within the phase), and its outcome emits
  /// kInstanceAbort (a = wave segment the fault landed in: 0 ready,
  /// 1 execute, 2 work, 3 success) or kInstanceCommit, at simulated time.
  void set_sink(trace::Sink* sink) noexcept { sink_ = sink; }

  /// Simulates until one phase executes successfully.
  PhaseStats run_phase();

  /// Simulates `phases` successful phases; returns aggregate stats.
  PhaseStats run_phases(std::size_t phases);

  /// Duration of one fault-free instance: 1 + 3hc.
  [[nodiscard]] double instance_time() const noexcept;

 private:
  /// Advances the pending-fault clock past `t`.
  void consume_faults_until(double t);

  TimedParams params_;
  util::Rng rng_;
  double fault_rate_;     ///< -ln(1-f); 0 disables faults
  double now_ = 0.0;
  double next_fault_;     ///< absolute time of the next pending fault
  trace::Sink* sink_ = nullptr;
};

/// Phase time of the fault-intolerant tree barrier, 1 + 2hc: one wave to
/// detect that everyone finished and one to release the next phase.
[[nodiscard]] double timed_intolerant_phase_time(const TimedParams& params) noexcept;

/// Figure 7 experiment: corrupt every process of RB on a binary tree of
/// height h undetectably, run under maximal parallelism, and report the
/// recovery time (steps until a start state is reached, times c).
///
/// With a sink, the run is traced end to end: one kFaultUndetectable per
/// corrupted process (b = post-fault phase), every engine action firing,
/// and — when `monitor` is also given — the phase/desync/resync events the
/// monitor observes (wire the monitor's own sink beforehand). The same
/// random choices are made with and without tracing.
[[nodiscard]] double measure_recovery(int h, double c, util::Rng& rng,
                                      trace::Sink* sink = nullptr,
                                      SpecMonitor* monitor = nullptr);

}  // namespace ftbar::core
