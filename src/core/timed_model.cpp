#include "core/timed_model.hpp"

#include <array>
#include <cmath>
#include <limits>

#include "core/rb.hpp"
#include "sim/step_engine.hpp"

namespace ftbar::core {

TimedRbModel::TimedRbModel(TimedParams params, util::Rng rng)
    : params_(params),
      rng_(rng),
      fault_rate_(params.f > 0.0 ? -std::log(1.0 - params.f) : 0.0),
      next_fault_(fault_rate_ > 0.0 ? rng_.exponential(fault_rate_)
                                    : std::numeric_limits<double>::infinity()) {}

double TimedRbModel::instance_time() const noexcept {
  return 1.0 + 3.0 * params_.h * params_.c;
}

void TimedRbModel::consume_faults_until(double t) {
  while (next_fault_ < t) next_fault_ += rng_.exponential(fault_rate_);
}

PhaseStats TimedRbModel::run_phase() {
  const double hc = params_.h * params_.c;
  // Segment end offsets within an instance: ready, execute, work, success.
  const std::array<double, 4> seg_end = {hc, 2 * hc, 2 * hc + 1.0, 3 * hc + 1.0};

  PhaseStats stats;
  for (;;) {
    ++stats.instances;
    const double start = now_;
    const double end = start + seg_end.back();
    if (sink_ != nullptr) {
      sink_->emit(trace::make_event(trace::Kind::kInstanceBegin, start, -1,
                                    stats.instances));
    }
    if (next_fault_ >= end) {
      // No fault during this instance: it succeeds.
      now_ = end;
      stats.elapsed += now_ - start;
      if (sink_ != nullptr) {
        sink_->emit(trace::make_event(trace::Kind::kInstanceCommit, now_, -1));
      }
      return stats;
    }
    // A fault lands in some segment; the instance is abandoned at that
    // segment's boundary (the wave in flight completes, carrying the repeat
    // indication to the root, which then restarts with a fresh ready wave).
    const double offset = next_fault_ - start;
    double abort_at = end;
    std::int64_t segment = static_cast<std::int64_t>(seg_end.size()) - 1;
    for (std::size_t i = 0; i < seg_end.size(); ++i) {
      if (offset < seg_end[i]) {
        abort_at = start + seg_end[i];
        segment = static_cast<std::int64_t>(i);
        break;
      }
    }
    now_ = abort_at;
    stats.elapsed += now_ - start;
    if (sink_ != nullptr) {
      sink_->emit(trace::make_event(trace::Kind::kInstanceAbort, now_, -1, segment));
    }
    consume_faults_until(now_);
  }
}

PhaseStats TimedRbModel::run_phases(std::size_t phases) {
  PhaseStats total;
  for (std::size_t i = 0; i < phases; ++i) {
    const auto s = run_phase();
    total.instances += s.instances;
    total.elapsed += s.elapsed;
  }
  return total;
}

double timed_intolerant_phase_time(const TimedParams& params) noexcept {
  return 1.0 + 2.0 * params.h * params.c;
}

double measure_recovery(int h, double c, util::Rng& rng, trace::Sink* sink,
                        SpecMonitor* monitor) {
  const int num_procs = (1 << (h + 1)) - 1;  // full binary tree of height h
  const auto opt = rb_tree_options(num_procs, 2);
  sim::StepEngine<RbProc> eng(rb_start_state(opt), make_rb_actions(opt, monitor),
                              rng.fork(0x7ec0u), sim::Semantics::kMaxParallel);
  eng.set_sink(sink);
  auto perturb = rb_undetectable_fault(opt, monitor);
  util::Rng fault_rng = rng.fork(0xfa17u);
  for (std::size_t j = 0; j < eng.mutable_state().size(); ++j) {
    perturb(j, eng.mutable_state()[j], fault_rng);
    if (sink != nullptr) {
      sink->emit(trace::make_event(trace::Kind::kFaultUndetectable, 0.0,
                                   static_cast<std::int32_t>(j), 0,
                                   eng.state()[j].ph));
    }
  }
  std::size_t steps = 0;
  while (!rb_is_start_state(eng.state()) && steps < 1'000'000) {
    if (eng.step() == 0) break;
    ++steps;
  }
  if (monitor != nullptr && rb_is_start_state(eng.state())) {
    monitor->resync(eng.state()[0].ph);
  }
  // Advance the caller's generator so successive calls differ.
  (void)rng();
  return static_cast<double>(steps) * c;
}

}  // namespace ftbar::core
