// Program CB — the coarse-grain solution (paper, Section 3).
//
// Each process j maintains a control position cp.j and a phase number ph.j,
// and runs four actions whose guards may read the state of ALL processes
// atomically:
//
//   CB1 :: cp.j=ready   /\ ((forall k :: cp.k=ready) \/ (exists k :: cp.k=execute))
//            -> cp.j := execute
//   CB2 :: cp.j=execute /\ ((forall k :: cp.k!=ready) \/ (exists k :: cp.k=success))
//            -> cp.j := success
//   CB3 :: cp.j=success /\ (forall k :: cp.k!=execute)
//            -> if   exists ready k:  ph.j := ph of a ready process
//               elif all success:     ph.j := ph.j + 1
//               cp.j := ready
//   CB4 :: cp.j=error   /\ (forall k :: cp.k!=execute)
//            -> if   exists ready k:   ph.j := ph of a ready process
//               elif exists success k: ph.j := ph of a success process
//               else                   ph.j := arbitrary
//               cp.j := ready
//
// The paper's nondeterministic "(any k : ...)" choice is resolved to the
// lowest-index qualifying process, and the "arbitrary" fallback to phase 0;
// both choices keep the state space finite and the programs deterministic
// per action, which the exhaustive checker in the tests relies on. Any
// concrete resolution refines the paper's nondeterminism, so the lemmas
// proved for CB continue to apply.
#pragma once

#include <compare>
#include <vector>

#include "core/control.hpp"
#include "core/spec.hpp"
#include "sim/action.hpp"
#include "sim/fault_env.hpp"
#include "util/rng.hpp"

namespace ftbar::core {

/// Per-process state of CB.
struct CbProc {
  Cp cp = Cp::kReady;
  int ph = 0;
  friend auto operator<=>(const CbProc&, const CbProc&) = default;
};

using CbState = std::vector<CbProc>;

struct CbOptions {
  int num_procs = 4;
  int num_phases = 2;  ///< n >= 2 (single-phase handled by replication, §3 remark)
};

/// A start state: all processes ready in the given phase.
[[nodiscard]] CbState cb_start_state(const CbOptions& opt, int phase = 0);

/// The 4*N guarded-command actions of CB. If `monitor` is non-null, CB1/CB2
/// report start/complete events to it (CB1 flags instance-opening starts,
/// i.e. those taken via the all-ready disjunct).
[[nodiscard]] std::vector<sim::Action<CbProc>> make_cb_actions(const CbOptions& opt,
                                                               SpecMonitor* monitor = nullptr);

// ---- fault actions (paper, end of Section 3) -------------------------------
/// Detectable fault: ph := arbitrary, cp := error. Reports on_abort.
[[nodiscard]] sim::FaultEnv<CbProc>::Perturb cb_detectable_fault(const CbOptions& opt,
                                                                 SpecMonitor* monitor = nullptr);
/// Undetectable fault: ph, cp := arbitrary values from their domains.
/// Reports on_undetectable_fault.
[[nodiscard]] sim::FaultEnv<CbProc>::Perturb cb_undetectable_fault(
    const CbOptions& opt, SpecMonitor* monitor = nullptr);

// ---- state predicates ------------------------------------------------------
[[nodiscard]] bool cb_is_start_state(const CbState& s);
/// Closed-form characterization of the states reachable from a start state
/// in the absence of faults (the legitimate set used in the stabilization
/// lemma). Verified against the exhaustively computed reachable set in the
/// tests.
[[nodiscard]] bool cb_legitimate(const CbState& s, int num_phases);
/// Number of distinct phase values present (the paper's m, Lemma 3.4).
[[nodiscard]] int cb_distinct_phases(const CbState& s);

}  // namespace ftbar::core
