// Hardware realization of the RB transition logic (paper, Section 8):
// "our program is concise and can be implemented as a simple table lookup.
// Therefore, it can be implemented in the hardware."
//
// This module compiles the follower and root statements of
// core/rb_rules.hpp into constexpr lookup tables — pure combinational
// logic with no branches — plus the O(log N) state-size accounting the
// paper claims. The test suite proves the tables equivalent to the
// executable statements over their entire input space, so either form can
// back an implementation.
#pragma once

#include <array>
#include <cstdint>

#include "core/control.hpp"
#include "core/rb_rules.hpp"

namespace ftbar::core::hw {

/// What the next phase value is computed from.
enum class PhOp : std::uint8_t {
  kKeep = 0,      ///< ph' = ph
  kIncrement,     ///< ph' = ph + 1 (mod n)
  kCopyNeighbor,  ///< ph' = neighbour's ph
};

/// One table entry: next control position, phase operation, event strobe.
/// Stored as three packed bytes — one narrow ROM word — independent of the
/// in-memory width of the source enums.
class Entry {
 public:
  constexpr Entry() = default;
  constexpr Entry(Cp next_cp, PhOp ph_op, RbEvent event)
      : next_cp_(static_cast<std::uint8_t>(next_cp)),
        ph_op_(static_cast<std::uint8_t>(ph_op)),
        event_(static_cast<std::uint8_t>(event)) {}

  [[nodiscard]] constexpr Cp next_cp() const { return static_cast<Cp>(next_cp_); }
  [[nodiscard]] constexpr PhOp ph_op() const { return static_cast<PhOp>(ph_op_); }
  [[nodiscard]] constexpr RbEvent event() const { return static_cast<RbEvent>(event_); }

  friend constexpr bool operator==(const Entry&, const Entry&) = default;

 private:
  std::uint8_t next_cp_ = 0;
  std::uint8_t ph_op_ = 0;
  std::uint8_t event_ = 0;
};

inline constexpr int kCpCount = 5;

/// Follower table, indexed [self_cp][prev_cp]. The follower statement
/// always copies the predecessor's phase, so ph_op is kCopyNeighbor
/// throughout; it is materialized anyway so the entry layout is uniform
/// across both tables (one ROM format in hardware).
using FollowerTable = std::array<std::array<Entry, kCpCount>, kCpCount>;
[[nodiscard]] constexpr FollowerTable make_follower_table() {
  FollowerTable table{};
  for (int self = 0; self < kCpCount; ++self) {
    for (int prev = 0; prev < kCpCount; ++prev) {
      const Cp s = static_cast<Cp>(self);
      const Cp p = static_cast<Cp>(prev);
      Entry e{s, PhOp::kCopyNeighbor, RbEvent::kNone};
      if (s == Cp::kReady && p == Cp::kExecute) {
        e = {Cp::kExecute, PhOp::kCopyNeighbor, RbEvent::kStart};
      } else if (s == Cp::kExecute && p == Cp::kSuccess) {
        e = {Cp::kSuccess, PhOp::kCopyNeighbor, RbEvent::kComplete};
      } else if (s != Cp::kExecute && p == Cp::kReady) {
        e = {Cp::kReady, PhOp::kCopyNeighbor, RbEvent::kNone};
      } else if (s == Cp::kError || p != s) {
        e = {Cp::kRepeat, PhOp::kCopyNeighbor,
             s == Cp::kExecute ? RbEvent::kAbort : RbEvent::kNone};
      }
      table[static_cast<std::size_t>(self)][static_cast<std::size_t>(prev)] = e;
    }
  }
  return table;
}

inline constexpr FollowerTable kFollowerTable = make_follower_table();

/// Root table, indexed [self_cp][leaves_ready_aligned][leaves_success_aligned]
/// where the two booleans are the (pre-reduced) conditions "every leaf is
/// ready/success in my phase" — the only global information the root's
/// statement consumes.
using RootTable = std::array<std::array<std::array<Entry, 2>, 2>, kCpCount>;
[[nodiscard]] constexpr RootTable make_root_table() {
  RootTable table{};
  for (int self = 0; self < kCpCount; ++self) {
    for (int ready = 0; ready < 2; ++ready) {
      for (int success = 0; success < 2; ++success) {
        const Cp s = static_cast<Cp>(self);
        Entry e{s, PhOp::kKeep, RbEvent::kNone};
        if (s == Cp::kReady) {
          if (ready != 0) e = {Cp::kExecute, PhOp::kKeep, RbEvent::kStart};
        } else if (s == Cp::kExecute) {
          e = {Cp::kSuccess, PhOp::kKeep, RbEvent::kComplete};
        } else if (s == Cp::kSuccess || s == Cp::kError) {
          e = (s == Cp::kSuccess && success != 0)
                  ? Entry{Cp::kReady, PhOp::kIncrement, RbEvent::kNone}
                  : Entry{Cp::kReady, PhOp::kCopyNeighbor, RbEvent::kNone};
        }
        table[static_cast<std::size_t>(self)][static_cast<std::size_t>(ready)]
             [static_cast<std::size_t>(success)] = e;
      }
    }
  }
  return table;
}

inline constexpr RootTable kRootTable = make_root_table();

/// Table-driven follower update; behaviourally identical to
/// rb_follower_update (proved exhaustively in the tests).
[[nodiscard]] RbUpdate follower_update(CpPh self, CpPh prev, const PhaseRing& ring);

/// Table-driven root update over the pre-reduced leaf conditions.
[[nodiscard]] RbUpdate root_update(CpPh self, bool leaves_ready_aligned,
                                   bool leaves_success_aligned, int first_leaf_ph,
                                   const PhaseRing& ring);

/// Bits of state a hardware implementation keeps per process: the sequence
/// number (ceil log2 of K+2 values, counting BOT/TOP), the control position
/// (3 bits for 5 values) and the phase (ceil log2 n) — O(log N) total, the
/// Section 8 claim.
[[nodiscard]] constexpr int bits_for(int values) {
  int bits = 0;
  for (int span = 1; span < values; span *= 2) ++bits;
  return bits;
}

[[nodiscard]] constexpr int state_bits(int num_procs, int num_phases) {
  const int k = num_procs + 1;      // sequence modulus K > N
  return bits_for(k + 2) + 3 + bits_for(num_phases);
}

}  // namespace ftbar::core::hw
