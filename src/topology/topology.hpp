// Process topologies for the distributed refinements (paper, Section 4).
//
// All of Figure 2's organizations are spanning trees with the leaves feeding
// back to the root:
//   (a) ring            = a single path,
//   (b) two rings meeting at 0 = two paths from the root,
//   (c) tree with leaves connected to the root,
//   (d) double tree     = a spanning tree of an arbitrary graph used twice,
// so one Topology type (rooted tree + implicit leaf->root links) covers the
// whole section. The token wave flows root -> children; the root reads the
// leaves directly to detect that a circulation completed.
#pragma once

#include <utility>
#include <vector>

namespace ftbar::topology {

class Topology {
 public:
  /// Builds a topology from a parent vector (parent[root] == -1).
  /// Throws std::invalid_argument unless the vector describes a single
  /// rooted tree over 0..n-1.
  static Topology from_parents(std::vector<int> parent);

  /// Figure 2(a): the ring 0 -> 1 -> ... -> n-1 (-> 0 via the leaf link).
  static Topology ring(int num_procs);

  /// Figure 2(b): two chains from process 0 of sizes as equal as possible.
  static Topology two_ring(int num_procs);

  /// Figure 2(c): complete-as-possible k-ary tree in BFS order.
  static Topology kary_tree(int num_procs, int arity);

  /// Figure 2(d): BFS spanning tree of an arbitrary connected graph,
  /// used as both the top and bottom tree.
  static Topology spanning_tree(int num_procs,
                                const std::vector<std::pair<int, int>>& edges,
                                int root = 0);

  [[nodiscard]] int size() const noexcept { return static_cast<int>(parent_.size()); }
  [[nodiscard]] int root() const noexcept { return 0; }
  [[nodiscard]] int parent(int j) const { return parent_[static_cast<std::size_t>(j)]; }
  [[nodiscard]] const std::vector<int>& children(int j) const {
    return children_[static_cast<std::size_t>(j)];
  }
  [[nodiscard]] const std::vector<int>& leaves() const noexcept { return leaves_; }
  [[nodiscard]] bool is_leaf(int j) const {
    return children_[static_cast<std::size_t>(j)].empty();
  }
  [[nodiscard]] int depth(int j) const { return depth_[static_cast<std::size_t>(j)]; }
  /// Height h of the tree (max depth); the paper's barrier latency is O(h).
  [[nodiscard]] int height() const noexcept { return height_; }

 private:
  explicit Topology(std::vector<int> parent);

  std::vector<int> parent_;
  std::vector<std::vector<int>> children_;
  std::vector<int> leaves_;
  std::vector<int> depth_;
  int height_ = 0;
};

}  // namespace ftbar::topology
