#include "topology/topology.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace ftbar::topology {

Topology::Topology(std::vector<int> parent) : parent_(std::move(parent)) {
  const auto n = parent_.size();
  children_.assign(n, {});
  depth_.assign(n, -1);
  if (n == 0) throw std::invalid_argument("Topology: empty");
  if (parent_[0] != -1) throw std::invalid_argument("Topology: process 0 must be the root");
  for (std::size_t j = 1; j < n; ++j) {
    const int p = parent_[j];
    if (p < 0 || p >= static_cast<int>(n) || p == static_cast<int>(j)) {
      throw std::invalid_argument("Topology: invalid parent");
    }
    children_[static_cast<std::size_t>(p)].push_back(static_cast<int>(j));
  }
  // BFS from the root assigns depths and verifies connectivity/acyclicity.
  std::deque<int> frontier{0};
  depth_[0] = 0;
  std::size_t seen = 1;
  while (!frontier.empty()) {
    const int v = frontier.front();
    frontier.pop_front();
    for (int c : children_[static_cast<std::size_t>(v)]) {
      if (depth_[static_cast<std::size_t>(c)] != -1) {
        throw std::invalid_argument("Topology: not a tree");
      }
      depth_[static_cast<std::size_t>(c)] = depth_[static_cast<std::size_t>(v)] + 1;
      ++seen;
      frontier.push_back(c);
    }
  }
  if (seen != n) throw std::invalid_argument("Topology: disconnected");
  height_ = *std::max_element(depth_.begin(), depth_.end());
  for (std::size_t j = 0; j < n; ++j) {
    if (children_[j].empty()) leaves_.push_back(static_cast<int>(j));
  }
}

Topology Topology::from_parents(std::vector<int> parent) {
  return Topology(std::move(parent));
}

Topology Topology::ring(int num_procs) {
  if (num_procs < 1) throw std::invalid_argument("ring: need >= 1 process");
  std::vector<int> parent(static_cast<std::size_t>(num_procs));
  for (int j = 0; j < num_procs; ++j) parent[static_cast<std::size_t>(j)] = j - 1;
  return Topology(std::move(parent));
}

Topology Topology::two_ring(int num_procs) {
  if (num_procs < 3) throw std::invalid_argument("two_ring: need >= 3 processes");
  std::vector<int> parent(static_cast<std::size_t>(num_procs), -1);
  // Chain A gets the odd indices' share: 1..m, chain B gets m+1..n-1.
  const int m = (num_procs - 1 + 1) / 2;  // size of the first chain
  for (int j = 1; j < num_procs; ++j) {
    if (j == 1 || j == m + 1) {
      parent[static_cast<std::size_t>(j)] = 0;
    } else {
      parent[static_cast<std::size_t>(j)] = j - 1;
    }
  }
  return Topology(std::move(parent));
}

Topology Topology::kary_tree(int num_procs, int arity) {
  if (num_procs < 1) throw std::invalid_argument("kary_tree: need >= 1 process");
  if (arity < 1) throw std::invalid_argument("kary_tree: arity must be >= 1");
  std::vector<int> parent(static_cast<std::size_t>(num_procs), -1);
  for (int j = 1; j < num_procs; ++j) {
    parent[static_cast<std::size_t>(j)] = (j - 1) / arity;
  }
  return Topology(std::move(parent));
}

Topology Topology::spanning_tree(int num_procs,
                                 const std::vector<std::pair<int, int>>& edges,
                                 int root) {
  if (num_procs < 1) throw std::invalid_argument("spanning_tree: need >= 1 process");
  if (root != 0) {
    // The protocols pin the decision process to id 0; relabeling is the
    // caller's responsibility.
    throw std::invalid_argument("spanning_tree: root must be process 0");
  }
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(num_procs));
  for (const auto& [a, b] : edges) {
    if (a < 0 || b < 0 || a >= num_procs || b >= num_procs) {
      throw std::invalid_argument("spanning_tree: edge endpoint out of range");
    }
    adj[static_cast<std::size_t>(a)].push_back(b);
    adj[static_cast<std::size_t>(b)].push_back(a);
  }
  std::vector<int> parent(static_cast<std::size_t>(num_procs), -2);
  parent[0] = -1;
  std::deque<int> frontier{0};
  while (!frontier.empty()) {
    const int v = frontier.front();
    frontier.pop_front();
    for (int w : adj[static_cast<std::size_t>(v)]) {
      if (parent[static_cast<std::size_t>(w)] == -2) {
        parent[static_cast<std::size_t>(w)] = v;
        frontier.push_back(w);
      }
    }
  }
  for (int v = 0; v < num_procs; ++v) {
    if (parent[static_cast<std::size_t>(v)] == -2) {
      throw std::invalid_argument("spanning_tree: graph is disconnected");
    }
  }
  return Topology(std::move(parent));
}

}  // namespace ftbar::topology
