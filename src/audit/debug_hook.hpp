// Opt-in construction-time contract validation for debug builds: when the
// environment variable FTBAR_AUDIT_DEBUG is set (non-empty, not "0"),
// sim::StepEngine and the ftbar_check driver validate the action system
// they were just handed — generic differential probing (no bundle domain
// available here, so generic_record_domain's observed-records + byte-poke
// variants) followed by the definite-error lints only:
// read-set-soundness, write-locality, determinism. Tightness and
// granularity are NOT enforced — the generic domain under-observes by
// construction, and no program-class rule is known at this layer.
//
// On a violation the process writes the findings to stderr and aborts:
// the contract bugs this traps (a guard reading an undeclared slot, a
// statement writing a foreign slot) otherwise surface as silently wrong
// simulation results. Debug builds only; the hook is compiled out under
// NDEBUG and costs Release nothing.
//
// This header sits BELOW sim/step_engine.hpp in the include graph — it
// depends only on sim/action.hpp, trace/digest.hpp and util/rng.hpp (via
// audit/effects.hpp), so the engine constructor can call it.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "audit/effects.hpp"
#include "audit/lints.hpp"

namespace ftbar::audit {

/// Cached FTBAR_AUDIT_DEBUG lookup (set and neither "" nor "0"); false
/// while a DebugAuditSuspend is live on this thread.
[[nodiscard]] bool debug_audit_enabled();

namespace detail {
/// Per-thread suspension depth for DebugAuditSuspend (nesting allowed).
[[nodiscard]] int& audit_suspend_depth() noexcept;
}  // namespace detail

/// RAII suppression of construction-time auditing for action systems that
/// carry an OBSERVER SIDE CHANNEL — e.g. ftbar_sim's actions notify a
/// SpecMonitor from their statements. Differential probing would fire
/// thousands of spurious monitor events (tripping safety verdicts that
/// have nothing to do with the state), so drivers that attach monitors
/// construct their engines under this guard and audit a monitor-free twin
/// of the action system instead (effects.hpp's "monitor side channels must
/// be detached" requirement, made enforceable).
class DebugAuditSuspend {
 public:
  DebugAuditSuspend() noexcept { ++detail::audit_suspend_depth(); }
  ~DebugAuditSuspend() { --detail::audit_suspend_depth(); }
  DebugAuditSuspend(const DebugAuditSuspend&) = delete;
  DebugAuditSuspend& operator=(const DebugAuditSuspend&) = delete;
};

/// Writes findings to stderr (prefixed with `site`) and, if any is an
/// error, aborts. Defined in debug_hook.cpp to keep aborting out of line.
void debug_fail(const std::vector<Finding>& findings, const char* site);

/// Generic definite-error validation of an action system against the
/// declared contracts, probing around `state` (the engine's initial
/// state): short deterministic walks for probe states, observed records +
/// byte pokes for variants (capped, so construction stays cheap).
template <class P>
[[nodiscard]] std::vector<Finding> quick_validate(
    const std::vector<sim::Action<P>>& actions, std::size_t procs,
    const std::vector<P>& state) {
  std::vector<Finding> findings;
  if (actions.empty() || state.size() != procs || procs == 0) return findings;
  const auto probe_states = collect_probe_states(
      actions, {state}, /*walks_per_root=*/2, /*depth=*/8,
      /*seed=*/0x5eedau, /*max_states=*/32);
  EffectOptions opt;
  opt.max_variants_per_slot = 16;
  opt.determinism_reps = 1;
  opt.seed = 0x5eedau;
  const auto fx = infer_effects(actions, procs, probe_states,
                                generic_record_domain<P>(state), opt);
  lint_read_sets(actions, fx, findings);
  lint_write_locality(actions, fx, findings);
  lint_determinism(actions, fx, findings);
  // Definite errors only: drop the (expectedly noisy) tightness warnings.
  std::erase_if(findings,
                [](const Finding& f) { return f.severity != Severity::kError; });
  sort_findings(findings);
  return findings;
}

/// The one-liner call sites use: validate and abort on any definite error.
template <class P>
void debug_enforce(const std::vector<sim::Action<P>>& actions,
                   std::size_t procs, const std::vector<P>& state,
                   const char* site) {
  const auto findings = quick_validate(actions, procs, state);
  if (!findings.empty()) debug_fail(findings, site);
}

}  // namespace ftbar::audit
