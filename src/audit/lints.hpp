// The contract lint battery: checks inferred action effects (audit/
// effects.hpp) against every declaration a performance-critical consumer
// trusts. Which lint guards which consumer:
//
//   read-set-soundness   — Action::reads vs inferred guard reads. An
//                          undeclared read means sim::StepEngine /
//                          check::SuccessorGen skip a guard re-evaluation
//                          they must not skip: wrong enabled sets, wrong
//                          simulations, wrong state spaces. Error.
//   read-set-tightness   — declared-but-never-observed reads. Correct but
//                          wasteful (spurious invalidations); also the
//                          worklist for honest annotation. Warning, because
//                          inference under-approximates: the slot may be
//                          read only in a region no probe reaches.
//   write-locality       — inferred writes vs {owner}. A foreign write is
//                          dropped (or worse, leaked a step later) by the
//                          copy-free max-parallel merge and desyncs the
//                          engines' dirty-slot tracking. Error.
//   determinism          — guard/statement must be pure functions of the
//                          state. A stateful or randomized closure breaks
//                          cached enabled flags and record/replay. Error.
//   granularity          — program-class conformance (paper §3/§4.1/§5):
//                          CB may read everything; RB/RB' actions may read
//                          beyond their owner only along declared topology
//                          links; MB actions obey the read-XOR-write shape:
//                          they either touch a single ring neighbour or
//                          only their own slot. Error.
//
// Slot granularity: process records are the unit of observation, so the MB
// rule is checked as "foreign footprint is at most one ring neighbour" —
// the sub-record half of §5 (copy actions write only copy cells) is not
// separable without a field map and is argued in DESIGN.md instead.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "audit/effects.hpp"
#include "sim/action.hpp"

namespace ftbar::audit {

enum class Severity { kWarning, kError };

/// One lint hit. `lint` is a stable slug (the JSON contract):
/// read-set-soundness | read-set-tightness | write-locality | determinism |
/// granularity | mb-read-xor-write | symmetry.
struct Finding {
  std::string lint;
  Severity severity = Severity::kError;
  std::string action;  ///< offending action name ("(group)" for symmetry-global)
  int slot = -1;       ///< offending process slot, -1 when not slot-specific
  std::string message;
};

/// How a program class constrains action footprints.
enum class GranularityClass {
  kCoarse,  ///< CB: any guard may read any slot
  kLocal,   ///< RB/RB': foreign effects only along allowed_foreign links
  kMbReadXorWrite,  ///< MB: foreign footprint empty or one allowed neighbour
};

struct GranularityRule {
  GranularityClass klass = GranularityClass::kCoarse;
  /// Per-owner allowed foreign slots (topology neighbours); indexed by the
  /// action's owning process. Unused for kCoarse.
  std::vector<std::vector<int>> allowed_foreign;
  /// Cap on distinct foreign slots per action; -1 = no cap (RB' roots
  /// legitimately read one leaf per ring). kMbReadXorWrite forces 1.
  int max_foreign = -1;
};

namespace detail {

inline bool contains(const std::vector<int>& xs, int x) {
  return std::find(xs.begin(), xs.end(), x) != xs.end();
}

/// Foreign (non-owner) union of guard and statement reads.
inline std::vector<int> foreign_reads(const ActionEffects& fx, int owner) {
  std::vector<int> out;
  for (const int p : fx.guard_reads) {
    if (p != owner) out.push_back(p);
  }
  for (const int p : fx.stmt_reads) {
    if (p != owner && !contains(out, p)) out.push_back(p);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace detail

/// Read-set soundness (error) and tightness (warning). Actions without a
/// declared read-set are full-scan by contract — nothing to check, but the
/// auditor's per-action summary still reports what they actually read,
/// which is the annotation worklist.
template <class P>
void lint_read_sets(const std::vector<sim::Action<P>>& actions,
                    const std::vector<ActionEffects>& fx,
                    std::vector<Finding>& out) {
  for (std::size_t i = 0; i < actions.size(); ++i) {
    const auto& a = actions[i];
    if (!a.has_read_set()) continue;
    for (const int p : fx[i].guard_reads) {
      if (!detail::contains(a.reads, p)) {
        out.push_back({"read-set-soundness", Severity::kError, a.name, p,
                       "guard observably reads slot " + std::to_string(p) +
                           " which is not in the declared read-set; "
                           "incremental enabled-set maintenance will skip a "
                           "required re-evaluation"});
      }
    }
    for (const int p : a.reads) {
      if (!detail::contains(fx[i].guard_reads, p)) {
        out.push_back({"read-set-tightness", Severity::kWarning, a.name, p,
                       "declared read of slot " + std::to_string(p) +
                           " was never observed by any probe; if genuinely "
                           "unread it costs spurious invalidations"});
      }
    }
  }
}

/// Writes must stay inside the owner's slot (the max-parallel merge's hard
/// requirement; also what dirty-slot tracking assumes under interleaving).
template <class P>
void lint_write_locality(const std::vector<sim::Action<P>>& actions,
                         const std::vector<ActionEffects>& fx,
                         std::vector<Finding>& out) {
  for (std::size_t i = 0; i < actions.size(); ++i) {
    for (const int q : fx[i].writes) {
      if (q != actions[i].process) {
        out.push_back({"write-locality", Severity::kError, actions[i].name, q,
                       "statement wrote foreign slot " + std::to_string(q) +
                           " (owner is " + std::to_string(actions[i].process) +
                           "); the max-parallel merge drops or leaks such "
                           "writes"});
      }
    }
  }
}

template <class P>
void lint_determinism(const std::vector<sim::Action<P>>& actions,
                      const std::vector<ActionEffects>& fx,
                      std::vector<Finding>& out) {
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (!fx[i].guard_deterministic) {
      out.push_back({"determinism", Severity::kError, actions[i].name, -1,
                     "guard returned different values for the same state; "
                     "guards must be pure functions of the state"});
    }
    if (!fx[i].stmt_deterministic) {
      out.push_back({"determinism", Severity::kError, actions[i].name, -1,
                     "statement produced different post-states from the same "
                     "state; statements must be deterministic"});
    }
  }
}

/// Program-class granularity conformance; see the header comment for the
/// per-class rules.
template <class P>
void lint_granularity(const std::vector<sim::Action<P>>& actions,
                      const std::vector<ActionEffects>& fx,
                      const GranularityRule& rule, std::vector<Finding>& out) {
  if (rule.klass == GranularityClass::kCoarse) return;
  const bool mb = rule.klass == GranularityClass::kMbReadXorWrite;
  const char* slug = mb ? "mb-read-xor-write" : "granularity";
  const int max_foreign = mb ? 1 : rule.max_foreign;
  for (std::size_t i = 0; i < actions.size(); ++i) {
    const int owner = actions[i].process;
    const auto foreign = detail::foreign_reads(fx[i], owner);
    const auto& allowed =
        static_cast<std::size_t>(owner) < rule.allowed_foreign.size()
            ? rule.allowed_foreign[static_cast<std::size_t>(owner)]
            : std::vector<int>{};
    for (const int p : foreign) {
      if (!detail::contains(allowed, p)) {
        out.push_back(
            {slug, Severity::kError, actions[i].name, p,
             mb ? "action reads slot " + std::to_string(p) +
                      " which is not a ring neighbour of its owner; MB "
                      "actions read at most one neighbour (paper section 5)"
                : "action reads slot " + std::to_string(p) +
                      " which is not a topology neighbour of its owner "
                      "(paper section 4.1 fine-grain locality)"});
      }
    }
    if (max_foreign >= 0 && static_cast<int>(foreign.size()) > max_foreign) {
      out.push_back(
          {slug, Severity::kError, actions[i].name, -1,
           "action touches " + std::to_string(foreign.size()) +
               " foreign slots; the " + (mb ? "read-XOR-write" : "fine-grain") +
               " rule allows at most " + std::to_string(max_foreign)});
    }
  }
}

/// Stable ordering for reports: by action name, then lint slug, then slot.
/// (Action order in the system is not recoverable from a Finding alone;
/// name order is deterministic for a fixed action system, which is what
/// byte-identical reports need.)
inline void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.action != b.action) return a.action < b.action;
              if (a.lint != b.lint) return a.lint < b.lint;
              if (a.slot != b.slot) return a.slot < b.slot;
              return a.message < b.message;
            });
}

}  // namespace ftbar::audit
