#include "audit/report.hpp"

#include <sstream>

#include "trace/export.hpp"

namespace ftbar::audit {
namespace {

std::size_t count(const std::vector<Finding>& findings, Severity sev) {
  std::size_t n = 0;
  for (const auto& f : findings) {
    if (f.severity == sev) ++n;
  }
  return n;
}

void append_slots(std::ostringstream& os, const std::vector<int>& slots) {
  os << '{';
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (i != 0) os << ',';
    os << slots[i];
  }
  os << '}';
}

void append_json_slots(std::ostringstream& os, const std::vector<int>& slots) {
  os << '[';
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (i != 0) os << ',';
    os << slots[i];
  }
  os << ']';
}

const char* severity_name(Severity sev) {
  return sev == Severity::kError ? "error" : "warning";
}

}  // namespace

std::size_t ProgramAudit::num_errors() const {
  return count(findings, Severity::kError);
}
std::size_t ProgramAudit::num_warnings() const {
  return count(findings, Severity::kWarning);
}

std::size_t AuditReport::num_errors() const {
  std::size_t n = 0;
  for (const auto& p : programs) n += p.num_errors();
  return n;
}
std::size_t AuditReport::num_warnings() const {
  std::size_t n = 0;
  for (const auto& p : programs) n += p.num_warnings();
  return n;
}

std::string render_text(const AuditReport& report, bool verbose_actions) {
  std::ostringstream os;
  for (const auto& prog : report.programs) {
    os << "== audit " << prog.program << " (procs=" << prog.procs
       << ", probe_states=" << prog.probe_states
       << ", closure_calls=" << prog.variant_probes
       << ", granularity=" << prog.granularity;
    if (!prog.symmetry.empty()) os << ", symmetry=" << prog.symmetry;
    os << ") ==\n";
    if (prog.findings.empty()) {
      os << "  clean: all declared contracts agree with inferred effects\n";
    }
    for (const auto& f : prog.findings) {
      os << "  [" << severity_name(f.severity) << "] " << f.lint << " "
         << f.action;
      if (f.slot >= 0) os << " slot " << f.slot;
      os << ": " << f.message << '\n';
    }
    if (verbose_actions) {
      for (const auto& a : prog.actions) {
        os << "  action " << a.name << " @" << a.process << "  declared=";
        if (a.has_declared_reads) {
          append_slots(os, a.declared_reads);
        } else {
          os << "(full-scan)";
        }
        os << " guard_reads=";
        append_slots(os, a.guard_reads);
        os << " stmt_reads=";
        append_slots(os, a.stmt_reads);
        os << " writes=";
        append_slots(os, a.writes);
        os << " probes=" << a.probes << '\n';
      }
    }
  }
  os << "audit: " << report.num_errors() << " error(s), "
     << report.num_warnings() << " warning(s)\n";
  return os.str();
}

std::string render_json(const AuditReport& report) {
  std::ostringstream os;
  os << "{\"programs\":[";
  for (std::size_t pi = 0; pi < report.programs.size(); ++pi) {
    const auto& prog = report.programs[pi];
    if (pi != 0) os << ',';
    os << "{\"program\":\"" << trace::json_escape(prog.program)
       << "\",\"procs\":" << prog.procs
       << ",\"probe_states\":" << prog.probe_states
       << ",\"closure_calls\":" << prog.variant_probes << ",\"granularity\":\""
       << trace::json_escape(prog.granularity) << "\",\"symmetry\":\""
       << trace::json_escape(prog.symmetry) << "\",\"actions\":[";
    for (std::size_t ai = 0; ai < prog.actions.size(); ++ai) {
      const auto& a = prog.actions[ai];
      if (ai != 0) os << ',';
      os << "{\"name\":\"" << trace::json_escape(a.name)
         << "\",\"process\":" << a.process << ",\"declared_reads\":";
      if (a.has_declared_reads) {
        append_json_slots(os, a.declared_reads);
      } else {
        os << "null";
      }
      os << ",\"guard_reads\":";
      append_json_slots(os, a.guard_reads);
      os << ",\"stmt_reads\":";
      append_json_slots(os, a.stmt_reads);
      os << ",\"writes\":";
      append_json_slots(os, a.writes);
      os << ",\"probes\":" << a.probes << '}';
    }
    os << "],\"findings\":[";
    for (std::size_t fi = 0; fi < prog.findings.size(); ++fi) {
      const auto& f = prog.findings[fi];
      if (fi != 0) os << ',';
      os << "{\"lint\":\"" << trace::json_escape(f.lint) << "\",\"severity\":\""
         << severity_name(f.severity) << "\",\"action\":\""
         << trace::json_escape(f.action) << "\",\"slot\":" << f.slot
         << ",\"message\":\"" << trace::json_escape(f.message) << "\"}";
    }
    os << "]}";
  }
  os << "],\"errors\":" << report.num_errors()
     << ",\"warnings\":" << report.num_warnings() << '}';
  return os.str();
}

}  // namespace ftbar::audit
