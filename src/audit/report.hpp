// Report model for the contract auditor: per-action effect summaries plus
// lint findings, rendered as a human-readable text report or a single JSON
// object. Both renderings are deterministic for a fixed audit input —
// actions appear in system order, findings in sort_findings() order — so
// "same seed => byte-identical report" is a testable property (and a test).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "audit/lints.hpp"

namespace ftbar::audit {

/// One action's declared vs inferred footprint, in action-system order.
struct ActionSummary {
  std::string name;
  int process = 0;
  bool has_declared_reads = false;
  std::vector<int> declared_reads;  ///< empty + !has_declared_reads = full-scan
  std::vector<int> guard_reads;     ///< inferred
  std::vector<int> stmt_reads;      ///< inferred
  std::vector<int> writes;          ///< inferred
  std::size_t probes = 0;           ///< guard + statement closure invocations
};

/// The audit of one program bundle.
struct ProgramAudit {
  std::string program;  ///< "cb" | "rb" | "rbp" | "mb" | ad-hoc names in tests
  std::size_t procs = 0;
  std::size_t probe_states = 0;
  std::size_t variant_probes = 0;  ///< total closure invocations
  std::string granularity;         ///< human name of the rule applied
  std::string symmetry;            ///< name of the audited group ("" = none)
  std::vector<ActionSummary> actions;
  std::vector<Finding> findings;  ///< sort_findings() order

  [[nodiscard]] std::size_t num_errors() const;
  [[nodiscard]] std::size_t num_warnings() const;
};

struct AuditReport {
  std::vector<ProgramAudit> programs;

  [[nodiscard]] std::size_t num_errors() const;
  [[nodiscard]] std::size_t num_warnings() const;
  [[nodiscard]] bool clean() const { return num_errors() == 0; }
};

/// Human-readable report; one block per program, findings before summaries.
[[nodiscard]] std::string render_text(const AuditReport& report,
                                      bool verbose_actions = true);

/// Single JSON object: {"programs": [...], "errors": N, "warnings": N}.
[[nodiscard]] std::string render_json(const AuditReport& report);

}  // namespace ftbar::audit
